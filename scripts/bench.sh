#!/usr/bin/env bash
# bench.sh — run the benchmark suite and write a machine-readable artifact.
#
# Runs `go test -bench . -run ^$` at the repo root and converts the output
# into BENCH_<date>.json, one object per benchmark with every reported
# metric (ns/op, B/op, allocs/op, and the custom per-figure metrics such as
# cycles and speedup-x), so successive commits leave a diffable perf
# trajectory. Besides the paper exhibits, the artifact carries one
# synthetic registry workload per system and access regime
# (BenchmarkSyntheticStream/<sys> and BenchmarkSyntheticPtrchase/<sys>), so
# the trajectory also covers non-NAS patterns.
#
# Usage:
#   scripts/bench.sh                 # quick pass (1 iteration per benchmark)
#   BENCHTIME=3x scripts/bench.sh    # heavier pass
#   OUT=perf/BENCH_ci.json scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"
out="${OUT:-BENCH_$(date -u +%F).json}"
raw="$(go test -bench . -benchmem -run '^$' -benchtime "$benchtime" .)"

printf '%s\n' "$raw" | awk \
  -v date="$(date -u +%FT%TZ)" \
  -v gover="$(go version | tr -d '\n')" \
  -v benchtime="$benchtime" '
BEGIN {
  printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [", date, gover, benchtime
  n = 0
}
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
  if (n++) printf ","
  printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, $2
  for (i = 3; i + 1 <= NF; i += 2)
    printf ", \"%s\": %s", $(i + 1), $i
  printf "}"
}
END {
  printf "\n  ]\n}\n"
}' > "$out"

echo "wrote $out" >&2
