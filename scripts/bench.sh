#!/usr/bin/env bash
# bench.sh — run the benchmark suite and write a machine-readable artifact.
#
# Runs `go test -bench . -run ^$` at the repo root and converts the output
# into BENCH_<date>.json, one object per benchmark with every reported
# metric (ns/op, B/op, allocs/op, and the custom per-figure metrics such as
# cycles and speedup-x), so successive commits leave a diffable perf
# trajectory. Besides the paper exhibits, the artifact carries one
# synthetic registry workload per system and access regime
# (BenchmarkSyntheticStream/<sys> and BenchmarkSyntheticPtrchase/<sys>), so
# the trajectory also covers non-NAS patterns.
#
# After writing the artifact the script prints a delta report against the
# most recent prior BENCH_*.json (ns/op and allocs/op ratios per benchmark,
# plus the filter hit ratio and total-energy exhibit metrics where a
# benchmark reports them), so a perf — or fidelity — regression is visible
# in the run that introduces it.
#
# Usage:
#   scripts/bench.sh                 # quick pass (1 iteration per benchmark)
#   BENCHTIME=3x scripts/bench.sh    # heavier pass
#   OUT=perf/BENCH_ci.json scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"
out="${OUT:-BENCH_$(date -u +%F).json}"

# Newest prior artifact (if any) for the delta report, captured before the
# new one lands so re-runs on the same day still diff against history.
prev="$(ls -1 BENCH_*.json 2>/dev/null | grep -vF "$(basename "$out")" | sort | tail -n1 || true)"

# Capture stdout but fail loudly: `go test` reports benchmark failures on
# stdout, which a bare $(...) under set -e would swallow on the way down.
if ! raw="$(go test -bench . -benchmem -run '^$' -benchtime "$benchtime" .)"; then
  printf '%s\n' "$raw" >&2
  echo "bench.sh: go test -bench failed — no artifact written" >&2
  exit 1
fi

# Parse into a temp file first: an artifact with zero benchmarks means the
# output format drifted past the awk script, and must not shadow history.
tmp="$(mktemp "${out}.XXXXXX")"
trap 'rm -f "$tmp"' EXIT

printf '%s\n' "$raw" | awk \
  -v date="$(date -u +%FT%TZ)" \
  -v gover="$(go version | tr -d '\n')" \
  -v benchtime="$benchtime" '
BEGIN {
  printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [", date, gover, benchtime
  n = 0
}
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
  if (n++) printf ","
  printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, $2
  for (i = 3; i + 1 <= NF; i += 2)
    printf ", \"%s\": %s", $(i + 1), $i
  printf "}"
}
END {
  printf "\n  ]\n}\n"
}' > "$tmp"

if ! python3 -c 'import json, sys; sys.exit(0 if json.load(open(sys.argv[1]))["benchmarks"] else 1)' "$tmp"; then
  echo "bench.sh: parsed zero benchmarks out of go test output — refusing to write $out" >&2
  printf '%s\n' "$raw" >&2
  exit 1
fi
mv "$tmp" "$out"
trap - EXIT

echo "wrote $out" >&2

if [ -n "$prev" ]; then
  python3 - "$prev" "$out" <<'PY' >&2
import json, sys

prevPath, curPath = sys.argv[1], sys.argv[2]
load = lambda p: {b["name"]: b for b in json.load(open(p))["benchmarks"]}
prev, cur = load(prevPath), load(curPath)

print(f"\ndelta vs {prevPath}:")
print(f"  {'benchmark':<34} {'ns/op':>12} {'x':>7}   {'allocs/op':>11} {'x':>7}   {'filterHit%':>10} {'x':>7}   {'energy pJ':>12} {'x':>7}")
for name, c in cur.items():
    p = prev.get(name)
    if p is None:
        print(f"  {name:<34} (new)")
        continue
    def ratio(key):
        a, b = p.get(key), c.get(key)
        if b is None:
            return "-", "-"  # metric absent from the current run
        if not a:
            return b, "-"  # no baseline (absent or zero): show the value, skip the ratio
        return b, f"{b / a:.2f}"
    ns, nsx = ratio("ns/op")
    al, alx = ratio("allocs/op")
    # Exhibit fidelity metrics: only some benchmarks report them, the rest
    # render as "-". A moved ratio here is a simulator-behavior change, not
    # a performance one.
    fh, fhx = ratio("filterHit(%)")
    en, enx = ratio("energy(pJ)")
    print(f"  {name:<34} {ns:>12} {nsx:>7}   {al:>11} {alx:>7}   {fh:>10} {fhx:>7}   {en:>12} {enx:>7}")
for name in prev:
    if name not in cur:
        print(f"  {name:<34} (removed)")
PY
else
  echo "no previous BENCH_*.json artifact — skipping the delta report" >&2
fi
