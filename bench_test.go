package repro

// One testing.B benchmark per table and figure of the paper's evaluation.
// Benchmarks run the tiny workload scale on an 8-core machine so the whole
// suite finishes in minutes; cmd/experiments regenerates the full 64-core
// exhibits. Custom metrics carry the quantities each figure reports, so
// `go test -bench=.` output doubles as a miniature results table.

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/noc"
	"repro/internal/system"
	"repro/internal/workloads"
)

const (
	benchCores = 8
	benchScale = workloads.Tiny
)

// run executes one benchmark on one system flavor, failing b on error.
func run(b *testing.B, name string, sys config.MemorySystem) system.Results {
	b.Helper()
	spec := system.Spec{System: sys, Benchmark: name, Scale: benchScale, Cores: benchCores}
	r, err := spec.Execute()
	if err != nil {
		b.Fatalf("%s: %v", spec.Key(), err)
	}
	return r
}

// BenchmarkTable1Config regenerates Table 1: it validates and reports the
// machine description used everywhere else.
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sys := range []config.MemorySystem{config.CacheBased, config.HybridIdeal, config.HybridReal} {
			cfg := config.ForSystem(sys)
			if err := cfg.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
	cfg := config.Default()
	b.ReportMetric(float64(cfg.Cores), "cores")
	b.ReportMetric(float64(cfg.SPMSize)/1024, "spmKB")
	b.ReportMetric(float64(cfg.FilterEntries), "filterEntries")
}

// BenchmarkTable2Characterization regenerates Table 2: the per-benchmark
// reference counts and footprints.
func BenchmarkTable2Characterization(b *testing.B) {
	var spmRefs, guardedRefs, kernels int
	for i := 0; i < b.N; i++ {
		spmRefs, guardedRefs, kernels = 0, 0, 0
		for _, bench := range workloads.All(benchScale) {
			c := compiler.Characterize(bench)
			spmRefs += c.SPMRefs
			guardedRefs += c.GuardedRefs
			kernels += c.Kernels
		}
	}
	b.ReportMetric(float64(spmRefs), "spmRefs")
	b.ReportMetric(float64(guardedRefs), "guardedRefs")
	b.ReportMetric(float64(kernels), "kernels")
}

// BenchmarkFig7ProtocolOverheads regenerates Figure 7: the real protocol's
// execution-time, energy and traffic overheads over ideal coherence,
// averaged over the benchmarks that exercise guarded accesses most (CG, IS).
func BenchmarkFig7ProtocolOverheads(b *testing.B) {
	var tOvh, eOvh, pOvh float64
	for i := 0; i < b.N; i++ {
		tOvh, eOvh, pOvh = 0, 0, 0
		names := []string{"CG", "IS"}
		for _, n := range names {
			real := run(b, n, config.HybridReal)
			ideal := run(b, n, config.HybridIdeal)
			tOvh += float64(real.Cycles) / float64(ideal.Cycles)
			eOvh += real.Energy.Total() / ideal.Energy.Total()
			pOvh += float64(real.TotalPkts) / float64(ideal.TotalPkts)
		}
		tOvh /= float64(len(names))
		eOvh /= float64(len(names))
		pOvh /= float64(len(names))
	}
	b.ReportMetric(tOvh, "timeOvh(x)")
	b.ReportMetric(eOvh, "energyOvh(x)")
	b.ReportMetric(pOvh, "trafficOvh(x)")
}

// BenchmarkFig8FilterHitRatio regenerates Figure 8 for the two extremes:
// IS (lowest locality) and SP (no guarded accesses at all).
func BenchmarkFig8FilterHitRatio(b *testing.B) {
	var is, sp float64
	for i := 0; i < b.N; i++ {
		is = run(b, "IS", config.HybridReal).FilterHitRatio
		sp = run(b, "SP", config.HybridReal).FilterHitRatio
	}
	b.ReportMetric(is*100, "IS(%)")
	b.ReportMetric(sp*100, "SP(%)")
}

// BenchmarkFig9Performance regenerates Figure 9: cache vs hybrid execution
// time with the control/sync/work split.
func BenchmarkFig9Performance(b *testing.B) {
	var speedup, workRatio, filterHit, energy float64
	for i := 0; i < b.N; i++ {
		c := run(b, "FT", config.CacheBased)
		h := run(b, "FT", config.HybridReal)
		speedup = float64(c.Cycles) / float64(h.Cycles)
		workRatio = float64(h.PhaseCycles[isa.PhaseWork]) / float64(c.PhaseCycles[isa.PhaseWork])
		filterHit = h.FilterHitRatio
		energy = h.Energy.Total()
	}
	b.ReportMetric(speedup, "speedup(x)")
	b.ReportMetric(workRatio, "workPhase(h/c)")
	b.ReportMetric(filterHit*100, "filterHit(%)")
	b.ReportMetric(energy, "energy(pJ)")
}

// BenchmarkFig10NoCTraffic regenerates Figure 10: total and per-category
// NoC packets of hybrid vs cache.
func BenchmarkFig10NoCTraffic(b *testing.B) {
	var total, dma, coh float64
	for i := 0; i < b.N; i++ {
		c := run(b, "MG", config.CacheBased)
		h := run(b, "MG", config.HybridReal)
		total = float64(h.TotalPkts) / float64(c.TotalPkts)
		dma = float64(h.NoCPackets[noc.DMA]) / float64(c.TotalPkts)
		coh = float64(h.NoCPackets[noc.CohProt]) / float64(c.TotalPkts)
	}
	b.ReportMetric(total, "traffic(h/c)")
	b.ReportMetric(dma, "dmaShare")
	b.ReportMetric(coh, "cohShare")
}

// BenchmarkFig11Energy regenerates Figure 11: the energy breakdown of
// hybrid vs cache.
func BenchmarkFig11Energy(b *testing.B) {
	var total, caches, spms float64
	for i := 0; i < b.N; i++ {
		c := run(b, "SP", config.CacheBased)
		h := run(b, "SP", config.HybridReal)
		total = h.Energy.Total() / c.Energy.Total()
		caches = h.Energy.Caches / c.Energy.Caches
		spms = h.Energy.SPMs / c.Energy.Total()
	}
	b.ReportMetric(total, "energy(h/c)")
	b.ReportMetric(caches, "cacheEnergy(h/c)")
	b.ReportMetric(spms, "spmShare")
}

// runWorkload executes a parameterized registry workload on one system.
func runWorkload(b *testing.B, name, params string, sys config.MemorySystem) system.Results {
	b.Helper()
	spec := system.Spec{System: sys, Benchmark: name, Params: params,
		Scale: benchScale, Cores: benchCores}
	r, err := spec.Execute()
	if err != nil {
		b.Fatalf("%s: %v", spec.Key(), err)
	}
	return r
}

// benchSystems are the three machines every synthetic probe runs on, so the
// BENCH_<date>.json perf trajectory covers non-NAS patterns per system.
var benchSystems = []config.MemorySystem{config.CacheBased, config.HybridReal, config.HybridIdeal}

// BenchmarkSyntheticStream runs the streaming-triad registry workload (a
// non-default stride=64) on every system — the bandwidth-bound synthetic
// point of the perf trajectory.
func BenchmarkSyntheticStream(b *testing.B) {
	for _, sys := range benchSystems {
		b.Run(sys.String(), func(b *testing.B) {
			var r system.Results
			for i := 0; i < b.N; i++ {
				r = runWorkload(b, "stream", "stride=64", sys)
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
			b.ReportMetric(float64(r.TotalPkts), "packets")
		})
	}
}

// BenchmarkSyntheticPtrchase runs the guarded pointer-chase registry
// workload on every system — the latency/filter-bound synthetic point of
// the perf trajectory.
func BenchmarkSyntheticPtrchase(b *testing.B) {
	for _, sys := range benchSystems {
		b.Run(sys.String(), func(b *testing.B) {
			var r system.Results
			for i := 0; i < b.N; i++ {
				r = runWorkload(b, "ptrchase", "hot_pct=50", sys)
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
			b.ReportMetric(r.FilterHitRatio*100, "filterHit(%)")
		})
	}
}

// BenchmarkAblationFilterSize sweeps the per-core filter capacity on IS
// (DESIGN.md Ablation A) and reports the hit-ratio spread.
func BenchmarkAblationFilterSize(b *testing.B) {
	var small, large float64
	for i := 0; i < b.N; i++ {
		for _, entries := range []int{8, 48} {
			r, err := system.Spec{
				System: config.HybridReal, Benchmark: "IS", Scale: benchScale,
				Cores: benchCores, FilterEntries: entries,
			}.Execute()
			if err != nil {
				b.Fatal(err)
			}
			if entries == 8 {
				small = r.FilterHitRatio
			} else {
				large = r.FilterHitRatio
			}
		}
	}
	b.ReportMetric(small*100, "hit@8(%)")
	b.ReportMetric(large*100, "hit@48(%)")
}

// BenchmarkAblationLSQRecheck runs a deliberately aliasing kernel (the case
// NAS never triggers) and reports the pipeline flushes taken by the §3.4
// ordering re-check.
func BenchmarkAblationLSQRecheck(b *testing.B) {
	// A kernel whose guarded stores target the SAME array its strided
	// loads map to the SPMs: every SPMDir hit re-checks the LSQ.
	shared := &compiler.Array{Name: "shared", Base: 0x1000_0000, Size: 64 << 10}
	bench := &compiler.Benchmark{
		Name:    "alias",
		Repeats: 1,
		Arrays:  []*compiler.Array{shared},
		Kernels: []compiler.Kernel{{
			Name:       "alias",
			Iters:      8 << 10,
			ComputeOps: 4,
			Refs: []compiler.Ref{
				{Name: "s", Array: shared, Pattern: compiler.Strided},
				{Name: "p", Array: shared, Pattern: compiler.Random,
					MayAliasSPM: true, IsWrite: true},
			},
		}},
	}
	var flushes, diverted float64
	for i := 0; i < b.N; i++ {
		cfg := config.ForSystem(config.HybridReal)
		cfg.Cores = benchCores
		cfg.MeshWidth, cfg.MeshHeight = 2, 4
		if cfg.MemControllers > benchCores {
			cfg.MemControllers = benchCores
		}
		m, err := system.Build(cfg, bench, 7)
		if err != nil {
			b.Fatal(err)
		}
		r, err := m.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		flushes = float64(r.Flushes)
		diverted = float64(m.Protocol.Stats().Get("spmdir.hits") +
			m.Protocol.Stats().Get("spmdir.remote_hits"))
	}
	b.ReportMetric(flushes, "lsqFlushes")
	b.ReportMetric(diverted, "divertedAccesses")
}
