// Sweep: the filter-size ablation (DESIGN.md Ablation A). The per-core
// filter caches "not mapped to any SPM" verdicts; its size trades CAM energy
// against FilterDir round-trips. IS — the benchmark with the weakest guarded
// locality — is the most sensitive, exactly as the paper's Fig. 8 suggests.
//
// Each sweep point is one declarative system.Spec; the runner fans them out
// across worker goroutines, so the sweep finishes in the wall-clock of its
// slowest point instead of the sum of all of them.
//
//	go run ./examples/sweep -workers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/runner"
	"repro/internal/system"
	"repro/internal/workloads"
)

func main() {
	workers := flag.Int("workers", 0, "parallel simulations (0 = one per host CPU)")
	flag.Parse()

	const cores = 16
	sizes := []int{4, 8, 16, 32, 48, 96}
	specs := make([]system.Spec, len(sizes))
	for i, entries := range sizes {
		specs[i] = system.Spec{
			System:        config.HybridReal,
			Benchmark:     "IS",
			Scale:         workloads.Small,
			Cores:         cores,
			FilterEntries: entries,
		}
	}

	fmt.Println("filter size sweep: IS on the hybrid system (16 cores, small scale)")
	results, err := runner.Collect(runner.Run(specs, runner.Options{
		Workers:  *workers,
		Progress: os.Stderr,
	}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-12s %-10s %-14s %-12s\n",
		"entries", "hit-ratio", "cycles", "CohProt pkts", "broadcasts")
	for i, r := range results {
		fmt.Printf("%-10d %-12.4f %-10d %-14d %-12d\n",
			sizes[i], r.FilterHitRatio, r.Cycles, r.NoCPackets[noc.CohProt],
			r.FDirBroadcasts)
	}
	fmt.Println("\nBigger filters push the hit ratio up and protocol traffic down until")
	fmt.Println("the guarded working set fits; Table 1's 48 entries sit at the knee.")
}
