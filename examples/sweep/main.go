// Sweep: the filter-size ablation (DESIGN.md Ablation A). The per-core
// filter caches "not mapped to any SPM" verdicts; its size trades CAM energy
// against FilterDir round-trips. IS — the benchmark with the weakest guarded
// locality — is the most sensitive, exactly as the paper's Fig. 8 suggests.
//
// Each sweep point is one declarative system.Spec. By default the runner
// fans them out across local worker goroutines; with -daemon the same Specs
// are submitted to a running hybridsimd instead, so a repeated sweep is
// answered from the daemon's content-addressed result cache:
//
//	go run ./examples/sweep -workers 8
//	go run ./cmd/hybridsimd &
//	go run ./examples/sweep -daemon http://127.0.0.1:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/system"
	"repro/internal/workloads"
)

func main() {
	workers := flag.Int("workers", 0, "parallel simulations (0 = one per host CPU)")
	daemon := flag.String("daemon", "", "run the sweep through a hybridsimd at this base URL instead of locally")
	flag.Parse()

	const cores = 16
	sizes := []int{4, 8, 16, 32, 48, 96}
	specs := make([]system.Spec, len(sizes))
	for i, entries := range sizes {
		specs[i] = system.Spec{
			System:        config.HybridReal,
			Benchmark:     "IS",
			Scale:         workloads.Small,
			Cores:         cores,
			FilterEntries: entries,
		}
	}

	fmt.Println("filter size sweep: IS on the hybrid system (16 cores, small scale)")
	var results []system.Results
	var err error
	if *daemon != "" {
		results, err = runRemote(*daemon, specs)
	} else {
		results, err = runner.Collect(runner.Run(specs, runner.Options{
			Workers:  *workers,
			Progress: os.Stderr,
		}))
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-12s %-10s %-14s %-12s\n",
		"entries", "hit-ratio", "cycles", "CohProt pkts", "broadcasts")
	for i, r := range results {
		fmt.Printf("%-10d %-12.4f %-10d %-14d %-12d\n",
			sizes[i], r.FilterHitRatio, r.Cycles, r.NoCPackets[noc.CohProt],
			r.FDirBroadcasts)
	}
	fmt.Println("\nBigger filters push the hit ratio up and protocol traffic down until")
	fmt.Println("the guarded working set fits; Table 1's 48 entries sit at the knee.")
}

// runRemote submits the sweep points to a hybridsimd and blocks for their
// Results — re-running the example against the same daemon costs nothing
// but the HTTP round-trip.
func runRemote(base string, specs []system.Spec) ([]system.Results, error) {
	c := &service.Client{Base: base}
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		return nil, fmt.Errorf("daemon not healthy: %w", err)
	}
	records, err := c.Submit(ctx, service.SubmitRequest{Specs: specs}, true, 0)
	if err != nil {
		return nil, err
	}
	results := make([]system.Results, len(records))
	for i, rec := range records {
		if rec.Status != "done" || rec.Results == nil {
			return nil, fmt.Errorf("%s: %s (%s)", rec.Key, rec.Status, rec.Error)
		}
		fmt.Fprintf(os.Stderr, "[%d/%d] %s cached=%v wall=%.1fms\n",
			i+1, len(records), rec.Spec.Key(), rec.Cached, rec.WallMS)
		results[i] = *rec.Results
	}
	return results, nil
}
