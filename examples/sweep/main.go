// Sweep: the filter-size ablation (DESIGN.md Ablation A). The per-core
// filter caches "not mapped to any SPM" verdicts; its size trades CAM energy
// against FilterDir round-trips. IS — the benchmark with the weakest guarded
// locality — is the most sensitive, exactly as the paper's Fig. 8 suggests.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/system"
	"repro/internal/workloads"
)

func main() {
	const cores = 16
	fmt.Println("filter size sweep: IS on the hybrid system (16 cores, small scale; takes a minute)")
	fmt.Printf("%-10s %-12s %-10s %-14s %-12s\n",
		"entries", "hit-ratio", "cycles", "CohProt pkts", "broadcasts?")

	for _, entries := range []int{4, 8, 16, 32, 48, 96} {
		cfg := config.ForSystem(config.HybridReal)
		cfg.FilterEntries = entries
		cfg.Cores = cores
		cfg.MeshWidth, cfg.MeshHeight = 4, 4
		m, err := system.Build(cfg, workloads.Build("IS", workloads.Small), 0xC0FFEE)
		if err != nil {
			log.Fatal(err)
		}
		r, err := m.Run(0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-12.4f %-10d %-14d %-12d\n",
			entries, r.FilterHitRatio, r.Cycles, r.NoCPackets[noc.CohProt],
			m.Protocol.Stats().Get("fdir.broadcasts"))
	}
	fmt.Println("\nBigger filters push the hit ratio up and protocol traffic down until")
	fmt.Println("the guarded working set fits; Table 1's 48 entries sit at the knee.")
}
