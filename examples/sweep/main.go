// Sweep: axis-based design-space exploration over the machine parameter
// space. The default run is the filter-size ablation (DESIGN.md Ablation
// A): the per-core filter caches "not mapped to any SPM" verdicts, and IS —
// the benchmark with the weakest guarded locality — is the most sensitive
// to its size, exactly as the paper's Fig. 8 suggests.
//
// Any registry knob (config.Knobs) can be swept instead: repeatable -sweep
// flags build the cross product and the results print as a per-knob-column
// CSV (report.SweepCSV), one column per swept axis — self-describing
// tables, no opaque key strings. -set fixes additional knobs on every run.
// The workload axis is just as open: -workload picks any registry workload
// (with optional "name:param=value" parameters; -workloads lists the
// catalog) and repeatable -wsweep flags sweep its declared parameters.
//
// Each sweep point is one declarative system.Spec. By default the runner
// fans them out across local worker goroutines (output is byte-identical
// for any -workers N); with -daemon the same Specs are submitted to a
// running hybridsimd instead, so a repeated sweep is answered from the
// daemon's content-addressed result cache:
//
//	go run ./examples/sweep -workers 8
//	go run ./examples/sweep -sweep filter_entries=16,32,48,64
//	go run ./examples/sweep -sweep l1d_size=16384,32768 -sweep prefetch_degree=1,2,4
//	go run ./examples/sweep -workload stream -wsweep stride=8,64,512
//	go run ./examples/sweep -workload ptrchase:footprint=4194304 -wsweep hot_pct=0,50,100
//	go run ./cmd/hybridsimd &
//	go run ./examples/sweep -daemon http://127.0.0.1:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/system"
	"repro/internal/workloads"
)

func main() {
	workers := flag.Int("workers", 0, "parallel simulations (0 = one per host CPU)")
	daemon := flag.String("daemon", "", "run the sweep through a hybridsimd at this base URL instead of locally")
	workloadFlag := flag.String("workload", "IS", "workload spelling name[:param=value,...] for axis sweeps (see -workloads)")
	listWorkloads := flag.Bool("workloads", false, "list the workload catalog and exit")
	var sets, sweeps, wsweeps runner.MultiFlag
	flag.Var(&sets, "set", "fix one machine knob on every run, name=value (repeatable)")
	flag.Var(&sweeps, "sweep", "sweep one machine knob, name=v1,v2,... (repeatable; prints a per-column CSV)")
	flag.Var(&wsweeps, "wsweep", "sweep one workload parameter, name=v1,v2,... (repeatable; prints a per-column CSV)")
	flag.Parse()

	if *listWorkloads {
		report.WorkloadCatalog(os.Stdout)
		return
	}

	const cores = 16
	if len(sweeps) > 0 || len(wsweeps) > 0 {
		runAxisSweep(*workers, *daemon, *workloadFlag, cores, sets, sweeps, wsweeps)
		return
	}

	sizes := []int{4, 8, 16, 32, 48, 96}
	specs := make([]system.Spec, len(sizes))
	for i, entries := range sizes {
		specs[i] = system.Spec{
			System:        config.HybridReal,
			Benchmark:     "IS",
			Scale:         workloads.Small,
			Cores:         cores,
			FilterEntries: entries,
		}
	}

	fmt.Println("filter size sweep: IS on the hybrid system (16 cores, small scale)")
	results, err := execute(*workers, *daemon, specs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-12s %-10s %-14s %-12s\n",
		"entries", "hit-ratio", "cycles", "CohProt pkts", "broadcasts")
	for i, r := range results {
		fmt.Printf("%-10d %-12.4f %-10d %-14d %-12d\n",
			sizes[i], r.FilterHitRatio, r.Cycles, r.NoCPackets[noc.CohProt],
			r.FDirBroadcasts)
	}
	fmt.Println("\nBigger filters push the hit ratio up and protocol traffic down until")
	fmt.Println("the guarded working set fits; Table 1's 48 entries sit at the knee.")
}

// runAxisSweep expands the -sweep knob axes and -wsweep workload-parameter
// axes on the -workload spelling (hybrid system) and emits the per-column
// CSV on stdout. Results arrive in input order whatever the worker count,
// so the CSV is byte-identical for any -workers N.
func runAxisSweep(workers int, daemon, workload string, cores int, sets, sweeps, wsweeps []string) {
	base, err := config.ParseOverrides(sets)
	if err != nil {
		log.Fatal(err)
	}
	axes, err := runner.ParseKnobAxes(sweeps)
	if err != nil {
		log.Fatal(err)
	}
	waxes, err := runner.ParseParamAxes(wsweeps)
	if err != nil {
		log.Fatal(err)
	}
	specs, err := runner.Axes{
		Benchmarks: []string{workload},
		Systems:    []config.MemorySystem{config.HybridReal},
		Scale:      workloads.Small,
		Cores:      cores,
		Base:       base,
		Knobs:      axes,
		WParams:    waxes,
	}.Specs()
	if err != nil {
		log.Fatal(err)
	}
	results, err := execute(workers, daemon, specs)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.SweepCSV(os.Stdout, specs, results); err != nil {
		log.Fatal(err)
	}
}

// execute runs the Specs locally or through a daemon.
func execute(workers int, daemon string, specs []system.Spec) ([]system.Results, error) {
	if daemon != "" {
		return runRemote(daemon, specs)
	}
	return runner.Collect(runner.Run(specs, runner.Options{
		Workers:  workers,
		Progress: os.Stderr,
	}))
}

// runRemote submits the sweep points to a hybridsimd and blocks for their
// Results — re-running the example against the same daemon costs nothing
// but the HTTP round-trip.
func runRemote(base string, specs []system.Spec) ([]system.Results, error) {
	c := &service.Client{Base: base}
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		return nil, fmt.Errorf("daemon not healthy: %w", err)
	}
	records, err := c.Submit(ctx, service.SubmitRequest{Specs: specs}, true, 0)
	if err != nil {
		return nil, err
	}
	results := make([]system.Results, len(records))
	for i, rec := range records {
		if rec.Status != "done" || rec.Results == nil {
			return nil, fmt.Errorf("%s: %s (%s)", rec.Key, rec.Status, rec.Error)
		}
		fmt.Fprintf(os.Stderr, "[%d/%d] %s cached=%v wall=%.1fms\n",
			i+1, len(records), rec.Spec.Key(), rec.Cached, rec.WallMS)
		results[i] = *rec.Results
	}
	return results, nil
}
