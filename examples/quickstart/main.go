// Quickstart: build a small hybrid manycore, run a tiny kernel on it, and
// print what the machine did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/system"
)

func main() {
	// 1. Describe a parallel kernel in the compiler IR: one strided array
	//    (mapped to the SPMs by the compiler), one random array the alias
	//    analysis cannot prove independent (guarded accesses).
	iters := 128 << 10
	a := &compiler.Array{Name: "a", Base: 0x1000_0000, Size: iters * 8}
	b := &compiler.Array{Name: "b", Base: 0x1040_0000, Size: iters * 8}
	c := &compiler.Array{Name: "c", Base: 0x1080_0000, Size: iters * 8}
	d := &compiler.Array{Name: "d", Base: 0x10C0_0000, Size: iters * 8}
	lookup := &compiler.Array{Name: "lookup", Base: 0x1100_0000, Size: 64 << 10}
	bench := &compiler.Benchmark{
		Name:    "quickstart",
		Repeats: 2, // an iterative stencil: same data every sweep
		Arrays:  []*compiler.Array{a, b, c, d, lookup},
		Kernels: []compiler.Kernel{{
			Name:       "stencil",
			Iters:      iters,
			ComputeOps: 16,
			Refs: []compiler.Ref{
				{Name: "a", Array: a, Pattern: compiler.Strided, IsWrite: true},
				{Name: "b", Array: b, Pattern: compiler.Strided},
				{Name: "c", Array: c, Pattern: compiler.Strided},
				{Name: "d", Array: d, Pattern: compiler.Strided},
				{Name: "lookup", Array: lookup, Pattern: compiler.Random,
					MayAliasSPM: true, HotFraction: 0.9, HotBytes: 8 << 10},
			},
		}},
	}

	// 2. Build the full Table-1 machine (64 cores) with the
	//    hybrid memory system and the paper's coherence protocol.
	r, err := system.RunBenchmark(config.HybridReal, bench, 64, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the run.
	fmt.Printf("ran %q on a 64-core hybrid machine\n", bench.Name)
	fmt.Printf("  cycles:            %d\n", r.Cycles)
	fmt.Printf("  instructions:      %d\n", r.Retired)
	fmt.Printf("  NoC packets:       %d\n", r.TotalPkts)
	fmt.Printf("  DMA line xfers:    %d\n", r.DMALineTransfers)
	fmt.Printf("  filter hit ratio:  %.2f%%\n", r.FilterHitRatio*100)
	fmt.Printf("  energy:            %.1f uJ\n", r.Energy.Total()/1e6)

	// 4. Compare against the cache-based baseline.
	base, err := system.RunBenchmark(config.CacheBased, bench, 64, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speedup over the cache-based system: %.2fx\n",
		float64(base.Cycles)/float64(r.Cycles))
}
