// Irregular: a CG-style sparse kernel — the workload class that motivates
// the whole design. Streams (matrix values/columns) go to the SPMs by DMA;
// the indirect gather x[col[j]] cannot be analyzed, so it runs guarded. The
// example compares the three machines and shows where the filter earns its
// keep.
//
//	go run ./examples/irregular
package main

import (
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/noc"
	"repro/internal/system"
)

func sparseKernel() *compiler.Benchmark {
	vals := &compiler.Array{Name: "vals", Base: 0x1000_0000, Size: 2 << 20}
	cols := &compiler.Array{Name: "cols", Base: 0x1020_0000, Size: 2 << 20}
	x := &compiler.Array{Name: "x", Base: 0x1040_0000, Size: 128 << 10}
	return &compiler.Benchmark{
		Name:    "spmv",
		Repeats: 2, // iterative solver: the same matrix every iteration
		Arrays:  []*compiler.Array{vals, cols, x},
		Kernels: []compiler.Kernel{{
			Name:       "gather",
			Iters:      256 << 10,
			ComputeOps: 16,
			Refs: []compiler.Ref{
				{Name: "vals", Array: vals, Pattern: compiler.Strided},
				{Name: "cols", Array: cols, Pattern: compiler.Strided},
				// x[col[j]]: random, may alias, strong row locality.
				{Name: "x", Array: x, Pattern: compiler.Random,
					MayAliasSPM: true, HotFraction: 0.92, HotBytes: 8 << 10},
			},
		}},
	}
}

func main() {
	bench := sparseKernel()
	const cores = 16

	type row struct {
		name string
		sys  config.MemorySystem
	}
	rows := []row{
		{"cache-based", config.CacheBased},
		{"hybrid+ideal", config.HybridIdeal},
		{"hybrid+protocol", config.HybridReal},
	}

	fmt.Printf("%-16s %-10s %-10s %-9s %-11s %-8s\n",
		"system", "cycles", "packets", "energy", "filter-hit", "guarded")
	var cacheCycles uint64
	for _, rw := range rows {
		r, err := system.RunBenchmark(rw.sys, bench, cores, 0)
		if err != nil {
			log.Fatal(err)
		}
		if rw.sys == config.CacheBased {
			cacheCycles = r.Cycles
		}
		filter := "-"
		if rw.sys == config.HybridReal {
			filter = fmt.Sprintf("%.2f%%", r.FilterHitRatio*100)
		}
		fmt.Printf("%-16s %-10d %-10d %-9.0f %-11s %-8d\n",
			rw.name, r.Cycles, r.TotalPkts, r.Energy.Total()/1e6, filter,
			r.NoCPackets[noc.CohProt])
		if rw.sys == config.HybridReal {
			fmt.Printf("  -> speedup vs cache %.2fx; control/sync/work = %d/%d/%d cycles\n",
				float64(cacheCycles)/float64(r.Cycles),
				r.PhaseCycles[isa.PhaseControl], r.PhaseCycles[isa.PhaseSync],
				r.PhaseCycles[isa.PhaseWork])
		}
	}
	fmt.Println("\nThe protocol column ('guarded') is the CohProt traffic that buys the")
	fmt.Println("compiler the right to map the streams to SPMs despite the x[col[j]] hazard —")
	fmt.Println("and it costs almost nothing next to ideal coherence. Whether the hybrid")
	fmt.Println("system then wins on time depends on the stream/guarded mix (here the kernel")
	fmt.Println("is guarded-heavy, the hybrid's weakest case; see EXPERIMENTS.md).")
}
