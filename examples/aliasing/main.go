// Aliasing: the case the paper is actually about. A kernel whose random
// pointer accesses REALLY DO alias the array sections mapped to the SPMs —
// the situation no compiler alias analysis can rule out, which without the
// coherence protocol would force the compiler to give up on SPM mapping.
//
// The example drives the protocol engine directly so every Fig. 5 case is
// visible: local SPMDir hits (5b), filter hits (5a), FilterDir resolutions
// (5c), remote SPM services (5d), and the §3.4 LSQ re-check that flushes the
// pipeline when the rewritten address conflicts with an in-flight access.
//
//	go run ./examples/aliasing
package main

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/spm"
)

func main() {
	cfg := config.Default()
	cfg.Cores = 16
	cfg.MeshWidth, cfg.MeshHeight = 4, 4
	cfg.MemControllers = 4

	eng := sim.NewEngine()
	mesh := noc.NewBW(eng, 4, 4, cfg.FlitBytes, cfg.LinkBandwidth, cfg.LinkLatency, cfg.RouterLatency)
	dram := mem.NewSystem(eng, []int{5, 6, 9, 10}, cfg.LineSize, cfg.MemLatency, cfg.MemCyclesPerLn)
	hier := coherence.New(eng, cfg, mesh, dram)
	var spms []*spm.SPM
	for i := 0; i < cfg.Cores; i++ {
		spms = append(spms, spm.New(eng, cfg.SPMLatency))
	}
	amap := spm.NewAddressMap(cfg.Cores, cfg.SPMSize)
	prot := core.New(eng, cfg, mesh, hier, spms, amap, false)

	flushes := 0
	prot.SetRecheckHook(func(c int, spmAddr uint64, isStore bool) bool {
		// A real core searches its LSQ; here we flush whenever the
		// protocol rewrites an address, to show the hook in action.
		flushes++
		return true
	})

	const bufSz = 4 << 10
	for c := 0; c < cfg.Cores; c++ {
		prot.SetBufSize(c, bufSz)
	}

	// The "compiler" mapped array section [0x100000, 0x101000) to core 3's
	// SPM buffer 0 — and the program's pointer writes alias it.
	gmBase := uint64(0x10_0000)
	prot.NotifyMap(3, gmBase, amap.AddrFor(3, 0), bufSz)
	eng.Run()

	served := map[core.Served]int{}
	record := func(s core.Served) { served[s]++ }

	fmt.Println("guarded accesses against a truly aliasing mapping:")

	// Core 3 touches its own mapped chunk: Fig. 5b (local SPM), and the
	// LSQ re-check fires because the address was rewritten.
	prot.GuardedAccess(3, gmBase+0x40, 0x400, true, record)
	eng.Run()

	// Core 7 touches the same chunk: Fig. 5d (remote SPM serves it).
	prot.GuardedAccess(7, gmBase+0x80, 0x404, false, record)
	eng.Run()

	// Core 7 touches an unmapped address: Fig. 5c then 5a.
	prot.GuardedAccess(7, 0x20_0000, 0x408, false, record) // cold -> FilterDir broadcast
	eng.Run()
	prot.GuardedAccess(7, 0x20_0008, 0x40C, false, record) // warm -> filter hit
	eng.Run()

	fmt.Printf("  served by local SPM:  %d (Fig. 5b)\n", served[core.ServedLocalSPM])
	fmt.Printf("  served by remote SPM: %d (Fig. 5d)\n", served[core.ServedRemoteSPM])
	fmt.Printf("  served by the cache:  %d (Fig. 5a/5c)\n", served[core.ServedCache])
	fmt.Printf("  pipeline flushes:     %d (LSQ re-check, paper 3.4)\n", flushes)

	st := prot.Stats()
	fmt.Println("\nprotocol counters:")
	for _, k := range st.Keys() {
		fmt.Printf("  %-24s %d\n", k, st.Get(k))
	}
	fmt.Printf("\nCohProt NoC packets: %d\n", mesh.Packets(noc.CohProt))
	fmt.Println("\nEvery access reached the valid copy — the compiler never had to bail out.")
}
