// Command hybridsim runs one benchmark on one machine configuration and
// prints its measurements.
//
// Usage:
//
//	hybridsim -bench CG -system hybrid -cores 64 -scale small
//
// Systems: cache (baseline, 64KB L1D), hybrid (SPMs + the paper's coherence
// protocol), ideal (SPMs + oracle coherence).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/noc"
	"repro/internal/report"
	"repro/internal/system"
	"repro/internal/workloads"
)

func main() {
	benchName := flag.String("bench", "CG", "benchmark: CG, EP, FT, IS, MG, SP")
	sysName := flag.String("system", "hybrid", "machine: cache, hybrid, ideal")
	cores := flag.Int("cores", 64, "core count (square-ish mesh is chosen automatically)")
	scaleName := flag.String("scale", "small", "workload scale: tiny, small")
	showConfig := flag.Bool("config", false, "print the Table 1 machine description and exit")
	csv := flag.Bool("csv", false, "emit results as CSV")
	maxEvents := flag.Uint64("max-events", 0, "abort after this many simulation events (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "abort the run after this much wall-clock (0 = unlimited)")
	flag.Parse()

	sys, err := config.ParseMemorySystem(*sysName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *showConfig {
		report.Table1(os.Stdout, config.ForSystem(sys))
		return
	}

	scale, err := workloads.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	spec := system.Spec{
		System:    sys,
		Benchmark: *benchName,
		Scale:     scale,
		Cores:     *cores,
		MaxEvents: *maxEvents,
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	r, err := spec.ExecuteContext(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulation failed: %v\n", err)
		os.Exit(1)
	}

	if *csv {
		report.CSV(os.Stdout, []system.Results{r})
		return
	}

	fmt.Printf("%s on %s (%d cores, %s scale)\n", r.Benchmark, r.System, *cores, scale)
	fmt.Printf("  cycles           %d\n", r.Cycles)
	fmt.Printf("  phase cycles     control=%d sync=%d work=%d\n",
		r.PhaseCycles[isa.PhaseControl], r.PhaseCycles[isa.PhaseSync], r.PhaseCycles[isa.PhaseWork])
	fmt.Printf("  retired instrs   %d\n", r.Retired)
	fmt.Printf("  NoC packets      %d (", r.TotalPkts)
	for c := noc.Category(0); c < noc.NumCategories; c++ {
		if c > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("%s=%d", c, r.NoCPackets[c])
	}
	fmt.Println(")")
	e := r.Energy
	fmt.Printf("  energy (pJ)      total=%.0f cpus=%.0f caches=%.0f noc=%.0f others=%.0f spms=%.0f cohprot=%.0f\n",
		e.Total(), e.CPUs, e.Caches, e.NoC, e.Others, e.SPMs, e.CohProt)
	if sys == config.HybridReal {
		fmt.Printf("  filter hit ratio %.2f%%\n", r.FilterHitRatio*100)
		fmt.Printf("  LSQ flushes      %d\n", r.Flushes)
	}
	if sys != config.CacheBased {
		fmt.Printf("  DMA line xfers   %d\n", r.DMALineTransfers)
	}
}
