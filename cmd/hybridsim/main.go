// Command hybridsim runs one benchmark on one machine configuration and
// prints its measurements.
//
// Usage:
//
//	hybridsim -bench CG -system hybrid -cores 64 -scale small
//	hybridsim -bench CG -system hybrid -set l1d_size=65536 -set mem_latency=200
//	hybridsim -bench IS -system hybrid -sweep filter_entries=16,32,48,64 -csv
//	hybridsim -workload stream:stride=128 -sweep cores=4,8
//	hybridsim -workload ptrchase -wsweep hot_pct=0,25,50,75,100
//	hybridsim -workloads
//
// Systems: cache (baseline, 64KB L1D), hybrid (SPMs + the paper's coherence
// protocol), ideal (SPMs + oracle coherence). Every machine knob of
// config.Config can be overridden by name with -set (see config.Knobs), and
// every workload of the registry — the paper's NAS six plus the
// parameterized synthetic generators (-workloads lists them) — is
// addressable as "-workload name:param=value,...". Repeatable -sweep
// (machine knobs) and -wsweep (workload parameters) flags turn the
// invocation into an axis sweep printed as a per-column CSV.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/analysis"
	"repro/internal/buildinfo"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/noc"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

func main() {
	benchName := flag.String("bench", "CG", "benchmark name (see -workloads)")
	workloadFlag := flag.String("workload", "", "workload spelling name[:param=value,...] — overrides -bench (see -workloads)")
	sysName := flag.String("system", "hybrid", "machine: cache, hybrid, ideal")
	cores := flag.Int("cores", 64, "core count (square-ish mesh is chosen automatically)")
	scaleName := flag.String("scale", "small", "workload scale: tiny, small")
	showConfig := flag.Bool("config", false, "print the Table 1 machine description and exit")
	csv := flag.Bool("csv", false, "emit results as CSV")
	maxEvents := flag.Uint64("max-events", 0, "abort after this many simulation events (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "abort the run after this much wall-clock (0 = unlimited)")
	listKnobs := flag.Bool("knobs", false, "list every -set/-sweep machine knob with its default and exit")
	listWorkloads := flag.Bool("workloads", false, "list the workload catalog (names, params, defaults) and exit")
	var sets, sweeps, wsweeps runner.MultiFlag
	flag.Var(&sets, "set", "override one machine knob, name=value (repeatable; cores=N wins over -cores)")
	flag.Var(&sweeps, "sweep", "sweep one machine knob, name=v1,v2,... (repeatable; prints a per-column CSV)")
	flag.Var(&wsweeps, "wsweep", "sweep one workload parameter, name=v1,v2,... (repeatable; prints a per-column CSV)")
	workers := flag.Int("workers", 0, "parallel simulations for -sweep/-wsweep (0 = one per host CPU)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	interval := flag.Uint64("interval", 0, "sample counters every N cycles into a time series (0 = off; single run only)")
	timelinePath := flag.String("timeline", "", "write the -interval time series here (.json = JSON, else CSV; default stdout CSV)")
	tracePath := flag.String("trace", "", "record an event trace here (.jsonl = JSON lines, else Chrome trace_event JSON for Perfetto)")
	traceEvents := flag.Int("trace-events", 1<<16, "event-trace ring-buffer capacity (oldest events drop first)")
	analyze := flag.Bool("analyze", false, "run the bottleneck advisor over the finished run and print its findings")
	findingsPath := flag.String("findings", "", "write -analyze findings as JSON here (default: text after the report; CSV mode: text to stderr)")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *version {
		fmt.Println("hybridsim", buildinfo.Version())
		return
	}

	if *listWorkloads {
		report.WorkloadCatalog(os.Stdout)
		return
	}

	sys, err := config.ParseMemorySystem(*sysName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *listKnobs {
		def := config.ForSystem(sys)
		fmt.Printf("%-22s %s\n", "knob", "default ("+sys.String()+")")
		for _, k := range config.Knobs() {
			fmt.Printf("%-22s %d\n", k.Name, *k.Field(&def))
		}
		return
	}

	if *showConfig {
		ov, err := config.ParseOverrides(sets)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// Materialize through Spec.Config so the printed machine carries the
		// same derived adjustments (mesh re-dimensioning, controller cap) a
		// real run with these flags would get.
		spec := system.Spec{System: sys, Overrides: ov, Cores: runner.CoresFlag(ov, *cores)}
		report.Table1(os.Stdout, spec.Config())
		return
	}

	scale, err := workloads.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	overrides, err := config.ParseOverrides(sets)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	*cores = runner.CoresFlag(overrides, *cores)

	// -workload carries an optional parameter payload; a bare -bench is the
	// parameterless spelling of the same thing.
	spelling := *benchName
	if *workloadFlag != "" {
		spelling = *workloadFlag
	}
	bench, params, err := workloads.ParseWorkload(spelling)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	if len(sweeps) > 0 || len(wsweeps) > 0 {
		if *interval > 0 || *tracePath != "" {
			fmt.Fprintln(os.Stderr, "-interval/-trace apply to a single run, not a sweep")
			os.Exit(2)
		}
		runSweep(ctx, sys, workloads.FormatWorkload(bench, params), scale,
			*cores, *maxEvents, overrides, sweeps, wsweeps, *workers, *analyze)
		return
	}

	spec := system.Spec{
		System:    sys,
		Benchmark: bench,
		Params:    workloads.FormatParams(bench, params),
		Scale:     scale,
		Overrides: overrides,
		Cores:     *cores,
		MaxEvents: *maxEvents,
	}

	// Telemetry: sampling (-interval) and tracing (-trace) ride one Recorder
	// attached to the machine; a run without either executes the exact same
	// code path as before (nil recorder).
	var rec *telemetry.Recorder
	if *interval > 0 || *tracePath != "" {
		events := 0
		if *tracePath != "" {
			events = *traceEvents
		}
		rec = telemetry.NewRecorder(*interval, events)
	}
	// -analyze observes the run through the same execute path, snapshotting
	// the raw hardware counters after completion so every advisor rule has
	// its input. Observation only: results are bit-identical either way.
	var r system.Results
	var stats map[string]uint64
	if *analyze {
		r, stats, err = spec.ExecuteObserved(ctx, rec)
	} else {
		r, err = spec.ExecuteRecorded(ctx, rec)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulation failed: %v\n", err)
		stopProfiles()
		os.Exit(1)
	}
	export := func() {
		if rec == nil {
			return
		}
		if err := exportTelemetry(rec, *timelinePath, *tracePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			stopProfiles()
			os.Exit(1)
		}
	}
	advise := func(textOut *os.File) {
		if !*analyze {
			return
		}
		in := analysis.Input{Config: spec.Config(), Results: r, Stats: stats}
		if rec != nil && rec.Interval() > 0 {
			ts := rec.Series()
			in.Series = &ts
		}
		rep := analysis.Analyze(in)
		if *findingsPath != "" {
			f, err := os.Create(*findingsPath)
			if err == nil {
				err = report.FindingsJSON(f, rep)
				f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				stopProfiles()
				os.Exit(1)
			}
			return
		}
		report.FindingsText(textOut, rep)
	}

	if *csv {
		report.CSV(os.Stdout, []system.Results{r})
		export()
		advise(os.Stderr) // keep stdout machine-readable
		return
	}

	fmt.Printf("%s on %s (%d cores, %s scale)\n", r.Benchmark, r.System, spec.Config().Cores, scale)
	if diff, ok := spec.ParamDiff(); ok && len(diff) > 0 {
		fmt.Print("  workload params ")
		for _, pv := range diff {
			fmt.Printf(" %s=%d", pv.Name, pv.Value)
		}
		fmt.Println()
	}
	if diff := spec.KnobDiff(); len(diff) > 0 {
		fmt.Print("  overrides       ")
		for _, kv := range diff {
			fmt.Printf(" %s=%d", kv.Name, kv.Value)
		}
		fmt.Println()
	}
	fmt.Printf("  cycles           %d\n", r.Cycles)
	fmt.Printf("  phase cycles     control=%d sync=%d work=%d\n",
		r.PhaseCycles[isa.PhaseControl], r.PhaseCycles[isa.PhaseSync], r.PhaseCycles[isa.PhaseWork])
	fmt.Printf("  retired instrs   %d\n", r.Retired)
	fmt.Printf("  NoC packets      %d (", r.TotalPkts)
	for c := noc.Category(0); c < noc.NumCategories; c++ {
		if c > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("%s=%d", c, r.NoCPackets[c])
	}
	fmt.Println(")")
	e := r.Energy
	fmt.Printf("  energy (pJ)      total=%.0f cpus=%.0f caches=%.0f noc=%.0f others=%.0f spms=%.0f cohprot=%.0f\n",
		e.Total(), e.CPUs, e.Caches, e.NoC, e.Others, e.SPMs, e.CohProt)
	if sys == config.HybridReal {
		fmt.Printf("  filter hit ratio %.2f%%\n", r.FilterHitRatio*100)
		fmt.Printf("  LSQ flushes      %d\n", r.Flushes)
	}
	if sys != config.CacheBased {
		fmt.Printf("  DMA line xfers   %d\n", r.DMALineTransfers)
	}
	export()
	advise(os.Stdout)
}

// exportTelemetry writes the recorder's products: the sampled time series to
// timelinePath (.json = indented JSON, otherwise CSV; "" = CSV on stdout,
// after the run report) and the event trace to tracePath (.jsonl = JSON
// lines, otherwise Chrome trace_event JSON that Perfetto and chrome://tracing
// open directly).
func exportTelemetry(rec *telemetry.Recorder, timelinePath, tracePath string) error {
	if rec.Interval() > 0 {
		out := os.Stdout
		if timelinePath != "" {
			f, err := os.Create(timelinePath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		ts := rec.Series()
		var err error
		if strings.HasSuffix(timelinePath, ".json") {
			err = report.TimelineJSON(out, ts)
		} else {
			err = report.TimelineCSV(out, ts)
		}
		if err != nil {
			return fmt.Errorf("timeline: %w", err)
		}
	}
	if tr := rec.Tracer(); tr != nil && tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		events := tr.Events()
		if strings.HasSuffix(tracePath, ".jsonl") {
			err = telemetry.WriteJSONL(f, events)
		} else {
			err = telemetry.WriteChromeTrace(f, events, map[string]string{
				"dropped": fmt.Sprint(tr.Dropped()),
			})
		}
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events to %s (%d dropped from the ring)\n",
			len(events), tracePath, tr.Dropped())
	}
	return nil
}

// startProfiles begins CPU profiling and/or arranges a post-run heap
// profile. The returned stop function is idempotent and must run before the
// process exits for the profiles to be complete.
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}
}

// runSweep expands -sweep knob axes and -wsweep workload-parameter axes
// over the selected workload and system and prints the per-column CSV
// (report.SweepCSV).
func runSweep(ctx context.Context, sys config.MemorySystem, workload string, scale workloads.Scale,
	cores int, maxEvents uint64, base config.Overrides, sweeps, wsweeps []string, workers int, analyze bool) {
	axes, err := runner.ParseKnobAxes(sweeps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	waxes, err := runner.ParseParamAxes(wsweeps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	specs, err := runner.Axes{
		Benchmarks: []string{workload},
		Systems:    []config.MemorySystem{sys},
		Scale:      scale,
		Cores:      cores,
		MaxEvents:  maxEvents,
		Base:       base,
		Knobs:      axes,
		WParams:    waxes,
	}.Specs()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	results, err := runner.Collect(runner.RunContext(ctx, specs, runner.Options{Workers: workers, Progress: os.Stderr}))
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep failed: %v\n", err)
		os.Exit(1)
	}
	if err := report.SweepCSV(os.Stdout, specs, results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if analyze {
		// Stderr keeps the CSV stream on stdout machine-readable.
		report.SweepFindingsText(os.Stderr, analysis.Sweep(specs, results))
	}
}
