// Command hybridsimd is the simulation daemon: it serves the Spec/runner
// core over HTTP with a content-addressed result cache, so a fixed
// evaluation matrix re-requested many times costs one pass of simulation.
//
// Serve mode (default):
//
//	hybridsimd -addr :8080 -workers 8 -cache-entries 512 -cache-dir ./results
//
// Client mode (-client URL) drives a running daemon, for CI smoke tests and
// shell pipelines:
//
//	hybridsimd -client http://127.0.0.1:8080 -bench CG -system hybrid -scale tiny -cores 4
//	hybridsimd -client http://127.0.0.1:8080 -sweep -scale tiny -cores 4
//	hybridsimd -client http://127.0.0.1:8080 -stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/rescache"
	"repro/internal/service"
	"repro/internal/system"
	"repro/internal/workloads"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	// Serve-mode flags.
	addr := flag.String("addr", ":8080", "serve mode: HTTP listen address")
	workers := flag.Int("workers", 0, "simulation workers (0 = one per host CPU)")
	queue := flag.Int("queue", service.DefaultQueueDepth, "job queue depth; a full queue rejects submissions with 503")
	cacheEntries := flag.Int("cache-entries", service.DefaultCacheEntries, "in-memory result cache capacity (specs)")
	cacheDir := flag.String("cache-dir", "", "directory for the on-disk result tier (empty = memory only)")

	// Client-mode flags.
	client := flag.String("client", "", "client mode: base URL of a running daemon")
	benchName := flag.String("bench", "CG", "client mode: benchmark to run")
	sysName := flag.String("system", "hybrid", "client mode: machine (cache, hybrid, ideal)")
	scaleName := flag.String("scale", "tiny", "client mode: workload scale")
	cores := flag.Int("cores", 4, "client mode: core count (0 = Table 1 default)")
	sweep := flag.Bool("sweep", false, "client mode: stream the full benchmark x system matrix instead of one run")
	stats := flag.Bool("stats", false, "client mode: print daemon stats and exit")
	timeout := flag.Duration("timeout", 0, "client mode: per-request deadline forwarded to the daemon (0 = none)")
	flag.Parse()

	if *client != "" {
		runClient(*client, *benchName, *sysName, *scaleName, *cores, *sweep, *stats, *timeout)
		return
	}
	serve(*addr, *workers, *queue, *cacheEntries, *cacheDir)
}

// serve runs the daemon until SIGINT/SIGTERM, then drains gracefully.
func serve(addr string, workers, queue, cacheEntries int, cacheDir string) {
	cache, err := rescache.New(cacheEntries, cacheDir)
	if err != nil {
		fatalf("%v", err)
	}
	srv := service.New(service.Options{Workers: workers, QueueDepth: queue, Cache: cache})
	defer srv.Close()

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
	}()

	fmt.Fprintf(os.Stderr, "hybridsimd listening on %s (cache %d entries", addr, cacheEntries)
	if cacheDir != "" {
		fmt.Fprintf(os.Stderr, " + disk tier %s", cacheDir)
	}
	fmt.Fprintln(os.Stderr, ")")
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("%v", err)
	}
	fmt.Fprintln(os.Stderr, "hybridsimd: shut down")
}

// runClient executes one client-mode action against a running daemon.
func runClient(base, benchName, sysName, scaleName string, cores int, sweep, stats bool, timeout time.Duration) {
	c := &service.Client{Base: base}
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		fatalf("daemon not healthy: %v", err)
	}

	switch {
	case stats:
		st, err := c.Stats(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		total := st.Cache.Hits + st.Cache.Misses
		rate := 0.0
		if total > 0 {
			rate = float64(st.Cache.Hits) / float64(total)
		}
		fmt.Printf("cache: entries=%d/%d hits=%d (mem=%d disk=%d dedup=%d) misses=%d hit-rate=%.2f%%\n",
			st.Cache.Entries, st.Cache.Capacity, st.Cache.Hits, st.Cache.MemHits,
			st.Cache.DiskHits, st.Cache.Dedup, st.Cache.Misses, rate*100)
		fmt.Printf("queue: depth=%d/%d workers=%d\n", st.QueueDepth, st.QueueCap, st.Workers)
		fmt.Printf("runs:  submitted=%d completed=%d failed=%d rejected=%d\n",
			st.Submitted, st.Completed, st.Failed, st.Rejected)

	case sweep:
		sum, err := c.Sweep(ctx, service.Matrix{Scale: scaleName, Cores: cores}, timeout,
			func(rec service.RunRecord) error {
				if rec.Status != "done" || rec.Results == nil {
					fmt.Printf("[%d/%d] %s %s: %s\n", rec.Index+1, rec.Total, rec.Spec.Key(), rec.Status, rec.Error)
					return nil
				}
				fmt.Printf("[%d/%d] %s cycles=%d cached=%v wall=%.1fms\n",
					rec.Index+1, rec.Total, rec.Spec.Key(), rec.Results.Cycles, rec.Cached, rec.WallMS)
				return nil
			})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("sweep: %d runs, %d failed, %.1fs wall, cache hit-rate %s\n",
			sum.Runs, sum.Failed, sum.WallMS/1000, hitRate(sum.Cache))
		if sum.Failed > 0 {
			os.Exit(1)
		}

	default:
		sys, err := config.ParseMemorySystem(sysName)
		if err != nil {
			fatalf("%v", err)
		}
		scale, err := workloads.ParseScale(scaleName)
		if err != nil {
			fatalf("%v", err)
		}
		spec := system.Spec{System: sys, Benchmark: benchName, Scale: scale, Cores: cores}
		rec, err := c.Run(ctx, spec, timeout)
		if err != nil {
			fatalf("%v", err)
		}
		r := rec.Results
		fmt.Printf("%s key=%s cached=%v wall=%.1fms\n", spec.Key(), rec.Key, rec.Cached, rec.WallMS)
		fmt.Printf("  cycles=%d retired=%d packets=%d energy=%.0f\n",
			r.Cycles, r.Retired, r.TotalPkts, r.Energy.Total())
	}
}

func hitRate(st rescache.Stats) string {
	total := st.Hits + st.Misses
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", float64(st.Hits)/float64(total)*100)
}
