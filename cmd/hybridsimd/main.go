// Command hybridsimd is the simulation daemon: it serves the Spec/runner
// core over HTTP with a content-addressed result cache, so a fixed
// evaluation matrix re-requested many times costs one pass of simulation.
//
// Serve mode (default):
//
//	hybridsimd -addr :8080 -workers 8 -cache-entries 512 -cache-dir ./results
//
// Fleet mode federates daemons into a consistent-hash cluster (every member
// lists the same -peers set; placement needs no coordinator):
//
//	hybridsimd -addr :8080 -node-id a -peers a=http://hostA:8080,b=http://hostB:8080
//	hybridsimd -addr :8080 -node-id b -peers a=http://hostA:8080,b=http://hostB:8080
//
// Client mode (-client URL) drives a running daemon, for CI smoke tests and
// shell pipelines:
//
//	hybridsimd -client http://127.0.0.1:8080 -bench CG -system hybrid -scale tiny -cores 4
//	hybridsimd -client http://127.0.0.1:8080 -bench CG -set l1d_size=65536
//	hybridsimd -client http://127.0.0.1:8080 -workload stream:stride=128 -scale tiny -cores 4
//	hybridsimd -client http://127.0.0.1:8080 -sweep -scale tiny -cores 4
//	hybridsimd -client http://127.0.0.1:8080 -sweep=filter_entries=16,32,48 -scale tiny -cores 4
//	hybridsimd -client http://127.0.0.1:8080 -workload ptrchase -wsweep=hot_pct=0,50,100 -scale tiny -cores 4
//	hybridsimd -client http://127.0.0.1:8080 -stats
//	hybridsimd -workloads
//
// Plan mode (-plan, within client mode) asks a question instead of
// enumerating a grid — an internal/planner strategy searches the -sweep
// axes for the answer and every probe lands in the daemon's cache:
//
//	hybridsimd -client http://127.0.0.1:8080 -plan knee -bench IS -scale tiny -cores 4 \
//	    -sweep=filter_entries=4,8,12,16,20,24,28,32,36,40,44,48,52,56,60,64 \
//	    -objective 'hit_ratio~0.99'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/planner"
	"repro/internal/report"
	"repro/internal/rescache"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/system"
	"repro/internal/workloads"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	// Serve-mode flags.
	addr := flag.String("addr", ":8080", "serve mode: HTTP listen address")
	workers := flag.Int("workers", 0, "simulation workers (0 = one per host CPU)")
	queue := flag.Int("queue", service.DefaultQueueDepth, "job queue depth; a full queue sheds submissions with 429")
	cacheEntries := flag.Int("cache-entries", service.DefaultCacheEntries, "in-memory result cache capacity (specs)")
	cacheDir := flag.String("cache-dir", "", "directory for the on-disk result tier (empty = memory only)")
	timelineCap := flag.Int("timeline-cap", service.DefaultTimelineCap, "retained run timelines; past it the oldest is dropped")
	pprofOn := flag.Bool("pprof", false, "serve mode: expose Go profiling handlers under /debug/pprof/ (opt-in)")
	nodeID := flag.String("node-id", "", "fleet mode: this daemon's member ID (must appear in -peers)")
	peers := flag.String("peers", "", "fleet mode: static membership, id=url,id=url,... (identical on every member)")

	// Client-mode flags.
	client := flag.String("client", "", "client mode: base URL of a running daemon")
	benchName := flag.String("bench", "CG", "client mode: benchmark to run")
	workloadFlag := flag.String("workload", "", "client mode: workload spelling name[:param=value,...] — overrides -bench (see -workloads)")
	sysName := flag.String("system", "hybrid", "client mode: machine (cache, hybrid, ideal)")
	scaleName := flag.String("scale", "tiny", "client mode: workload scale")
	cores := flag.Int("cores", 4, "client mode: core count (0 = Table 1 default)")
	var sweep sweepFlag
	flag.Var(&sweep, "sweep", "client mode: stream the workload x system matrix instead of one run; -sweep=knob=v1,v2,... also sweeps a machine knob (repeatable)")
	var wsweeps runner.MultiFlag
	flag.Var(&wsweeps, "wsweep", "client mode: sweep one workload parameter, name=v1,v2,... (repeatable; implies -sweep)")
	plan := flag.String("plan", "", "client mode: answer a question instead of sweeping a grid — strategy name (knee, pareto, halving); axes come from -sweep/-wsweep, the goal from -objective")
	var objectives runner.MultiFlag
	flag.Var(&objectives, "objective", "client mode, -plan: objective or constraint clause — metric | min:metric | max:metric | metric>=X | metric<=X | metric~slack (repeatable)")
	budget := flag.Int("budget", 0, "client mode, -plan: max executed probes (0 = strategy default)")
	pick := flag.String("pick", "", "client mode, -plan knee: smallest (default) or largest satisfying axis value")
	stats := flag.Bool("stats", false, "client mode: print daemon stats and exit")
	analyze := flag.Bool("analyze", false, "client mode: fetch the run's bottleneck analysis (single run) or a cross-run sweep analysis (-sweep)")
	timeout := flag.Duration("timeout", 0, "client mode: per-request deadline forwarded to the daemon (0 = none)")
	retries := flag.Int("retries", 2, "client mode: automatic retries after a load-shed (429) or unavailable (503) answer")
	var sets runner.MultiFlag
	flag.Var(&sets, "set", "client mode: override one machine knob, name=value (repeatable; cores=N wins over -cores)")
	listWorkloads := flag.Bool("workloads", false, "list the workload catalog (names, params, defaults) and exit")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *version {
		fmt.Println("hybridsimd", buildinfo.Version())
		return
	}
	if *listWorkloads {
		report.WorkloadCatalog(os.Stdout)
		return
	}
	if flag.NArg() != 0 {
		// -sweep is a bool-style flag, so a space-separated payload
		// ("-sweep knob=v1,v2") would land here as a positional argument and
		// silently drop it plus every flag after it. Fail loudly instead.
		fatalf("unexpected arguments %q (axis payloads need the -sweep=knob=v1,v2,... form)", flag.Args())
	}

	if *client != "" {
		// A sweep defaults to the full workload x system matrix; flags the
		// user explicitly passed narrow it. -wsweep axes need a sweep to
		// ride on.
		if len(wsweeps) > 0 {
			sweep.enabled = true
		}
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		runClient(*client, *benchName, *workloadFlag, *sysName, *scaleName, *cores, sweep, wsweeps,
			*plan, objectives, *budget, *pick, *stats, *analyze, *timeout, *retries, sets, explicit)
		return
	}
	serve(*addr, *workers, *queue, *cacheEntries, *cacheDir, *timelineCap, *pprofOn, *nodeID, *peers)
}

// parsePeers decodes the -peers membership list ("id=url,id=url,...").
func parsePeers(s string) ([]cluster.Node, error) {
	var nodes []cluster.Node
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", part)
		}
		nodes = append(nodes, cluster.Node{ID: id, URL: strings.TrimRight(u, "/")})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	return nodes, nil
}

// sweepFlag keeps the historical bare "-sweep" boolean (stream the full
// matrix) while also accepting repeatable "-sweep=knob=v1,v2,..." axis
// payloads — the flag package routes both here because IsBoolFlag is true.
type sweepFlag struct {
	enabled bool
	axes    runner.MultiFlag
}

func (f *sweepFlag) String() string   { return fmt.Sprint(f.axes) }
func (f *sweepFlag) IsBoolFlag() bool { return true }
func (f *sweepFlag) Set(s string) error {
	switch s {
	case "true":
		f.enabled = true
	case "false":
		f.enabled = false
		f.axes = nil
	default:
		f.enabled = true
		f.axes = append(f.axes, s)
	}
	return nil
}

// serve runs the daemon until SIGINT/SIGTERM, then drains gracefully:
// in-flight HTTP requests (including forwarded peer work) first, then the
// cluster's outstanding transfers, then the worker pool.
func serve(addr string, workers, queue, cacheEntries int, cacheDir string, timelineCap int, pprofOn bool, nodeID, peers string) {
	cache, err := rescache.New(cacheEntries, cacheDir)
	if err != nil {
		fatalf("%v", err)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cache.SetLogger(log)

	var cl *cluster.Cluster
	if peers != "" {
		if nodeID == "" {
			fatalf("-peers requires -node-id")
		}
		nodes, err := parsePeers(peers)
		if err != nil {
			fatalf("%v", err)
		}
		if cl, err = cluster.New(cluster.Options{Self: nodeID, Peers: nodes, Log: log}); err != nil {
			fatalf("%v", err)
		}
	} else if nodeID != "" {
		fatalf("-node-id requires -peers")
	}

	srv := service.New(service.Options{Workers: workers, QueueDepth: queue, Cache: cache,
		TimelineCap: timelineCap, Log: log, Cluster: cl})
	defer srv.Close()

	handler := srv.Handler()
	if pprofOn {
		// Opt-in profiling endpoints: live CPU/heap/goroutine profiles of
		// a serving daemon without restarting it.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
	}()

	fmt.Fprintf(os.Stderr, "hybridsimd listening on %s (cache %d entries", addr, cacheEntries)
	if cacheDir != "" {
		fmt.Fprintf(os.Stderr, " + disk tier %s", cacheDir)
	}
	if cl != nil {
		fmt.Fprintf(os.Stderr, ", fleet member %s", nodeID)
	}
	fmt.Fprintln(os.Stderr, ")")
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("%v", err)
	}
	// ListenAndServe returns the instant Shutdown begins, while in-flight
	// handlers — including requests forwarded here by fleet peers — are
	// still draining. Wait for Shutdown to finish before tearing anything
	// down, so a drain-window request is answered, not cancelled mid-run;
	// then stop the cluster's own outstanding transfers, and only then
	// (via the deferred Close) the worker pool.
	<-shutdownDone
	if cl != nil {
		cl.Close()
		drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		cl.Drain(drainCtx)
		cancel()
	}
	fmt.Fprintln(os.Stderr, "hybridsimd: shut down")
}

// runClient executes one client-mode action against a running daemon.
// explicit records which flags the user actually passed (flag.Visit).
func runClient(base, benchName, workloadFlag, sysName, scaleName string, cores int, sweep sweepFlag, wsweeps []string,
	plan string, objectives []string, budget int, pick string, stats, analyze bool, timeout time.Duration, retries int, sets []string, explicit map[string]bool) {
	c := &service.Client{Base: base, Retries: retries}
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		fatalf("daemon not healthy: %v", err)
	}
	overrides, err := config.ParseOverrides(sets)
	if err != nil {
		fatalf("%v", err)
	}
	// -workload overrides -bench and may carry a parameter payload.
	spelling := benchName
	if workloadFlag != "" {
		spelling = workloadFlag
	}
	bench, params, err := workloads.ParseWorkload(spelling)
	if err != nil {
		fatalf("%v", err)
	}

	switch {
	case stats:
		st, err := c.Stats(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		total := st.Cache.Hits + st.Cache.Misses
		rate := 0.0
		if total > 0 {
			rate = float64(st.Cache.Hits) / float64(total)
		}
		fmt.Printf("cache: entries=%d/%d hits=%d (mem=%d disk=%d dedup=%d) misses=%d hit-rate=%.2f%%\n",
			st.Cache.Entries, st.Cache.Capacity, st.Cache.Hits, st.Cache.MemHits,
			st.Cache.DiskHits, st.Cache.Dedup, st.Cache.Misses, rate*100)
		fmt.Printf("queue: depth=%d/%d workers=%d\n", st.QueueDepth, st.QueueCap, st.Workers)
		fmt.Printf("runs:  submitted=%d completed=%d failed=%d rejected=%d\n",
			st.Submitted, st.Completed, st.Failed, st.Rejected)

	case plan != "":
		axes, err := runner.ParseKnobAxes(sweep.axes)
		if err != nil {
			fatalf("%v", err)
		}
		waxes, err := runner.ParseParamAxes(wsweeps)
		if err != nil {
			fatalf("%v", err)
		}
		objs, cons, err := planner.ParseObjectives(objectives)
		if err != nil {
			fatalf("%v", err)
		}
		req := service.PlanRequest{
			Strategy:  plan,
			Benchmark: workloads.FormatWorkload(bench, params),
			System:    sysName,
			Scale:     scaleName,
			Cores:     cores,
			Sweep:     axes, WSweep: waxes,
			Constraint: cons,
			Pick:       pick, Budget: budget,
		}
		// One objective clause is the halving form; several are pareto's.
		if len(objs) == 1 {
			req.Objective = &objs[0]
		} else {
			req.Objectives = objs
		}
		if !overrides.IsZero() {
			req.Overrides = &overrides
		}
		var probes []planner.Probe
		v, err := c.Plan(ctx, req, timeout, func(p planner.Probe) error {
			probes = append(probes, p)
			return nil
		})
		if err != nil {
			fatalf("%v", err)
		}
		report.PlanText(os.Stdout, probes, v)

	case sweep.enabled:
		axes, err := runner.ParseKnobAxes(sweep.axes)
		if err != nil {
			fatalf("%v", err)
		}
		waxes, err := runner.ParseParamAxes(wsweeps)
		if err != nil {
			fatalf("%v", err)
		}
		m := service.Matrix{Scale: scaleName, Cores: cores, Sweep: axes, WSweep: waxes, Analyze: analyze}
		if explicit["bench"] || explicit["workload"] {
			m.Benchmarks = []string{workloads.FormatWorkload(bench, params)}
		}
		if explicit["system"] {
			m.Systems = []string{sysName}
		}
		if !overrides.IsZero() {
			m.Overrides = &overrides
		}
		sum, err := c.Sweep(ctx, m, timeout,
			func(rec service.RunRecord) error {
				if rec.Status != "done" || rec.Results == nil {
					fmt.Printf("[%d/%d] %s %s: %s\n", rec.Index+1, rec.Total, rec.Spec.Key(), rec.Status, rec.Error)
					return nil
				}
				fmt.Printf("[%d/%d] %s cycles=%d cached=%v wall=%.1fms\n",
					rec.Index+1, rec.Total, rec.Spec.Key(), rec.Results.Cycles, rec.Cached, rec.WallMS)
				return nil
			})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("sweep: %d runs, %d failed, %.1fs wall, cache hit-rate %s\n",
			sum.Runs, sum.Failed, sum.WallMS/1000, hitRate(sum.Cache))
		if sum.Analysis != nil {
			report.SweepFindingsText(os.Stdout, *sum.Analysis)
		}
		if sum.Failed > 0 {
			os.Exit(1)
		}

	default:
		sys, err := config.ParseMemorySystem(sysName)
		if err != nil {
			fatalf("%v", err)
		}
		scale, err := workloads.ParseScale(scaleName)
		if err != nil {
			fatalf("%v", err)
		}
		spec := system.Spec{System: sys, Benchmark: bench,
			Params: workloads.FormatParams(bench, params), Scale: scale,
			Cores: runner.CoresFlag(overrides, cores), Overrides: overrides}
		rec, err := c.Run(ctx, spec, timeout)
		if err != nil {
			fatalf("%v", err)
		}
		r := rec.Results
		fmt.Printf("%s key=%s cached=%v wall=%.1fms\n", spec.Key(), rec.Key, rec.Cached, rec.WallMS)
		fmt.Printf("  cycles=%d retired=%d packets=%d energy=%.0f\n",
			r.Cycles, r.Retired, r.TotalPkts, r.Energy.Total())
		if analyze {
			rep, err := c.Analysis(ctx, rec.Key)
			if err != nil {
				fatalf("%v", err)
			}
			report.FindingsText(os.Stdout, rep)
		}
	}
}

func hitRate(st rescache.Stats) string {
	total := st.Hits + st.Misses
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", float64(st.Hits)/float64(total)*100)
}
