// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables 1-2, Figures 7-11) plus the repository's ablation
// studies, writing text reports to stdout and CSV data to -out.
//
// Usage:
//
//	experiments                 # everything, 64 cores, small scale
//	experiments -only fig9      # one exhibit
//	experiments -cores 16 -scale tiny   # quick pass
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/config"
	"repro/internal/report"
	"repro/internal/system"
	"repro/internal/workloads"
)

func main() {
	cores := flag.Int("cores", 64, "core count")
	scaleName := flag.String("scale", "small", "workload scale: tiny, small")
	only := flag.String("only", "", "run one exhibit: table1, table2, fig7, fig8, fig9, fig10, fig11, ablation")
	outPath := flag.String("out", "", "also write all results as CSV to this file")
	flag.Parse()

	scale := workloads.Small
	if *scaleName == "tiny" {
		scale = workloads.Tiny
	}
	want := func(name string) bool { return *only == "" || *only == name }

	if want("table1") {
		report.Table1(os.Stdout, config.Default())
		fmt.Println()
	}
	if want("table2") {
		report.Table2(os.Stdout, workloads.All(scale))
		fmt.Println()
	}

	needsRuns := false
	for _, ex := range []string{"fig7", "fig8", "fig9", "fig10", "fig11"} {
		if want(ex) {
			needsRuns = true
		}
	}
	if !needsRuns && !want("ablation") {
		return
	}

	names := workloads.Names()
	cacheRes := map[string]system.Results{}
	hybridRes := map[string]system.Results{}
	idealRes := map[string]system.Results{}
	var all []system.Results

	if needsRuns {
		for _, n := range names {
			for _, sys := range []config.MemorySystem{config.CacheBased, config.HybridReal, config.HybridIdeal} {
				t0 := time.Now()
				r, err := system.RunBenchmark(sys, workloads.Build(n, scale), *cores, 0)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s on %v failed: %v\n", n, sys, err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "ran %s/%v in %.1fs (%d cycles)\n", n, sys, time.Since(t0).Seconds(), r.Cycles)
				all = append(all, r)
				switch sys {
				case config.CacheBased:
					cacheRes[n] = r
				case config.HybridReal:
					hybridRes[n] = r
				case config.HybridIdeal:
					idealRes[n] = r
				}
			}
		}
		fmt.Println()
		if want("fig7") {
			report.Fig7(os.Stdout, names, hybridRes, idealRes)
			fmt.Println()
		}
		if want("fig8") {
			report.Fig8(os.Stdout, names, hybridRes)
			fmt.Println()
		}
		if want("fig9") {
			report.Fig9(os.Stdout, names, cacheRes, hybridRes)
			fmt.Println()
		}
		if want("fig10") {
			report.Fig10(os.Stdout, names, cacheRes, hybridRes)
			fmt.Println()
		}
		if want("fig11") {
			report.Fig11(os.Stdout, names, cacheRes, hybridRes)
			fmt.Println()
		}
	}

	if want("ablation") {
		runAblation(*cores, scale)
	}

	if *outPath != "" && len(all) > 0 {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot write %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		defer f.Close()
		report.CSV(f, all)
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
	}
}

// runAblation sweeps the filter size on IS (the most filter-sensitive
// benchmark) — the design-choice study DESIGN.md calls Ablation A.
func runAblation(cores int, scale workloads.Scale) {
	fmt.Println("Ablation A: filter size sweep on IS (hybrid, real protocol)")
	fmt.Printf("  %-8s %-10s %-10s %-10s\n", "Entries", "HitRatio", "Cycles", "CohPkts")
	for _, entries := range []int{8, 16, 32, 48, 64} {
		cfg := config.ForSystem(config.HybridReal)
		cfg.FilterEntries = entries
		if cores != cfg.Cores {
			cfg = shrinkTo(cfg, cores)
		}
		m, err := system.Build(cfg, workloads.Build("IS", scale), 0xC0FFEE)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablation build: %v\n", err)
			return
		}
		r, err := m.Run(0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablation run: %v\n", err)
			return
		}
		var coh uint64
		coh = r.NoCPackets[5] // CohProt
		fmt.Printf("  %-8d %-10.4f %-10d %-10d\n", entries, r.FilterHitRatio, r.Cycles, coh)
	}
}

// shrinkTo adapts the mesh to a smaller core count (mirrors system.shrink,
// kept local to avoid exporting a test helper).
func shrinkTo(cfg config.Config, cores int) config.Config {
	w, h := 1, cores
	for d := 1; d*d <= cores; d++ {
		if cores%d == 0 {
			w, h = d, cores/d
		}
	}
	cfg.Cores = cores
	cfg.MeshWidth = w
	cfg.MeshHeight = h
	if cfg.MemControllers > cores {
		cfg.MemControllers = cores
	}
	if cfg.FilterDirEntries < cores {
		cfg.FilterDirEntries = cores
	}
	return cfg
}
