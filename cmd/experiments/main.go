// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables 1-2, Figures 7-11) plus the repository's ablation
// studies, writing text reports to stdout and CSV/JSON data to -out.
//
// The 18 machine simulations of the full matrix (6 benchmarks x 3 memory
// systems) are independent, so they fan out across -workers goroutines;
// results are identical for any worker count.
//
// Usage:
//
//	experiments                 # everything, 64 cores, small scale
//	experiments -only fig9      # one exhibit
//	experiments -cores 16 -scale tiny -workers 8   # quick parallel pass
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/system"
	"repro/internal/workloads"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	cores := flag.Int("cores", 64, "core count")
	scaleName := flag.String("scale", "small", "workload scale: tiny, small")
	only := flag.String("only", "", "run one exhibit: table1, table2, fig7, fig8, fig9, fig10, fig11, ablation")
	outPath := flag.String("out", "", "also write all results to this file (.csv, .json or .jsonl)")
	format := flag.String("format", "", "output format for -out: csv, json or jsonl (default: from the file extension)")
	workers := flag.Int("workers", 0, "parallel simulations (0 = one per host CPU)")
	timeout := flag.Duration("timeout", 0, "abort the whole sweep after this much wall-clock (0 = unlimited)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	scale, err := workloads.ParseScale(*scaleName)
	if err != nil {
		fatalf("%v", err)
	}
	outFormat := ""
	if *outPath != "" {
		outFormat = sinkFormat(*format, *outPath)
		ok := false
		for _, f := range report.Formats() {
			ok = ok || f == outFormat
		}
		if !ok {
			// Reject before burning minutes of simulation on it.
			fatalf("unknown format %q (want one of %v)", outFormat, report.Formats())
		}
	}
	want := func(name string) bool { return *only == "" || *only == name }

	if want("table1") {
		report.Table1(os.Stdout, config.Default())
		fmt.Println()
	}
	if want("table2") {
		report.Table2(os.Stdout, workloads.All(scale))
		fmt.Println()
	}

	needsRuns := false
	for _, ex := range []string{"fig7", "fig8", "fig9", "fig10", "fig11"} {
		if want(ex) {
			needsRuns = true
		}
	}
	if *outPath != "" && !needsRuns {
		// -out exports the benchmark-matrix results; fail before burning
		// minutes of simulation on a run that would silently write nothing.
		fatalf("-out exports the benchmark matrix, which -only %q never runs", *only)
	}
	if !needsRuns && !want("ablation") {
		return
	}

	opt := runner.Options{Workers: *workers, Progress: os.Stderr}
	var all []system.Results

	if needsRuns {
		names := workloads.Names()
		specs := runner.Matrix(names, runner.AllSystems, scale, *cores)
		all, err = runner.Collect(runner.RunContext(ctx, specs, opt))
		if err != nil {
			fatalf("%v", err)
		}
		cacheRes := map[string]system.Results{}
		hybridRes := map[string]system.Results{}
		idealRes := map[string]system.Results{}
		for i, r := range all {
			switch specs[i].System {
			case config.CacheBased:
				cacheRes[r.Benchmark] = r
			case config.HybridReal:
				hybridRes[r.Benchmark] = r
			case config.HybridIdeal:
				idealRes[r.Benchmark] = r
			}
		}
		fmt.Println()
		if want("fig7") {
			report.Fig7(os.Stdout, names, hybridRes, idealRes)
			fmt.Println()
		}
		if want("fig8") {
			report.Fig8(os.Stdout, names, hybridRes)
			fmt.Println()
		}
		if want("fig9") {
			report.Fig9(os.Stdout, names, cacheRes, hybridRes)
			fmt.Println()
		}
		if want("fig10") {
			report.Fig10(os.Stdout, names, cacheRes, hybridRes)
			fmt.Println()
		}
		if want("fig11") {
			report.Fig11(os.Stdout, names, cacheRes, hybridRes)
			fmt.Println()
		}
	}

	if want("ablation") {
		runAblation(ctx, *cores, scale, opt)
	}

	if *outPath != "" && len(all) > 0 {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("cannot write %s: %v", *outPath, err)
		}
		defer f.Close()
		if err := report.WriteResults(f, outFormat, all); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
	}
}

// sinkFormat resolves -format, falling back to the -out extension and then
// to CSV.
func sinkFormat(format, path string) string {
	if format != "" {
		return format
	}
	if strings.HasSuffix(path, ".jsonl") {
		return "jsonl"
	}
	if strings.HasSuffix(path, ".json") {
		return "json"
	}
	return "csv"
}

// runAblation sweeps the filter size on IS (the most filter-sensitive
// benchmark) — the design-choice study DESIGN.md calls Ablation A.
func runAblation(ctx context.Context, cores int, scale workloads.Scale, opt runner.Options) {
	sizes := []int{8, 16, 32, 48, 64}
	specs := make([]system.Spec, len(sizes))
	for i, entries := range sizes {
		specs[i] = system.Spec{
			System:        config.HybridReal,
			Benchmark:     "IS",
			Scale:         scale,
			Cores:         cores,
			FilterEntries: entries,
		}
	}
	results, err := runner.Collect(runner.RunContext(ctx, specs, opt))
	if err != nil {
		fatalf("ablation: %v", err)
	}
	fmt.Println("Ablation A: filter size sweep on IS (hybrid, real protocol)")
	fmt.Printf("  %-8s %-10s %-10s %-10s\n", "Entries", "HitRatio", "Cycles", "CohPkts")
	for i, r := range results {
		fmt.Printf("  %-8d %-10.4f %-10d %-10d\n",
			sizes[i], r.FilterHitRatio, r.Cycles, r.NoCPackets[noc.CohProt])
	}
}
