// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables 1-2, Figures 7-11) plus the repository's ablation
// studies, writing text reports to stdout and CSV/JSON data to -out.
//
// The 18 machine simulations of the full matrix (6 benchmarks x 3 memory
// systems) are independent, so they fan out across -workers goroutines;
// results are identical for any worker count.
//
// Usage:
//
//	experiments                 # everything, 64 cores, small scale
//	experiments -only fig9      # one exhibit
//	experiments -cores 16 -scale tiny -workers 8   # quick parallel pass
//	experiments -set mem_latency=200               # every exhibit, slower DRAM
//	experiments -sweep l1d_size=16384,32768,65536  # custom axis sweep (CSV)
//	experiments -workload stream -wsweep stride=8,64,512  # workload-param sweep
//	experiments -workloads                         # list the workload catalog
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/buildinfo"
	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/planner"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/system"
	"repro/internal/workloads"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// runCustomSweep expands -sweep knob axes and -wsweep workload-parameter
// axes on the hybrid system — over every registered workload, or just the
// -workload spelling when given — and prints the per-column CSV:
// design-space exploration beyond the paper's fixed exhibits.
func runCustomSweep(ctx context.Context, workload string, cores int, scale workloads.Scale,
	base config.Overrides, sweeps, wsweeps []string, opt runner.Options, outPath, outFormat string, analyze bool) {
	axes, err := runner.ParseKnobAxes(sweeps)
	if err != nil {
		fatalf("%v", err)
	}
	waxes, err := runner.ParseParamAxes(wsweeps)
	if err != nil {
		fatalf("%v", err)
	}
	var benches []string
	if workload != "" {
		benches = []string{workload}
	}
	specs, err := runner.Axes{
		Benchmarks: benches,
		Systems:    []config.MemorySystem{config.HybridReal},
		Scale:      scale,
		Cores:      cores,
		Base:       base,
		Knobs:      axes,
		WParams:    waxes,
	}.Specs()
	if err != nil {
		fatalf("%v", err)
	}
	results, err := runner.Collect(runner.RunContext(ctx, specs, opt))
	if err != nil {
		fatalf("sweep: %v", err)
	}
	if err := report.SweepCSV(os.Stdout, specs, results); err != nil {
		fatalf("%v", err)
	}
	if analyze {
		// Stderr keeps the CSV stream on stdout machine-readable.
		report.SweepFindingsText(os.Stderr, analysis.Sweep(specs, results))
	}
	if outPath == "" {
		return
	}
	f, err := os.Create(outPath)
	if err != nil {
		fatalf("cannot write %s: %v", outPath, err)
	}
	defer f.Close()
	if outFormat == "json" {
		err = report.SweepJSON(f, specs, results)
	} else {
		err = report.SweepCSV(f, specs, results)
	}
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
}

func main() {
	cores := flag.Int("cores", 64, "core count")
	scaleName := flag.String("scale", "small", "workload scale: tiny, small")
	only := flag.String("only", "", "run one exhibit: table1, table2, fig7, fig8, fig9, fig10, fig11, ablation")
	outPath := flag.String("out", "", "also write all results to this file (.csv, .json or .jsonl)")
	format := flag.String("format", "", "output format for -out: csv, json or jsonl (default: from the file extension)")
	workers := flag.Int("workers", 0, "parallel simulations (0 = one per host CPU)")
	timeout := flag.Duration("timeout", 0, "abort the whole sweep after this much wall-clock (0 = unlimited)")
	workloadFlag := flag.String("workload", "", "narrow the custom sweep to one workload spelling name[:param=value,...] (see -workloads)")
	listWorkloads := flag.Bool("workloads", false, "list the workload catalog (names, params, defaults) and exit")
	analyze := flag.Bool("analyze", false, "append advisor findings: per-run bottlenecks after the figures, axis attribution after -sweep/ablation")
	var sets, sweeps, wsweeps runner.MultiFlag
	flag.Var(&sets, "set", "override one machine knob on every run, name=value (repeatable; cores=N wins over -cores)")
	flag.Var(&sweeps, "sweep", "run ONLY a custom knob sweep over the workloads on the hybrid system, name=v1,v2,... (repeatable; prints a per-column CSV and honors -out csv/json)")
	flag.Var(&wsweeps, "wsweep", "run ONLY a custom workload-parameter sweep, name=v1,v2,... (repeatable; combine with -workload)")
	planFlag := flag.String("plan", "", "run ONLY an adaptive plan with this strategy (knee, pareto, halving) over the -sweep/-wsweep axes; with no axes or -objective, asks the Fig9 filter-knee question")
	var objectives runner.MultiFlag
	flag.Var(&objectives, "objective", "-plan: objective or constraint clause — metric | min:metric | max:metric | metric>=X | metric<=X | metric~slack (repeatable)")
	budget := flag.Int("budget", 0, "-plan: max executed probes (0 = strategy default)")
	pick := flag.String("pick", "", "-plan knee: smallest (default) or largest satisfying axis value")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *version {
		fmt.Println("experiments", buildinfo.Version())
		return
	}

	if *listWorkloads {
		report.WorkloadCatalog(os.Stdout)
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	scale, err := workloads.ParseScale(*scaleName)
	if err != nil {
		fatalf("%v", err)
	}
	overrides, err := config.ParseOverrides(sets)
	if err != nil {
		fatalf("%v", err)
	}
	opt := runner.Options{Workers: *workers, Progress: os.Stderr}
	outFormat := ""
	if *outPath != "" {
		outFormat = sinkFormat(*format, *outPath)
		ok := false
		for _, f := range report.Formats() {
			ok = ok || f == outFormat
		}
		if !ok {
			// Reject before burning minutes of simulation on it.
			fatalf("unknown format %q (want one of %v)", outFormat, report.Formats())
		}
	}
	if *planFlag != "" {
		if *only != "" {
			fatalf("-plan runs its own exhibit and cannot combine with -only %q", *only)
		}
		if outFormat != "" && outFormat != "json" {
			fatalf("-plan supports a json -out sink, not %q", outFormat)
		}
		runPlan(ctx, *planFlag, *workloadFlag, *cores, scale, overrides, sweeps, wsweeps, objectives, *budget, *pick, *outPath)
		return
	}
	if len(sweeps) > 0 || len(wsweeps) > 0 {
		if *only != "" && *only != "sweep" {
			fatalf("-sweep/-wsweep run their own exhibit and cannot combine with -only %q", *only)
		}
		if outFormat == "jsonl" {
			fatalf("-sweep supports csv and json sinks, not jsonl")
		}
		runCustomSweep(ctx, *workloadFlag, *cores, scale, overrides, sweeps, wsweeps, opt, *outPath, outFormat, *analyze)
		return
	}
	if *workloadFlag != "" {
		fatalf("-workload narrows a custom -sweep/-wsweep exhibit; the paper's figures always run the NAS six")
	}
	want := func(name string) bool { return *only == "" || *only == name }

	if want("table1") {
		// Materialize through Spec.Config so the printed machine matches
		// what the exhibit runs below actually simulate.
		report.Table1(os.Stdout, system.Spec{
			System: config.HybridReal, Overrides: overrides, Cores: runner.CoresFlag(overrides, *cores),
		}.Config())
		fmt.Println()
	}
	if want("table2") {
		// Table 2 is the paper's exhibit: the NAS six. The synthetic
		// generators are listed by -workloads and characterized on demand.
		var benches []*compiler.Benchmark
		for _, n := range workloads.NAS() {
			benches = append(benches, workloads.Build(n, scale))
		}
		report.Table2(os.Stdout, benches)
		fmt.Println()
	}

	needsRuns := false
	for _, ex := range []string{"fig7", "fig8", "fig9", "fig10", "fig11"} {
		if want(ex) {
			needsRuns = true
		}
	}
	if *outPath != "" && !needsRuns {
		// -out exports the benchmark-matrix results; fail before burning
		// minutes of simulation on a run that would silently write nothing.
		fatalf("-out exports the benchmark matrix, which -only %q never runs", *only)
	}
	if !needsRuns && !want("ablation") {
		return
	}

	var all []system.Results
	var allSpecs []system.Spec

	if needsRuns {
		names := workloads.NAS()
		specs, err := runner.Axes{
			Benchmarks: names,
			Systems:    runner.AllSystems,
			Scale:      scale,
			Cores:      *cores,
			Base:       overrides,
		}.Specs()
		if err != nil {
			fatalf("%v", err)
		}
		all, err = runner.Collect(runner.RunContext(ctx, specs, opt))
		if err != nil {
			fatalf("%v", err)
		}
		allSpecs = specs
		cacheRes := map[string]system.Results{}
		hybridRes := map[string]system.Results{}
		idealRes := map[string]system.Results{}
		for i, r := range all {
			switch specs[i].System {
			case config.CacheBased:
				cacheRes[r.Benchmark] = r
			case config.HybridReal:
				hybridRes[r.Benchmark] = r
			case config.HybridIdeal:
				idealRes[r.Benchmark] = r
			}
		}
		fmt.Println()
		if want("fig7") {
			report.Fig7(os.Stdout, names, hybridRes, idealRes)
			fmt.Println()
		}
		if want("fig8") {
			report.Fig8(os.Stdout, names, hybridRes)
			fmt.Println()
		}
		if want("fig9") {
			report.Fig9(os.Stdout, names, cacheRes, hybridRes)
			fmt.Println()
		}
		if want("fig10") {
			report.Fig10(os.Stdout, names, cacheRes, hybridRes)
			fmt.Println()
		}
		if want("fig11") {
			report.Fig11(os.Stdout, names, cacheRes, hybridRes)
			fmt.Println()
		}
	}

	if *analyze && needsRuns {
		// Per-run advisor pass over the benchmark matrix; results-only input,
		// so counter-level rules report as skipped (hybridsim -analyze has
		// them). Only runs with findings print.
		fmt.Println("Advisor findings across the benchmark matrix")
		any := false
		for i, r := range all {
			rep := analysis.Analyze(analysis.Input{Config: allSpecs[i].Config(), Results: r})
			if len(rep.Findings) == 0 {
				continue
			}
			any = true
			fmt.Printf("  %s:\n", allSpecs[i].Key())
			for _, f := range rep.Findings {
				fmt.Printf("    [%s] %s: %s\n", strings.ToUpper(string(f.Severity)), f.Rule, f.Message)
			}
		}
		if !any {
			fmt.Println("  none")
		}
		fmt.Println()
	}

	if want("ablation") {
		runAblation(ctx, *cores, scale, overrides, opt, *analyze)
	}

	if *outPath != "" && len(all) > 0 {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("cannot write %s: %v", *outPath, err)
		}
		defer f.Close()
		if err := report.WriteResults(f, outFormat, all); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
	}
}

// sinkFormat resolves -format, falling back to the -out extension and then
// to CSV.
func sinkFormat(format, path string) string {
	if format != "" {
		return format
	}
	if strings.HasSuffix(path, ".jsonl") {
		return "jsonl"
	}
	if strings.HasSuffix(path, ".json") {
		return "json"
	}
	return "csv"
}

// runPlan answers a question with an internal/planner strategy running
// in-process (no daemon, no cache: every probe simulates). With no axes and
// no goal it asks the Fig9 filter-size question — the smallest filter on IS
// holding the hit ratio within the analyzer's knee slack of the best — over
// a 16-value grid an exhaustive sweep would enumerate point by point.
func runPlan(ctx context.Context, strategy, workload string, cores int, scale workloads.Scale,
	base config.Overrides, sweeps, wsweeps, objectives []string, budget int, pick, outPath string) {
	axes, err := runner.ParseKnobAxes(sweeps)
	if err != nil {
		fatalf("%v", err)
	}
	waxes, err := runner.ParseParamAxes(wsweeps)
	if err != nil {
		fatalf("%v", err)
	}
	objs, cons, err := planner.ParseObjectives(objectives)
	if err != nil {
		fatalf("%v", err)
	}
	bench := workload
	if bench == "" {
		bench = "IS" // the most filter-sensitive benchmark, like the ablation
	}
	if len(axes)+len(waxes) == 0 && len(objs) == 0 && cons == nil {
		var vals []int
		for v := 4; v <= 64; v += 4 {
			vals = append(vals, v)
		}
		axes = []runner.KnobAxis{{Name: "filter_entries", Values: vals}}
		cons = &planner.Constraint{Metric: "hit_ratio", SlackOfBest: analysis.KneeHitSlack}
		fmt.Printf("plan: asking the Fig9 question — smallest filter_entries on %s holding hit ratio within %.0f%% of best\n",
			bench, (1-analysis.KneeHitSlack)*100)
	}
	q := planner.Question{
		Strategy: strategy,
		Axes: runner.Axes{
			Benchmarks: []string{bench},
			Systems:    []config.MemorySystem{config.HybridReal},
			Scale:      scale,
			Cores:      cores,
			Base:       base,
			Knobs:      axes,
			WParams:    waxes,
		},
		Constraint: cons,
		Pick:       pick,
		Budget:     budget,
	}
	if len(objs) == 1 {
		q.Objective = objs[0]
	} else {
		q.Objectives = objs
	}
	var probes []planner.Probe
	v, err := planner.Run(ctx, q, planner.LocalProber{}, func(p planner.Probe) error {
		probes = append(probes, p)
		fmt.Fprintf(os.Stderr, "probe %d: %s\n", p.Index, p.Key)
		return nil
	})
	if err != nil {
		fatalf("plan: %v", err)
	}
	report.PlanText(os.Stdout, probes, v)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatalf("cannot write %s: %v", outPath, err)
		}
		defer f.Close()
		if err := report.PlanJSON(f, probes, v); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	}
}

// runAblation sweeps the filter size on IS (the most filter-sensitive
// benchmark) — the design-choice study DESIGN.md calls Ablation A. It is
// the fixed-axis special case of the -sweep machinery.
func runAblation(ctx context.Context, cores int, scale workloads.Scale, base config.Overrides, opt runner.Options, analyze bool) {
	sizes := []int{8, 16, 32, 48, 64}
	specs, err := runner.Axes{
		Benchmarks: []string{"IS"},
		Systems:    []config.MemorySystem{config.HybridReal},
		Scale:      scale,
		Cores:      cores,
		Base:       base,
		Knobs:      []runner.KnobAxis{{Name: "filter_entries", Values: sizes}},
	}.Specs()
	if err != nil {
		fatalf("ablation: %v", err)
	}
	results, err := runner.Collect(runner.RunContext(ctx, specs, opt))
	if err != nil {
		fatalf("ablation: %v", err)
	}
	fmt.Println("Ablation A: filter size sweep on IS (hybrid, real protocol)")
	fmt.Printf("  %-8s %-10s %-10s %-10s\n", "Entries", "HitRatio", "Cycles", "CohPkts")
	for i, r := range results {
		fmt.Printf("  %-8d %-10.4f %-10d %-10d\n",
			sizes[i], r.FilterHitRatio, r.Cycles, r.NoCPackets[noc.CohProt])
	}
	if analyze {
		report.SweepFindingsText(os.Stdout, analysis.Sweep(specs, results))
	}
}
