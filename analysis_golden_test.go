package repro

// Golden advisor test: the rendered findings for a small exhibit set are
// pinned byte-for-byte in testdata/golden_findings.txt. The set pairs the
// Fig. 9 exhibit (FT on cache and hybrid) with a deliberately misconfigured
// run (gups with a 4-entry filter) so the file pins both the healthy and
// the pathological transcript: rule IDs, severities, evidence values, and
// suggested knob changes. Any threshold or message change in
// internal/analysis shows up as a diff here.
//
// Regenerate deliberately with:
//
//	UPDATE_GOLDEN=1 go test -run TestGoldenFindings .
//
// and review the diff like any other behavioral change.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/config"
	"repro/internal/report"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

const goldenFindingsPath = "testdata/golden_findings.txt"

// findingsSpecs are the advisor exhibits: the Fig. 9 pair plus a filter
// starved four ways below its default capacity.
func findingsSpecs(t *testing.T) []system.Spec {
	t.Helper()
	ov, err := config.ParseOverrides([]string{"filter_entries=4"})
	if err != nil {
		t.Fatal(err)
	}
	return []system.Spec{
		{System: config.CacheBased, Benchmark: "FT", Scale: workloads.Tiny, Cores: benchCores},
		{System: config.HybridReal, Benchmark: "FT", Scale: workloads.Tiny, Cores: benchCores},
		{System: config.HybridReal, Benchmark: "gups", Scale: workloads.Tiny, Cores: 4, Overrides: ov},
	}
}

// TestGoldenFindings runs every advisor exhibit with full observability
// (results + counter snapshot) and pins the rendered report.
func TestGoldenFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("advisor exhibits take ~1s")
	}
	var buf bytes.Buffer
	for _, spec := range findingsSpecs(t) {
		r, stats, err := spec.ExecuteObserved(context.Background(), nil)
		if err != nil {
			t.Fatalf("%s: %v", spec.Key(), err)
		}
		rep := analysis.Analyze(analysis.Input{
			Config: spec.Config(), Results: r, Stats: stats,
		})
		fmt.Fprintf(&buf, "==== %s ====\n", spec.Key())
		report.FindingsText(&buf, rep)
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenFindingsPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFindingsPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenFindingsPath, buf.Len())
		return
	}

	want, err := os.ReadFile(goldenFindingsPath)
	if err != nil {
		t.Fatalf("missing golden file (run UPDATE_GOLDEN=1 go test -run TestGoldenFindings .): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("advisor output diverged from %s.\nIf the rule change is intended, regenerate with UPDATE_GOLDEN=1.\n%s",
			goldenFindingsPath, firstDiff(want, buf.Bytes()))
	}
}

// TestAnalysisHealthyRunQuiet asserts the advisor's negative space: a
// well-configured exhibit with every input supplied (results, counters, and
// a timeline) produces zero findings and zero skipped rules. The advisor
// must stay silent on healthy runs or nobody will read it.
func TestAnalysisHealthyRunQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full exhibit")
	}
	spec := system.Spec{System: config.HybridReal, Benchmark: "CG",
		Scale: workloads.Tiny, Cores: benchCores}
	rec := telemetry.NewRecorder(1000, 0)
	r, stats, err := spec.ExecuteObserved(context.Background(), rec)
	if err != nil {
		t.Fatal(err)
	}
	series := rec.Series()
	rep := analysis.Analyze(analysis.Input{
		Config: spec.Config(), Results: r, Stats: stats, Series: &series,
	})
	if len(rep.Findings) != 0 {
		var buf bytes.Buffer
		report.FindingsText(&buf, rep)
		t.Fatalf("healthy %s fired findings:\n%s", spec.Key(), buf.String())
	}
	if len(rep.Skipped) != 0 {
		t.Fatalf("full input still skipped %v", rep.Skipped)
	}
}
