// Package repro is a from-scratch Go reproduction of "Coherence Protocol
// for Transparent Management of Scratchpad Memories in Shared Memory
// Manycore Architectures" (Alvarez et al., ISCA 2015).
//
// The simulator, protocol and workloads live under internal/; runnable
// entry points are cmd/hybridsim, cmd/experiments and the examples/ mains.
// bench_test.go in this directory regenerates every table and figure of the
// paper's evaluation as testing.B benchmarks (scaled down); use
// cmd/experiments for the full-size runs:
//
//	go run ./cmd/experiments -scale tiny -workers 8
//
// Sweeps are declarative: a run is a system.Spec value, and internal/runner
// fans a []Spec across a worker pool with byte-identical output for any
// worker count:
//
//	specs := runner.Matrix(workloads.Names(), runner.AllSystems, workloads.Small, 0)
//	results, err := runner.Collect(runner.Run(specs, runner.Options{Workers: 8}))
//	report.CSV(os.Stdout, results)
//
// See README.md for the quickstart and DESIGN.md for methodology.
package repro
