// Package repro is a from-scratch Go reproduction of "Coherence Protocol
// for Transparent Management of Scratchpad Memories in Shared Memory
// Manycore Architectures" (Alvarez et al., ISCA 2015).
//
// The simulator, protocol and workloads live under internal/; runnable
// entry points are cmd/hybridsim, cmd/experiments, the cmd/hybridsimd
// daemon and the examples/ mains. bench_test.go in this directory
// regenerates every table and figure of the paper's evaluation as
// testing.B benchmarks (scaled down); use cmd/experiments for the
// full-size runs:
//
//	go run ./cmd/experiments -scale tiny -workers 8
//
// Sweeps are declarative: a run is a system.Spec value — a workload from
// the registry of named, parameterized generators (workloads.Entries: the
// NAS six plus synthetic stream/stencil/ptrchase/transpose/reduce/gups)
// and a typed config.Overrides that can retarget any machine knob by name
// (the config.Knobs registry) — and internal/runner fans a []Spec across a
// worker pool with byte-identical output for any worker count. runner.Axes
// enumerates workload x system x knob x workload-param cross products;
// every CLI spells it as repeatable -set / -sweep / -workload / -wsweep
// flags:
//
//	specs, err := runner.Axes{
//		Benchmarks: []string{"stream:streams=4"},
//		Scale:      workloads.Small,
//		Knobs:      []runner.KnobAxis{{Name: "l1d_size", Values: []int{16384, 32768}}},
//		WParams:    []runner.ParamAxis{{Name: "stride", Values: []int{8, 128}}},
//	}.Specs()
//	results, err := runner.Collect(runner.Run(specs, runner.Options{Workers: 8}))
//	report.SweepCSV(os.Stdout, specs, results) // one column per swept knob and param
//
// Because a run is a pure function of its Spec, results memoize safely:
// cmd/hybridsimd serves the same core over HTTP behind a content-addressed
// cache (internal/rescache + internal/service), so repeated requests for a
// Spec cost one simulation in total.
//
// See README.md for the quickstart and DESIGN.md for methodology.
package repro
