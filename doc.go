// Package repro is a from-scratch Go reproduction of "Coherence Protocol
// for Transparent Management of Scratchpad Memories in Shared Memory
// Manycore Architectures" (Alvarez et al., ISCA 2015).
//
// The simulator, protocol and workloads live under internal/; runnable
// entry points are cmd/hybridsim, cmd/experiments and the examples/ mains.
// bench_test.go in this directory regenerates every table and figure of the
// paper's evaluation as testing.B benchmarks (scaled down); use
// cmd/experiments for the full-size runs.
package repro
