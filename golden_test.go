package repro

// Golden determinism test: the full stats output of one small exhibit per
// system is pinned byte-for-byte in testdata/golden_stats.txt. Any change to
// simulation behavior — event ordering, counter accounting, energy inputs —
// shows up as a diff here, which is what makes hot-path refactors (pooled
// continuations, interned counters, open-addressed directories) safe to land:
// they must reproduce this file exactly.
//
// Regenerate deliberately with:
//
//	UPDATE_GOLDEN=1 go test -run TestGoldenStats .
//
// and review the diff like any other behavioral change.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/system"
	"repro/internal/workloads"
)

const goldenPath = "testdata/golden_stats.txt"

// goldenSpecs are the exhibits pinned by the golden file: one NAS benchmark
// with guarded accesses on every system flavor (CG exercises the protocol's
// filter/SPMDir/FilterDir paths), the lowest-locality benchmark on the real
// protocol (IS stresses FilterDir broadcasts), and a synthetic with remote-SPM
// serves (ptrchase hits the Fig. 5d path).
func goldenSpecs() []system.Spec {
	return []system.Spec{
		{System: config.CacheBased, Benchmark: "CG", Scale: workloads.Tiny, Cores: 8},
		{System: config.HybridIdeal, Benchmark: "CG", Scale: workloads.Tiny, Cores: 8},
		{System: config.HybridReal, Benchmark: "CG", Scale: workloads.Tiny, Cores: 8},
		{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny, Cores: 8},
		{System: config.HybridReal, Benchmark: "ptrchase", Params: "hot_pct=50", Scale: workloads.Tiny, Cores: 8},
	}
}

// dumpRun builds the machine for spec, runs it, and renders every observable
// statistic deterministically.
func dumpRun(t *testing.T, w *bytes.Buffer, spec system.Spec) {
	t.Helper()
	p, err := workloads.ParseParams(spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	bench, err := workloads.BuildSpec(spec.Benchmark, p, spec.Scale)
	if err != nil {
		t.Fatal(err)
	}
	m, err := system.Build(spec.Config(), bench, 0xC0FFEE)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(0)
	if err != nil {
		t.Fatalf("%s: %v", spec.Key(), err)
	}
	if err := m.Hier.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", spec.Key(), err)
	}

	fmt.Fprintf(w, "==== %s ====\n", spec.Key())
	fmt.Fprintf(w, "results: %+v\n", r)
	fmt.Fprintf(w, "engine: now=%d fired=%d\n", m.Eng.Now(), m.Eng.Fired())
	lat := m.Mesh.Latency()
	fmt.Fprintf(w, "mesh latency: %s\n", lat.String())
	w.WriteString(m.Mesh.Counters().String())
	w.WriteString(m.Hier.Stats().String())
	if m.Protocol != nil {
		w.WriteString(m.Protocol.Stats().String())
	}
	for i := 0; i < m.Dram.Count(); i++ {
		c := m.Dram.Controller(i)
		qd := c.QueueDelay()
		fmt.Fprintf(w, "dram[%d]: reads=%d writes=%d queue=%s\n",
			i, c.Reads(), c.Writes(), qd.String())
	}
	for i, s := range m.SPMs {
		fmt.Fprintf(w, "spm[%d]: r=%d w=%d rr=%d rw=%d dr=%d dw=%d\n",
			i, s.Reads(), s.Writes(), s.RemoteReads(), s.RemoteWrites(), s.DMAReads(), s.DMAWrites())
	}
	for i, d := range m.DMACs {
		fmt.Fprintf(w, "dmac[%d]: gets=%d puts=%d lines=%d rejected=%d tag=%s\n",
			i, d.Gets(), d.Puts(), d.LineTransfers(), d.Rejected(), d.TagLatency.String())
	}
	for i := 0; i < m.Cluster.Cores(); i++ {
		c := m.Cluster.Core(i)
		fmt.Fprintf(w, "core[%d]: retired=%d flushes=%d ifetches=%d finish=%d phases=%d/%d/%d\n",
			i, c.Retired(), c.Flushes(), c.IFetches(), c.FinishTime(),
			c.PhaseCycles(isa.PhaseControl), c.PhaseCycles(isa.PhaseSync), c.PhaseCycles(isa.PhaseWork))
	}
}

// TestGoldenStats compares the full stats dump of every golden exhibit
// against the committed golden file.
func TestGoldenStats(t *testing.T) {
	if testing.Short() {
		t.Skip("golden exhibits take ~2s")
	}
	var buf bytes.Buffer
	for _, spec := range goldenSpecs() {
		dumpRun(t, &buf, spec)
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, buf.Len())
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run UPDATE_GOLDEN=1 go test -run TestGoldenStats .): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("stats output diverged from %s.\nIf the behavior change is intended, regenerate with UPDATE_GOLDEN=1.\n%s",
			goldenPath, firstDiff(want, buf.Bytes()))
	}
}

// TestGoldenWorkersInvariant runs the golden specs through the sweep runner
// at several worker counts and asserts the rendered outputs are identical:
// parallelism must never leak into results.
func TestGoldenWorkersInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("golden exhibits take ~2s")
	}
	specs := goldenSpecs()
	var outputs [][]byte
	for _, workers := range []int{1, 4} {
		results, err := runner.Collect(runner.Run(specs, runner.Options{Workers: workers}))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.SweepJSON(&buf, specs, results); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.Bytes())
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Fatalf("sweep output differs between -workers 1 and 4:\n%s", firstDiff(outputs[0], outputs[1]))
	}
}

// firstDiff renders the first differing line of two byte slices.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line count differs: want %d, got %d", len(wl), len(gl))
}
