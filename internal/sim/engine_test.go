package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(10, func() { at = e.Now() })
	e.Run()
	if at != 10 {
		t.Fatalf("event ran at %d, want 10", at)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", e.Now())
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (same-cycle events must run FIFO)", i, v, i)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.Schedule(1, func() {
		trace = append(trace, e.Now())
		e.Schedule(2, func() {
			trace = append(trace, e.Now())
			e.Schedule(0, func() { trace = append(trace, e.Now()) })
		})
	})
	e.Run()
	want := []Time{1, 3, 3}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestZeroDelaySameCycleOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(0, func() {
		order = append(order, "a")
		e.Schedule(0, func() { order = append(order, "c") })
	})
	e.Schedule(0, func() { order = append(order, "b") })
	e.Run()
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("order = %q, want abc", got)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	ran := map[Time]bool{}
	for _, d := range []Time{1, 5, 10, 20} {
		d := d
		e.Schedule(d, func() { ran[d] = true })
	}
	e.RunUntil(10)
	if !ran[1] || !ran[5] || !ran[10] {
		t.Fatalf("events <= 10 should have run: %v", ran)
	}
	if ran[20] {
		t.Fatal("event at 20 ran during RunUntil(10)")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", e.Now())
	}
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", e.Now())
	}
}

func TestHaltStopsExecution(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++; e.Halt() })
	e.Schedule(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Halt must stop further events)", count)
	}
	if !e.Halted() {
		t.Fatal("Halted() = false after Halt")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1 (halted events stay queued)", e.Pending())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestNilEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 17; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 17 {
		t.Fatalf("Fired() = %d, want 17", e.Fired())
	}
}

// Property: regardless of the (delay) multiset scheduled, events fire in
// non-decreasing time order and all of them fire.
func TestEventOrderingProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: same-cycle events preserve scheduling order even when interleaved
// with other cycles.
func TestSameCycleFIFOProperty(t *testing.T) {
	prop := func(delays []uint8) bool {
		e := NewEngine()
		perCycle := map[Time][]int{}
		var got = map[Time][]int{}
		for i, d := range delays {
			i, d := i, Time(d)
			perCycle[d] = append(perCycle[d], i)
			e.Schedule(d, func() { got[d] = append(got[d], i) })
		}
		e.Run()
		for cyc, want := range perCycle {
			g := got[cyc]
			if len(g) != len(want) {
				return false
			}
			for i := range want {
				if g[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- bucket/calendar queue edge cases -------------------------------------

func TestFarHorizonOverflow(t *testing.T) {
	e := NewEngine()
	var fired []Time
	// Mix of near (ring) and far (overflow heap) events, scheduled out of
	// time order.
	delays := []Time{3 * horizon, 1, 10 * horizon, horizon - 1, horizon, 2*horizon + 5, 0}
	for _, d := range delays {
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	if e.Pending() != len(delays) {
		t.Fatalf("Pending() = %d, want %d", e.Pending(), len(delays))
	}
	e.Run()
	want := []Time{0, 1, horizon - 1, horizon, 2*horizon + 5, 3 * horizon, 10 * horizon}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

// TestOverflowDrainPreservesFIFO pins the subtle merge case: an event
// scheduled for cycle T while T was beyond the horizon (overflow) must still
// fire BEFORE an event scheduled for the same T after the window had advanced
// to cover it (ring resident), because it was scheduled first.
func TestOverflowDrainPreservesFIFO(t *testing.T) {
	e := NewEngine()
	const target = 3 * horizon / 2 // beyond the initial window
	var order []string
	e.At(target, func() { order = append(order, "early") }) // goes to overflow
	// An intermediate event inside the window; by the time it fires, the
	// window covers target, so the next schedule is a ring resident.
	e.Schedule(horizon-1, func() {
		e.At(target, func() { order = append(order, "late") })
	})
	e.Run()
	if got := len(order); got != 2 {
		t.Fatalf("fired %d events at target, want 2", got)
	}
	if order[0] != "early" || order[1] != "late" {
		t.Fatalf("order = %v, want [early late] (overflow event was scheduled first)", order)
	}
}

func TestManySameCycleAcrossOverflow(t *testing.T) {
	e := NewEngine()
	const target = 2 * horizon
	var order []int
	// First half scheduled while target is far (overflow), second half
	// scheduled after the window advanced (ring).
	for i := 0; i < 8; i++ {
		i := i
		e.At(target, func() { order = append(order, i) })
	}
	e.Schedule(3*horizon/2, func() {
		for i := 8; i < 16; i++ {
			i := i
			e.At(target, func() { order = append(order, i) })
		}
	})
	e.Run()
	if len(order) != 16 {
		t.Fatalf("fired %d events, want 16", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want 0..15 in sequence", order)
		}
	}
}

func TestRunUntilAcrossEmptyRing(t *testing.T) {
	e := NewEngine()
	var fired []Time
	// Only far events: the ring is empty until the window jumps.
	for _, d := range []Time{5 * horizon, 7 * horizon} {
		d := d
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(6 * horizon)
	if len(fired) != 1 || fired[0] != 5*horizon {
		t.Fatalf("fired = %v, want [%d]", fired, 5*horizon)
	}
	if e.Now() != 6*horizon {
		t.Fatalf("Now() = %d, want %d", e.Now(), 6*horizon)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.RunUntil(100 * horizon)
	if len(fired) != 2 || e.Now() != 100*horizon {
		t.Fatalf("fired = %v, Now() = %d", fired, e.Now())
	}
}

func TestScheduleBehindScanHint(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(500, func() { fired = append(fired, e.Now()) })
	// RunUntil(100) fires nothing but peeks ahead, advancing the internal
	// scan hint to 500. A later schedule at 200 must still fire first.
	e.RunUntil(100)
	e.At(200, func() { fired = append(fired, e.Now()) })
	e.Run()
	if len(fired) != 2 || fired[0] != 200 || fired[1] != 500 {
		t.Fatalf("fired = %v, want [200 500]", fired)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func() {})
		}
		e.Run()
	}
}

// BenchmarkEngineSteadyState measures the per-event cost with a warm engine:
// a self-sustaining event cascade like the hardware models generate. This is
// the number the bucket queue optimizes — slab arrays are reused, so the
// steady state allocates nothing per event.
func BenchmarkEngineSteadyState(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	// Warm the slabs once.
	for j := 0; j < 64; j++ {
		e.Schedule(Time(j%7), fn)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%97), fn)
		if i%64 == 63 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineFarHorizon stresses the overflow heap: every event lands
// beyond the near window and must migrate through a drain.
func BenchmarkEngineFarHorizon(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(horizon*Time(1+j%13), func() {})
		}
		e.Run()
	}
}
