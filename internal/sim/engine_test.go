package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(10, func() { at = e.Now() })
	e.Run()
	if at != 10 {
		t.Fatalf("event ran at %d, want 10", at)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", e.Now())
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (same-cycle events must run FIFO)", i, v, i)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.Schedule(1, func() {
		trace = append(trace, e.Now())
		e.Schedule(2, func() {
			trace = append(trace, e.Now())
			e.Schedule(0, func() { trace = append(trace, e.Now()) })
		})
	})
	e.Run()
	want := []Time{1, 3, 3}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestZeroDelaySameCycleOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(0, func() {
		order = append(order, "a")
		e.Schedule(0, func() { order = append(order, "c") })
	})
	e.Schedule(0, func() { order = append(order, "b") })
	e.Run()
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("order = %q, want abc", got)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	ran := map[Time]bool{}
	for _, d := range []Time{1, 5, 10, 20} {
		d := d
		e.Schedule(d, func() { ran[d] = true })
	}
	e.RunUntil(10)
	if !ran[1] || !ran[5] || !ran[10] {
		t.Fatalf("events <= 10 should have run: %v", ran)
	}
	if ran[20] {
		t.Fatal("event at 20 ran during RunUntil(10)")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", e.Now())
	}
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", e.Now())
	}
}

func TestHaltStopsExecution(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++; e.Halt() })
	e.Schedule(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Halt must stop further events)", count)
	}
	if !e.Halted() {
		t.Fatal("Halted() = false after Halt")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1 (halted events stay queued)", e.Pending())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestNilEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 17; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 17 {
		t.Fatalf("Fired() = %d, want 17", e.Fired())
	}
}

// Property: regardless of the (delay) multiset scheduled, events fire in
// non-decreasing time order and all of them fire.
func TestEventOrderingProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: same-cycle events preserve scheduling order even when interleaved
// with other cycles.
func TestSameCycleFIFOProperty(t *testing.T) {
	prop := func(delays []uint8) bool {
		e := NewEngine()
		perCycle := map[Time][]int{}
		var got = map[Time][]int{}
		for i, d := range delays {
			i, d := i, Time(d)
			perCycle[d] = append(perCycle[d], i)
			e.Schedule(d, func() { got[d] = append(got[d], i) })
		}
		e.Run()
		for cyc, want := range perCycle {
			g := got[cyc]
			if len(g) != len(want) {
				return false
			}
			for i := range want {
				if g[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func() {})
		}
		e.Run()
	}
}
