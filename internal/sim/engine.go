// Package sim provides the discrete-event simulation kernel that every
// hardware model in this repository is built on.
//
// The kernel is a deterministic event queue: events scheduled for the same
// cycle fire in the order they were scheduled (FIFO tie-breaking by sequence
// number), so a simulation run is a pure function of its inputs. Components
// interact only by scheduling closures on the shared Engine; there is no
// goroutine-level concurrency inside a simulation, which keeps runs
// reproducible and race-free by construction.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is the simulated clock, measured in core cycles.
type Time uint64

// event is a scheduled closure.
type event struct {
	when Time
	seq  uint64
	fn   func()
}

// eventHeap is a min-heap ordered by (when, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the event-driven simulation core. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	halted bool
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{queue: make(eventHeap, 0, 1024)}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far. Useful for progress
// reporting and for tests that assert on event counts.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run delay cycles from now. A delay of zero runs fn
// later in the current cycle, after all previously scheduled work for this
// cycle.
func (e *Engine) Schedule(delay Time, fn func()) {
	e.At(e.now+delay, fn)
}

// At enqueues fn at absolute cycle t. Scheduling in the past is a programming
// error and panics: silently reordering time would corrupt every model built
// on the kernel.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	heap.Push(&e.queue, event{when: t, seq: e.seq, fn: fn})
	e.seq++
}

// Step executes the single earliest event. It reports false when the queue is
// empty or the engine has been halted.
func (e *Engine) Step() bool {
	if e.halted || len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.when
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= limit, leaving later events
// queued. The clock is advanced to limit if the queue drains earlier.
func (e *Engine) RunUntil(limit Time) {
	for !e.halted && len(e.queue) > 0 && e.queue[0].when <= limit {
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// Halt stops the engine: Run and Step become no-ops. Pending events remain
// queued so state can still be inspected.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt has been called.
func (e *Engine) Halted() bool { return e.halted }
