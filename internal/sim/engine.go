// Package sim provides the discrete-event simulation kernel that every
// hardware model in this repository is built on.
//
// The kernel is a deterministic event queue: events scheduled for the same
// cycle fire in the order they were scheduled (FIFO tie-breaking by sequence
// number), so a simulation run is a pure function of its inputs. Components
// interact only by scheduling closures on the shared Engine; there is no
// goroutine-level concurrency inside a simulation, which keeps runs
// reproducible and race-free by construction.
//
// Internally the queue is a two-level bucket (calendar) queue. Events within
// the near horizon — the next 2^horizonBits cycles — land in a ring of
// per-cycle FIFO slabs, so the hot path (hardware latencies are tens to
// hundreds of cycles) is an append on schedule and a cursor bump on fire:
// no comparisons, no reheapification, no per-event allocation in steady
// state. The rare event beyond the horizon goes to a typed overflow min-heap
// and migrates into the ring as the window advances. See DESIGN.md §3.
package sim

import "fmt"

// Time is the simulated clock, measured in core cycles.
type Time uint64

// Cont is a schedulable continuation. Hot-path hardware models implement it
// on pooled (free-listed) nodes so that steady-state scheduling allocates
// nothing: boxing a pointer into the interface is allocation-free, and the
// node is recycled after Fire returns. Plain closures still schedule through
// Schedule/At, which adapt them via a func-typed Cont (also allocation-free,
// since func values are pointer-shaped).
type Cont interface{ Fire() }

// funcCont adapts an ordinary closure to Cont without allocating.
type funcCont func()

func (f funcCont) Fire() { f() }

// AsCont wraps fn as a Cont, mapping nil to Nop. The conversion never
// allocates; the closure itself was allocated by the caller (or is
// capture-free and static).
func AsCont(fn func()) Cont {
	if fn == nil {
		return Nop
	}
	return funcCont(fn)
}

// nopCont is scheduled in place of nil continuations so that event counts —
// part of the determinism contract pinned by the golden stats test — do not
// depend on whether a caller wanted a completion callback.
type nopCont struct{}

func (nopCont) Fire() {}

// Nop is the shared no-op continuation.
var Nop Cont = nopCont{}

const (
	// horizonBits sizes the near-horizon ring: events within
	// 2^horizonBits cycles of now take the bucket fast path. Hardware
	// model latencies (L1 2, L2 15, DRAM 100, DMA bursts) sit far below
	// this, so the overflow heap is essentially cold.
	horizonBits = 10
	horizon     = Time(1) << horizonBits
	ringMask    = horizon - 1
)

// event is a scheduled continuation.
type event struct {
	when Time
	seq  uint64
	c    Cont
}

func eventLess(a, b event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// slab is one ring bucket: the FIFO of events for a single cycle. head
// indexes the next event to fire; the backing array is reused across
// window laps, so steady-state scheduling allocates nothing.
type slab struct {
	head int
	evs  []event
}

func (s *slab) empty() bool { return s.head == len(s.evs) }

// insert places ev keeping the pending tail sorted by seq. The fast path is
// a plain append: seq grows monotonically, so live scheduling always lands
// at the end. The ordered-insert path only runs when the overflow heap
// drains an old (smaller-seq) event into a cycle that already has residents.
func (s *slab) insert(ev event) {
	if s.empty() {
		s.head = 0
		s.evs = s.evs[:0]
	}
	if n := len(s.evs); n == s.head || s.evs[n-1].seq < ev.seq {
		s.evs = append(s.evs, ev)
		return
	}
	i := s.head
	for i < len(s.evs) && s.evs[i].seq < ev.seq {
		i++
	}
	s.evs = append(s.evs, event{})
	copy(s.evs[i+1:], s.evs[i:])
	s.evs[i] = ev
}

// popFront removes and returns the earliest-scheduled pending event.
func (s *slab) popFront() event {
	ev := s.evs[s.head]
	s.evs[s.head] = event{} // release the closure
	s.head++
	if s.head == len(s.evs) {
		s.head = 0
		s.evs = s.evs[:0]
	}
	return ev
}

// Engine is the event-driven simulation core. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now Time
	seq uint64

	ring      []slab  // len horizon; slot for cycle t is ring[t&ringMask]
	ringCount int     // events currently in the ring
	overflow  []event // min-heap by (when, seq): events beyond the horizon

	// scanHint is a cycle such that no pending ring event is earlier;
	// the fire-path scan starts here instead of at now, making the scan
	// amortized O(1) across a run.
	scanHint Time

	fired  uint64
	halted bool
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{ring: make([]slab, horizon)}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far. Useful for progress
// reporting and for tests that assert on event counts.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return e.ringCount + len(e.overflow) }

// Schedule enqueues fn to run delay cycles from now. A delay of zero runs fn
// later in the current cycle, after all previously scheduled work for this
// cycle.
func (e *Engine) Schedule(delay Time, fn func()) {
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	e.AtCont(e.now+delay, funcCont(fn))
}

// ScheduleCont is Schedule for pooled continuations: no adapter, no
// allocation.
func (e *Engine) ScheduleCont(delay Time, c Cont) {
	e.AtCont(e.now+delay, c)
}

// At enqueues fn at absolute cycle t. Scheduling in the past is a programming
// error and panics: silently reordering time would corrupt every model built
// on the kernel.
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	e.AtCont(t, funcCont(fn))
}

// AtCont enqueues a continuation at absolute cycle t.
func (e *Engine) AtCont(t Time, c Cont) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	if c == nil {
		panic("sim: scheduling nil event")
	}
	ev := event{when: t, seq: e.seq, c: c}
	e.seq++
	if t < e.now+horizon {
		e.pushRing(ev)
		return
	}
	e.pushOverflow(ev)
}

func (e *Engine) pushRing(ev event) {
	e.ring[ev.when&ringMask].insert(ev)
	e.ringCount++
	if ev.when < e.scanHint {
		e.scanHint = ev.when
	}
}

// drainTo migrates overflow events with when < limit into the ring. Events
// drain in (when, seq) order; slab.insert restores FIFO position ahead of
// any younger residents scheduled after the window already covered their
// cycle.
func (e *Engine) drainTo(limit Time) {
	for len(e.overflow) > 0 && e.overflow[0].when < limit {
		e.pushRing(e.popOverflow())
	}
}

// Step executes the single earliest event. It reports false when the queue is
// empty or the engine has been halted.
func (e *Engine) Step() bool {
	if e.halted {
		return false
	}
	if e.ringCount == 0 {
		if len(e.overflow) == 0 {
			return false
		}
		// Near window is dry: jump the clock to the earliest far event
		// so the window [now, now+horizon) covers it. Nothing can fire
		// in between — the ring is empty and overflow holds nothing
		// earlier. Keeping now as the window base preserves the
		// invariant that every ring event's cycle maps to a unique slab.
		if t := e.overflow[0].when; t > e.now {
			e.now = t
		}
	}
	e.drainTo(e.now + horizon)
	s := e.scanHint
	if s < e.now {
		s = e.now
	}
	for e.ring[s&ringMask].empty() {
		s++
	}
	e.scanHint = s
	ev := e.ring[s&ringMask].popFront()
	e.ringCount--
	e.now = s
	e.fired++
	ev.c.Fire()
	return true
}

// nextTime reports the timestamp of the earliest pending event. As a side
// effect it advances scanHint past verified-empty cycles, which Step reuses.
func (e *Engine) nextTime() (Time, bool) {
	if e.ringCount > 0 {
		// All ring events precede every overflow event: an event only
		// overflows when it lies beyond the window end, which in turn
		// bounds every ring resident.
		s := e.scanHint
		if s < e.now {
			s = e.now
		}
		for e.ring[s&ringMask].empty() {
			s++
		}
		e.scanHint = s
		return s, true
	}
	if len(e.overflow) > 0 {
		return e.overflow[0].when, true
	}
	return 0, false
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= limit, leaving later events
// queued. The clock is advanced to limit if the queue drains earlier.
func (e *Engine) RunUntil(limit Time) {
	for !e.halted {
		t, ok := e.nextTime()
		if !ok || t > limit {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// Halt stops the engine: Run and Step become no-ops. Pending events remain
// queued so state can still be inspected.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt has been called.
func (e *Engine) Halted() bool { return e.halted }

// ---------------------------------------------------------------------------
// Typed overflow min-heap — hand-rolled so far-horizon events pay no
// interface boxing either.

func (e *Engine) pushOverflow(ev event) {
	h := append(e.overflow, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.overflow = h
}

func (e *Engine) popOverflow() event {
	h := e.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the closure
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && eventLess(h[l], h[m]) {
			m = l
		}
		if r < n && eventLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e.overflow = h
	return top
}
