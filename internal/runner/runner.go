// Package runner fans a list of declarative run Specs out across a pool of
// worker goroutines and collects their Results in input order.
//
// Each worker executes one Spec at a time on its own freshly built machine;
// the simulation engine inside a run stays single-threaded, so parallelism
// across runs cannot perturb any run's outcome. Output is therefore
// byte-identical for any worker count — determinism by construction, which
// TestWorkerCountInvariance pins.
//
//	specs := runner.Matrix(workloads.Names(), runner.AllSystems, scale, cores)
//	results := runner.Run(specs, runner.Options{Workers: 8, Progress: os.Stderr})
//	rows, err := runner.Collect(results)
package runner

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/system"
	"repro/internal/workloads"
)

// Result pairs a Spec with what executing it produced.
type Result struct {
	Spec system.Spec
	Res  system.Results
	Err  error
	Wall time.Duration // host wall-clock spent on this run
}

// RunOne executes a single Spec under ctx and times it — the unit of work
// shared by the sweep workers below and by the service's job queue.
func RunOne(ctx context.Context, spec system.Spec) Result {
	t0 := time.Now()
	res, err := spec.ExecuteContext(ctx)
	return Result{Spec: spec, Res: res, Err: err, Wall: time.Since(t0)}
}

// Options configures a sweep.
type Options struct {
	// Workers is the worker-pool size; values < 1 mean one worker per
	// host CPU. Each in-flight run costs one wired machine of memory.
	Workers int

	// Progress, when non-nil, receives one line per completed run
	// (completion order, not input order — it is a live stream).
	Progress io.Writer
}

// Run executes every Spec and returns the Results indexed exactly like the
// input, regardless of worker count or completion order. Individual run
// failures are reported per Result, not by aborting the sweep.
func Run(specs []system.Spec, opt Options) []Result {
	return RunContext(context.Background(), specs, opt)
}

// RunContext is Run with cancellation: once ctx is done, no new Spec is
// dispatched and in-flight runs are stopped cooperatively (see
// system.Machine.RunContext). Specs the cancellation prevented from running
// carry ctx's error in their Result, so Collect still fails loudly.
func RunContext(ctx context.Context, specs []system.Spec, opt Options) []Result {
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]Result, len(specs))
	if len(specs) == 0 {
		return results
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes progress lines and the done counter
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// A cancellation may race with a pending dispatch; drop the
				// Spec here rather than burn a full run on a dead sweep.
				if err := ctx.Err(); err != nil {
					results[i] = Result{Spec: specs[i], Err: err}
					continue
				}
				results[i] = RunOne(ctx, specs[i])
				if opt.Progress != nil {
					r := results[i]
					mu.Lock()
					done++
					if r.Err != nil {
						fmt.Fprintf(opt.Progress, "[%d/%d] %s FAILED after %.1fs: %v\n",
							done, len(specs), specs[i].Key(), r.Wall.Seconds(), r.Err)
					} else {
						fmt.Fprintf(opt.Progress, "[%d/%d] %s in %.1fs (%d cycles)\n",
							done, len(specs), specs[i].Key(), r.Wall.Seconds(), r.Res.Cycles)
					}
					mu.Unlock()
				}
			}
		}()
	}
	canceled := false
	for i := range specs {
		if !canceled {
			select {
			case idx <- i:
				continue
			case <-ctx.Done():
				canceled = true
			}
		}
		results[i] = Result{Spec: specs[i], Err: ctx.Err()}
	}
	close(idx)
	wg.Wait()
	return results
}

// FirstError returns the error of the earliest failed run, or nil.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Spec.Key(), r.Err)
		}
	}
	return nil
}

// Collect strips the Results out of a fully successful sweep, preserving
// input order; it fails on the first failed run.
func Collect(results []Result) ([]system.Results, error) {
	if err := FirstError(results); err != nil {
		return nil, err
	}
	out := make([]system.Results, len(results))
	for i, r := range results {
		out[i] = r.Res
	}
	return out, nil
}

// AllSystems lists the three machines of the evaluation in the paper's
// presentation order.
var AllSystems = []config.MemorySystem{config.CacheBased, config.HybridReal, config.HybridIdeal}

// Matrix enumerates the full benchmark x memory-system sweep — the shape of
// every figure in the paper — as Specs, benchmark-major like the original
// serial loop. It is the no-knob-axes special case of Axes.
func Matrix(benchmarks []string, systems []config.MemorySystem, scale workloads.Scale, cores int) []system.Spec {
	specs, err := Axes{Benchmarks: benchmarks, Systems: systems, Scale: scale, Cores: cores}.Specs()
	if err != nil {
		// Axes only fails on bad knob axes, and Matrix declares none.
		panic(err)
	}
	return specs
}
