package runner

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/system"
	"repro/internal/workloads"
)

// MultiFlag accumulates repeatable string flags — the CLI carrier for the
// "-set name=value" / "-sweep name=v1,v2,..." payloads ParseKnobAxes and
// config.ParseOverrides consume. It implements flag.Value.
type MultiFlag []string

func (m *MultiFlag) String() string { return fmt.Sprint(*m) }

// Set appends one flag occurrence.
func (m *MultiFlag) Set(s string) error { *m = append(*m, s); return nil }

// KnobAxis is one swept machine dimension: a knob name from the
// config.Knobs() registry and the values it takes. It doubles as the wire
// form of a sweep axis in the service API.
type KnobAxis struct {
	Name   string `json:"name"`
	Values []int  `json:"values"`
}

// ParseKnobAxis parses the "-sweep name=v1,v2,..." flag payload.
func ParseKnobAxis(s string) (KnobAxis, error) {
	name, raw, ok := strings.Cut(s, "=")
	if !ok || name == "" || raw == "" {
		return KnobAxis{}, fmt.Errorf("runner: bad sweep axis %q (want name=v1,v2,...)", s)
	}
	ax := KnobAxis{Name: strings.TrimSpace(name)}
	for _, f := range strings.Split(raw, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return KnobAxis{}, fmt.Errorf("runner: bad value in sweep axis %q: %w", s, err)
		}
		ax.Values = append(ax.Values, v)
	}
	return ax, nil
}

// ParseKnobAxes parses a list of "-sweep" flag payloads into axes.
func ParseKnobAxes(flags []string) ([]KnobAxis, error) {
	var axes []KnobAxis
	for _, f := range flags {
		ax, err := ParseKnobAxis(f)
		if err != nil {
			return nil, err
		}
		axes = append(axes, ax)
	}
	return axes, nil
}

// CoresFlag resolves a -cores flag value against an explicit "cores"
// override, which wins. This is the single spelling of the precedence rule
// every driver needs: CLI -cores flags carry non-zero defaults, so without
// it a user's "-set cores=N" would always trip Spec.Validate's
// legacy-vs-override conflict check. Axes.Specs applies the same rule to
// its Cores field.
func CoresFlag(ov config.Overrides, flagCores int) int {
	if ov.Cores != 0 {
		return 0
	}
	return flagCores
}

// Axes declares a sweep as the cross product of its dimensions: benchmarks
// x systems x every knob axis, each point carrying the shared Base
// overrides. It generalizes the fixed benchmark x system Matrix to the full
// machine parameter space — any registry knob can be an axis, so design-
// space exploration needs no Go-code changes.
type Axes struct {
	// Benchmarks defaults to every workloads name.
	Benchmarks []string
	// Systems defaults to AllSystems.
	Systems []config.MemorySystem
	Scale   workloads.Scale

	// Cores and Seed apply to every point (0 = default). Cores is the
	// legacy convenience; a "cores" Base override or KnobAxis addresses
	// the same knob and takes precedence, so "-sweep cores=4,8" works
	// even when a driver always fills this field from its -cores flag.
	Cores int
	Seed  uint64

	// MaxEvents bounds every run (0 = unbounded).
	MaxEvents uint64

	// Base overrides are applied to every point before the axes.
	Base config.Overrides

	// Knobs are the swept machine dimensions, slowest-varying first. The
	// cross product nests them inside benchmarks and systems, so the
	// benchmark-major order of the legacy Matrix is preserved when no knob
	// axis is present.
	Knobs []KnobAxis
}

// Specs enumerates the cross product, validating axis names and values up
// front so a typo fails before anything is queued or simulated.
func (a Axes) Specs() ([]system.Spec, error) {
	benches := a.Benchmarks
	if len(benches) == 0 {
		benches = workloads.Names()
	}
	systems := a.Systems
	if len(systems) == 0 {
		systems = AllSystems
	}
	cores := CoresFlag(a.Base, a.Cores)
	n := len(benches) * len(systems)
	seen := map[string]bool{}
	for _, ax := range a.Knobs {
		if ax.Name == "cores" {
			cores = 0 // the axis sweeps the knob the legacy field would pin
		}
		if _, ok := config.KnobByName(ax.Name); !ok {
			return nil, fmt.Errorf("runner: unknown sweep knob %q (want one of %v)", ax.Name, config.KnobNames())
		}
		if seen[ax.Name] {
			return nil, fmt.Errorf("runner: duplicate sweep axis %q", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("runner: sweep axis %q has no values", ax.Name)
		}
		for _, v := range ax.Values {
			if v <= 0 {
				return nil, fmt.Errorf("runner: sweep axis %q value %d must be positive", ax.Name, v)
			}
		}
		n *= len(ax.Values)
	}

	specs := make([]system.Spec, 0, n)
	// point recursively expands the knob axes for one (benchmark, system).
	var point func(base system.Spec, rest []KnobAxis) error
	point = func(base system.Spec, rest []KnobAxis) error {
		if len(rest) == 0 {
			specs = append(specs, base)
			return nil
		}
		ax := rest[0]
		for _, v := range ax.Values {
			s := base
			if err := s.Overrides.Set(ax.Name, v); err != nil {
				return err
			}
			if err := point(s, rest[1:]); err != nil {
				return err
			}
		}
		return nil
	}
	for _, b := range benches {
		for _, sys := range systems {
			base := system.Spec{
				System:    sys,
				Benchmark: b,
				Scale:     a.Scale,
				Overrides: a.Base,
				Cores:     cores,
				Seed:      a.Seed,
				MaxEvents: a.MaxEvents,
			}
			if err := point(base, a.Knobs); err != nil {
				return nil, err
			}
		}
	}
	return specs, nil
}
