package runner

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/system"
	"repro/internal/workloads"
)

// MultiFlag accumulates repeatable string flags — the CLI carrier for the
// "-set name=value" / "-sweep name=v1,v2,..." payloads ParseKnobAxes and
// config.ParseOverrides consume. It implements flag.Value.
type MultiFlag []string

func (m *MultiFlag) String() string { return fmt.Sprint(*m) }

// Set appends one flag occurrence.
func (m *MultiFlag) Set(s string) error { *m = append(*m, s); return nil }

// KnobAxis is one swept machine dimension: a knob name from the
// config.Knobs() registry and the values it takes. It doubles as the wire
// form of a sweep axis in the service API.
type KnobAxis struct {
	Name   string `json:"name"`
	Values []int  `json:"values"`
}

// ParamAxis is one swept workload dimension: a parameter name from the
// benchmark's workloads registry entry and the values it takes — the
// payload of a "-wsweep name=v1,v2,..." flag or a ?wsweep= query parameter.
type ParamAxis struct {
	Name   string `json:"name"`
	Values []int  `json:"values"`
}

// parseAxis parses one "name=v1,v2,..." axis payload.
func parseAxis(s string) (string, []int, error) {
	name, raw, ok := strings.Cut(s, "=")
	if !ok || name == "" || raw == "" {
		return "", nil, fmt.Errorf("runner: bad sweep axis %q (want name=v1,v2,...)", s)
	}
	var values []int
	for _, f := range strings.Split(raw, ",") {
		v, err := workloads.ParseParamValue(strings.TrimSpace(f))
		if err != nil {
			return "", nil, fmt.Errorf("runner: bad value in sweep axis %q: %w", s, err)
		}
		values = append(values, v)
	}
	return strings.TrimSpace(name), values, nil
}

// ParseKnobAxis parses the "-sweep name=v1,v2,..." flag payload.
func ParseKnobAxis(s string) (KnobAxis, error) {
	name, values, err := parseAxis(s)
	if err != nil {
		return KnobAxis{}, err
	}
	return KnobAxis{Name: name, Values: values}, nil
}

// ParseKnobAxes parses a list of "-sweep" flag payloads into axes.
func ParseKnobAxes(flags []string) ([]KnobAxis, error) {
	var axes []KnobAxis
	for _, f := range flags {
		ax, err := ParseKnobAxis(f)
		if err != nil {
			return nil, err
		}
		axes = append(axes, ax)
	}
	return axes, nil
}

// ParseParamAxis parses the "-wsweep name=v1,v2,..." flag payload.
func ParseParamAxis(s string) (ParamAxis, error) {
	name, values, err := parseAxis(s)
	if err != nil {
		return ParamAxis{}, err
	}
	return ParamAxis{Name: name, Values: values}, nil
}

// ParseParamAxes parses a list of "-wsweep" flag payloads into axes.
func ParseParamAxes(flags []string) ([]ParamAxis, error) {
	var axes []ParamAxis
	for _, f := range flags {
		ax, err := ParseParamAxis(f)
		if err != nil {
			return nil, err
		}
		axes = append(axes, ax)
	}
	return axes, nil
}

// CoresFlag resolves a -cores flag value against an explicit "cores"
// override, which wins. This is the single spelling of the precedence rule
// every driver needs: CLI -cores flags carry non-zero defaults, so without
// it a user's "-set cores=N" would always trip Spec.Validate's
// legacy-vs-override conflict check. Axes.Specs applies the same rule to
// its Cores field.
func CoresFlag(ov config.Overrides, flagCores int) int {
	if ov.Cores != 0 {
		return 0
	}
	return flagCores
}

// Axes declares a sweep as the cross product of its dimensions: benchmarks
// x systems x every knob axis x every workload-parameter axis, each point
// carrying the shared Base overrides. It generalizes the fixed benchmark x
// system Matrix to the full machine AND workload parameter spaces — any
// registry knob and any declared workload parameter can be an axis, so
// design-space exploration needs no Go-code changes.
type Axes struct {
	// Benchmarks holds workload spellings — a workloads registry name,
	// optionally followed by ":k=v,k2=v2" parameters fixed on every point
	// ("stream:stride=128"). Defaults to every registered workload.
	Benchmarks []string
	// Systems defaults to AllSystems.
	Systems []config.MemorySystem
	Scale   workloads.Scale

	// Cores and Seed apply to every point (0 = default). Cores is the
	// legacy convenience; a "cores" Base override or KnobAxis addresses
	// the same knob and takes precedence, so "-sweep cores=4,8" works
	// even when a driver always fills this field from its -cores flag.
	Cores int
	Seed  uint64

	// MaxEvents bounds every run (0 = unbounded).
	MaxEvents uint64

	// Base overrides are applied to every point before the axes.
	Base config.Overrides

	// Knobs are the swept machine dimensions, slowest-varying first. The
	// cross product nests them inside benchmarks and systems, so the
	// benchmark-major order of the legacy Matrix is preserved when no knob
	// axis is present.
	Knobs []KnobAxis

	// WParams are the swept workload-parameter dimensions, nested
	// innermost (inside the knob axes). Every axis name must be a declared
	// parameter of every swept workload; axis values override the
	// spelling's fixed parameters.
	WParams []ParamAxis
}

// Specs enumerates the cross product, validating workload spellings, axis
// names and values up front so a typo fails before anything is queued or
// simulated.
func (a Axes) Specs() ([]system.Spec, error) {
	benches := a.Benchmarks
	if len(benches) == 0 {
		benches = workloads.Names()
	}
	systems := a.Systems
	if len(systems) == 0 {
		systems = AllSystems
	}
	cores := CoresFlag(a.Base, a.Cores)
	n := len(benches) * len(systems)
	seen := map[string]bool{}
	for _, ax := range a.Knobs {
		if ax.Name == "cores" {
			cores = 0 // the axis sweeps the knob the legacy field would pin
		}
		if _, ok := config.KnobByName(ax.Name); !ok {
			return nil, fmt.Errorf("runner: unknown sweep knob %q (want one of %v)", ax.Name, config.KnobNames())
		}
		if seen[ax.Name] {
			return nil, fmt.Errorf("runner: duplicate sweep axis %q", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("runner: sweep axis %q has no values", ax.Name)
		}
		for _, v := range ax.Values {
			if v <= 0 {
				return nil, fmt.Errorf("runner: sweep axis %q value %d must be positive", ax.Name, v)
			}
		}
		n *= len(ax.Values)
	}

	// Workload spellings resolve to (name, fixed params) pairs, and every
	// param axis must be a declared parameter of every swept workload with
	// every value in range — validated per workload, since parameter sets
	// differ between registry entries.
	type workload struct {
		name   string
		params map[string]int
	}
	wls := make([]workload, len(benches))
	seenParam := map[string]bool{}
	for _, ax := range a.WParams {
		if seenParam[ax.Name] {
			return nil, fmt.Errorf("runner: duplicate workload-param axis %q", ax.Name)
		}
		seenParam[ax.Name] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("runner: workload-param axis %q has no values", ax.Name)
		}
		n *= len(ax.Values)
	}
	for i, b := range benches {
		name, params, err := workloads.ParseWorkload(b)
		if err != nil {
			return nil, fmt.Errorf("runner: %w", err)
		}
		e, _ := workloads.Lookup(name)
		for _, ax := range a.WParams {
			for _, v := range ax.Values {
				if err := e.CheckValue(ax.Name, v); err != nil {
					return nil, fmt.Errorf("runner: %w", err)
				}
			}
		}
		wls[i] = workload{name: name, params: params}
	}

	specs := make([]system.Spec, 0, n)
	// point recursively expands the knob axes, then the workload-param
	// axes (innermost), for one (benchmark, system).
	var point func(base system.Spec, wl workload, knobs []KnobAxis, params []ParamAxis) error
	point = func(base system.Spec, wl workload, knobs []KnobAxis, params []ParamAxis) error {
		if len(knobs) > 0 {
			ax := knobs[0]
			for _, v := range ax.Values {
				s := base
				if err := s.Overrides.Set(ax.Name, v); err != nil {
					return err
				}
				if err := point(s, wl, knobs[1:], params); err != nil {
					return err
				}
			}
			return nil
		}
		if len(params) > 0 {
			ax := params[0]
			for _, v := range ax.Values {
				next := wl
				next.params = make(map[string]int, len(wl.params)+1)
				for k, pv := range wl.params {
					next.params[k] = pv
				}
				next.params[ax.Name] = v
				if err := point(base, next, nil, params[1:]); err != nil {
					return err
				}
			}
			return nil
		}
		// The per-axis CheckValue above only bounds each value in
		// isolation; the full merged assignment must also pass the
		// entry's cross-parameter Check, or an invalid point would slip
		// into the sweep and fail only at Execute time — after every
		// valid point was already simulated.
		if err := workloads.ValidateParams(wl.name, wl.params); err != nil {
			return fmt.Errorf("runner: %w", err)
		}
		s := base
		s.Params = workloads.FormatParams(wl.name, wl.params)
		specs = append(specs, s)
		return nil
	}
	for i := range benches {
		for _, sys := range systems {
			base := system.Spec{
				System:    sys,
				Benchmark: wls[i].name,
				Scale:     a.Scale,
				Overrides: a.Base,
				Cores:     cores,
				Seed:      a.Seed,
				MaxEvents: a.MaxEvents,
			}
			if err := point(base, wls[i], a.Knobs, a.WParams); err != nil {
				return nil, err
			}
		}
	}
	return specs, nil
}
