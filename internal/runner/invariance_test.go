// External test package: report imports planner which imports runner, so
// a test that renders results through report must live outside package
// runner to avoid an import cycle.
package runner_test

import (
	"bytes"
	"testing"

	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// TestWorkerCountInvariance is the determinism contract of the whole
// subsystem: fanning runs across goroutines must not change a single byte
// of output, because each run owns a single-threaded engine and results are
// collected in input order.
func TestWorkerCountInvariance(t *testing.T) {
	specs := runner.Matrix([]string{"EP", "IS"}, runner.AllSystems, workloads.Tiny, 4)
	var serial, parallel bytes.Buffer

	r1, err := runner.Collect(runner.Run(specs, runner.Options{Workers: 1}))
	if err != nil {
		t.Fatal(err)
	}
	report.CSV(&serial, r1)

	r8, err := runner.Collect(runner.Run(specs, runner.Options{Workers: 8}))
	if err != nil {
		t.Fatal(err)
	}
	report.CSV(&parallel, r8)

	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("output differs between -workers 1 and -workers 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
	if serial.Len() == 0 {
		t.Fatal("sweep produced no output")
	}
}
