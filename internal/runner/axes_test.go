package runner

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/system"
	"repro/internal/workloads"
)

// TestAxesCrossProduct pins the enumeration: benchmarks major, then
// systems, then knob axes in declared order, innermost fastest.
func TestAxesCrossProduct(t *testing.T) {
	a := Axes{
		Benchmarks: []string{"EP", "IS"},
		Systems:    []config.MemorySystem{config.HybridReal},
		Scale:      workloads.Tiny,
		Cores:      4,
		Knobs: []KnobAxis{
			{Name: "filter_entries", Values: []int{8, 16}},
			{Name: "l1d_size", Values: []int{16 << 10, 32 << 10}},
		},
	}
	specs, err := a.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2*1*2*2 {
		t.Fatalf("cross product = %d specs, want 8", len(specs))
	}
	// First block: EP, filter 8, l1d sweeping fastest.
	if specs[0].Overrides.FilterEntries != 8 || specs[0].Overrides.L1DSize != 16<<10 {
		t.Fatalf("specs[0] = %+v", specs[0].Overrides)
	}
	if specs[1].Overrides.FilterEntries != 8 || specs[1].Overrides.L1DSize != 32<<10 {
		t.Fatalf("specs[1] = %+v", specs[1].Overrides)
	}
	if specs[2].Overrides.FilterEntries != 16 {
		t.Fatalf("specs[2] = %+v", specs[2].Overrides)
	}
	if specs[4].Benchmark != "IS" {
		t.Fatalf("specs[4].Benchmark = %s, want IS", specs[4].Benchmark)
	}
	// Every point is distinct and valid.
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Key()] {
			t.Fatalf("duplicate key %s", s.Key())
		}
		seen[s.Key()] = true
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Key(), err)
		}
	}
}

func TestAxesBaseOverridesApplyToEveryPoint(t *testing.T) {
	var base config.Overrides
	if err := base.Set("mem_latency", 200); err != nil {
		t.Fatal(err)
	}
	a := Axes{
		Benchmarks: []string{"EP"},
		Systems:    []config.MemorySystem{config.CacheBased},
		Scale:      workloads.Tiny,
		Cores:      4,
		Base:       base,
		Knobs:      []KnobAxis{{Name: "l1d_size", Values: []int{16 << 10, 32 << 10}}},
	}
	specs, err := a.Specs()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if s.Overrides.MemLatency != 200 {
			t.Fatalf("%s lost the base override: %+v", s.Key(), s.Overrides)
		}
	}
}

func TestAxesRejectsBadAxes(t *testing.T) {
	cases := []Axes{
		{Scale: workloads.Tiny, Knobs: []KnobAxis{{Name: "warp_drive", Values: []int{1}}}},
		{Scale: workloads.Tiny, Knobs: []KnobAxis{{Name: "l1d_size", Values: nil}}},
		{Scale: workloads.Tiny, Knobs: []KnobAxis{{Name: "l1d_size", Values: []int{0}}}},
		{Scale: workloads.Tiny, Knobs: []KnobAxis{
			{Name: "l1d_size", Values: []int{1 << 10}},
			{Name: "l1d_size", Values: []int{2 << 10}},
		}},
	}
	for i, a := range cases {
		if _, err := a.Specs(); err == nil {
			t.Errorf("case %d: Specs accepted a bad axis", i)
		}
	}
}

// TestMatrixIsAxesWithoutKnobs: the legacy Matrix must keep its exact
// enumeration (order included) now that it delegates to Axes.
func TestMatrixIsAxesWithoutKnobs(t *testing.T) {
	got := Matrix([]string{"EP", "IS"}, AllSystems, workloads.Tiny, 4)
	var want []system.Spec
	for _, b := range []string{"EP", "IS"} {
		for _, sys := range AllSystems {
			want = append(want, system.Spec{System: sys, Benchmark: b, Scale: workloads.Tiny, Cores: 4})
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Matrix enumeration changed:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseKnobAxis(t *testing.T) {
	ax, err := ParseKnobAxis("filter_entries=16,32, 48")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Name != "filter_entries" || !reflect.DeepEqual(ax.Values, []int{16, 32, 48}) {
		t.Fatalf("parsed %+v", ax)
	}
	for _, bad := range []string{"filter_entries", "=1,2", "filter_entries=", "filter_entries=1,x"} {
		if _, err := ParseKnobAxis(bad); err == nil {
			t.Errorf("ParseKnobAxis accepted %q", bad)
		}
	}
	if _, err := ParseKnobAxes([]string{"l1d_size=16384", "bogus"}); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("ParseKnobAxes = %v, want error naming the bad flag", err)
	}
}

// TestAxesCoresKnobWinsOverLegacyField: drivers always fill Axes.Cores
// from their -cores flag, so a "cores" Base override or sweep axis must
// take precedence instead of tripping the Spec conflict check.
func TestAxesCoresKnobWinsOverLegacyField(t *testing.T) {
	var base config.Overrides
	base.Set("cores", 8)
	specs, err := Axes{
		Benchmarks: []string{"EP"},
		Systems:    []config.MemorySystem{config.CacheBased},
		Scale:      workloads.Tiny,
		Cores:      4, // the flag default the knob must override
		Base:       base,
	}.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Cores != 0 || specs[0].Overrides.Cores != 8 || specs[0].Config().Cores != 8 {
		t.Fatalf("base cores override lost: %+v", specs[0])
	}

	specs, err = Axes{
		Benchmarks: []string{"EP"},
		Systems:    []config.MemorySystem{config.CacheBased},
		Scale:      workloads.Tiny,
		Cores:      4,
		Knobs:      []KnobAxis{{Name: "cores", Values: []int{2, 8}}},
	}.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Config().Cores != 2 || specs[1].Config().Cores != 8 {
		t.Fatalf("cores axis lost: %+v", specs)
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Key(), err)
		}
	}
}

// TestAxesWorkloadParamAxes pins the workload dimension of the cross
// product: parameterized spellings fix params on every point, -wsweep axes
// nest innermost, and axis values override the spelling's fixed params.
func TestAxesWorkloadParamAxes(t *testing.T) {
	a := Axes{
		Benchmarks: []string{"stream:streams=4"},
		Systems:    []config.MemorySystem{config.HybridReal},
		Scale:      workloads.Tiny,
		Cores:      4,
		Knobs:      []KnobAxis{{Name: "l1d_size", Values: []int{16 << 10, 32 << 10}}},
		WParams:    []ParamAxis{{Name: "stride", Values: []int{8, 128}}},
	}
	specs, err := a.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("cross product = %d specs, want 4", len(specs))
	}
	// Param axis is innermost: stride varies fastest.
	if specs[0].Params != "stride=8,streams=4" || specs[1].Params != "stride=128,streams=4" {
		t.Fatalf("param expansion wrong: %q then %q", specs[0].Params, specs[1].Params)
	}
	if specs[1].Overrides.L1DSize != 16<<10 || specs[2].Overrides.L1DSize != 32<<10 {
		t.Fatalf("knob axis no longer outer: %+v", specs)
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Benchmark != "stream" {
			t.Fatalf("spec benchmark = %q", s.Benchmark)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Key(), err)
		}
		if seen[s.Hash()] {
			t.Fatalf("duplicate hash for %s", s.Key())
		}
		seen[s.Hash()] = true
	}
}

// TestAxesRejectsBadWorkloadAxes: every invalid spelling or axis fails the
// enumeration before anything is queued.
func TestAxesRejectsBadWorkloadAxes(t *testing.T) {
	cases := []Axes{
		{Scale: workloads.Tiny, Benchmarks: []string{"warp"}},
		{Scale: workloads.Tiny, Benchmarks: []string{"stream:warp=1"}},
		{Scale: workloads.Tiny, Benchmarks: []string{"stream"}, WParams: []ParamAxis{{Name: "warp", Values: []int{1}}}},
		{Scale: workloads.Tiny, Benchmarks: []string{"stream"}, WParams: []ParamAxis{{Name: "stride", Values: nil}}},
		{Scale: workloads.Tiny, Benchmarks: []string{"stream"}, WParams: []ParamAxis{{Name: "stride", Values: []int{4}}}},
		{Scale: workloads.Tiny, Benchmarks: []string{"stream"}, WParams: []ParamAxis{
			{Name: "stride", Values: []int{8}}, {Name: "stride", Values: []int{16}}}},
		// In range per-value but violating the entry's cross-parameter
		// Check (stride must be 8-aligned): must fail up front, not after
		// every valid point of the sweep was simulated.
		{Scale: workloads.Tiny, Benchmarks: []string{"stream"}, WParams: []ParamAxis{{Name: "stride", Values: []int{8, 12}}}},
		// A param axis must be declared by EVERY swept workload.
		{Scale: workloads.Tiny, Benchmarks: []string{"stream", "gups"}, WParams: []ParamAxis{{Name: "stride", Values: []int{8}}}},
	}
	for i, a := range cases {
		if _, err := a.Specs(); err == nil {
			t.Errorf("case %d: Specs accepted a bad workload axis", i)
		}
	}
}

func TestParseParamAxis(t *testing.T) {
	ax, err := ParseParamAxis("stride=8,64k, 128")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Name != "stride" || !reflect.DeepEqual(ax.Values, []int{8, 64 << 10, 128}) {
		t.Fatalf("parsed %+v", ax)
	}
	for _, bad := range []string{"stride", "=1,2", "stride=", "stride=1,x"} {
		if _, err := ParseParamAxis(bad); err == nil {
			t.Errorf("ParseParamAxis accepted %q", bad)
		}
	}
}
