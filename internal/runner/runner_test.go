package runner

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/system"
	"repro/internal/workloads"
)

// tinySpecs is a small but representative sweep: two benchmarks on all
// three memory systems at the test scale.
func tinySpecs() []system.Spec {
	return Matrix([]string{"EP", "IS"}, AllSystems, workloads.Tiny, 4)
}

func TestResultsArriveInInputOrder(t *testing.T) {
	specs := tinySpecs()
	results := Run(specs, Options{Workers: len(specs)})
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("spec %s failed: %v", specs[i].Key(), r.Err)
		}
		if r.Spec != specs[i] {
			t.Errorf("results[%d].Spec = %v, want %v", i, r.Spec, specs[i])
		}
		if r.Res.Benchmark != specs[i].Benchmark || r.Res.System != specs[i].System {
			t.Errorf("results[%d] is %s/%v, want %s/%v",
				i, r.Res.Benchmark, r.Res.System, specs[i].Benchmark, specs[i].System)
		}
		if r.Wall <= 0 {
			t.Errorf("results[%d].Wall = %v, want > 0", i, r.Wall)
		}
	}
}

func TestProgressStreamsOneLinePerRun(t *testing.T) {
	specs := tinySpecs()
	var progress bytes.Buffer
	if err := FirstError(Run(specs, Options{Workers: 2, Progress: &progress})); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(progress.String()), "\n")
	if len(lines) != len(specs) {
		t.Fatalf("progress lines = %d, want %d:\n%s", len(lines), len(specs), progress.String())
	}
	for _, l := range lines {
		if !strings.Contains(l, "cycles") {
			t.Errorf("progress line %q missing cycle count", l)
		}
	}
}

func TestFailedRunIsReportedNotFatal(t *testing.T) {
	specs := []system.Spec{
		{System: config.HybridReal, Benchmark: "EP", Scale: workloads.Tiny, Cores: 4},
		{System: config.HybridReal, Benchmark: "NOPE", Scale: workloads.Tiny, Cores: 4},
	}
	results := Run(specs, Options{Workers: 2})
	if results[0].Err != nil {
		t.Fatalf("good spec failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("unknown benchmark did not fail")
	}
	if err := FirstError(results); err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Fatalf("FirstError = %v, want mention of NOPE", err)
	}
	if _, err := Collect(results); err == nil {
		t.Fatal("Collect accepted a failed sweep")
	}
}

func TestEmptySweep(t *testing.T) {
	if got := Run(nil, Options{Workers: 4}); len(got) != 0 {
		t.Fatalf("Run(nil) = %v, want empty", got)
	}
}

func TestMatrixShape(t *testing.T) {
	// The default matrix covers the whole registry — the count derives
	// from it, so adding a workload can never silently drift this test.
	specs := Matrix(workloads.Names(), AllSystems, workloads.Small, 0)
	if want := len(workloads.Names()) * len(AllSystems); len(specs) != want {
		t.Fatalf("full matrix = %d specs, want %d", len(specs), want)
	}
	if nas := Matrix(workloads.NAS(), AllSystems, workloads.Small, 0); len(nas) != 18 {
		t.Fatalf("paper matrix = %d specs, want 18", len(nas))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Key()] {
			t.Fatalf("duplicate spec key %s", s.Key())
		}
		seen[s.Key()] = true
	}
}

// cancelOnFirstWrite cancels a context the first time the progress stream
// receives a line — i.e. right after the first run completes.
type cancelOnFirstWrite struct {
	cancel context.CancelFunc
	once   sync.Once
}

func (c *cancelOnFirstWrite) Write(p []byte) (int, error) {
	c.once.Do(c.cancel)
	return len(p), nil
}

// TestRunContextCancellationStopsDispatch pins the service contract: once
// the context dies (client disconnect, deadline), no further Spec is
// executed; the un-run Specs carry the context error so Collect fails
// loudly instead of returning a silently truncated sweep.
func TestRunContextCancellationStopsDispatch(t *testing.T) {
	specs := Matrix(workloads.Names(), AllSystems, workloads.Tiny, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results := RunContext(ctx, specs, Options{
		Workers:  1,
		Progress: &cancelOnFirstWrite{cancel: cancel},
	})

	if results[0].Err != nil {
		t.Fatalf("first run failed: %v", results[0].Err)
	}
	if results[0].Res.Cycles == 0 {
		t.Fatal("first run produced no cycles")
	}
	// The single worker cancels the context while finishing run 0, so every
	// later Spec must have been dropped, not executed.
	for i := 1; i < len(results); i++ {
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Fatalf("results[%d].Err = %v, want context.Canceled", i, results[i].Err)
		}
		if results[i].Res.Cycles != 0 {
			t.Fatalf("results[%d] executed after cancellation", i)
		}
	}
	if _, err := Collect(results); !errors.Is(err, context.Canceled) {
		t.Fatalf("Collect = %v, want the cancellation surfaced", err)
	}
}

// TestRunContextPreCanceled: a dead context runs nothing at all.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := RunContext(ctx, tinySpecs(), Options{Workers: 2})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("results[%d].Err = %v, want context.Canceled", i, r.Err)
		}
	}
}
