// Package service exposes the Spec/runner core as a long-lived HTTP daemon
// with a content-addressed result cache (internal/rescache) in front of it.
//
// The API is deliberately small:
//
//	POST /v1/runs            submit one Spec, a list, or a matrix enumeration
//	                         (?wait=true blocks for results, ?timeout=30s
//	                         bounds the submitted work); specs carry workload
//	                         "params" and machine-knob "overrides"; matrices
//	                         add per-knob "sweep" axes (config.Knobs
//	                         registry) and per-workload-parameter "wsweep"
//	                         axes (workloads registry)
//	GET  /v1/runs/{key}      poll one run by its canonical Spec.Hash
//	GET  /v1/sweep           run a workload x system x knob x param matrix
//	                         and stream one JSON line per completed run
//	                         (?set=knob=value fixes a knob on every run,
//	                         ?sweep=knob=v1,v2,... adds a knob axis,
//	                         ?workload=name:k=v names a parameterized
//	                         workload, ?wsweep=param=v1,v2,... adds a
//	                         workload-parameter axis; all repeat)
//	POST /v1/plan            answer a question instead of enumerating a
//	                         grid: an internal/planner strategy (knee
//	                         bisection, Pareto refinement, budgeted
//	                         halving) searches the named axes, streaming
//	                         one JSON line per executed probe and a final
//	                         verdict line; probes share the sweep path, so
//	                         they land in the cache and the fleet
//	GET  /v1/runs/{key}/timeline
//	                         the sampled counter time series of a run that
//	                         was submitted with a "telemetry" block
//	GET  /v1/runs/{key}/analysis
//	                         rule-driven bottleneck findings for a completed
//	                         run (internal/analysis), derived on demand from
//	                         its results, resolved config, and — when the
//	                         run was observed — its stored timeline
//	GET  /v1/cache/{key}     one cache entry by key (fleet peer fills)
//	PUT  /v1/cache/{key}     adopt a peer-computed entry (owner back-fill)
//	GET  /v1/cluster         fleet membership, ring state, ?key= ownership
//	GET  /v1/healthz         liveness plus queue depth and build version
//	GET  /v1/stats           cache hit rate, queue, and run counters
//	GET  /metrics            Prometheus text exposition (internal/metrics)
//
// Submissions flow through a bounded job queue drained by a fixed pool of
// worker goroutines, each of which executes via rescache.GetOrRun — so a
// Spec the daemon has seen before costs a map lookup, and N concurrent
// requests for the same Spec cost one simulation. Sweep jobs are bound to
// their request's context: a client disconnect cancels queued and in-flight
// work (system.Machine.RunContext polls the context mid-run).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/rescache"
	"repro/internal/runner"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// Options configures a Server.
type Options struct {
	// Workers is the simulation worker-pool size; values < 1 mean one per
	// host CPU. Each in-flight run costs one wired machine of memory.
	Workers int

	// QueueDepth bounds the job queue; values < 1 mean DefaultQueueDepth.
	// A full queue sheds POST /v1/runs with 429 + Retry-After and
	// backpressures streaming sweeps.
	QueueDepth int

	// Cache is the result store; nil means a fresh memory-only cache of
	// DefaultCacheEntries specs.
	Cache *rescache.Cache

	// TimelineCap bounds the retained run timelines; past it the oldest is
	// dropped (re-submit with telemetry to regenerate). Values < 1 mean
	// DefaultTimelineCap.
	TimelineCap int

	// Log receives structured request and run logs; nil discards them
	// (tests, embedded use).
	Log *slog.Logger

	// Cluster federates this daemon into a sweep fleet (internal/cluster):
	// runs are owner-routed by Spec.Hash over the consistent-hash ring,
	// non-owned specs try a peer cache fill before computing, locally
	// computed non-owned results are offered back to their owners, and
	// sweeps fan out across the fleet. nil means single-node operation.
	Cluster *cluster.Cluster
}

// Defaults for Options zero values.
const (
	DefaultQueueDepth   = 256
	DefaultCacheEntries = 512
	DefaultTimelineCap  = 128
)

// MaxRequestBody bounds a submission body; a Spec list large enough to hit
// this is a client bug, not a workload.
const MaxRequestBody = 1 << 20

// ErrQueueFull reports a bounded-queue rejection.
var ErrQueueFull = errors.New("service: job queue full")

// Server owns the queue, the worker pool, and the run registry. Create it
// with New, expose Handler over any http.Server, and Close it to stop the
// workers and cancel everything in flight.
type Server struct {
	workers int
	cache   *rescache.Cache
	cluster *cluster.Cluster // nil outside fleet mode
	queue   chan *job

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu   sync.Mutex
	runs map[string]*job // async-submitted runs by Spec.Hash

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	rejected  atomic.Uint64

	log   *slog.Logger
	start time.Time

	// Operational metrics (GET /metrics).
	reg           *metrics.Registry
	runSeconds    *metrics.HistogramVec // run wall time by outcome
	httpReqs      *metrics.CounterVec   // requests by route pattern and code
	sweepsTotal   *metrics.Counter
	sweepRuns     *metrics.Counter
	sweepActive   *metrics.Gauge
	findingsTotal *metrics.CounterVec // analysis findings by rule and severity
	plansTotal    *metrics.CounterVec // plans by strategy and outcome
	planProbes    *metrics.Counter
	planHits      *metrics.Counter

	// Timelines of telemetry-bearing runs, keyed like the cache but stored
	// separately: a timeline describes one observed execution, not the
	// result identity, so it must not affect Spec.Hash addressing.
	tmu         sync.Mutex
	timelines   map[string]*telemetry.TimeSeries
	torder      []string
	timelineCap int
}

func (s *Server) storeTimeline(key string, ts telemetry.TimeSeries) {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if _, ok := s.timelines[key]; !ok {
		s.torder = append(s.torder, key)
		if len(s.torder) > s.timelineCap {
			delete(s.timelines, s.torder[0])
			s.torder = s.torder[1:]
		}
	}
	s.timelines[key] = &ts
}

func (s *Server) timeline(key string) (*telemetry.TimeSeries, bool) {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	ts, ok := s.timelines[key]
	return ts, ok
}

// initMetrics registers the daemon's operational metrics. Queue, worker,
// run-counter, and cache families read live state at scrape time; the
// histograms and sweep counters are written on the run paths.
func (s *Server) initMetrics() {
	r := metrics.NewRegistry()
	s.reg = r
	r.Info("hybridsimd_build_info", "Build version of the running daemon.",
		map[string]string{"version": buildinfo.Version()})
	r.GaugeFunc("hybridsimd_queue_depth", "Jobs waiting in the bounded queue.",
		func() int64 { return int64(len(s.queue)) })
	r.GaugeFunc("hybridsimd_queue_capacity", "Bound of the job queue.",
		func() int64 { return int64(cap(s.queue)) })
	r.GaugeFunc("hybridsimd_workers", "Simulation worker-pool size.",
		func() int64 { return int64(s.workers) })
	r.CounterFunc("hybridsimd_runs_submitted_total", "Jobs accepted into the queue.", s.submitted.Load)
	r.CounterFunc("hybridsimd_runs_completed_total", "Jobs finished successfully.", s.completed.Load)
	r.CounterFunc("hybridsimd_runs_failed_total", "Jobs finished with an error.", s.failed.Load)
	r.CounterFunc("hybridsimd_runs_rejected_total", "Submissions bounced off a full queue.", s.rejected.Load)
	s.runSeconds = r.HistogramVec("hybridsimd_run_duration_seconds",
		"Wall time to answer one run, by outcome (cached, computed, failed).",
		nil, "outcome")
	r.CounterFunc("hybridsimd_cache_hits_total", "Cache hits, all tiers plus singleflight followers.",
		func() uint64 { return s.cache.Stats().Hits })
	r.CounterFunc("hybridsimd_cache_memory_hits_total", "Memory-tier cache hits.",
		func() uint64 { return s.cache.Stats().MemHits })
	r.CounterFunc("hybridsimd_cache_disk_hits_total", "Disk-tier cache hits.",
		func() uint64 { return s.cache.Stats().DiskHits })
	r.CounterFunc("hybridsimd_cache_singleflight_hits_total", "Callers that joined an in-flight identical run.",
		func() uint64 { return s.cache.Stats().Dedup })
	r.CounterFunc("hybridsimd_cache_misses_total", "Requests that executed a simulation.",
		func() uint64 { return s.cache.Stats().Misses })
	r.CounterFunc("hybridsimd_cache_evictions_total", "Memory-tier LRU evictions.",
		func() uint64 { return s.cache.Stats().Evictions })
	r.CounterFunc("hybridsimd_cache_disk_errors_total",
		"Corrupt or unreadable disk-tier entries skipped at lookup.",
		func() uint64 { return s.cache.Stats().DiskErrors })
	r.CounterFunc("hybridsimd_cache_peer_fills_total",
		"Results adopted from fleet peers (cache fills and owner back-fills).",
		func() uint64 { return s.cache.Stats().PeerFills })
	r.GaugeFunc("hybridsimd_cache_entries", "Memory-tier population.",
		func() int64 { return int64(s.cache.Stats().Entries) })
	r.GaugeFunc("hybridsimd_cache_capacity", "Memory-tier bound.",
		func() int64 { return int64(s.cache.Stats().Capacity) })
	r.GaugeFunc("hybridsimd_timelines", "Run timelines currently retained.",
		func() int64 {
			s.tmu.Lock()
			defer s.tmu.Unlock()
			return int64(len(s.timelines))
		})
	r.GaugeFunc("hybridsimd_timelines_capacity", "Bound of the timeline store.",
		func() int64 { return int64(s.timelineCap) })
	s.sweepsTotal = r.Counter("hybridsimd_sweeps_total", "GET /v1/sweep requests started.")
	s.sweepRuns = r.Counter("hybridsimd_sweep_runs_total", "Runs fanned out by sweep requests.")
	s.sweepActive = r.Gauge("hybridsimd_sweeps_active", "Sweep streams currently open.")
	s.findingsTotal = r.CounterVec("hybridsimd_analysis_findings_total",
		"Analysis findings emitted, by rule and severity.", "rule", "severity")
	s.plansTotal = r.CounterVec("hybridsimd_plans_total",
		"POST /v1/plan requests finished, by strategy and outcome (converged, exhausted, failed, canceled).",
		"strategy", "outcome")
	s.planProbes = r.Counter("hybridsimd_plan_probes_total", "Probes executed by planner strategies.")
	s.planHits = r.Counter("hybridsimd_plan_cache_hits_total", "Planner probes answered from the result cache.")
	s.httpReqs = r.CounterVec("hybridsimd_http_requests_total",
		"API requests by route pattern and status code.", "path", "code")
	r.RegisterProcess("hybridsimd_", s.start)
	if s.cluster != nil {
		r.Attach(s.cluster.Metrics())
	}
}

// New starts the worker pool and returns a ready Server.
func New(opt Options) *Server {
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	depth := opt.QueueDepth
	if depth < 1 {
		depth = DefaultQueueDepth
	}
	cache := opt.Cache
	if cache == nil {
		cache, _ = rescache.New(DefaultCacheEntries, "")
	}
	tcap := opt.TimelineCap
	if tcap < 1 {
		tcap = DefaultTimelineCap
	}
	log := opt.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		workers:     workers,
		cache:       cache,
		cluster:     opt.Cluster,
		queue:       make(chan *job, depth),
		baseCtx:     ctx,
		cancel:      cancel,
		runs:        make(map[string]*job),
		log:         log,
		start:       time.Now(),
		timelines:   make(map[string]*telemetry.TimeSeries),
		timelineCap: tcap,
	}
	s.initMetrics()
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops the workers and cancels every queued and in-flight run. Jobs
// still sitting in the queue are finished with the cancellation error, so
// no handler or client blocked on a job's completion can hang.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
	for {
		select {
		case j := <-s.queue:
			j.finish(system.Results{}, false, 0, s.baseCtx.Err())
			s.failed.Add(1)
		default:
			return
		}
	}
}

// Cache exposes the result store (drivers share it with direct runs).
func (s *Server) Cache() *rescache.Cache { return s.cache }

// worker drains the queue until the server closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.execute(j)
		}
	}
}

// execute runs one job through the cache and publishes its outcome. In
// fleet mode a spec this node does not own first tries a peer cache fill
// (the owner computed or collected it already), and a result this node had
// to compute anyway — owner down, fill missed — is offered back to the
// owner so the fleet converges on one copy per shard.
func (s *Server) execute(j *job) {
	// A job whose submitter vanished (sweep disconnect, deadline) is
	// dropped here instead of burning a worker on a dead request.
	if err := j.ctx.Err(); err != nil {
		j.finish(system.Results{}, false, 0, err)
		s.failed.Add(1)
		return
	}
	if j.tel != nil && j.tel.Interval > 0 {
		s.executeRecorded(j)
		return
	}
	t0 := time.Now()
	remoteOwned := false
	if s.cluster != nil && !s.cache.Contains(j.key) {
		if _, local := s.cluster.Owner(j.key); !local {
			remoteOwned = true
			if e, ok := s.peerFill(j.ctx, j.key); ok {
				s.cache.FillPeer(e.Spec, e.Res)
				j.finish(e.Res, true, 0, nil)
				s.finishMetrics(j, "filled", time.Since(t0), nil)
				return
			}
		}
	}
	var wall time.Duration
	computed := false
	res, hit, err := s.cache.GetOrRun(j.ctx, j.spec, func(ctx context.Context) (system.Results, error) {
		computed = true
		r := runner.RunOne(ctx, j.spec)
		wall = r.Wall
		return r.Res, r.Err
	})
	if err == nil && computed && remoteOwned {
		s.offerToOwner(j.spec, res)
	}
	j.finish(res, hit, wall, err)
	s.finishMetrics(j, outcomeOf(hit, err), time.Since(t0), err)
}

// peerFill asks the fleet for key's cached entry and verifies the answer
// really is the entry it claims to be (a confused peer must not poison the
// local cache).
func (s *Server) peerFill(ctx context.Context, key string) (rescache.Entry, bool) {
	body, ok := s.cluster.Fill(ctx, key)
	if !ok {
		return rescache.Entry{}, false
	}
	var e rescache.Entry
	if err := json.Unmarshal(body, &e); err != nil || e.Spec.Hash() != key {
		s.log.Warn("cluster: discarding invalid peer fill", "key", key)
		return rescache.Entry{}, false
	}
	return e, true
}

// offerToOwner pushes a locally computed result for a non-owned key back to
// its owner, asynchronously and best-effort.
func (s *Server) offerToOwner(spec system.Spec, res system.Results) {
	body, err := json.Marshal(rescache.Entry{Spec: spec, Res: res})
	if err != nil {
		return
	}
	s.cluster.Offer(spec.Hash(), body)
}

// executeRecorded runs a telemetry-bearing job directly (outside GetOrRun, so
// a Recorder can be attached to the machine), then back-fills the cache and
// stores the sampled timeline under the run key.
func (s *Server) executeRecorded(j *job) {
	rec := telemetry.NewRecorder(j.tel.Interval, 0)
	t0 := time.Now()
	res, err := j.spec.ExecuteRecorded(j.ctx, rec)
	wall := time.Since(t0)
	if err == nil {
		s.cache.Put(j.spec, res)
		s.storeTimeline(j.key, rec.Series())
	}
	j.finish(res, false, wall, err)
	s.finishMetrics(j, outcomeOf(false, err), wall, err)
}

func outcomeOf(hit bool, err error) string {
	switch {
	case err != nil:
		return "failed"
	case hit:
		return "cached"
	default:
		return "computed"
	}
}

// finishMetrics publishes one finished job's counters, latency, and log line.
func (s *Server) finishMetrics(j *job, outcome string, wall time.Duration, err error) {
	if err != nil {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	s.runSeconds.With(outcome).Observe(wall.Seconds())
	if err != nil {
		s.log.Info("run finished", "key", j.key, "spec", j.spec.Key(),
			"outcome", outcome, "wall_ms", wall.Milliseconds(), "err", err)
	} else {
		s.log.Info("run finished", "key", j.key, "spec", j.spec.Key(),
			"outcome", outcome, "wall_ms", wall.Milliseconds())
	}
}

// ---------------------------------------------------------------------------
// Jobs

type jobStatus string

const (
	statusPending jobStatus = "pending"
	statusRunning jobStatus = "running"
	statusDone    jobStatus = "done"
	statusFailed  jobStatus = "failed"
)

// job is one queued run. done closes exactly once, when the terminal state
// (done/failed) is published.
type job struct {
	spec   system.Spec
	key    string
	tel    *TelemetryOptions // non-nil: observe the run (see executeRecorded)
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	status jobStatus
	res    system.Results
	cached bool
	wall   time.Duration
	err    error
}

func newJob(ctx context.Context, cancel context.CancelFunc, spec system.Spec) *job {
	return &job{
		spec:   spec,
		key:    spec.Hash(),
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		status: statusPending,
	}
}

// doneJob synthesizes an already-completed job for a cache hit at submit
// time — no queue round-trip, no worker.
func doneJob(spec system.Spec, res system.Results) *job {
	j := &job{
		spec:   spec,
		key:    spec.Hash(),
		done:   make(chan struct{}),
		status: statusDone,
		res:    res,
		cached: true,
	}
	close(j.done)
	return j
}

func (j *job) finish(res system.Results, cached bool, wall time.Duration, err error) {
	j.mu.Lock()
	if err != nil {
		j.status = statusFailed
		j.err = err
	} else {
		j.status = statusDone
		j.res = res
		j.cached = cached
	}
	j.wall = wall
	j.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
	}
	close(j.done)
}

// record snapshots the job as its wire representation.
func (j *job) record() RunRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := RunRecord{
		Key:    j.key,
		Spec:   j.spec,
		Status: string(j.status),
		Cached: j.cached,
		WallMS: float64(j.wall) / float64(time.Millisecond),
		URL:    "/v1/runs/" + j.key,
	}
	if j.status == statusDone {
		res := j.res
		r.Results = &res
	}
	if j.err != nil {
		r.Error = j.err.Error()
	}
	return r
}

// ---------------------------------------------------------------------------
// Wire types

// SubmitRequest is the POST /v1/runs body: exactly one of Spec, Specs, or
// Matrix, optionally observed per Telemetry.
type SubmitRequest struct {
	Spec   *system.Spec  `json:"spec,omitempty"`
	Specs  []system.Spec `json:"specs,omitempty"`
	Matrix *Matrix       `json:"matrix,omitempty"`

	// Telemetry asks the daemon to sample each submitted run's counters
	// into a time series retrievable at GET /v1/runs/{key}/timeline. It is
	// an observation request, not part of the Spec: run keys (and thus
	// cache identity) are unchanged. A run whose result is cached but whose
	// timeline is not is re-executed once to produce it.
	Telemetry *TelemetryOptions `json:"telemetry,omitempty"`
}

// TelemetryOptions configures in-sim observation of submitted runs.
type TelemetryOptions struct {
	// Interval is the counter sampling period in simulated cycles; it must
	// be positive for the block to have any effect.
	Interval uint64 `json:"interval"`
}

// Matrix enumerates an axis-based sweep by name — the wire form of
// runner.Axes: benchmarks x systems x every swept knob x every swept
// workload parameter, with fixed Overrides applied to each point.
type Matrix struct {
	// Benchmarks holds workload spellings — a workloads registry name,
	// optionally with fixed parameters ("stream:stride=128"). Default:
	// every registered workload.
	Benchmarks []string `json:"benchmarks,omitempty"`
	Systems    []string `json:"systems,omitempty"` // cache|hybrid|ideal; default: all three
	Scale      string   `json:"scale"`
	Cores      int      `json:"cores,omitempty"`

	// Overrides fixes machine knobs for every enumerated run.
	Overrides *config.Overrides `json:"overrides,omitempty"`

	// Sweep adds one enumeration axis per entry, innermost last — each a
	// registry knob (config.Knobs) with the values it takes.
	Sweep []runner.KnobAxis `json:"sweep,omitempty"`

	// WSweep adds workload-parameter axes, nested inside the knob axes —
	// each a parameter declared by every swept workload's registry entry.
	WSweep []runner.ParamAxis `json:"wsweep,omitempty"`

	// Analyze asks a sweep to close its stream with a cross-run analysis
	// (axis attribution, knee detection) in the summary line. Pure
	// observation: run identity and per-run records are unchanged.
	Analyze bool `json:"analyze,omitempty"`
}

// Specs expands the enumeration, validating every name before anything is
// queued.
func (m Matrix) Specs() ([]system.Spec, error) {
	scale, err := workloads.ParseScale(m.Scale)
	if err != nil {
		return nil, err
	}
	axes := runner.Axes{
		Benchmarks: m.Benchmarks,
		Scale:      scale,
		Cores:      m.Cores,
		Knobs:      m.Sweep,
		WParams:    m.WSweep,
	}
	if m.Overrides != nil {
		axes.Base = *m.Overrides
	}
	if len(m.Systems) != 0 {
		axes.Systems = make([]config.MemorySystem, len(m.Systems))
		for i, name := range m.Systems {
			if axes.Systems[i], err = config.ParseMemorySystem(name); err != nil {
				return nil, err
			}
		}
	}
	specs, err := axes.Specs()
	if err != nil {
		return nil, err
	}
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// resolve returns the Specs a submission names.
func (r SubmitRequest) resolve() ([]system.Spec, error) {
	n := 0
	if r.Spec != nil {
		n++
	}
	if len(r.Specs) != 0 {
		n++
	}
	if r.Matrix != nil {
		n++
	}
	if n != 1 {
		return nil, errors.New(`body must set exactly one of "spec", "specs", or "matrix"`)
	}
	switch {
	case r.Spec != nil:
		return []system.Spec{*r.Spec}, nil
	case len(r.Specs) != 0:
		return r.Specs, nil
	default:
		return r.Matrix.Specs()
	}
}

// RunRecord is the wire form of one run's state. Results is present only
// once Status is "done".
type RunRecord struct {
	Key     string          `json:"key"`
	Spec    system.Spec     `json:"spec"`
	Status  string          `json:"status"`
	Cached  bool            `json:"cached,omitempty"`
	WallMS  float64         `json:"wall_ms,omitempty"`
	Results *system.Results `json:"results,omitempty"`
	Error   string          `json:"error,omitempty"`
	URL     string          `json:"url,omitempty"`

	// Index/Total position a record inside a streamed sweep.
	Index int `json:"index,omitempty"`
	Total int `json:"total,omitempty"`
}

// SubmitResponse answers POST /v1/runs.
type SubmitResponse struct {
	Runs []RunRecord `json:"runs"`
}

// SweepSummary is the trailing line of a /v1/sweep stream. Analysis is
// present only when the sweep was requested with ?analyze=1.
type SweepSummary struct {
	Runs     int                   `json:"runs"`
	Failed   int                   `json:"failed"`
	WallMS   float64               `json:"wall_ms"`
	Cache    rescache.Stats        `json:"cache"`
	Analysis *analysis.SweepReport `json:"analysis,omitempty"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	Cache      rescache.Stats `json:"cache"`
	QueueDepth int            `json:"queue_depth"`
	QueueCap   int            `json:"queue_cap"`
	Workers    int            `json:"workers"`
	Submitted  uint64         `json:"submitted"`
	Completed  uint64         `json:"completed"`
	Failed     uint64         `json:"failed"`
	Rejected   uint64         `json:"rejected"`
}

// ---------------------------------------------------------------------------
// HTTP surface

// Handler returns the versioned API mux, wrapped in the logging and
// request-metrics middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{key}", s.handleGetRun)
	mux.HandleFunc("GET /v1/runs/{key}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /v1/runs/{key}/analysis", s.handleAnalysis)
	mux.HandleFunc("GET /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", s.reg.Handler())
	return s.instrument(mux)
}

// statusWriter captures the response code for the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streamed sweeps keep flushing
// through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routeLabel maps a request path onto its route pattern, so the per-route
// counter has bounded cardinality no matter what keys clients poll.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/runs":
		return "/v1/runs"
	case strings.HasPrefix(p, "/v1/runs/") && strings.HasSuffix(p, "/timeline"):
		return "/v1/runs/{key}/timeline"
	case strings.HasPrefix(p, "/v1/runs/") && strings.HasSuffix(p, "/analysis"):
		return "/v1/runs/{key}/analysis"
	case strings.HasPrefix(p, "/v1/runs/"):
		return "/v1/runs/{key}"
	case strings.HasPrefix(p, "/v1/cache/"):
		return "/v1/cache/{key}"
	case p == "/v1/sweep", p == "/v1/plan", p == "/v1/cluster", p == "/v1/healthz", p == "/v1/stats", p == "/metrics":
		return p
	default:
		return "other"
	}
}

// instrument wraps the mux with structured request logging and the per-route
// request counter.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		route := routeLabel(r)
		s.httpReqs.With(route, strconv.Itoa(sw.code)).Inc()
		if route != "/metrics" && route != "/v1/healthz" { // scrape noise
			s.log.Info("request", "method", r.Method, "path", r.URL.Path,
				"code", sw.code, "dur_ms", time.Since(t0).Milliseconds())
		}
	})
}

// handleAnalysis runs the advisor rules over one completed run. Analysis is
// always derived on demand — findings are a view over results, resolved
// config, and (when present) the stored timeline, never part of run identity
// or cache state. Rules that need a counter snapshot are reported as skipped
// here: the daemon keeps results, not raw counters (use hybridsim -analyze
// for the full set).
func (s *Server) handleAnalysis(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	var spec system.Spec
	var res system.Results
	found := false
	s.mu.Lock()
	j, ok := s.runs[key]
	s.mu.Unlock()
	if ok {
		j.mu.Lock()
		if j.status == statusDone {
			spec, res, found = j.spec, j.res, true
		}
		status := j.status
		j.mu.Unlock()
		if !found {
			writeError(w, http.StatusConflict, fmt.Errorf(
				"run %q is %s; analysis needs a completed run", key, status))
			return
		}
	} else if e, ok := s.cache.EntryKey(key); ok {
		spec, res, found = e.Spec, e.Res, true
	}
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", key))
		return
	}
	in := analysis.Input{Config: spec.Config(), Results: res}
	if ts, ok := s.timeline(key); ok {
		in.Series = ts
	}
	rep := analysis.Analyze(in)
	s.countFindings(rep.Findings)
	writeJSON(w, http.StatusOK, rep)
}

// countFindings feeds the per-rule findings counter.
func (s *Server) countFindings(fs []analysis.Finding) {
	for _, f := range fs {
		s.findingsTotal.With(f.Rule, string(f.Severity)).Inc()
	}
}

// handleTimeline serves the sampled counter time series of one
// telemetry-bearing run.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	ts, ok := s.timeline(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf(
			"no timeline for run %q (submit it with a telemetry block)", key))
		return
	}
	writeJSON(w, http.StatusOK, ts)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// queryTimeout parses ?timeout=30s; zero means none.
func queryTimeout(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q", raw)
	}
	return d, nil
}

// submit registers (or joins) the async job for spec. Completed results
// short-circuit to a synthetic done job; a pending job for the same hash is
// shared, so re-POSTing a slow Spec does not duplicate work or queue slots.
// A telemetry-bearing submission only takes the cache short-circuit when the
// timeline already exists too — otherwise the run is executed (once) to
// produce it.
func (s *Server) submit(spec system.Spec, timeout time.Duration, tel *TelemetryOptions) (*job, error) {
	// A closing server has no workers left; accepting the job would strand
	// a ?wait=true caller (or a fleet peer's forwarded request) forever.
	if err := s.baseCtx.Err(); err != nil {
		s.rejected.Add(1)
		return nil, fmt.Errorf("service: shutting down: %w", err)
	}
	wantTimeline := tel != nil && tel.Interval > 0
	if res, ok := s.cache.Get(spec); ok {
		if !wantTimeline {
			return doneJob(spec, res), nil
		}
		if _, ok := s.timeline(spec.Hash()); ok {
			return doneJob(spec, res), nil
		}
	}
	s.mu.Lock()
	if j, ok := s.runs[spec.Hash()]; ok {
		j.mu.Lock()
		pending := j.status == statusPending || j.status == statusRunning
		j.mu.Unlock()
		if pending {
			s.mu.Unlock()
			return j, nil
		}
	}
	s.gcRunsLocked()
	// Async jobs outlive their submitting request, so they hang off the
	// server's context; the optional timeout is the only per-job bound.
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	j := newJob(ctx, cancel, spec)
	if wantTimeline {
		j.tel = tel
	}
	s.runs[j.key] = j
	s.mu.Unlock()

	select {
	case s.queue <- j:
		s.submitted.Add(1)
		return j, nil
	default:
		s.mu.Lock()
		delete(s.runs, j.key)
		s.mu.Unlock()
		cancel()
		s.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// runsGCThreshold bounds the async-run registry: past it, terminal jobs are
// swept out (their Results stay reachable through the cache).
const runsGCThreshold = 4096

// gcRunsLocked evicts finished jobs once the registry outgrows the
// threshold. Caller holds s.mu.
func (s *Server) gcRunsLocked() {
	if len(s.runs) <= runsGCThreshold {
		return
	}
	for k, j := range s.runs {
		j.mu.Lock()
		terminal := j.status == statusDone || j.status == statusFailed
		j.mu.Unlock()
		if terminal {
			delete(s.runs, k)
		}
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	timeout, err := queryTimeout(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specs, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.maybeForwardSubmit(w, r, specs, req) {
		return
	}
	jobs := make([]*job, 0, len(specs))
	for _, sp := range specs {
		j, err := s.submit(sp, timeout, req.Telemetry)
		if err != nil {
			// Load shed: the queue is a transient condition, so answer 429
			// with a retry hint rather than 503 (clients and peers back off
			// and resubmit; see cluster.Forward and Client retries).
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		jobs = append(jobs, j)
	}
	s.log.Info("runs submitted", "specs", len(specs),
		"telemetry", req.Telemetry != nil && req.Telemetry.Interval > 0)

	wait, _ := strconv.ParseBool(r.URL.Query().Get("wait"))
	code := http.StatusAccepted
	if wait {
		// Block on the submitted work, bounded by the client's own
		// connection and the optional timeout. Expiry degrades to the
		// async answer (202 + poll URLs), it does not fail the jobs.
		waitCtx := r.Context()
		if timeout > 0 {
			var cancel context.CancelFunc
			waitCtx, cancel = context.WithTimeout(waitCtx, timeout)
			defer cancel()
		}
		code = http.StatusOK
		for _, j := range jobs {
			select {
			case <-j.done:
			case <-waitCtx.Done():
				code = http.StatusAccepted
			case <-s.baseCtx.Done():
				// The server is closing under this handler; the async
				// answer is all that is safely left to give.
				code = http.StatusAccepted
			}
			if code == http.StatusAccepted {
				break
			}
		}
	}
	resp := SubmitResponse{Runs: make([]RunRecord, len(jobs))}
	for i, j := range jobs {
		resp.Runs[i] = j.record()
	}
	writeJSON(w, code, resp)
}

// maybeForwardSubmit owner-routes a single-Spec submission to the ring
// member that owns its key, so the fleet's singleflight has one home per
// Spec. Only plain single runs forward: multi-spec and matrix bodies stay
// local (the per-job paths route individually), telemetry is a local
// observation request, and a request already carrying ForwardedHeader is
// terminal here — one hop, never a loop. The owner's reply (including a
// 429 shed) is relayed verbatim; a transport failure degrades to local
// compute by returning false.
func (s *Server) maybeForwardSubmit(w http.ResponseWriter, r *http.Request, specs []system.Spec, req SubmitRequest) bool {
	if s.cluster == nil || len(specs) != 1 || req.Spec == nil {
		return false
	}
	if req.Telemetry != nil && req.Telemetry.Interval > 0 {
		return false
	}
	if r.Header.Get(cluster.ForwardedHeader) != "" {
		return false
	}
	key := specs[0].Hash()
	if s.cache.Contains(key) {
		return false // local answer is free; no point shipping the request
	}
	owner, local := s.cluster.Owner(key)
	if local {
		return false
	}
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	status, resp, err := s.cluster.Forward(r.Context(), owner, http.MethodPost, path, body)
	if err != nil {
		s.log.Warn("cluster: forward failed, running locally", "peer", owner, "key", key, "err", err)
		return false
	}
	if status == http.StatusOK {
		// A waited run came back complete; adopt it so the next local
		// request (and GET /v1/runs/{key}) is a cache hit here too.
		s.adoptForwarded(resp, key)
	}
	if ra := "1"; status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(resp)
	return true
}

// adoptForwarded back-fills the local cache from a forwarded ?wait=true
// submission's completed response.
func (s *Server) adoptForwarded(resp []byte, key string) {
	var sr SubmitResponse
	if err := json.Unmarshal(resp, &sr); err != nil {
		return
	}
	for _, rec := range sr.Runs {
		if rec.Status == string(statusDone) && rec.Results != nil && rec.Spec.Hash() == key {
			s.cache.FillPeer(rec.Spec, *rec.Results)
		}
	}
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	j, ok := s.runs[key]
	s.mu.Unlock()
	if ok {
		writeJSON(w, http.StatusOK, j.record())
		return
	}
	// Runs that arrived via a sweep (or a previous process, through the
	// disk tier) live only in the cache.
	if e, ok := s.cache.EntryKey(key); ok {
		writeJSON(w, http.StatusOK, doneJob(e.Spec, e.Res).record())
		return
	}
	// Fleet read-proxy: the run may live on (or have been submitted to)
	// its ring owner. One hop only.
	if s.cluster != nil && r.Header.Get(cluster.ForwardedHeader) == "" {
		if owner, local := s.cluster.Owner(key); !local {
			status, resp, err := s.cluster.Forward(r.Context(), owner, http.MethodGet, r.URL.Path, nil)
			if err == nil && status == http.StatusOK {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(status)
				w.Write(resp)
				return
			}
		}
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", key))
}

// handleSweep enumerates a matrix from query parameters, queues every run
// bound to the request context, and streams one JSON line per run in input
// order as results land, then a summary line. Disconnecting cancels all
// remaining work.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	timeout, err := queryTimeout(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m := Matrix{Scale: q.Get("scale")}
	if m.Scale == "" {
		m.Scale = "small"
	}
	if v := q.Get("benchmarks"); v != "" {
		m.Benchmarks = strings.Split(v, ",")
	}
	// ?workload=name:k=v,k2=v2 names one workload per occurrence (the
	// repeatable form parameter spellings need, since their commas would
	// split a ?benchmarks= list). Both parameters compose.
	m.Benchmarks = append(m.Benchmarks, q["workload"]...)
	if v := q.Get("systems"); v != "" {
		m.Systems = strings.Split(v, ",")
	}
	if v := q.Get("cores"); v != "" {
		if m.Cores, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad cores %q", v))
			return
		}
	}
	// ?set=knob=value fixes a machine knob for every run; ?sweep=knob=v1,v2
	// adds an enumeration axis. Both repeat.
	if sets := q["set"]; len(sets) > 0 {
		ov, err := config.ParseOverrides(sets)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		m.Overrides = &ov
	}
	if m.Sweep, err = runner.ParseKnobAxes(q["sweep"]); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// ?wsweep=param=v1,v2 adds a workload-parameter axis. Repeatable.
	if m.WSweep, err = runner.ParseParamAxes(q["wsweep"]); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// ?analyze=1 appends a cross-run analysis to the summary line.
	m.Analyze, _ = strconv.ParseBool(q.Get("analyze"))
	specs, err := m.Specs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	s.sweepsTotal.Inc()
	s.sweepRuns.Add(uint64(len(specs)))
	s.sweepActive.Inc()
	defer s.sweepActive.Dec()
	s.log.Info("sweep started", "runs", len(specs))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Enqueue from a goroutine so a full queue backpressures the producer
	// while the handler keeps streaming completed lines. The jobs channel
	// carries input order, so the stream is deterministic no matter where
	// (or in what order) the runs complete — in fleet mode, specs owned by
	// a live peer fan out to it concurrently while local ones queue here,
	// and the merged output is identical to a single node's.
	fanout := r.Header.Get(cluster.ForwardedHeader) == ""
	jobs := make(chan *job, len(specs))
	go func() {
		defer close(jobs)
		for _, sp := range specs {
			jobs <- s.startJob(ctx, sp, fanout)
		}
	}()

	t0 := time.Now()
	sum := SweepSummary{Runs: len(specs)}
	var doneSpecs []system.Spec
	var doneResults []system.Results
	i := 0
	for j := range jobs {
		select {
		case <-j.done:
		case <-ctx.Done():
			// The client is gone (or the deadline passed): every queued
			// job shares ctx and will be dropped by the workers; stop
			// streaming.
			<-j.done
		}
		rec := j.record()
		rec.Index = i
		rec.Total = len(specs)
		if rec.Status != string(statusDone) {
			sum.Failed++
		} else if m.Analyze && rec.Results != nil {
			doneSpecs = append(doneSpecs, rec.Spec)
			doneResults = append(doneResults, *rec.Results)
		}
		if err := enc.Encode(rec); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		i++
	}
	sum.WallMS = float64(time.Since(t0)) / float64(time.Millisecond)
	sum.Cache = s.cache.Stats()
	if m.Analyze {
		rep := analysis.Sweep(doneSpecs, doneResults)
		s.countFindings(rep.Findings)
		sum.Analysis = &rep
	}
	enc.Encode(struct {
		Summary SweepSummary `json:"summary"`
	}{sum})
}

// enqueueLocal puts a sweep job on the local queue, backpressuring the
// producer; a cancelled context fails the job instead of blocking forever.
func (s *Server) enqueueLocal(ctx context.Context, j *job) {
	select {
	case s.queue <- j:
		s.submitted.Add(1)
	case <-ctx.Done():
		j.finish(system.Results{}, false, 0, ctx.Err())
	}
}

// runRemote executes one sweep job on its ring owner: a forwarded
// ?wait=true submission, adopted into the local cache on success so
// repeats are free here too. Any failure — owner down, shed after
// retries, timeout, malformed reply — degrades to local compute, so a
// sweep always completes with whatever nodes remain.
func (s *Server) runRemote(ctx context.Context, owner string, j *job) {
	t0 := time.Now()
	body, err := json.Marshal(SubmitRequest{Spec: &j.spec})
	if err != nil {
		s.enqueueLocal(ctx, j)
		return
	}
	status, resp, err := s.cluster.Forward(ctx, owner, http.MethodPost, "/v1/runs?wait=true", body)
	if err == nil && status == http.StatusOK {
		var sr SubmitResponse
		if jerr := json.Unmarshal(resp, &sr); jerr == nil && len(sr.Runs) == 1 {
			rec := sr.Runs[0]
			if rec.Status == string(statusDone) && rec.Results != nil && rec.Spec.Hash() == j.key {
				s.cache.FillPeer(rec.Spec, *rec.Results)
				j.finish(*rec.Results, true, 0, nil)
				s.finishMetrics(j, "forwarded", time.Since(t0), nil)
				return
			}
		}
	}
	if err != nil {
		s.log.Warn("cluster: remote run failed, degrading to local",
			"peer", owner, "key", j.key, "err", err)
	} else {
		s.log.Warn("cluster: remote run unusable, degrading to local",
			"peer", owner, "key", j.key, "status", status)
	}
	s.enqueueLocal(ctx, j)
}

// handleCacheGet serves one cache entry by key to fleet peers — the wire
// half of cluster.Fill. 404 means a plain miss; the caller computes.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	e, ok := s.cache.EntryKey(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cache entry %q", key))
		return
	}
	writeJSON(w, http.StatusOK, e)
}

// handleCachePut accepts an owner back-fill from a peer that computed one
// of this node's keys (the wire half of cluster.Offer). The entry must
// hash to the key it claims — a mismatch is a client bug, never stored.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	var e rescache.Entry
	if err := dec.Decode(&e); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if e.Spec.Hash() != key {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"entry hashes to %q, not %q", e.Spec.Hash(), key))
		return
	}
	if !s.cache.Contains(key) {
		s.cache.FillPeer(e.Spec, e.Res)
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleCluster reports fleet membership and ring state; ?key= additionally
// answers which member owns a key (debugging aid: every node must agree).
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, errors.New("not running in cluster mode"))
		return
	}
	snap := s.cluster.Info()
	resp := map[string]any{
		"self":    snap.Self,
		"vnodes":  snap.VNodes,
		"members": snap.Members,
	}
	if key := r.URL.Query().Get("key"); key != "" {
		owner, local := s.cluster.Owner(key)
		resp["key"] = key
		resp["owner"] = owner
		resp["owner_is_self"] = local
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"version":     buildinfo.Version(),
		"queue_depth": len(s.queue),
		"queue_cap":   cap(s.queue),
		"workers":     s.workers,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Cache:      s.cache.Stats(),
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		Workers:    s.workers,
		Submitted:  s.submitted.Load(),
		Completed:  s.completed.Load(),
		Failed:     s.failed.Load(),
		Rejected:   s.rejected.Load(),
	})
}
