// Package service exposes the Spec/runner core as a long-lived HTTP daemon
// with a content-addressed result cache (internal/rescache) in front of it.
//
// The API is deliberately small:
//
//	POST /v1/runs            submit one Spec, a list, or a matrix enumeration
//	                         (?wait=true blocks for results, ?timeout=30s
//	                         bounds the submitted work); specs carry workload
//	                         "params" and machine-knob "overrides"; matrices
//	                         add per-knob "sweep" axes (config.Knobs
//	                         registry) and per-workload-parameter "wsweep"
//	                         axes (workloads registry)
//	GET  /v1/runs/{key}      poll one run by its canonical Spec.Hash
//	GET  /v1/sweep           run a workload x system x knob x param matrix
//	                         and stream one JSON line per completed run
//	                         (?set=knob=value fixes a knob on every run,
//	                         ?sweep=knob=v1,v2,... adds a knob axis,
//	                         ?workload=name:k=v names a parameterized
//	                         workload, ?wsweep=param=v1,v2,... adds a
//	                         workload-parameter axis; all repeat)
//	GET  /v1/healthz         liveness plus queue depth
//	GET  /v1/stats           cache hit rate, queue, and run counters
//
// Submissions flow through a bounded job queue drained by a fixed pool of
// worker goroutines, each of which executes via rescache.GetOrRun — so a
// Spec the daemon has seen before costs a map lookup, and N concurrent
// requests for the same Spec cost one simulation. Sweep jobs are bound to
// their request's context: a client disconnect cancels queued and in-flight
// work (system.Machine.RunContext polls the context mid-run).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/rescache"
	"repro/internal/runner"
	"repro/internal/system"
	"repro/internal/workloads"
)

// Options configures a Server.
type Options struct {
	// Workers is the simulation worker-pool size; values < 1 mean one per
	// host CPU. Each in-flight run costs one wired machine of memory.
	Workers int

	// QueueDepth bounds the job queue; values < 1 mean DefaultQueueDepth.
	// A full queue rejects POST /v1/runs with 503 and backpressures
	// streaming sweeps.
	QueueDepth int

	// Cache is the result store; nil means a fresh memory-only cache of
	// DefaultCacheEntries specs.
	Cache *rescache.Cache
}

// Defaults for Options zero values.
const (
	DefaultQueueDepth   = 256
	DefaultCacheEntries = 512
)

// MaxRequestBody bounds a submission body; a Spec list large enough to hit
// this is a client bug, not a workload.
const MaxRequestBody = 1 << 20

// ErrQueueFull reports a bounded-queue rejection.
var ErrQueueFull = errors.New("service: job queue full")

// Server owns the queue, the worker pool, and the run registry. Create it
// with New, expose Handler over any http.Server, and Close it to stop the
// workers and cancel everything in flight.
type Server struct {
	workers int
	cache   *rescache.Cache
	queue   chan *job

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu   sync.Mutex
	runs map[string]*job // async-submitted runs by Spec.Hash

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	rejected  atomic.Uint64
}

// New starts the worker pool and returns a ready Server.
func New(opt Options) *Server {
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	depth := opt.QueueDepth
	if depth < 1 {
		depth = DefaultQueueDepth
	}
	cache := opt.Cache
	if cache == nil {
		cache, _ = rescache.New(DefaultCacheEntries, "")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		workers: workers,
		cache:   cache,
		queue:   make(chan *job, depth),
		baseCtx: ctx,
		cancel:  cancel,
		runs:    make(map[string]*job),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops the workers and cancels every queued and in-flight run. Jobs
// still sitting in the queue are finished with the cancellation error, so
// no handler or client blocked on a job's completion can hang.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
	for {
		select {
		case j := <-s.queue:
			j.finish(system.Results{}, false, 0, s.baseCtx.Err())
			s.failed.Add(1)
		default:
			return
		}
	}
}

// Cache exposes the result store (drivers share it with direct runs).
func (s *Server) Cache() *rescache.Cache { return s.cache }

// worker drains the queue until the server closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.execute(j)
		}
	}
}

// execute runs one job through the cache and publishes its outcome.
func (s *Server) execute(j *job) {
	// A job whose submitter vanished (sweep disconnect, deadline) is
	// dropped here instead of burning a worker on a dead request.
	if err := j.ctx.Err(); err != nil {
		j.finish(system.Results{}, false, 0, err)
		s.failed.Add(1)
		return
	}
	var wall time.Duration
	res, hit, err := s.cache.GetOrRun(j.ctx, j.spec, func(ctx context.Context) (system.Results, error) {
		r := runner.RunOne(ctx, j.spec)
		wall = r.Wall
		return r.Res, r.Err
	})
	j.finish(res, hit, wall, err)
	if err != nil {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
}

// ---------------------------------------------------------------------------
// Jobs

type jobStatus string

const (
	statusPending jobStatus = "pending"
	statusRunning jobStatus = "running"
	statusDone    jobStatus = "done"
	statusFailed  jobStatus = "failed"
)

// job is one queued run. done closes exactly once, when the terminal state
// (done/failed) is published.
type job struct {
	spec   system.Spec
	key    string
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	status jobStatus
	res    system.Results
	cached bool
	wall   time.Duration
	err    error
}

func newJob(ctx context.Context, cancel context.CancelFunc, spec system.Spec) *job {
	return &job{
		spec:   spec,
		key:    spec.Hash(),
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		status: statusPending,
	}
}

// doneJob synthesizes an already-completed job for a cache hit at submit
// time — no queue round-trip, no worker.
func doneJob(spec system.Spec, res system.Results) *job {
	j := &job{
		spec:   spec,
		key:    spec.Hash(),
		done:   make(chan struct{}),
		status: statusDone,
		res:    res,
		cached: true,
	}
	close(j.done)
	return j
}

func (j *job) finish(res system.Results, cached bool, wall time.Duration, err error) {
	j.mu.Lock()
	if err != nil {
		j.status = statusFailed
		j.err = err
	} else {
		j.status = statusDone
		j.res = res
		j.cached = cached
	}
	j.wall = wall
	j.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
	}
	close(j.done)
}

// record snapshots the job as its wire representation.
func (j *job) record() RunRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := RunRecord{
		Key:    j.key,
		Spec:   j.spec,
		Status: string(j.status),
		Cached: j.cached,
		WallMS: float64(j.wall) / float64(time.Millisecond),
		URL:    "/v1/runs/" + j.key,
	}
	if j.status == statusDone {
		res := j.res
		r.Results = &res
	}
	if j.err != nil {
		r.Error = j.err.Error()
	}
	return r
}

// ---------------------------------------------------------------------------
// Wire types

// SubmitRequest is the POST /v1/runs body: exactly one of Spec, Specs, or
// Matrix.
type SubmitRequest struct {
	Spec   *system.Spec  `json:"spec,omitempty"`
	Specs  []system.Spec `json:"specs,omitempty"`
	Matrix *Matrix       `json:"matrix,omitempty"`
}

// Matrix enumerates an axis-based sweep by name — the wire form of
// runner.Axes: benchmarks x systems x every swept knob x every swept
// workload parameter, with fixed Overrides applied to each point.
type Matrix struct {
	// Benchmarks holds workload spellings — a workloads registry name,
	// optionally with fixed parameters ("stream:stride=128"). Default:
	// every registered workload.
	Benchmarks []string `json:"benchmarks,omitempty"`
	Systems    []string `json:"systems,omitempty"` // cache|hybrid|ideal; default: all three
	Scale      string   `json:"scale"`
	Cores      int      `json:"cores,omitempty"`

	// Overrides fixes machine knobs for every enumerated run.
	Overrides *config.Overrides `json:"overrides,omitempty"`

	// Sweep adds one enumeration axis per entry, innermost last — each a
	// registry knob (config.Knobs) with the values it takes.
	Sweep []runner.KnobAxis `json:"sweep,omitempty"`

	// WSweep adds workload-parameter axes, nested inside the knob axes —
	// each a parameter declared by every swept workload's registry entry.
	WSweep []runner.ParamAxis `json:"wsweep,omitempty"`
}

// Specs expands the enumeration, validating every name before anything is
// queued.
func (m Matrix) Specs() ([]system.Spec, error) {
	scale, err := workloads.ParseScale(m.Scale)
	if err != nil {
		return nil, err
	}
	axes := runner.Axes{
		Benchmarks: m.Benchmarks,
		Scale:      scale,
		Cores:      m.Cores,
		Knobs:      m.Sweep,
		WParams:    m.WSweep,
	}
	if m.Overrides != nil {
		axes.Base = *m.Overrides
	}
	if len(m.Systems) != 0 {
		axes.Systems = make([]config.MemorySystem, len(m.Systems))
		for i, name := range m.Systems {
			if axes.Systems[i], err = config.ParseMemorySystem(name); err != nil {
				return nil, err
			}
		}
	}
	specs, err := axes.Specs()
	if err != nil {
		return nil, err
	}
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// resolve returns the Specs a submission names.
func (r SubmitRequest) resolve() ([]system.Spec, error) {
	n := 0
	if r.Spec != nil {
		n++
	}
	if len(r.Specs) != 0 {
		n++
	}
	if r.Matrix != nil {
		n++
	}
	if n != 1 {
		return nil, errors.New(`body must set exactly one of "spec", "specs", or "matrix"`)
	}
	switch {
	case r.Spec != nil:
		return []system.Spec{*r.Spec}, nil
	case len(r.Specs) != 0:
		return r.Specs, nil
	default:
		return r.Matrix.Specs()
	}
}

// RunRecord is the wire form of one run's state. Results is present only
// once Status is "done".
type RunRecord struct {
	Key     string          `json:"key"`
	Spec    system.Spec     `json:"spec"`
	Status  string          `json:"status"`
	Cached  bool            `json:"cached,omitempty"`
	WallMS  float64         `json:"wall_ms,omitempty"`
	Results *system.Results `json:"results,omitempty"`
	Error   string          `json:"error,omitempty"`
	URL     string          `json:"url,omitempty"`

	// Index/Total position a record inside a streamed sweep.
	Index int `json:"index,omitempty"`
	Total int `json:"total,omitempty"`
}

// SubmitResponse answers POST /v1/runs.
type SubmitResponse struct {
	Runs []RunRecord `json:"runs"`
}

// SweepSummary is the trailing line of a /v1/sweep stream.
type SweepSummary struct {
	Runs   int            `json:"runs"`
	Failed int            `json:"failed"`
	WallMS float64        `json:"wall_ms"`
	Cache  rescache.Stats `json:"cache"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	Cache      rescache.Stats `json:"cache"`
	QueueDepth int            `json:"queue_depth"`
	QueueCap   int            `json:"queue_cap"`
	Workers    int            `json:"workers"`
	Submitted  uint64         `json:"submitted"`
	Completed  uint64         `json:"completed"`
	Failed     uint64         `json:"failed"`
	Rejected   uint64         `json:"rejected"`
}

// ---------------------------------------------------------------------------
// HTTP surface

// Handler returns the versioned API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{key}", s.handleGetRun)
	mux.HandleFunc("GET /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// queryTimeout parses ?timeout=30s; zero means none.
func queryTimeout(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q", raw)
	}
	return d, nil
}

// submit registers (or joins) the async job for spec. Completed results
// short-circuit to a synthetic done job; a pending job for the same hash is
// shared, so re-POSTing a slow Spec does not duplicate work or queue slots.
func (s *Server) submit(spec system.Spec, timeout time.Duration) (*job, error) {
	if res, ok := s.cache.Get(spec); ok {
		return doneJob(spec, res), nil
	}
	s.mu.Lock()
	if j, ok := s.runs[spec.Hash()]; ok {
		j.mu.Lock()
		pending := j.status == statusPending || j.status == statusRunning
		j.mu.Unlock()
		if pending {
			s.mu.Unlock()
			return j, nil
		}
	}
	s.gcRunsLocked()
	// Async jobs outlive their submitting request, so they hang off the
	// server's context; the optional timeout is the only per-job bound.
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	j := newJob(ctx, cancel, spec)
	s.runs[j.key] = j
	s.mu.Unlock()

	select {
	case s.queue <- j:
		s.submitted.Add(1)
		return j, nil
	default:
		s.mu.Lock()
		delete(s.runs, j.key)
		s.mu.Unlock()
		cancel()
		s.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// runsGCThreshold bounds the async-run registry: past it, terminal jobs are
// swept out (their Results stay reachable through the cache).
const runsGCThreshold = 4096

// gcRunsLocked evicts finished jobs once the registry outgrows the
// threshold. Caller holds s.mu.
func (s *Server) gcRunsLocked() {
	if len(s.runs) <= runsGCThreshold {
		return
	}
	for k, j := range s.runs {
		j.mu.Lock()
		terminal := j.status == statusDone || j.status == statusFailed
		j.mu.Unlock()
		if terminal {
			delete(s.runs, k)
		}
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	timeout, err := queryTimeout(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specs, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jobs := make([]*job, 0, len(specs))
	for _, sp := range specs {
		j, err := s.submit(sp, timeout)
		if err != nil {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		jobs = append(jobs, j)
	}

	wait, _ := strconv.ParseBool(r.URL.Query().Get("wait"))
	code := http.StatusAccepted
	if wait {
		// Block on the submitted work, bounded by the client's own
		// connection and the optional timeout. Expiry degrades to the
		// async answer (202 + poll URLs), it does not fail the jobs.
		waitCtx := r.Context()
		if timeout > 0 {
			var cancel context.CancelFunc
			waitCtx, cancel = context.WithTimeout(waitCtx, timeout)
			defer cancel()
		}
		code = http.StatusOK
		for _, j := range jobs {
			select {
			case <-j.done:
			case <-waitCtx.Done():
				code = http.StatusAccepted
			}
			if code == http.StatusAccepted {
				break
			}
		}
	}
	resp := SubmitResponse{Runs: make([]RunRecord, len(jobs))}
	for i, j := range jobs {
		resp.Runs[i] = j.record()
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	j, ok := s.runs[key]
	s.mu.Unlock()
	if ok {
		writeJSON(w, http.StatusOK, j.record())
		return
	}
	// Runs that arrived via a sweep (or a previous process, through the
	// disk tier) live only in the cache.
	if e, ok := s.cache.EntryKey(key); ok {
		writeJSON(w, http.StatusOK, doneJob(e.Spec, e.Res).record())
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", key))
}

// handleSweep enumerates a matrix from query parameters, queues every run
// bound to the request context, and streams one JSON line per run in input
// order as results land, then a summary line. Disconnecting cancels all
// remaining work.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	timeout, err := queryTimeout(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m := Matrix{Scale: q.Get("scale")}
	if m.Scale == "" {
		m.Scale = "small"
	}
	if v := q.Get("benchmarks"); v != "" {
		m.Benchmarks = strings.Split(v, ",")
	}
	// ?workload=name:k=v,k2=v2 names one workload per occurrence (the
	// repeatable form parameter spellings need, since their commas would
	// split a ?benchmarks= list). Both parameters compose.
	m.Benchmarks = append(m.Benchmarks, q["workload"]...)
	if v := q.Get("systems"); v != "" {
		m.Systems = strings.Split(v, ",")
	}
	if v := q.Get("cores"); v != "" {
		if m.Cores, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad cores %q", v))
			return
		}
	}
	// ?set=knob=value fixes a machine knob for every run; ?sweep=knob=v1,v2
	// adds an enumeration axis. Both repeat.
	if sets := q["set"]; len(sets) > 0 {
		ov, err := config.ParseOverrides(sets)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		m.Overrides = &ov
	}
	if m.Sweep, err = runner.ParseKnobAxes(q["sweep"]); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// ?wsweep=param=v1,v2 adds a workload-parameter axis. Repeatable.
	if m.WSweep, err = runner.ParseParamAxes(q["wsweep"]); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specs, err := m.Specs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Enqueue from a goroutine so a full queue backpressures the producer
	// while the handler keeps streaming completed lines.
	jobs := make(chan *job, len(specs))
	go func() {
		defer close(jobs)
		for _, sp := range specs {
			if res, ok := s.cache.Get(sp); ok {
				jobs <- doneJob(sp, res)
				continue
			}
			j := newJob(ctx, nil, sp)
			select {
			case s.queue <- j:
				s.submitted.Add(1)
				jobs <- j
			case <-ctx.Done():
				j.finish(system.Results{}, false, 0, ctx.Err())
				jobs <- j
			}
		}
	}()

	t0 := time.Now()
	sum := SweepSummary{Runs: len(specs)}
	i := 0
	for j := range jobs {
		select {
		case <-j.done:
		case <-ctx.Done():
			// The client is gone (or the deadline passed): every queued
			// job shares ctx and will be dropped by the workers; stop
			// streaming.
			<-j.done
		}
		rec := j.record()
		rec.Index = i
		rec.Total = len(specs)
		if rec.Status != string(statusDone) {
			sum.Failed++
		}
		if err := enc.Encode(rec); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		i++
	}
	sum.WallMS = float64(time.Since(t0)) / float64(time.Millisecond)
	sum.Cache = s.cache.Stats()
	enc.Encode(struct {
		Summary SweepSummary `json:"summary"`
	}{sum})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"queue_depth": len(s.queue),
		"queue_cap":   cap(s.queue),
		"workers":     s.workers,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Cache:      s.cache.Stats(),
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		Workers:    s.workers,
		Submitted:  s.submitted.Load(),
		Completed:  s.completed.Load(),
		Failed:     s.failed.Load(),
		Rejected:   s.rejected.Load(),
	})
}
