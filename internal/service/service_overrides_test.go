package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/system"
	"repro/internal/workloads"
)

// TestSubmitOverridesBearingSpec pins the tentpole wire path: a JSON body
// with {"overrides":{...}} is accepted, runs under the v2 content hash, and
// an equivalent legacy-field spelling of the same run is a cache hit.
func TestSubmitOverridesBearingSpec(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 8})
	modern := system.Spec{System: config.CacheBased, Benchmark: "EP", Scale: workloads.Tiny}
	modern.Overrides.Cores = 4
	modern.Overrides.L1DSize = 16 << 10

	first, err := client.Run(context.Background(), modern, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Results == nil || first.Results.Cycles == 0 {
		t.Fatalf("first run = %+v, want a fresh non-zero run", first)
	}
	if first.Key != modern.Hash() {
		t.Fatalf("run keyed %s, want the canonical v2 hash %s", first.Key, modern.Hash())
	}

	legacy := system.Spec{System: config.CacheBased, Benchmark: "EP", Scale: workloads.Tiny, Cores: 4}
	legacy.Overrides.L1DSize = 16 << 10
	second, err := client.Run(context.Background(), legacy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("the legacy-field spelling of the same run missed the cache")
	}
	if second.Key != first.Key {
		t.Fatalf("equivalent spellings keyed apart: %s vs %s", second.Key, first.Key)
	}
}

// TestSubmitRejectsBadOverrides: unknown knobs and negative values fail the
// request with 400 before anything is queued.
func TestSubmitRejectsBadOverrides(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 1, QueueDepth: 4})
	for _, body := range []string{
		`{"spec":{"system":"cache","benchmark":"EP","scale":"tiny","overrides":{"warp_drive":1}}}`,
		`{"spec":{"system":"cache","benchmark":"EP","scale":"tiny","overrides":{"mem_latency":-5}}}`,
		`{"matrix":{"scale":"tiny","cores":4,"sweep":[{"name":"warp_drive","values":[1]}]}}`,
		`{"matrix":{"scale":"tiny","cores":4,"sweep":[{"name":"l1d_size","values":[]}]}}`,
	} {
		resp, err := http.Post(client.Base+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestMatrixWithSweepAxes: a matrix submission with overrides and sweep
// axes enumerates the cross product server-side.
func TestMatrixWithSweepAxes(t *testing.T) {
	var ov config.Overrides
	ov.Set("mem_latency", 150)
	m := Matrix{
		Benchmarks: []string{"EP"},
		Systems:    []string{"cache"},
		Scale:      "tiny",
		Cores:      4,
		Overrides:  &ov,
		Sweep:      []runner.KnobAxis{{Name: "l1d_size", Values: []int{16 << 10, 32 << 10}}},
	}
	specs, err := m.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("enumerated %d specs, want 2", len(specs))
	}
	for i, s := range specs {
		if s.Overrides.MemLatency != 150 {
			t.Fatalf("specs[%d] lost the fixed override: %+v", i, s.Overrides)
		}
	}
	if specs[0].Overrides.L1DSize != 16<<10 || specs[1].Overrides.L1DSize != 32<<10 {
		t.Fatalf("axis values wrong: %+v / %+v", specs[0].Overrides, specs[1].Overrides)
	}

	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 8})
	recs, err := client.Submit(context.Background(), SubmitRequest{Matrix: &m}, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("daemon returned %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Status != "done" || r.Results == nil {
			t.Fatalf("record %s: %s (%s)", r.Key, r.Status, r.Error)
		}
	}
}

// TestSweepQueryParams: GET /v1/sweep understands repeatable ?set= and
// ?sweep= parameters, and the typed Client emits them.
func TestSweepQueryParams(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 16})

	// Raw query-parameter form.
	resp, err := http.Get(client.Base + "/v1/sweep?benchmarks=EP&systems=cache&scale=tiny&cores=4&set=mem_latency=150&sweep=l1d_size=16384,32768")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var keys []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Key     string          `json:"key"`
			Status  string          `json:"status"`
			Summary *map[string]any `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad sweep line %s: %v", sc.Bytes(), err)
		}
		if line.Summary != nil {
			continue
		}
		if line.Status != "done" {
			t.Fatalf("run %s status %s", line.Key, line.Status)
		}
		keys = append(keys, line.Key)
	}
	if len(keys) != 2 {
		t.Fatalf("streamed %d runs, want 2", len(keys))
	}

	// Typed-client form must address the same runs (cache hits now).
	var ov config.Overrides
	ov.Set("mem_latency", 150)
	m := Matrix{
		Benchmarks: []string{"EP"},
		Systems:    []string{"cache"},
		Scale:      "tiny",
		Cores:      4,
		Overrides:  &ov,
		Sweep:      []runner.KnobAxis{{Name: "l1d_size", Values: []int{16384, 32768}}},
	}
	var clientKeys []string
	sum, err := client.Sweep(context.Background(), m, 0, func(rec RunRecord) error {
		if !rec.Cached {
			t.Errorf("run %s not served from cache on the second pass", rec.Key)
		}
		clientKeys = append(clientKeys, rec.Key)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 || len(clientKeys) != 2 {
		t.Fatalf("client sweep: %d keys, %d failed", len(clientKeys), sum.Failed)
	}
	for i := range keys {
		if keys[i] != clientKeys[i] {
			t.Fatalf("query and typed client addressed different runs:\n%v\n%v", keys, clientKeys)
		}
	}
}

// TestGetRunByV2Hash: a poll URL carrying the v2 hash finds the run after
// it completed, including through the cache-only path.
func TestGetRunByV2Hash(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 1, QueueDepth: 4})
	spec := system.Spec{System: config.CacheBased, Benchmark: "EP", Scale: workloads.Tiny}
	spec.Overrides.Cores = 4
	if _, err := client.Run(context.Background(), spec, 0); err != nil {
		t.Fatal(err)
	}
	rec, err := client.Get(context.Background(), spec.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != "done" || rec.Results == nil {
		t.Fatalf("polled record = %+v, want done with results", rec)
	}
	if rec.Spec.Overrides.Cores != 4 {
		t.Fatalf("polled Spec lost its overrides: %+v", rec.Spec)
	}
}
