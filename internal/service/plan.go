package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/planner"
	"repro/internal/runner"
	"repro/internal/system"
	"repro/internal/workloads"
)

// PlanRequest is the POST /v1/plan body: a planner Question by name. A plan
// asks about one workload on one machine, so Benchmark is required and
// System defaults to "hybrid"; Sweep/WSweep name the 1-3 searchable axes
// exactly as a sweep Matrix does.
type PlanRequest struct {
	Strategy  string             `json:"strategy"`
	Benchmark string             `json:"benchmark"`
	System    string             `json:"system,omitempty"`
	Scale     string             `json:"scale,omitempty"`
	Cores     int                `json:"cores,omitempty"`
	Overrides *config.Overrides  `json:"overrides,omitempty"`
	Sweep     []runner.KnobAxis  `json:"sweep,omitempty"`
	WSweep    []runner.ParamAxis `json:"wsweep,omitempty"`

	Objective  *planner.Objective  `json:"objective,omitempty"`
	Objectives []planner.Objective `json:"objectives,omitempty"`
	Constraint *planner.Constraint `json:"constraint,omitempty"`
	Pick       string              `json:"pick,omitempty"`
	Budget     int                 `json:"budget,omitempty"`
}

// question resolves the wire names into a validated planner.Question.
func (r PlanRequest) question() (planner.Question, error) {
	var q planner.Question
	if r.Benchmark == "" {
		return q, errors.New(`plan needs a "benchmark"`)
	}
	scale := r.Scale
	if scale == "" {
		scale = "small"
	}
	sc, err := workloads.ParseScale(scale)
	if err != nil {
		return q, err
	}
	sysName := r.System
	if sysName == "" {
		sysName = "hybrid"
	}
	sys, err := config.ParseMemorySystem(sysName)
	if err != nil {
		return q, err
	}
	q = planner.Question{
		Strategy: r.Strategy,
		Axes: runner.Axes{
			Benchmarks: []string{r.Benchmark},
			Systems:    []config.MemorySystem{sys},
			Scale:      sc,
			Cores:      r.Cores,
			Knobs:      r.Sweep,
			WParams:    r.WSweep,
		},
		Objectives: r.Objectives,
		Constraint: r.Constraint,
		Pick:       r.Pick,
		Budget:     r.Budget,
	}
	if r.Objective != nil {
		q.Objective = *r.Objective
	}
	if r.Overrides != nil {
		q.Axes.Base = *r.Overrides
	}
	return q, q.Validate()
}

// PlanEvent is one line of the /v1/plan ndjson stream: a probe while the
// strategy searches, then exactly one verdict (or error) line.
type PlanEvent struct {
	Probe   *planner.Probe   `json:"probe,omitempty"`
	Verdict *planner.Verdict `json:"verdict,omitempty"`
	Error   string           `json:"error,omitempty"`
}

// startJob begins execution of one spec through the shared service path —
// cache short-circuit, then cluster owner-routing (when fanout), then the
// local bounded queue — and returns the job to wait on. Sweeps and plans
// both produce their work through here.
func (s *Server) startJob(ctx context.Context, sp system.Spec, fanout bool) *job {
	if res, ok := s.cache.Get(sp); ok {
		return doneJob(sp, res)
	}
	j := newJob(ctx, nil, sp)
	if s.cluster != nil && fanout {
		if owner, local := s.cluster.Owner(j.key); !local {
			go s.runRemote(ctx, owner, j)
			return j
		}
	}
	s.enqueueLocal(ctx, j)
	return j
}

// serverProber adapts the service execution path to planner.Prober: each
// probe is one job, so planner probes hit the content-addressed cache, join
// in-flight identical runs, and owner-route across the fleet exactly like
// sweep runs.
type serverProber struct {
	s      *Server
	fanout bool
}

func (p serverProber) Probe(ctx context.Context, sp system.Spec) (system.Results, bool, error) {
	j := p.s.startJob(ctx, sp, p.fanout)
	select {
	case <-j.done:
	case <-ctx.Done():
		// Queued behind ctx: the workers will drop it; wait for the record.
		<-j.done
	}
	rec := j.record()
	if rec.Status != string(statusDone) || rec.Results == nil {
		return system.Results{}, false, errors.New(rec.Error)
	}
	return *rec.Results, rec.Cached, nil
}

// handlePlan streams an adaptive plan: POST a PlanRequest, read ndjson
// probe lines as the strategy searches, and a final verdict line. The
// stream shares /v1/sweep's shape and cancellation semantics — closing the
// connection cancels every probe still queued.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	timeout, err := queryTimeout(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	dec.DisallowUnknownFields()
	var req PlanRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad plan body: %w", err))
		return
	}
	q, err := req.question()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	s.log.Info("plan started", "strategy", q.Strategy, "benchmark", req.Benchmark)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	prober := serverProber{s: s, fanout: r.Header.Get(cluster.ForwardedHeader) == ""}
	emit := func(p planner.Probe) error {
		s.planProbes.Inc()
		if p.Cached {
			s.planHits.Inc()
		}
		if err := enc.Encode(PlanEvent{Probe: &p}); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	v, err := planner.Run(ctx, q, prober, emit)
	if err != nil {
		outcome := "failed"
		if ctx.Err() != nil {
			outcome = "canceled"
		}
		s.plansTotal.With(q.Strategy, outcome).Inc()
		s.log.Warn("plan failed", "strategy", q.Strategy, "err", err)
		enc.Encode(PlanEvent{Error: err.Error()})
		return
	}
	outcome := "converged"
	if !v.Converged {
		outcome = "exhausted"
	}
	s.plansTotal.With(q.Strategy, outcome).Inc()
	s.log.Info("plan finished", "strategy", q.Strategy, "outcome", outcome,
		"probes", v.Probes, "cache_hits", v.CacheHits, "grid", v.Grid)
	enc.Encode(PlanEvent{Verdict: &v})
}
