package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/system"
	"repro/internal/workloads"
)

// TestSubmitParamsBearingSpec pins the workload-parameter wire path: a JSON
// body with {"params":{...}} is accepted, runs under the v3 content hash,
// the explicit-default spelling of the same run is a cache hit, and a
// distinct parameter value mints a distinct cache entry.
func TestSubmitParamsBearingSpec(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 8})
	wide := system.Spec{System: config.HybridReal, Benchmark: "stream", Scale: workloads.Tiny,
		Params: "stride=128", Cores: 4}

	first, err := client.Run(context.Background(), wide, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Results == nil || first.Results.Cycles == 0 {
		t.Fatalf("first run = %+v, want a fresh non-zero run", first)
	}
	if first.Key != wide.Hash() {
		t.Fatalf("run keyed %s, want the canonical v3 hash %s", first.Key, wide.Hash())
	}

	// Default-param and explicit-default spellings share one address.
	plain := system.Spec{System: config.HybridReal, Benchmark: "stream", Scale: workloads.Tiny, Cores: 4}
	if _, err := client.Run(context.Background(), plain, 0); err != nil {
		t.Fatal(err)
	}
	explicit := plain
	explicit.Params = "stride=8"
	second, err := client.Run(context.Background(), explicit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("the explicit-default spelling of the same run missed the cache")
	}
	if second.Key != plain.Hash() {
		t.Fatalf("equivalent spellings keyed apart: %s vs %s", second.Key, plain.Hash())
	}
	if second.Key == first.Key {
		t.Fatal("distinct stride values share one cache entry")
	}
}

// TestSubmitRejectsBadParams: undeclared parameters, out-of-range values
// and bad wsweep axes fail the request with 400 before anything is queued.
func TestSubmitRejectsBadParams(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 1, QueueDepth: 4})
	for _, body := range []string{
		`{"spec":{"system":"hybrid","benchmark":"stream","scale":"tiny","params":{"warp":1}}}`,
		`{"spec":{"system":"hybrid","benchmark":"stream","scale":"tiny","params":{"stride":4}}}`,
		`{"spec":{"system":"hybrid","benchmark":"CG","scale":"tiny","params":{"n":10}}}`,
		`{"matrix":{"benchmarks":["stream"],"scale":"tiny","cores":4,"wsweep":[{"name":"warp","values":[1]}]}}`,
		`{"matrix":{"benchmarks":["stream"],"scale":"tiny","cores":4,"wsweep":[{"name":"stride","values":[]}]}}`,
		`{"matrix":{"benchmarks":["stream:warp=1"],"scale":"tiny","cores":4}}`,
	} {
		resp, err := http.Post(client.Base+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestSweepWorkloadQueryParams: GET /v1/sweep understands repeatable
// ?workload= (parameterized spellings) and ?wsweep= axes, distinct axis
// values land distinct cache keys, and the typed Client emits the same
// query — addressing the same cache entries on a second pass.
func TestSweepWorkloadQueryParams(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 16})

	resp, err := http.Get(client.Base + "/v1/sweep?workload=stream:streams=2&systems=hybrid&scale=tiny&cores=4&wsweep=stride=8,128")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var keys []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Key     string          `json:"key"`
			Status  string          `json:"status"`
			Spec    system.Spec     `json:"spec"`
			Summary *map[string]any `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad sweep line %s: %v", sc.Bytes(), err)
		}
		if line.Summary != nil {
			continue
		}
		if line.Status != "done" {
			t.Fatalf("run %s status %s", line.Key, line.Status)
		}
		if line.Spec.Benchmark != "stream" {
			t.Fatalf("run %s benchmark %q", line.Key, line.Spec.Benchmark)
		}
		keys = append(keys, line.Key)
	}
	if len(keys) != 2 {
		t.Fatalf("streamed %d runs, want 2", len(keys))
	}
	if keys[0] == keys[1] {
		t.Fatal("distinct stride values share one cache key")
	}

	m := Matrix{
		Benchmarks: []string{"stream:streams=2"},
		Systems:    []string{"hybrid"},
		Scale:      "tiny",
		Cores:      4,
		WSweep:     []runner.ParamAxis{{Name: "stride", Values: []int{8, 128}}},
	}
	var clientKeys []string
	sum, err := client.Sweep(context.Background(), m, 0, func(rec RunRecord) error {
		if !rec.Cached {
			t.Errorf("run %s not served from cache on the second pass", rec.Key)
		}
		clientKeys = append(clientKeys, rec.Key)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 || len(clientKeys) != 2 {
		t.Fatalf("client sweep: %d keys, %d failed", len(clientKeys), sum.Failed)
	}
	for i := range keys {
		if keys[i] != clientKeys[i] {
			t.Fatalf("query and typed client addressed different runs:\n%v\n%v", keys, clientKeys)
		}
	}

	// A mixed plain + parameterized benchmark list streams in the
	// caller's order: the client must not let the ?workload= form reorder
	// entries behind the caller's back.
	mixed := Matrix{
		Benchmarks: []string{"stream:stride=128", "CG"},
		Systems:    []string{"hybrid"},
		Scale:      "tiny",
		Cores:      4,
	}
	var order []string
	if _, err := client.Sweep(context.Background(), mixed, 0, func(rec RunRecord) error {
		order = append(order, rec.Spec.Benchmark)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "stream" || order[1] != "CG" {
		t.Fatalf("mixed matrix streamed as %v, want [stream CG]", order)
	}

	// A bad ?wsweep= axis dies with 400 before queueing anything.
	resp, err = http.Get(client.Base + "/v1/sweep?workload=stream&scale=tiny&cores=4&wsweep=warp=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad wsweep axis: status %d, want 400", resp.StatusCode)
	}
}
