package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/rescache"
	"repro/internal/runner"
	"repro/internal/system"
	"repro/internal/workloads"
)

// newTestDaemon stands up a full daemon over httptest and returns a client
// for it. Both are torn down with the test.
func newTestDaemon(t *testing.T, opt Options) (*Server, *Client) {
	t.Helper()
	srv := New(opt)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, &Client{Base: ts.URL, HTTP: ts.Client()}
}

func tinySpec(bench string, sys config.MemorySystem) system.Spec {
	return system.Spec{System: sys, Benchmark: bench, Scale: workloads.Tiny, Cores: 4}
}

// TestSameSpecTwiceServedFromCache is the acceptance criterion: the second
// submission of an identical Spec returns byte-identical Results from the
// cache — the hit counter increments and no second Execute happens.
func TestSameSpecTwiceServedFromCache(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 8})
	spec := tinySpec("EP", config.CacheBased)

	first, err := client.Run(context.Background(), spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first run reported cached")
	}
	if first.Results == nil || first.Results.Cycles == 0 {
		t.Fatalf("first run results = %+v, want non-zero cycles", first.Results)
	}

	second, err := client.Run(context.Background(), spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second run of the same Spec was not served from cache")
	}
	b1, _ := json.Marshal(first.Results)
	b2, _ := json.Marshal(second.Results)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached Results not byte-identical:\n first %s\nsecond %s", b1, b2)
	}

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("stats = %+v, want a cache hit recorded", st.Cache)
	}
	if st.Cache.Misses != 1 {
		t.Fatalf("Misses = %d, want exactly 1 Execute for 2 submissions", st.Cache.Misses)
	}
}

// TestSweepMatrixMatchesDirectRun is the second acceptance criterion: the
// full default matrix (every registered workload x every system) over HTTP
// must reproduce a direct runner.Run of the same Specs exactly.
func TestSweepMatrixMatchesDirectRun(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 4, QueueDepth: 64})

	specs := runner.Matrix(workloads.Names(), runner.AllSystems, workloads.Tiny, 4)
	n := len(specs)
	if want := len(workloads.Names()) * len(runner.AllSystems); n != want {
		t.Fatalf("matrix = %d specs, want %d", n, want)
	}
	want := map[string]system.Results{}
	for _, r := range runner.Run(specs, runner.Options{}) {
		if r.Err != nil {
			t.Fatalf("direct run %s: %v", r.Spec.Key(), r.Err)
		}
		want[r.Spec.Hash()] = r.Res
	}

	got := map[string]system.Results{}
	sum, err := client.Sweep(context.Background(),
		Matrix{Scale: "tiny", Cores: 4}, 0,
		func(rec RunRecord) error {
			if rec.Status != "done" || rec.Results == nil {
				t.Fatalf("sweep record %s: status %s error %q", rec.Key, rec.Status, rec.Error)
			}
			if rec.Total != n {
				t.Fatalf("record Total = %d, want %d", rec.Total, n)
			}
			got[rec.Key] = *rec.Results
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != n || sum.Failed != 0 {
		t.Fatalf("summary = %+v, want %d clean runs", sum, n)
	}
	if len(got) != n {
		t.Fatalf("streamed %d distinct runs, want %d", len(got), n)
	}
	for key, w := range want {
		if got[key] != w {
			t.Fatalf("run %s over HTTP diverged from direct runner.Run:\n got %+v\nwant %+v", key, got[key], w)
		}
	}
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 8})
	spec := tinySpec("IS", config.HybridReal)

	runs, err := client.Submit(context.Background(), SubmitRequest{Spec: &spec}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Key != spec.Hash() {
		t.Fatalf("submit = %+v, want one run keyed %s", runs, spec.Hash())
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rec, err := client.Wait(ctx, runs[0].Key, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != "done" || rec.Results == nil || rec.Results.Cycles == 0 {
		t.Fatalf("polled record = %+v, want done with cycles", rec)
	}
	if rec.Spec != spec {
		t.Fatalf("polled Spec = %+v, want %+v", rec.Spec, spec)
	}
}

func TestMatrixSubmission(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 4, QueueDepth: 32})
	runs, err := client.Submit(context.Background(), SubmitRequest{
		Matrix: &Matrix{Benchmarks: []string{"EP"}, Systems: []string{"cache", "ideal"}, Scale: "tiny", Cores: 4},
	}, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("matrix expanded to %d runs, want 2", len(runs))
	}
	for _, r := range runs {
		if r.Status != "done" || r.Results == nil || r.Results.Cycles == 0 {
			t.Fatalf("run %s = %s (%s), want done with cycles", r.Key, r.Status, r.Error)
		}
	}
}

func TestBadSubmissionsRejected(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 1, QueueDepth: 8})
	ctx := context.Background()

	cases := []SubmitRequest{
		{},                             // nothing set
		{Matrix: &Matrix{Scale: "xl"}}, // unknown scale
		{Matrix: &Matrix{Scale: "tiny", Systems: []string{"quantum"}}}, // unknown system
	}
	for i, req := range cases {
		if _, err := client.Submit(ctx, req, false, 0); err == nil || !strings.Contains(err.Error(), "400") {
			t.Errorf("case %d: err = %v, want 400", i, err)
		}
	}

	// An unknown benchmark dies inside Spec.UnmarshalJSON.
	body := `{"spec":{"system":"cache","benchmark":"LU","scale":"tiny","cores":4}}`
	resp, err := http.Post(client.Base+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown benchmark: status %d, want 400", resp.StatusCode)
	}
}

func TestQueueFullSheds429(t *testing.T) {
	// One worker, queue of one: the worker parks on a gated run while the
	// queue holds one more, so a third distinct submission must shed.
	cache, _ := rescache.New(8, "")
	srv, client := newTestDaemon(t, Options{Workers: 1, QueueDepth: 1, Cache: cache})

	// Occupy the worker deterministically: submit a small-scale run, which
	// takes long enough that the remaining submissions land while it runs.
	slow := system.Spec{System: config.HybridReal, Benchmark: "CG", Scale: workloads.Small, Cores: 16}
	if _, err := client.Submit(context.Background(), SubmitRequest{Spec: &slow}, false, 0); err != nil {
		t.Fatal(err)
	}
	waitForBusyWorker(t, srv)

	fill := tinySpec("EP", config.CacheBased)
	if _, err := client.Submit(context.Background(), SubmitRequest{Spec: &fill}, false, 0); err != nil {
		t.Fatal(err)
	}
	over := tinySpec("IS", config.CacheBased)
	_, err := client.Submit(context.Background(), SubmitRequest{Spec: &over}, false, 0)
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("overflow submit err = %v, want 429", err)
	}

	// The shed must carry a retry hint for backoff-aware clients and peers.
	body, _ := json.Marshal(SubmitRequest{Spec: &over})
	resp, err := http.Post(client.Base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("raw overflow status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 shed is missing the Retry-After hint")
	}

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 2 {
		t.Fatalf("Rejected = %d, want 2", st.Rejected)
	}
}

// waitForBusyWorker blocks until the queue has been drained by the worker,
// i.e. the slow job left the queue and is executing.
func waitForBusyWorker(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(srv.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the slow job")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDuplicatePendingSubmissionSharesOneJob(t *testing.T) {
	srv, client := newTestDaemon(t, Options{Workers: 1, QueueDepth: 4})
	slow := system.Spec{System: config.HybridReal, Benchmark: "CG", Scale: workloads.Small, Cores: 16}
	for i := 0; i < 3; i++ {
		if _, err := client.Submit(context.Background(), SubmitRequest{Spec: &slow}, false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := srv.submitted.Load(); n != 1 {
		t.Fatalf("submitted = %d jobs for 3 identical POSTs, want 1", n)
	}
}

func TestSweepClientDisconnectCancelsWork(t *testing.T) {
	srv, client := newTestDaemon(t, Options{Workers: 1, QueueDepth: 32})
	ctx, cancel := context.WithCancel(context.Background())

	// Cancel the sweep after its first streamed line; the single worker
	// guarantees most of the matrix is still queued at that point.
	_, err := client.Sweep(ctx, Matrix{Scale: "tiny", Cores: 4}, 0, func(rec RunRecord) error {
		cancel()
		return nil
	})
	if err == nil {
		t.Fatal("canceled sweep returned no error")
	}
	// Every queued job shares the request context, so the workers drain
	// them as failures without executing; far fewer than the full matrix
	// completes.
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := srv.completed.Load() + srv.failed.Load()
		if done+uint64(len(srv.queue)) >= 1 && len(srv.queue) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c := srv.completed.Load(); c >= 18 {
		t.Fatalf("completed = %d runs after early disconnect, want far fewer than the matrix", c)
	}
}

func TestHealthz(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 1, QueueDepth: 1})
	if err := client.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestGetUnknownRun404s(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 1, QueueDepth: 1})
	_, err := client.Get(context.Background(), "deadbeef")
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("err = %v, want 404", err)
	}
}

func TestGetRunFromCacheOnlyKey(t *testing.T) {
	// A run that arrived via a sweep is visible to GET /v1/runs/{key}
	// through the cache, with its full Spec intact.
	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 8})
	if _, err := client.Sweep(context.Background(),
		Matrix{Benchmarks: []string{"EP"}, Systems: []string{"cache"}, Scale: "tiny", Cores: 4}, 0, nil); err != nil {
		t.Fatal(err)
	}
	spec := tinySpec("EP", config.CacheBased)
	rec, err := client.Get(context.Background(), spec.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != "done" || !rec.Cached || rec.Spec != spec {
		t.Fatalf("record = %+v, want cached done run with the original Spec", rec)
	}
}

// TestCloseFinishesQueuedJobs: shutting the server down must complete every
// queued job with the cancellation error so nothing blocked on a job hangs.
func TestCloseFinishesQueuedJobs(t *testing.T) {
	srv := New(Options{Workers: 1, QueueDepth: 4})
	slow := system.Spec{System: config.HybridReal, Benchmark: "CG", Scale: workloads.Small, Cores: 16}
	if _, err := srv.submit(slow, 0, nil); err != nil {
		t.Fatal(err)
	}
	waitForBusyWorker(t, srv)
	queued, err := srv.submit(tinySpec("EP", config.CacheBased), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	select {
	case <-queued.done:
	case <-time.After(10 * time.Second):
		t.Fatal("queued job never finished after Close")
	}
	if rec := queued.record(); rec.Status != "failed" {
		t.Fatalf("queued job status = %s after Close, want failed", rec.Status)
	}
}
