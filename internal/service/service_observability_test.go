package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/config"
)

// TestHealthzFields pins the liveness document: status, build version, and
// the queue/worker sizing a load balancer or operator would read.
func TestHealthzFields(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 8})

	resp, err := http.Get(client.Base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var h struct {
		Status     string `json:"status"`
		Version    string `json:"version"`
		QueueDepth *int   `json:"queue_depth"`
		QueueCap   *int   `json:"queue_cap"`
		Workers    *int   `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if h.Version == "" {
		t.Error("version missing from healthz")
	}
	if h.QueueDepth == nil || h.QueueCap == nil || h.Workers == nil {
		t.Fatalf("healthz missing queue/worker fields: %+v", h)
	}
	if *h.QueueCap != 8 || *h.Workers != 2 {
		t.Errorf("queue_cap = %d, workers = %d, want 8, 2", *h.QueueCap, *h.Workers)
	}
}

// TestStatsFieldsAndCacheCounters pins GET /v1/stats: every documented field
// is present, and the cache counters advance across a cached re-POST.
func TestStatsFieldsAndCacheCounters(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 8})
	spec := tinySpec("EP", config.CacheBased)
	ctx := context.Background()

	// Field presence on the raw wire document, so a renamed JSON tag fails
	// loudly here rather than silently in a dashboard.
	resp, err := http.Get(client.Base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	err = json.NewDecoder(resp.Body).Decode(&raw)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"cache", "queue_depth", "queue_cap", "workers",
		"submitted", "completed", "failed", "rejected",
	} {
		if _, ok := raw[field]; !ok {
			t.Errorf("stats response missing %q: %v", field, raw)
		}
	}

	before, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Run(ctx, spec, 0); err != nil {
		t.Fatal(err)
	}
	mid, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Cache.Misses != before.Cache.Misses+1 {
		t.Errorf("Misses %d -> %d, want +1 after a fresh run", before.Cache.Misses, mid.Cache.Misses)
	}
	if mid.Completed != before.Completed+1 {
		t.Errorf("Completed %d -> %d, want +1", before.Completed, mid.Completed)
	}

	if _, err := client.Run(ctx, spec, 0); err != nil {
		t.Fatal(err)
	}
	after, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cache.Hits != mid.Cache.Hits+1 {
		t.Errorf("Hits %d -> %d, want +1 after a cached re-POST", mid.Cache.Hits, after.Cache.Hits)
	}
	if after.Cache.Misses != mid.Cache.Misses {
		t.Errorf("Misses %d -> %d, want unchanged on a cache hit", mid.Cache.Misses, after.Cache.Misses)
	}
	if after.QueueCap != 8 || after.Workers != 2 {
		t.Errorf("QueueCap = %d, Workers = %d, want 8, 2", after.QueueCap, after.Workers)
	}
}

// metricValue extracts the value of an un-labelled (or fully matching) sample
// line from a Prometheus text exposition.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in exposition", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s has unparseable value %q", name, m[1])
	}
	return v
}

// TestMetricsEndpoint scrapes /metrics after a fresh run and a cached re-POST
// and checks the queue, run, cache, latency, and request families all expose
// sensible values in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 8})
	spec := tinySpec("EP", config.CacheBased)
	ctx := context.Background()

	for i := 0; i < 2; i++ { // second POST is the cache hit
		if _, err := client.Run(ctx, spec, 0); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(client.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)

	// The cached re-POST short-circuits at submit time (no worker, no job),
	// so only the fresh run counts as completed; the hit shows up in the
	// cache family instead.
	if v := metricValue(t, body, "hybridsimd_runs_completed_total"); v != 1 {
		t.Errorf("runs_completed_total = %v, want 1", v)
	}
	if v := metricValue(t, body, "hybridsimd_cache_hits_total"); v < 1 {
		t.Errorf("cache_hits_total = %v, want >= 1", v)
	}
	if v := metricValue(t, body, "hybridsimd_cache_misses_total"); v != 1 {
		t.Errorf("cache_misses_total = %v, want 1", v)
	}
	if v := metricValue(t, body, "hybridsimd_queue_capacity"); v != 8 {
		t.Errorf("queue_capacity = %v, want 8", v)
	}
	if v := metricValue(t, body, "hybridsimd_run_duration_seconds_count"); v < 1 {
		t.Errorf("run_duration_seconds_count = %v, want >= 1", v)
	}
	if !strings.Contains(body, `hybridsimd_build_info{version=`) {
		t.Error("build_info gauge missing")
	}
	if !strings.Contains(body, `hybridsimd_http_requests_total{path="/v1/runs",code="200"}`) {
		t.Error("http_requests_total not counting POST /v1/runs")
	}
	for _, name := range []string{"hybridsimd_queue_depth", "hybridsimd_workers", "hybridsimd_runs_submitted_total"} {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("metric family %s missing TYPE line", name)
		}
	}
}

// TestTimelineEndpoint drives the telemetry path over the wire: a submission
// with a telemetry block yields a retrievable non-empty time series, a
// telemetry-less key 404s, and a cached result still gets (exactly one)
// re-execution to produce its missing timeline.
func TestTimelineEndpoint(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	// Plain run first: result lands in the cache, no timeline.
	plainSpec := tinySpec("EP", config.CacheBased)
	plain, err := client.Run(ctx, plainSpec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Timeline(ctx, plain.Key); err == nil {
		t.Error("Timeline of a telemetry-less run did not error (want 404)")
	}

	// Telemetry-bearing submission of the same (cached) spec: must re-execute
	// once and produce the timeline.
	recs, err := client.Submit(ctx, SubmitRequest{
		Spec:      &plainSpec,
		Telemetry: &TelemetryOptions{Interval: 64},
	}, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Status != "done" {
		t.Fatalf("record = %+v, want done", rec)
	}
	if rec.Key != plain.Key {
		t.Fatalf("telemetry changed the run key: %s vs %s (must not affect cache identity)", rec.Key, plain.Key)
	}

	ts, err := client.Timeline(ctx, rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Interval != 64 {
		t.Errorf("Interval = %d, want 64", ts.Interval)
	}
	if len(ts.Names) == 0 || len(ts.Epochs) == 0 {
		t.Fatalf("timeline empty: %d names, %d epochs", len(ts.Names), len(ts.Epochs))
	}
	for i, ep := range ts.Epochs {
		if len(ep.Deltas) != len(ts.Names) {
			t.Fatalf("epoch %d has %d deltas for %d names", i, len(ep.Deltas), len(ts.Names))
		}
	}

	// A re-POST with telemetry now short-circuits entirely: result and
	// timeline both exist.
	recs, err = client.Submit(ctx, SubmitRequest{
		Spec:      &plainSpec,
		Telemetry: &TelemetryOptions{Interval: 64},
	}, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !recs[0].Cached {
		t.Error("third submission (result + timeline both present) was not served from cache")
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Misses != 2 {
		t.Errorf("Misses = %d, want 2 (plain run + one telemetry re-execution)", st.Cache.Misses)
	}
}

// TestTimelineUnknownKey404s checks the error shape of the timeline endpoint.
func TestTimelineUnknownKey404s(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 1, QueueDepth: 4})
	resp, err := http.Get(client.Base + "/v1/runs/deadbeef/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("error body = %v, %v", e, err)
	}
}
