package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/system"
)

// fleetNode is one in-process fleet member: a full daemon plus its cluster
// view, served over httptest.
type fleetNode struct {
	srv    *Server
	cl     *cluster.Cluster
	client *Client
}

// newFleet stands up len(ids) federated daemons. Each member's URL must be
// known before its cluster is built (the membership list includes self), so
// the httptest servers start with a swappable handler that is bound to the
// real daemon handler once it exists. Health loops are disabled; liveness
// moves only through request-path failures, keeping tests deterministic.
func newFleet(t *testing.T, ids []string, opt Options) map[string]*fleetNode {
	t.Helper()
	handlers := make(map[string]*atomic.Value, len(ids))
	members := make([]cluster.Node, 0, len(ids))
	for _, id := range ids {
		hv := &atomic.Value{}
		hv.Store(http.Handler(http.NotFoundHandler()))
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hv.Load().(http.Handler).ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		handlers[id] = hv
		members = append(members, cluster.Node{ID: id, URL: ts.URL})
	}
	fleet := make(map[string]*fleetNode, len(ids))
	for i, id := range ids {
		cl, err := cluster.New(cluster.Options{
			Self:           id,
			Peers:          members,
			HealthInterval: -1,
			BackoffBase:    time.Millisecond,
			HedgeDelay:     5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		o := opt
		o.Cache = nil // one independent cache per member
		o.Cluster = cl
		srv := New(o)
		t.Cleanup(srv.Close)
		handlers[id].Store(srv.Handler())
		fleet[id] = &fleetNode{srv: srv, cl: cl,
			client: &Client{Base: members[i].URL}}
	}
	return fleet
}

// fleetMisses sums local Executes across the fleet — the fleet-wide
// singleflight invariant is that any Spec costs exactly one.
func fleetMisses(f map[string]*fleetNode) uint64 {
	var n uint64
	for _, node := range f {
		n += node.srv.cache.Stats().Misses
	}
	return n
}

// TestFleetComputesSpecOnce: submitting the same Spec to both members costs
// one simulation fleet-wide — the non-owner forwards to the owner, whose
// singleflight and cache absorb the second request.
func TestFleetComputesSpecOnce(t *testing.T) {
	fleet := newFleet(t, []string{"a", "b"}, Options{Workers: 2, QueueDepth: 16})
	spec := tinySpec("EP", config.CacheBased)
	ctx := context.Background()

	if _, err := fleet["a"].client.Run(ctx, spec, 0); err != nil {
		t.Fatal(err)
	}
	second, err := fleet["b"].client.Run(ctx, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := fleetMisses(fleet); got != 1 {
		t.Fatalf("fleet-wide misses = %d for 2 submissions of one Spec, want 1", got)
	}
	if second.Results == nil || second.Results.Cycles == 0 {
		t.Fatalf("second submission results = %+v, want real cycles", second.Results)
	}
}

// TestFleetPeerFillAvoidsRecompute: a job landing on a non-owner's queue
// (a specs-list body is never forwarded) fills from the owner's cache
// instead of recomputing.
func TestFleetPeerFillAvoidsRecompute(t *testing.T) {
	fleet := newFleet(t, []string{"a", "b"}, Options{Workers: 2, QueueDepth: 16})
	spec := tinySpec("IS", config.CacheBased)
	key := spec.Hash()
	ctx := context.Background()

	owner, _ := fleet["a"].cl.Owner(key)
	other := "b"
	if owner == "b" {
		other = "a"
	}

	// Compute on the owner, then submit the same Spec as a list to the
	// other member: the list path executes locally, where the worker's
	// peer fill must win.
	if _, err := fleet[owner].client.Submit(ctx, SubmitRequest{Specs: []system.Spec{spec}}, true, 0); err != nil {
		t.Fatal(err)
	}
	recs, err := fleet[other].client.Submit(ctx, SubmitRequest{Specs: []system.Spec{spec}}, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Status != "done" || !recs[0].Cached {
		t.Fatalf("non-owner record = %+v, want done and served from the fleet", recs)
	}
	if got := fleetMisses(fleet); got != 1 {
		t.Fatalf("fleet-wide misses = %d, want 1 (peer fill, no recompute)", got)
	}
	if pf := fleet[other].srv.cache.Stats().PeerFills; pf != 1 {
		t.Fatalf("non-owner PeerFills = %d, want 1", pf)
	}
}

// sweepProjection reduces a streamed sweep to its deterministic fields:
// index, key, and results. cached/wall_ms describe where and how fast a run
// was answered — observational, legitimately different across topologies.
func sweepProjection(t *testing.T, c *Client, m Matrix) []string {
	t.Helper()
	var lines []string
	sum, err := c.Sweep(context.Background(), m, 0, func(rec RunRecord) error {
		if rec.Status != "done" || rec.Results == nil {
			t.Fatalf("sweep record %s: status %s error %q", rec.Key, rec.Status, rec.Error)
		}
		res, err := json.Marshal(rec.Results)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, fmt.Sprintf("%d %s %s", rec.Index, rec.Key, res))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Fatalf("sweep failed %d runs", sum.Failed)
	}
	return lines
}

// TestFleetSweepMatchesSingleNode is the fleet's acceptance criterion: a
// sweep fanned out over two members streams records whose deterministic
// fields are identical to the same sweep on a standalone daemon.
func TestFleetSweepMatchesSingleNode(t *testing.T) {
	m := Matrix{Scale: "tiny", Cores: 4,
		Benchmarks: []string{"EP", "IS", "CG"}, Systems: []string{"cache", "hybrid"}}

	_, solo := newTestDaemon(t, Options{Workers: 2, QueueDepth: 32})
	want := sweepProjection(t, solo, m)

	fleet := newFleet(t, []string{"a", "b"}, Options{Workers: 2, QueueDepth: 32})
	got := sweepProjection(t, fleet["a"].client, m)

	if len(got) != len(want) {
		t.Fatalf("fleet sweep streamed %d records, standalone %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fleet sweep line %d diverged:\n fleet %s\n  solo %s", i, got[i], want[i])
		}
	}
	// The fan-out must actually have used both members: every spec was
	// computed exactly once somewhere, none twice.
	if misses := fleetMisses(fleet); misses != uint64(len(want)) {
		t.Fatalf("fleet-wide misses = %d for %d distinct specs", misses, len(want))
	}
}

// TestFleetSweepDegradesWhenPeerDies: with the only peer unreachable, a
// sweep still completes — remote-owned specs degrade to local compute after
// the forward fails.
func TestFleetSweepDegradesWhenPeerDies(t *testing.T) {
	fleet := newFleet(t, []string{"a", "b"}, Options{Workers: 2, QueueDepth: 32})
	// Make b unreachable by closing its cluster and pointing a's view at a
	// dead server: simplest is to shut b's daemon down via its test server
	// teardown — but cleanup order is owned by t. Instead, close b's srv so
	// its handler errors, which a's Forward treats as a failed remote run.
	fleet["b"].srv.Close()

	m := Matrix{Scale: "tiny", Cores: 4,
		Benchmarks: []string{"EP", "IS"}, Systems: []string{"cache", "ideal"}}
	lines := sweepProjection(t, fleet["a"].client, m)
	if len(lines) != 4 {
		t.Fatalf("degraded sweep streamed %d records, want 4", len(lines))
	}
}

// TestClientRetriesShedUnderConcurrency: satellite coverage for the client
// backoff path — concurrent submissions that are shed with 429 + Retry-After
// retry through the hooked clock (no real sleeps) and all succeed.
func TestClientRetriesShedUnderConcurrency(t *testing.T) {
	srv := New(Options{Workers: 2, QueueDepth: 16})
	t.Cleanup(srv.Close)

	// Shed the first POST from each submitter, then pass through.
	const submitters = 4
	var sheds atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && sheds.Add(1) <= submitters {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"shed"}`))
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	var mu sync.Mutex
	var slept []time.Duration
	client := &Client{Base: ts.URL, Retries: 3,
		sleep: func(ctx context.Context, d time.Duration) error {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
			return nil
		}}

	specs := []system.Spec{
		tinySpec("EP", config.CacheBased),
		tinySpec("IS", config.CacheBased),
		tinySpec("EP", config.HybridReal),
		tinySpec("IS", config.HybridReal),
	}
	var wg sync.WaitGroup
	errs := make([]error, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.Run(context.Background(), specs[i], 0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submitter %d: %v (shed was not retried)", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != submitters {
		t.Fatalf("recorded %d backoff waits, want %d", len(slept), submitters)
	}
	for _, d := range slept {
		if d != time.Second {
			t.Fatalf("backoff wait = %v, want the server's 1s Retry-After", d)
		}
	}
}
