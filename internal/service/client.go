package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/planner"
	"repro/internal/system"
	"repro/internal/telemetry"
)

// Client is a thin typed wrapper over the daemon's HTTP API, shared by the
// hybridsimd client mode, examples, and CI smoke tests.
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:8080".
	Base string

	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client

	// Retries bounds automatic re-issue after a load shed (429) or
	// transient unavailability (503); zero means fail on the first such
	// answer. Every request path retries — submissions, sweeps, plans, and
	// the GET endpoints — so a plan or sweep survives a busy fleet member.
	// Each retry honors the server's Retry-After hint when present, else
	// backs off exponentially from Backoff.
	Retries int

	// Backoff seeds the exponential retry delay; zero means 100ms.
	Backoff time.Duration

	// sleep overrides the retry delay (tests); nil means a context-aware
	// real sleep.
	sleep func(ctx context.Context, d time.Duration) error
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string, q url.Values) string {
	u := strings.TrimRight(c.Base, "/") + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	return u
}

// apiError decodes the daemon's {"error": ...} body into a Go error.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("service: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("service: %s: %s", resp.Status, bytes.TrimSpace(body))
}

// doRetry issues mk()'s request, retrying shed (429) and unavailable (503)
// answers up to c.Retries times. mk builds a fresh request per attempt so
// bodies replay. The delay is the server's Retry-After hint when present,
// else exponential from Backoff; any other response (or a transport error)
// returns immediately.
func (c *Client) doRetry(ctx context.Context, mk func() (*http.Request, error)) (*http.Response, error) {
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		req, err := mk()
		if err != nil {
			return nil, err
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return nil, err
		}
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !retryable || attempt >= c.Retries {
			return resp, nil
		}
		delay := backoff << attempt
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				delay = time.Duration(secs) * time.Second
			}
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if err := c.pause(ctx, delay); err != nil {
			return nil, err
		}
	}
}

// pause waits d or until ctx expires, through the test hook when set.
func (c *Client) pause(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Client) getJSON(ctx context.Context, path string, q url.Values, out any) error {
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.url(path, q), nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a submission and returns one record per run. With wait, the
// call blocks until the daemon reports every run complete (or timeout, if
// nonzero, expires — the returned records then carry pending statuses).
func (c *Client) Submit(ctx context.Context, req SubmitRequest, wait bool, timeout time.Duration) ([]RunRecord, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	q := url.Values{}
	if wait {
		q.Set("wait", "true")
	}
	if timeout > 0 {
		q.Set("timeout", timeout.String())
	}
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/runs", q), bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		return hreq, nil
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	return sr.Runs, nil
}

// Run submits one Spec and waits for its Results — the one-call path a CLI
// or test wants.
func (c *Client) Run(ctx context.Context, spec system.Spec, timeout time.Duration) (RunRecord, error) {
	runs, err := c.Submit(ctx, SubmitRequest{Spec: &spec}, true, timeout)
	if err != nil {
		return RunRecord{}, err
	}
	if len(runs) != 1 {
		return RunRecord{}, fmt.Errorf("service: %d records for one spec", len(runs))
	}
	r := runs[0]
	if r.Status == string(statusFailed) {
		return r, fmt.Errorf("service: run %s failed: %s", r.Key, r.Error)
	}
	if r.Status != string(statusDone) {
		return r, fmt.Errorf("service: run %s still %s", r.Key, r.Status)
	}
	return r, nil
}

// Get polls one run by key.
func (c *Client) Get(ctx context.Context, key string) (RunRecord, error) {
	var rec RunRecord
	err := c.getJSON(ctx, "/v1/runs/"+key, nil, &rec)
	return rec, err
}

// Wait polls key until the run reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, key string, poll time.Duration) (RunRecord, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		rec, err := c.Get(ctx, key)
		if err != nil {
			return rec, err
		}
		if rec.Status == string(statusDone) || rec.Status == string(statusFailed) {
			return rec, nil
		}
		select {
		case <-ctx.Done():
			return rec, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Sweep streams a matrix run, invoking each for every per-run line as it
// arrives, and returns the trailing summary.
func (c *Client) Sweep(ctx context.Context, m Matrix, timeout time.Duration, each func(RunRecord) error) (SweepSummary, error) {
	q := url.Values{}
	if m.Scale != "" {
		q.Set("scale", m.Scale)
	}
	if m.Cores > 0 {
		q.Set("cores", strconv.Itoa(m.Cores))
	}
	// Plain names travel comma-joined in ?benchmarks=. A parameterized
	// spelling ("stream:stride=128") contains commas of its own, so it
	// needs the repeatable ?workload= form — and because the server
	// appends ?workload= entries after the ?benchmarks= list, a mixed
	// matrix sends EVERY entry through ?workload= to preserve the
	// caller's enumeration order on the stream.
	parameterized := false
	for _, b := range m.Benchmarks {
		if strings.Contains(b, ":") {
			parameterized = true
		}
	}
	if parameterized {
		for _, b := range m.Benchmarks {
			q.Add("workload", b)
		}
	} else if len(m.Benchmarks) > 0 {
		q.Set("benchmarks", strings.Join(m.Benchmarks, ","))
	}
	if len(m.Systems) > 0 {
		q.Set("systems", strings.Join(m.Systems, ","))
	}
	if m.Overrides != nil {
		// List() only emits positive values, so validate first: a negative
		// override must fail here like it would on the POST path, not
		// silently sweep the default machine.
		if err := m.Overrides.Validate(); err != nil {
			return SweepSummary{}, err
		}
		for _, kv := range m.Overrides.List() {
			q.Add("set", fmt.Sprintf("%s=%d", kv.Name, kv.Value))
		}
	}
	for _, ax := range m.Sweep {
		q.Add("sweep", axisParam(ax.Name, ax.Values))
	}
	for _, ax := range m.WSweep {
		q.Add("wsweep", axisParam(ax.Name, ax.Values))
	}
	if m.Analyze {
		q.Set("analyze", "1")
	}
	if timeout > 0 {
		q.Set("timeout", timeout.String())
	}
	// A shed (429/503) arrives before the stream starts, so retrying the
	// whole GET is safe: no lines have been consumed yet.
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/sweep", q), nil)
	})
	if err != nil {
		return SweepSummary{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return SweepSummary{}, apiError(resp)
	}

	// Each line is a RunRecord, except the last, which wraps the summary.
	type sweepLine struct {
		RunRecord
		Summary *SweepSummary `json:"summary,omitempty"`
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var sum *SweepSummary
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var l sweepLine
		if err := json.Unmarshal(line, &l); err != nil {
			return SweepSummary{}, fmt.Errorf("service: bad sweep line %q: %w", line, err)
		}
		if l.Summary != nil {
			sum = l.Summary
			continue
		}
		if each != nil {
			if err := each(l.RunRecord); err != nil {
				return SweepSummary{}, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return SweepSummary{}, err
	}
	if sum == nil {
		return SweepSummary{}, fmt.Errorf("service: sweep stream ended without a summary")
	}
	return *sum, nil
}

// Plan streams an adaptive plan: POST req, invoke each for every probe
// line as the strategy searches, and return the final verdict. Sheds
// (429/503) retry like every other path — the body is re-marshalled fresh
// per attempt and nothing has streamed before the status line commits.
func (c *Client) Plan(ctx context.Context, req PlanRequest, timeout time.Duration, each func(planner.Probe) error) (planner.Verdict, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return planner.Verdict{}, err
	}
	q := url.Values{}
	if timeout > 0 {
		q.Set("timeout", timeout.String())
	}
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/plan", q), bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		return hreq, nil
	})
	if err != nil {
		return planner.Verdict{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return planner.Verdict{}, apiError(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var verdict *planner.Verdict
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev PlanEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return planner.Verdict{}, fmt.Errorf("service: bad plan line %q: %w", line, err)
		}
		switch {
		case ev.Error != "":
			return planner.Verdict{}, fmt.Errorf("service: plan failed: %s", ev.Error)
		case ev.Verdict != nil:
			verdict = ev.Verdict
		case ev.Probe != nil && each != nil:
			if err := each(*ev.Probe); err != nil {
				return planner.Verdict{}, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return planner.Verdict{}, err
	}
	if verdict == nil {
		return planner.Verdict{}, fmt.Errorf("service: plan stream ended without a verdict")
	}
	return *verdict, nil
}

// axisParam renders one sweep axis as its "name=v1,v2,..." query payload.
func axisParam(name string, values []int) string {
	vals := make([]string, len(values))
	for i, v := range values {
		vals[i] = strconv.Itoa(v)
	}
	return name + "=" + strings.Join(vals, ",")
}

// Analysis fetches the rule-driven bottleneck findings of a completed run
// by key.
func (c *Client) Analysis(ctx context.Context, key string) (analysis.Report, error) {
	var rep analysis.Report
	err := c.getJSON(ctx, "/v1/runs/"+key+"/analysis", nil, &rep)
	return rep, err
}

// Timeline fetches the sampled counter time series of a telemetry-bearing
// run by key.
func (c *Client) Timeline(ctx context.Context, key string) (telemetry.TimeSeries, error) {
	var ts telemetry.TimeSeries
	err := c.getJSON(ctx, "/v1/runs/"+key+"/timeline", nil, &ts)
	return ts, err
}

// Stats fetches the daemon counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var st StatsResponse
	err := c.getJSON(ctx, "/v1/stats", nil, &st)
	return st, err
}

// Healthz reports daemon liveness.
func (c *Client) Healthz(ctx context.Context) error {
	var h struct {
		Status string `json:"status"`
	}
	if err := c.getJSON(ctx, "/v1/healthz", nil, &h); err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("service: health %q", h.Status)
	}
	return nil
}
