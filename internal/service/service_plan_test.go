package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/planner"
	"repro/internal/runner"
)

// fig9PlanRequest is the Fig9 filter-size question: the smallest
// filter_entries on IS/hybrid holding the hit ratio within slack of the
// best, over a 16-value grid a bisection should answer in ~6 probes.
func fig9PlanRequest() PlanRequest {
	var vals []int
	for v := 4; v <= 64; v += 4 {
		vals = append(vals, v)
	}
	return PlanRequest{
		Strategy:   "knee",
		Benchmark:  "IS",
		System:     "hybrid",
		Scale:      "tiny",
		Cores:      4,
		Sweep:      []runner.KnobAxis{{Name: "filter_entries", Values: vals}},
		Constraint: &planner.Constraint{Metric: "hit_ratio", SlackOfBest: 0.99},
	}
}

// TestPlanMatchesGridWithFewerProbes is the PR's acceptance criterion,
// end-to-end over HTTP: the knee plan converges to the same filter size the
// exhaustive grid sweep identifies, in at most half the probes.
func TestPlanMatchesGridWithFewerProbes(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 4, QueueDepth: 64})
	ctx := context.Background()
	req := fig9PlanRequest()

	var probes []planner.Probe
	v, err := client.Plan(ctx, req, 0, func(p planner.Probe) error {
		probes = append(probes, p)
		return nil
	})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if !v.Converged || v.Answer == nil {
		t.Fatalf("plan did not converge: %+v", v)
	}
	if v.Probes != len(probes) {
		t.Fatalf("verdict says %d probes, stream carried %d", v.Probes, len(probes))
	}
	if v.Grid != 16 {
		t.Fatalf("grid = %d, want 16", v.Grid)
	}
	if v.Probes > v.Grid/2 {
		t.Errorf("plan used %d probes; acceptance demands at most half the %d-point grid", v.Probes, v.Grid)
	}

	// The exhaustive answer, through the same daemon: one run per grid
	// point, the smallest value within slack of the best hit ratio.
	best := 0.0
	hits := map[int]float64{}
	sum, err := client.Sweep(ctx, Matrix{
		Benchmarks: []string{"IS"}, Systems: []string{"hybrid"},
		Scale: "tiny", Cores: 4, Sweep: req.Sweep,
	}, 0, func(rec RunRecord) error {
		hits[rec.Spec.Config().FilterEntries] = rec.Results.FilterHitRatio
		if rec.Results.FilterHitRatio > best {
			best = rec.Results.FilterHitRatio
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if sum.Failed != 0 {
		t.Fatalf("sweep failed %d runs", sum.Failed)
	}
	gridAnswer := 0
	for v := 4; v <= 64; v += 4 {
		if hits[v] >= 0.99*best {
			gridAnswer = v
			break
		}
	}
	if got := v.Answer.Axes["filter_entries"]; got != gridAnswer {
		t.Errorf("plan says filter_entries=%d, exhaustive grid says %d", got, gridAnswer)
	}
}

// TestReplanDeterministicAndCached re-asks the same question: the probe
// transcript must be byte-stable and the second pass must execute nothing —
// every probe a cache hit, the rescache miss counter unmoved.
func TestReplanDeterministicAndCached(t *testing.T) {
	srv, client := newTestDaemon(t, Options{Workers: 4, QueueDepth: 64})
	ctx := context.Background()
	req := fig9PlanRequest()

	run := func() ([]planner.Probe, planner.Verdict) {
		var tr []planner.Probe
		v, err := client.Plan(ctx, req, 0, func(p planner.Probe) error {
			tr = append(tr, p)
			return nil
		})
		if err != nil {
			t.Fatalf("Plan: %v", err)
		}
		return tr, v
	}

	tr1, v1 := run()
	missesAfterFirst := srv.Cache().Stats().Misses
	tr2, v2 := run()
	missesAfterSecond := srv.Cache().Stats().Misses

	// Identical transcripts up to the Cached flag (the replay is served
	// from cache, which is the point).
	if len(tr1) != len(tr2) {
		t.Fatalf("transcript lengths differ: %d vs %d", len(tr1), len(tr2))
	}
	for i := range tr1 {
		a, b := tr1[i], tr2[i]
		if !b.Cached {
			t.Errorf("replay probe %d (%s) was not served from cache", i, b.Key)
		}
		a.Cached, b.Cached = false, false
		if !reflect.DeepEqual(a, b) {
			t.Errorf("probe %d differs:\n%+v\n%+v", i, a, b)
		}
	}
	if missesAfterSecond != missesAfterFirst {
		t.Errorf("replay caused %d cache misses, want 0", missesAfterSecond-missesAfterFirst)
	}
	if v2.CacheHits != v2.Probes {
		t.Errorf("replay: %d of %d probes cached, want all", v2.CacheHits, v2.Probes)
	}
	if v1.Answer == nil || v2.Answer == nil || !reflect.DeepEqual(v1.Answer, v2.Answer) {
		t.Errorf("answers differ: %+v vs %+v", v1.Answer, v2.Answer)
	}
}

// TestPlanBudgetExhaustionOverHTTP proves a starved plan answers promptly
// with converged=false instead of hanging the stream.
func TestPlanBudgetExhaustionOverHTTP(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 4, QueueDepth: 64})
	req := fig9PlanRequest()
	// A knee needs at least two probes (both ends of the bracket); budget 1
	// starves it no matter what the measured surface looks like.
	req.Budget = 1

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	v, err := client.Plan(ctx, req, 0, nil)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if v.Converged {
		t.Fatalf("budget 1 cannot converge a bisection: %+v", v)
	}
	if v.Probes != 1 {
		t.Errorf("probes = %d, want exactly the budget", v.Probes)
	}
	// Best effort: the generous end was probed and satisfies slack-of-best
	// by construction, so it comes back as a non-minimal answer.
	if v.Answer == nil || v.Answer.Axes["filter_entries"] != 64 {
		t.Errorf("best-effort answer should be the satisfying end: %+v", v.Answer)
	}
	if !strings.Contains(v.Reason, "budget") {
		t.Errorf("reason should mention the budget: %q", v.Reason)
	}
}

// TestPlanValidation: malformed questions 400 before any line streams.
func TestPlanValidation(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 1, QueueDepth: 8})
	ctx := context.Background()
	bad := []PlanRequest{
		{},                                    // no strategy, no benchmark
		{Strategy: "oracle", Benchmark: "IS"}, // unknown strategy
		{Strategy: "knee", Benchmark: "IS"},   // no axis, no constraint
		func() PlanRequest { // constraint metric typo
			r := fig9PlanRequest()
			r.Constraint = &planner.Constraint{Metric: "hitratio", SlackOfBest: 0.99}
			return r
		}(),
	}
	for i, req := range bad {
		if _, err := client.Plan(ctx, req, 0, nil); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}

// TestPlanMetrics: the plans_total counter carries strategy and outcome.
func TestPlanMetrics(t *testing.T) {
	srv, client := newTestDaemon(t, Options{Workers: 4, QueueDepth: 64})
	ctx := context.Background()
	if _, err := client.Plan(ctx, fig9PlanRequest(), 0, nil); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rr.Body.String()
	if !strings.Contains(body, `hybridsimd_plans_total{outcome="converged",strategy="knee"}`) &&
		!strings.Contains(body, `hybridsimd_plans_total{strategy="knee",outcome="converged"}`) {
		t.Errorf("plans_total{knee,converged} missing from /metrics:\n%s", grepLines(body, "plans_total"))
	}
	if !strings.Contains(body, "hybridsimd_plan_probes_total") {
		t.Error("plan_probes_total missing from /metrics")
	}
}

func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestSweepRetriesAfterShed: satellite 1 — the streaming GET paths retry a
// 429 with Retry-After like submissions do.
func TestSweepRetriesAfterShed(t *testing.T) {
	srv := New(Options{Workers: 2, QueueDepth: 8})
	defer srv.Close()
	var sheds atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/sweep" && sheds.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := &Client{Base: ts.URL, HTTP: ts.Client(), Retries: 2}

	sum, err := client.Sweep(context.Background(), Matrix{
		Benchmarks: []string{"EP"}, Systems: []string{"cache"}, Scale: "tiny", Cores: 4,
	}, 0, nil)
	if err != nil {
		t.Fatalf("Sweep after shed: %v", err)
	}
	if sum.Runs != 1 || sum.Failed != 0 {
		t.Fatalf("summary: %+v", sum)
	}
	if got := sheds.Load(); got < 2 {
		t.Fatalf("handler saw %d sweep attempts, want the shed plus a retry", got)
	}
}

// TestPlanRetriesAfterShed: same for POST /v1/plan — the body replays.
func TestPlanRetriesAfterShed(t *testing.T) {
	srv := New(Options{Workers: 4, QueueDepth: 64})
	defer srv.Close()
	var sheds atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/plan" && sheds.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := &Client{Base: ts.URL, HTTP: ts.Client(), Retries: 2}

	v, err := client.Plan(context.Background(), fig9PlanRequest(), 0, nil)
	if err != nil {
		t.Fatalf("Plan after shed: %v", err)
	}
	if !v.Converged {
		t.Fatalf("plan did not converge: %+v", v)
	}
}
