package service

// Tests for the advisor surface: GET /v1/runs/{key}/analysis over done and
// cached runs, the ?analyze=1 sweep summary, and the per-rule findings
// counter on /metrics.

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/system"
	"repro/internal/workloads"
)

// TestAnalysisEndpoint is the acceptance criterion: a misconfigured run's
// analysis names the misconfiguration, a healthy run's analysis is an empty
// (but well-formed) report, and both are pure observation — no rerun.
func TestAnalysisEndpoint(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	// A filter starved four ways below its default capacity.
	ov, err := config.ParseOverrides([]string{"filter_entries=4"})
	if err != nil {
		t.Fatal(err)
	}
	starved := system.Spec{System: config.HybridReal, Benchmark: "gups",
		Scale: workloads.Tiny, Cores: 4, Overrides: ov}
	rec, err := client.Run(ctx, starved, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := client.Analysis(ctx, rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	var pressure bool
	for _, f := range rep.Findings {
		if f.Rule == "filter-pressure" {
			pressure = true
			if string(f.Severity) != "critical" {
				t.Fatalf("filter-pressure severity = %q, want critical: %+v", f.Severity, f)
			}
			if f.Suggestion == nil || f.Suggestion.Knob != "filter_entries" {
				t.Fatalf("filter-pressure should suggest filter_entries: %+v", f.Suggestion)
			}
		}
	}
	if !pressure {
		t.Fatalf("starved filter not diagnosed; findings: %+v", rep.Findings)
	}

	// A healthy run: HTTP 200, zero findings, and the stats-needing rules
	// reported as skipped (the daemon keeps results, not raw counters).
	healthy := system.Spec{System: config.HybridReal, Benchmark: "CG",
		Scale: workloads.Tiny, Cores: 8}
	rec, err = client.Run(ctx, healthy, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = client.Analysis(ctx, rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("healthy run fired findings: %+v", rep.Findings)
	}
	if len(rep.Skipped) == 0 {
		t.Fatal("results-only analysis should report its skipped rules")
	}

	// Unknown key: a clean 404, not an empty report.
	resp, err := http.Get(client.Base + "/v1/runs/deadbeef/analysis")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: status %d, want 404", resp.StatusCode)
	}
}

// TestAnalysisServedFromCacheEntry restarts the daemon-side run table by
// analyzing a key known only to the result cache: the endpoint must fall
// back to the cached entry rather than 404.
func TestAnalysisServedFromCacheEntry(t *testing.T) {
	srv, client := newTestDaemon(t, Options{Workers: 1, QueueDepth: 4})
	ctx := context.Background()
	rec, err := client.Run(ctx, tinySpec("EP", config.CacheBased), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Forget the job record, keeping only the cache entry.
	srv.mu.Lock()
	delete(srv.runs, rec.Key)
	srv.mu.Unlock()

	if _, err := client.Analysis(ctx, rec.Key); err != nil {
		t.Fatalf("analysis over the cache entry failed: %v", err)
	}
}

// TestSweepAnalyzeSummary runs a small filter sweep with ?analyze=1 and
// checks the cross-run attribution rides the summary without disturbing the
// per-run records.
func TestSweepAnalyzeSummary(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 2, QueueDepth: 16})
	m := Matrix{
		Benchmarks: []string{"gups"},
		Systems:    []string{"hybrid"},
		Scale:      "tiny",
		Cores:      4,
		Sweep:      []runner.KnobAxis{{Name: "filter_entries", Values: []int{4, 48}}},
		Analyze:    true,
	}
	var recs int
	sum, err := client.Sweep(context.Background(), m, 0, func(r RunRecord) error {
		recs++
		if r.Results == nil {
			t.Fatalf("record %s has no results", r.Key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Analysis == nil {
		t.Fatal("analyze=1 sweep summary carries no analysis")
	}
	if sum.Analysis.Runs != recs || recs != 2 {
		t.Fatalf("analysis covers %d runs, streamed %d, want 2", sum.Analysis.Runs, recs)
	}
	if len(sum.Analysis.Axes) != 1 || sum.Analysis.Axes[0].Name != "filter_entries" {
		t.Fatalf("axes = %+v, want the swept filter_entries knob", sum.Analysis.Axes)
	}

	// The same sweep without the flag must not pay for (or leak) analysis.
	m.Analyze = false
	sum, err = client.Sweep(context.Background(), m, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Analysis != nil {
		t.Fatal("analysis attached without analyze=1")
	}
}

// TestFindingsMetric checks the per-rule findings counter reaches /metrics
// with rule and severity labels.
func TestFindingsMetric(t *testing.T) {
	_, client := newTestDaemon(t, Options{Workers: 1, QueueDepth: 4})
	ctx := context.Background()
	ov, err := config.ParseOverrides([]string{"filter_entries=4"})
	if err != nil {
		t.Fatal(err)
	}
	spec := system.Spec{System: config.HybridReal, Benchmark: "gups",
		Scale: workloads.Tiny, Cores: 4, Overrides: ov}
	rec, err := client.Run(ctx, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Analysis(ctx, rec.Key); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(client.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`hybridsimd_analysis_findings_total{rule="filter-pressure",severity="critical"} 1`,
		"hybridsimd_timelines_capacity ",
		"hybridsimd_process_uptime_seconds",
		"hybridsimd_process_goroutines",
		"hybridsimd_process_heap_inuse_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
