// Package workloads is the registry of named, parameterized benchmark
// generators over the compiler IR (see registry.go).
//
// The six NAS-derived kernels of the paper's evaluation (Table 2, this
// file) are parameterless entries; each reproduces its original's
// signature: kernel count, number of strided (SPM) and potentially
// incoherent (guarded) references, relative data-set sizes, disjointness of
// the SPM- and guarded-accessed data, and access locality. Footprints are
// scaled down from Table 2 so simulations finish in seconds (see DESIGN.md
// §2 and §5); the Scale type controls how much.
//
// The synthetic generators (synthetic.go) open the rest of the access-
// pattern space with typed parameters: streaming triad, stencil, pointer
// chase, matrix transpose, reduction tree, and GUPS-style random access.
package workloads

import (
	"encoding/json"
	"fmt"

	"repro/internal/compiler"
)

// Scale selects the footprint scaling.
type Scale int

const (
	// Tiny is for unit tests and testing.B benchmarks: runs in
	// milliseconds on a few cores.
	Tiny Scale = iota
	// Small is the default experiment scale: Table 2 shapes at roughly
	// 1/12th the footprint, minutes for the full suite.
	Small
)

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// div returns n scaled down for the tiny configuration (floor at 'min').
func (s Scale) div(n, min int) int {
	if s == Tiny {
		n /= 16
	}
	if n < min {
		n = min
	}
	return n
}

// ParseScale maps a scale name (as used by command-line flags) to its Scale.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	default:
		return 0, fmt.Errorf("workloads: unknown scale %q (want tiny or small)", name)
	}
}

// MarshalJSON encodes the scale by its stable name, keeping spec JSON
// readable and robust against enum reordering.
func (s Scale) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the names MarshalJSON produces.
func (s *Scale) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	sc, err := ParseScale(name)
	if err != nil {
		return err
	}
	*s = sc
	return nil
}

// Build constructs one benchmark at the given scale with default
// parameters. It panics on unknown names — the registry-aware paths
// (BuildSpec, system.Spec.Validate) reject those with errors first.
func Build(name string, sc Scale) *compiler.Benchmark {
	b, err := BuildSpec(name, nil, sc)
	if err != nil {
		panic(fmt.Sprintf("workloads: %v", err))
	}
	return b
}

// All builds every registered workload at its default parameters.
func All(sc Scale) []*compiler.Benchmark {
	var out []*compiler.Benchmark
	for _, n := range Names() {
		out = append(out, Build(n, sc))
	}
	return out
}

// arena hands out SPM-size-aligned array base addresses so DMA chunk bases
// never straddle arrays.
type arena struct {
	next uint64
}

const arenaAlign = 32 << 10

func newArena() *arena { return &arena{next: 0x1000_0000} }

func (a *arena) alloc(name string, size int) *compiler.Array {
	if size <= 0 {
		panic("workloads: zero-size array")
	}
	aligned := (uint64(size) + arenaAlign - 1) &^ (arenaAlign - 1)
	arr := &compiler.Array{Name: name, Base: a.next, Size: size}
	a.next += aligned
	return arr
}

// stridedRefs allocates n per-reference array sections of iters elements and
// returns strided refs, the first nStores of them writes.
func stridedRefs(a *arena, prefix string, n, nStores, iters int) ([]compiler.Ref, []*compiler.Array) {
	var refs []compiler.Ref
	var arrs []*compiler.Array
	for i := 0; i < n; i++ {
		arr := a.alloc(fmt.Sprintf("%s%d", prefix, i), iters*8)
		arrs = append(arrs, arr)
		refs = append(refs, compiler.Ref{
			Name:    arr.Name,
			Array:   arr,
			Pattern: compiler.Strided,
			IsWrite: i < nStores,
		})
	}
	return refs, arrs
}

// buildCG is the conjugate-gradient sparse matrix-vector product: few strided
// references over a big input, one guarded indirect load (x[col[j]]) over a
// much smaller vector with strong temporal locality (Table 2: 5 SPM refs /
// 109 MB, 1 guarded ref / 600 KB).
func buildCG(sc Scale) *compiler.Benchmark {
	a := newArena()
	iters := sc.div(262144, 2048)
	// Dynamic mix of a real spmv: two dense per-nonzero streams (values
	// and column indices), three sparse per-row sections (row pointers,
	// p vector reads, q accumulator stores) touched every 8th iteration.
	val := a.alloc("cg_val", iters*8)
	col := a.alloc("cg_col", iters*8)
	rowp := a.alloc("cg_rowptr", iters)
	pvec := a.alloc("cg_p", iters)
	qvec := a.alloc("cg_q", iters)
	x := a.alloc("cg_x", sc.div(256<<10, 16<<10))
	refs := []compiler.Ref{
		{Name: "val", Array: val, Pattern: compiler.Strided},
		{Name: "col", Array: col, Pattern: compiler.Strided},
		{Name: "rowptr", Array: rowp, Pattern: compiler.Strided, Every: 8},
		{Name: "p", Array: pvec, Pattern: compiler.Strided, Every: 8},
		{Name: "q", Array: qvec, Pattern: compiler.Strided, IsWrite: true, Every: 8},
		{Name: "x", Array: x, Pattern: compiler.Random, MayAliasSPM: true,
			HotFraction: 0.93, HotBytes: 8 << 10},
	}
	arrs := []*compiler.Array{val, col, rowp, pvec, qvec}
	return &compiler.Benchmark{
		Name:    "CG",
		Repeats: 2,
		Arrays:  append(arrs, x),
		Kernels: []compiler.Kernel{{
			Name: "spmv", Iters: iters, ComputeOps: 20, Refs: refs,
		}},
	}
}

// buildEP is the embarrassingly-parallel kernel: tiny data sets, heavy
// computation, and register spilling that makes the stack dominate memory
// traffic (Table 2: 3 SPM refs / 1 MB, 1 guarded ref / 512 KB).
func buildEP(sc Scale) *compiler.Benchmark {
	a := newArena()
	iters := sc.div(32768, 2048)
	k1refs, arrs1 := stridedRefs(a, "ep_a", 2, 1, iters)
	k2refs, arrs2 := stridedRefs(a, "ep_b", 1, 0, iters)
	table := a.alloc("ep_tab", sc.div(512<<10, 16<<10))
	stack := func(n string, w bool) compiler.Ref {
		return compiler.Ref{Name: n, Pattern: compiler.Stack, IsWrite: w}
	}
	k1 := compiler.Kernel{
		Name: "gauss", Iters: iters, ComputeOps: 28,
		Refs: append(k1refs, stack("sp0", false), stack("sp1", true),
			stack("sp2", false), stack("sp3", true)),
	}
	k2 := compiler.Kernel{
		Name: "tally", Iters: iters, ComputeOps: 24,
		Refs: append(k2refs,
			compiler.Ref{Name: "tab", Array: table, Pattern: compiler.Random,
				MayAliasSPM: true, HotFraction: 0.98, HotBytes: 8 << 10, Every: 4},
			stack("sp4", false), stack("sp5", true)),
	}
	return &compiler.Benchmark{
		Name:    "EP",
		Repeats: 1,
		Arrays:  append(append(arrs1, arrs2...), table),
		Kernels: []compiler.Kernel{k1, k2},
	}
}

// buildFT is the 3-D FFT: five stride-heavy kernels over a large input with
// a few guarded twiddle/transpose accesses (Table 2: 32 SPM refs / 269 MB,
// 4 guarded refs / 1 MB).
func buildFT(sc Scale) *compiler.Benchmark {
	a := newArena()
	iters := sc.div(16384, 1024)
	shapes := []struct {
		refs, stores int
		guarded      bool
		compute      int
	}{
		{6, 2, true, 24},
		{7, 3, true, 24},
		{6, 2, true, 30},
		{7, 3, true, 24},
		{6, 2, false, 18},
	}
	var kernels []compiler.Kernel
	var arrays []*compiler.Array
	for ki, sh := range shapes {
		refs, arrs := stridedRefs(a, fmt.Sprintf("ft_k%d_", ki), sh.refs, sh.stores, iters)
		arrays = append(arrays, arrs...)
		if sh.guarded {
			tw := a.alloc(fmt.Sprintf("ft_tw%d", ki), sc.div(64<<10, 8<<10))
			arrays = append(arrays, tw)
			refs = append(refs, compiler.Ref{
				Name: "tw", Array: tw, Pattern: compiler.Random, MayAliasSPM: true,
				HotFraction: 0.95, HotBytes: 8 << 10, Every: 2,
			})
		}
		kernels = append(kernels, compiler.Kernel{
			Name:  fmt.Sprintf("fft%d", ki),
			Iters: iters, ComputeOps: sh.compute, Refs: refs,
		})
	}
	return &compiler.Benchmark{Name: "FT", Repeats: 2, Arrays: arrays, Kernels: kernels}
}

// buildIS is the integer bucket sort: strided key streams plus two guarded
// histogram accesses (load + store) over a larger shared region with weaker
// locality — the benchmark with the lowest filter hit ratio (Table 2:
// 3 SPM refs / 67 MB, 2 guarded refs / 2 MB).
func buildIS(sc Scale) *compiler.Benchmark {
	a := newArena()
	iters := sc.div(524288, 4096)
	refs, arrs := stridedRefs(a, "is_k", 3, 1, iters)
	hist := a.alloc("is_hist", sc.div(512<<10, 32<<10))
	refs = append(refs,
		compiler.Ref{Name: "hist_ld", Array: hist, Pattern: compiler.Random,
			MayAliasSPM: true, HotFraction: 0.85, HotBytes: 8 << 10},
		compiler.Ref{Name: "hist_st", Array: hist, Pattern: compiler.Random,
			MayAliasSPM: true, IsWrite: true, HotFraction: 0.85, HotBytes: 8 << 10})
	return &compiler.Benchmark{
		Name:    "IS",
		Repeats: 2,
		Arrays:  append(arrs, hist),
		Kernels: []compiler.Kernel{{
			Name: "rank", Iters: iters, ComputeOps: 16, Refs: refs,
		}},
	}
}

// buildMG is the multigrid stencil: many strided references over a big grid
// hierarchy, with a handful of guarded accesses to a tiny boundary
// descriptor (Table 2: 59 SPM refs / 454 MB, 6 guarded refs / 64 B).
func buildMG(sc Scale) *compiler.Benchmark {
	a := newArena()
	iters := sc.div(16384, 1024)
	bound := a.alloc("mg_bound", 64)
	counts := []int{20, 19, 20} // 59 strided refs across 3 kernels
	var kernels []compiler.Kernel
	arrays := []*compiler.Array{bound}
	for ki, n := range counts {
		refs, arrs := stridedRefs(a, fmt.Sprintf("mg_k%d_", ki), n, n/3, iters)
		arrays = append(arrays, arrs...)
		for g := 0; g < 2; g++ { // 6 guarded refs total
			refs = append(refs, compiler.Ref{
				Name: fmt.Sprintf("bnd%d", g), Array: bound,
				Pattern: compiler.Random, MayAliasSPM: true,
				IsWrite: g == 1, Every: 16,
			})
		}
		kernels = append(kernels, compiler.Kernel{
			Name:  fmt.Sprintf("mg%d", ki),
			Iters: iters, ComputeOps: 36, Refs: refs,
		})
	}
	return &compiler.Benchmark{Name: "MG", Repeats: 2, Arrays: arrays, Kernels: kernels}
}

// buildSP is the scalar pentadiagonal solver: 54 kernels whose 497 strided
// references traverse a small input set; no guarded accesses at all, so the
// protocol's filters stay idle/gated (Table 2: 497 SPM refs / 2 MB, 0
// guarded refs).
func buildSP(sc Scale) *compiler.Benchmark {
	a := newArena()
	iters := sc.div(8192, 1024)
	// Each kernel streams its own array sections. (The real SP reuses a
	// small set of working vectors, but its non-hashed 4-way L1 conflict-
	// thrashes on them — the paper's stated baseline behaviour. Our cache
	// model hashes set indices, so we recreate the baseline's streaming
	// misses by keeping per-kernel sections distinct; see DESIGN.md §2.)
	var arrs []*compiler.Array
	const totalRefs = 497
	const numKernels = 54
	var kernels []compiler.Kernel
	emitted := 0
	for ki := 0; ki < numKernels; ki++ {
		n := totalRefs / numKernels
		if ki < totalRefs%numKernels {
			n++
		}
		var refs []compiler.Ref
		for r := 0; r < n; r++ {
			arr := a.alloc(fmt.Sprintf("sp_k%d_v%d", ki, r), iters*8)
			arrs = append(arrs, arr)
			refs = append(refs, compiler.Ref{
				Name:    arr.Name,
				Array:   arr,
				Pattern: compiler.Strided,
				IsWrite: r == 0, // one written vector per kernel
			})
		}
		emitted += n
		kernels = append(kernels, compiler.Kernel{
			Name:  fmt.Sprintf("sp%d", ki),
			Iters: iters, ComputeOps: 30, Refs: refs,
		})
	}
	if emitted != totalRefs {
		panic("workloads: SP ref count drifted")
	}
	return &compiler.Benchmark{Name: "SP", Repeats: 2, Arrays: arrs, Kernels: kernels}
}
