package workloads

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/compiler"
	"repro/internal/config"
)

// ParamSpec declares one typed parameter of a workload generator: a stable
// snake_case wire name, a default, and an inclusive validity range. Every
// parameter is an integer (counts, byte sizes, percentages), mirroring the
// machine-knob registry (config.Knobs); unlike machine knobs, 0 can be a
// meaningful value (hot_pct=0 means uniform access), so sparse parameter
// sets are maps rather than zero-defaulted struct fields.
type ParamSpec struct {
	// Name is the identifier used in "name:k=v" workload spellings,
	// -wsweep flags, ?wsweep= query parameters, Spec JSON "params"
	// objects, sweep CSV columns and the v3 hash encoding.
	Name string
	// Default is the value an unset parameter resolves to (at the Small
	// scale; generators scale iteration counts down for Tiny).
	Default int
	// Min and Max bound the accepted values, inclusive. Max 0 means
	// unbounded above.
	Min, Max int
	// Desc is the one-line catalog description.
	Desc string
}

// ParamValue is one (parameter, value) pair — the element of param diffs,
// sweep axes and the canonical v3 hash encoding.
type ParamValue struct {
	Name  string `json:"name"`
	Value int    `json:"value"`
}

// Entry is one registry workload: a named, parameterized, deterministic
// benchmark generator. The six NAS kernels of the paper's Table 2 are
// parameterless entries; the synthetic generators open the rest of the
// access-pattern space.
type Entry struct {
	// Name is the stable workload name (the Spec.Benchmark value).
	Name string
	// Desc is the one-line catalog description.
	Desc string
	// NAS marks the paper's Table 2 kernels — the exhibits of Figures
	// 7-11 enumerate exactly these.
	NAS bool
	// Params declares the parameter set in its canonical (encoding and
	// column) order. Append-only per entry: reordering changes the v3
	// hash encoding of param-bearing Specs.
	Params []ParamSpec
	// Check optionally validates cross-parameter constraints after the
	// per-parameter range checks pass. It receives the fully resolved set.
	Check func(p map[string]int) error
	// Build constructs the benchmark. It receives the fully resolved
	// parameter set (every declared name present) and must be a pure
	// function of (params, Scale): byte-identical structure on every call,
	// which is what makes content-addressed result caching sound.
	Build func(p map[string]int, sc Scale) *compiler.Benchmark
}

// registry holds every workload in canonical order: the NAS six first, in
// the paper's order, then the synthetic generators. Append-only.
var registry = []Entry{
	{Name: "CG", NAS: true, Desc: "NAS conjugate gradient: sparse SpMV, one guarded gather with strong locality",
		Build: func(p map[string]int, sc Scale) *compiler.Benchmark { return buildCG(sc) }},
	{Name: "EP", NAS: true, Desc: "NAS embarrassingly parallel: tiny data, heavy compute, stack-dominated traffic",
		Build: func(p map[string]int, sc Scale) *compiler.Benchmark { return buildEP(sc) }},
	{Name: "FT", NAS: true, Desc: "NAS 3-D FFT: five stride-heavy kernels, guarded twiddle accesses",
		Build: func(p map[string]int, sc Scale) *compiler.Benchmark { return buildFT(sc) }},
	{Name: "IS", NAS: true, Desc: "NAS integer sort: strided key streams, low-locality guarded histogram",
		Build: func(p map[string]int, sc Scale) *compiler.Benchmark { return buildIS(sc) }},
	{Name: "MG", NAS: true, Desc: "NAS multigrid: 59 strided refs over a grid hierarchy, tiny guarded boundary",
		Build: func(p map[string]int, sc Scale) *compiler.Benchmark { return buildMG(sc) }},
	{Name: "SP", NAS: true, Desc: "NAS scalar pentadiagonal: 497 strided refs, no guarded accesses (filters idle)",
		Build: func(p map[string]int, sc Scale) *compiler.Benchmark { return buildSP(sc) }},
	streamEntry,
	stencilEntry,
	ptrchaseEntry,
	transposeEntry,
	reduceEntry,
	gupsEntry,
}

var entryByName = func() map[string]*Entry {
	m := make(map[string]*Entry, len(registry))
	for i := range registry {
		e := &registry[i]
		if _, dup := m[e.Name]; dup {
			panic("workloads: duplicate workload name " + e.Name)
		}
		seen := map[string]bool{}
		for _, ps := range e.Params {
			if seen[ps.Name] {
				panic("workloads: duplicate param " + ps.Name + " in " + e.Name)
			}
			seen[ps.Name] = true
		}
		m[e.Name] = e
	}
	return m
}()

// Entries returns the registry in canonical order. The slice is shared;
// callers must not mutate it.
func Entries() []Entry { return registry }

// Lookup resolves a workload name to its registry entry.
func Lookup(name string) (Entry, bool) {
	e, ok := entryByName[name]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Names lists every registered workload in canonical order: the paper's six
// NAS kernels first, then the synthetic generators.
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	return names
}

// NAS lists the paper's Table 2 kernels in the paper's order — the set every
// figure exhibit enumerates.
func NAS() []string {
	var names []string
	for _, e := range registry {
		if e.NAS {
			names = append(names, e.Name)
		}
	}
	return names
}

// param looks up one declared parameter of an entry.
func (e Entry) param(name string) (ParamSpec, bool) {
	for _, ps := range e.Params {
		if ps.Name == name {
			return ps, true
		}
	}
	return ParamSpec{}, false
}

// paramNames lists the entry's declared parameter names in canonical order.
func (e Entry) paramNames() []string {
	names := make([]string, len(e.Params))
	for i, ps := range e.Params {
		names[i] = ps.Name
	}
	return names
}

// HasParam reports whether the entry declares the named parameter.
func (e Entry) HasParam(name string) bool { _, ok := e.param(name); return ok }

// CheckValue validates one (name, value) assignment against the entry's
// declared parameter set — the unit a sweep axis validates per value.
func (e Entry) CheckValue(name string, value int) error {
	ps, ok := e.param(name)
	if !ok {
		return fmt.Errorf("workloads: %s has no parameter %q (want one of %v)", e.Name, name, e.paramNames())
	}
	if value < ps.Min {
		return fmt.Errorf("workloads: %s param %s=%d below minimum %d", e.Name, name, value, ps.Min)
	}
	if ps.Max > 0 && value > ps.Max {
		return fmt.Errorf("workloads: %s param %s=%d above maximum %d", e.Name, name, value, ps.Max)
	}
	return nil
}

// ValidateParams checks a sparse parameter assignment against the entry's
// declared set: every name must exist, every value must be in range, and the
// entry's cross-parameter Check (if any) must pass on the resolved set.
func ValidateParams(workload string, p map[string]int) error {
	e, ok := Lookup(workload)
	if !ok {
		return fmt.Errorf("workloads: unknown workload %q (want one of %v)", workload, Names())
	}
	for name, v := range p {
		if err := e.CheckValue(name, v); err != nil {
			return err
		}
	}
	if e.Check != nil {
		full, err := ResolveParams(workload, p)
		if err != nil {
			return err
		}
		if err := e.Check(full); err != nil {
			return fmt.Errorf("workloads: %s: %w", e.Name, err)
		}
	}
	return nil
}

// ResolveParams returns the full parameter set the sparse assignment names:
// the entry's defaults overlaid with p. Unknown names are rejected.
func ResolveParams(workload string, p map[string]int) (map[string]int, error) {
	e, ok := Lookup(workload)
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (want one of %v)", workload, Names())
	}
	full := make(map[string]int, len(e.Params))
	for _, ps := range e.Params {
		full[ps.Name] = ps.Default
	}
	for name, v := range p {
		if !e.HasParam(name) {
			return nil, fmt.Errorf("workloads: %s has no parameter %q (want one of %v)", e.Name, name, e.paramNames())
		}
		full[name] = v
	}
	return full, nil
}

// DiffParams returns, in canonical declaration order, every parameter of the
// resolved set that differs from its default — the segments Spec.Key()
// renders, the lines the v3 hash encodes, and the columns a sweep sink
// prints. Equivalent spellings (unset vs explicitly-default) produce the
// same empty diff, so they share one cache address by construction.
func DiffParams(workload string, p map[string]int) ([]ParamValue, error) {
	e, ok := Lookup(workload)
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (want one of %v)", workload, Names())
	}
	full, err := ResolveParams(workload, p)
	if err != nil {
		return nil, err
	}
	var out []ParamValue
	for _, ps := range e.Params {
		if v := full[ps.Name]; v != ps.Default {
			out = append(out, ParamValue{Name: ps.Name, Value: v})
		}
	}
	return out, nil
}

// ParseParams parses a sparse "k=v,k2=v2" payload into an assignment map.
// Values accept plain integers, binary size suffixes (64k, 2m, 1g) and
// integral scientific notation (1e6). An empty payload is an empty map.
func ParseParams(s string) (map[string]int, error) {
	p := map[string]int{}
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		name, raw, ok := strings.Cut(field, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("workloads: bad parameter %q (want name=value)", field)
		}
		v, err := ParseParamValue(strings.TrimSpace(raw))
		if err != nil {
			return nil, fmt.Errorf("workloads: bad value in %q: %w", field, err)
		}
		p[name] = v
	}
	return p, nil
}

// ParseParamValue parses one parameter value: "4096", "64k", "2m", "1g",
// or "1e6" — the shared value grammar of every flag and query surface
// (config.ParseValue).
func ParseParamValue(s string) (int, error) {
	return config.ParseValue(s)
}

// FormatParams renders an assignment as a "k=v,k2=v2" payload: declared
// names in canonical order (so equal assignments render identically), any
// undeclared names after them in lexicographic order (so even an invalid
// assignment formats deterministically for error messages).
func FormatParams(workload string, p map[string]int) string {
	if len(p) == 0 {
		return ""
	}
	var parts []string
	emitted := map[string]bool{}
	if e, ok := Lookup(workload); ok {
		for _, ps := range e.Params {
			if v, set := p[ps.Name]; set {
				parts = append(parts, fmt.Sprintf("%s=%d", ps.Name, v))
				emitted[ps.Name] = true
			}
		}
	}
	var rest []string
	for name := range p {
		if !emitted[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		parts = append(parts, fmt.Sprintf("%s=%d", name, p[name]))
	}
	return strings.Join(parts, ",")
}

// ParseWorkload splits a "name" or "name:k=v,k2=v2" workload spelling — the
// payload of a -workload flag, a matrix benchmarks entry, or a ?workload=
// query parameter — into its name and sparse parameter assignment. The name
// and parameters are validated against the registry.
func ParseWorkload(s string) (name string, params map[string]int, err error) {
	name, rest, has := strings.Cut(s, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil, fmt.Errorf("workloads: empty workload in %q", s)
	}
	if has {
		if params, err = ParseParams(rest); err != nil {
			return "", nil, err
		}
	} else {
		params = map[string]int{}
	}
	if err = ValidateParams(name, params); err != nil {
		return "", nil, err
	}
	return name, params, nil
}

// FormatWorkload is ParseWorkload's inverse: "name" for an empty assignment,
// "name:k=v,..." otherwise.
func FormatWorkload(name string, params map[string]int) string {
	if len(params) == 0 {
		return name
	}
	return name + ":" + FormatParams(name, params)
}

// BuildSpec constructs a workload with a sparse parameter assignment,
// validating the name and every parameter first.
func BuildSpec(name string, params map[string]int, sc Scale) (*compiler.Benchmark, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (want one of %v)", name, Names())
	}
	if err := ValidateParams(name, params); err != nil {
		return nil, err
	}
	full, err := ResolveParams(name, params)
	if err != nil {
		return nil, err
	}
	return e.Build(full, sc), nil
}
