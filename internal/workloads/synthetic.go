package workloads

import (
	"fmt"

	"repro/internal/compiler"
)

// This file holds the synthetic, parameterized workload generators — the
// registry entries beyond the paper's NAS six. Each one isolates a single
// access-pattern regime the hybrid hierarchy must face, with typed
// parameters opening the axis that matters for it (stride, radius,
// footprint, locality, arity, ...). Every generator is a pure function of
// (params, Scale): no clocks, no map iteration, no global state — the
// determinism the content-addressed result cache depends on.

// mustBytes rejects byte-size parameters the 8-byte element grid cannot
// address.
func mustBytes(name string, v int) error {
	if v%8 != 0 {
		return fmt.Errorf("%s=%d must be a multiple of 8 bytes", name, v)
	}
	return nil
}

// streamEntry is the STREAM-triad bandwidth probe. At the default unit
// stride every stream is an SPM candidate (the hybrid's best case: pure
// double buffering); wider strides leave the SPMs idle and stress cache
// line utilization and the stride prefetcher instead.
var streamEntry = Entry{
	Name: "stream",
	Desc: "streaming triad a[i]=b[i]+s*c[i]: bandwidth probe, SPM-friendly at unit stride",
	Params: []ParamSpec{
		{Name: "n", Default: 65536, Min: 1024, Max: 1 << 22, Desc: "elements per stream"},
		{Name: "stride", Default: 8, Min: 8, Max: 4096, Desc: "bytes between touched elements (8 = dense; wider bypasses the SPMs)"},
		{Name: "streams", Default: 3, Min: 1, Max: 12, Desc: "concurrent array streams (the last one stores)"},
	},
	Check: func(p map[string]int) error { return mustBytes("stride", p["stride"]) },
	Build: func(p map[string]int, sc Scale) *compiler.Benchmark {
		a := newArena()
		iters := sc.div(p["n"], 1024)
		stride, streams := p["stride"], p["streams"]
		var refs []compiler.Ref
		var arrs []*compiler.Array
		for i := 0; i < streams; i++ {
			arr := a.alloc(fmt.Sprintf("stream_v%d", i), iters*stride)
			arrs = append(arrs, arr)
			refs = append(refs, compiler.Ref{
				Name: arr.Name, Array: arr, Pattern: compiler.Strided,
				Stride: stride, IsWrite: i == streams-1,
			})
		}
		return &compiler.Benchmark{
			Name: "stream", Repeats: 2, Arrays: arrs,
			Kernels: []compiler.Kernel{{Name: "triad", Iters: iters, ComputeOps: 8, Refs: refs}},
		}
	},
}

// stencilEntry is a 1-D (2r+1)-point relaxation: every input element is
// read 2r+1 times per sweep, so the SPM double-buffering amortizes DMA
// traffic across the whole neighborhood — the reuse regime the NAS suite
// only touches in MG.
var stencilEntry = Entry{
	Name: "stencil",
	Desc: "(2r+1)-point 1-D stencil sweep: tunable reuse per DMA'd element",
	Params: []ParamSpec{
		{Name: "n", Default: 32768, Min: 1024, Max: 1 << 22, Desc: "grid points"},
		{Name: "radius", Default: 1, Min: 1, Max: 8, Desc: "stencil radius r"},
	},
	Build: func(p map[string]int, sc Scale) *compiler.Benchmark {
		a := newArena()
		iters := sc.div(p["n"], 1024)
		points := 2*p["radius"] + 1
		in := a.alloc("stencil_in", iters*8)
		out := a.alloc("stencil_out", iters*8)
		var refs []compiler.Ref
		for i := 0; i < points; i++ {
			refs = append(refs, compiler.Ref{
				Name: fmt.Sprintf("in%d", i), Array: in, Pattern: compiler.Strided,
			})
		}
		refs = append(refs, compiler.Ref{Name: "out", Array: out, Pattern: compiler.Strided, IsWrite: true})
		return &compiler.Benchmark{
			Name: "stencil", Repeats: 2, Arrays: []*compiler.Array{in, out},
			Kernels: []compiler.Kernel{{Name: "relax", Iters: iters, ComputeOps: 2 * points, Refs: refs}},
		}
	},
}

// ptrchaseEntry is the pointer-chase/gather probe: a dense index stream
// (SPM) drives guarded loads into a node pool whose footprint and temporal
// locality are the parameters — a dial from CG-like filter-friendly gathers
// (high hot_pct) down to filter-hostile uniform chasing (hot_pct=0).
var ptrchaseEntry = Entry{
	Name: "ptrchase",
	Desc: "guarded pointer chase over a node pool: tunable footprint and locality",
	Params: []ParamSpec{
		{Name: "n", Default: 262144, Min: 2048, Max: 1 << 22, Desc: "dependent hops"},
		{Name: "footprint", Default: 1 << 20, Min: 4096, Max: 1 << 28, Desc: "node pool bytes"},
		{Name: "hot_pct", Default: 25, Min: 0, Max: 100, Desc: "percent of hops landing in the hot 8KB window"},
	},
	Check: func(p map[string]int) error { return mustBytes("footprint", p["footprint"]) },
	Build: func(p map[string]int, sc Scale) *compiler.Benchmark {
		a := newArena()
		iters := sc.div(p["n"], 2048)
		idx := a.alloc("chase_idx", iters*8)
		pool := a.alloc("chase_pool", p["footprint"])
		refs := []compiler.Ref{
			{Name: "idx", Array: idx, Pattern: compiler.Strided},
			{Name: "node", Array: pool, Pattern: compiler.Random, MayAliasSPM: true,
				HotFraction: float64(p["hot_pct"]) / 100, HotBytes: 8 << 10},
		}
		return &compiler.Benchmark{
			Name: "ptrchase", Repeats: 2, Arrays: []*compiler.Array{idx, pool},
			Kernels: []compiler.Kernel{{Name: "chase", Iters: iters, ComputeOps: 4, Refs: refs}},
		}
	},
}

// transposeEntry reads a matrix row-major (unit stride, DMA'd into SPMs)
// and writes it column-major: the store stream hops a full row per element
// and wraps per column (Ref.Stride), so it is not an SPM candidate and
// exercises the worst-case cache line utilization on the write path.
var transposeEntry = Entry{
	Name: "transpose",
	Desc: "matrix transpose: unit-stride reads via SPM, column-major strided writes via cache",
	Params: []ParamSpec{
		{Name: "rows", Default: 256, Min: 8, Max: 4096, Desc: "matrix rows (the write stride in elements)"},
		{Name: "cols", Default: 256, Min: 8, Max: 4096, Desc: "matrix columns"},
	},
	Build: func(p map[string]int, sc Scale) *compiler.Benchmark {
		a := newArena()
		rows := sc.div(p["rows"], 8) // scale one dimension; the traversal shape survives
		cols := p["cols"]
		iters := rows * cols
		in := a.alloc("tr_in", iters*8)
		out := a.alloc("tr_out", iters*8)
		refs := []compiler.Ref{
			{Name: "in", Array: in, Pattern: compiler.Strided},
			{Name: "out", Array: out, Pattern: compiler.Strided, Stride: rows * 8, IsWrite: true},
		}
		return &compiler.Benchmark{
			Name: "transpose", Repeats: 2, Arrays: []*compiler.Array{in, out},
			Kernels: []compiler.Kernel{{Name: "transpose", Iters: iters, ComputeOps: 2, Refs: refs}},
		}
	},
}

// reduceEntry is a fan-in reduction tree: each level reads `fanin` input
// sections and writes one output a fanin-th the size, so the kernels shrink
// geometrically and the barrier/sync share of the runtime grows with depth
// — the phase profile the NAS kernels never reach.
var reduceEntry = Entry{
	Name: "reduce",
	Desc: "fan-in reduction tree: geometrically shrinking kernels, sync-dominated tail",
	Params: []ParamSpec{
		{Name: "n", Default: 65536, Min: 1024, Max: 1 << 22, Desc: "leaf elements"},
		{Name: "fanin", Default: 2, Min: 2, Max: 16, Desc: "tree arity"},
	},
	Build: func(p map[string]int, sc Scale) *compiler.Benchmark {
		a := newArena()
		fanin := p["fanin"]
		// Depth derives from the UNSCALED width so the kernel signature is
		// scale-invariant; per-level iteration counts then scale down.
		const maxDepth = 8
		depth := 0
		for w := p["n"]; w > 1 && depth < maxDepth; w /= fanin {
			depth++
		}
		var kernels []compiler.Kernel
		var arrs []*compiler.Array
		width := p["n"]
		for level := 0; level < depth; level++ {
			width /= fanin
			if width < 1 {
				width = 1
			}
			iters := sc.div(width, 16)
			var refs []compiler.Ref
			for f := 0; f < fanin; f++ {
				arr := a.alloc(fmt.Sprintf("red_l%d_s%d", level, f), iters*8)
				arrs = append(arrs, arr)
				refs = append(refs, compiler.Ref{Name: arr.Name, Array: arr, Pattern: compiler.Strided})
			}
			out := a.alloc(fmt.Sprintf("red_l%d_out", level), iters*8)
			arrs = append(arrs, out)
			refs = append(refs, compiler.Ref{Name: "out", Array: out, Pattern: compiler.Strided, IsWrite: true})
			kernels = append(kernels, compiler.Kernel{
				Name: fmt.Sprintf("red%d", level), Iters: iters, ComputeOps: 2 * fanin, Refs: refs,
			})
		}
		return &compiler.Benchmark{Name: "reduce", Repeats: 2, Arrays: arrs, Kernels: kernels}
	},
}

// gupsEntry is the GUPS-style random-access probe: guarded read-modify-
// write updates spread uniformly over a table, the lowest-locality guarded
// pattern expressible — the floor of the protocol filter's hit ratio.
var gupsEntry = Entry{
	Name: "gups",
	Desc: "GUPS-style uniform random updates: the protocol filter's worst case",
	Params: []ParamSpec{
		{Name: "n", Default: 131072, Min: 2048, Max: 1 << 22, Desc: "random updates"},
		{Name: "table", Default: 2 << 20, Min: 4096, Max: 1 << 28, Desc: "update table bytes"},
	},
	Check: func(p map[string]int) error { return mustBytes("table", p["table"]) },
	Build: func(p map[string]int, sc Scale) *compiler.Benchmark {
		a := newArena()
		iters := sc.div(p["n"], 2048)
		idx := a.alloc("gups_idx", iters*8)
		table := a.alloc("gups_tab", p["table"])
		refs := []compiler.Ref{
			{Name: "idx", Array: idx, Pattern: compiler.Strided},
			{Name: "upd_ld", Array: table, Pattern: compiler.Random, MayAliasSPM: true},
			{Name: "upd_st", Array: table, Pattern: compiler.Random, MayAliasSPM: true, IsWrite: true},
		}
		return &compiler.Benchmark{
			Name: "gups", Repeats: 2, Arrays: []*compiler.Array{idx, table},
			Kernels: []compiler.Kernel{{Name: "update", Iters: iters, ComputeOps: 4, Refs: refs}},
		}
	},
}
