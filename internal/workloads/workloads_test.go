package workloads

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/isa"
)

// TestTable2Signatures pins each benchmark to its Table 2 row: kernel count,
// SPM reference count, guarded reference count.
func TestTable2Signatures(t *testing.T) {
	want := map[string]struct{ kernels, spmRefs, guardedRefs int }{
		"CG": {1, 5, 1},
		"EP": {2, 3, 1},
		"FT": {5, 32, 4},
		"IS": {1, 3, 2},
		"MG": {3, 59, 6},
		"SP": {54, 497, 0},
	}
	for _, name := range NAS() {
		b := Build(name, Small)
		c := compiler.Characterize(b)
		w := want[name]
		if c.Kernels != w.kernels {
			t.Errorf("%s kernels = %d, want %d", name, c.Kernels, w.kernels)
		}
		if c.SPMRefs != w.spmRefs {
			t.Errorf("%s SPM refs = %d, want %d", name, c.SPMRefs, w.spmRefs)
		}
		if c.GuardedRefs != w.guardedRefs {
			t.Errorf("%s guarded refs = %d, want %d", name, c.GuardedRefs, w.guardedRefs)
		}
	}
}

// TestDataSizeOrdering checks Table 2's qualitative size relations: the SPM
// data set dwarfs the guarded data set for every benchmark with guarded refs
// except EP (whose data sets are both small).
func TestDataSizeOrdering(t *testing.T) {
	for _, name := range []string{"CG", "FT", "IS", "MG"} {
		c := compiler.Characterize(Build(name, Small))
		if c.SPMBytes <= c.GuardBytes {
			t.Errorf("%s: SPM bytes %d <= guarded bytes %d", name, c.SPMBytes, c.GuardBytes)
		}
	}
	sp := compiler.Characterize(Build("SP", Small))
	if sp.GuardBytes != 0 {
		t.Errorf("SP guarded bytes = %d, want 0", sp.GuardBytes)
	}
	mg := compiler.Characterize(Build("MG", Small))
	if mg.GuardBytes != 64 {
		t.Errorf("MG guarded bytes = %d, want 64", mg.GuardBytes)
	}
}

// TestDisjointDataSets verifies the paper's observation that SPM-accessed
// and guarded-accessed data never overlap (though the compiler cannot prove
// it): guarded refs must target arrays no strided ref touches.
func TestDisjointDataSets(t *testing.T) {
	for _, name := range Names() {
		b := Build(name, Small)
		spmArrays := map[*compiler.Array]bool{}
		for ki := range b.Kernels {
			for ri := range b.Kernels[ki].Refs {
				r := &b.Kernels[ki].Refs[ri]
				if compiler.Classify(r) == compiler.ClassSPM {
					spmArrays[r.Array] = true
				}
			}
		}
		for ki := range b.Kernels {
			for ri := range b.Kernels[ki].Refs {
				r := &b.Kernels[ki].Refs[ri]
				if compiler.Classify(r) == compiler.ClassGuarded && spmArrays[r.Array] {
					t.Errorf("%s: guarded ref %s aliases an SPM-mapped array", name, r.Name)
				}
			}
		}
	}
}

// TestArraysDoNotOverlap validates the arena allocation.
func TestArraysDoNotOverlap(t *testing.T) {
	for _, name := range Names() {
		b := Build(name, Small)
		type span struct{ lo, hi uint64 }
		var spans []span
		for _, a := range b.Arrays {
			spans = append(spans, span{a.Base, a.Base + uint64(a.Size)})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					t.Fatalf("%s: arrays %d and %d overlap", name, i, j)
				}
			}
		}
	}
}

// TestArraysAreAligned verifies DMA chunk bases never straddle arrays.
func TestArraysAreAligned(t *testing.T) {
	for _, name := range Names() {
		for _, a := range Build(name, Small).Arrays {
			if a.Base%arenaAlign != 0 {
				t.Errorf("%s: array %s base %#x not %d-aligned", name, a.Name, a.Base, arenaAlign)
			}
		}
	}
}

// TestBuffersFitSPMDir ensures every kernel's buffer plan is feasible on the
// Table 1 machine (32KB SPM, 32 SPMDir entries).
func TestBuffersFitSPMDir(t *testing.T) {
	for _, name := range Names() {
		b := Build(name, Small)
		for ki := range b.Kernels {
			k := &b.Kernels[ki]
			plan, err := compiler.PlanBuffers(k, 32<<10, 32, 64)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, k.Name, err)
			}
			if plan.NumBuffers > 0 && plan.TileIters <= 0 {
				t.Fatalf("%s/%s: bad plan %+v", name, k.Name, plan)
			}
		}
	}
}

// TestGenerationWorksForAllBenchmarks smoke-tests lazy codegen end to end
// (tiny scale, 4 cores, both machine flavors).
func TestGenerationWorksForAllBenchmarks(t *testing.T) {
	for _, name := range Names() {
		for _, hybrid := range []bool{false, true} {
			b := Build(name, Tiny)
			opt := compiler.GenOptions{
				Cores: 4, Core: 1, Hybrid: hybrid,
				SPMSize: 32 << 10, SPMDirEntries: 32,
				SPMBase:   0xFFFF_0000_0000 + 32<<10,
				StackBase: 0x7F00_0000,
				Seed:      7,
			}
			p := compiler.Generate(b, opt)
			n := 0
			for {
				inst, ok := p.Next()
				if !ok {
					break
				}
				if inst.Kind.IsMemory() && inst.Addr == 0 {
					t.Fatalf("%s hybrid=%v: memory inst with nil address", name, hybrid)
				}
				n++
				if n > 50_000_000 {
					t.Fatalf("%s: runaway generator", name)
				}
			}
			if n == 0 {
				t.Fatalf("%s hybrid=%v: empty program", name, hybrid)
			}
		}
	}
}

// TestSPHasNoGuardedInstructions pins the SP property the paper leans on:
// with no guarded refs the protocol's filters are never exercised.
func TestSPHasNoGuardedInstructions(t *testing.T) {
	b := Build("SP", Tiny)
	opt := compiler.GenOptions{
		Cores: 4, Core: 0, Hybrid: true,
		SPMSize: 32 << 10, SPMDirEntries: 32,
		SPMBase: 0xFFFF_0000_0000, StackBase: 0x7F00_0000, Seed: 1,
	}
	p := compiler.Generate(b, opt)
	for {
		inst, ok := p.Next()
		if !ok {
			return
		}
		if inst.Kind == isa.GuardedLoad || inst.Kind == isa.GuardedStore {
			t.Fatal("SP emitted a guarded instruction")
		}
	}
}

func TestUnknownBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown name did not panic")
		}
	}()
	Build("LU", Small)
}

func TestAllCoversTheRegistry(t *testing.T) {
	if got := len(All(Tiny)); got != len(Names()) {
		t.Fatalf("All = %d benchmarks, registry has %d", got, len(Names()))
	}
	if got := len(NAS()); got != 6 {
		t.Fatalf("NAS = %d kernels, want the paper's 6", got)
	}
}

func TestTinySmallerThanSmall(t *testing.T) {
	for _, name := range Names() {
		tiny := compiler.Characterize(Build(name, Tiny))
		small := compiler.Characterize(Build(name, Small))
		if tiny.SPMBytes >= small.SPMBytes {
			t.Errorf("%s: tiny footprint %d >= small %d", name, tiny.SPMBytes, small.SPMBytes)
		}
		// Signatures must be scale-invariant.
		if tiny.SPMRefs != small.SPMRefs || tiny.GuardedRefs != small.GuardedRefs {
			t.Errorf("%s: ref signature changed with scale", name)
		}
	}
}
