package workloads

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/compiler"
)

// TestEveryRegisteredNameBuildsAtEveryScale is the registry drift guard:
// Names(), Build and Spec validation all derive from one table, so every
// registered workload must build a structurally sane benchmark at every
// Scale with its default parameters.
func TestEveryRegisteredNameBuildsAtEveryScale(t *testing.T) {
	for _, name := range Names() {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("Names() lists %q but Lookup misses it", name)
		}
		if e.Desc == "" {
			t.Errorf("%s: empty catalog description", name)
		}
		for _, sc := range []Scale{Tiny, Small} {
			b, err := BuildSpec(name, nil, sc)
			if err != nil {
				t.Fatalf("%s at %s: %v", name, sc, err)
			}
			if len(b.Kernels) == 0 || b.Repeats <= 0 {
				t.Fatalf("%s at %s: degenerate benchmark %+v", name, sc, b)
			}
			for _, k := range b.Kernels {
				if k.Iters <= 0 || len(k.Refs) == 0 {
					t.Fatalf("%s/%s at %s: degenerate kernel", name, k.Name, sc)
				}
				// Every kernel's buffer plan must be feasible on the
				// Table 1 machine (32KB SPM, 32 SPMDir entries).
				if _, err := compiler.PlanBuffers(&k, 32<<10, 32, 64); err != nil {
					t.Fatalf("%s/%s at %s: %v", name, k.Name, sc, err)
				}
			}
		}
	}
}

// TestDeterministicBuild pins cache-key safety for every generator: two
// Build calls with identical params and Scale must yield byte-identical
// benchmark structure (arrays, kernels, refs, every field) — the property
// that makes Results a pure function of the Spec and memoization sound.
func TestDeterministicBuild(t *testing.T) {
	// Cover defaults and, for every parameterized entry, a non-default
	// assignment of its first parameter.
	for _, e := range Entries() {
		assignments := []map[string]int{nil}
		if len(e.Params) > 0 {
			ps := e.Params[0]
			v := ps.Default * 2
			if ps.Max > 0 && v > ps.Max {
				v = ps.Max
			}
			assignments = append(assignments, map[string]int{ps.Name: v})
		}
		for _, p := range assignments {
			for _, sc := range []Scale{Tiny, Small} {
				a, err := BuildSpec(e.Name, p, sc)
				if err != nil {
					t.Fatalf("%s %v at %s: %v", e.Name, p, sc, err)
				}
				b, err := BuildSpec(e.Name, p, sc)
				if err != nil {
					t.Fatalf("%s %v at %s (second build): %v", e.Name, p, sc, err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s %v at %s: two builds differ:\n%+v\n%+v", e.Name, p, sc, a, b)
				}
			}
		}
	}
}

// TestSyntheticsAreScaleInvariantInSignature extends the NAS property to
// the synthetic generators: Scale shrinks footprints, never the reference
// signature (kernel and ref counts) the exhibits and buffer plans key on.
func TestSyntheticsAreScaleInvariantInSignature(t *testing.T) {
	for _, name := range Names() {
		tiny := compiler.Characterize(Build(name, Tiny))
		small := compiler.Characterize(Build(name, Small))
		if tiny.Kernels != small.Kernels || tiny.SPMRefs != small.SPMRefs ||
			tiny.GuardedRefs != small.GuardedRefs {
			t.Errorf("%s: signature changed with scale: %+v vs %+v", name, tiny, small)
		}
	}
}

func TestParseWorkload(t *testing.T) {
	name, p, err := ParseWorkload("stream:stride=128,n=4096")
	if err != nil {
		t.Fatal(err)
	}
	if name != "stream" || p["stride"] != 128 || p["n"] != 4096 {
		t.Fatalf("parsed %s %v", name, p)
	}
	if got := FormatWorkload(name, p); got != "stream:n=4096,stride=128" {
		t.Fatalf("FormatWorkload = %q, want declaration order", got)
	}
	name, p, err = ParseWorkload("CG")
	if err != nil || name != "CG" || len(p) != 0 {
		t.Fatalf("bare name: %s %v %v", name, p, err)
	}
	for _, bad := range []string{
		"",                      // empty
		"LU",                    // unknown workload
		"stream:warp=1",         // undeclared parameter
		"stream:stride",         // missing value
		"stream:stride=x",       // bad value
		"stream:stride=4",       // below minimum
		"stream:stride=12",      // not a multiple of 8 (cross-param Check)
		"stream:streams=999",    // above maximum
		"CG:iters=10",           // NAS kernels declare no parameters
		"ptrchase:hot_pct=-1",   // below minimum
		"ptrchase:footprint=12", // not 8-aligned
	} {
		if _, _, err := ParseWorkload(bad); err == nil {
			t.Errorf("ParseWorkload accepted %q", bad)
		}
	}
}

func TestParseParamValueSuffixes(t *testing.T) {
	cases := map[string]int{
		"4096": 4096, "64k": 64 << 10, "2M": 2 << 20, "1g": 1 << 30, "1e6": 1_000_000,
	}
	for in, want := range cases {
		got, err := ParseParamValue(in)
		if err != nil || got != want {
			t.Errorf("ParseParamValue(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "1.5", "1e99", "4kk"} {
		if _, err := ParseParamValue(bad); err == nil {
			t.Errorf("ParseParamValue accepted %q", bad)
		}
	}
}

// TestDiffParamsDropsDefaults: an explicitly-default parameter is the same
// run as an unset one — the normalization Key and Hash lean on.
func TestDiffParamsDropsDefaults(t *testing.T) {
	diff, err := DiffParams("stream", map[string]int{"stride": 8, "n": 65536})
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 0 {
		t.Fatalf("explicit defaults diffed: %v", diff)
	}
	diff, err = DiffParams("stream", map[string]int{"stride": 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 1 || diff[0] != (ParamValue{Name: "stride", Value: 128}) {
		t.Fatalf("diff = %v", diff)
	}
}

// TestStreamStrideOpensTheGMRegime: at unit stride every stream is an SPM
// candidate; at a wider stride the compiler keeps them all out of the SPMs
// — the new scenario axis the generator exists for.
func TestStreamStrideOpensTheGMRegime(t *testing.T) {
	dense, err := BuildSpec("stream", nil, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if c := compiler.Characterize(dense); c.SPMRefs != 3 {
		t.Fatalf("dense stream SPM refs = %d, want 3", c.SPMRefs)
	}
	wide, err := BuildSpec("stream", map[string]int{"stride": 128}, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if c := compiler.Characterize(wide); c.SPMRefs != 0 {
		t.Fatalf("strided stream SPM refs = %d, want 0 (GM regime)", c.SPMRefs)
	}
}

// TestParamsReachTheBenchmark: a parameter override must change the built
// structure, not just the name it is filed under.
func TestParamsReachTheBenchmark(t *testing.T) {
	small, err := BuildSpec("gups", map[string]int{"table": 4096}, Small)
	if err != nil {
		t.Fatal(err)
	}
	big, err := BuildSpec("gups", map[string]int{"table": 1 << 24}, Small)
	if err != nil {
		t.Fatal(err)
	}
	sizeOf := func(b *compiler.Benchmark) int {
		for _, a := range b.Arrays {
			if strings.Contains(a.Name, "tab") {
				return a.Size
			}
		}
		return 0
	}
	if sizeOf(small) != 4096 || sizeOf(big) != 1<<24 {
		t.Fatalf("table param did not reach the arrays: %d vs %d", sizeOf(small), sizeOf(big))
	}
}
