package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
)

// rig builds a small 4-core hierarchy.
type rig struct {
	eng  *sim.Engine
	mesh *noc.Mesh
	dram *mem.System
	h    *Hierarchy
	cfg  config.Config
}

func newRig(t testing.TB) *rig {
	cfg := config.SmallTest()
	eng := sim.NewEngine()
	mesh := noc.New(eng, cfg.MeshWidth, cfg.MeshHeight, cfg.FlitBytes, cfg.LinkLatency, cfg.RouterLatency)
	dram := mem.NewSystem(eng, []int{0}, cfg.LineSize, cfg.MemLatency, cfg.MemCyclesPerLn)
	return &rig{eng: eng, mesh: mesh, dram: dram, h: New(eng, cfg, mesh, dram), cfg: cfg}
}

// Cont-wrapping helpers so test closures stay readable.
func (r *rig) read(c int, a, pc uint64, done func()) { r.h.Read(c, a, pc, sim.AsCont(done)) }

func (r *rig) write(c int, a, pc uint64, done func()) { r.h.Write(c, a, pc, sim.AsCont(done)) }

func (r *rig) ifetch(c int, pc uint64, done func()) { r.h.IFetch(c, pc, sim.AsCont(done)) }

func (r *rig) dmaRead(c int, line uint64, done func()) { r.h.DMARead(c, line, sim.AsCont(done)) }

func (r *rig) dmaWrite(c int, line uint64, done func()) { r.h.DMAWrite(c, line, sim.AsCont(done)) }

// addr returns a byte address within a distinct line.
func addr(line uint64) uint64 { return line << 6 }

func (r *rig) drain(t testing.TB) {
	r.eng.Run()
	if err := r.h.CheckInvariants(); err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
}

func TestColdReadFetchesFromMemory(t *testing.T) {
	r := newRig(t)
	done := false
	r.read(1, addr(100), 0x40, func() { done = true })
	r.drain(t)
	if !done {
		t.Fatal("read never completed")
	}
	if r.h.Stats().Get("dram.reads") != 1 {
		t.Fatalf("dram.reads = %d, want 1", r.h.Stats().Get("dram.reads"))
	}
	// First reader gets a clean-exclusive grant.
	if st := r.h.L1State(1, 100); st != StateE {
		t.Fatalf("L1 state = %d, want E(%d)", st, StateE)
	}
	if r.h.DirOwner(100) != 1 {
		t.Fatalf("dir owner = %d, want 1", r.h.DirOwner(100))
	}
}

func TestSecondReadHitsL1(t *testing.T) {
	r := newRig(t)
	reads := 0
	r.read(0, addr(7), 0x40, func() {
		reads++
		r.read(0, addr(7), 0x40, func() { reads++ })
	})
	r.drain(t)
	if reads != 2 {
		t.Fatalf("reads completed = %d", reads)
	}
	if got := r.h.Stats().Get("dram.reads"); got != 1 {
		t.Fatalf("dram.reads = %d, want 1 (second read must hit L1)", got)
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	r := newRig(t)
	r.read(2, addr(9), 0x40, func() {
		// E state: the store must not generate any new traffic.
		pktsBefore := r.mesh.TotalPackets()
		r.write(2, addr(9), 0x44, func() {
			if r.mesh.TotalPackets() != pktsBefore {
				t.Errorf("silent E->M upgrade generated traffic")
			}
		})
	})
	r.drain(t)
	if st := r.h.L1State(2, 9); st != StateM {
		t.Fatalf("state after store = %d, want M", st)
	}
}

func TestReadSharingDowngradesOwner(t *testing.T) {
	r := newRig(t)
	r.write(0, addr(5), 0x40, func() {
		r.read(1, addr(5), 0x44, func() {})
	})
	r.drain(t)
	if st := r.h.L1State(0, 5); st != StateS {
		t.Fatalf("old owner state = %d, want S", st)
	}
	if st := r.h.L1State(1, 5); st != StateS {
		t.Fatalf("reader state = %d, want S", st)
	}
	if r.h.DirOwner(5) != -1 {
		t.Fatalf("owner = %d, want -1", r.h.DirOwner(5))
	}
	if sh := r.h.DirSharers(5); sh != 0b11 {
		t.Fatalf("sharers = %b, want 11", sh)
	}
	if r.h.Stats().Get("dir.fwd_gets") != 1 {
		t.Fatal("expected a forwarded GetS")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	r := newRig(t)
	// Three cores read, then core 3 writes.
	n := 0
	read := func(c int, next func()) func() {
		return func() {
			r.read(c, addr(5), 0x40, func() { n++; next() })
		}
	}
	read(0, read(1, read(2, func() {
		r.write(3, addr(5), 0x50, func() { n++ })
	})))()
	r.drain(t)
	if n != 4 {
		t.Fatalf("completed = %d, want 4", n)
	}
	for c := 0; c < 3; c++ {
		if st := r.h.L1State(c, 5); st != cache.Invalid {
			t.Fatalf("core %d state = %d, want invalid", c, st)
		}
	}
	if st := r.h.L1State(3, 5); st != StateM {
		t.Fatalf("writer state = %d, want M", st)
	}
	if r.h.DirOwner(5) != 3 {
		t.Fatalf("dir owner = %d, want 3", r.h.DirOwner(5))
	}
}

func TestOwnershipTransferOnWrite(t *testing.T) {
	r := newRig(t)
	r.write(0, addr(11), 0x40, func() {
		r.write(1, addr(11), 0x44, func() {})
	})
	r.drain(t)
	if st := r.h.L1State(0, 11); st != cache.Invalid {
		t.Fatalf("old owner state = %d, want invalid", st)
	}
	if st := r.h.L1State(1, 11); st != StateM {
		t.Fatalf("new owner state = %d, want M", st)
	}
	if r.h.Stats().Get("dir.fwd_getm") != 1 {
		t.Fatal("expected a forwarded GetM")
	}
}

func TestUpgradeFromShared(t *testing.T) {
	r := newRig(t)
	// Core 0 and 1 read (S), core 0 upgrades with a store.
	r.read(0, addr(20), 0x40, func() {
		r.read(1, addr(20), 0x44, func() {
			r.write(0, addr(20), 0x48, func() {})
		})
	})
	r.drain(t)
	if st := r.h.L1State(0, 20); st != StateM {
		t.Fatalf("upgrader state = %d, want M", st)
	}
	if st := r.h.L1State(1, 20); st != cache.Invalid {
		t.Fatalf("other sharer state = %d, want invalid", st)
	}
	if r.h.Stats().Get("l1d.upgrades") == 0 {
		t.Fatal("upgrade path not exercised")
	}
}

func TestMSHRCoalescing(t *testing.T) {
	r := newRig(t)
	n := 0
	// Two reads to the same line issued back to back: one memory fetch.
	r.read(0, addr(33), 0x40, func() { n++ })
	r.read(0, addr(33)+8, 0x44, func() { n++ })
	r.drain(t)
	if n != 2 {
		t.Fatalf("completed = %d", n)
	}
	if got := r.h.Stats().Get("dram.reads"); got != 1 {
		t.Fatalf("dram.reads = %d, want 1 (secondary miss must coalesce)", got)
	}
}

func TestCoalescedReadThenWriteGetsM(t *testing.T) {
	r := newRig(t)
	r.read(0, addr(42), 0x40, func() {})
	r.write(0, addr(42)+8, 0x44, func() {})
	r.drain(t)
	if st := r.h.L1State(0, 42); st != StateM {
		t.Fatalf("state = %d, want M (write coalesced onto read miss)", st)
	}
}

func TestIFetchSharedOnly(t *testing.T) {
	r := newRig(t)
	r.ifetch(0, addr(70), func() {})
	r.ifetch(1, addr(70), func() {})
	r.drain(t)
	if r.h.DirOwner(70) != -1 {
		t.Fatalf("ifetch created an owner: %d", r.h.DirOwner(70))
	}
	if sh := r.h.DirSharers(70); sh != 0b11 {
		t.Fatalf("ifetch sharers = %b, want 11", sh)
	}
	if got := r.h.Stats().Get("l1i.accesses"); got != 2 {
		t.Fatalf("l1i.accesses = %d", got)
	}
}

func TestIFetchHit(t *testing.T) {
	r := newRig(t)
	r.ifetch(0, addr(70), func() {
		r.ifetch(0, addr(70)+4, func() {})
	})
	r.drain(t)
	if got := r.h.Stats().Get("l1i.misses"); got != 1 {
		t.Fatalf("l1i.misses = %d, want 1", got)
	}
}

func TestDMAReadSnoopsDirtyWithoutInvalidating(t *testing.T) {
	r := newRig(t)
	r.write(0, addr(50), 0x40, func() {
		r.dmaRead(2, 50, func() {})
	})
	r.drain(t)
	if st := r.h.L1State(0, 50); st != StateM {
		t.Fatalf("owner state after dma-get = %d, want M (non-invalidating snoop)", st)
	}
	if r.h.Stats().Get("dma.snoops") != 1 {
		t.Fatal("dma-get did not snoop the owner")
	}
}

func TestDMAReadFromMemory(t *testing.T) {
	r := newRig(t)
	done := false
	r.dmaRead(1, 60, func() { done = true })
	r.drain(t)
	if !done {
		t.Fatal("dma read never completed")
	}
	if r.h.Stats().Get("dram.reads") != 1 {
		t.Fatalf("dram.reads = %d", r.h.Stats().Get("dram.reads"))
	}
}

func TestDMAWriteInvalidatesEverywhere(t *testing.T) {
	r := newRig(t)
	// Two sharers + dirty L2 copy, then dma-put.
	r.read(0, addr(80), 0x40, func() {
		r.read(1, addr(80), 0x44, func() {
			r.dmaWrite(2, 80, func() {})
		})
	})
	r.drain(t)
	for c := 0; c < 2; c++ {
		if st := r.h.L1State(c, 80); st != cache.Invalid {
			t.Fatalf("core %d still caches line after dma-put (state %d)", c, st)
		}
	}
	if r.h.DirOwner(80) != -1 || r.h.DirSharers(80) != 0 {
		t.Fatal("directory not cleared by dma-put")
	}
	if r.h.Stats().Get("dram.writes") == 0 {
		t.Fatal("dma-put did not write memory")
	}
}

func TestDMAWriteUncachedLine(t *testing.T) {
	r := newRig(t)
	done := false
	r.dmaWrite(3, 90, func() { done = true })
	r.drain(t)
	if !done {
		t.Fatal("dma write never completed")
	}
	if r.h.Stats().Get("dram.writes") != 1 {
		t.Fatalf("dram.writes = %d", r.h.Stats().Get("dram.writes"))
	}
}

func TestEvictionWritesBackDirtyLine(t *testing.T) {
	r := newRig(t)
	// SmallTest L1D: 4KB 4-way 64B = 16 sets. Find 5 lines that collide
	// in one (hashed) set to force an M eviction.
	probe := cache.NewArray(r.cfg.L1DSize, r.cfg.L1DAssoc, r.cfg.LineSize)
	target := probe.SetOf(0)
	var lines []uint64
	for la := uint64(0); la < 4096 && len(lines) < 5; la++ {
		if probe.SetOf(la) == target {
			lines = append(lines, la)
		}
	}
	n := 0
	var chain func(i int)
	chain = func(i int) {
		if i == 5 {
			return
		}
		// Distinct PCs so the stride prefetcher stays quiet.
		r.write(0, addr(lines[i]), uint64(0x40+8*i), func() { n++; chain(i + 1) })
	}
	chain(0)
	r.drain(t)
	if n != 5 {
		t.Fatalf("writes completed = %d", n)
	}
	if got := r.h.Stats().Get("l1.writebacks"); got != 1 {
		t.Fatalf("l1.writebacks = %d, want 1", got)
	}
}

func TestTLBMissPenalty(t *testing.T) {
	r := newRig(t)
	var first, second sim.Time
	r.read(0, 0x100000, 0x40, func() {
		first = r.eng.Now()
		// Same page: TLB hit, same line: L1 hit.
		start := r.eng.Now()
		r.read(0, 0x100008, 0x44, func() { second = r.eng.Now() - start })
	})
	r.drain(t)
	if r.h.Stats().Get("tlb.misses") != 1 {
		t.Fatalf("tlb.misses = %d, want 1", r.h.Stats().Get("tlb.misses"))
	}
	if second != sim.Time(r.cfg.L1DLatency) {
		t.Fatalf("TLB-hit L1-hit latency = %d, want %d", second, r.cfg.L1DLatency)
	}
	if first <= second {
		t.Fatal("first access (TLB miss + memory) not slower than L1 hit")
	}
}

func TestPrefetcherIssuesOnStrides(t *testing.T) {
	r := newRig(t)
	// Strided reads from one PC; prefetches should be issued.
	var step func(i int)
	step = func(i int) {
		if i == 12 {
			return
		}
		r.read(0, addr(uint64(200+i)), 0x80, func() { step(i + 1) })
	}
	step(0)
	r.drain(t)
	if r.h.Stats().Get("prefetch.issued") == 0 {
		t.Fatal("no prefetches issued for strided stream")
	}
	if r.h.PrefetchesIssued() == 0 {
		t.Fatal("prefetcher counter empty")
	}
}

func TestReadTrafficCategorized(t *testing.T) {
	r := newRig(t)
	r.read(1, addr(300), 0x40, func() {})
	r.drain(t)
	if r.mesh.Packets(noc.Read) == 0 {
		t.Fatal("read generated no Read-category packets")
	}
	if r.mesh.Packets(noc.DMA) != 0 {
		t.Fatal("read generated DMA-category packets")
	}
}

func TestConcurrentWritersSerialize(t *testing.T) {
	r := newRig(t)
	n := 0
	for c := 0; c < 4; c++ {
		r.write(c, addr(500), uint64(0x40+4*c), func() { n++ })
	}
	r.drain(t)
	if n != 4 {
		t.Fatalf("completed = %d, want 4", n)
	}
	owner := r.h.DirOwner(500)
	if owner < 0 {
		t.Fatal("no final owner")
	}
	if st := r.h.L1State(owner, 500); st != StateM {
		t.Fatalf("final owner state = %d, want M", st)
	}
	m := 0
	for c := 0; c < 4; c++ {
		if st := r.h.L1State(c, 500); st == StateM || st == StateE {
			m++
		}
	}
	if m != 1 {
		t.Fatalf("%d cores hold the line exclusively, want exactly 1", m)
	}
}

// Property: single-writer-multiple-reader invariant holds after arbitrary
// interleavings of reads/writes from random cores to a small line pool.
func TestSWMRProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		r := newRig(t)
		for _, op := range ops {
			core := int(op) % 4
			line := uint64(op>>2) % 8
			write := op&0x8000 != 0
			if write {
				r.write(core, addr(line), uint64(op), func() {})
			} else {
				r.read(core, addr(line), uint64(op), func() {})
			}
		}
		r.eng.Run()
		if err := r.h.CheckInvariants(); err != nil {
			t.Logf("invariant: %v", err)
			return false
		}
		// SWMR: for every line, at most one M/E holder; M/E excludes S.
		for line := uint64(0); line < 8; line++ {
			excl, shared := 0, 0
			for c := 0; c < 4; c++ {
				switch r.h.L1State(c, line) {
				case StateM, StateE:
					excl++
				case StateS:
					shared++
				}
			}
			if excl > 1 || (excl == 1 && shared > 0) {
				t.Logf("line %d: excl=%d shared=%d", line, excl, shared)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every access eventually completes (no lost events/deadlocks),
// including DMA operations racing with demand traffic.
func TestCompletionProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		r := newRig(t)
		want, got := 0, 0
		for _, op := range ops {
			core := int(op) % 4
			line := uint64(op>>2) % 6
			want++
			switch (op >> 13) % 4 {
			case 0:
				r.read(core, addr(line), uint64(op), func() { got++ })
			case 1:
				r.write(core, addr(line), uint64(op), func() { got++ })
			case 2:
				r.dmaRead(core, line, func() { got++ })
			case 3:
				r.dmaWrite(core, line, func() { got++ })
			}
		}
		r.eng.Run()
		if err := r.h.CheckInvariants(); err != nil {
			t.Logf("invariant: %v", err)
			return false
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
