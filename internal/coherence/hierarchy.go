// Package coherence implements the coherent global-memory (GM) hierarchy of
// the simulated manycore: per-core L1 I/D caches, a shared NUCA L2 sliced
// across cores, and a distributed directory running a MOESI-style
// invalidation protocol with blocking (transient) states. It also provides
// the DMA hooks the hybrid memory system needs: dma-get snoops dirty data
// out of caches without invalidating, dma-put writes memory and invalidates
// every cached copy (paper §2.1).
//
// Protocol notes. L1 lines are I/S/E/M; the home directory tracks, per line,
// an exclusive owner (E/M in some L1) or a sharer set (S copies), and
// serializes transactions with a busy bit + wait queue, which is how the
// "blocking states" of Table 1 appear in an event-driven model. Dirty data
// moves L1→L2 on downgrades and L2→DRAM on L2 evictions, so memory is always
// valid when no owner exists. The directory is sized like Table 1 (64K
// entries — enough to track every line the L1s can hold), so
// directory-capacity recalls never fire and are not modelled.
package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/stats"
)

// L1 line states (cache.Invalid == 0 means not present).
const (
	StateS int8 = 1 // shared, clean
	StateE int8 = 2 // exclusive, clean
	StateM int8 = 3 // modified
)

// Message sizes on the NoC in bytes.
const (
	ctrlBytes = 8
	dataBytes = 72 // 64B line + header
)

// Hierarchy is the full coherent GM system for all cores.
type Hierarchy struct {
	eng  *sim.Engine
	cfg  config.Config
	mesh *noc.Mesh
	dram *mem.System

	lineShift uint
	pageShift uint

	l1d []*l1cache
	l1i []*l1cache
	tlb []*cache.Array

	slices []*l2slice

	set *stats.Set
}

// l1cache bundles one core's L1 array with its MSHRs and (for the D-cache)
// prefetcher.
type l1cache struct {
	arr  *cache.Array
	mshr *cache.MSHR
	pf   *cache.StridePrefetcher
}

// l2slice is one bank of the shared NUCA L2 plus its directory slice.
type l2slice struct {
	node int
	arr  *cache.Array
	dir  map[uint64]*dirEntry
}

// dirEntry is the directory state for one line. owner >= 0 means some L1
// holds the line in E or M; sharers is a bit-vector of S copies. busy
// serializes transactions; waiting holds deferred ones.
type dirEntry struct {
	sharers uint64
	owner   int
	busy    bool
	waiting []func()
}

func newDirEntry() *dirEntry { return &dirEntry{owner: -1} }

// New wires up the hierarchy over an existing mesh and DRAM system.
func New(eng *sim.Engine, cfg config.Config, mesh *noc.Mesh, dram *mem.System) *Hierarchy {
	h := &Hierarchy{
		eng:       eng,
		cfg:       cfg,
		mesh:      mesh,
		dram:      dram,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		pageShift: 12,
		set:       stats.NewSet("coherence"),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1d = append(h.l1d, &l1cache{
			arr:  cache.NewArray(cfg.L1DSize, cfg.L1DAssoc, cfg.LineSize),
			mshr: cache.NewMSHR(cfg.MSHREntries),
			pf:   cache.NewStridePrefetcher(cfg.PrefetchTableSz, cfg.PrefetchDegree, cfg.PrefetchDistance),
		})
		h.l1i = append(h.l1i, &l1cache{
			arr:  cache.NewArray(cfg.L1ISize, cfg.L1IAssoc, cfg.LineSize),
			mshr: cache.NewMSHR(cfg.MSHREntries),
		})
		h.tlb = append(h.tlb, cache.NewArray(cfg.TLBEntries*64, cfg.TLBEntries, 64))
		h.slices = append(h.slices, &l2slice{
			node: i,
			arr:  cache.NewArray(cfg.L2SliceSize, cfg.L2Assoc, cfg.LineSize),
			dir:  make(map[uint64]*dirEntry),
		})
	}
	return h
}

// LineAddr converts a byte address to a line address.
func (h *Hierarchy) LineAddr(addr uint64) uint64 { return addr >> h.lineShift }

// LineShift exposes log2(line size).
func (h *Hierarchy) LineShift() uint { return h.lineShift }

// homeOf returns the L2/directory slice owning a line (static interleave).
func (h *Hierarchy) homeOf(line uint64) *l2slice {
	return h.slices[line%uint64(len(h.slices))]
}

// Stats returns the hierarchy's counter set.
func (h *Hierarchy) Stats() *stats.Set { return h.set }

// L1DHits aggregates L1D hit counts over all cores.
func (h *Hierarchy) L1DHits() uint64 {
	var t uint64
	for _, c := range h.l1d {
		t += c.arr.Hits()
	}
	return t
}

// L1DMisses aggregates L1D miss counts over all cores.
func (h *Hierarchy) L1DMisses() uint64 {
	var t uint64
	for _, c := range h.l1d {
		t += c.arr.Misses()
	}
	return t
}

// PrefetchesIssued aggregates prefetch counts over all cores.
func (h *Hierarchy) PrefetchesIssued() uint64 {
	var t uint64
	for _, c := range h.l1d {
		t += c.pf.Issued()
	}
	return t
}

// ---------------------------------------------------------------------------
// TLB

// tlbLookup charges TLB energy and returns the page-walk penalty (0 on hit).
// SPM accesses never call this: the range check bypasses the MMU (paper §2.1).
func (h *Hierarchy) tlbLookup(core int, addr uint64) sim.Time {
	h.set.Inc("tlb.accesses")
	page := addr >> h.pageShift
	t := h.tlb[core]
	if t.Lookup(page, true) != nil {
		return 0
	}
	h.set.Inc("tlb.misses")
	t.Insert(page, StateS)
	return sim.Time(h.cfg.TLBMissLat)
}

// ---------------------------------------------------------------------------
// CPU-facing API

// Read performs a coherent GM load for core at addr (instruction pc drives
// the prefetcher). done runs when the value is available.
func (h *Hierarchy) Read(core int, addr, pc uint64, done func()) {
	h.access(core, addr, pc, false, done)
}

// Write performs a coherent GM store.
func (h *Hierarchy) Write(core int, addr, pc uint64, done func()) {
	h.access(core, addr, pc, true, done)
}

// IFetch fetches one instruction-cache line.
func (h *Hierarchy) IFetch(core int, pc uint64, done func()) {
	line := h.LineAddr(pc)
	l1 := h.l1i[core]
	h.set.Inc("l1i.accesses")
	h.eng.Schedule(sim.Time(h.cfg.L1ILatency), func() {
		if l1.arr.Lookup(line, true) != nil {
			done()
			return
		}
		h.set.Inc("l1i.misses")
		if l1.mshr.Pending(line) {
			l1.mshr.AddWaiter(line, false, done)
			return
		}
		if !l1.mshr.Allocate(line, false, done) {
			h.eng.Schedule(4, func() { h.IFetch(core, pc, done) })
			return
		}
		// Instruction lines are fetched shared-only (allowE=false), so
		// the directory never records an L1I as exclusive owner.
		h.fetchShared(core, line, noc.Ifetch, false, func(bool) {
			h.fillArray(l1, core, line, StateS, false, noc.Ifetch)
			for _, w := range l1.mshr.Complete(line) {
				h.eng.Schedule(0, w)
			}
		})
	})
}

// access is the common demand-access path for the L1D.
func (h *Hierarchy) access(core int, addr, pc uint64, write bool, done func()) {
	line := h.LineAddr(addr)
	l1 := h.l1d[core]
	h.set.Inc("l1d.accesses")
	walk := h.tlbLookup(core, addr)

	h.eng.Schedule(walk+sim.Time(h.cfg.L1DLatency), func() {
		h.prefetch(core, pc, line)
		if l := l1.arr.Lookup(line, true); l != nil {
			if !write {
				done()
				return
			}
			switch l.State {
			case StateM:
				done()
				return
			case StateE:
				l.State = StateM
				l.Dirty = true
				done()
				return
			}
			// S: fall through to an upgrade transaction.
			h.set.Inc("l1d.upgrades")
		}
		h.miss(core, line, write, done)
	})
}

// miss coalesces into the MSHR file and issues the directory request.
func (h *Hierarchy) miss(core int, line uint64, write bool, done func()) {
	l1 := h.l1d[core]
	if l1.mshr.Pending(line) {
		l1.mshr.AddWaiter(line, write, done)
		return
	}
	if !l1.mshr.Allocate(line, write, done) {
		h.eng.Schedule(4, func() { h.miss(core, line, write, done) })
		return
	}
	h.issueFill(core, line)
}

// issueFill starts the coherence transaction for the MSHR entry of line.
// Write intent is re-read at completion so coalesced upgrades work.
func (h *Hierarchy) issueFill(core int, line uint64) {
	l1 := h.l1d[core]
	if l1.mshr.WantsWrite(line) {
		h.fetchExclusive(core, line, noc.Write, func() {
			h.finishFill(core, line, StateM)
		})
		return
	}
	h.fetchShared(core, line, noc.Read, true, func(exclusive bool) {
		if l1.mshr.WantsWrite(line) {
			if exclusive {
				// Granted E and a store coalesced in: silently M.
				h.finishFill(core, line, StateM)
				return
			}
			h.fetchExclusive(core, line, noc.Write, func() {
				h.finishFill(core, line, StateM)
			})
			return
		}
		if exclusive {
			h.finishFill(core, line, StateE)
		} else {
			h.finishFill(core, line, StateS)
		}
	})
}

func (h *Hierarchy) finishFill(core int, line uint64, state int8) {
	l1 := h.l1d[core]
	h.fillArray(l1, core, line, state, state == StateM, noc.WBRepl)
	for _, w := range l1.mshr.Complete(line) {
		h.eng.Schedule(0, w)
	}
}

// fillArray inserts or updates a line in an L1 array, handling the victim
// (write-back or replacement notice to its home directory).
func (h *Hierarchy) fillArray(l1 *l1cache, core int, line uint64, state int8, dirty bool, victimCat noc.Category) {
	if l := l1.arr.Peek(line); l != nil {
		// Upgrade in place (the line was present in S).
		l.State = state
		l.Dirty = l.Dirty || dirty
		return
	}
	ins, victim, evicted := l1.arr.Insert(line, state)
	ins.Dirty = dirty
	if !evicted {
		return
	}
	vline := victim.Tag
	home := h.homeOf(vline)
	switch victim.State {
	case StateM:
		h.set.Inc("l1.writebacks")
		h.mesh.Send(core, home.node, dataBytes, victimCat, func() {
			h.dirPutM(home, vline, core)
		})
	case StateE, StateS:
		h.set.Inc("l1.repl_notices")
		h.mesh.Send(core, home.node, ctrlBytes, victimCat, func() {
			h.dirPutS(home, vline, core)
		})
	}
}

// prefetch runs the stride engine and issues shared fetches for predicted
// lines. Prefetch traffic is categorized as Write per the paper's Fig. 10
// grouping ("data cache writes ... include prefetch requests").
func (h *Hierarchy) prefetch(core int, pc, line uint64) {
	l1 := h.l1d[core]
	// Prefetches may use at most 3/4 of the MSHR file; the rest is
	// reserved so demand misses are never starved.
	limit := h.cfg.MSHREntries * 3 / 4
	for _, pline := range l1.pf.Observe(pc, line) {
		pline := pline
		if l1.arr.Peek(pline) != nil || l1.mshr.Pending(pline) || l1.mshr.InFlight() >= limit {
			continue
		}
		h.set.Inc("prefetch.issued")
		l1.mshr.Allocate(pline, false, func() {})
		h.fetchShared(core, pline, noc.Write, true, func(exclusive bool) {
			st := StateS
			if exclusive {
				st = StateE
			}
			if l1.mshr.WantsWrite(pline) {
				// A demand store coalesced onto the prefetch.
				if exclusive {
					h.finishFill(core, pline, StateM)
					return
				}
				h.fetchExclusive(core, pline, noc.Write, func() {
					h.finishFill(core, pline, StateM)
				})
				return
			}
			h.finishFill(core, pline, st)
		})
	}
}

// ---------------------------------------------------------------------------
// Directory transactions

// fetchShared obtains a readable copy of line for core. done(exclusive)
// runs at the core once data arrives; exclusive reports an E grant (only
// possible when allowE and no other holder existed).
func (h *Hierarchy) fetchShared(core int, line uint64, cat noc.Category, allowE bool, done func(bool)) {
	home := h.homeOf(line)
	h.mesh.Send(core, home.node, ctrlBytes, cat, func() {
		h.dirGetS(home, core, line, cat, allowE, done)
	})
}

// fetchExclusive obtains a writable copy (or upgrade) of line for core.
func (h *Hierarchy) fetchExclusive(core int, line uint64, cat noc.Category, done func()) {
	home := h.homeOf(line)
	h.mesh.Send(core, home.node, ctrlBytes, cat, func() {
		h.dirGetM(home, core, line, cat, done)
	})
}

// dirEntryFor fetches or creates the directory entry.
func (s *l2slice) dirEntryFor(line uint64) *dirEntry {
	e, ok := s.dir[line]
	if !ok {
		e = newDirEntry()
		s.dir[line] = e
	}
	return e
}

// release unbusies the entry, runs the next queued transaction, and garbage
// collects empty entries.
func (h *Hierarchy) release(s *l2slice, line uint64) {
	e := s.dir[line]
	if e == nil {
		return
	}
	e.busy = false
	if len(e.waiting) > 0 {
		next := e.waiting[0]
		e.waiting = e.waiting[1:]
		h.eng.Schedule(0, func() {
			if e.busy {
				// Another transaction slipped in; requeue first.
				e.waiting = append([]func(){next}, e.waiting...)
				return
			}
			e.busy = true
			next()
		})
		return
	}
	if e.owner < 0 && e.sharers == 0 {
		delete(s.dir, line)
	}
}

// runOrQueue executes fn with the entry marked busy, or queues it if a
// transaction is already in flight. fn must eventually call release.
func (h *Hierarchy) runOrQueue(s *l2slice, line uint64, fn func()) {
	e := s.dirEntryFor(line)
	if e.busy {
		e.waiting = append(e.waiting, fn)
		return
	}
	e.busy = true
	fn()
}

// dirGetS handles a read request at the home slice.
func (h *Hierarchy) dirGetS(s *l2slice, req int, line uint64, cat noc.Category, allowE bool, done func(bool)) {
	h.runOrQueue(s, line, func() {
		h.set.Inc("l2.accesses")
		h.eng.Schedule(sim.Time(h.cfg.L2Latency), func() {
			e := s.dirEntryFor(line)
			switch {
			case e.owner >= 0 && e.owner != req:
				// Forward to owner: owner downgrades to S, sends
				// data to the requester and dirty data back here.
				owner := e.owner
				h.set.Inc("dir.fwd_gets")
				h.mesh.Send(s.node, owner, ctrlBytes, cat, func() {
					h.ownerDowngrade(owner, line)
					h.mesh.Send(owner, req, dataBytes, cat, func() {
						done(false)
					})
					h.mesh.Send(owner, s.node, dataBytes, noc.WBRepl, func() {
						h.l2Fill(s, line, true)
						e.owner = -1
						e.sharers |= 1<<uint(owner) | 1<<uint(req)
						h.release(s, line)
					})
				})

			case e.owner == req:
				// Requester re-requests a line it owns (stale
				// replacement raced with this request): confirm.
				h.mesh.Send(s.node, req, ctrlBytes, cat, func() { done(true) })
				h.release(s, line)

			default:
				if s.arr.Lookup(line, true) != nil {
					h.set.Inc("l2.hits")
					e.sharers |= 1 << uint(req)
					h.mesh.Send(s.node, req, dataBytes, cat, func() { done(false) })
					h.release(s, line)
					return
				}
				h.set.Inc("l2.misses")
				h.memFetch(s, line, cat, func() {
					e2 := s.dirEntryFor(line)
					h.l2Fill(s, line, false)
					if allowE && e2.sharers == 0 && e2.owner < 0 {
						e2.owner = req // clean-exclusive grant
						h.mesh.Send(s.node, req, dataBytes, cat, func() { done(true) })
					} else {
						e2.sharers |= 1 << uint(req)
						h.mesh.Send(s.node, req, dataBytes, cat, func() { done(false) })
					}
					h.release(s, line)
				})
			}
		})
	})
}

// dirGetM handles a write/upgrade request at the home slice.
func (h *Hierarchy) dirGetM(s *l2slice, req int, line uint64, cat noc.Category, done func()) {
	h.runOrQueue(s, line, func() {
		h.set.Inc("l2.accesses")
		h.eng.Schedule(sim.Time(h.cfg.L2Latency), func() {
			e := s.dirEntryFor(line)
			switch {
			case e.owner == req:
				h.mesh.Send(s.node, req, ctrlBytes, cat, done)
				h.release(s, line)

			case e.owner >= 0:
				// Ownership transfer: current owner invalidates
				// and sends data directly to the requester.
				owner := e.owner
				h.set.Inc("dir.fwd_getm")
				e.owner = req
				e.sharers = 0
				h.mesh.Send(s.node, owner, ctrlBytes, cat, func() {
					h.invalidateL1(owner, line)
					h.mesh.Send(owner, req, dataBytes, cat, func() {
						done()
						// Completion ack unblocks the entry.
						h.mesh.Send(req, s.node, ctrlBytes, noc.WBRepl, func() {
							h.release(s, line)
						})
					})
				})

			case e.sharers&^(1<<uint(req)) != 0:
				// Invalidate every other sharer, then grant.
				others := e.sharers &^ (1 << uint(req))
				pending := bits.OnesCount64(others)
				hadCopy := e.sharers&(1<<uint(req)) != 0
				h.set.Add("dir.invalidations", uint64(pending))
				for c := 0; c < h.cfg.Cores; c++ {
					if others&(1<<uint(c)) == 0 {
						continue
					}
					c := c
					h.mesh.Send(s.node, c, ctrlBytes, noc.WBRepl, func() {
						h.invalidateL1(c, line)
						h.mesh.Send(c, s.node, ctrlBytes, noc.WBRepl, func() {
							pending--
							if pending > 0 {
								return
							}
							e.owner = req
							e.sharers = 0
							h.grantM(s, req, line, cat, hadCopy, done)
						})
					})
				}

			case e.sharers&(1<<uint(req)) != 0:
				// Requester is the only sharer: upgrade in place.
				e.owner = req
				e.sharers = 0
				h.grantM(s, req, line, cat, true, done)

			default:
				// Nobody has it: serve from L2 or memory.
				if s.arr.Lookup(line, true) != nil {
					h.set.Inc("l2.hits")
					e.owner = req
					h.mesh.Send(s.node, req, dataBytes, cat, done)
					h.release(s, line)
					return
				}
				h.set.Inc("l2.misses")
				h.memFetch(s, line, cat, func() {
					h.l2Fill(s, line, false)
					e2 := s.dirEntryFor(line)
					e2.owner = req
					h.mesh.Send(s.node, req, dataBytes, cat, done)
					h.release(s, line)
				})
			}
		})
	})
}

// grantM sends write permission to req: a control message when it already
// holds the data (upgrade), the data itself otherwise.
func (h *Hierarchy) grantM(s *l2slice, req int, line uint64, cat noc.Category, hadCopy bool, done func()) {
	size := dataBytes
	if hadCopy {
		size = ctrlBytes
	}
	h.mesh.Send(s.node, req, size, cat, done)
	h.release(s, line)
}

// ownerDowngrade moves an L1 line from M/E to S at a forward-GetS.
func (h *Hierarchy) ownerDowngrade(core int, line uint64) {
	if l := h.l1d[core].arr.Peek(line); l != nil {
		l.State = StateS
		l.Dirty = false
	}
}

// invalidateL1 drops a line from a core's L1D.
func (h *Hierarchy) invalidateL1(core int, line uint64) {
	h.l1d[core].arr.Invalidate(line)
	h.set.Inc("l1.invalidations")
}

// dirPutM handles an M-line write-back from an evicting L1.
func (h *Hierarchy) dirPutM(s *l2slice, line uint64, core int) {
	h.runOrQueue(s, line, func() {
		e := s.dirEntryFor(line)
		if e.owner == core {
			e.owner = -1
			h.l2Fill(s, line, true)
		}
		// Stale PutM (ownership already moved on): drop silently.
		h.release(s, line)
	})
}

// dirPutS handles a clean replacement notice (S or E eviction).
func (h *Hierarchy) dirPutS(s *l2slice, line uint64, core int) {
	h.runOrQueue(s, line, func() {
		e := s.dirEntryFor(line)
		e.sharers &^= 1 << uint(core)
		if e.owner == core {
			e.owner = -1 // clean E eviction; memory/L2 already valid
		}
		h.release(s, line)
	})
}

// ---------------------------------------------------------------------------
// L2 / memory

// l2Fill inserts (or refreshes) a line in the L2 slice, spilling a dirty
// victim to DRAM.
func (h *Hierarchy) l2Fill(s *l2slice, line uint64, dirty bool) {
	if l := s.arr.Peek(line); l != nil {
		l.Dirty = l.Dirty || dirty
		return
	}
	ins, victim, evicted := s.arr.Insert(line, StateS)
	ins.Dirty = dirty
	if evicted && victim.Dirty {
		h.set.Inc("l2.writebacks")
		h.memWrite(s, victim.Tag, noc.WBRepl, nil)
	}
}

// memFetch reads a line from DRAM through the controller's mesh node.
func (h *Hierarchy) memFetch(s *l2slice, line uint64, cat noc.Category, done func()) {
	ctrl := h.dram.ControllerFor(line)
	node := h.dram.Node(ctrl)
	h.set.Inc("dram.reads")
	h.mesh.Send(s.node, node, ctrlBytes, cat, func() {
		h.dram.Controller(ctrl).Access(false, func() {
			h.mesh.Send(node, s.node, dataBytes, cat, done)
		})
	})
}

// memWrite pushes a dirty line to DRAM.
func (h *Hierarchy) memWrite(s *l2slice, line uint64, cat noc.Category, done func()) {
	ctrl := h.dram.ControllerFor(line)
	node := h.dram.Node(ctrl)
	h.set.Inc("dram.writes")
	h.mesh.Send(s.node, node, dataBytes, cat, func() {
		h.dram.Controller(ctrl).Access(true, func() {
			if done != nil {
				done()
			}
		})
	})
}

// ---------------------------------------------------------------------------
// DMA hooks (paper §2.1): used by the DMA controllers of the hybrid system.

// DMARead fetches one line on behalf of a dma-get issued by core. It snoops
// dirty data from an owning L1 without invalidating; otherwise it reads the
// L2 or memory. No cache is filled: the data goes to the SPM.
func (h *Hierarchy) DMARead(core int, line uint64, done func()) {
	home := h.homeOf(line)
	h.mesh.Send(core, home.node, ctrlBytes, noc.DMA, func() {
		h.runOrQueue(home, line, func() {
			h.set.Inc("l2.accesses")
			h.eng.Schedule(sim.Time(h.cfg.L2Latency), func() {
				e := home.dirEntryFor(line)
				if e.owner >= 0 && e.owner != core {
					owner := e.owner
					h.set.Inc("dma.snoops")
					h.mesh.Send(home.node, owner, ctrlBytes, noc.DMA, func() {
						// Owner supplies data and keeps its copy.
						h.mesh.Send(owner, core, dataBytes, noc.DMA, done)
						h.release(home, line)
					})
					return
				}
				if home.arr.Lookup(line, true) != nil {
					h.set.Inc("l2.hits")
					h.mesh.Send(home.node, core, dataBytes, noc.DMA, done)
					h.release(home, line)
					return
				}
				// L2 miss: fetch from memory and fill the L2 with
				// a clean copy. Re-traversals (iterative kernels
				// re-mapping the same read-only sections) then hit
				// the L2, matching the LLC residency the paper's
				// applications establish in their init phases.
				h.set.Inc("l2.misses")
				h.memFetch(home, line, noc.DMA, func() {
					h.l2Fill(home, line, false)
					h.mesh.Send(home.node, core, dataBytes, noc.DMA, done)
					h.release(home, line)
				})
			})
		})
	})
}

// DMAWrite writes one line of SPM data back to memory on behalf of a
// dma-put issued by core, invalidating the line everywhere in the cache
// hierarchy (paper §2.1).
func (h *Hierarchy) DMAWrite(core int, line uint64, done func()) {
	home := h.homeOf(line)
	h.mesh.Send(core, home.node, dataBytes, noc.DMA, func() {
		h.runOrQueue(home, line, func() {
			h.set.Inc("l2.accesses")
			h.eng.Schedule(sim.Time(h.cfg.L2Latency), func() {
				e := home.dirEntryFor(line)
				targets := e.sharers
				if e.owner >= 0 {
					targets |= 1 << uint(e.owner)
				}
				if h.l1d[core].arr.Peek(line) != nil {
					targets |= 1 << uint(core)
				}
				finish := func() {
					e.owner = -1
					e.sharers = 0
					home.arr.Invalidate(line)
					h.memWrite(home, line, noc.DMA, nil)
					h.mesh.Send(home.node, core, ctrlBytes, noc.DMA, done)
					h.release(home, line)
				}
				if targets == 0 {
					finish()
					return
				}
				pending := bits.OnesCount64(targets)
				h.set.Add("dma.invalidations", uint64(pending))
				for c := 0; c < h.cfg.Cores; c++ {
					if targets&(1<<uint(c)) == 0 {
						continue
					}
					c := c
					h.mesh.Send(home.node, c, ctrlBytes, noc.DMA, func() {
						h.invalidateL1(c, line)
						h.mesh.Send(c, home.node, ctrlBytes, noc.DMA, func() {
							pending--
							if pending == 0 {
								finish()
							}
						})
					})
				}
			})
		})
	})
}

// ---------------------------------------------------------------------------
// Introspection for tests

// L1State returns the state of a line in a core's L1D (cache.Invalid if
// absent).
func (h *Hierarchy) L1State(core int, line uint64) int8 {
	if l := h.l1d[core].arr.Peek(line); l != nil {
		return l.State
	}
	return cache.Invalid
}

// DirOwner returns the directory-recorded owner of a line, or -1.
func (h *Hierarchy) DirOwner(line uint64) int {
	if e, ok := h.homeOf(line).dir[line]; ok {
		return e.owner
	}
	return -1
}

// DirSharers returns the directory-recorded sharer bit-vector of a line.
func (h *Hierarchy) DirSharers(line uint64) uint64 {
	if e, ok := h.homeOf(line).dir[line]; ok {
		return e.sharers
	}
	return 0
}

// CheckInvariants validates protocol invariants against the actual L1
// contents; tests call it after draining the engine.
func (h *Hierarchy) CheckInvariants() error {
	for li, s := range h.slices {
		for line, e := range s.dir {
			if e.busy || len(e.waiting) > 0 {
				return fmt.Errorf("line %#x at slice %d still busy/queued after drain", line, li)
			}
			if e.owner >= 0 {
				if st := h.L1State(e.owner, line); st != StateM && st != StateE {
					return fmt.Errorf("line %#x: dir owner %d but L1 state %d", line, e.owner, st)
				}
				if e.sharers != 0 {
					return fmt.Errorf("line %#x: owner %d with nonempty sharers %b", line, e.owner, e.sharers)
				}
			}
			for c := 0; c < h.cfg.Cores; c++ {
				st := h.L1State(c, line)
				if (st == StateM || st == StateE) && e.owner != c {
					return fmt.Errorf("line %#x: core %d in state %d but dir owner %d", line, c, st, e.owner)
				}
			}
		}
	}
	return nil
}
