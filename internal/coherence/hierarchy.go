// Package coherence implements the coherent global-memory (GM) hierarchy of
// the simulated manycore: per-core L1 I/D caches, a shared NUCA L2 sliced
// across cores, and a distributed directory running a MOESI-style
// invalidation protocol with blocking (transient) states. It also provides
// the DMA hooks the hybrid memory system needs: dma-get snoops dirty data
// out of caches without invalidating, dma-put writes memory and invalidates
// every cached copy (paper §2.1).
//
// Protocol notes. L1 lines are I/S/E/M; the home directory tracks, per line,
// an exclusive owner (E/M in some L1) or a sharer set (S copies), and
// serializes transactions with a busy bit + wait queue, which is how the
// "blocking states" of Table 1 appear in an event-driven model. Dirty data
// moves L1→L2 on downgrades and L2→DRAM on L2 evictions, so memory is always
// valid when no owner exists. The directory is sized like Table 1 (64K
// entries — enough to track every line the L1s can hold), so
// directory-capacity recalls never fire and are not modelled.
//
// Hot-path memory discipline: every protocol transaction is a pooled txn
// node stepping through a (kind, step) state machine instead of a chain of
// heap-allocated closures, the directory is a flat open-addressed table with
// inline entries, and counters are pre-interned handles. Steady-state
// simulation allocates nothing per access.
package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// L1 line states (cache.Invalid == 0 means not present).
const (
	StateS int8 = 1 // shared, clean
	StateE int8 = 2 // exclusive, clean
	StateM int8 = 3 // modified
)

// Message sizes on the NoC in bytes.
const (
	ctrlBytes = 8
	dataBytes = 72 // 64B line + header
)

// Interned counter handles: names are resolved to flat slice indices once at
// package init, so hot-path increments are a bounds-checked add.
var (
	cohReg = stats.NewReg()

	hTLBAcc     = cohReg.Handle("tlb.accesses")
	hTLBMiss    = cohReg.Handle("tlb.misses")
	hL1IAcc     = cohReg.Handle("l1i.accesses")
	hL1IMiss    = cohReg.Handle("l1i.misses")
	hL1DAcc     = cohReg.Handle("l1d.accesses")
	hL1DUpg     = cohReg.Handle("l1d.upgrades")
	hL1WB       = cohReg.Handle("l1.writebacks")
	hL1Repl     = cohReg.Handle("l1.repl_notices")
	hL1Inval    = cohReg.Handle("l1.invalidations")
	hPrefIssued = cohReg.Handle("prefetch.issued")
	hL2Acc      = cohReg.Handle("l2.accesses")
	hL2Hit      = cohReg.Handle("l2.hits")
	hL2Miss     = cohReg.Handle("l2.misses")
	hL2WB       = cohReg.Handle("l2.writebacks")
	hFwdGetS    = cohReg.Handle("dir.fwd_gets")
	hFwdGetM    = cohReg.Handle("dir.fwd_getm")
	hDirInval   = cohReg.Handle("dir.invalidations")
	hDRAMRead   = cohReg.Handle("dram.reads")
	hDRAMWrite  = cohReg.Handle("dram.writes")
	hDMASnoop   = cohReg.Handle("dma.snoops")
	hDMAInval   = cohReg.Handle("dma.invalidations")
)

// Hierarchy is the full coherent GM system for all cores.
type Hierarchy struct {
	eng  *sim.Engine
	cfg  config.Config
	mesh *noc.Mesh
	dram *mem.System

	lineShift uint
	pageShift uint

	l1d []*l1cache
	l1i []*l1cache
	tlb []*cache.Array

	slices []*l2slice

	set *stats.Counters

	// tr, when set, wraps demand and DMA accesses in trace spans. Nil on
	// untraced runs: one pointer check per access, nothing else.
	tr *telemetry.Trace

	freeTxns *txn

	// wake schedules an MSHR waiter for the current cycle; cached once so
	// draining a fill's waiters allocates nothing.
	wake func(sim.Cont)
}

// l1cache bundles one core's L1 array with its MSHRs and (for the D-cache)
// prefetcher.
type l1cache struct {
	arr  *cache.Array
	mshr *cache.MSHR
	pf   *cache.StridePrefetcher
}

// l2slice is one bank of the shared NUCA L2 plus its directory slice.
type l2slice struct {
	node int
	arr  *cache.Array
	dir  dirTable
}

// New wires up the hierarchy over an existing mesh and DRAM system.
func New(eng *sim.Engine, cfg config.Config, mesh *noc.Mesh, dram *mem.System) *Hierarchy {
	h := &Hierarchy{
		eng:       eng,
		cfg:       cfg,
		mesh:      mesh,
		dram:      dram,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		pageShift: 12,
		set:       cohReg.NewCounters("coherence"),
	}
	h.wake = func(c sim.Cont) { h.eng.ScheduleCont(0, c) }
	for i := 0; i < cfg.Cores; i++ {
		h.l1d = append(h.l1d, &l1cache{
			arr:  cache.NewArray(cfg.L1DSize, cfg.L1DAssoc, cfg.LineSize),
			mshr: cache.NewMSHR(cfg.MSHREntries),
			pf:   cache.NewStridePrefetcher(cfg.PrefetchTableSz, cfg.PrefetchDegree, cfg.PrefetchDistance),
		})
		h.l1i = append(h.l1i, &l1cache{
			arr:  cache.NewArray(cfg.L1ISize, cfg.L1IAssoc, cfg.LineSize),
			mshr: cache.NewMSHR(cfg.MSHREntries),
		})
		h.tlb = append(h.tlb, cache.NewArray(cfg.TLBEntries*64, cfg.TLBEntries, 64))
		s := &l2slice{
			node: i,
			arr:  cache.NewArray(cfg.L2SliceSize, cfg.L2Assoc, cfg.LineSize),
		}
		s.dir.init(256)
		h.slices = append(h.slices, s)
	}
	return h
}

// SetTrace enables event tracing on the hierarchy.
func (h *Hierarchy) SetTrace(tr *telemetry.Trace) { h.tr = tr }

// LineAddr converts a byte address to a line address.
func (h *Hierarchy) LineAddr(addr uint64) uint64 { return addr >> h.lineShift }

// LineShift exposes log2(line size).
func (h *Hierarchy) LineShift() uint { return h.lineShift }

// homeOf returns the L2/directory slice owning a line (static interleave).
func (h *Hierarchy) homeOf(line uint64) *l2slice {
	return h.slices[line%uint64(len(h.slices))]
}

// Stats returns the hierarchy's counter set.
func (h *Hierarchy) Stats() *stats.Counters { return h.set }

// L1DHits aggregates L1D hit counts over all cores.
func (h *Hierarchy) L1DHits() uint64 {
	var t uint64
	for _, c := range h.l1d {
		t += c.arr.Hits()
	}
	return t
}

// L1DMisses aggregates L1D miss counts over all cores.
func (h *Hierarchy) L1DMisses() uint64 {
	var t uint64
	for _, c := range h.l1d {
		t += c.arr.Misses()
	}
	return t
}

// PrefetchesIssued aggregates prefetch counts over all cores.
func (h *Hierarchy) PrefetchesIssued() uint64 {
	var t uint64
	for _, c := range h.l1d {
		t += c.pf.Issued()
	}
	return t
}

// ---------------------------------------------------------------------------
// Directory table: flat open-addressed hashing with inline entries (linear
// probing, backward-shift deletion). Entries hold the waiting transactions as
// an intrusive deque of txn nodes, so queuing and the release-time requeue
// are O(1) — the old slice-of-closures representation paid an O(n) prepend
// every time a dequeued transaction lost the race to a newly arrived one.

// dirEntry is the directory state for one line. owner >= 0 means some L1
// holds the line in E or M; sharers is a bit-vector of S copies. busy
// serializes transactions; wqHead/wqTail queue deferred ones.
type dirEntry struct {
	line    uint64
	sharers uint64
	owner   int32
	used    bool
	busy    bool
	wqHead  *txn
	wqTail  *txn
}

type dirTable struct {
	mask  uint64
	count int
	slots []dirEntry
}

func (d *dirTable) init(size int) {
	d.slots = make([]dirEntry, size)
	d.mask = uint64(size - 1)
	d.count = 0
}

// ideal returns the home slot of a line (Fibonacci hashing).
func (d *dirTable) ideal(line uint64) uint64 {
	return (line * 0x9E3779B97F4A7C15) & d.mask
}

// find returns the slot index of line, or -1.
func (d *dirTable) find(line uint64) int {
	for i := d.ideal(line); ; i = (i + 1) & d.mask {
		s := &d.slots[i]
		if !s.used {
			return -1
		}
		if s.line == line {
			return int(i)
		}
	}
}

// entryFor returns the entry for line, inserting a fresh one (owner -1) if
// absent. The pointer is valid only until the next insertion: the table
// grows, so transaction steps re-find their entry rather than caching it.
func (d *dirTable) entryFor(line uint64) *dirEntry {
	if d.count*4 >= len(d.slots)*3 {
		d.grow()
	}
	i := d.ideal(line)
	for {
		s := &d.slots[i]
		if !s.used {
			*s = dirEntry{line: line, owner: -1, used: true}
			d.count++
			return s
		}
		if s.line == line {
			return s
		}
		i = (i + 1) & d.mask
	}
}

func (d *dirTable) grow() {
	old := d.slots
	d.slots = make([]dirEntry, 2*len(old))
	d.mask = uint64(len(d.slots) - 1)
	for i := range old {
		if !old[i].used {
			continue
		}
		j := d.ideal(old[i].line)
		for d.slots[j].used {
			j = (j + 1) & d.mask
		}
		d.slots[j] = old[i]
	}
}

// del removes slot i, back-shifting displaced successors so no tombstones
// accumulate: any later element whose home slot lies cyclically at or before
// the vacated slot moves into it, and the scan repeats from the new hole.
func (d *dirTable) del(i uint64) {
	d.count--
	j := i
	for {
		d.slots[i] = dirEntry{}
		for {
			j = (j + 1) & d.mask
			s := &d.slots[j]
			if !s.used {
				return
			}
			k := d.ideal(s.line)
			// Movable when k is cyclically outside (i, j].
			if (j >= i && (k <= i || k > j)) || (j < i && k <= i && k > j) {
				d.slots[i] = *s
				i = j
				break
			}
		}
	}
}

// ---------------------------------------------------------------------------
// TLB

// tlbLookup charges TLB energy and returns the page-walk penalty (0 on hit).
// SPM accesses never call this: the range check bypasses the MMU (paper §2.1).
func (h *Hierarchy) tlbLookup(core int, addr uint64) sim.Time {
	h.set.Inc(hTLBAcc)
	page := addr >> h.pageShift
	t := h.tlb[core]
	if t.Lookup(page, true) != nil {
		return 0
	}
	h.set.Inc(hTLBMiss)
	t.Insert(page, StateS)
	return sim.Time(h.cfg.TLBMissLat)
}

// ---------------------------------------------------------------------------
// Transaction nodes. One pooled txn per concurrent protocol strand: the main
// request strand morphs from requester-side fill logic into directory-side
// processing and back; fan-out strands (invalidations, the forward-GetS
// write-back) get their own nodes. Nodes are recycled before firing any
// external continuation, so re-entrant handlers reuse them immediately.

const (
	kAccess       uint8 = iota // L1D demand access (step 0 body, 1 miss retry)
	kIFetch                    // L1I fetch (step 0 body, 1 MSHR-full retry)
	kFillIFetch                // GetS grant arriving at the L1I
	kFillDemand                // fill grant at the L1D (step 0 GetS, 1 GetM)
	kFillPrefetch              // prefetch grant (step 0 GetS, 1 GetM)
	kDirGetS                   // read request at the home slice
	kFwdWB                     // dirty data from a forward-GetS owner
	kDirGetM                   // write/upgrade request at the home slice
	kInvalGetM                 // one GetM sharer-invalidation strand
	kDirPutM                   // M-line write-back at the home slice
	kDirPutS                   // clean replacement notice at the home slice
	kMemWrite                  // dirty line arriving at a DRAM controller
	kDMARead                   // dma-get line fetch at the home slice
	kDMAWrite                  // dma-put line write at the home slice
	kInvalDMA                  // one dma-put invalidation strand
)

// txn is a pooled protocol-transaction node; next links it into either the
// free list or a directory entry's waiting deque.
type txn struct {
	h       *Hierarchy
	next    *txn
	ptxn    *txn     // requester fill txn (dir kinds) or parent (fan-out kinds)
	done    sim.Cont // external continuation (access/DMA kinds)
	kind    uint8
	step    uint8
	gated   bool // rescheduled by release: requeue at the front on conflict
	allowE  bool
	flag    bool // exclusive grant (fills) / requester-had-copy (GetM)
	write   bool
	core    int
	aux     int // owner / invalidation target / DRAM controller index
	pending int
	line    uint64
	pc      uint64
	cat     noc.Category
}

func (h *Hierarchy) allocTxn() *txn {
	t := h.freeTxns
	if t != nil {
		h.freeTxns = t.next
		*t = txn{h: h}
	} else {
		t = &txn{h: h}
	}
	return t
}

func (h *Hierarchy) freeTxn(t *txn) {
	t.done = nil
	t.ptxn = nil
	t.next = h.freeTxns
	h.freeTxns = t
}

// Fire advances the transaction one step; it runs as a mesh delivery, an
// engine event, or a DRAM completion depending on the kind and step.
func (t *txn) Fire() {
	h := t.h
	switch t.kind {
	case kAccess:
		if t.step == 0 {
			h.accessBody(t)
		} else {
			h.missStep(t)
		}
	case kIFetch:
		h.ifetchStep(t)
	case kFillIFetch:
		l1 := h.l1i[t.core]
		line := t.line
		h.fillArray(l1, t.core, line, StateS, false, noc.Ifetch)
		h.freeTxn(t)
		l1.mshr.Complete(line, h.wake)
	case kFillDemand:
		h.fillDemandStep(t)
	case kFillPrefetch:
		h.fillPrefetchStep(t)
	case kDirGetS:
		h.dirGetSStep(t)
	case kFwdWB:
		s := h.homeOf(t.line)
		h.l2Fill(s, t.line, true)
		e := s.dir.entryFor(t.line)
		e.owner = -1
		e.sharers |= 1<<uint(t.aux) | 1<<uint(t.core)
		line := t.line
		h.freeTxn(t)
		h.release(s, line)
	case kDirGetM:
		h.dirGetMStep(t)
	case kInvalGetM:
		h.invalGetMStep(t)
	case kDirPutM:
		if !h.dirGate(t) {
			return
		}
		s := h.homeOf(t.line)
		e := s.dir.entryFor(t.line)
		if e.owner == int32(t.core) {
			e.owner = -1
			h.l2Fill(s, t.line, true)
		}
		// Stale PutM (ownership already moved on): drop silently.
		line := t.line
		h.freeTxn(t)
		h.release(s, line)
	case kDirPutS:
		if !h.dirGate(t) {
			return
		}
		s := h.homeOf(t.line)
		e := s.dir.entryFor(t.line)
		e.sharers &^= 1 << uint(t.core)
		if e.owner == int32(t.core) {
			e.owner = -1 // clean E eviction; memory/L2 already valid
		}
		line := t.line
		h.freeTxn(t)
		h.release(s, line)
	case kMemWrite:
		ctrl := t.aux
		h.freeTxn(t)
		h.dram.Controller(ctrl).Access(true, sim.Nop)
	case kDMARead:
		h.dmaReadStep(t)
	case kDMAWrite:
		h.dmaWriteStep(t)
	case kInvalDMA:
		h.invalDMAStep(t)
	default:
		panic(fmt.Sprintf("coherence: bad txn kind %d", t.kind))
	}
}

// ---------------------------------------------------------------------------
// CPU-facing API

// Read performs a coherent GM load for core at addr (instruction pc drives
// the prefetcher). done runs when the value is available.
func (h *Hierarchy) Read(core int, addr, pc uint64, done sim.Cont) {
	h.access(core, addr, pc, false, done)
}

// Write performs a coherent GM store.
func (h *Hierarchy) Write(core int, addr, pc uint64, done sim.Cont) {
	h.access(core, addr, pc, true, done)
}

// access is the common demand-access path for the L1D.
func (h *Hierarchy) access(core int, addr, pc uint64, write bool, done sim.Cont) {
	if done == nil {
		done = sim.Nop
	}
	if h.tr != nil {
		var w uint64
		if write {
			w = 1
		}
		done = h.tr.Span(telemetry.KCohAccess, core, addr, w, done)
	}
	h.set.Inc(hL1DAcc)
	walk := h.tlbLookup(core, addr)
	t := h.allocTxn()
	t.kind = kAccess
	t.core = core
	t.line = h.LineAddr(addr)
	t.pc = pc
	t.write = write
	t.done = done
	h.eng.ScheduleCont(walk+sim.Time(h.cfg.L1DLatency), t)
}

// accessBody runs after the TLB walk and L1D latency.
func (h *Hierarchy) accessBody(t *txn) {
	core, line, write := t.core, t.line, t.write
	l1 := h.l1d[core]
	h.prefetch(core, t.pc, line)
	if l := l1.arr.Lookup(line, true); l != nil {
		if !write {
			d := t.done
			h.freeTxn(t)
			d.Fire()
			return
		}
		switch l.State {
		case StateM:
			d := t.done
			h.freeTxn(t)
			d.Fire()
			return
		case StateE:
			l.State = StateM
			l.Dirty = true
			d := t.done
			h.freeTxn(t)
			d.Fire()
			return
		}
		// S: fall through to an upgrade transaction.
		h.set.Inc(hL1DUpg)
	}
	h.missStep(t)
}

// missStep coalesces into the MSHR file and issues the directory request;
// it re-fires every 4 cycles while the MSHR file is full.
func (h *Hierarchy) missStep(t *txn) {
	core, line, write := t.core, t.line, t.write
	l1 := h.l1d[core]
	if l1.mshr.Pending(line) {
		l1.mshr.AddWaiter(line, write, t.done)
		h.freeTxn(t)
		return
	}
	if !l1.mshr.Allocate(line, write, t.done) {
		t.kind = kAccess
		t.step = 1
		h.eng.ScheduleCont(4, t)
		return
	}
	h.freeTxn(t)
	h.issueFill(core, line)
}

// issueFill starts the coherence transaction for the MSHR entry of line.
// Write intent is re-read at completion so coalesced upgrades work.
func (h *Hierarchy) issueFill(core int, line uint64) {
	l1 := h.l1d[core]
	t := h.allocTxn()
	t.kind = kFillDemand
	t.core = core
	t.line = line
	if l1.mshr.WantsWrite(line) {
		t.step = 1
		h.fetchExclusive(core, line, noc.Write, t)
		return
	}
	h.fetchShared(core, line, noc.Read, true, t)
}

// fillDemandStep handles a grant arriving at the L1D: step 0 is the GetS
// response (flag = exclusive grant), step 1 the GetM response.
func (h *Hierarchy) fillDemandStep(t *txn) {
	core, line := t.core, t.line
	if t.step == 1 {
		h.freeTxn(t)
		h.finishFill(core, line, StateM)
		return
	}
	l1 := h.l1d[core]
	if l1.mshr.WantsWrite(line) {
		if t.flag {
			// Granted E and a store coalesced in: silently M.
			h.freeTxn(t)
			h.finishFill(core, line, StateM)
			return
		}
		t.step = 1
		h.fetchExclusive(core, line, noc.Write, t)
		return
	}
	st := StateS
	if t.flag {
		st = StateE
	}
	h.freeTxn(t)
	h.finishFill(core, line, st)
}

func (h *Hierarchy) finishFill(core int, line uint64, state int8) {
	l1 := h.l1d[core]
	h.fillArray(l1, core, line, state, state == StateM, noc.WBRepl)
	l1.mshr.Complete(line, h.wake)
}

// IFetch fetches one instruction-cache line.
func (h *Hierarchy) IFetch(core int, pc uint64, done sim.Cont) {
	if done == nil {
		done = sim.Nop
	}
	h.set.Inc(hL1IAcc)
	t := h.allocTxn()
	t.kind = kIFetch
	t.core = core
	t.line = h.LineAddr(pc)
	t.done = done
	h.eng.ScheduleCont(sim.Time(h.cfg.L1ILatency), t)
}

func (h *Hierarchy) ifetchStep(t *txn) {
	core, line := t.core, t.line
	l1 := h.l1i[core]
	if t.step == 1 {
		// MSHR-full retry: re-run the access from the top.
		h.set.Inc(hL1IAcc)
		t.step = 0
		h.eng.ScheduleCont(sim.Time(h.cfg.L1ILatency), t)
		return
	}
	if l1.arr.Lookup(line, true) != nil {
		d := t.done
		h.freeTxn(t)
		d.Fire()
		return
	}
	h.set.Inc(hL1IMiss)
	if l1.mshr.Pending(line) {
		l1.mshr.AddWaiter(line, false, t.done)
		h.freeTxn(t)
		return
	}
	if !l1.mshr.Allocate(line, false, t.done) {
		h.eng.ScheduleCont(4, t)
		t.step = 1
		return
	}
	// Instruction lines are fetched shared-only (allowE=false), so the
	// directory never records an L1I as exclusive owner. The same node
	// becomes the grant continuation.
	t.kind = kFillIFetch
	t.step = 0
	t.done = nil
	h.fetchShared(core, line, noc.Ifetch, false, t)
}

// fillArray inserts or updates a line in an L1 array, handling the victim
// (write-back or replacement notice to its home directory).
func (h *Hierarchy) fillArray(l1 *l1cache, core int, line uint64, state int8, dirty bool, victimCat noc.Category) {
	if l := l1.arr.Peek(line); l != nil {
		// Upgrade in place (the line was present in S).
		l.State = state
		l.Dirty = l.Dirty || dirty
		return
	}
	ins, victim, evicted := l1.arr.Insert(line, state)
	ins.Dirty = dirty
	if !evicted {
		return
	}
	vline := victim.Tag
	home := h.homeOf(vline)
	switch victim.State {
	case StateM:
		h.set.Inc(hL1WB)
		d := h.allocTxn()
		d.kind = kDirPutM
		d.core = core
		d.line = vline
		h.mesh.SendCont(core, home.node, dataBytes, victimCat, d)
	case StateE, StateS:
		h.set.Inc(hL1Repl)
		d := h.allocTxn()
		d.kind = kDirPutS
		d.core = core
		d.line = vline
		h.mesh.SendCont(core, home.node, ctrlBytes, victimCat, d)
	}
}

// prefetch runs the stride engine and issues shared fetches for predicted
// lines. Prefetch traffic is categorized as Write per the paper's Fig. 10
// grouping ("data cache writes ... include prefetch requests").
func (h *Hierarchy) prefetch(core int, pc, line uint64) {
	l1 := h.l1d[core]
	// Prefetches may use at most 3/4 of the MSHR file; the rest is
	// reserved so demand misses are never starved.
	limit := h.cfg.MSHREntries * 3 / 4
	for _, pline := range l1.pf.Observe(pc, line) {
		if l1.arr.Peek(pline) != nil || l1.mshr.Pending(pline) || l1.mshr.InFlight() >= limit {
			continue
		}
		h.set.Inc(hPrefIssued)
		l1.mshr.Allocate(pline, false, sim.Nop)
		t := h.allocTxn()
		t.kind = kFillPrefetch
		t.core = core
		t.line = pline
		h.fetchShared(core, pline, noc.Write, true, t)
	}
}

// fillPrefetchStep handles a prefetch grant: step 0 is the GetS response,
// step 1 the GetM response issued when a demand store coalesced in.
func (h *Hierarchy) fillPrefetchStep(t *txn) {
	core, line := t.core, t.line
	if t.step == 1 {
		h.freeTxn(t)
		h.finishFill(core, line, StateM)
		return
	}
	st := StateS
	if t.flag {
		st = StateE
	}
	l1 := h.l1d[core]
	if l1.mshr.WantsWrite(line) {
		// A demand store coalesced onto the prefetch.
		if t.flag {
			h.freeTxn(t)
			h.finishFill(core, line, StateM)
			return
		}
		t.step = 1
		h.fetchExclusive(core, line, noc.Write, t)
		return
	}
	h.freeTxn(t)
	h.finishFill(core, line, st)
}

// ---------------------------------------------------------------------------
// Directory transactions

// fetchShared obtains a readable copy of line for core. reqT fires at the
// core once data arrives with reqT.flag reporting an E grant (only possible
// when allowE and no other holder existed).
func (h *Hierarchy) fetchShared(core int, line uint64, cat noc.Category, allowE bool, reqT *txn) {
	home := h.homeOf(line)
	d := h.allocTxn()
	d.kind = kDirGetS
	d.core = core
	d.line = line
	d.cat = cat
	d.allowE = allowE
	d.ptxn = reqT
	h.mesh.SendCont(core, home.node, ctrlBytes, cat, d)
}

// fetchExclusive obtains a writable copy (or upgrade) of line for core.
func (h *Hierarchy) fetchExclusive(core int, line uint64, cat noc.Category, reqT *txn) {
	home := h.homeOf(line)
	d := h.allocTxn()
	d.kind = kDirGetM
	d.core = core
	d.line = line
	d.cat = cat
	d.ptxn = reqT
	h.mesh.SendCont(core, home.node, ctrlBytes, cat, d)
}

// dirGate acquires the line's transaction slot or queues t. A transaction
// rescheduled by release (gated) that loses the race to a newly arrived one
// goes back to the front of the queue, preserving service order.
func (h *Hierarchy) dirGate(t *txn) bool {
	s := h.homeOf(t.line)
	e := s.dir.entryFor(t.line)
	if e.busy {
		if t.gated {
			t.next = e.wqHead
			e.wqHead = t
			if e.wqTail == nil {
				e.wqTail = t
			}
		} else {
			t.next = nil
			if e.wqTail == nil {
				e.wqHead = t
			} else {
				e.wqTail.next = t
			}
			e.wqTail = t
		}
		t.gated = false
		return false
	}
	e.busy = true
	t.gated = false
	return true
}

// release unbusies the entry, reschedules the next queued transaction, and
// garbage collects empty entries.
func (h *Hierarchy) release(s *l2slice, line uint64) {
	i := s.dir.find(line)
	if i < 0 {
		return
	}
	e := &s.dir.slots[i]
	e.busy = false
	if e.wqHead != nil {
		n := e.wqHead
		e.wqHead = n.next
		if e.wqHead == nil {
			e.wqTail = nil
		}
		n.next = nil
		n.gated = true
		h.eng.ScheduleCont(0, n)
		return
	}
	if e.owner < 0 && e.sharers == 0 {
		s.dir.del(uint64(i))
	}
}

// dirGetSStep handles a read request at the home slice.
//
// Steps: 0 gate, 1 directory lookup after L2 latency, 2 forward-GetS at the
// owner, 3 request at the DRAM controller, 4 DRAM access done, 5 memory data
// back at the home slice.
func (h *Hierarchy) dirGetSStep(t *txn) {
	s := h.homeOf(t.line)
	req, line, cat := t.core, t.line, t.cat
	switch t.step {
	case 0:
		if !h.dirGate(t) {
			return
		}
		h.set.Inc(hL2Acc)
		t.step = 1
		h.eng.ScheduleCont(sim.Time(h.cfg.L2Latency), t)

	case 1:
		e := s.dir.entryFor(line)
		switch {
		case e.owner >= 0 && e.owner != int32(req):
			// Forward to owner: owner downgrades to S, sends data
			// to the requester and dirty data back here.
			h.set.Inc(hFwdGetS)
			t.aux = int(e.owner)
			t.step = 2
			h.mesh.SendCont(s.node, t.aux, ctrlBytes, cat, t)

		case e.owner == int32(req):
			// Requester re-requests a line it owns (stale
			// replacement raced with this request): confirm.
			p := t.ptxn
			h.freeTxn(t)
			p.flag = true
			h.mesh.SendCont(s.node, req, ctrlBytes, cat, p)
			h.release(s, line)

		default:
			if s.arr.Lookup(line, true) != nil {
				h.set.Inc(hL2Hit)
				e.sharers |= 1 << uint(req)
				p := t.ptxn
				h.freeTxn(t)
				p.flag = false
				h.mesh.SendCont(s.node, req, dataBytes, cat, p)
				h.release(s, line)
				return
			}
			h.set.Inc(hL2Miss)
			h.memFetchStart(s, t, 3)
		}

	case 2:
		owner := t.aux
		h.ownerDowngrade(owner, line)
		p := t.ptxn
		p.flag = false
		h.mesh.SendCont(owner, req, dataBytes, cat, p)
		wb := h.allocTxn()
		wb.kind = kFwdWB
		wb.core = req
		wb.aux = owner
		wb.line = line
		h.freeTxn(t)
		h.mesh.SendCont(owner, s.node, dataBytes, noc.WBRepl, wb)

	case 3:
		t.step = 4
		h.dram.Controller(t.aux).Access(false, t)

	case 4:
		t.step = 5
		h.mesh.SendCont(h.dram.Node(t.aux), s.node, dataBytes, cat, t)

	case 5:
		h.l2Fill(s, line, false)
		e := s.dir.entryFor(line)
		p := t.ptxn
		allowE := t.allowE
		h.freeTxn(t)
		if allowE && e.sharers == 0 && e.owner < 0 {
			e.owner = int32(req) // clean-exclusive grant
			p.flag = true
		} else {
			e.sharers |= 1 << uint(req)
			p.flag = false
		}
		h.mesh.SendCont(s.node, req, dataBytes, cat, p)
		h.release(s, line)
	}
}

// dirGetMStep handles a write/upgrade request at the home slice.
//
// Steps: 0 gate, 1 directory lookup after L2 latency, 2 forward-GetM at the
// owner, 3 owner data at the requester, 4 completion ack back at the home,
// 5 request at the DRAM controller, 6 DRAM access done, 7 memory data back
// at the home slice.
func (h *Hierarchy) dirGetMStep(t *txn) {
	s := h.homeOf(t.line)
	req, line, cat := t.core, t.line, t.cat
	switch t.step {
	case 0:
		if !h.dirGate(t) {
			return
		}
		h.set.Inc(hL2Acc)
		t.step = 1
		h.eng.ScheduleCont(sim.Time(h.cfg.L2Latency), t)

	case 1:
		e := s.dir.entryFor(line)
		switch {
		case e.owner == int32(req):
			p := t.ptxn
			h.freeTxn(t)
			h.mesh.SendCont(s.node, req, ctrlBytes, cat, p)
			h.release(s, line)

		case e.owner >= 0:
			// Ownership transfer: current owner invalidates and
			// sends data directly to the requester.
			h.set.Inc(hFwdGetM)
			t.aux = int(e.owner)
			e.owner = int32(req)
			e.sharers = 0
			t.step = 2
			h.mesh.SendCont(s.node, t.aux, ctrlBytes, cat, t)

		case e.sharers&^(1<<uint(req)) != 0:
			// Invalidate every other sharer, then grant.
			others := e.sharers &^ (1 << uint(req))
			t.pending = bits.OnesCount64(others)
			t.flag = e.sharers&(1<<uint(req)) != 0
			h.set.Add(hDirInval, uint64(t.pending))
			for c := 0; c < h.cfg.Cores; c++ {
				if others&(1<<uint(c)) == 0 {
					continue
				}
				inv := h.allocTxn()
				inv.kind = kInvalGetM
				inv.aux = c
				inv.line = line
				inv.ptxn = t
				h.mesh.SendCont(s.node, c, ctrlBytes, noc.WBRepl, inv)
			}

		case e.sharers&(1<<uint(req)) != 0:
			// Requester is the only sharer: upgrade in place.
			e.owner = int32(req)
			e.sharers = 0
			h.grantM(s, t, true)

		default:
			// Nobody has it: serve from L2 or memory.
			if s.arr.Lookup(line, true) != nil {
				h.set.Inc(hL2Hit)
				e.owner = int32(req)
				p := t.ptxn
				h.freeTxn(t)
				h.mesh.SendCont(s.node, req, dataBytes, cat, p)
				h.release(s, line)
				return
			}
			h.set.Inc(hL2Miss)
			h.memFetchStart(s, t, 5)
		}

	case 2:
		h.invalidateL1(t.aux, line)
		t.step = 3
		h.mesh.SendCont(t.aux, req, dataBytes, cat, t)

	case 3:
		t.ptxn.Fire()
		t.ptxn = nil
		// Completion ack unblocks the entry.
		t.step = 4
		h.mesh.SendCont(req, s.node, ctrlBytes, noc.WBRepl, t)

	case 4:
		h.freeTxn(t)
		h.release(s, line)

	case 5:
		t.step = 6
		h.dram.Controller(t.aux).Access(false, t)

	case 6:
		t.step = 7
		h.mesh.SendCont(h.dram.Node(t.aux), s.node, dataBytes, cat, t)

	case 7:
		h.l2Fill(s, line, false)
		e := s.dir.entryFor(line)
		e.owner = int32(req)
		p := t.ptxn
		h.freeTxn(t)
		h.mesh.SendCont(s.node, req, dataBytes, cat, p)
		h.release(s, line)
	}
}

// invalGetMStep runs one GetM sharer-invalidation strand: step 0 at the
// sharer, step 1 the ack back at the home slice. The last ack grants M.
func (h *Hierarchy) invalGetMStep(t *txn) {
	line := t.line
	if t.step == 0 {
		h.invalidateL1(t.aux, line)
		t.step = 1
		s := h.homeOf(line)
		h.mesh.SendCont(t.aux, s.node, ctrlBytes, noc.WBRepl, t)
		return
	}
	p := t.ptxn
	h.freeTxn(t)
	p.pending--
	if p.pending > 0 {
		return
	}
	s := h.homeOf(line)
	e := s.dir.entryFor(line)
	e.owner = int32(p.core)
	e.sharers = 0
	h.grantM(s, p, p.flag)
}

// grantM sends write permission to the requester of t: a control message
// when it already holds the data (upgrade), the data itself otherwise.
// It consumes t.
func (h *Hierarchy) grantM(s *l2slice, t *txn, hadCopy bool) {
	size := dataBytes
	if hadCopy {
		size = ctrlBytes
	}
	req, line, cat, p := t.core, t.line, t.cat, t.ptxn
	h.freeTxn(t)
	h.mesh.SendCont(s.node, req, size, cat, p)
	h.release(s, line)
}

// ownerDowngrade moves an L1 line from M/E to S at a forward-GetS.
func (h *Hierarchy) ownerDowngrade(core int, line uint64) {
	if l := h.l1d[core].arr.Peek(line); l != nil {
		l.State = StateS
		l.Dirty = false
	}
}

// invalidateL1 drops a line from a core's L1D.
func (h *Hierarchy) invalidateL1(core int, line uint64) {
	h.l1d[core].arr.Invalidate(line)
	h.set.Inc(hL1Inval)
}

// ---------------------------------------------------------------------------
// L2 / memory

// l2Fill inserts (or refreshes) a line in the L2 slice, spilling a dirty
// victim to DRAM.
func (h *Hierarchy) l2Fill(s *l2slice, line uint64, dirty bool) {
	if l := s.arr.Peek(line); l != nil {
		l.Dirty = l.Dirty || dirty
		return
	}
	ins, victim, evicted := s.arr.Insert(line, StateS)
	ins.Dirty = dirty
	if evicted && victim.Dirty {
		h.set.Inc(hL2WB)
		h.memWrite(s, victim.Tag, noc.WBRepl)
	}
}

// memFetchStart begins a DRAM line read for t: the request travels to the
// controller's mesh node, performs the access, and the data returns to the
// home slice, where t resumes at step firstStep+2.
func (h *Hierarchy) memFetchStart(s *l2slice, t *txn, firstStep uint8) {
	ctrl := h.dram.ControllerFor(t.line)
	h.set.Inc(hDRAMRead)
	t.aux = ctrl
	t.step = firstStep
	h.mesh.SendCont(s.node, h.dram.Node(ctrl), ctrlBytes, t.cat, t)
}

// memWrite pushes a dirty line to DRAM (fire-and-forget).
func (h *Hierarchy) memWrite(s *l2slice, line uint64, cat noc.Category) {
	ctrl := h.dram.ControllerFor(line)
	h.set.Inc(hDRAMWrite)
	w := h.allocTxn()
	w.kind = kMemWrite
	w.aux = ctrl
	h.mesh.SendCont(s.node, h.dram.Node(ctrl), dataBytes, cat, w)
}

// ---------------------------------------------------------------------------
// DMA hooks (paper §2.1): used by the DMA controllers of the hybrid system.

// DMARead fetches one line on behalf of a dma-get issued by core. It snoops
// dirty data from an owning L1 without invalidating; otherwise it reads the
// L2 or memory. No cache is filled: the data goes to the SPM.
func (h *Hierarchy) DMARead(core int, line uint64, done sim.Cont) {
	if done == nil {
		done = sim.Nop
	}
	if h.tr != nil {
		done = h.tr.Span(telemetry.KCohDMARead, core, line, 0, done)
	}
	home := h.homeOf(line)
	t := h.allocTxn()
	t.kind = kDMARead
	t.core = core
	t.line = line
	t.cat = noc.DMA
	t.done = done
	h.mesh.SendCont(core, home.node, ctrlBytes, noc.DMA, t)
}

// dmaReadStep: 0 gate, 1 directory lookup after L2 latency, 2 snoop at the
// owner, 3 request at the DRAM controller, 4 DRAM access done, 5 memory
// data back at the home slice.
func (h *Hierarchy) dmaReadStep(t *txn) {
	home := h.homeOf(t.line)
	core, line := t.core, t.line
	switch t.step {
	case 0:
		if !h.dirGate(t) {
			return
		}
		h.set.Inc(hL2Acc)
		t.step = 1
		h.eng.ScheduleCont(sim.Time(h.cfg.L2Latency), t)

	case 1:
		e := home.dir.entryFor(line)
		if e.owner >= 0 && e.owner != int32(core) {
			h.set.Inc(hDMASnoop)
			t.aux = int(e.owner)
			t.step = 2
			h.mesh.SendCont(home.node, t.aux, ctrlBytes, noc.DMA, t)
			return
		}
		if home.arr.Lookup(line, true) != nil {
			h.set.Inc(hL2Hit)
			d := t.done
			h.freeTxn(t)
			h.mesh.SendCont(home.node, core, dataBytes, noc.DMA, d)
			h.release(home, line)
			return
		}
		// L2 miss: fetch from memory and fill the L2 with a clean
		// copy. Re-traversals (iterative kernels re-mapping the same
		// read-only sections) then hit the L2, matching the LLC
		// residency the paper's applications establish in their init
		// phases.
		h.set.Inc(hL2Miss)
		h.memFetchStart(home, t, 3)

	case 2:
		// Owner supplies data and keeps its copy.
		owner := t.aux
		d := t.done
		h.freeTxn(t)
		h.mesh.SendCont(owner, core, dataBytes, noc.DMA, d)
		h.release(home, line)

	case 3:
		t.step = 4
		h.dram.Controller(t.aux).Access(false, t)

	case 4:
		t.step = 5
		h.mesh.SendCont(h.dram.Node(t.aux), home.node, dataBytes, noc.DMA, t)

	case 5:
		h.l2Fill(home, line, false)
		d := t.done
		h.freeTxn(t)
		h.mesh.SendCont(home.node, core, dataBytes, noc.DMA, d)
		h.release(home, line)
	}
}

// DMAWrite writes one line of SPM data back to memory on behalf of a
// dma-put issued by core, invalidating the line everywhere in the cache
// hierarchy (paper §2.1).
func (h *Hierarchy) DMAWrite(core int, line uint64, done sim.Cont) {
	if done == nil {
		done = sim.Nop
	}
	if h.tr != nil {
		done = h.tr.Span(telemetry.KCohDMAWrite, core, line, 0, done)
	}
	home := h.homeOf(line)
	t := h.allocTxn()
	t.kind = kDMAWrite
	t.core = core
	t.line = line
	t.done = done
	h.mesh.SendCont(core, home.node, dataBytes, noc.DMA, t)
}

// dmaWriteStep: 0 gate, 1 directory lookup after L2 latency and
// invalidation fan-out. The write itself finishes in dmaWriteFinish once
// every cached copy is gone.
func (h *Hierarchy) dmaWriteStep(t *txn) {
	switch t.step {
	case 0:
		if !h.dirGate(t) {
			return
		}
		h.set.Inc(hL2Acc)
		t.step = 1
		h.eng.ScheduleCont(sim.Time(h.cfg.L2Latency), t)

	case 1:
		home := h.homeOf(t.line)
		e := home.dir.entryFor(t.line)
		targets := e.sharers
		if e.owner >= 0 {
			targets |= 1 << uint(e.owner)
		}
		if h.l1d[t.core].arr.Peek(t.line) != nil {
			targets |= 1 << uint(t.core)
		}
		if targets == 0 {
			h.dmaWriteFinish(t)
			return
		}
		t.pending = bits.OnesCount64(targets)
		h.set.Add(hDMAInval, uint64(t.pending))
		for c := 0; c < h.cfg.Cores; c++ {
			if targets&(1<<uint(c)) == 0 {
				continue
			}
			inv := h.allocTxn()
			inv.kind = kInvalDMA
			inv.aux = c
			inv.line = t.line
			inv.ptxn = t
			h.mesh.SendCont(home.node, c, ctrlBytes, noc.DMA, inv)
		}
	}
}

// invalDMAStep runs one dma-put invalidation strand: step 0 at the target,
// step 1 the ack back at the home slice. The last ack finishes the write.
func (h *Hierarchy) invalDMAStep(t *txn) {
	line := t.line
	if t.step == 0 {
		h.invalidateL1(t.aux, line)
		t.step = 1
		home := h.homeOf(line)
		h.mesh.SendCont(t.aux, home.node, ctrlBytes, noc.DMA, t)
		return
	}
	p := t.ptxn
	h.freeTxn(t)
	p.pending--
	if p.pending == 0 {
		h.dmaWriteFinish(p)
	}
}

// dmaWriteFinish clears the directory state, invalidates the L2 copy,
// writes memory, and acks the issuing DMAC. It consumes t.
func (h *Hierarchy) dmaWriteFinish(t *txn) {
	home := h.homeOf(t.line)
	core, line, d := t.core, t.line, t.done
	h.freeTxn(t)
	e := home.dir.entryFor(line)
	e.owner = -1
	e.sharers = 0
	home.arr.Invalidate(line)
	h.memWrite(home, line, noc.DMA)
	h.mesh.SendCont(home.node, core, ctrlBytes, noc.DMA, d)
	h.release(home, line)
}

// ---------------------------------------------------------------------------
// Introspection for tests

// L1State returns the state of a line in a core's L1D (cache.Invalid if
// absent).
func (h *Hierarchy) L1State(core int, line uint64) int8 {
	if l := h.l1d[core].arr.Peek(line); l != nil {
		return l.State
	}
	return cache.Invalid
}

// DirOwner returns the directory-recorded owner of a line, or -1.
func (h *Hierarchy) DirOwner(line uint64) int {
	s := h.homeOf(line)
	if i := s.dir.find(line); i >= 0 {
		return int(s.dir.slots[i].owner)
	}
	return -1
}

// DirSharers returns the directory-recorded sharer bit-vector of a line.
func (h *Hierarchy) DirSharers(line uint64) uint64 {
	s := h.homeOf(line)
	if i := s.dir.find(line); i >= 0 {
		return s.dir.slots[i].sharers
	}
	return 0
}

// CheckInvariants validates protocol invariants against the actual L1
// contents; tests call it after draining the engine.
func (h *Hierarchy) CheckInvariants() error {
	for li, s := range h.slices {
		for i := range s.dir.slots {
			e := &s.dir.slots[i]
			if !e.used {
				continue
			}
			line := e.line
			if e.busy || e.wqHead != nil {
				return fmt.Errorf("line %#x at slice %d still busy/queued after drain", line, li)
			}
			if e.owner >= 0 {
				if st := h.L1State(int(e.owner), line); st != StateM && st != StateE {
					return fmt.Errorf("line %#x: dir owner %d but L1 state %d", line, e.owner, st)
				}
				if e.sharers != 0 {
					return fmt.Errorf("line %#x: owner %d with nonempty sharers %b", line, e.owner, e.sharers)
				}
			}
			for c := 0; c < h.cfg.Cores; c++ {
				st := h.L1State(c, line)
				if (st == StateM || st == StateE) && e.owner != int32(c) {
					return fmt.Errorf("line %#x: core %d in state %d but dir owner %d", line, c, st, e.owner)
				}
			}
		}
	}
	return nil
}
