// Package energy estimates chip energy from event counts — the McPAT
// substitute (see DESIGN.md §2). Every simulated event carries a fixed
// dynamic energy and every component leaks per cycle; constants are loosely
// derived from published 22 nm CACTI/McPAT figures and, as in the paper's
// Figure 11, only *relative* energies between configurations matter.
//
// Components follow the paper's breakdown: CPUs, caches (incl. MSHRs and
// prefetchers), NoC, Others (cache-coherence structures, DMACs, memory
// controllers), SPMs, and the SPM coherence protocol structures (CohProt).
// The filters are clock-gated when a program has no guarded accesses, which
// is why SP's CohProt energy nearly vanishes (paper §5.3).
package energy

import "math"

// Params holds the per-event dynamic energies (picojoules) and per-cycle
// leakage (picojoules/cycle). Defaults22nm returns the calibrated set.
type Params struct {
	// Dynamic energy per event (pJ).
	CPUPerInstr    float64
	L1PerAccess32K float64 // scaled by sqrt(size/32K) for other sizes
	TLBPerAccess   float64
	L2PerAccess    float64
	MemCtrlPerLine float64
	NoCPerFlitHop  float64
	SPMPerAccess   float64
	DMACPerLine    float64
	FilterLookup   float64
	SPMDirLookup   float64
	FDirLookup     float64
	FilterInvalOp  float64

	// Leakage per cycle per instance (pJ/cycle).
	CPULeak     float64 // per core
	L1Leak32K   float64 // per 32KB L1 array (scales linearly with size)
	L2SliceLeak float64 // per 256KB slice
	RouterLeak  float64 // per router
	OthersLeak  float64 // per core: dir slice, mem-ctrl share
	DMACLeak    float64 // per DMAC
	SPMLeak     float64 // per SPM
	SPMDirLeak  float64 // per SPMDir
	FilterLeak  float64 // per filter (gated off without guarded refs)
	FDirLeak    float64 // per FilterDir slice
}

// Defaults22nm returns the constants used throughout the evaluation.
func Defaults22nm() Params {
	return Params{
		CPUPerInstr:    45,
		L1PerAccess32K: 22,
		TLBPerAccess:   4,
		L2PerAccess:    95,
		MemCtrlPerLine: 180,
		NoCPerFlitHop:  9,
		SPMPerAccess:   7,
		DMACPerLine:    12,
		FilterLookup:   5,
		SPMDirLookup:   3,
		FDirLookup:     14,
		FilterInvalOp:  5,

		CPULeak:     25,
		L1Leak32K:   6,
		L2SliceLeak: 30,
		RouterLeak:  3,
		OthersLeak:  4,
		DMACLeak:    1.5,
		SPMLeak:     2.5,
		SPMDirLeak:  0.4,
		FilterLeak:  0.8,
		FDirLeak:    0.6,
	}
}

// Inputs are the event counts of one simulation run.
type Inputs struct {
	Cycles uint64
	Cores  int

	RetiredInstrs uint64

	L1DAccesses uint64
	L1IAccesses uint64
	L1DSize     int // bytes (the cache-based system runs 64KB)
	TLBAccesses uint64
	L2Accesses  uint64

	MemLines    uint64 // DRAM controller line accesses (reads+writes)
	NoCFlitHops uint64

	HasSPM           bool
	SPMAccesses      uint64 // all SPM array accesses (CPU+DMA+remote)
	DMALineTransfers uint64

	// Coherence-protocol events (zero on cache-based/ideal systems).
	ProtocolPresent bool // false: no SPMDir/Filter/FilterDir hardware
	FilterLookups   uint64
	SPMDirLookups   uint64
	SPMDirUpdates   uint64
	FDirLookups     uint64
	FilterInvals    uint64
	GuardedPresent  bool // filters gated off when false (SP)
}

// Breakdown is energy per component in picojoules, Figure 11's categories.
type Breakdown struct {
	CPUs    float64
	Caches  float64
	NoC     float64
	Others  float64
	SPMs    float64
	CohProt float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.CPUs + b.Caches + b.NoC + b.Others + b.SPMs + b.CohProt
}

// Compute evaluates the model for one run.
func Compute(in Inputs, p Params) Breakdown {
	var b Breakdown
	cyc := float64(in.Cycles)
	n := float64(in.Cores)

	// CPUs: instruction energy + core leakage. Fewer cycles (the hybrid
	// speedup) directly reduce leakage, reproducing the paper's 5–23%
	// CPU-energy reduction from avoided stall/replay time.
	b.CPUs = float64(in.RetiredInstrs)*p.CPUPerInstr + cyc*n*p.CPULeak

	// Caches: L1I + L1D (size-scaled) + TLB + L2 dynamic, plus leakage.
	l1Scale := math.Sqrt(float64(in.L1DSize) / (32 << 10))
	if in.L1DSize == 0 {
		l1Scale = 1
	}
	b.Caches = float64(in.L1DAccesses)*p.L1PerAccess32K*l1Scale +
		float64(in.L1IAccesses)*p.L1PerAccess32K +
		float64(in.TLBAccesses)*p.TLBPerAccess +
		float64(in.L2Accesses)*p.L2PerAccess
	l1LeakScale := float64(in.L1DSize) / (32 << 10)
	if in.L1DSize == 0 {
		l1LeakScale = 1
	}
	b.Caches += cyc * n * (p.L1Leak32K + p.L1Leak32K*l1LeakScale + p.L2SliceLeak)

	// NoC: flit-hop energy + router leakage.
	b.NoC = float64(in.NoCFlitHops)*p.NoCPerFlitHop + cyc*n*p.RouterLeak

	// Others: memory controllers, cache-directory, DMACs.
	b.Others = float64(in.MemLines)*p.MemCtrlPerLine + cyc*n*p.OthersLeak
	if in.HasSPM {
		b.Others += float64(in.DMALineTransfers)*p.DMACPerLine + cyc*n*p.DMACLeak
	}

	// SPMs.
	if in.HasSPM {
		b.SPMs = float64(in.SPMAccesses)*p.SPMPerAccess + cyc*n*p.SPMLeak
	}

	// Coherence protocol structures. SPMDir and FilterDir stay powered
	// (DMA transfers update them); filters are gated off when the code
	// has no guarded accesses. The ideal-coherence baseline has none of
	// these structures at all.
	if in.HasSPM && in.ProtocolPresent {
		b.CohProt = float64(in.FilterLookups)*p.FilterLookup +
			float64(in.SPMDirLookups+in.SPMDirUpdates)*p.SPMDirLookup +
			float64(in.FDirLookups)*p.FDirLookup +
			float64(in.FilterInvals)*p.FilterInvalOp
		leak := p.SPMDirLeak + p.FDirLeak
		if in.GuardedPresent {
			leak += p.FilterLeak
		}
		b.CohProt += cyc * n * leak
	}
	return b
}
