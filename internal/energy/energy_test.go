package energy

import (
	"testing"
	"testing/quick"
)

func baseInputs() Inputs {
	return Inputs{
		Cycles:        1_000_000,
		Cores:         64,
		RetiredInstrs: 10_000_000,
		L1DAccesses:   3_000_000,
		L1IAccesses:   1_000_000,
		L1DSize:       32 << 10,
		TLBAccesses:   3_000_000,
		L2Accesses:    300_000,
		MemLines:      50_000,
		NoCFlitHops:   2_000_000,
	}
}

func TestTotalsArePositive(t *testing.T) {
	b := Compute(baseInputs(), Defaults22nm())
	if b.Total() <= 0 {
		t.Fatal("non-positive total")
	}
	if b.CPUs <= 0 || b.Caches <= 0 || b.NoC <= 0 || b.Others <= 0 {
		t.Fatalf("non-positive component: %+v", b)
	}
}

func TestCacheBasedHasNoSPMOrCohProt(t *testing.T) {
	in := baseInputs()
	in.HasSPM = false
	b := Compute(in, Defaults22nm())
	if b.SPMs != 0 || b.CohProt != 0 {
		t.Fatalf("cache-based charged SPM/CohProt: %+v", b)
	}
}

func TestIdealHasNoCohProtStructures(t *testing.T) {
	in := baseInputs()
	in.HasSPM = true
	in.SPMAccesses = 1_000_000
	in.ProtocolPresent = false
	b := Compute(in, Defaults22nm())
	if b.CohProt != 0 {
		t.Fatalf("ideal coherence charged CohProt: %v", b.CohProt)
	}
	if b.SPMs <= 0 {
		t.Fatal("SPM energy missing")
	}
}

func TestFilterGatingWithoutGuardedRefs(t *testing.T) {
	in := baseInputs()
	in.HasSPM = true
	in.ProtocolPresent = true
	in.GuardedPresent = false
	gated := Compute(in, Defaults22nm()).CohProt
	in.GuardedPresent = true
	ungated := Compute(in, Defaults22nm()).CohProt
	if gated >= ungated {
		t.Fatalf("filter gating saved nothing: gated=%v ungated=%v", gated, ungated)
	}
}

func TestBiggerL1CostsMore(t *testing.T) {
	in := baseInputs()
	small := Compute(in, Defaults22nm()).Caches
	in.L1DSize = 64 << 10
	big := Compute(in, Defaults22nm()).Caches
	if big <= small {
		t.Fatalf("64KB L1 not more expensive: %v vs %v", big, small)
	}
}

func TestSPMAccessCheaperThanL1PlusTLB(t *testing.T) {
	p := Defaults22nm()
	if p.SPMPerAccess >= p.L1PerAccess32K+p.TLBPerAccess {
		t.Fatal("SPM access must be cheaper than L1+TLB (the paper's premise)")
	}
}

func TestFewerCyclesLessLeakage(t *testing.T) {
	in := baseInputs()
	slow := Compute(in, Defaults22nm()).Total()
	in.Cycles = in.Cycles / 2
	fast := Compute(in, Defaults22nm()).Total()
	if fast >= slow {
		t.Fatal("halving cycles did not reduce energy")
	}
}

// Property: energy is monotone in every dynamic counter.
func TestMonotoneInCountersProperty(t *testing.T) {
	p := Defaults22nm()
	prop := func(extra uint32) bool {
		in := baseInputs()
		in.HasSPM = true
		in.ProtocolPresent = true
		in.GuardedPresent = true
		base := Compute(in, p).Total()
		in.L1DAccesses += uint64(extra)
		in.NoCFlitHops += uint64(extra)
		in.FilterLookups += uint64(extra)
		in.SPMAccesses += uint64(extra)
		grown := Compute(in, p).Total()
		return grown >= base
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: breakdown components always sum to Total.
func TestBreakdownSumProperty(t *testing.T) {
	p := Defaults22nm()
	prop := func(a, b, c uint32, hasSPM, prot bool) bool {
		in := baseInputs()
		in.HasSPM = hasSPM
		in.ProtocolPresent = prot
		in.L1DAccesses = uint64(a)
		in.L2Accesses = uint64(b)
		in.SPMAccesses = uint64(c)
		bd := Compute(in, p)
		sum := bd.CPUs + bd.Caches + bd.NoC + bd.Others + bd.SPMs + bd.CohProt
		diff := sum - bd.Total()
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
