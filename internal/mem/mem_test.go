package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSingleAccessLatency(t *testing.T) {
	eng := sim.NewEngine()
	c := NewController(eng, 100, 4)
	var done sim.Time
	c.Access(false, sim.AsCont(func() { done = eng.Now() }))
	eng.Run()
	if done != 100 {
		t.Fatalf("access completed at %d, want 100", done)
	}
	if c.Reads() != 1 || c.Writes() != 0 {
		t.Fatalf("reads=%d writes=%d", c.Reads(), c.Writes())
	}
}

func TestBandwidthSerialization(t *testing.T) {
	eng := sim.NewEngine()
	c := NewController(eng, 100, 4)
	var times []sim.Time
	for i := 0; i < 3; i++ {
		c.Access(false, sim.AsCont(func() { times = append(times, eng.Now()) }))
	}
	eng.Run()
	want := []sim.Time{100, 104, 108}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestChannelRecoversAfterIdle(t *testing.T) {
	eng := sim.NewEngine()
	c := NewController(eng, 10, 4)
	var second sim.Time
	c.Access(false, nil)
	eng.Schedule(50, func() {
		c.Access(false, sim.AsCont(func() { second = eng.Now() }))
	})
	eng.Run()
	if second != 60 {
		t.Fatalf("post-idle access completed at %d, want 60", second)
	}
}

func TestWriteCounting(t *testing.T) {
	eng := sim.NewEngine()
	c := NewController(eng, 10, 1)
	c.Access(true, nil)
	c.Access(true, nil)
	c.Access(false, nil)
	eng.Run()
	if c.Writes() != 2 || c.Reads() != 1 {
		t.Fatalf("writes=%d reads=%d", c.Writes(), c.Reads())
	}
}

func TestQueueDelayObserved(t *testing.T) {
	eng := sim.NewEngine()
	c := NewController(eng, 10, 5)
	c.Access(false, nil)
	c.Access(false, nil)
	eng.Run()
	d := c.QueueDelay()
	if d.Count != 2 || d.Min != 0 || d.Max != 5 {
		t.Fatalf("queue delay = %+v", d)
	}
}

func TestSystemInterleaving(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSystem(eng, []int{0, 7, 56, 63}, 64, 100, 4)
	if s.Count() != 4 {
		t.Fatalf("Count = %d", s.Count())
	}
	seen := map[int]bool{}
	for line := uint64(0); line < 16; line++ {
		idx := s.ControllerFor(line)
		if idx < 0 || idx >= 4 {
			t.Fatalf("ControllerFor(%d) = %d", line, idx)
		}
		seen[idx] = true
	}
	if len(seen) != 4 {
		t.Fatalf("interleaving uses %d of 4 controllers", len(seen))
	}
	if s.Node(1) != 7 {
		t.Fatalf("Node(1) = %d, want 7", s.Node(1))
	}
}

func TestSystemTotals(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSystem(eng, []int{0, 1}, 64, 10, 1)
	s.Controller(0).Access(false, nil)
	s.Controller(1).Access(true, nil)
	s.Controller(1).Access(false, nil)
	eng.Run()
	if s.TotalReads() != 2 || s.TotalWrites() != 1 {
		t.Fatalf("totals: r=%d w=%d", s.TotalReads(), s.TotalWrites())
	}
}

func TestInvalidControllerPanics(t *testing.T) {
	eng := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("NewController with zero bandwidth did not panic")
		}
	}()
	NewController(eng, 10, 0)
}

func TestEmptySystemPanics(t *testing.T) {
	eng := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("NewSystem with no nodes did not panic")
		}
	}()
	NewSystem(eng, nil, 64, 10, 1)
}

// Property: with k back-to-back accesses, the last completes exactly at
// latency + (k-1)*cyclesPerLine — the channel never loses or invents slots.
func TestBandwidthConservationProperty(t *testing.T) {
	prop := func(k uint8, lat, cpl uint8) bool {
		n := int(k%32) + 1
		latency := int(lat%50) + 1
		perLine := int(cpl%8) + 1
		eng := sim.NewEngine()
		c := NewController(eng, latency, perLine)
		var last sim.Time
		for i := 0; i < n; i++ {
			c.Access(false, sim.AsCont(func() { last = eng.Now() }))
		}
		eng.Run()
		return last == sim.Time(latency+(n-1)*perLine)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
