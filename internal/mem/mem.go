// Package mem models the off-chip DRAM: a set of memory controllers with a
// fixed access latency and a per-controller bandwidth limit (one cache line
// per MemCyclesPerLn cycles).
package mem

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Controller is one DRAM channel. Accesses are line-granule.
type Controller struct {
	eng           *sim.Engine
	latency       sim.Time
	cyclesPerLine sim.Time
	nextFree      sim.Time

	reads, writes uint64
	queueDelay    stats.Dist
}

// NewController builds a controller with the given fixed latency and inverse
// bandwidth (cycles of channel occupancy per line).
func NewController(eng *sim.Engine, latency, cyclesPerLine int) *Controller {
	if latency < 0 || cyclesPerLine <= 0 {
		panic(fmt.Sprintf("mem: invalid latency=%d cyclesPerLine=%d", latency, cyclesPerLine))
	}
	return &Controller{
		eng:           eng,
		latency:       sim.Time(latency),
		cyclesPerLine: sim.Time(cyclesPerLine),
	}
}

// Access performs one line-granule DRAM access and fires done when it
// completes. Writes complete on the same schedule as reads (the channel
// occupancy is what matters for contention). A nil done still schedules the
// completion event so event counts stay caller-independent.
func (c *Controller) Access(write bool, done sim.Cont) {
	if write {
		c.writes++
	} else {
		c.reads++
	}
	start := c.eng.Now()
	if c.nextFree < start {
		c.nextFree = start
	}
	c.queueDelay.Observe(uint64(c.nextFree - start))
	finish := c.nextFree + c.latency
	c.nextFree += c.cyclesPerLine
	if done == nil {
		done = sim.Nop
	}
	c.eng.AtCont(finish, done)
}

// Reads returns the number of read accesses served.
func (c *Controller) Reads() uint64 { return c.reads }

// Writes returns the number of write accesses served.
func (c *Controller) Writes() uint64 { return c.writes }

// QueueDelay returns the distribution of cycles spent waiting for the channel.
func (c *Controller) QueueDelay() stats.Dist { return c.queueDelay }

// System is a group of address-interleaved controllers, each attached to a
// NoC node.
type System struct {
	ctrls    []*Controller
	nodes    []int
	lineSize int
}

// NewSystem builds n controllers attached to the given mesh nodes.
// Lines are interleaved across controllers by line address.
func NewSystem(eng *sim.Engine, nodes []int, lineSize, latency, cyclesPerLine int) *System {
	if len(nodes) == 0 {
		panic("mem: need at least one controller node")
	}
	s := &System{nodes: nodes, lineSize: lineSize}
	for range nodes {
		s.ctrls = append(s.ctrls, NewController(eng, latency, cyclesPerLine))
	}
	return s
}

// ControllerFor returns the controller index owning a physical line address.
func (s *System) ControllerFor(lineAddr uint64) int {
	return int(lineAddr % uint64(len(s.ctrls)))
}

// Node returns the mesh node a controller is attached to.
func (s *System) Node(ctrl int) int { return s.nodes[ctrl] }

// Controller returns the i-th controller.
func (s *System) Controller(i int) *Controller { return s.ctrls[i] }

// Count returns the number of controllers.
func (s *System) Count() int { return len(s.ctrls) }

// TotalReads sums reads over all controllers.
func (s *System) TotalReads() uint64 {
	var t uint64
	for _, c := range s.ctrls {
		t += c.reads
	}
	return t
}

// TotalWrites sums writes over all controllers.
func (s *System) TotalWrites() uint64 {
	var t uint64
	for _, c := range s.ctrls {
		t += c.writes
	}
	return t
}
