package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakePeer is one httptest-backed fleet member whose handler is swappable
// after the cluster learns its URL.
type fakePeer struct {
	ts      *httptest.Server
	handler atomic.Value // http.HandlerFunc
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	p := &fakePeer{}
	p.handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.handler.Load().(http.HandlerFunc)(w, r)
	}))
	t.Cleanup(p.ts.Close)
	return p
}

func (p *fakePeer) set(h http.HandlerFunc) { p.handler.Store(h) }

// newTestCluster builds a cluster for self "a" with the given remote fakes,
// health loop disabled (tests drive PollOnce), and fast deadlines.
func newTestCluster(t *testing.T, remotes map[string]*fakePeer, mutate func(*Options)) *Cluster {
	t.Helper()
	peers := []Node{{ID: "a", URL: "http://unused-self"}}
	for id, p := range remotes {
		peers = append(peers, Node{ID: id, URL: p.ts.URL})
	}
	opt := Options{
		Self:           "a",
		Peers:          peers,
		HealthInterval: -1,
		BackoffBase:    time.Millisecond,
		HedgeDelay:     5 * time.Millisecond,
		FillTimeout:    5 * time.Second,
	}
	if mutate != nil {
		mutate(&opt)
	}
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// findKey returns a "key-N" whose ranked member order satisfies pred.
func findKey(t *testing.T, c *Cluster, pred func(ranked []string) bool) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if pred(c.ring.ranked(k)) {
			return k
		}
	}
	t.Fatal("no key with the wanted placement in 10000 tries")
	return ""
}

func TestNewRejectsBadMembership(t *testing.T) {
	if _, err := New(Options{Self: "a", Peers: []Node{{ID: "b", URL: "http://x"}}, HealthInterval: -1}); err == nil {
		t.Fatal("self missing from peers accepted")
	}
	if _, err := New(Options{Self: "a", HealthInterval: -1, Peers: []Node{
		{ID: "a", URL: "http://x"}, {ID: "b", URL: "http://y"}, {ID: "b", URL: "http://z"},
	}}); err == nil {
		t.Fatal("duplicate member ID accepted")
	}
}

// TestOwnerSkipsDownPeers: a down peer leaves the ring — its keys rehash to
// the next ranked member — and returns when it answers a probe again.
func TestOwnerSkipsDownPeers(t *testing.T) {
	b := newFakePeer(t)
	c := newTestCluster(t, map[string]*fakePeer{"b": b}, nil)

	// Find a key b owns while alive.
	key := ""
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if owner, local := c.Owner(k); owner == "b" && !local {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key owned by b in 1000 tries")
	}

	// Fail probes until b crosses DownAfter; ownership must move to self.
	b.set(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	for i := 0; i < DefaultDownAfter; i++ {
		c.PollOnce(context.Background())
	}
	if st := c.state("b"); st != Down {
		t.Fatalf("b state = %v after %d failed probes, want down", st, DefaultDownAfter)
	}
	if owner, local := c.Owner(key); !local {
		t.Fatalf("Owner(%q) = %q with b down, want self", key, owner)
	}

	// One good probe resurrects it.
	b.set(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	c.PollOnce(context.Background())
	if owner, _ := c.Owner(key); owner != "b" {
		t.Fatalf("Owner(%q) = %q after recovery, want b", key, owner)
	}
}

// TestFillHitFromOwner: a fill returns the owner's entry body verbatim and
// carries the forwarded marker so the owner cannot loop it back.
func TestFillHitFromOwner(t *testing.T) {
	b := newFakePeer(t)
	var sawHeader atomic.Value
	b.set(func(w http.ResponseWriter, r *http.Request) {
		sawHeader.Store(r.Header.Get(ForwardedHeader))
		w.Write([]byte(`{"payload":true}`))
	})
	c := newTestCluster(t, map[string]*fakePeer{"b": b}, nil)
	key := findKey(t, c, func(r []string) bool { return r[0] == "b" })

	body, ok := c.Fill(context.Background(), key)
	if !ok || string(body) != `{"payload":true}` {
		t.Fatalf("Fill = %q, %v, want the owner's body", body, ok)
	}
	if got, _ := sawHeader.Load().(string); got != "a" {
		t.Fatalf("fill probe carried %s=%q, want the sender ID", ForwardedHeader, got)
	}
}

// TestFillHedgesToNextMember: an owner that misses (404) must not end the
// fill — the next ranked member is probed immediately and its hit wins.
func TestFillHedgesToNextMember(t *testing.T) {
	b, d := newFakePeer(t), newFakePeer(t)
	miss := func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusNotFound) }
	hit := func(w http.ResponseWriter, r *http.Request) { w.Write([]byte(`ok`)) }
	c := newTestCluster(t, map[string]*fakePeer{"b": b, "d": d}, nil)

	// Whichever remote ranks first for this key misses; the other hits. The
	// key places both remotes ahead of self, so the fill has two candidates.
	key := findKey(t, c, func(r []string) bool { return r[2] == "a" })
	cands := c.fillCandidates(key)
	if len(cands) != 2 {
		t.Fatalf("fillCandidates = %d members, want 2", len(cands))
	}
	first := map[string]*fakePeer{"b": b, "d": d}[cands[0].id]
	second := map[string]*fakePeer{"b": b, "d": d}[cands[1].id]
	first.set(miss)
	second.set(hit)

	body, ok := c.Fill(context.Background(), key)
	if !ok || string(body) != "ok" {
		t.Fatalf("Fill = %q, %v, want the second member's hit", body, ok)
	}
}

// TestForwardRetries429HonoringRetryAfter: a shed answer is retried after at
// least the server's Retry-After, through the hooked clock — no real sleeps.
func TestForwardRetries429HonoringRetryAfter(t *testing.T) {
	b := newFakePeer(t)
	var calls atomic.Int32
	b.set(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("accepted"))
	})
	c := newTestCluster(t, map[string]*fakePeer{"b": b}, nil)
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }

	status, body, err := c.Forward(context.Background(), "b", http.MethodPost, "/v1/runs", []byte(`{}`))
	if err != nil || status != http.StatusOK || string(body) != "accepted" {
		t.Fatalf("Forward = %d %q %v, want 200 accepted", status, body, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("peer saw %d calls, want 2 (one shed, one retry)", calls.Load())
	}
	if len(slept) != 1 || slept[0] < 3*time.Second {
		t.Fatalf("backoff slept %v, want one wait >= the 3s Retry-After", slept)
	}
}

// TestForwardReturnsFinal429: retries exhausted on a persistent shed hand
// the 429 back (nil error) so the service can relay it to the client.
func TestForwardReturnsFinal429(t *testing.T) {
	b := newFakePeer(t)
	b.set(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	})
	c := newTestCluster(t, map[string]*fakePeer{"b": b}, nil)
	c.sleep = func(time.Duration) {}

	status, _, err := c.Forward(context.Background(), "b", http.MethodPost, "/v1/runs", nil)
	if err != nil || status != http.StatusTooManyRequests {
		t.Fatalf("Forward = %d, %v, want a relayed 429 with nil error", status, err)
	}
}

// TestForwardShedsPastBacklog: window full and backlog full means the next
// forward is shed immediately with ErrSaturated, not queued forever.
func TestForwardShedsPastBacklog(t *testing.T) {
	b := newFakePeer(t)
	release := make(chan struct{})
	var inflight sync.WaitGroup
	b.set(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.WriteHeader(http.StatusOK)
	})
	c := newTestCluster(t, map[string]*fakePeer{"b": b}, func(o *Options) {
		o.ForwardWindow = 1
		o.ForwardBacklog = 1
		o.Retries = -1
	})

	started := make(chan struct{}, 2)
	for i := 0; i < 2; i++ { // one occupies the window, one waits in backlog
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			started <- struct{}{}
			c.Forward(context.Background(), "b", http.MethodGet, "/v1/stats", nil)
		}()
	}
	<-started
	<-started
	// Wait until the window slot is taken and the second caller is counted
	// as a waiter, so the third call must shed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(c.peers["b"].window) == 1 && c.peers["b"].waiters.Load() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("window/backlog never filled: window=%d waiters=%d",
				len(c.peers["b"].window), c.peers["b"].waiters.Load())
		}
		time.Sleep(time.Millisecond)
	}

	_, _, err := c.Forward(context.Background(), "b", http.MethodGet, "/v1/stats", nil)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("third forward err = %v, want ErrSaturated", err)
	}
	close(release)
	inflight.Wait()
}

// TestOfferBackfillReachesOwner: an offer PUTs the entry to the key's owner
// and Drain waits for it.
func TestOfferBackfillReachesOwner(t *testing.T) {
	b := newFakePeer(t)
	type put struct {
		method, path string
	}
	got := make(chan put, 1)
	b.set(func(w http.ResponseWriter, r *http.Request) {
		got <- put{r.Method, r.URL.Path}
		w.WriteHeader(http.StatusNoContent)
	})
	c := newTestCluster(t, map[string]*fakePeer{"b": b}, nil)
	key := findKey(t, c, func(r []string) bool { return r[0] == "b" })

	c.Offer(key, []byte(`{}`))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if p.method != http.MethodPut || p.path != "/v1/cache/"+key {
			t.Fatalf("offer sent %s %s, want PUT /v1/cache/%s", p.method, p.path, key)
		}
	default:
		t.Fatal("owner never saw the back-fill")
	}
}

// TestRequestPathFailuresDemotePeer: transport errors on Forward feed the
// same liveness counter as health probes — a peer dying mid-sweep goes down
// without waiting for the poll interval.
func TestRequestPathFailuresDemotePeer(t *testing.T) {
	b := newFakePeer(t)
	c := newTestCluster(t, map[string]*fakePeer{"b": b}, func(o *Options) {
		o.Retries = -1
	})
	b.ts.Close() // connection refused from here on

	for i := 0; i < DefaultDownAfter; i++ {
		if _, _, err := c.Forward(context.Background(), "b", http.MethodGet, "/v1/stats", nil); err == nil {
			t.Fatal("forward to a closed peer succeeded")
		}
	}
	if st := c.state("b"); st != Down {
		t.Fatalf("b state = %v after %d transport failures, want down", st, DefaultDownAfter)
	}
}

// TestClosedClusterRefusesWork: after Close, outbound paths are inert.
func TestClosedClusterRefusesWork(t *testing.T) {
	b := newFakePeer(t)
	c := newTestCluster(t, map[string]*fakePeer{"b": b}, nil)
	c.Close()
	if _, ok := c.Fill(context.Background(), "k"); ok {
		t.Fatal("Fill succeeded on a closed cluster")
	}
	if _, _, err := c.Forward(context.Background(), "b", http.MethodGet, "/", nil); err == nil {
		t.Fatal("Forward succeeded on a closed cluster")
	}
}
