package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over member IDs. Each member contributes
// vnodes points (FNV-1a of "id#i"), so keys spread evenly and the loss of
// one member moves only that member's arc to its ring successors instead of
// reshuffling the whole key space. Placement is a pure function of the
// member-ID set, so every daemon built from the same -peers flag computes
// the same ring with no coordination.
type ring struct {
	points []point
	ids    []string // distinct member IDs, sorted (for iteration bounds)
}

// point is one virtual node: a position on the 64-bit ring owned by id.
type point struct {
	h  uint64
	id string
}

// hash64 is FNV-1a over s, pushed through a 64-bit avalanche finalizer —
// stable across processes and Go versions, unlike the runtime map hash.
// Raw FNV-1a is NOT usable here: over short, near-identical strings (vnode
// labels "b#0".."b#63", spec hashes sharing a prefix) its outputs land in
// narrow bands, so one member's points clump together and its arc swallows
// most of the ring. The fmix64 finalizer (MurmurHash3's) flips every output
// bit with ~1/2 probability per input bit, restoring a uniform spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// newRing builds the ring for the given member IDs.
func newRing(ids []string, vnodes int) *ring {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	r := &ring{ids: sorted, points: make([]point, 0, len(sorted)*vnodes)}
	for _, id := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{h: hash64(id + "#" + strconv.Itoa(i)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Equal hashes (astronomically rare) tie-break by ID so every node
		// still agrees on the ordering.
		return r.points[i].id < r.points[j].id
	})
	return r
}

// ranked returns every member ID in ring order starting at key's position —
// the owner first, then the members that inherit the key as earlier ones
// drop out. Liveness filtering is the caller's job: the ranking itself must
// stay a pure function of membership so all nodes agree on it.
func (r *ring) ranked(key string) []string {
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	out := make([]string, 0, len(r.ids))
	seen := make(map[string]bool, len(r.ids))
	for i := 0; i < len(r.points) && len(out) < len(r.ids); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}
