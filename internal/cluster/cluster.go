// Package cluster federates N hybridsimd daemons into one sweep fleet.
//
// Membership is static: every daemon is started with the same -peers list
// and its own -node-id, and computes the same consistent-hash ring over
// member IDs (ring.go). A run's canonical Spec.Hash() is its shard key: the
// first live member clockwise of the key owns it, so any Spec has exactly
// one place it is supposed to be computed and cached — cross-node
// singleflight falls out of routing every computation to the owner, whose
// local rescache singleflight dedupes the rest.
//
// On top of the ring this package provides the peering transport the
// service layer composes into its request paths:
//
//   - Fill: a hedged read of the owner's cache (GET /v1/cache/{key}) before
//     paying for a local compute of a Spec this node does not own.
//   - Forward: a bounded, retrying proxy of an API request to a specific
//     peer — POST /v1/runs to the owner, sweep fan-out, read proxying.
//   - Offer: an asynchronous back-fill (PUT /v1/cache/{key}) pushing a
//     result this node computed while degraded back to its owner.
//
// Liveness is health-checked, not gossiped: a background loop probes every
// peer's /v1/healthz, and transport failures on the request paths feed the
// same failure counter, so a peer that dies mid-sweep flips to down after
// DownAfter consecutive errors without waiting out the poll interval. A
// down peer leaves the ring (Owner skips it — the automatic rehash), and
// everything it owned degrades to the next member, or to local compute.
// All outbound work is bounded: per-peer forward windows with a shed-past
// backlog, per-request retry with exponential backoff honoring Retry-After,
// and a WaitGroup so shutdown can drain in-flight forwards and back-fills.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// ForwardedHeader marks an intra-fleet request. A daemon never re-forwards a
// request carrying it, so divergent liveness views cannot create routing
// loops; the value is the sending node's ID, for logs.
const ForwardedHeader = "X-Hybridsimd-Forwarded"

// ErrSaturated reports a forward that was shed because the target peer's
// window and backlog are both full. Callers degrade to local compute.
var ErrSaturated = errors.New("cluster: forward window saturated")

// Defaults for Options zero values.
const (
	DefaultVNodes         = 64
	DefaultForwardWindow  = 32
	DefaultRetries        = 2
	DefaultBackoffBase    = 100 * time.Millisecond
	DefaultHedgeDelay     = 50 * time.Millisecond
	DefaultFillTimeout    = 2 * time.Second
	DefaultOfferTimeout   = 5 * time.Second
	DefaultHealthInterval = 2 * time.Second
	DefaultHealthTimeout  = time.Second
	DefaultDownAfter      = 3
	maxBackoff            = 5 * time.Second
)

// Node is one fleet member: a stable ID (the ring hashes IDs, so identity
// survives address changes) and its base URL.
type Node struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// State is a peer's health as seen from this node.
type State int32

const (
	// Alive peers answer probes; they own their arc of the ring.
	Alive State = iota
	// Suspect peers failed at least one probe but fewer than DownAfter;
	// they keep their arc (a single dropped packet must not move keys).
	Suspect
	// Down peers failed DownAfter consecutive probes; the ring skips them
	// until a probe succeeds again.
	Down
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	default:
		return "down"
	}
}

// gaugeValue renders a state on the peer_state gauge: 2 alive, 1 suspect,
// 0 down — so "is the fleet whole" is sum(peer_state) == 2*(members-1).
func (s State) gaugeValue() int64 { return int64(2 - s) }

// Options configures a Cluster.
type Options struct {
	// Self is this daemon's member ID; it must appear in Peers.
	Self string

	// Peers is the full fleet membership, including self. Every member must
	// be started with an identical list (same IDs) or placement diverges.
	Peers []Node

	// VNodes is the virtual nodes per member (default DefaultVNodes). All
	// members must agree on it.
	VNodes int

	// ForwardWindow bounds concurrent in-flight forwards per peer; past it
	// callers queue up to ForwardBacklog waiters, then shed (default
	// DefaultForwardWindow).
	ForwardWindow int

	// ForwardBacklog bounds waiters past the window (default 4x window).
	ForwardBacklog int

	// Retries is how many times a failed or shed forward is retried with
	// exponential backoff (default DefaultRetries; negative disables).
	Retries int

	// BackoffBase seeds the exponential retry backoff; the server's
	// Retry-After wins when longer (default DefaultBackoffBase).
	BackoffBase time.Duration

	// HedgeDelay is how long a cache fill waits on the owner before also
	// probing the next ring member (default DefaultHedgeDelay).
	HedgeDelay time.Duration

	// FillTimeout bounds one whole hedged fill (default DefaultFillTimeout).
	FillTimeout time.Duration

	// OfferTimeout bounds one asynchronous back-fill (default
	// DefaultOfferTimeout).
	OfferTimeout time.Duration

	// HealthInterval paces the background liveness probes; 0 means
	// DefaultHealthInterval, negative disables the loop (tests drive
	// PollOnce directly).
	HealthInterval time.Duration

	// HealthTimeout bounds one probe (default DefaultHealthTimeout).
	HealthTimeout time.Duration

	// DownAfter is the consecutive failures that turn a suspect peer down
	// (default DefaultDownAfter).
	DownAfter int

	// HTTP overrides the transport; nil means a dedicated client.
	HTTP *http.Client

	// Log receives peer state transitions and degradations; nil discards.
	Log *slog.Logger
}

// peer is one remote member plus its health and flow-control state.
type peer struct {
	id, url string
	state   atomic.Int32
	fails   atomic.Int32
	window  chan struct{} // in-flight forward slots
	waiters atomic.Int32  // callers blocked on a slot
}

// Cluster is the fleet view of one daemon. Safe for concurrent use.
type Cluster struct {
	opt   Options
	self  string
	ring  *ring
	peers map[string]*peer
	order []string // sorted remote IDs
	http  *http.Client
	log   *slog.Logger

	// sleep is the backoff clock; tests swap it to assert retry pacing
	// without real waiting.
	sleep func(time.Duration)

	closed atomic.Bool
	wg     sync.WaitGroup // in-flight outbound work (forwards, fills, offers)
	stop   context.CancelFunc
	done   chan struct{}

	reg       *metrics.Registry
	forwards  *metrics.CounterVec // by peer, outcome (ok|error|saturated)
	fills     *metrics.CounterVec // by peer, outcome (hit|miss|error)
	offers    *metrics.CounterVec // by peer, outcome (ok|error)
	hedges    *metrics.CounterVec // by peer (the hedge target)
	sheds     *metrics.CounterVec // by reason (forward-backlog|offer-window)
	peerState *metrics.GaugeVec   // by peer: 2 alive, 1 suspect, 0 down
}

// New validates the membership, builds the ring, and (unless disabled)
// starts the health loop. Call Close, then Drain, on shutdown.
func New(opt Options) (*Cluster, error) {
	if opt.Self == "" {
		return nil, errors.New("cluster: empty self ID")
	}
	if opt.VNodes < 1 {
		opt.VNodes = DefaultVNodes
	}
	if opt.ForwardWindow < 1 {
		opt.ForwardWindow = DefaultForwardWindow
	}
	if opt.ForwardBacklog < 1 {
		opt.ForwardBacklog = 4 * opt.ForwardWindow
	}
	if opt.Retries == 0 {
		opt.Retries = DefaultRetries
	} else if opt.Retries < 0 {
		opt.Retries = 0
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = DefaultBackoffBase
	}
	if opt.HedgeDelay <= 0 {
		opt.HedgeDelay = DefaultHedgeDelay
	}
	if opt.FillTimeout <= 0 {
		opt.FillTimeout = DefaultFillTimeout
	}
	if opt.OfferTimeout <= 0 {
		opt.OfferTimeout = DefaultOfferTimeout
	}
	if opt.HealthInterval == 0 {
		opt.HealthInterval = DefaultHealthInterval
	}
	if opt.HealthTimeout <= 0 {
		opt.HealthTimeout = DefaultHealthTimeout
	}
	if opt.DownAfter < 1 {
		opt.DownAfter = DefaultDownAfter
	}
	if opt.Log == nil {
		opt.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opt.HTTP == nil {
		opt.HTTP = &http.Client{}
	}

	ids := make([]string, 0, len(opt.Peers))
	peers := make(map[string]*peer, len(opt.Peers))
	selfSeen := false
	for _, n := range opt.Peers {
		if n.ID == "" || n.URL == "" {
			return nil, fmt.Errorf("cluster: member %+v needs both an ID and a URL", n)
		}
		if _, dup := peers[n.ID]; dup || (selfSeen && n.ID == opt.Self) {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", n.ID)
		}
		ids = append(ids, n.ID)
		if n.ID == opt.Self {
			selfSeen = true
			continue
		}
		peers[n.ID] = &peer{
			id:     n.ID,
			url:    strings.TrimRight(n.URL, "/"),
			window: make(chan struct{}, opt.ForwardWindow),
		}
	}
	if !selfSeen {
		return nil, fmt.Errorf("cluster: self ID %q not in the peer list", opt.Self)
	}

	c := &Cluster{
		opt:   opt,
		self:  opt.Self,
		ring:  newRing(ids, opt.VNodes),
		peers: peers,
		http:  opt.HTTP,
		log:   opt.Log,
		done:  make(chan struct{}),
	}
	for id := range peers {
		c.order = append(c.order, id)
	}
	sort.Strings(c.order)
	c.initMetrics()

	if opt.HealthInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		c.stop = cancel
		go c.healthLoop(ctx)
	} else {
		close(c.done)
	}
	return c, nil
}

// initMetrics builds the cluster's own registry; the service attaches it to
// the daemon's /metrics surface.
func (c *Cluster) initMetrics() {
	r := metrics.NewRegistry()
	c.reg = r
	r.Info("hybridsimd_cluster_info", "Static fleet identity of this daemon.",
		map[string]string{"self": c.self, "members": strconv.Itoa(len(c.order) + 1)})
	c.forwards = r.CounterVec("hybridsimd_cluster_forwards_total",
		"Requests forwarded to a peer, by peer and outcome.", "peer", "outcome")
	c.fills = r.CounterVec("hybridsimd_cluster_fills_total",
		"Peer cache-fill probes, by peer and outcome.", "peer", "outcome")
	c.offers = r.CounterVec("hybridsimd_cluster_offers_total",
		"Result back-fills pushed to owners, by peer and outcome.", "peer", "outcome")
	c.hedges = r.CounterVec("hybridsimd_cluster_hedges_total",
		"Cache fills that hedged to a second member, by hedge target.", "peer")
	c.sheds = r.CounterVec("hybridsimd_cluster_sheds_total",
		"Outbound work dropped by flow control, by reason.", "reason")
	c.peerState = r.GaugeVec("hybridsimd_cluster_peer_state",
		"Peer liveness: 2 alive, 1 suspect, 0 down.", "peer")
	for _, id := range c.order {
		c.peerState.With(id).Set(Alive.gaugeValue())
	}
	r.GaugeFunc("hybridsimd_cluster_peers_alive", "Remote members currently alive.",
		func() int64 {
			n := int64(0)
			for _, p := range c.peers {
				if State(p.state.Load()) == Alive {
					n++
				}
			}
			return n
		})
}

// Metrics exposes the cluster's registry for attachment to /metrics.
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// Self returns this daemon's member ID.
func (c *Cluster) Self() string { return c.self }

// Close stops the health loop and refuses new outbound work. In-flight
// forwards and back-fills keep running; Drain waits for them.
func (c *Cluster) Close() {
	if c.closed.Swap(true) {
		return
	}
	if c.stop != nil {
		c.stop()
		<-c.done
	}
}

// Drain blocks until every in-flight forward, fill, and offer has finished,
// or ctx expires. The graceful-shutdown sequence is: stop the HTTP listener
// (drains inbound, including requests peers forwarded here), Close (no new
// outbound), Drain (flush outbound), then stop the worker pool.
func (c *Cluster) Drain(ctx context.Context) error {
	idle := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("cluster: drain: %w", ctx.Err())
	}
}

// state reports a member's health; self is always alive.
func (c *Cluster) state(id string) State {
	p, ok := c.peers[id]
	if !ok {
		return Alive
	}
	return State(p.state.Load())
}

// Owner resolves the live owner of a shard key: the first non-down member
// clockwise of the key. local reports ownership by this daemon — including
// the degenerate fall-through where every ranked member ahead of self is
// down, so the key is computed here rather than nowhere.
func (c *Cluster) Owner(key string) (id string, local bool) {
	for _, id := range c.ring.ranked(key) {
		if id == c.self {
			return id, true
		}
		if c.state(id) != Down {
			return id, false
		}
	}
	return c.self, true
}

// fillCandidates is the ranked list of non-down remote members a fill may
// probe: the owner plus one hedge target.
func (c *Cluster) fillCandidates(key string) []*peer {
	out := make([]*peer, 0, 2)
	for _, id := range c.ring.ranked(key) {
		if id == c.self {
			// Members ranked past self would compute the key only after
			// this node failed; they cannot have it unless ownership
			// shifted, and the owner back-fill covers that case.
			break
		}
		if p := c.peers[id]; p != nil && State(p.state.Load()) != Down {
			out = append(out, p)
			if len(out) == 2 {
				break
			}
		}
	}
	return out
}

// Fill asks the key's owner for its cached entry before this node computes
// it locally, hedging to the next ring member if the owner is slow. It
// returns the raw entry body (the service decodes and verifies it) and
// whether any member had it. Misses and errors are never fatal — the caller
// just computes.
func (c *Cluster) Fill(ctx context.Context, key string) ([]byte, bool) {
	if c.closed.Load() {
		return nil, false
	}
	cands := c.fillCandidates(key)
	if len(cands) == 0 {
		return nil, false
	}
	c.wg.Add(1)
	defer c.wg.Done()
	ctx, cancel := context.WithTimeout(ctx, c.opt.FillTimeout)
	defer cancel()

	type answer struct {
		body []byte
		hit  bool
	}
	answers := make(chan answer, len(cands)) // buffered: laggards never block
	probe := func(p *peer) {
		defer c.wg.Done()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/v1/cache/"+key, nil)
		if err != nil {
			answers <- answer{}
			return
		}
		req.Header.Set(ForwardedHeader, c.self)
		resp, err := c.http.Do(req)
		if err != nil {
			c.fills.With(p.id, "error").Inc()
			c.noteFailure(p, err)
			answers <- answer{}
			return
		}
		defer resp.Body.Close()
		c.noteSuccess(p)
		if resp.StatusCode != http.StatusOK {
			c.fills.With(p.id, "miss").Inc()
			answers <- answer{}
			return
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			c.fills.With(p.id, "error").Inc()
			answers <- answer{}
			return
		}
		c.fills.With(p.id, "hit").Inc()
		answers <- answer{body: body, hit: true}
	}

	c.wg.Add(1)
	go probe(cands[0])
	launched, pending := 1, 1
	hedge := time.NewTimer(c.opt.HedgeDelay)
	defer hedge.Stop()
	hedgeCh := hedge.C
	if len(cands) == 1 {
		hedgeCh = nil
	}
	for pending > 0 {
		select {
		case a := <-answers:
			pending--
			if a.hit {
				return a.body, true
			}
			// The probe answered without the entry; try the next candidate
			// immediately — no point waiting out the hedge delay.
			if launched < len(cands) {
				c.wg.Add(1)
				go probe(cands[launched])
				launched++
				pending++
			}
		case <-hedgeCh:
			hedgeCh = nil
			if launched < len(cands) {
				c.hedges.With(cands[launched].id).Inc()
				c.wg.Add(1)
				go probe(cands[launched])
				launched++
				pending++
			}
		case <-ctx.Done():
			return nil, false
		}
	}
	return nil, false
}

// Forward proxies one API request to a specific peer, bounded by the peer's
// forward window (block up to the backlog, then shed with ErrSaturated) and
// retried with backoff on transport errors and 429/503 rejections, honoring
// Retry-After. Any HTTP response — including a final 429 — returns with a
// nil error; err is only transport exhaustion or shedding, the cases where
// the caller should degrade to local compute.
func (c *Cluster) Forward(ctx context.Context, peerID, method, path string, body []byte) (status int, respBody []byte, err error) {
	if c.closed.Load() {
		return 0, nil, errors.New("cluster: closed")
	}
	p, ok := c.peers[peerID]
	if !ok {
		return 0, nil, fmt.Errorf("cluster: unknown peer %q", peerID)
	}
	if err := c.acquire(ctx, p); err != nil {
		if errors.Is(err, ErrSaturated) {
			c.sheds.With("forward-backlog").Inc()
			c.forwards.With(p.id, "saturated").Inc()
		}
		return 0, nil, err
	}
	defer func() { <-p.window }()
	c.wg.Add(1)
	defer c.wg.Done()

	var lastErr error
	retryAfter := time.Duration(0)
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt, retryAfter); err != nil {
				lastErr = err
				break
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, p.url+path, bytes.NewReader(body))
		if err != nil {
			c.forwards.With(p.id, "error").Inc()
			return 0, nil, err
		}
		if len(body) > 0 {
			req.Header.Set("Content-Type", "application/json")
		}
		req.Header.Set(ForwardedHeader, c.self)
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err
			c.noteFailure(p, err)
			continue
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		c.noteSuccess(p)
		if (resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable) && attempt < c.opt.Retries {
			retryAfter = parseRetryAfter(resp.Header)
			lastErr = fmt.Errorf("cluster: peer %s rejected with %s", p.id, resp.Status)
			continue
		}
		c.forwards.With(p.id, "ok").Inc()
		return resp.StatusCode, b, nil
	}
	c.forwards.With(p.id, "error").Inc()
	return 0, nil, fmt.Errorf("cluster: forward to %s failed: %w", p.id, lastErr)
}

// Offer pushes an entry this node computed for a key it does not own back to
// the owner's cache, asynchronously and best-effort: a full window sheds the
// offer (the result is already cached locally; the owner can still find it
// through its own fill path), and failures are logged, not returned.
func (c *Cluster) Offer(key string, entry []byte) {
	if c.closed.Load() {
		return
	}
	owner, local := c.Owner(key)
	if local {
		return
	}
	p := c.peers[owner]
	select {
	case p.window <- struct{}{}:
	default:
		c.sheds.With("offer-window").Inc()
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer func() { <-p.window }()
		ctx, cancel := context.WithTimeout(context.Background(), c.opt.OfferTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, p.url+"/v1/cache/"+key, bytes.NewReader(entry))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ForwardedHeader, c.self)
		resp, err := c.http.Do(req)
		if err != nil {
			c.offers.With(p.id, "error").Inc()
			c.noteFailure(p, err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		c.noteSuccess(p)
		if resp.StatusCode/100 == 2 {
			c.offers.With(p.id, "ok").Inc()
		} else {
			c.offers.With(p.id, "error").Inc()
			c.log.Warn("cluster: back-fill rejected", "peer", p.id, "key", key, "status", resp.StatusCode)
		}
	}()
}

// acquire takes a forward slot on p: immediately if one is free, by waiting
// (bounded by the backlog and ctx) otherwise. This is the bounded forward
// queue: window in-flight plus backlog waiting, everything past that shed.
func (c *Cluster) acquire(ctx context.Context, p *peer) error {
	select {
	case p.window <- struct{}{}:
		return nil
	default:
	}
	if int(p.waiters.Add(1)) > c.opt.ForwardBacklog {
		p.waiters.Add(-1)
		return ErrSaturated
	}
	defer p.waiters.Add(-1)
	select {
	case p.window <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff sleeps before retry attempt (1-based): exponential from
// BackoffBase, capped, never shorter than the server's Retry-After.
func (c *Cluster) backoff(ctx context.Context, attempt int, retryAfter time.Duration) error {
	d := c.opt.BackoffBase << (attempt - 1)
	if d > maxBackoff {
		d = maxBackoff
	}
	if retryAfter > d {
		d = retryAfter
	}
	if c.sleep != nil {
		c.sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter reads a delay-seconds Retry-After; absent or malformed
// reads as zero (the exponential backoff still applies).
func parseRetryAfter(h http.Header) time.Duration {
	raw := h.Get("Retry-After")
	if raw == "" {
		return 0
	}
	secs, err := strconv.Atoi(raw)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// healthLoop probes every peer until Close.
func (c *Cluster) healthLoop(ctx context.Context) {
	defer close(c.done)
	t := time.NewTicker(c.opt.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.PollOnce(ctx)
		}
	}
}

// PollOnce runs one liveness sweep over every peer. The background loop
// calls it on each tick; tests call it directly.
func (c *Cluster) PollOnce(ctx context.Context) {
	for _, id := range c.order {
		p := c.peers[id]
		hctx, cancel := context.WithTimeout(ctx, c.opt.HealthTimeout)
		req, err := http.NewRequestWithContext(hctx, http.MethodGet, p.url+"/v1/healthz", nil)
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set(ForwardedHeader, c.self)
		resp, err := c.http.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		if err != nil {
			c.noteFailure(p, err)
		} else if resp.StatusCode != http.StatusOK {
			c.noteFailure(p, fmt.Errorf("healthz status %d", resp.StatusCode))
		} else {
			c.noteSuccess(p)
		}
	}
}

// noteFailure counts one failed interaction with p and applies the
// suspect/down transition. Request-path failures feed the same counter as
// health probes, so a peer dying mid-sweep is demoted without waiting for
// the poll interval.
func (c *Cluster) noteFailure(p *peer, cause error) {
	fails := p.fails.Add(1)
	next := Suspect
	if int(fails) >= c.opt.DownAfter {
		next = Down
	}
	c.transition(p, next, cause)
}

// noteSuccess resets p to alive.
func (c *Cluster) noteSuccess(p *peer) {
	p.fails.Store(0)
	c.transition(p, Alive, nil)
}

// transition publishes a state change (idempotent when the state holds).
func (c *Cluster) transition(p *peer, next State, cause error) {
	prev := State(p.state.Swap(int32(next)))
	if prev == next {
		return
	}
	c.peerState.With(p.id).Set(next.gaugeValue())
	if cause != nil {
		c.log.Warn("cluster: peer state changed", "peer", p.id, "from", prev.String(),
			"to", next.String(), "cause", cause)
	} else {
		c.log.Info("cluster: peer state changed", "peer", p.id, "from", prev.String(),
			"to", next.String())
	}
}

// MemberInfo is one member's snapshot on the /v1/cluster surface.
type MemberInfo struct {
	ID       string `json:"id"`
	URL      string `json:"url,omitempty"`
	State    string `json:"state"`
	Fails    int    `json:"fails,omitempty"`
	InFlight int    `json:"in_flight,omitempty"` // occupied forward slots
	Self     bool   `json:"self,omitempty"`
}

// Snapshot is the fleet as this daemon sees it.
type Snapshot struct {
	Self    string       `json:"self"`
	VNodes  int          `json:"vnodes"`
	Members []MemberInfo `json:"members"`
}

// Info snapshots membership, liveness, and flow-control occupancy.
func (c *Cluster) Info() Snapshot {
	s := Snapshot{Self: c.self, VNodes: c.opt.VNodes}
	s.Members = append(s.Members, MemberInfo{ID: c.self, State: Alive.String(), Self: true})
	for _, id := range c.order {
		p := c.peers[id]
		s.Members = append(s.Members, MemberInfo{
			ID:       p.id,
			URL:      p.url,
			State:    State(p.state.Load()).String(),
			Fails:    int(p.fails.Load()),
			InFlight: len(p.window),
		})
	}
	sort.Slice(s.Members, func(i, j int) bool { return s.Members[i].ID < s.Members[j].ID })
	return s
}
