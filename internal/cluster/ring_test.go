package cluster

import (
	"fmt"
	"testing"
)

// TestRankedDeterministicAcrossInputOrder: placement must be a pure function
// of the member-ID set — every daemon parses the same -peers list, possibly
// in a different order, and must still agree on every key's owner.
func TestRankedDeterministicAcrossInputOrder(t *testing.T) {
	a := newRing([]string{"a", "b", "c"}, 64)
	b := newRing([]string{"c", "a", "b"}, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		ra, rb := a.ranked(key), b.ranked(key)
		if len(ra) != 3 || len(rb) != 3 {
			t.Fatalf("ranked(%q) lengths = %d, %d, want 3", key, len(ra), len(rb))
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("ranked(%q) diverged by input order: %v vs %v", key, ra, rb)
			}
		}
	}
}

// TestRankedCoversAllMembersOnce: the ranking is a permutation of the
// membership — every member appears exactly once.
func TestRankedCoversAllMembersOnce(t *testing.T) {
	r := newRing([]string{"a", "b", "c", "d"}, 32)
	seen := map[string]int{}
	for _, id := range r.ranked("some-key") {
		seen[id]++
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		if seen[id] != 1 {
			t.Fatalf("member %q appears %d times in ranking, want 1 (%v)", id, seen[id], seen)
		}
	}
}

// TestMemberLossMovesOnlyItsKeys: consistent hashing's point — dropping one
// member must not move any key between the survivors.
func TestMemberLossMovesOnlyItsKeys(t *testing.T) {
	full := newRing([]string{"a", "b", "c"}, 64)
	without := newRing([]string{"a", "c"}, 64)
	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.ranked(key)[0]
		after := without.ranked(key)[0]
		if before == "b" {
			moved++
			continue // b's keys must land somewhere else; any survivor is fine
		}
		if before != after {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestDistributionRoughlyBalanced: vnodes exist so no member owns a wildly
// outsized arc. The bound is loose — this guards against a broken hash, not
// perfect balance.
func TestDistributionRoughlyBalanced(t *testing.T) {
	r := newRing([]string{"a", "b", "c", "d"}, 64)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.ranked(fmt.Sprintf("key-%d", i))[0]]++
	}
	for id, n := range counts {
		share := float64(n) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %q owns %.0f%% of keys, outside [10%%,45%%] (%v)", id, share*100, counts)
		}
	}
}
