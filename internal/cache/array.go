// Package cache provides the building blocks of the cache hierarchy:
// set-associative arrays with tree-pseudoLRU replacement, miss status holding
// registers (MSHRs), and a per-PC stride prefetcher. The coherence package
// composes these into L1 caches and L2 NUCA slices.
package cache

import "fmt"

// Invalid is the reserved line state meaning "not present". Protocol
// packages layer their own states on top (any non-zero value).
const Invalid int8 = 0

// Line is one cache line's metadata. Tag stores the full line address
// (address >> log2(lineSize)); sets are selected by the low tag bits, so
// storing the whole line address keeps reverse mapping trivial.
type Line struct {
	Tag   uint64
	State int8
	Dirty bool
}

// Valid reports whether the line holds data.
func (l *Line) Valid() bool { return l.State != Invalid }

// Array is a set-associative cache array with tree-pseudoLRU replacement.
type Array struct {
	sets  int
	ways  int
	lines []Line   // sets*ways, row-major by set
	plru  []uint64 // one tree-bit word per set

	hits, misses, evictions uint64
}

// NewArray builds an array of sizeBytes capacity with the given
// associativity and line size. The set count must be a power of two and
// ways must be in [1, 64].
func NewArray(sizeBytes, ways, lineSize int) *Array {
	if ways <= 0 || ways > 64 {
		panic(fmt.Sprintf("cache: ways %d out of range", ways))
	}
	sets := sizeBytes / (ways * lineSize)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two (size=%d ways=%d line=%d)",
			sets, sizeBytes, ways, lineSize))
	}
	return &Array{
		sets:  sets,
		ways:  ways,
		lines: make([]Line, sets*ways),
		plru:  make([]uint64, sets),
	}
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

// SetOf maps a line address to its set index. The index XOR-folds upper
// address bits so large-aligned arrays (the workload arena aligns to the SPM
// size) do not pathologically collide — real allocations carry random page
// offsets that real caches benefit from; the fold stands in for that.
func (a *Array) SetOf(lineAddr uint64) int {
	bits := uint(0)
	for 1<<bits < a.sets {
		bits++
	}
	h := lineAddr ^ (lineAddr >> bits) ^ (lineAddr >> (2 * bits))
	return int(h & uint64(a.sets-1))
}

// Lookup finds a valid line by line address. When touch is set a hit also
// refreshes the pseudoLRU state. Returns nil on miss. Hit/miss counters are
// updated; use Peek for statistics-neutral inspection.
func (a *Array) Lookup(lineAddr uint64, touch bool) *Line {
	set := a.SetOf(lineAddr)
	base := set * a.ways
	for w := 0; w < a.ways; w++ {
		l := &a.lines[base+w]
		if l.Valid() && l.Tag == lineAddr {
			a.hits++
			if touch {
				a.touch(set, w)
			}
			return l
		}
	}
	a.misses++
	return nil
}

// Peek is Lookup without statistics or LRU side effects.
func (a *Array) Peek(lineAddr uint64) *Line {
	base := a.SetOf(lineAddr) * a.ways
	for w := 0; w < a.ways; w++ {
		l := &a.lines[base+w]
		if l.Valid() && l.Tag == lineAddr {
			return l
		}
	}
	return nil
}

// Insert allocates a line for lineAddr with the given state, evicting the
// pseudoLRU victim if the set is full. It returns the new line and, when an
// eviction occurred, the victim's metadata (its line address is victim.Tag).
// Inserting an address that is already present is a protocol bug and panics.
func (a *Array) Insert(lineAddr uint64, state int8) (inserted *Line, victim Line, evicted bool) {
	if a.Peek(lineAddr) != nil {
		panic(fmt.Sprintf("cache: double insert of line %#x", lineAddr))
	}
	set := a.SetOf(lineAddr)
	base := set * a.ways

	way := -1
	for w := 0; w < a.ways; w++ {
		if !a.lines[base+w].Valid() {
			way = w
			break
		}
	}
	if way < 0 {
		way = a.victimWay(set)
		victim = a.lines[base+way]
		evicted = true
		a.evictions++
	}
	a.lines[base+way] = Line{Tag: lineAddr, State: state}
	a.touch(set, way)
	return &a.lines[base+way], victim, evicted
}

// Invalidate removes a line if present, returning its prior metadata.
func (a *Array) Invalidate(lineAddr uint64) (old Line, ok bool) {
	base := a.SetOf(lineAddr) * a.ways
	for w := 0; w < a.ways; w++ {
		l := &a.lines[base+w]
		if l.Valid() && l.Tag == lineAddr {
			old = *l
			*l = Line{}
			return old, true
		}
	}
	return Line{}, false
}

// touch marks way as most recently used within set by flipping the tree
// bits along the root-to-leaf path away from it.
func (a *Array) touch(set, way int) {
	bits := a.plru[set]
	node := 0 // root of the implicit tree, nodes numbered 0..ways-2
	lo, hi := 0, a.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			bits |= 1 << uint(node) // point away: toward upper half
			node = 2*node + 1
			hi = mid
		} else {
			bits &^= 1 << uint(node) // point away: toward lower half
			node = 2*node + 2
			lo = mid
		}
	}
	a.plru[set] = bits
}

// victimWay walks the tree bits toward the pseudo-least-recently-used way.
func (a *Array) victimWay(set int) int {
	bits := a.plru[set]
	node := 0
	lo, hi := 0, a.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if bits&(1<<uint(node)) != 0 { // bit set: victim in upper half
			node = 2*node + 2
			lo = mid
		} else { // bit clear: victim in lower half
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// Hits returns the lookup hit count.
func (a *Array) Hits() uint64 { return a.hits }

// Misses returns the lookup miss count.
func (a *Array) Misses() uint64 { return a.misses }

// Evictions returns the count of valid lines displaced by Insert.
func (a *Array) Evictions() uint64 { return a.evictions }

// ValidCount returns how many lines are currently valid (O(capacity); for
// tests and debugging).
func (a *Array) ValidCount() int {
	n := 0
	for i := range a.lines {
		if a.lines[i].Valid() {
			n++
		}
	}
	return n
}
