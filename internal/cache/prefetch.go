package cache

// StridePrefetcher is the per-PC stride prefetcher attached to the L1
// D-cache (Table 1). Each static load/store PC gets a table entry tracking
// its last line address and stride; once a stride repeats (confidence
// threshold), the prefetcher emits up to Degree line addresses ahead of the
// demand stream.
type StridePrefetcher struct {
	entries  []pfEntry
	degree   int
	distance int

	issued uint64
}

type pfEntry struct {
	pc       uint64
	lastLine uint64
	stride   int64
	conf     int8
	frontier int64 // furthest line already prefetched (stride direction)
}

const confThreshold = 2

// NewStridePrefetcher builds a direct-mapped table of tableSize entries that
// prefetches degree lines at a time, distance strides ahead of the demand
// access.
func NewStridePrefetcher(tableSize, degree, distance int) *StridePrefetcher {
	if tableSize <= 0 {
		tableSize = 1
	}
	return &StridePrefetcher{
		entries:  make([]pfEntry, tableSize),
		degree:   degree,
		distance: distance,
	}
}

// Observe feeds a demand access (PC, line address) to the prefetcher and
// returns the line addresses to prefetch (possibly none).
func (p *StridePrefetcher) Observe(pc, lineAddr uint64) []uint64 {
	if p.degree <= 0 {
		return nil
	}
	e := &p.entries[pc%uint64(len(p.entries))]
	if e.pc != pc {
		*e = pfEntry{pc: pc, lastLine: lineAddr}
		return nil
	}
	stride := int64(lineAddr) - int64(e.lastLine)
	if stride == 0 {
		return nil // same line; no new information
	}
	if stride == e.stride {
		if e.conf < confThreshold {
			e.conf++
			if e.conf == confThreshold {
				e.frontier = int64(lineAddr)
			}
		}
	} else {
		e.stride = stride
		e.conf = 1
	}
	e.lastLine = lineAddr
	if e.conf < confThreshold {
		return nil
	}
	// Steady state: cover the window [distance, distance+degree) strides
	// ahead of the demand stream, never re-issuing covered lines. The
	// frontier caps lookahead so the prefetcher cannot run away from the
	// demand stream and thrash the cache.
	var out []uint64
	for k := int64(p.distance); k < int64(p.distance+p.degree); k++ {
		cand := int64(lineAddr) + e.stride*k
		if e.stride > 0 && cand <= e.frontier {
			continue
		}
		if e.stride < 0 && cand >= e.frontier {
			continue
		}
		e.frontier = cand
		out = append(out, uint64(cand))
	}
	p.issued += uint64(len(out))
	return out
}

// Issued returns the total number of prefetch addresses emitted.
func (p *StridePrefetcher) Issued() uint64 { return p.issued }
