package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

const (
	stShared int8 = 1
	stMod    int8 = 2
)

func TestArrayGeometry(t *testing.T) {
	a := NewArray(32<<10, 4, 64) // 32KB 4-way 64B = 128 sets
	if a.Sets() != 128 || a.Ways() != 4 {
		t.Fatalf("geometry %dx%d", a.Sets(), a.Ways())
	}
}

func TestArrayHitMiss(t *testing.T) {
	a := NewArray(1<<10, 2, 64) // 8 sets
	if a.Lookup(0x10, true) != nil {
		t.Fatal("lookup in empty array hit")
	}
	a.Insert(0x10, stShared)
	l := a.Lookup(0x10, true)
	if l == nil || l.Tag != 0x10 || l.State != stShared {
		t.Fatalf("lookup after insert = %+v", l)
	}
	if a.Hits() != 1 || a.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", a.Hits(), a.Misses())
	}
}

func TestArrayPeekNoSideEffects(t *testing.T) {
	a := NewArray(1<<10, 2, 64)
	a.Insert(0x10, stShared)
	h, m := a.Hits(), a.Misses()
	if a.Peek(0x10) == nil || a.Peek(0x11) != nil {
		t.Fatal("Peek wrong")
	}
	if a.Hits() != h || a.Misses() != m {
		t.Fatal("Peek changed statistics")
	}
}

func TestArrayEviction(t *testing.T) {
	a := NewArray(2*64, 2, 64) // 1 set, 2 ways
	a.Insert(0, stShared)
	a.Insert(1, stShared)
	_, _, ev := a.Insert(2, stMod)
	if !ev {
		t.Fatal("full set insert did not evict")
	}
	if a.ValidCount() != 2 {
		t.Fatalf("ValidCount = %d", a.ValidCount())
	}
	if a.Evictions() != 1 {
		t.Fatalf("Evictions = %d", a.Evictions())
	}
}

func TestArrayPLRUVictimIsLeastRecent(t *testing.T) {
	a := NewArray(4*64, 4, 64) // 1 set, 4 ways
	for i := uint64(0); i < 4; i++ {
		a.Insert(i, stShared)
	}
	// Touch 0,2,1,3: tree PLRU then points at way 0 (the true LRU here).
	a.Lookup(0, true)
	a.Lookup(2, true)
	a.Lookup(1, true)
	a.Lookup(3, true)
	_, victim, ev := a.Insert(10, stShared)
	if !ev {
		t.Fatal("no eviction")
	}
	if victim.Tag != 0 {
		t.Fatalf("victim = %#x, want 0 (tree PLRU points away from recent touches)", victim.Tag)
	}
}

func TestArrayInvalidate(t *testing.T) {
	a := NewArray(1<<10, 2, 64)
	a.Insert(5, stMod)
	old, ok := a.Invalidate(5)
	if !ok || old.State != stMod {
		t.Fatalf("invalidate = %+v %v", old, ok)
	}
	if a.Peek(5) != nil {
		t.Fatal("line still present after invalidate")
	}
	if _, ok := a.Invalidate(5); ok {
		t.Fatal("second invalidate succeeded")
	}
}

func TestArrayDoubleInsertPanics(t *testing.T) {
	a := NewArray(1<<10, 2, 64)
	a.Insert(1, stShared)
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	a.Insert(1, stShared)
}

func TestArrayDistinctSetsDoNotConflict(t *testing.T) {
	a := NewArray(4<<10, 2, 64) // 32 sets, 2 ways
	// Find three addresses in the same (hashed) set and one outside it.
	target := a.SetOf(0)
	var same []uint64
	var other uint64
	for la := uint64(0); la < 4096 && (len(same) < 3 || other == 0); la++ {
		if a.SetOf(la) == target {
			if len(same) < 3 {
				same = append(same, la)
			}
		} else if other == 0 {
			other = la
		}
	}
	a.Insert(same[0], stShared)
	a.Insert(same[1], stShared)
	a.Insert(other, stShared)
	_, _, ev := a.Insert(same[2], stShared) // evicts within the target set
	if !ev {
		t.Fatal("full set insert did not evict")
	}
	if a.Peek(other) == nil {
		t.Fatal("unrelated set affected")
	}
	if a.ValidCount() != 3 {
		t.Fatalf("ValidCount = %d, want 3", a.ValidCount())
	}
}

// Property: an array never holds more valid lines than its capacity and a
// just-inserted line is always found.
func TestArrayCapacityProperty(t *testing.T) {
	prop := func(addrs []uint16) bool {
		a := NewArray(1<<10, 4, 64) // 4 sets * 4 ways = 16 lines
		for _, ad := range addrs {
			la := uint64(ad % 256)
			if a.Peek(la) == nil {
				a.Insert(la, stShared)
			}
			if a.Peek(la) == nil {
				return false
			}
			if a.ValidCount() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property (PLRU inclusion-adjacent): after touching a line, inserting one
// new line into the same set never evicts the just-touched line (ways >= 2).
func TestPLRUProtectsMRUProperty(t *testing.T) {
	prop := func(seed []uint8) bool {
		a := NewArray(4*64, 4, 64) // 1 set
		for i := uint64(0); i < 4; i++ {
			a.Insert(i, stShared)
		}
		for _, s := range seed {
			keep := uint64(s % 4)
			a.Lookup(keep, true)
			_, victim, ev := a.Insert(100+keep, stShared)
			if !ev {
				return false
			}
			if victim.Tag == keep {
				return false // MRU line evicted
			}
			a.Invalidate(100 + keep) // restore
			_, ok := a.Invalidate(victim.Tag)
			_ = ok
			a.Insert(victim.Tag, stShared) // put victim back
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRBasics(t *testing.T) {
	m := NewMSHR(2)
	ran := 0
	if !m.Allocate(1, false, sim.AsCont(func() { ran++ })) {
		t.Fatal("allocate failed on empty file")
	}
	if !m.Pending(1) || m.Pending(2) {
		t.Fatal("Pending wrong")
	}
	m.AddWaiter(1, true, sim.AsCont(func() { ran++ }))
	if !m.WantsWrite(1) {
		t.Fatal("write upgrade lost")
	}
	m.Complete(1, func(c sim.Cont) { c.Fire() })
	if ran != 2 {
		t.Fatalf("waiters run = %d, want 2", ran)
	}
	if m.Pending(1) {
		t.Fatal("entry survived Complete")
	}
}

func TestMSHRFull(t *testing.T) {
	m := NewMSHR(1)
	m.Allocate(1, false, nil)
	if !m.Full() {
		t.Fatal("Full() = false at capacity")
	}
	if m.Allocate(2, false, nil) {
		t.Fatal("allocate succeeded on full file")
	}
	if m.InFlight() != 1 {
		t.Fatalf("InFlight = %d", m.InFlight())
	}
}

func TestMSHRDoubleAllocatePanics(t *testing.T) {
	m := NewMSHR(4)
	m.Allocate(1, false, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double allocate did not panic")
		}
	}()
	m.Allocate(1, false, nil)
}

func TestMSHRWantsWriteFromAllocate(t *testing.T) {
	m := NewMSHR(4)
	m.Allocate(3, true, nil)
	if !m.WantsWrite(3) {
		t.Fatal("write intent from Allocate lost")
	}
	if m.WantsWrite(99) {
		t.Fatal("WantsWrite on absent line")
	}
}

// TestMSHRChurn drives the open-addressed table through interleaved
// allocate/complete cycles — including colliding keys and deletions in every
// relative order — and cross-checks against a map-based model. This is what
// exercises backward-shift deletion.
func TestMSHRChurn(t *testing.T) {
	const cap = 8
	m := NewMSHR(cap)
	model := map[uint64][]int{}
	fired := map[int]bool{}
	next := 0
	rng := uint64(0x12345)
	rand := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	for step := 0; step < 5000; step++ {
		// Small key space forces probe-chain overlap.
		line := rand(32)
		switch {
		case m.Pending(line):
			if rand(2) == 0 {
				id := next
				next++
				m.AddWaiter(line, rand(2) == 0, contID(id, fired))
				model[line] = append(model[line], id)
			} else {
				want := model[line]
				delete(model, line)
				m.Complete(line, func(c sim.Cont) { c.Fire() })
				for _, id := range want {
					if !fired[id] {
						t.Fatalf("step %d: waiter %d for line %d not fired", step, id, line)
					}
				}
			}
		case !m.Full():
			id := next
			next++
			if !m.Allocate(line, rand(2) == 0, contID(id, fired)) {
				t.Fatalf("step %d: allocate failed below capacity", step)
			}
			model[line] = []int{id}
		default:
			// Full: complete an arbitrary pending line.
			for l := range model {
				want := model[l]
				delete(model, l)
				m.Complete(l, func(c sim.Cont) { c.Fire() })
				for _, id := range want {
					if !fired[id] {
						t.Fatalf("step %d: waiter %d for line %d not fired", step, id, l)
					}
				}
				break
			}
		}
		if m.InFlight() != len(model) {
			t.Fatalf("step %d: InFlight=%d model=%d", step, m.InFlight(), len(model))
		}
		for l := range model {
			if !m.Pending(l) {
				t.Fatalf("step %d: line %d lost from table", step, l)
			}
		}
	}
}

func contID(id int, fired map[int]bool) sim.Cont {
	return sim.AsCont(func() { fired[id] = true })
}

func TestPrefetcherDetectsStride(t *testing.T) {
	p := NewStridePrefetcher(16, 2, 4)
	pc := uint64(0x400)
	var got []uint64
	for i := uint64(0); i < 6; i++ {
		got = p.Observe(pc, 100+i) // stride 1
		if i < 2 && len(got) != 0 {
			t.Fatalf("prefetched before confidence at step %d: %v", i, got)
		}
	}
	// Steady state: issues at the consumption rate (one line per line
	// crossed), keeping the covered window bounded.
	if len(got) != 1 {
		t.Fatalf("steady state issued %d, want 1", len(got))
	}
	for _, la := range got {
		if la <= 105 {
			t.Fatalf("prefetch %d not ahead of demand 105", la)
		}
	}
}

func TestPrefetcherNoDuplicateCoverage(t *testing.T) {
	p := NewStridePrefetcher(16, 2, 2)
	pc := uint64(0x88)
	seen := map[uint64]int{}
	for i := uint64(0); i < 20; i++ {
		for _, la := range p.Observe(pc, 200+i) {
			seen[la]++
		}
	}
	for la, n := range seen {
		if n > 1 {
			t.Fatalf("line %d prefetched %d times", la, n)
		}
	}
	if p.Issued() == 0 {
		t.Fatal("no prefetches issued")
	}
}

func TestPrefetcherStrideChangeResets(t *testing.T) {
	p := NewStridePrefetcher(16, 2, 2)
	pc := uint64(0x42)
	p.Observe(pc, 10)
	p.Observe(pc, 11)
	p.Observe(pc, 12) // confident, stride 1
	if got := p.Observe(pc, 100); len(got) != 0 {
		t.Fatalf("prefetched immediately after stride change: %v", got)
	}
}

func TestPrefetcherNegativeStride(t *testing.T) {
	p := NewStridePrefetcher(16, 1, 1)
	pc := uint64(0x9)
	var got []uint64
	for i := 0; i < 5; i++ {
		got = p.Observe(pc, uint64(1000-i))
	}
	if len(got) != 1 || got[0] >= 996 {
		t.Fatalf("negative stride prefetch = %v, want < 996", got)
	}
}

func TestPrefetcherRandomStreamSilent(t *testing.T) {
	p := NewStridePrefetcher(16, 2, 2)
	pc := uint64(0x77)
	addrs := []uint64{5, 902, 13, 404, 77, 1009, 3, 555}
	total := 0
	for _, a := range addrs {
		total += len(p.Observe(pc, a))
	}
	if total != 0 {
		t.Fatalf("random stream triggered %d prefetches", total)
	}
}

func TestPrefetcherPCAliasing(t *testing.T) {
	p := NewStridePrefetcher(1, 2, 2) // single entry: all PCs alias
	p.Observe(1, 10)
	p.Observe(1, 11)
	// Different PC steals the entry.
	p.Observe(2, 500)
	if got := p.Observe(2, 501); len(got) != 0 {
		t.Fatalf("aliased entry kept stale confidence: %v", got)
	}
}

func TestPrefetcherZeroDegree(t *testing.T) {
	p := NewStridePrefetcher(4, 0, 2)
	for i := uint64(0); i < 10; i++ {
		if got := p.Observe(7, i); len(got) != 0 {
			t.Fatal("degree-0 prefetcher issued prefetches")
		}
	}
}
