package cache

import "fmt"

// MSHR models the miss status holding registers of a cache controller: one
// entry per in-flight line fill, each holding the continuations waiting for
// the fill to complete. Secondary misses on the same line coalesce onto the
// existing entry instead of issuing new requests.
type MSHR struct {
	capacity int
	entries  map[uint64]*mshrEntry
}

type mshrEntry struct {
	waiters   []func()
	wantWrite bool // some waiter needs write permission
}

// NewMSHR returns an MSHR file with the given entry capacity.
func NewMSHR(capacity int) *MSHR {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: MSHR capacity %d", capacity))
	}
	return &MSHR{capacity: capacity, entries: make(map[uint64]*mshrEntry)}
}

// Pending reports whether a fill for lineAddr is already in flight.
func (m *MSHR) Pending(lineAddr uint64) bool {
	_, ok := m.entries[lineAddr]
	return ok
}

// Full reports whether no new entry can be allocated.
func (m *MSHR) Full() bool { return len(m.entries) >= m.capacity }

// InFlight returns the number of allocated entries.
func (m *MSHR) InFlight() int { return len(m.entries) }

// Allocate creates an entry for lineAddr with one waiter. It reports false
// (and does nothing) when the file is full. Allocating an already-pending
// line is a bug: callers must coalesce via AddWaiter.
func (m *MSHR) Allocate(lineAddr uint64, write bool, waiter func()) bool {
	if m.Pending(lineAddr) {
		panic(fmt.Sprintf("cache: MSHR double-allocate for line %#x", lineAddr))
	}
	if m.Full() {
		return false
	}
	m.entries[lineAddr] = &mshrEntry{waiters: []func(){waiter}, wantWrite: write}
	return true
}

// AddWaiter coalesces a secondary miss onto the pending entry.
func (m *MSHR) AddWaiter(lineAddr uint64, write bool, waiter func()) {
	e, ok := m.entries[lineAddr]
	if !ok {
		panic(fmt.Sprintf("cache: AddWaiter on non-pending line %#x", lineAddr))
	}
	e.waiters = append(e.waiters, waiter)
	e.wantWrite = e.wantWrite || write
}

// WantsWrite reports whether the pending entry requires write permission.
func (m *MSHR) WantsWrite(lineAddr uint64) bool {
	e, ok := m.entries[lineAddr]
	return ok && e.wantWrite
}

// Complete removes the entry and returns its waiters for the caller to run.
func (m *MSHR) Complete(lineAddr uint64) []func() {
	e, ok := m.entries[lineAddr]
	if !ok {
		panic(fmt.Sprintf("cache: Complete on non-pending line %#x", lineAddr))
	}
	delete(m.entries, lineAddr)
	return e.waiters
}
