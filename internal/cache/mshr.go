package cache

import (
	"fmt"

	"repro/internal/sim"
)

// MSHR models the miss status holding registers of a cache controller: one
// entry per in-flight line fill, each holding the continuations waiting for
// the fill to complete. Secondary misses on the same line coalesce onto the
// existing entry instead of issuing new requests.
//
// The file is a flat open-addressed table (linear probing, backward-shift
// deletion) with inline entries, sized at twice the entry capacity so probe
// chains stay short and the table never grows. Waiters are pooled free-list
// nodes, so steady-state miss coalescing allocates nothing.
type MSHR struct {
	capacity int
	count    int
	mask     uint64
	tab      []mshrSlot
	freeW    *mshrWaiter
}

// mshrSlot is one inline table entry. A zero line address is a valid key, so
// occupancy is tracked by the used flag, not by a sentinel key.
type mshrSlot struct {
	line       uint64
	used       bool
	wantWrite  bool // some waiter needs write permission
	head, tail *mshrWaiter
}

// mshrWaiter is a pooled FIFO node holding one coalesced continuation.
type mshrWaiter struct {
	c    sim.Cont
	next *mshrWaiter
}

// NewMSHR returns an MSHR file with the given entry capacity.
func NewMSHR(capacity int) *MSHR {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: MSHR capacity %d", capacity))
	}
	size := 8
	for size < 2*capacity {
		size *= 2
	}
	return &MSHR{capacity: capacity, mask: uint64(size - 1), tab: make([]mshrSlot, size)}
}

// ideal returns the home slot of a line (Fibonacci hashing: multiply by the
// 64-bit golden ratio and mask).
func (m *MSHR) ideal(line uint64) uint64 {
	return (line * 0x9E3779B97F4A7C15) & m.mask
}

// find returns the slot index of line, or -1. Terminates because occupancy
// is bounded by capacity, which is at most half the table.
func (m *MSHR) find(line uint64) int {
	for i := m.ideal(line); ; i = (i + 1) & m.mask {
		s := &m.tab[i]
		if !s.used {
			return -1
		}
		if s.line == line {
			return int(i)
		}
	}
}

// del removes slot i, back-shifting displaced successors so no tombstones
// accumulate: any later element whose home slot lies cyclically at or before
// the vacated slot moves into it, and the scan repeats from the new hole.
func (m *MSHR) del(i uint64) {
	j := i
	for {
		m.tab[i] = mshrSlot{}
		for {
			j = (j + 1) & m.mask
			s := &m.tab[j]
			if !s.used {
				return
			}
			k := m.ideal(s.line)
			// Movable when k is cyclically outside (i, j].
			if (j >= i && (k <= i || k > j)) || (j < i && k <= i && k > j) {
				m.tab[i] = *s
				i = j
				break
			}
		}
	}
}

// pushWaiter appends a continuation to the slot's FIFO, reusing pool nodes.
func (m *MSHR) pushWaiter(s *mshrSlot, c sim.Cont) {
	w := m.freeW
	if w != nil {
		m.freeW = w.next
		w.next = nil
	} else {
		w = &mshrWaiter{}
	}
	w.c = c
	if s.tail == nil {
		s.head = w
	} else {
		s.tail.next = w
	}
	s.tail = w
}

// Pending reports whether a fill for lineAddr is already in flight.
func (m *MSHR) Pending(lineAddr uint64) bool { return m.find(lineAddr) >= 0 }

// Full reports whether no new entry can be allocated.
func (m *MSHR) Full() bool { return m.count >= m.capacity }

// InFlight returns the number of allocated entries.
func (m *MSHR) InFlight() int { return m.count }

// Allocate creates an entry for lineAddr with one waiter. It reports false
// (and does nothing) when the file is full. Allocating an already-pending
// line is a bug: callers must coalesce via AddWaiter.
func (m *MSHR) Allocate(lineAddr uint64, write bool, waiter sim.Cont) bool {
	if m.Pending(lineAddr) {
		panic(fmt.Sprintf("cache: MSHR double-allocate for line %#x", lineAddr))
	}
	if m.Full() {
		return false
	}
	i := m.ideal(lineAddr)
	for m.tab[i].used {
		i = (i + 1) & m.mask
	}
	s := &m.tab[i]
	s.line, s.used, s.wantWrite = lineAddr, true, write
	if waiter == nil {
		waiter = sim.Nop
	}
	m.pushWaiter(s, waiter)
	m.count++
	return true
}

// AddWaiter coalesces a secondary miss onto the pending entry.
func (m *MSHR) AddWaiter(lineAddr uint64, write bool, waiter sim.Cont) {
	i := m.find(lineAddr)
	if i < 0 {
		panic(fmt.Sprintf("cache: AddWaiter on non-pending line %#x", lineAddr))
	}
	s := &m.tab[i]
	if waiter == nil {
		waiter = sim.Nop
	}
	m.pushWaiter(s, waiter)
	s.wantWrite = s.wantWrite || write
}

// WantsWrite reports whether the pending entry requires write permission.
func (m *MSHR) WantsWrite(lineAddr uint64) bool {
	i := m.find(lineAddr)
	return i >= 0 && m.tab[i].wantWrite
}

// Complete removes the entry and hands each waiter to fire in FIFO order.
// Waiter nodes return to the pool before fire runs, so a continuation that
// re-enters the MSHR reuses them immediately.
func (m *MSHR) Complete(lineAddr uint64, fire func(sim.Cont)) {
	i := m.find(lineAddr)
	if i < 0 {
		panic(fmt.Sprintf("cache: Complete on non-pending line %#x", lineAddr))
	}
	w := m.tab[i].head
	m.del(uint64(i))
	m.count--
	for w != nil {
		n := w.next
		c := w.c
		w.c = nil
		w.next = m.freeW
		m.freeW = w
		fire(c)
		w = n
	}
}
