package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

type countCont struct{ fired int }

func (c *countCont) Fire() { c.fired++ }

func TestTraceRingOverwritesOldest(t *testing.T) {
	tr := newTrace(4)
	tr.eng = sim.NewEngine()
	for i := 0; i < 10; i++ {
		tr.Add(KNoCSend, 0, 0, uint64(i), 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	ev := tr.Events()
	for i, e := range ev {
		if want := uint64(6 + i); e.Arg != want {
			t.Errorf("Events()[%d].Arg = %d, want %d (oldest-first suffix)", i, e.Arg, want)
		}
	}
}

func TestSpanRecordsDurationAndRecycles(t *testing.T) {
	eng := sim.NewEngine()
	tr := newTrace(8)
	tr.eng = eng
	done := &countCont{}

	c := tr.Span(KCohAccess, 3, 0x40, 1, done)
	eng.ScheduleCont(10, c)
	eng.Run()

	if done.fired != 1 {
		t.Fatalf("wrapped continuation fired %d times, want 1", done.fired)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	e := tr.Events()[0]
	if e.Kind != KCohAccess || e.Core != 3 || e.Cycle != 10 || e.Dur != 10 || e.Arg != 0x40 || e.Arg2 != 1 {
		t.Fatalf("recorded event = %+v, want {Cycle:10 Dur:10 Kind:KCohAccess Core:3 Arg:0x40 Arg2:1}", e)
	}

	// The fired span must have returned to the free list and be reused by
	// the next Span — the steady state of a traced run allocates nothing.
	recycled := tr.freeSpans
	if recycled == nil {
		t.Fatal("fired span was not recycled onto the free list")
	}
	if got := tr.Span(KGuarded, 0, 0, 0, done); got != sim.Cont(recycled) {
		t.Error("Span did not reuse the recycled node")
	}
}

func TestRecorderSampling(t *testing.T) {
	eng := sim.NewEngine()
	var a, b uint64
	r := NewRecorder(10, 0)
	r.Bind(eng)
	r.AddProbe("a", func() uint64 { return a })
	r.AddProbe("b", func() uint64 { return b })

	for _, at := range []sim.Time{5, 15, 25} {
		eng.Schedule(at, func() { a++ })
	}
	eng.Schedule(25, func() { b += 3 })

	r.Start()
	eng.Run()
	r.Finish()

	ts := r.Series()
	if ts.Interval != 10 {
		t.Errorf("Interval = %d, want 10", ts.Interval)
	}
	if len(ts.Names) != 2 || ts.Names[0] != "a" || ts.Names[1] != "b" {
		t.Errorf("Names = %v, want [a b]", ts.Names)
	}
	want := []Epoch{
		{Cycle: 10, Deltas: []uint64{1, 0}},
		{Cycle: 20, Deltas: []uint64{1, 0}},
		{Cycle: 30, Deltas: []uint64{1, 3}},
	}
	if len(ts.Epochs) != len(want) {
		t.Fatalf("got %d epochs %v, want %d", len(ts.Epochs), ts.Epochs, len(want))
	}
	for i, w := range want {
		g := ts.Epochs[i]
		if g.Cycle != w.Cycle || len(g.Deltas) != len(w.Deltas) {
			t.Fatalf("epoch %d = %+v, want %+v", i, g, w)
		}
		for j := range w.Deltas {
			if g.Deltas[j] != w.Deltas[j] {
				t.Errorf("epoch %d delta %d = %d, want %d", i, j, g.Deltas[j], w.Deltas[j])
			}
		}
	}
	if ts.FinalCycle != 30 {
		t.Errorf("FinalCycle = %d, want 30", ts.FinalCycle)
	}
}

func TestRecorderElidesQuietEpochs(t *testing.T) {
	eng := sim.NewEngine()
	var a uint64
	r := NewRecorder(10, 0)
	r.Bind(eng)
	r.AddProbe("a", func() uint64 { return a })
	eng.Schedule(5, func() { a++ })
	eng.Schedule(35, func() { a++ })

	r.Start()
	eng.Run()
	r.Finish()

	ts := r.Series()
	if len(ts.Epochs) != 2 {
		t.Fatalf("got %d epochs %v, want 2 (quiet periods elided)", len(ts.Epochs), ts.Epochs)
	}
	if ts.Epochs[0].Cycle != 10 || ts.Epochs[1].Cycle != 40 {
		t.Errorf("epoch cycles = %d, %d, want 10, 40", ts.Epochs[0].Cycle, ts.Epochs[1].Cycle)
	}
}

func TestRecorderStopsWhenDrained(t *testing.T) {
	eng := sim.NewEngine()
	var a uint64
	r := NewRecorder(10, 0)
	r.Bind(eng)
	r.AddProbe("a", func() uint64 { return a })
	eng.Schedule(3, func() { a++ })

	r.Start()
	eng.Run() // must terminate: the sampler stops once it is the only work
	r.Finish()

	if eng.Pending() != 0 {
		t.Fatalf("engine still has %d pending events after Run", eng.Pending())
	}
}

func TestFinishOnUnstartedRecorderIsNoop(t *testing.T) {
	r := NewRecorder(0, 0) // inert: no sampling, no trace
	r.Bind(sim.NewEngine())
	r.Start()
	r.Finish()
	if ts := r.Series(); len(ts.Epochs) != 0 || ts.FinalCycle != 0 {
		t.Errorf("inert recorder produced %+v", ts)
	}
}

// sampleEvents covers every kind once, with representative packings.
func sampleEvents() []Event {
	return []Event{
		{Cycle: 12, Kind: KNoCSend, Core: 1, Arg: 5, Arg2: 64<<4 | 5},
		{Cycle: 20, Dur: 8, Kind: KCohAccess, Core: 2, Arg: 0x1040, Arg2: 1},
		{Cycle: 30, Dur: 4, Kind: KCohDMARead, Core: 0, Arg: 0x2000},
		{Cycle: 31, Dur: 4, Kind: KCohDMAWrite, Core: 0, Arg: 0x2040},
		{Cycle: 40, Kind: KDMACmd, Core: 3, Arg: 0x8000, Arg2: 256<<1 | 1},
		{Cycle: 55, Dur: 15, Kind: KDMATag, Core: 3, Arg: 2},
		{Cycle: 60, Dur: 6, Kind: KStall, Core: 1, Arg: 4},
		{Cycle: 61, Kind: KFlush, Core: 1, Arg: 0x100},
		{Cycle: 70, Dur: 9, Kind: KGuarded, Core: 2, Arg: 0x300, Arg2: 1},
	}
}

func TestWriteJSONLParses(t *testing.T) {
	var buf bytes.Buffer
	events := sampleEvents()
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var je map[string]any
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			t.Fatalf("line %d is not JSON: %v", n, err)
		}
		if _, ok := je["kind"].(string); !ok {
			t.Fatalf("line %d has no kind: %s", n, sc.Text())
		}
		n++
	}
	if n != len(events) {
		t.Fatalf("got %d JSONL lines, want %d", n, len(events))
	}
}

func TestWriteChromeTraceParses(t *testing.T) {
	var buf bytes.Buffer
	events := sampleEvents()
	if err := WriteChromeTrace(&buf, events, map[string]string{"dropped": "0"}); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    uint64  `json:"ts"`
			Dur   *uint64 `json:"dur"`
			Scope string  `json:"s"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("not a trace_event JSON document: %v", err)
	}
	if len(ct.TraceEvents) != len(events) {
		t.Fatalf("got %d trace events, want %d", len(ct.TraceEvents), len(events))
	}
	if ct.OtherData["dropped"] != "0" {
		t.Errorf("otherData = %v, want dropped=0", ct.OtherData)
	}
	for i, ce := range ct.TraceEvents {
		e := events[i]
		switch {
		case e.Dur > 0:
			if ce.Phase != "X" || ce.Dur == nil {
				t.Errorf("event %d (%s): span exported as ph=%q dur=%v", i, e.Kind, ce.Phase, ce.Dur)
				continue
			}
			if ce.TS+*ce.Dur != uint64(e.Cycle) {
				t.Errorf("event %d (%s): ts %d + dur %d != end cycle %d", i, e.Kind, ce.TS, *ce.Dur, e.Cycle)
			}
		default:
			if ce.Phase != "i" || ce.Scope != "t" || ce.TS != uint64(e.Cycle) {
				t.Errorf("event %d (%s): instant exported as ph=%q s=%q ts=%d", i, e.Kind, ce.Phase, ce.Scope, ce.TS)
			}
		}
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("Kind %d has no name", k)
		}
	}
	if numKinds.String() != "unknown" {
		t.Errorf("out-of-range kind renders %q", numKinds.String())
	}
}
