package telemetry

import "repro/internal/sim"

// Kind classifies one trace event. The set is deliberately small and flat —
// exporters map kinds to names; components pack their detail into Arg/Arg2.
type Kind uint8

const (
	// KNoCSend is a packet injection: Core = source node, Arg = destination
	// node, Arg2 = bytes<<4 | traffic category (noc.Category).
	KNoCSend Kind = iota
	// KCohAccess is one coherent L1D demand access, begin-to-done:
	// Arg = byte address, Arg2 = 1 for writes.
	KCohAccess
	// KCohDMARead is one dma-get line fetch riding the GM protocol,
	// begin-to-done: Arg = line address.
	KCohDMARead
	// KCohDMAWrite is one dma-put line write, begin-to-done: Arg = line
	// address.
	KCohDMAWrite
	// KDMACmd is a DMA command acceptance at the controller (instant):
	// Arg = GM address, Arg2 = bytes<<1 | put.
	KDMACmd
	// KDMATag is the retirement of every transfer under one DMA tag; the
	// duration spans first enqueue to last line completion. Arg = tag.
	KDMATag
	// KStall is one core stall, block-to-unblock: Arg = stall reason (an
	// index into StallReasons, mirroring cpu's blockReason order).
	KStall
	// KFlush is an LSQ-ordering pipeline flush (instant): Arg = the
	// conflicting SPM address (paper §3.4).
	KFlush
	// KGuarded is one guarded access through the SPM coherence protocol,
	// begin-to-done: Arg = byte address, Arg2 = 1 for stores.
	KGuarded

	numKinds
)

var kindNames = [numKinds]string{
	"noc.send", "coh.access", "coh.dma_read", "coh.dma_write",
	"dma.cmd", "dma.tag", "core.stall", "core.flush", "prot.guarded",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// StallReasons names KStall's Arg values. The order mirrors cpu's
// blockReason constants (cpu/core.go); index 0 is unused.
var StallReasons = []string{
	"none", "load", "store", "ifetch", "dma", "sync", "barrier", "drain",
}

// Event is one recorded trace event. Cycle is the event's end (or instant)
// timestamp; Dur > 0 makes it a span beginning at Cycle-Dur.
type Event struct {
	Cycle sim.Time
	Dur   sim.Time
	Kind  Kind
	Core  int32
	Arg   uint64
	Arg2  uint64
}

// Trace is a bounded ring buffer of events. When full it overwrites the
// oldest entries (the interesting end of a trace is almost always the most
// recent window) and counts what it dropped, so an exporter can say the
// trace is a suffix.
type Trace struct {
	eng     *sim.Engine
	buf     []Event
	next    int // write cursor
	n       int // population (<= len(buf))
	dropped uint64

	freeSpans *span
}

func newTrace(capacity int) *Trace {
	return &Trace{buf: make([]Event, capacity)}
}

// Add records one event ending now.
func (t *Trace) Add(k Kind, core int, dur sim.Time, arg, arg2 uint64) {
	if t.n == len(t.buf) {
		t.dropped++
	} else {
		t.n++
	}
	t.buf[t.next] = Event{Cycle: t.eng.Now(), Dur: dur, Kind: k, Core: int32(core), Arg: arg, Arg2: arg2}
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
}

// span is a pooled continuation wrapper: it stamps the begin cycle, and on
// Fire records the completed event before chaining to the wrapped
// continuation. Tracing is opt-in, so this indirection exists only on
// traced runs; the node recycles through the trace's free list, so even a
// traced run's steady state allocates nothing here.
type span struct {
	tr   *Trace
	kind Kind
	core int32
	arg  uint64
	arg2 uint64
	t0   sim.Time
	done sim.Cont
	next *span
}

func (s *span) Fire() {
	tr, done := s.tr, s.done
	tr.Add(s.kind, int(s.core), tr.eng.Now()-s.t0, s.arg, s.arg2)
	s.done = nil
	s.next = tr.freeSpans
	tr.freeSpans = s
	done.Fire()
}

// Span wraps done so that its firing records a (begin=now, end=fire) event.
// Instrumented components call it behind their nil-trace check:
//
//	if h.tr != nil {
//		done = h.tr.Span(telemetry.KCohAccess, core, addr, w, done)
//	}
func (t *Trace) Span(k Kind, core int, arg, arg2 uint64, done sim.Cont) sim.Cont {
	s := t.freeSpans
	if s != nil {
		t.freeSpans = s.next
		s.next = nil
	} else {
		s = &span{tr: t}
	}
	s.kind = k
	s.core = int32(core)
	s.arg, s.arg2 = arg, arg2
	s.t0 = t.eng.Now()
	s.done = done
	return s
}

// Events returns the retained events oldest-first.
func (t *Trace) Events() []Event {
	out := make([]Event, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Dropped reports how many events were overwritten after the ring filled.
func (t *Trace) Dropped() uint64 { return t.dropped }

// Len reports the retained event count.
func (t *Trace) Len() int { return t.n }
