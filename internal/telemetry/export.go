package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// nocCategories names KNoCSend's packed traffic category (Arg2 low bits).
// The order mirrors noc.Category's constants; the noc package imports
// telemetry, so the names are mirrored here rather than referenced.
var nocCategories = []string{"Ifetch", "Read", "Write", "WB-Repl", "DMA", "CohProt"}

// args decodes an event's packed Arg/Arg2 into named exporter fields.
func (e Event) args() map[string]any {
	a := map[string]any{}
	switch e.Kind {
	case KNoCSend:
		a["src"] = e.Core
		a["dst"] = e.Arg
		a["bytes"] = e.Arg2 >> 4
		if cat := int(e.Arg2 & 0xF); cat < len(nocCategories) {
			a["cat"] = nocCategories[cat]
		}
	case KCohAccess, KGuarded:
		a["addr"] = fmt.Sprintf("%#x", e.Arg)
		if e.Arg2 != 0 {
			a["write"] = true
		}
	case KCohDMARead, KCohDMAWrite:
		a["line"] = fmt.Sprintf("%#x", e.Arg)
	case KDMACmd:
		a["gm_addr"] = fmt.Sprintf("%#x", e.Arg)
		a["bytes"] = e.Arg2 >> 1
		if e.Arg2&1 != 0 {
			a["put"] = true
		}
	case KDMATag:
		a["tag"] = e.Arg
	case KStall:
		if int(e.Arg) < len(StallReasons) {
			a["reason"] = StallReasons[e.Arg]
		} else {
			a["reason"] = e.Arg
		}
	case KFlush:
		a["addr"] = fmt.Sprintf("%#x", e.Arg)
	}
	return a
}

// jsonlEvent is the JSONL wire form of one event.
type jsonlEvent struct {
	Cycle uint64         `json:"cycle"`
	Dur   uint64         `json:"dur,omitempty"`
	Kind  string         `json:"kind"`
	Core  int32          `json:"core"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteJSONL emits one self-describing JSON object per event — the format
// for ad-hoc scripting (jq, pandas) over a trace.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		je := jsonlEvent{
			Cycle: uint64(e.Cycle),
			Dur:   uint64(e.Dur),
			Kind:  e.Kind.String(),
			Core:  e.Core,
			Args:  e.args(),
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event JSON array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	PID   int            `json:"pid"`
	TID   int32          `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event container.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace emits the events in Chrome trace_event JSON, directly
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. One simulated
// cycle maps to one microsecond of trace time; tracks are per core (tid),
// spans render as complete ("X") events, instants as thread-scoped "i"
// events. meta lands in otherData (run key, spec, drop count).
func WriteChromeTrace(w io.Writer, events []Event, meta map[string]string) error {
	ct := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)),
		DisplayTimeUnit: "ms",
		OtherData:       meta,
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Kind.String(),
			Cat:  e.Kind.String(),
			TID:  e.Core,
			Args: e.args(),
		}
		if e.Dur > 0 {
			d := uint64(e.Dur)
			ce.Phase = "X"
			ce.TS = uint64(e.Cycle - e.Dur)
			ce.Dur = &d
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
			ce.TS = uint64(e.Cycle)
		}
		ct.TraceEvents = append(ct.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}
