// Package telemetry is the in-sim observability layer: an opt-in Recorder
// that a system.Machine carries through one run, sampling the interned
// counter sets every N cycles into a compact time series, plus a bounded
// ring-buffer event trace (trace.go) with JSONL and Chrome trace_event
// exporters (export.go).
//
// The disabled-path contract (DESIGN.md §10): a machine with no Recorder
// attached pays exactly one nil pointer check per instrumented site, emits
// no events, schedules nothing, and allocates nothing — golden stats stay
// byte-identical and the hot-path allocation guard holds. All the cost of
// observation is borne by runs that asked for it.
package telemetry

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Probe is one sampled series: a name and a monotonic counter reader. The
// reader is called once per sampling epoch — the cold path — so closures
// over by-name counter lookups are fine here.
type Probe struct {
	Name string
	Fn   func() uint64
}

// Epoch is one sampling interval's worth of counter movement: the cycle the
// sample was taken at and the per-probe deltas since the previous sample
// (parallel to TimeSeries.Names).
type Epoch struct {
	Cycle  uint64   `json:"cycle"`
	Deltas []uint64 `json:"deltas"`
}

// TimeSeries is the per-run sampling product, shaped for the wire
// (GET /v1/runs/{key}/timeline) and the report sinks.
type TimeSeries struct {
	// Interval is the sampling period in simulated cycles.
	Interval uint64 `json:"interval"`
	// Names are the sampled series, fixed at attach time; every epoch's
	// Deltas slice is parallel to this.
	Names []string `json:"names"`
	// Epochs holds one entry per sampling period in which at least one
	// counter moved (all-quiet periods are elided — the series is a delta
	// encoding, so gaps reconstruct as zeros).
	Epochs []Epoch `json:"epochs"`
	// FinalCycle is the cycle the run drained at; the last epoch may cover
	// a partial interval ending here.
	FinalCycle uint64 `json:"final_cycle"`
}

// Recorder carries one run's telemetry: the sampling schedule and series,
// and optionally a Trace. A Recorder is single-run and single-goroutine,
// like the engine it binds to; build a fresh one per Execute.
type Recorder struct {
	interval sim.Time
	trace    *Trace

	eng    *sim.Engine
	probes []Probe

	prev     []uint64
	lastTick sim.Time
	series   TimeSeries
	started  bool
}

// NewRecorder builds a recorder. interval > 0 enables counter sampling
// every interval cycles; traceEvents > 0 enables the event trace with a
// ring buffer of that many events. Both may be combined; both zero yields
// an inert recorder.
func NewRecorder(interval uint64, traceEvents int) *Recorder {
	r := &Recorder{interval: sim.Time(interval)}
	if traceEvents > 0 {
		r.trace = newTrace(traceEvents)
	}
	return r
}

// Tracer returns the event trace, or nil when tracing is disabled.
func (r *Recorder) Tracer() *Trace { return r.trace }

// Interval returns the sampling period in cycles (0 = sampling disabled).
func (r *Recorder) Interval() uint64 { return uint64(r.interval) }

// Bind attaches the recorder to the engine whose clock stamps every sample
// and event. The machine calls this from Attach; it must happen before
// Start.
func (r *Recorder) Bind(eng *sim.Engine) {
	r.eng = eng
	if r.trace != nil {
		r.trace.eng = eng
	}
}

// AddProbe registers one sampled series. Call before Start.
func (r *Recorder) AddProbe(name string, fn func() uint64) {
	r.probes = append(r.probes, Probe{Name: name, Fn: fn})
}

// AddCounters registers every counter of an interned set as
// "<prefix>.<name>" series — the whole registered schema, touched or not,
// so the series layout is a function of the machine, not of the workload.
func (r *Recorder) AddCounters(prefix string, c *stats.Counters) {
	for _, name := range c.AllNames() {
		name := name
		r.AddProbe(prefix+"."+name, func() uint64 { return c.Get(name) })
	}
}

// Start begins sampling on the bound engine. The sampler is a pooled
// self-rescheduling continuation: it fires every interval, reads every
// probe, and stops once it finds the engine otherwise drained — reading
// counters cannot perturb simulated behavior, so a sampled run's Results
// are identical to an unsampled one (pinned by TestRecorderResultsIdentical).
func (r *Recorder) Start() {
	if r.started || r.interval <= 0 || r.eng == nil || len(r.probes) == 0 {
		return
	}
	r.started = true
	r.series.Interval = uint64(r.interval)
	r.series.Names = make([]string, len(r.probes))
	for i, p := range r.probes {
		r.series.Names[i] = p.Name
	}
	r.prev = make([]uint64, len(r.probes))
	for i, p := range r.probes {
		r.prev[i] = p.Fn()
	}
	r.lastTick = r.eng.Now()
	r.eng.ScheduleCont(r.interval, samplerCont{r})
}

// samplerCont adapts the recorder to sim.Cont without an allocation per
// firing (the pointer-shaped struct boxes allocation-free).
type samplerCont struct{ r *Recorder }

func (s samplerCont) Fire() { s.r.tick() }

// tick takes one sample and reschedules. When the sampler is the only
// pending work left (the simulation proper has drained), it stops instead,
// so a sampled run still terminates — the headline cycle count comes from
// the cluster's finish time, not the engine clock, and is unaffected by the
// sampler's trailing events.
func (r *Recorder) tick() {
	r.sample()
	if r.eng.Pending() > 0 {
		r.eng.ScheduleCont(r.interval, samplerCont{r})
	}
}

// sample appends one epoch covering [lastTick, now] if any probe moved.
func (r *Recorder) sample() {
	now := r.eng.Now()
	if now == r.lastTick {
		return
	}
	var deltas []uint64
	for i, p := range r.probes {
		v := p.Fn()
		d := v - r.prev[i]
		r.prev[i] = v
		if d != 0 && deltas == nil {
			deltas = make([]uint64, len(r.probes))
		}
		if deltas != nil {
			deltas[i] = d
		}
	}
	if deltas == nil {
		return
	}
	// The loop above only starts recording at the first nonzero delta;
	// re-read nothing — earlier probes' deltas were zero by construction.
	r.series.Epochs = append(r.series.Epochs, Epoch{Cycle: uint64(now), Deltas: deltas})
	r.lastTick = now
}

// Finish takes the final (possibly partial) sample after the run drains and
// stamps the series with the finish cycle. The machine calls this once from
// RunContext; calling it on an unstarted recorder is a no-op.
func (r *Recorder) Finish() {
	if !r.started {
		return
	}
	r.sample()
	r.series.FinalCycle = uint64(r.eng.Now())
}

// Series returns the recorded time series. Valid after Finish; the returned
// value shares the recorder's backing arrays, so treat it as read-only.
func (r *Recorder) Series() TimeSeries { return r.series }
