package analysis

import (
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/system"
)

// Sweep thresholds (package constants, same policy as the per-run rules).
const (
	// sweepDominantPct: an axis whose mean cycles vary at least this much
	// across its values is the sweep's dominant knob.
	sweepDominantPct = 10.0
	// sweepFlatPct: below this spread the axis measurably does nothing.
	sweepFlatPct = 2.0
)

// Knee slack policy, exported so the planner's knee-bisection strategy and
// any driver presets share the analyzer's definition of "close enough to
// the best" (see WithinSlack / KneeIndex in knee.go).
const (
	// KneeEDPSlack: the knee is the cheapest axis value whose energy-delay
	// product is within this factor of the sweep's best.
	KneeEDPSlack = 1.05
	// KneeHitSlack: ditto for filter hit ratio, within this factor of the
	// best observed ratio.
	KneeHitSlack = 0.99
)

// Point aggregates the runs that shared one value of a swept axis.
type Point struct {
	Value int `json:"value"`
	Runs  int `json:"runs"`

	MeanCycles   float64 `json:"mean_cycles"`
	MeanEnergy   float64 `json:"mean_energy_pj"`
	MeanEDP      float64 `json:"mean_edp"`
	MeanHitRatio float64 `json:"mean_filter_hit_ratio"`
}

// AxisEffect attributes the marginal effect of one swept knob or workload
// parameter: its per-value aggregates plus the headline spread.
type AxisEffect struct {
	// Name is the registry name ("filter_entries", "hot_pct").
	Name string `json:"name"`
	// Kind is "knob" (config.Knobs) or "param" (workload registry).
	Kind string `json:"kind"`
	// Points is sorted by axis value ascending.
	Points []Point `json:"points"`

	// SpreadPct is (worst - best mean cycles) / best, in percent: how much
	// this axis moves execution time across its swept values.
	SpreadPct float64 `json:"spread_pct"`
	// BestValue is the axis value with the lowest mean cycles.
	BestValue int `json:"best_value"`
}

// SweepReport is the cross-run product of analysis.Sweep.
type SweepReport struct {
	Runs     int          `json:"runs"`
	Axes     []AxisEffect `json:"axes"`
	Findings []Finding    `json:"findings"`
}

// SweepRuleIDs names the finding rules Sweep can emit; the registry-drift
// test covers them alongside the per-run Rules.
var SweepRuleIDs = []string{"sweep-dominant", "sweep-flat", "sweep-knee"}

// axisKey identifies one swept dimension.
type axisKey struct{ name, kind string }

// axisValue resolves spec's value on one axis: the materialized config knob
// (so defaults and derived adjustments are included) or the resolved
// workload parameter.
func axisValue(spec system.Spec, k axisKey) (int, bool) {
	if k.kind == "param" {
		return spec.ResolvedParam(k.name)
	}
	cfg := spec.Config()
	for _, kn := range config.Knobs() {
		if kn.Name == k.name {
			return *kn.Field(&cfg), true
		}
	}
	return 0, false
}

// Sweep attributes the marginal effect of every swept knob and workload
// parameter across a sweep's completed runs. specs and results are parallel;
// axes are discovered from the specs themselves (any knob or parameter that
// takes at least two distinct values), so the caller does not have to
// remember what it swept.
func Sweep(specs []system.Spec, results []system.Results) SweepReport {
	rep := SweepReport{Runs: len(specs), Findings: []Finding{}}
	if len(specs) != len(results) || len(specs) == 0 {
		return rep
	}

	// Discover axes in first-appearance order.
	var keys []axisKey
	seen := map[axisKey]bool{}
	note := func(name, kind string) {
		k := axisKey{name, kind}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, sp := range specs {
		for _, kv := range sp.KnobDiff() {
			note(kv.Name, "knob")
		}
		if pvs, ok := sp.ParamDiff(); ok {
			for _, pv := range pvs {
				note(pv.Name, "param")
			}
		}
	}

	for _, k := range keys {
		ax := buildAxis(k, specs, results)
		if len(ax.Points) < 2 {
			continue // fixed on every run: an override, not an axis
		}
		rep.Axes = append(rep.Axes, ax)
	}

	// Findings: dominant axis first, then flat axes, then knees.
	best := -1
	for i, ax := range rep.Axes {
		if best < 0 || ax.SpreadPct > rep.Axes[best].SpreadPct {
			best = i
		}
	}
	if best >= 0 && rep.Axes[best].SpreadPct >= sweepDominantPct {
		ax := rep.Axes[best]
		rep.Findings = append(rep.Findings, Finding{
			Rule:     "sweep-dominant",
			Severity: SevInfo,
			Message: fmt.Sprintf("%s %s dominates this sweep: mean cycles vary %.1f%% across its values, best at %s=%d",
				ax.Kind, ax.Name, ax.SpreadPct, ax.Name, ax.BestValue),
			Evidence: []Evidence{ev("spread_pct", ax.SpreadPct), ev("best_value", float64(ax.BestValue))},
		})
	}
	for _, ax := range rep.Axes {
		if ax.SpreadPct < sweepFlatPct {
			rep.Findings = append(rep.Findings, Finding{
				Rule:     "sweep-flat",
				Severity: SevInfo,
				Message: fmt.Sprintf("%s %s has no measurable effect here (%.2f%% cycle spread): drop the axis or widen its range",
					ax.Kind, ax.Name, ax.SpreadPct),
				Evidence: []Evidence{ev("spread_pct", ax.SpreadPct)},
			})
		}
	}
	for _, ax := range rep.Axes {
		if f := kneeFinding(ax); f != nil {
			rep.Findings = append(rep.Findings, *f)
		}
	}
	return rep
}

// buildAxis groups the runs by their value on axis k.
func buildAxis(k axisKey, specs []system.Spec, results []system.Results) AxisEffect {
	type agg struct {
		n                         int
		cycles, energy, edp, hits float64
	}
	byVal := map[int]*agg{}
	for i, sp := range specs {
		v, ok := axisValue(sp, k)
		if !ok {
			continue
		}
		a := byVal[v]
		if a == nil {
			a = &agg{}
			byVal[v] = a
		}
		r := results[i]
		a.n++
		a.cycles += float64(r.Cycles)
		a.energy += r.Energy.Total()
		a.edp += r.Energy.Total() * float64(r.Cycles)
		a.hits += r.FilterHitRatio
	}
	vals := make([]int, 0, len(byVal))
	for v := range byVal {
		vals = append(vals, v)
	}
	sort.Ints(vals)

	ax := AxisEffect{Name: k.name, Kind: k.kind}
	minCycles, maxCycles := 0.0, 0.0
	for _, v := range vals {
		a := byVal[v]
		n := float64(a.n)
		p := Point{
			Value: v, Runs: a.n,
			MeanCycles: a.cycles / n, MeanEnergy: a.energy / n,
			MeanEDP: a.edp / n, MeanHitRatio: a.hits / n,
		}
		ax.Points = append(ax.Points, p)
		if minCycles == 0 || p.MeanCycles < minCycles {
			minCycles, ax.BestValue = p.MeanCycles, v
		}
		if p.MeanCycles > maxCycles {
			maxCycles = p.MeanCycles
		}
	}
	if minCycles > 0 {
		ax.SpreadPct = (maxCycles - minCycles) / minCycles * 100
	}
	return ax
}

// kneeFinding locates the diminishing-returns value of one axis: the
// smallest value whose energy-delay product (or, when the axis moves the
// filter, hit ratio) is already within slack of the sweep's best. A knee
// below the largest swept value means the rest of the range buys nothing.
// The slack math itself lives in knee.go, shared with the planner.
func kneeFinding(ax AxisEffect) *Finding {
	last := ax.Points[len(ax.Points)-1].Value

	// Filter-style knee: the hit ratio moved with the axis and saturates
	// before its largest value.
	hits := make([]float64, len(ax.Points))
	minHit := 1.0
	for i, p := range ax.Points {
		hits[i] = p.MeanHitRatio
		if p.MeanHitRatio < minHit {
			minHit = p.MeanHitRatio
		}
	}
	if idx, bestHit := KneeIndex(hits, KneeHitSlack, true); bestHit-minHit >= 0.01 {
		if p := ax.Points[idx]; p.Value != last {
			return &Finding{
				Rule:     "sweep-knee",
				Severity: SevInfo,
				Message: fmt.Sprintf("%s %s knees at %d: hit ratio %.4f is within %.0f%% of the best observed (%.4f), larger values buy little",
					ax.Kind, ax.Name, p.Value, p.MeanHitRatio, (1-KneeHitSlack)*100, bestHit),
				Evidence: []Evidence{ev("knee_value", float64(p.Value)), ev("knee_hit_ratio", p.MeanHitRatio), ev("best_hit_ratio", bestHit)},
			}
		}
	}

	// Energy-delay knee: the EDP moved with the axis and flattens early.
	edps := make([]float64, len(ax.Points))
	maxEDP := 0.0
	for i, p := range ax.Points {
		edps[i] = p.MeanEDP
		if p.MeanEDP > maxEDP {
			maxEDP = p.MeanEDP
		}
	}
	idx, minEDP := KneeIndex(edps, KneeEDPSlack, false)
	if minEDP == 0 || maxEDP < 1.10*minEDP {
		return nil
	}
	p := ax.Points[idx]
	if p.Value == last || p.MeanEDP == minEDP {
		return nil
	}
	return &Finding{
		Rule:     "sweep-knee",
		Severity: SevInfo,
		Message: fmt.Sprintf("%s %s knees at %d: energy-delay product is within %.0f%% of the sweep's best, larger values buy nothing",
			ax.Kind, ax.Name, p.Value, (KneeEDPSlack-1)*100),
		Evidence: []Evidence{ev("knee_value", float64(p.Value)), ev("knee_edp", p.MeanEDP), ev("best_edp", minEDP)},
	}
}
