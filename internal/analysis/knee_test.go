package analysis

import "testing"

func TestWithinSlack(t *testing.T) {
	cases := []struct {
		name     string
		v, best  float64
		slack    float64
		maximize bool
		want     bool
	}{
		{"hit at best", 0.95, 0.95, KneeHitSlack, true, true},
		{"hit within 1%", 0.941, 0.95, KneeHitSlack, true, true},
		{"hit below slack", 0.93, 0.95, KneeHitSlack, true, false},
		{"edp at best", 100, 100, KneeEDPSlack, false, true},
		{"edp within 5%", 104.9, 100, KneeEDPSlack, false, true},
		{"edp beyond 5%", 106, 100, KneeEDPSlack, false, false},
		{"zero best maximize", 0, 0, KneeHitSlack, true, true},
	}
	for _, c := range cases {
		if got := WithinSlack(c.v, c.best, c.slack, c.maximize); got != c.want {
			t.Errorf("%s: WithinSlack(%v, %v, %v, %v) = %v, want %v",
				c.name, c.v, c.best, c.slack, c.maximize, got, c.want)
		}
	}
}

func TestKneeIndex(t *testing.T) {
	cases := []struct {
		name     string
		vals     []float64
		slack    float64
		maximize bool
		wantIdx  int
		wantBest float64
	}{
		{"empty", nil, KneeEDPSlack, false, -1, 0},
		{"single", []float64{7}, KneeEDPSlack, false, 0, 7},
		// Saturating hit ratio: first point within 1% of the best 0.99 is
		// index 2 (0.985 >= 0.99*0.99 = 0.9801).
		{"hit saturation", []float64{0.50, 0.90, 0.985, 0.99, 0.99}, KneeHitSlack, true, 2, 0.99},
		// Monotone-decreasing EDP that flattens: min is the last element.
		{"edp flattens", []float64{200, 120, 104, 101, 100}, KneeEDPSlack, false, 2, 100},
		// Best is first: knee is index 0 immediately.
		{"best first", []float64{1, 2, 3}, KneeEDPSlack, false, 0, 1},
		// Non-monotone series: best in the middle still found.
		{"valley", []float64{300, 100, 250}, KneeEDPSlack, false, 1, 100},
	}
	for _, c := range cases {
		idx, best := KneeIndex(c.vals, c.slack, c.maximize)
		if idx != c.wantIdx || best != c.wantBest {
			t.Errorf("%s: KneeIndex(%v, %v, %v) = (%d, %v), want (%d, %v)",
				c.name, c.vals, c.slack, c.maximize, idx, best, c.wantIdx, c.wantBest)
		}
	}
}
