// Package analysis turns one run's raw measurements into findings: a
// table-driven rule registry (rules are data, like config.Knobs and
// workloads.Entries) where each rule cross-references the run's Results
// against the resolved machine configuration — plus, when available, the
// counter snapshot and the sampled timeline — and emits typed Findings with
// the evidence that fired them and the knob change that would help.
//
// Analysis is strictly derived: it reads measurements, never feeds back into
// simulation, and is therefore not part of Spec identity or cache addressing
// (DESIGN.md §11). A rule whose optional inputs are missing is skipped and
// reported as such, so the same registry serves a daemon answering from its
// Results cache (no counters) and a CLI run that captured everything.
package analysis

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/system"
	"repro/internal/telemetry"
)

// Severity grades a finding. Info marks a notable property, Warn a likely
// bottleneck with headroom to reclaim, Critical a configuration actively
// defeating the machine (the paper's mechanisms thrashing).
type Severity string

// The three severity levels, ordered.
const (
	SevInfo     Severity = "info"
	SevWarn     Severity = "warn"
	SevCritical Severity = "critical"
)

// Evidence is one named measurement that contributed to a finding — the
// number the rule actually compared, so a reader can check the verdict.
type Evidence struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Suggestion is an actionable knob change: re-run with Knob set to Proposed
// (registry name, so it pastes into -set / ?set= / Overrides directly).
type Suggestion struct {
	Knob     string `json:"knob"`
	Current  int    `json:"current"`
	Proposed int    `json:"proposed"`
	Note     string `json:"note,omitempty"`
}

// Finding is one fired rule: what was detected, how bad, the evidence, and
// (when a knob can address it) the suggested change.
type Finding struct {
	Rule       string      `json:"rule"`
	Severity   Severity    `json:"severity"`
	Message    string      `json:"message"`
	Evidence   []Evidence  `json:"evidence,omitempty"`
	Suggestion *Suggestion `json:"suggestion,omitempty"`
}

// Input is everything a rule may inspect. Config and Results are mandatory;
// Stats (the prefixed counter snapshot of system.Machine.CounterSnapshot)
// and Series (the run's sampled timeline) are optional — rules that need a
// missing one are skipped, not failed.
type Input struct {
	Config  config.Config
	Results system.Results
	Stats   map[string]uint64
	Series  *telemetry.TimeSeries
}

// Report is the product of one run's analysis. Findings preserves registry
// order (deterministic, severity-independent); Skipped names the rules whose
// optional inputs were absent — distinct from rules that ran and stayed
// quiet, and from rules not applicable to this machine at all.
type Report struct {
	Findings []Finding `json:"findings"`
	Skipped  []string  `json:"skipped,omitempty"`
}

// needs declares a rule's optional inputs and applicability gates.
type needs uint8

const (
	// needsStats: the rule reads Input.Stats (counter snapshot).
	needsStats needs = 1 << iota
	// needsSeries: the rule reads Input.Series (sampled timeline).
	needsSeries
	// needsProtocol: the rule is about the real coherence protocol and is
	// silently inapplicable (not "skipped") on other systems.
	needsProtocol
	// needsSPM: the rule is about SPM/DMA machinery, inapplicable on the
	// cache-based baseline.
	needsSPM
)

// Rule is one registry entry. Check returns nil when the rule stays quiet;
// it runs only when every gate in Needs is satisfied.
type Rule struct {
	// ID is the stable identifier findings carry ("filter-pressure").
	ID string
	// Title is the one-line human name shown in listings.
	Title string
	// Needs gates execution on optional inputs and machine applicability.
	Needs needs
	// Check inspects the input and returns the finding, or nil.
	Check func(in *Input) *Finding
}

// Analyze runs every applicable registry rule over in, in registry order.
func Analyze(in Input) Report {
	rep := Report{Findings: []Finding{}}
	for _, r := range Rules {
		if r.Needs&needsProtocol != 0 && in.Config.System != config.HybridReal {
			continue
		}
		if r.Needs&needsSPM != 0 && !in.Config.HasSPM() {
			continue
		}
		if r.Needs&needsStats != 0 && in.Stats == nil {
			rep.Skipped = append(rep.Skipped, r.ID)
			continue
		}
		if r.Needs&needsSeries != 0 && in.Series == nil {
			rep.Skipped = append(rep.Skipped, r.ID)
			continue
		}
		if f := r.Check(&in); f != nil {
			f.Rule = r.ID
			rep.Findings = append(rep.Findings, *f)
		}
	}
	return rep
}

// ratio divides guarding against an empty denominator.
func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ev builds one evidence entry.
func ev(name string, v float64) Evidence { return Evidence{Name: name, Value: v} }

// pct renders a [0,1] share for messages.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
