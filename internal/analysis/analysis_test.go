package analysis

// Registry-drift coverage: every rule has a synthetic input that fires it,
// IDs are unique, severities are valid, and the skip/inapplicable gating is
// pinned. The golden end-to-end transcript (analysis_golden_test.go at the
// repo root) covers real simulations; this file covers the registry itself,
// including rules real tiny-scale runs rarely trip (timeline-stall-epoch,
// dma-double-transfer).

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// trigger returns a synthetic Input designed to fire exactly the named
// failure mode on the default hybrid machine (64 cores, 8x8 mesh).
func trigger(t *testing.T, rule string) Input {
	t.Helper()
	in := Input{Config: config.ForSystem(config.HybridReal)}
	in.Results.Cycles = 1000
	in.Results.Retired = 100000
	switch rule {
	case "filter-pressure":
		in.Results.FilterHitRatio = 0.2
	case "fdir-broadcast-storm":
		in.Results.FilterHitRatio = 1 // keep filter-pressure quiet
		in.Results.FDirBroadcasts = 1000
	case "noc-saturation":
		in.Results.FilterHitRatio = 1
		// 8x8 mesh x 4 flits/link/cycle = 896 flit-hops/cycle of capacity.
		in.Results.NoCFlitHops = 500000
	case "mem-bandwidth-bound":
		in.Results.FilterHitRatio = 1
		in.Stats = map[string]uint64{
			"coherence.dram.reads":  6000,
			"coherence.dram.writes": 4000,
		}
	case "l2-miss-wall":
		in.Results.FilterHitRatio = 1
		in.Stats = map[string]uint64{
			"coherence.l2.accesses": 10000,
			"coherence.l2.misses":   9500,
		}
	case "l1d-miss-pressure":
		in.Results.FilterHitRatio = 1
		in.Results.L1DHits = 500
		in.Results.L1DMisses = 9500
	case "mshr-pressure":
		in.Results.FilterHitRatio = 1
		// Little's law: 40000 misses x 100 cycles / 1000 cycles / 64 cores
		// = 62.5 outstanding per core against 64 MSHRs.
		in.Results.L1DMisses = 40000
	case "prefetch-ineffective":
		in.Results.FilterHitRatio = 1
		in.Results.Prefetches = 5000
		in.Results.L1DHits = 500
		in.Results.L1DMisses = 9500
	case "sync-imbalance":
		in.Results.FilterHitRatio = 1
		in.Results.PhaseCycles[isa.PhaseSync] = 600
		in.Results.PhaseCycles[isa.PhaseWork] = 400
	case "flush-storm":
		in.Results.FilterHitRatio = 1
		in.Results.Flushes = 1000
	case "dma-double-transfer":
		in.Results.FilterHitRatio = 1
		in.Results.DMALineTransfers = 2000
		in.Stats = map[string]uint64{"coherence.dma.snoops": 500}
	case "energy-noc-heavy":
		in.Results.FilterHitRatio = 1
		in.Results.Energy = energy.Breakdown{CPUs: 50, NoC: 50}
	case "timeline-stall-epoch":
		in.Results.FilterHitRatio = 1
		// Two healthy epochs, then the run goes quiet until cycle 1000: the
		// elided tail counts as stalled (80% of the run).
		in.Series = &telemetry.TimeSeries{
			Interval: 100,
			Names:    []string{"core.retired"},
			Epochs: []telemetry.Epoch{
				{Cycle: 100, Deltas: []uint64{100}},
				{Cycle: 200, Deltas: []uint64{100}},
			},
			FinalCycle: 1000,
		}
	default:
		t.Fatalf("no synthetic trigger for rule %q — add one here", rule)
	}
	return in
}

// TestRegistryDrift pins the registry's shape: every rule has a unique
// non-empty ID and title, a trigger input in this file that fires it, a
// non-empty message, and a valid severity. A new rule without a trigger
// fails here by construction.
func TestRegistryDrift(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Rules {
		if r.ID == "" || r.Title == "" || r.Check == nil {
			t.Fatalf("rule %+v: ID, Title, and Check are mandatory", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate rule ID %q", r.ID)
		}
		seen[r.ID] = true

		rep := Analyze(trigger(t, r.ID))
		var fired *Finding
		for i := range rep.Findings {
			if rep.Findings[i].Rule == r.ID {
				fired = &rep.Findings[i]
			}
		}
		if fired == nil {
			t.Fatalf("trigger input for %q did not fire it; findings: %+v", r.ID, rep.Findings)
		}
		if fired.Message == "" {
			t.Fatalf("rule %q fired with an empty message", r.ID)
		}
		if len(fired.Evidence) == 0 {
			t.Fatalf("rule %q fired without evidence", r.ID)
		}
		switch fired.Severity {
		case SevInfo, SevWarn, SevCritical:
		default:
			t.Fatalf("rule %q fired with severity %q", r.ID, fired.Severity)
		}
		if s := fired.Suggestion; s != nil {
			if _, ok := config.KnobByName(s.Knob); !ok {
				t.Fatalf("rule %q suggests unknown knob %q", r.ID, s.Knob)
			}
		}
	}
	for _, id := range SweepRuleIDs {
		if seen[id] {
			t.Fatalf("sweep rule ID %q collides with a per-run rule", id)
		}
	}
}

// TestSkippedAndInapplicable pins the gating: missing optional inputs are
// reported in Skipped, while rules inapplicable to the machine are silent.
func TestSkippedAndInapplicable(t *testing.T) {
	hybrid := Analyze(Input{Config: config.ForSystem(config.HybridReal)})
	wantSkipped := []string{"mem-bandwidth-bound", "l2-miss-wall", "dma-double-transfer", "timeline-stall-epoch"}
	if fmt.Sprint(hybrid.Skipped) != fmt.Sprint(wantSkipped) {
		t.Fatalf("hybrid results-only skipped %v, want %v", hybrid.Skipped, wantSkipped)
	}

	// The cache baseline has no SPM machinery and no real protocol: those
	// rules are inapplicable (silent), not skipped.
	cache := Analyze(Input{Config: config.ForSystem(config.CacheBased)})
	wantSkipped = []string{"mem-bandwidth-bound", "l2-miss-wall", "timeline-stall-epoch"}
	if fmt.Sprint(cache.Skipped) != fmt.Sprint(wantSkipped) {
		t.Fatalf("cache results-only skipped %v, want %v", cache.Skipped, wantSkipped)
	}
	if len(cache.Findings) != 0 {
		t.Fatalf("zero-valued cache input fired %+v", cache.Findings)
	}
}

// sweepSpec builds one synthetic sweep point overriding a single knob.
func sweepSpec(t *testing.T, knob string, value int) system.Spec {
	t.Helper()
	ov, err := config.ParseOverrides([]string{fmt.Sprintf("%s=%d", knob, value)})
	if err != nil {
		t.Fatal(err)
	}
	return system.Spec{System: config.HybridReal, Benchmark: "IS",
		Scale: workloads.Tiny, Cores: 8, Overrides: ov}
}

// sweepRes fabricates the measurements Sweep aggregates.
func sweepRes(cycles uint64, energyPJ, hit float64) system.Results {
	return system.Results{Cycles: cycles,
		Energy: energy.Breakdown{CPUs: energyPJ}, FilterHitRatio: hit}
}

// TestSweepFindings exercises all three sweep rules over fabricated runs and
// asserts SweepRuleIDs covers exactly what fired — the sweep half of the
// registry-drift guarantee.
func TestSweepFindings(t *testing.T) {
	fired := map[string]bool{}

	// A filter axis that dominates cycles and saturates its hit ratio at 16.
	specs := []system.Spec{
		sweepSpec(t, "filter_entries", 4),
		sweepSpec(t, "filter_entries", 16),
		sweepSpec(t, "filter_entries", 64),
	}
	results := []system.Results{
		sweepRes(2000, 100, 0.30),
		sweepRes(1100, 100, 0.980),
		sweepRes(1000, 100, 0.985),
	}
	rep := Sweep(specs, results)
	if rep.Runs != 3 || len(rep.Axes) != 1 {
		t.Fatalf("got %d runs, %d axes: %+v", rep.Runs, len(rep.Axes), rep.Axes)
	}
	ax := rep.Axes[0]
	if ax.Name != "filter_entries" || ax.Kind != "knob" || ax.BestValue != 64 {
		t.Fatalf("bad axis: %+v", ax)
	}
	ids := map[string]*Finding{}
	for i := range rep.Findings {
		ids[rep.Findings[i].Rule] = &rep.Findings[i]
		fired[rep.Findings[i].Rule] = true
	}
	if ids["sweep-dominant"] == nil {
		t.Fatalf("100%% cycle spread did not fire sweep-dominant: %+v", rep.Findings)
	}
	knee := ids["sweep-knee"]
	if knee == nil {
		t.Fatalf("saturating hit ratio did not fire sweep-knee: %+v", rep.Findings)
	}
	if knee.Evidence[0].Name != "knee_value" || knee.Evidence[0].Value != 16 {
		t.Fatalf("knee should land at 16: %+v", knee.Evidence)
	}

	// A bandwidth axis that measurably does nothing.
	specs = []system.Spec{
		sweepSpec(t, "link_bandwidth", 2),
		sweepSpec(t, "link_bandwidth", 8),
	}
	results = []system.Results{
		sweepRes(1000, 100, 0.5),
		sweepRes(1005, 100, 0.5),
	}
	rep = Sweep(specs, results)
	if len(rep.Findings) != 1 || rep.Findings[0].Rule != "sweep-flat" {
		t.Fatalf("flat axis should fire exactly sweep-flat: %+v", rep.Findings)
	}
	fired["sweep-flat"] = true

	for _, id := range SweepRuleIDs {
		if !fired[id] {
			t.Fatalf("sweep rule %q is registered but never exercised here", id)
		}
	}
	for id := range fired {
		found := false
		for _, want := range SweepRuleIDs {
			found = found || want == id
		}
		if !found {
			t.Fatalf("sweep emitted rule %q missing from SweepRuleIDs", id)
		}
	}
}

// TestSweepDegenerate pins the empty and mismatched-input behavior.
func TestSweepDegenerate(t *testing.T) {
	if rep := Sweep(nil, nil); rep.Runs != 0 || len(rep.Axes) != 0 || len(rep.Findings) != 0 {
		t.Fatalf("empty sweep: %+v", rep)
	}
	specs := []system.Spec{sweepSpec(t, "filter_entries", 4)}
	if rep := Sweep(specs, nil); len(rep.Axes) != 0 {
		t.Fatalf("mismatched lengths must not attribute axes: %+v", rep)
	}
}
