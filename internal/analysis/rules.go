package analysis

import (
	"fmt"

	"repro/internal/isa"
)

// Thresholds, calibrated against the tiny-scale exhibits so the healthy
// golden specs stay quiet and the deliberately misconfigured ones fire
// deterministically (analysis_golden_test.go pins both). They are package
// constants, not knobs: a rule that needs per-site tuning is a bad rule.
const (
	// filterWarnHit / filterCritHit: guarded-filter hit ratio below which
	// capacity misses (and the FilterDir broadcasts they trigger) dominate.
	// Healthy NAS runs sit >= 0.92; a thrashing filter lands near zero.
	filterWarnHit = 0.85
	filterCritHit = 0.40

	// fdirStormPerK / fdirStormMin: FilterDir broadcasts per 1000 retired
	// instructions (and an absolute floor so tiny runs don't trip on noise).
	fdirStormPerK = 1.0
	fdirStormMin  = 64

	// nocWarnUtil / nocCritUtil: mean flit-hops per cycle as a share of the
	// mesh's aggregate directed-link capacity.
	nocWarnUtil = 0.30
	nocCritUtil = 0.50

	// memWarnUtil / memCritUtil: DRAM line transfers x cycles-per-line over
	// cycles x controllers — the controllers' duty cycle.
	memWarnUtil = 0.30
	memCritUtil = 0.60

	// l2WallRatio / l2WallMinAcc: L2 miss ratio past which the shared cache
	// is a pass-through, given enough accesses to mean anything.
	l2WallRatio  = 0.90
	l2WallMinAcc = 5000

	// l1dWallRatio / l1dWallMinAcc: same wall for the L1D.
	l1dWallRatio  = 0.90
	l1dWallMinAcc = 5000

	// mshrPressure: mean outstanding misses per core (Little's law estimate:
	// L1D misses x memory latency / cycles / cores) as a share of MSHREntries.
	mshrPressure = 0.80

	// prefetchMinIssued / prefetchMissRatio: prefetches issued while the L1D
	// miss ratio stayed this high mean the prefetcher burns bandwidth without
	// converting misses.
	prefetchMinIssued = 1000
	prefetchMissRatio = 0.50

	// syncWarnShare / syncCritShare: share of phase cycles spent in Sync —
	// cores waiting at barriers instead of working.
	syncWarnShare = 0.35
	syncCritShare = 0.50

	// flushStormPerK: LSQ flushes per 1000 retired instructions.
	flushStormPerK = 5.0

	// dmaDoubleShare / dmaDoubleMin: share of DMA line transfers that
	// snooped a dirty cached copy — each one moved the data twice.
	dmaDoubleShare = 0.05
	dmaDoubleMin   = 1000

	// energyNoCShare: NoC share of total energy past which data movement,
	// not computation, is the power story.
	energyNoCShare = 0.25

	// stallEpochRate / stallCycleShare: a timeline epoch is "stalled" when
	// its retire rate falls below stallEpochRate x the run mean; the rule
	// fires when stalled epochs cover at least stallCycleShare of the run.
	stallEpochRate  = 0.25
	stallCycleShare = 0.40
)

// phaseTotal sums the per-phase cycle attribution.
func phaseTotal(in *Input) uint64 {
	var t uint64
	for p := isa.Phase(0); p < isa.NumPhases; p++ {
		t += in.Results.PhaseCycles[p]
	}
	return t
}

// l1dMissRatio returns the L1D miss ratio and total accesses (0,0 when the
// run never touched the L1D — SPM-only codes).
func l1dMissRatio(in *Input) (float64, uint64) {
	acc := in.Results.L1DHits + in.Results.L1DMisses
	return ratio(in.Results.L1DMisses, acc), acc
}

// meshLinks counts the directed links of the w x h mesh.
func meshLinks(w, h int) int { return 2 * (w*(h-1) + h*(w-1)) }

// Rules is the registry, in report order. IDs are stable API: they appear in
// JSON findings, the daemon's analysis_findings_total{rule=...} metric, and
// the golden findings file.
var Rules = []Rule{
	{
		ID:    "filter-pressure",
		Title: "guarded-access filter thrashing",
		Needs: needsProtocol,
		Check: func(in *Input) *Finding {
			hr := in.Results.FilterHitRatio
			if hr >= filterWarnHit {
				return nil
			}
			sev := SevWarn
			if hr < filterCritHit {
				sev = SevCritical
			}
			cur := in.Config.FilterEntries
			return &Finding{
				Severity: sev,
				Message: fmt.Sprintf("filter hit ratio %s: guarded accesses overflow the %d-entry filter, forcing FilterDir lookups and broadcasts",
					pct(hr), cur),
				Evidence:   []Evidence{ev("filter_hit_ratio", hr), ev("filter_entries", float64(cur))},
				Suggestion: &Suggestion{Knob: "filter_entries", Current: cur, Proposed: cur * 4, Note: "grow until the hit ratio knees (see the ablation sweep)"},
			}
		},
	},
	{
		ID:    "fdir-broadcast-storm",
		Title: "FilterDir invalidation broadcasts",
		Needs: needsProtocol,
		Check: func(in *Input) *Finding {
			b := in.Results.FDirBroadcasts
			perK := ratio(b, in.Results.Retired) * 1000
			if b < fdirStormMin || perK < fdirStormPerK {
				return nil
			}
			cur := in.Config.FilterDirEntries
			return &Finding{
				Severity: SevWarn,
				Message: fmt.Sprintf("%d FilterDir broadcasts (%.2f per 1k instructions): sharer tracking overflows, invalidations go to every core",
					b, perK),
				Evidence:   []Evidence{ev("fdir_broadcasts", float64(b)), ev("broadcasts_per_1k_retired", perK)},
				Suggestion: &Suggestion{Knob: "filterdir_entries", Current: cur, Proposed: cur * 2},
			}
		},
	},
	{
		ID:    "noc-saturation",
		Title: "mesh link saturation",
		Check: func(in *Input) *Finding {
			cfg := in.Config
			capacity := uint64(meshLinks(cfg.MeshWidth, cfg.MeshHeight)*cfg.LinkBandwidth) * in.Results.Cycles
			util := ratio(in.Results.NoCFlitHops, capacity)
			if util < nocWarnUtil {
				return nil
			}
			sev := SevWarn
			if util >= nocCritUtil {
				sev = SevCritical
			}
			return &Finding{
				Severity: sev,
				Message: fmt.Sprintf("NoC at %s of aggregate link capacity (%dx%d mesh, %d flits/link/cycle): traffic queues in the network",
					pct(util), cfg.MeshWidth, cfg.MeshHeight, cfg.LinkBandwidth),
				Evidence:   []Evidence{ev("link_utilization", util), ev("flit_hops_per_cycle", ratio(in.Results.NoCFlitHops, in.Results.Cycles))},
				Suggestion: &Suggestion{Knob: "link_bandwidth", Current: cfg.LinkBandwidth, Proposed: cfg.LinkBandwidth * 2},
			}
		},
	},
	{
		ID:    "mem-bandwidth-bound",
		Title: "DRAM controllers saturated",
		Needs: needsStats,
		Check: func(in *Input) *Finding {
			lines := in.Stats["coherence.dram.reads"] + in.Stats["coherence.dram.writes"]
			cfg := in.Config
			util := ratio(lines*uint64(cfg.MemCyclesPerLn), in.Results.Cycles*uint64(cfg.MemControllers))
			if util < memWarnUtil {
				return nil
			}
			sev := SevWarn
			if util >= memCritUtil {
				sev = SevCritical
			}
			return &Finding{
				Severity: sev,
				Message: fmt.Sprintf("memory controllers at %s duty cycle (%d line transfers over %d controllers): runs at DRAM bandwidth",
					pct(util), lines, cfg.MemControllers),
				Evidence:   []Evidence{ev("dram_utilization", util), ev("dram_lines", float64(lines))},
				Suggestion: &Suggestion{Knob: "mem_controllers", Current: cfg.MemControllers, Proposed: cfg.MemControllers * 2},
			}
		},
	},
	{
		ID:    "l2-miss-wall",
		Title: "shared L2 pass-through",
		Needs: needsStats,
		Check: func(in *Input) *Finding {
			acc, miss := in.Stats["coherence.l2.accesses"], in.Stats["coherence.l2.misses"]
			mr := ratio(miss, acc)
			if acc < l2WallMinAcc || mr < l2WallRatio {
				return nil
			}
			cur := in.Config.L2SliceSize
			return &Finding{
				Severity: SevWarn,
				Message: fmt.Sprintf("L2 miss ratio %s over %d accesses: the working set does not fit the %d KB/core slices",
					pct(mr), acc, cur>>10),
				Evidence:   []Evidence{ev("l2_miss_ratio", mr), ev("l2_accesses", float64(acc))},
				Suggestion: &Suggestion{Knob: "l2_slice_size", Current: cur, Proposed: cur * 2},
			}
		},
	},
	{
		ID:    "l1d-miss-pressure",
		Title: "L1D wall",
		Check: func(in *Input) *Finding {
			mr, acc := l1dMissRatio(in)
			if acc < l1dWallMinAcc || mr < l1dWallRatio {
				return nil
			}
			cur := in.Config.L1DSize
			return &Finding{
				Severity: SevWarn,
				Message: fmt.Sprintf("L1D miss ratio %s over %d accesses: nearly every global-memory reference leaves the core",
					pct(mr), acc),
				Evidence:   []Evidence{ev("l1d_miss_ratio", mr), ev("l1d_accesses", float64(acc))},
				Suggestion: &Suggestion{Knob: "l1d_size", Current: cur, Proposed: cur * 2},
			}
		},
	},
	{
		ID:    "mshr-pressure",
		Title: "outstanding misses near the MSHR bound",
		Check: func(in *Input) *Finding {
			cfg := in.Config
			// Little's law: mean outstanding = miss rate x memory latency.
			outst := ratio(in.Results.L1DMisses*uint64(cfg.MemLatency), in.Results.Cycles) / float64(cfg.Cores)
			bound := float64(cfg.MSHREntries)
			if outst < mshrPressure*bound {
				return nil
			}
			return &Finding{
				Severity: SevWarn,
				Message: fmt.Sprintf("~%.1f outstanding L1D misses per core against %d MSHRs: miss-level parallelism is structurally capped",
					outst, cfg.MSHREntries),
				Evidence:   []Evidence{ev("outstanding_per_core", outst), ev("mshr_entries", bound)},
				Suggestion: &Suggestion{Knob: "mshr_entries", Current: cfg.MSHREntries, Proposed: cfg.MSHREntries * 2},
			}
		},
	},
	{
		ID:    "prefetch-ineffective",
		Title: "prefetcher not converting misses",
		Check: func(in *Input) *Finding {
			mr, acc := l1dMissRatio(in)
			pf := in.Results.Prefetches
			if pf < prefetchMinIssued || acc < l1dWallMinAcc || mr < prefetchMissRatio {
				return nil
			}
			cur := in.Config.PrefetchDegree
			prop := cur / 2
			if prop < 1 {
				prop = 1
			}
			return &Finding{
				Severity: SevInfo,
				Message: fmt.Sprintf("%d prefetches issued yet the L1D miss ratio stayed at %s: the access pattern defeats the stride predictor",
					pf, pct(mr)),
				Evidence:   []Evidence{ev("prefetches", float64(pf)), ev("l1d_miss_ratio", mr)},
				Suggestion: &Suggestion{Knob: "prefetch_degree", Current: cur, Proposed: prop, Note: "useless prefetches still cost NoC and DRAM bandwidth"},
			}
		},
	},
	{
		ID:    "sync-imbalance",
		Title: "barrier wait dominates",
		Check: func(in *Input) *Finding {
			tot := phaseTotal(in)
			share := ratio(in.Results.PhaseCycles[isa.PhaseSync], tot)
			if tot == 0 || share < syncWarnShare {
				return nil
			}
			sev := SevWarn
			if share >= syncCritShare {
				sev = SevCritical
			}
			return &Finding{
				Severity: sev,
				Message: fmt.Sprintf("%s of phase cycles spent waiting at barriers: per-core work is imbalanced or serialized on stragglers",
					pct(share)),
				Evidence: []Evidence{ev("sync_share", share), ev("sync_cycles", float64(in.Results.PhaseCycles[isa.PhaseSync]))},
			}
		},
	},
	{
		ID:    "flush-storm",
		Title: "LSQ ordering flushes",
		Needs: needsProtocol,
		Check: func(in *Input) *Finding {
			perK := ratio(in.Results.Flushes, in.Results.Retired) * 1000
			if perK < flushStormPerK {
				return nil
			}
			return &Finding{
				Severity: SevWarn,
				Message: fmt.Sprintf("%.2f pipeline flushes per 1k instructions: guarded stores keep aliasing in-flight SPM-mapped loads (§3.4 re-check)",
					perK),
				Evidence: []Evidence{ev("flushes_per_1k_retired", perK), ev("flushes", float64(in.Results.Flushes))},
			}
		},
	},
	{
		ID:    "dma-double-transfer",
		Title: "DMA moving data twice",
		Needs: needsStats | needsSPM,
		Check: func(in *Input) *Finding {
			snoops := in.Stats["coherence.dma.snoops"]
			lines := in.Results.DMALineTransfers
			share := ratio(snoops, lines)
			if lines < dmaDoubleMin || share < dmaDoubleShare {
				return nil
			}
			return &Finding{
				Severity: SevWarn,
				Message: fmt.Sprintf("%s of DMA line transfers snooped a dirty cached copy: those lines crossed the NoC twice (cache writeback, then DMA)",
					pct(share)),
				Evidence: []Evidence{ev("dma_snoop_share", share), ev("dma_snoops", float64(snoops)), ev("dma_lines", float64(lines))},
			}
		},
	},
	{
		ID:    "energy-noc-heavy",
		Title: "energy dominated by data movement",
		Check: func(in *Input) *Finding {
			total := in.Results.Energy.Total()
			if total == 0 {
				return nil
			}
			share := in.Results.Energy.NoC / total
			if share < energyNoCShare {
				return nil
			}
			return &Finding{
				Severity: SevInfo,
				Message:  fmt.Sprintf("NoC is %s of total energy: wires, not arithmetic, set the power bill", pct(share)),
				Evidence: []Evidence{ev("noc_energy_share", share), ev("total_energy_pj", total)},
			}
		},
	},
	{
		ID:    "timeline-stall-epoch",
		Title: "retirement stalls in the timeline",
		Needs: needsSeries,
		Check: func(in *Input) *Finding {
			ts := in.Series
			retired := -1
			for i, n := range ts.Names {
				if n == "core.retired" {
					retired = i
				}
			}
			if retired < 0 || len(ts.Epochs) == 0 || ts.FinalCycle == 0 {
				return nil
			}
			var total uint64
			for _, e := range ts.Epochs {
				total += e.Deltas[retired]
			}
			mean := ratio(total, ts.FinalCycle)
			if mean == 0 {
				return nil
			}
			// An epoch covers (cycle - previous cycle); quiet periods were
			// elided by the delta encoding and count as fully stalled.
			var stalled, prev, worstCycle uint64
			worst := mean
			for _, e := range ts.Epochs {
				span := e.Cycle - prev
				prev = e.Cycle
				if span == 0 {
					continue
				}
				rate := ratio(e.Deltas[retired], span)
				if rate < stallEpochRate*mean {
					stalled += span
					if rate < worst {
						worst, worstCycle = rate, e.Cycle
					}
				}
			}
			stalled += ts.FinalCycle - prev // trailing quiet tail
			share := ratio(stalled, ts.FinalCycle)
			if share < stallCycleShare {
				return nil
			}
			return &Finding{
				Severity: SevWarn,
				Message: fmt.Sprintf("%s of the run retired below %.0f%% of the mean rate (worst epoch ends at cycle %d): long stall phases, not uniform slowness",
					pct(share), stallEpochRate*100, worstCycle),
				Evidence: []Evidence{ev("stalled_cycle_share", share), ev("mean_retire_rate", mean), ev("worst_epoch_cycle", float64(worstCycle))},
			}
		},
	},
}
