package analysis

// Knee math shared between the sweep analyzer (kneeFinding) and the
// experiment planner (internal/planner's knee-bisection strategy): one
// spelling of "within slack of the best observed value", so the two can
// never disagree about where an axis stops paying.

// WithinSlack reports whether v already achieves the best observed value of
// a metric to within a multiplicative slack factor. For a maximized metric
// (hit ratio) slack is < 1 and v passes when v >= slack*best; for a
// minimized one (EDP, cycles) slack is > 1 and v passes when v <= slack*best.
func WithinSlack(v, best, slack float64, maximize bool) bool {
	if maximize {
		return v >= slack*best
	}
	return v <= slack*best
}

// KneeIndex locates the diminishing-returns point of a value series: the
// index of the first element within slack of the series' best (the maximum
// when maximize, the minimum otherwise), plus that best. An empty series
// returns (-1, 0). The caller decides what the knee means — the sweep
// analyzer reports it only when it lands before the largest swept value,
// and the planner bisects toward the same boundary without enumerating.
func KneeIndex(vals []float64, slack float64, maximize bool) (int, float64) {
	if len(vals) == 0 {
		return -1, 0
	}
	best := vals[0]
	for _, v := range vals[1:] {
		if (maximize && v > best) || (!maximize && v < best) {
			best = v
		}
	}
	for i, v := range vals {
		if WithinSlack(v, best, slack, maximize) {
			return i, best
		}
	}
	// Unreachable: best itself is always within slack of best.
	return -1, best
}
