// Package buildinfo derives a human-readable version string from the binary's
// embedded build metadata, so every binary answers -version (and the daemon's
// /v1/healthz) consistently without a linker-flag release process.
package buildinfo

import (
	"runtime/debug"
	"strings"
)

// Version returns the best version string the build metadata offers: the
// module version when built as a versioned dependency, otherwise the VCS
// revision (short) with a +dirty suffix and commit time when built from a
// checkout, otherwise "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, tim string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			tim = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	var b strings.Builder
	b.WriteString("devel+")
	b.WriteString(rev)
	if dirty {
		b.WriteString("+dirty")
	}
	if tim != "" {
		b.WriteString(" (")
		b.WriteString(tim)
		b.WriteString(")")
	}
	return b.String()
}
