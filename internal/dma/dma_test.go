package dma

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/spm"
)

// fakeGM records DMA line operations and completes them after a fixed delay.
type fakeGM struct {
	eng    *sim.Engine
	delay  sim.Time
	reads  []uint64
	writes []uint64
}

func (f *fakeGM) DMARead(core int, line uint64, done sim.Cont) {
	f.reads = append(f.reads, line)
	f.eng.ScheduleCont(f.delay, done)
}

func (f *fakeGM) DMAWrite(core int, line uint64, done sim.Cont) {
	f.writes = append(f.writes, line)
	f.eng.ScheduleCont(f.delay, done)
}

type mapRecord struct {
	core    int
	gm, spm uint64
	bytes   int
}

type fakeNotifier struct{ maps []mapRecord }

func (f *fakeNotifier) NotifyMap(core int, gmAddr, spmAddr uint64, bytes int) {
	f.maps = append(f.maps, mapRecord{core, gmAddr, spmAddr, bytes})
}

func newCtrl(t *testing.T) (*sim.Engine, *fakeGM, *fakeNotifier, *spm.SPM, *Controller) {
	t.Helper()
	eng := sim.NewEngine()
	gm := &fakeGM{eng: eng, delay: 10}
	n := &fakeNotifier{}
	s := spm.New(eng, 2)
	c := NewController(eng, 3, gm, s, n, 64, 4, 8, 2)
	return eng, gm, n, s, c
}

func TestGetTransfersAllLines(t *testing.T) {
	eng, gm, _, s, c := newCtrl(t)
	done := false
	if !c.Get(0x1000, 0xF000, 256, 1) { // 4 lines
		t.Fatal("Get rejected")
	}
	c.Sync(1, sim.AsCont(func() { done = true }))
	eng.Run()
	if !done {
		t.Fatal("sync never fired")
	}
	if len(gm.reads) != 4 {
		t.Fatalf("gm reads = %d, want 4", len(gm.reads))
	}
	want := uint64(0x1000 >> 6)
	for i, l := range gm.reads {
		if l != want+uint64(i) {
			t.Fatalf("read line %d = %#x, want %#x", i, l, want+uint64(i))
		}
	}
	if s.DMAWrites() != 4 {
		t.Fatalf("spm dma writes = %d, want 4", s.DMAWrites())
	}
	if c.LineTransfers() != 4 {
		t.Fatalf("LineTransfers = %d", c.LineTransfers())
	}
}

func TestPutUsesDMAWrite(t *testing.T) {
	eng, gm, _, s, c := newCtrl(t)
	c.Put(0x2000, 0xF100, 128, 2) // 2 lines
	eng.Run()
	if len(gm.writes) != 2 || len(gm.reads) != 0 {
		t.Fatalf("writes=%d reads=%d", len(gm.writes), len(gm.reads))
	}
	if s.DMAReads() != 2 {
		t.Fatalf("spm dma reads = %d", s.DMAReads())
	}
}

func TestGetNotifiesMapBeforeData(t *testing.T) {
	eng, _, n, _, c := newCtrl(t)
	c.Get(0x4000, 0xF200, 512, 7)
	if len(n.maps) != 1 {
		t.Fatalf("NotifyMap calls = %d, want 1 (at issue, before data moves)", len(n.maps))
	}
	m := n.maps[0]
	if m.core != 3 || m.gm != 0x4000 || m.spm != 0xF200 || m.bytes != 512 {
		t.Fatalf("map = %+v", m)
	}
	eng.Run()
	if len(n.maps) != 1 {
		t.Fatal("NotifyMap called more than once per get")
	}
}

func TestPutDoesNotNotify(t *testing.T) {
	eng, _, n, _, c := newCtrl(t)
	c.Put(0x2000, 0xF000, 64, 1)
	eng.Run()
	if len(n.maps) != 0 {
		t.Fatal("dma-put must not update the SPMDir mapping")
	}
}

func TestSyncWithNothingOutstanding(t *testing.T) {
	eng, _, _, _, c := newCtrl(t)
	fired := false
	c.Sync(9, sim.AsCont(func() { fired = true }))
	eng.Run()
	if !fired {
		t.Fatal("sync on idle tag never fired")
	}
}

func TestSyncPerTag(t *testing.T) {
	eng, _, _, _, c := newCtrl(t)
	var order []int
	c.Get(0x1000, 0xF000, 64, 1)   // 1 line
	c.Get(0x8000, 0xF040, 1024, 2) // 16 lines (slower)
	c.Sync(1, sim.AsCont(func() { order = append(order, 1) }))
	c.Sync(2, sim.AsCont(func() { order = append(order, 2) }))
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("sync order = %v, want [1 2]", order)
	}
}

func TestCommandQueueCapacity(t *testing.T) {
	eng, _, _, _, c := newCtrl(t) // capacity 4
	accepted := 0
	for i := 0; i < 6; i++ {
		if c.Get(uint64(0x1000*i), 0xF000, 64, i) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted = %d, want 4", accepted)
	}
	if c.Rejected() != 2 {
		t.Fatalf("rejected = %d, want 2", c.Rejected())
	}
	eng.Run()
}

func TestCommandsProcessInOrder(t *testing.T) {
	eng, gm, _, _, c := newCtrl(t)
	c.Get(0x1000, 0xF000, 64, 1)
	c.Put(0x2000, 0xF040, 64, 2)
	eng.Run()
	if len(gm.reads) != 1 || len(gm.writes) != 1 {
		t.Fatalf("reads=%d writes=%d", len(gm.reads), len(gm.writes))
	}
	// In-order: the get's read must have been issued before the put's
	// write. fakeGM appends at issue time; verify via counters.
	if c.Gets() != 1 || c.Puts() != 1 {
		t.Fatalf("gets=%d puts=%d", c.Gets(), c.Puts())
	}
}

func TestIssuePacing(t *testing.T) {
	eng := sim.NewEngine()
	gm := &fakeGM{eng: eng, delay: 1}
	s := spm.New(eng, 2)
	c := NewController(eng, 0, gm, s, nil, 64, 4, 512, 2) // 2 cycles per line
	var issueTimes []sim.Time
	c.Get(0, 0xF000, 256, 1) // 4 lines; first line issues at enqueue
	if len(gm.reads) > 0 {
		issueTimes = append(issueTimes, eng.Now())
	}
	for eng.Step() {
		if len(gm.reads) > len(issueTimes) {
			issueTimes = append(issueTimes, eng.Now())
		}
	}
	if len(issueTimes) != 4 {
		t.Fatalf("issues = %d", len(issueTimes))
	}
	for i := 1; i < len(issueTimes); i++ {
		if issueTimes[i]-issueTimes[i-1] < 2 {
			t.Fatalf("lines issued %d cycles apart, want >= 2", issueTimes[i]-issueTimes[i-1])
		}
	}
}

func TestBusQueueBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	gm := &fakeGM{eng: eng, delay: 1000} // slow GM keeps requests in flight
	s := spm.New(eng, 2)
	c := NewController(eng, 0, gm, s, nil, 64, 4, 2, 1) // bus cap 2
	c.Get(0, 0xF000, 64*6, 1)                           // 6 lines
	// Run a while: in-flight must never exceed the bus capacity.
	for i := 0; i < 2000 && eng.Step(); i++ {
		inFlight := len(gm.reads) - int(c.LineTransfers())
		if inFlight > 2 {
			t.Fatalf("bus queue exceeded: %d in flight", inFlight)
		}
	}
	eng.Run()
	if c.LineTransfers() != 6 {
		t.Fatalf("transfers = %d, want 6", c.LineTransfers())
	}
}

func TestZeroByteTransferPanics(t *testing.T) {
	_, _, _, _, c := newCtrl(t)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-byte Get did not panic")
		}
	}()
	c.Get(0, 0xF000, 0, 1)
}

func TestNilNotifierOK(t *testing.T) {
	eng := sim.NewEngine()
	gm := &fakeGM{eng: eng, delay: 1}
	s := spm.New(eng, 2)
	c := NewController(eng, 0, gm, s, nil, 64, 4, 8, 1)
	done := false
	c.Get(0x1000, 0xF000, 64, 1)
	c.Sync(1, sim.AsCont(func() { done = true }))
	eng.Run()
	if !done {
		t.Fatal("transfer with nil notifier failed")
	}
}
