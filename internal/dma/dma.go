// Package dma models the per-core DMA controllers (DMACs) that move data
// between the scratchpads and global memory (paper §2.1). Each controller
// has an in-order command queue (32 entries) feeding an in-order bus-request
// queue (512 entries): a command expands into one line-granule bus request
// per cache line, and those requests ride the GM coherence protocol —
// dma-get snoops dirty cached data, dma-put invalidates cached copies.
//
// Software talks to the DMAC through three operations mirroring the paper's
// memory-mapped registers: Get, Put and Sync (dma-synch on a tag).
package dma

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/spm"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// GM abstracts the coherent global-memory system the DMAC transfers against
// (implemented by coherence.Hierarchy).
type GM interface {
	// DMARead fetches one line for a dma-get.
	DMARead(core int, line uint64, done sim.Cont)
	// DMAWrite pushes one line for a dma-put, invalidating cached copies.
	DMAWrite(core int, line uint64, done sim.Cont)
}

// MapNotifier observes chunk mappings. The SPM coherence protocol registers
// itself here: a dma-get updates the core's SPMDir and invalidates filters
// (paper §3.3, Fig. 6a).
type MapNotifier interface {
	// NotifyMap is called when core maps [gmAddr, gmAddr+bytes) into its
	// SPM at spmAddr via a dma-get.
	NotifyMap(core int, gmAddr, spmAddr uint64, bytes int)
}

// command is one queued DMA operation.
type command struct {
	put     bool
	gmAddr  uint64
	spmAddr uint64
	bytes   int
	tag     int
}

// Controller is one core's DMAC.
type Controller struct {
	eng      *sim.Engine
	core     int
	gm       GM
	local    *spm.SPM
	notifier MapNotifier

	lineSize   int
	cmdCap     int
	busCap     int
	lineCycles sim.Time

	cmds       []command
	busInUse   int
	processing bool

	// Issue state of the in-flight command (valid while processing; the
	// command queue is in-order, so there is exactly one). Keeping it on
	// the controller lets every pace/retry event reuse issueCont instead
	// of capturing (cmd, i, n) in a fresh closure per line.
	cur       command
	curLine   int
	curN      int
	issueCont sim.Cont
	freeDones *lineDone

	outstanding map[int]int        // tag -> in-flight line transfers
	waiters     map[int][]sim.Cont // tag -> dma-synch continuations

	gets, puts, lineXfers uint64
	rejected              uint64

	issueStamp map[int]sim.Time // tag -> first enqueue time (diagnostics)
	TagLatency stats.Dist       // enqueue-to-last-completion per tag

	// tr, when set, records command acceptances and per-tag retirement
	// spans. Nil on untraced runs: one pointer check per site.
	tr *telemetry.Trace
}

// SetTrace enables event tracing on the controller.
func (c *Controller) SetTrace(tr *telemetry.Trace) { c.tr = tr }

// NewController builds core's DMAC. notifier may be nil (cache-based or
// ideal-coherence systems).
func NewController(eng *sim.Engine, core int, gm GM, local *spm.SPM, notifier MapNotifier,
	lineSize, cmdQueue, busQueue, lineCycles int) *Controller {
	if lineSize <= 0 || cmdQueue <= 0 || busQueue <= 0 || lineCycles <= 0 {
		panic(fmt.Sprintf("dma: invalid parameters line=%d cmd=%d bus=%d rate=%d",
			lineSize, cmdQueue, busQueue, lineCycles))
	}
	c := &Controller{
		eng:         eng,
		core:        core,
		gm:          gm,
		local:       local,
		notifier:    notifier,
		lineSize:    lineSize,
		cmdCap:      cmdQueue,
		busCap:      busQueue,
		lineCycles:  sim.Time(lineCycles),
		outstanding: make(map[int]int),
		waiters:     make(map[int][]sim.Cont),
		issueStamp:  make(map[int]sim.Time),
	}
	c.issueCont = sim.AsCont(c.issueStep)
	return c
}

// lineDone is a pooled completion node for one line-granule bus request.
type lineDone struct {
	c    *Controller
	tag  int
	next *lineDone // free-list link
}

func (d *lineDone) Fire() {
	c := d.c
	tag := d.tag
	d.next = c.freeDones
	c.freeDones = d
	c.busInUse--
	c.lineXfers++
	c.finishLine(tag)
}

func (c *Controller) newLineDone(tag int) *lineDone {
	d := c.freeDones
	if d != nil {
		c.freeDones = d.next
		d.next = nil
	} else {
		d = &lineDone{c: c}
	}
	d.tag = tag
	return d
}

// Get enqueues a dma-get transferring bytes from gmAddr to spmAddr under
// tag. It reports false when the command queue is full (software retries,
// matching the paper's memory-mapped register interface).
func (c *Controller) Get(gmAddr, spmAddr uint64, bytes, tag int) bool {
	return c.enqueue(command{put: false, gmAddr: gmAddr, spmAddr: spmAddr, bytes: bytes, tag: tag})
}

// Put enqueues a dma-put transferring bytes from spmAddr back to gmAddr.
func (c *Controller) Put(gmAddr, spmAddr uint64, bytes, tag int) bool {
	return c.enqueue(command{put: true, gmAddr: gmAddr, spmAddr: spmAddr, bytes: bytes, tag: tag})
}

func (c *Controller) enqueue(cmd command) bool {
	if len(c.cmds) >= c.cmdCap {
		c.rejected++
		return false
	}
	if cmd.bytes <= 0 {
		panic("dma: transfer of zero bytes")
	}
	if cmd.put {
		c.puts++
	} else {
		c.gets++
	}
	if _, ok := c.issueStamp[cmd.tag]; !ok {
		c.issueStamp[cmd.tag] = c.eng.Now()
	}
	if c.tr != nil {
		var put uint64
		if cmd.put {
			put = 1
		}
		c.tr.Add(telemetry.KDMACmd, c.core, 0, cmd.gmAddr, uint64(cmd.bytes)<<1|put)
	}
	c.outstanding[cmd.tag] += c.lines(cmd.bytes)
	c.cmds = append(c.cmds, cmd)
	c.process()
	return true
}

// Sync registers done to fire once every transfer tagged tag has completed
// (dma-synch). If none are outstanding it fires on the next cycle.
func (c *Controller) Sync(tag int, done sim.Cont) {
	if c.outstanding[tag] == 0 {
		c.eng.ScheduleCont(1, done)
		return
	}
	c.waiters[tag] = append(c.waiters[tag], done)
}

// Outstanding returns in-flight line transfers for tag.
func (c *Controller) Outstanding(tag int) int { return c.outstanding[tag] }

// Gets returns the number of accepted dma-get commands.
func (c *Controller) Gets() uint64 { return c.gets }

// Puts returns the number of accepted dma-put commands.
func (c *Controller) Puts() uint64 { return c.puts }

// LineTransfers returns the number of line-granule bus requests issued.
func (c *Controller) LineTransfers() uint64 { return c.lineXfers }

// Rejected returns how many commands were refused due to a full queue.
func (c *Controller) Rejected() uint64 { return c.rejected }

func (c *Controller) lines(bytes int) int {
	return (bytes + c.lineSize - 1) / c.lineSize
}

// process drains the command queue in order, pacing bus-request issue at one
// line per lineCycles and respecting the bus-queue occupancy cap.
func (c *Controller) process() {
	if c.processing || len(c.cmds) == 0 {
		return
	}
	c.processing = true
	cmd := c.cmds[0]

	// A dma-get maps a chunk: the coherence protocol learns about it
	// before any data moves, exactly like the SPMDir update + filter
	// invalidation happening at the MAP call (paper §3.3).
	if !cmd.put && c.notifier != nil {
		c.notifier.NotifyMap(c.core, cmd.gmAddr, cmd.spmAddr, cmd.bytes)
	}

	c.cur = cmd
	c.curLine = 0
	c.curN = c.lines(cmd.bytes)
	c.issueStep()
}

// issueStep issues the current command's next bus request (or retries when
// the bus queue is full). Every pace/retry event is the cached issueCont.
func (c *Controller) issueStep() {
	if c.curLine == c.curN {
		// Command fully issued; move to the next one.
		c.cmds = c.cmds[1:]
		c.processing = false
		c.process()
		return
	}
	if c.busInUse >= c.busCap {
		// Bus queue full: retry shortly.
		c.eng.ScheduleCont(c.lineCycles, c.issueCont)
		return
	}
	c.busInUse++
	line := (c.cur.gmAddr >> lineShift(c.lineSize)) + uint64(c.curLine)
	complete := c.newLineDone(c.cur.tag)
	if c.cur.put {
		c.local.DMAAccess(false) // read SPM array
		c.gm.DMAWrite(c.core, line, complete)
	} else {
		c.local.DMAAccess(true) // write SPM array
		c.gm.DMARead(c.core, line, complete)
	}
	// Pace the next line request.
	c.curLine++
	c.eng.ScheduleCont(c.lineCycles, c.issueCont)
}

// finishLine retires one line transfer of tag, waking dma-synch waiters.
func (c *Controller) finishLine(tag int) {
	c.outstanding[tag]--
	if c.outstanding[tag] > 0 {
		return
	}
	delete(c.outstanding, tag)
	if t0, ok := c.issueStamp[tag]; ok {
		c.TagLatency.Observe(uint64(c.eng.Now() - t0))
		if c.tr != nil {
			c.tr.Add(telemetry.KDMATag, c.core, c.eng.Now()-t0, uint64(tag), 0)
		}
		delete(c.issueStamp, tag)
	}
	ws := c.waiters[tag]
	delete(c.waiters, tag)
	for _, w := range ws {
		c.eng.ScheduleCont(0, w)
	}
}

func lineShift(lineSize int) uint {
	s := uint(0)
	for 1<<s < lineSize {
		s++
	}
	return s
}
