package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet("l1")
	s.Inc("hits")
	s.Add("hits", 4)
	s.Add("misses", 2)
	if got := s.Get("hits"); got != 5 {
		t.Fatalf("hits = %d, want 5", got)
	}
	if got := s.Get("misses"); got != 2 {
		t.Fatalf("misses = %d, want 2", got)
	}
	if got := s.Get("absent"); got != 0 {
		t.Fatalf("absent = %d, want 0", got)
	}
	if got := s.Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	if s.Name() != "l1" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestSetKeysSorted(t *testing.T) {
	s := NewSet("x")
	for _, k := range []string{"zeta", "alpha", "mid"} {
		s.Inc(k)
	}
	keys := s.Keys()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestSetAddSet(t *testing.T) {
	a, b := NewSet("a"), NewSet("b")
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.AddSet(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("after merge: x=%d y=%d", a.Get("x"), a.Get("y"))
	}
}

func TestSetSnapshotIsCopy(t *testing.T) {
	s := NewSet("s")
	s.Add("k", 1)
	snap := s.Snapshot()
	s.Add("k", 1)
	if snap["k"] != 1 {
		t.Fatalf("snapshot mutated: %d", snap["k"])
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet("s")
	s.Add("k", 9)
	s.Reset()
	if s.Total() != 0 {
		t.Fatalf("Total after reset = %d", s.Total())
	}
}

func TestSetString(t *testing.T) {
	s := NewSet("noc")
	s.Add("pkts", 12)
	out := s.String()
	if !strings.Contains(out, "noc:") || !strings.Contains(out, "pkts") {
		t.Fatalf("String() = %q", out)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(0, 0); got != 0 {
		t.Fatalf("Ratio(0,0) = %v", got)
	}
	if got := Ratio(3, 1); got != 0.75 {
		t.Fatalf("Ratio(3,1) = %v", got)
	}
	if got := Ratio(0, 5); got != 0 {
		t.Fatalf("Ratio(0,5) = %v", got)
	}
}

func TestDistObserve(t *testing.T) {
	var d Dist
	for _, v := range []uint64{5, 1, 9} {
		d.Observe(v)
	}
	if d.Count != 3 || d.Min != 1 || d.Max != 9 || d.Sum != 15 {
		t.Fatalf("dist = %+v", d)
	}
	if d.Mean() != 5 {
		t.Fatalf("Mean = %v", d.Mean())
	}
}

func TestDistEmptyMean(t *testing.T) {
	var d Dist
	if d.Mean() != 0 {
		t.Fatalf("empty Mean = %v", d.Mean())
	}
}

func TestDistMerge(t *testing.T) {
	var a, b Dist
	a.Observe(2)
	a.Observe(4)
	b.Observe(10)
	a.Merge(b)
	if a.Count != 3 || a.Min != 2 || a.Max != 10 || a.Sum != 16 {
		t.Fatalf("merged = %+v", a)
	}
	var empty Dist
	a.Merge(empty)
	if a.Count != 3 {
		t.Fatalf("merge empty changed count: %+v", a)
	}
	var c Dist
	c.Merge(a)
	if c != a {
		t.Fatalf("merge into empty = %+v, want %+v", c, a)
	}
}

// Property: Set.Total equals the sum of all added values regardless of key
// distribution.
func TestSetTotalProperty(t *testing.T) {
	prop := func(keys []uint8, vals []uint16) bool {
		s := NewSet("p")
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		var want uint64
		for i := 0; i < n; i++ {
			s.Add(string(rune('a'+keys[i]%16)), uint64(vals[i]))
			want += uint64(vals[i])
		}
		return s.Total() == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dist min <= mean <= max for any non-empty sample set.
func TestDistBoundsProperty(t *testing.T) {
	prop := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		var d Dist
		for _, v := range vals {
			d.Observe(uint64(v))
		}
		m := d.Mean()
		return float64(d.Min) <= m+1e-9 && m <= float64(d.Max)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
