package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Reg is a build-time registry of counter names for one component class.
// Every counter a component will ever increment is registered once, at
// package init, yielding an integer Handle; the per-instance Counters is then
// a flat slice indexed by handle, so the hot path is a single bounds-checked
// array increment — no hashing, no string keys, no map buckets.
type Reg struct {
	names []string
	index map[string]Handle
}

// Handle identifies one registered counter within its Reg.
type Handle int32

// NewReg returns an empty registry.
func NewReg() *Reg {
	return &Reg{index: make(map[string]Handle)}
}

// Handle registers name (idempotently) and returns its handle. Call at
// package init; handles are stable for the life of the registry.
func (r *Reg) Handle(name string) Handle {
	if h, ok := r.index[name]; ok {
		return h
	}
	h := Handle(len(r.names))
	r.names = append(r.names, name)
	r.index[name] = h
	return h
}

// Len returns the number of registered counters.
func (r *Reg) Len() int { return len(r.names) }

// Counters is an interned counter set: one slot per registered name. It
// renders and snapshots exactly like Set — only touched (nonzero) counters
// appear, sorted by name — so swapping a component from Set to Counters is
// invisible in report output.
type Counters struct {
	name string
	reg  *Reg
	v    []uint64
}

// NewCounters returns a zeroed counter set over the registry.
func (r *Reg) NewCounters(name string) *Counters {
	return &Counters{name: name, reg: r, v: make([]uint64, len(r.names))}
}

// Name returns the set's name.
func (c *Counters) Name() string { return c.name }

// Inc increments the counter by one.
func (c *Counters) Inc(h Handle) { c.v[h]++ }

// Add increments the counter by n.
func (c *Counters) Add(h Handle, n uint64) { c.v[h] += n }

// Val returns the counter's current value.
func (c *Counters) Val(h Handle) uint64 { return c.v[h] }

// Get returns the value of the counter named name (zero when unregistered or
// never touched). By-name lookup is the cold path for reports and tests; hot
// code holds Handles.
func (c *Counters) Get(name string) uint64 {
	h, ok := c.reg.index[name]
	if !ok {
		return 0
	}
	return c.v[h]
}

// Total sums every counter.
func (c *Counters) Total() uint64 {
	var t uint64
	for _, v := range c.v {
		t += v
	}
	return t
}

// Keys returns the touched (nonzero) counter names in sorted order.
func (c *Counters) Keys() []string {
	keys := make([]string, 0, len(c.v))
	for i, v := range c.v {
		if v != 0 {
			keys = append(keys, c.reg.names[i])
		}
	}
	sort.Strings(keys)
	return keys
}

// AllNames returns every registered name in registration order, touched or
// not — the full schema of the set. Telemetry uses this to fix a time-series
// layout up front, before any counter has moved.
func (c *Counters) AllNames() []string {
	out := make([]string, len(c.reg.names))
	copy(out, c.reg.names)
	return out
}

// Snapshot returns the touched counters as a map, matching Set.Snapshot.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.v))
	for i, v := range c.v {
		if v != 0 {
			out[c.reg.names[i]] = v
		}
	}
	return out
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	for i := range c.v {
		c.v[i] = 0
	}
}

// String renders the set one counter per line, byte-compatible with
// Set.String.
func (c *Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", c.name)
	for _, k := range c.Keys() {
		fmt.Fprintf(&b, "  %-32s %12d\n", k, c.Get(k))
	}
	return b.String()
}
