// Package stats provides the counters and small aggregations used by every
// hardware model to report what happened during a simulation. All output is
// deterministically ordered so runs diff cleanly.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a named group of monotonically increasing counters. The zero value
// is not usable; construct with NewSet.
type Set struct {
	name string
	m    map[string]uint64
}

// NewSet returns an empty counter set with the given name.
func NewSet(name string) *Set {
	return &Set{name: name, m: make(map[string]uint64)}
}

// Name returns the set's name.
func (s *Set) Name() string { return s.name }

// Add increments counter key by n.
func (s *Set) Add(key string, n uint64) { s.m[key] += n }

// Inc increments counter key by one.
func (s *Set) Inc(key string) { s.m[key]++ }

// Get returns the current value of key (zero if never touched).
func (s *Set) Get(key string) uint64 { return s.m[key] }

// Total sums every counter in the set.
func (s *Set) Total() uint64 {
	var t uint64
	for _, v := range s.m {
		t += v
	}
	return t
}

// Keys returns the touched counter names in sorted order.
func (s *Set) Keys() []string {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot returns a copy of the underlying counters.
func (s *Set) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	return out
}

// AddSet merges other into s (element-wise add).
func (s *Set) AddSet(other *Set) {
	for k, v := range other.m {
		s.m[k] += v
	}
}

// Reset zeroes every counter.
func (s *Set) Reset() {
	for k := range s.m {
		delete(s.m, k)
	}
}

// String renders the set one counter per line, sorted by key.
func (s *Set) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", s.name)
	for _, k := range s.Keys() {
		fmt.Fprintf(&b, "  %-32s %12d\n", k, s.m[k])
	}
	return b.String()
}

// Ratio is a convenience for hit/miss style ratios: it returns num/(num+den),
// and 0 when both are zero.
func Ratio(num, den uint64) float64 {
	if num+den == 0 {
		return 0
	}
	return float64(num) / float64(num+den)
}

// Dist is a streaming distribution summary (count, sum, min, max).
type Dist struct {
	Count uint64
	Sum   uint64
	Min   uint64
	Max   uint64
}

// Observe folds one sample into the distribution.
func (d *Dist) Observe(v uint64) {
	if d.Count == 0 || v < d.Min {
		d.Min = v
	}
	if v > d.Max {
		d.Max = v
	}
	d.Count++
	d.Sum += v
}

// Mean returns the sample mean, or 0 for an empty distribution.
func (d *Dist) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.Sum) / float64(d.Count)
}

// Merge folds other into d.
func (d *Dist) Merge(other Dist) {
	if other.Count == 0 {
		return
	}
	if d.Count == 0 {
		*d = other
		return
	}
	if other.Min < d.Min {
		d.Min = other.Min
	}
	if other.Max > d.Max {
		d.Max = other.Max
	}
	d.Count += other.Count
	d.Sum += other.Sum
}

func (d *Dist) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%d max=%d", d.Count, d.Mean(), d.Min, d.Max)
}
