package stats

import (
	"reflect"
	"testing"
)

func TestCountersMatchesSet(t *testing.T) {
	r := NewReg()
	a := r.Handle("l1d.accesses")
	b := r.Handle("l2.misses")
	c := r.Handle("never.touched")
	if got := r.Handle("l1d.accesses"); got != a {
		t.Fatalf("re-registering returned %d, want %d", got, a)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}

	cs := r.NewCounters("core0")
	set := NewSet("core0")
	for i := 0; i < 5; i++ {
		cs.Inc(a)
		set.Inc("l1d.accesses")
	}
	cs.Add(b, 7)
	set.Add("l2.misses", 7)
	_ = c

	if cs.Val(a) != 5 || cs.Get("l1d.accesses") != 5 {
		t.Fatalf("Val/Get mismatch: %d %d", cs.Val(a), cs.Get("l1d.accesses"))
	}
	if cs.Get("never.touched") != 0 || cs.Get("unregistered") != 0 {
		t.Fatal("untouched/unregistered counters must read 0")
	}
	if cs.Total() != set.Total() {
		t.Fatalf("Total = %d, want %d", cs.Total(), set.Total())
	}
	if !reflect.DeepEqual(cs.Keys(), set.Keys()) {
		t.Fatalf("Keys = %v, want %v", cs.Keys(), set.Keys())
	}
	if !reflect.DeepEqual(cs.Snapshot(), set.Snapshot()) {
		t.Fatalf("Snapshot = %v, want %v", cs.Snapshot(), set.Snapshot())
	}
	if cs.String() != set.String() {
		t.Fatalf("String mismatch:\n%q\nwant\n%q", cs.String(), set.String())
	}

	cs.Reset()
	if cs.Total() != 0 || len(cs.Keys()) != 0 {
		t.Fatal("Reset did not zero counters")
	}
	if cs.Name() != "core0" {
		t.Fatalf("Name = %q", cs.Name())
	}
}

func BenchmarkCountersInc(b *testing.B) {
	r := NewReg()
	h := r.Handle("l1d.accesses")
	cs := r.NewCounters("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cs.Inc(h)
	}
	if cs.Val(h) == 0 {
		b.Fatal("no increments")
	}
}
