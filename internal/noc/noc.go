// Package noc models the on-chip interconnect: a 2D mesh of routers with XY
// dimension-order routing, one-cycle routers and links (Table 1), packet
// serialization into link-width flits, and per-link bandwidth contention.
//
// Every message carries a traffic Category so the harness can reproduce the
// paper's Figure 10 breakdown (Ifetch / Read / Write / WB-Repl / DMA /
// CohProt).
package noc

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Category classifies NoC traffic for accounting (paper Fig. 10).
type Category int

const (
	// Ifetch is instruction-fetch traffic.
	Ifetch Category = iota
	// Read is data-cache read traffic: requests, data and acks.
	Read
	// Write is data-cache write traffic, including prefetches.
	Write
	// WBRepl is write-back/replacement/invalidation traffic.
	WBRepl
	// DMA is scratchpad DMA transfer traffic.
	DMA
	// CohProt is traffic added by the paper's SPM coherence protocol.
	CohProt

	// NumCategories is the number of traffic categories.
	NumCategories
)

var categoryNames = [NumCategories]string{"Ifetch", "Read", "Write", "WB-Repl", "DMA", "CohProt"}

func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// direction indexes the four outgoing links of a router.
type direction int

const (
	east direction = iota
	west
	north
	south
	numDirs
)

// Mesh is the interconnect. Nodes are numbered row-major: node id = y*W + x.
type Mesh struct {
	eng       *sim.Engine
	w, h      int
	flitBytes int
	linkBW    int // flits per cycle per link
	linkLat   sim.Time
	routerLat sim.Time

	// linkFree[node][dir] is the first cycle the link leaving node in
	// direction dir is available.
	linkFree [][numDirs]sim.Time

	pkts     [NumCategories]uint64
	flits    [NumCategories]uint64
	flitHops [NumCategories]uint64
	latency  stats.Dist

	// freePkts is the free list of recycled packet nodes: steady-state
	// traffic allocates no per-hop closures (DESIGN.md, hot-path memory
	// discipline).
	freePkts *packet

	// tr, when set, records every injection as a telemetry event. Nil on
	// untraced runs: one pointer check per send, nothing else.
	tr *telemetry.Trace
}

// SetTrace enables event tracing on the mesh.
func (m *Mesh) SetTrace(tr *telemetry.Trace) { m.tr = tr }

// New builds a W×H mesh on the engine. flitBytes is the link width;
// linkLat/routerLat are per-hop latencies in cycles. Links accept one flit
// per cycle; use NewBW for multi-flit (virtual-channel style) links.
func New(eng *sim.Engine, w, h, flitBytes, linkLat, routerLat int) *Mesh {
	return NewBW(eng, w, h, flitBytes, 1, linkLat, routerLat)
}

// NewBW builds a mesh whose links accept linkBW flits per cycle.
func NewBW(eng *sim.Engine, w, h, flitBytes, linkBW, linkLat, routerLat int) *Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("noc: invalid mesh %dx%d", w, h))
	}
	if flitBytes <= 0 || linkBW <= 0 {
		panic("noc: flitBytes and linkBW must be positive")
	}
	return &Mesh{
		eng:       eng,
		w:         w,
		h:         h,
		flitBytes: flitBytes,
		linkBW:    linkBW,
		linkLat:   sim.Time(linkLat),
		routerLat: sim.Time(routerLat),
		linkFree:  make([][numDirs]sim.Time, w*h),
	}
}

// occupancy returns the cycles a packet of flits holds one link.
func (m *Mesh) occupancy(flits int) sim.Time {
	return sim.Time((flits + m.linkBW - 1) / m.linkBW)
}

// Nodes returns the number of mesh nodes.
func (m *Mesh) Nodes() int { return m.w * m.h }

// Flits returns how many flits a payload of n bytes occupies (minimum 1: the
// head flit carries the address/command).
func (m *Mesh) Flits(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + m.flitBytes - 1) / m.flitBytes
}

// Hops returns the XY-routing hop count between two nodes.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := src%m.w, src/m.w
	dx, dy := dst%m.w, dst/m.w
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// packet is a pooled in-flight packet. One node carries the packet across
// every hop: each scheduled event is the node itself (cur < dst route steps,
// then delivery when cur == dst), so a K-hop packet costs zero allocations in
// steady state — the node comes off the mesh free list and returns to it the
// moment it delivers.
type packet struct {
	m        *Mesh
	cur, dst int
	flits    int
	start    sim.Time
	deliver  sim.Cont
	next     *packet // free-list link
}

func (m *Mesh) allocPkt() *packet {
	if p := m.freePkts; p != nil {
		m.freePkts = p.next
		p.next = nil
		return p
	}
	return &packet{m: m}
}

// Fire advances the packet: route one more hop, or deliver if it has arrived.
func (p *packet) Fire() {
	if p.cur != p.dst {
		p.step()
		return
	}
	m := p.m
	m.latency.Observe(uint64(m.eng.Now() - p.start))
	d := p.deliver
	p.deliver = nil
	p.next = m.freePkts
	m.freePkts = p
	// The node is recycled before the continuation runs so that a deliver
	// handler injecting a new packet reuses it immediately.
	d.Fire()
}

// step reserves the next link along the XY route and schedules the node for
// its arrival at the downstream router.
func (p *packet) step() {
	m := p.m
	next, dir := m.xyNext(p.cur, p.dst)

	// Reserve the outgoing link: the packet's tail occupies it for one
	// cycle per flit. Queueing delay is the gap until the link frees.
	ready := m.eng.Now()
	if m.linkFree[p.cur][dir] > ready {
		ready = m.linkFree[p.cur][dir]
	}
	m.linkFree[p.cur][dir] = ready + m.occupancy(p.flits)

	depart := ready - m.eng.Now()
	arrive := depart + m.routerLat + m.linkLat
	if next == p.dst {
		// Tail serialization only charged once, at the final hop;
		// intermediate hops pipeline flits.
		arrive += m.occupancy(p.flits) - 1
	}
	p.cur = next
	m.eng.ScheduleCont(arrive, p)
}

// Send injects a packet of size bytes from src to dst and invokes deliver at
// the destination once the head flit arrives and the tail flit has been
// serialized. Contention is modelled by per-link bandwidth reservation: a
// packet of F flits occupies each traversed link for F cycles.
func (m *Mesh) Send(src, dst, bytes int, cat Category, deliver func()) {
	m.SendCont(src, dst, bytes, cat, sim.AsCont(deliver))
}

// SendCont is Send for pooled continuations: the entire transit — queueing,
// hops, tail serialization, delivery — runs on one recycled packet node.
func (m *Mesh) SendCont(src, dst, bytes int, cat Category, deliver sim.Cont) {
	if src < 0 || src >= m.Nodes() || dst < 0 || dst >= m.Nodes() {
		panic(fmt.Sprintf("noc: send %d->%d outside %d-node mesh", src, dst, m.Nodes()))
	}
	if deliver == nil {
		deliver = sim.Nop
	}
	flits := m.Flits(bytes)
	m.pkts[cat]++
	m.flits[cat] += uint64(flits)
	m.flitHops[cat] += uint64(flits * m.Hops(src, dst))
	if m.tr != nil {
		m.tr.Add(telemetry.KNoCSend, src, 0, uint64(dst), uint64(bytes)<<4|uint64(cat))
	}

	p := m.allocPkt()
	p.cur, p.dst, p.flits, p.start, p.deliver = src, dst, flits, m.eng.Now(), deliver
	if src == dst {
		// Local delivery still pays the router traversal.
		m.eng.ScheduleCont(m.routerLat, p)
		return
	}
	p.step()
}

// xyNext returns the neighbour on the XY route toward dst and the link
// direction used to reach it.
func (m *Mesh) xyNext(cur, dst int) (int, direction) {
	cx, cy := cur%m.w, cur/m.w
	dx, dy := dst%m.w, dst/m.w
	switch {
	case cx < dx:
		return cur + 1, east
	case cx > dx:
		return cur - 1, west
	case cy < dy:
		return cur + m.w, south
	case cy > dy:
		return cur - m.w, north
	default:
		panic("noc: xyNext called with cur == dst")
	}
}

// Packets returns the packet count for one category.
func (m *Mesh) Packets(cat Category) uint64 { return m.pkts[cat] }

// TotalPackets sums packets across all categories.
func (m *Mesh) TotalPackets() uint64 {
	var t uint64
	for _, v := range m.pkts {
		t += v
	}
	return t
}

// FlitHops returns flit·hop work for one category; this is the quantity the
// energy model charges per-link traversal energy on.
func (m *Mesh) FlitHops(cat Category) uint64 { return m.flitHops[cat] }

// TotalFlitHops sums flit-hops across all categories.
func (m *Mesh) TotalFlitHops() uint64 {
	var t uint64
	for _, v := range m.flitHops {
		t += v
	}
	return t
}

// Latency returns the packet latency distribution observed so far.
func (m *Mesh) Latency() stats.Dist { return m.latency }

// Counters exports all traffic counters as a stats.Set (used by reports).
func (m *Mesh) Counters() *stats.Set {
	s := stats.NewSet("noc")
	for c := Category(0); c < NumCategories; c++ {
		s.Add("pkts."+c.String(), m.pkts[c])
		s.Add("flits."+c.String(), m.flits[c])
		s.Add("flithops."+c.String(), m.flitHops[c])
	}
	return s
}
