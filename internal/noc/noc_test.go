package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newMesh(t *testing.T, w, h int) (*sim.Engine, *Mesh) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, New(eng, w, h, 16, 1, 1)
}

func TestHopsXY(t *testing.T) {
	_, m := newMesh(t, 8, 8)
	cases := []struct{ src, dst, want int }{
		{0, 0, 0},
		{0, 7, 7},
		{0, 63, 14},
		{9, 18, 2}, // (1,1) -> (2,2)
		{63, 0, 14},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestFlits(t *testing.T) {
	_, m := newMesh(t, 2, 2)
	cases := []struct{ bytes, want int }{
		{0, 1}, {1, 1}, {16, 1}, {17, 2}, {64, 4}, {72, 5},
	}
	for _, c := range cases {
		if got := m.Flits(c.bytes); got != c.want {
			t.Errorf("Flits(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestUncontendedLatency(t *testing.T) {
	eng, m := newMesh(t, 8, 8)
	var arrived sim.Time
	// 1-flit control packet 0 -> 1: one hop = router + link = 2 cycles.
	m.Send(0, 1, 8, Read, func() { arrived = eng.Now() })
	eng.Run()
	if arrived != 2 {
		t.Fatalf("1-hop control packet arrived at %d, want 2", arrived)
	}
}

func TestDataPacketSerialization(t *testing.T) {
	eng, m := newMesh(t, 8, 8)
	var arrived sim.Time
	// 64B data = 4 flits, one hop: 2 cycles + 3 serialization = 5.
	m.Send(0, 1, 64, Read, func() { arrived = eng.Now() })
	eng.Run()
	if arrived != 5 {
		t.Fatalf("64B packet arrived at %d, want 5", arrived)
	}
}

func TestMultiHopLatency(t *testing.T) {
	eng, m := newMesh(t, 8, 8)
	var arrived sim.Time
	// 0 -> 63 is 14 hops; 1 flit: 14 * 2 = 28.
	m.Send(0, 63, 8, CohProt, func() { arrived = eng.Now() })
	eng.Run()
	if arrived != 28 {
		t.Fatalf("14-hop packet arrived at %d, want 28", arrived)
	}
}

func TestLocalDelivery(t *testing.T) {
	eng, m := newMesh(t, 2, 2)
	var arrived sim.Time
	m.Send(3, 3, 64, Write, func() { arrived = eng.Now() })
	eng.Run()
	if arrived != 1 {
		t.Fatalf("local packet arrived at %d, want 1 (router only)", arrived)
	}
	if m.Hops(3, 3) != 0 {
		t.Fatal("Hops(x,x) != 0")
	}
}

func TestLinkContention(t *testing.T) {
	eng, m := newMesh(t, 8, 8)
	var first, second sim.Time
	// Two 4-flit packets on the same link back to back: the second waits
	// for the first's 4-cycle link reservation.
	m.Send(0, 1, 64, Read, func() { first = eng.Now() })
	m.Send(0, 1, 64, Read, func() { second = eng.Now() })
	eng.Run()
	if first != 5 {
		t.Fatalf("first arrived at %d, want 5", first)
	}
	if second != 9 {
		t.Fatalf("second arrived at %d, want 9 (4-cycle link occupancy)", second)
	}
}

func TestDisjointLinksNoContention(t *testing.T) {
	eng, m := newMesh(t, 8, 8)
	var a, b sim.Time
	m.Send(0, 1, 64, Read, func() { a = eng.Now() })
	m.Send(8, 9, 64, Read, func() { b = eng.Now() })
	eng.Run()
	if a != 5 || b != 5 {
		t.Fatalf("disjoint packets arrived at %d,%d, want 5,5", a, b)
	}
}

func TestTrafficAccounting(t *testing.T) {
	eng, m := newMesh(t, 8, 8)
	m.Send(0, 1, 64, Read, nil)
	m.Send(0, 1, 8, CohProt, nil)
	m.Send(0, 2, 64, DMA, nil)
	eng.Run()
	if got := m.Packets(Read); got != 1 {
		t.Fatalf("Packets(Read) = %d, want 1", got)
	}
	if got := m.TotalPackets(); got != 3 {
		t.Fatalf("TotalPackets = %d, want 3", got)
	}
	if got := m.FlitHops(Read); got != 4 {
		t.Fatalf("FlitHops(Read) = %d, want 4 (4 flits * 1 hop)", got)
	}
	if got := m.FlitHops(DMA); got != 8 {
		t.Fatalf("FlitHops(DMA) = %d, want 8 (4 flits * 2 hops)", got)
	}
	if got := m.FlitHops(CohProt); got != 1 {
		t.Fatalf("FlitHops(CohProt) = %d, want 1", got)
	}
	c := m.Counters()
	if c.Get("pkts.Read") != 1 || c.Get("flithops.DMA") != 8 {
		t.Fatalf("Counters() wrong: %v", c)
	}
}

func TestLatencyDistribution(t *testing.T) {
	eng, m := newMesh(t, 8, 8)
	m.Send(0, 1, 8, Read, nil)
	m.Send(63, 0, 8, Read, nil) // disjoint links from the first packet
	eng.Run()
	d := m.Latency()
	if d.Count != 2 {
		t.Fatalf("latency samples = %d, want 2", d.Count)
	}
	if d.Min != 2 || d.Max != 28 {
		t.Fatalf("latency min/max = %d/%d, want 2/28", d.Min, d.Max)
	}
}

func TestSendOutOfRangePanics(t *testing.T) {
	eng, m := newMesh(t, 2, 2)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("Send to out-of-range node did not panic")
		}
	}()
	m.Send(0, 99, 8, Read, nil)
}

func TestCategoryString(t *testing.T) {
	want := map[Category]string{
		Ifetch: "Ifetch", Read: "Read", Write: "Write",
		WBRepl: "WB-Repl", DMA: "DMA", CohProt: "CohProt",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
}

// Property: every packet arrives, and never earlier than the uncontended
// XY latency lower bound.
func TestDeliveryLowerBoundProperty(t *testing.T) {
	prop := func(pairs []uint16, size uint8) bool {
		eng := sim.NewEngine()
		m := New(eng, 4, 4, 16, 1, 1)
		bytes := int(size%128) + 1
		type rec struct {
			src, dst int
			at       sim.Time
		}
		var got []rec
		for _, p := range pairs {
			src, dst := int(p)%16, int(p>>4)%16
			m.Send(src, dst, bytes, Read, func() {
				got = append(got, rec{src, dst, eng.Now()})
			})
		}
		eng.Run()
		if len(got) != len(pairs) {
			return false
		}
		flits := m.Flits(bytes)
		for _, r := range got {
			var lower sim.Time
			if r.src == r.dst {
				lower = 1
			} else {
				lower = sim.Time(2*m.Hops(r.src, r.dst) + flits - 1)
			}
			if r.at < lower {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: flit-hop accounting equals sum over packets of flits*hops.
func TestFlitHopAccountingProperty(t *testing.T) {
	prop := func(pairs []uint16) bool {
		eng := sim.NewEngine()
		m := New(eng, 4, 4, 16, 1, 1)
		var want uint64
		for _, p := range pairs {
			src := int(p) % 16
			dst := int(p>>4) % 16
			m.Send(src, dst, 64, DMA, nil)
			want += uint64(m.Flits(64) * m.Hops(src, dst))
		}
		eng.Run()
		return m.FlitHops(DMA) == want && m.TotalFlitHops() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
