// Package metrics is a small dependency-free Prometheus-compatible metrics
// library: counters, gauges, histograms (plain and labelled), and an HTTP
// handler rendering the text exposition format (version 0.0.4). It exists so
// the daemon can serve GET /metrics without pulling in client_golang; only
// the subset the daemon needs is implemented.
//
// All instruments are safe for concurrent use (atomics; a mutex only on the
// label-resolution and render paths).
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets mirrors client_golang's default histogram buckets: latencies
// from 5ms to 10s.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative buckets plus sum and count.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus +Inf at the end
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return &Histogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// metric is one registered family.
type metric struct {
	name, help, typ string
	render          func(w *strings.Builder, name string)
}

// Registry holds registered metric families and renders them.
type Registry struct {
	mu       sync.Mutex
	families []*metric
	byName   map[string]*metric
	subs     []*Registry
}

// Attach renders sub's families after this registry's own — the composition
// hook for a subsystem (e.g. the cluster tier) that owns its instruments but
// should appear on the same /metrics surface. Family names must not collide
// across attached registries; the caller owns that invariant.
func (r *Registry) Attach(sub *Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs = append(r.subs, sub)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

func (r *Registry) register(name, help, typ string, render func(*strings.Builder, string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("metrics: duplicate metric " + name)
	}
	m := &metric{name: name, help: help, typ: typ, render: render}
	r.byName[name] = m
	r.families = append(r.families, m)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(w *strings.Builder, n string) {
		fmt.Fprintf(w, "%s %d\n", n, c.Value())
	})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape time
// — the bridge for pre-existing atomics (queue submit counts, cache stats).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, "counter", func(w *strings.Builder, n string) {
		fmt.Fprintf(w, "%s %d\n", n, fn())
	})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(w *strings.Builder, n string) {
		fmt.Fprintf(w, "%s %d\n", n, g.Value())
	})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(name, help, "gauge", func(w *strings.Builder, n string) {
		fmt.Fprintf(w, "%s %d\n", n, fn())
	})
}

// Info registers a gauge that is constantly 1 and carries its information in
// labels — the build_info pattern.
func (r *Registry) Info(name, help string, labels map[string]string) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", k, strconv.Quote(labels[k]))
	}
	body := b.String()
	r.register(name, help, "gauge", func(w *strings.Builder, n string) {
		fmt.Fprintf(w, "%s{%s} 1\n", n, body)
	})
}

// RegisterProcess registers the standard process-level gauges under prefix
// (e.g. "hybridsimd_"): uptime since start, live goroutines, and heap in
// use — the minimum a fleet dashboard needs to tell a hung daemon from an
// idle one. All three read live state at scrape time; ReadMemStats costs a
// brief stop-the-world, which is fine at scrape frequency.
func (r *Registry) RegisterProcess(prefix string, start time.Time) {
	r.GaugeFunc(prefix+"process_uptime_seconds", "Seconds since the process started.",
		func() int64 { return int64(time.Since(start).Seconds()) })
	r.GaugeFunc(prefix+"process_goroutines", "Live goroutines.",
		func() int64 { return int64(runtime.NumGoroutine()) })
	r.GaugeFunc(prefix+"process_heap_inuse_bytes", "Bytes in in-use heap spans.",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.HeapInuse)
		})
}

// Histogram registers and returns a histogram. nil buckets = DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, "histogram", func(w *strings.Builder, n string) {
		renderHistogram(w, n, "", h)
	})
	return h
}

// labelled pairs one label value-set with its instrument.
type labelled[T any] struct {
	key  string // rendered label body, e.g. `outcome="cached"`
	inst T
}

// vec is the shared machinery of CounterVec/HistogramVec: label resolution
// into per-child instruments, rendered in first-use order.
type vec[T any] struct {
	mu     sync.Mutex
	labels []string
	kids   map[string]*labelled[T]
	order  []*labelled[T]
	mk     func() T
}

func (v *vec[T]) with(values ...string) T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: got %d label values, want %d", len(values), len(v.labels)))
	}
	var b strings.Builder
	for i, l := range v.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", l, strconv.Quote(values[i]))
	}
	key := b.String()
	v.mu.Lock()
	defer v.mu.Unlock()
	kid, ok := v.kids[key]
	if !ok {
		kid = &labelled[T]{key: key, inst: v.mk()}
		v.kids[key] = kid
		v.order = append(v.order, kid)
	}
	return kid.inst
}

func (v *vec[T]) snapshot() []*labelled[T] {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*labelled[T], len(v.order))
	copy(out, v.order)
	return out
}

// CounterVec is a counter family with labels.
type CounterVec struct{ vec[*Counter] }

// With returns the child counter for the label values (created on first use).
func (cv *CounterVec) With(values ...string) *Counter { return cv.with(values...) }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{vec[*Counter]{
		labels: labels,
		kids:   map[string]*labelled[*Counter]{},
		mk:     func() *Counter { return &Counter{} },
	}}
	r.register(name, help, "counter", func(w *strings.Builder, n string) {
		for _, kid := range cv.snapshot() {
			fmt.Fprintf(w, "%s{%s} %d\n", n, kid.key, kid.inst.Value())
		}
	})
	return cv
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ vec[*Gauge] }

// With returns the child gauge for the label values (created on first use).
func (gv *GaugeVec) With(values ...string) *Gauge { return gv.with(values...) }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	gv := &GaugeVec{vec[*Gauge]{
		labels: labels,
		kids:   map[string]*labelled[*Gauge]{},
		mk:     func() *Gauge { return &Gauge{} },
	}}
	r.register(name, help, "gauge", func(w *strings.Builder, n string) {
		for _, kid := range gv.snapshot() {
			fmt.Fprintf(w, "%s{%s} %d\n", n, kid.key, kid.inst.Value())
		}
	})
	return gv
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	vec[*Histogram]
}

// With returns the child histogram for the label values.
func (hv *HistogramVec) With(values ...string) *Histogram { return hv.with(values...) }

// HistogramVec registers a labelled histogram family. nil buckets =
// DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	hv := &HistogramVec{vec[*Histogram]{
		labels: labels,
		kids:   map[string]*labelled[*Histogram]{},
		mk:     func() *Histogram { return newHistogram(buckets) },
	}}
	r.register(name, help, "histogram", func(w *strings.Builder, n string) {
		for _, kid := range hv.snapshot() {
			renderHistogram(w, n, kid.key, kid.inst)
		}
	})
	return hv
}

// renderHistogram writes the _bucket/_sum/_count triplet for one child.
// labels is the extra label body ("" for a plain histogram).
func renderHistogram(w *strings.Builder, name, labels string, h *Histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	sum := math.Float64frombits(h.sum.Load())
	body := labels
	if body != "" {
		body = "{" + body + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, body, formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, body, h.count.Load())
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Render writes every family in the Prometheus text exposition format.
func (r *Registry) Render() string {
	r.mu.Lock()
	fams := make([]*metric, len(r.families))
	copy(fams, r.families)
	subs := make([]*Registry, len(r.subs))
	copy(subs, r.subs)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		m.render(&b, m.name)
	}
	for _, sub := range subs {
		b.WriteString(sub.Render())
	}
	return b.String()
}

// Handler returns the /metrics HTTP handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Render()))
	})
}
