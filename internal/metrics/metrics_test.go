package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	g := r.Gauge("test_gauge", "a gauge")
	r.CounterFunc("test_fn_total", "a func counter", func() uint64 { return 7 })
	r.GaugeFunc("test_fn_gauge", "a func gauge", func() int64 { return -3 })
	c.Add(41)
	c.Inc()
	g.Set(5)
	g.Inc()
	g.Dec()

	out := r.Render()
	for _, want := range []string{
		"# HELP test_total a counter",
		"# TYPE test_total counter",
		"test_total 42",
		"# TYPE test_gauge gauge",
		"test_gauge 5",
		"test_fn_total 7",
		"test_fn_gauge -3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("http_requests_total", "requests", "path", "code")
	cv.With("/v1/runs", "200").Add(3)
	cv.With("/v1/runs", "400").Inc()
	cv.With("/v1/runs", "200").Inc()

	out := r.Render()
	if !strings.Contains(out, `http_requests_total{path="/v1/runs",code="200"} 4`) {
		t.Errorf("missing labelled sample:\n%s", out)
	}
	if !strings.Contains(out, `http_requests_total{path="/v1/runs",code="400"} 1`) {
		t.Errorf("missing labelled sample:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.1) // le="0.1" is inclusive
	h.Observe(5)
	h.Observe(100) // +Inf only

	out := r.Render()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="10"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "lat_seconds_sum 105.15") {
		t.Errorf("bad sum:\n%s", out)
	}
}

func TestHistogramVecRender(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("run_seconds", "run latency", []float64{1}, "outcome")
	hv.With("cached").Observe(0.5)
	hv.With("computed").Observe(2)

	out := r.Render()
	for _, want := range []string{
		`run_seconds_bucket{outcome="cached",le="1"} 1`,
		`run_seconds_bucket{outcome="computed",le="+Inf"} 1`,
		`run_seconds_count{outcome="cached"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	cv := r.CounterVec("cv_total", "cv", "k")
	h := r.Histogram("h_seconds", "h", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				cv.With("a").Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if cv.With("a").Value() != 8000 {
		t.Errorf("vec counter = %d, want 8000", cv.With("a").Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "y")
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("peer_state", "liveness", "peer")
	gv.With("b").Set(2)
	gv.With("c").Set(1)
	gv.With("b").Dec()

	out := r.Render()
	if !strings.Contains(out, `peer_state{peer="b"} 1`) {
		t.Errorf("missing labelled gauge:\n%s", out)
	}
	if !strings.Contains(out, `peer_state{peer="c"} 1`) {
		t.Errorf("missing labelled gauge:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE peer_state gauge") {
		t.Errorf("missing gauge TYPE line:\n%s", out)
	}
}

func TestAttachRendersSubRegistries(t *testing.T) {
	main, sub := NewRegistry(), NewRegistry()
	main.Counter("main_total", "main family").Inc()
	sub.Counter("sub_total", "attached family").Add(9)
	main.Attach(sub)

	out := main.Render()
	if !strings.Contains(out, "main_total 1") || !strings.Contains(out, "sub_total 9") {
		t.Errorf("attached families missing from render:\n%s", out)
	}
	if i, j := strings.Index(out, "main_total"), strings.Index(out, "sub_total"); i > j {
		t.Errorf("sub-registry rendered before its host:\n%s", out)
	}
	// Attachment is a view, not a copy: later writes show up.
	sub.Counter("sub_late_total", "registered after Attach").Inc()
	if !strings.Contains(main.Render(), "sub_late_total 1") {
		t.Error("families added after Attach are invisible")
	}
}
