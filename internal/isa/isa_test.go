package isa

import "testing"

func TestKindPredicates(t *testing.T) {
	memKinds := []Kind{Load, Store, GuardedLoad, GuardedStore, SPMLoad, SPMStore}
	for _, k := range memKinds {
		if !k.IsMemory() {
			t.Errorf("%v.IsMemory() = false", k)
		}
	}
	nonMem := []Kind{Compute, DMAGet, DMAPut, DMASync, SetBufSize, Barrier, PhaseBegin}
	for _, k := range nonMem {
		if k.IsMemory() {
			t.Errorf("%v.IsMemory() = true", k)
		}
	}
	stores := map[Kind]bool{
		Store: true, GuardedStore: true, SPMStore: true,
		Load: false, GuardedLoad: false, SPMLoad: false, Compute: false,
	}
	for k, want := range stores {
		if k.IsStore() != want {
			t.Errorf("%v.IsStore() = %v, want %v", k, k.IsStore(), want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || GuardedStore.String() != "gstore" {
		t.Fatalf("String(): %q %q", Load.String(), GuardedStore.String())
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind produced empty string")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseWork.String() != "work" || PhaseControl.String() != "control" || PhaseSync.String() != "sync" {
		t.Fatal("phase names wrong")
	}
}

func TestSliceProgram(t *testing.T) {
	p := NewSliceProgram([]Inst{{Kind: Load, Addr: 1}, {Kind: Store, Addr: 2}})
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	i1, ok := p.Next()
	if !ok || i1.Kind != Load || i1.Addr != 1 {
		t.Fatalf("first = %+v ok=%v", i1, ok)
	}
	i2, ok := p.Next()
	if !ok || i2.Kind != Store {
		t.Fatalf("second = %+v", i2)
	}
	if _, ok := p.Next(); ok {
		t.Fatal("Next past end returned ok")
	}
}

func TestBuilderPCAndPhase(t *testing.T) {
	b := NewBuilder(0x4000)
	b.Compute(3).SetPhase(PhaseControl).Load(0x100).SetPhase(PhaseWork).Store(0x200)
	insts := b.Insts()
	if len(insts) != 3 {
		t.Fatalf("len = %d", len(insts))
	}
	if insts[0].PC != 0x4000 || insts[1].PC != 0x4004 || insts[2].PC != 0x4008 {
		t.Fatalf("PCs = %x %x %x", insts[0].PC, insts[1].PC, insts[2].PC)
	}
	if insts[0].Phase != PhaseWork || insts[1].Phase != PhaseControl || insts[2].Phase != PhaseWork {
		t.Fatalf("phases = %v %v %v", insts[0].Phase, insts[1].Phase, insts[2].Phase)
	}
	if insts[0].Ops != 3 {
		t.Fatalf("compute ops = %d", insts[0].Ops)
	}
}

func TestBuilderSetPC(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Load(1)
	b.SetPC(0x9000)
	b.Load(2)
	insts := b.Insts()
	if insts[1].PC != 0x9000 {
		t.Fatalf("after SetPC, PC = %x", insts[1].PC)
	}
}

func TestBuilderDMAEmission(t *testing.T) {
	b := NewBuilder(0)
	b.DMAGet(0x1000, 0xF000, 512, 1).DMAPut(0x2000, 0xF200, 256, 2).DMASync(1).SetBufSize(1024).Barrier()
	insts := b.Insts()
	get := insts[0]
	if get.Kind != DMAGet || get.Addr != 0x1000 || get.Addr2 != 0xF000 || get.Bytes != 512 || get.Tag != 1 {
		t.Fatalf("DMAGet = %+v", get)
	}
	put := insts[1]
	if put.Kind != DMAPut || put.Bytes != 256 || put.Tag != 2 {
		t.Fatalf("DMAPut = %+v", put)
	}
	if insts[2].Kind != DMASync || insts[2].Tag != 1 {
		t.Fatalf("DMASync = %+v", insts[2])
	}
	if insts[3].Kind != SetBufSize || insts[3].Bytes != 1024 {
		t.Fatalf("SetBufSize = %+v", insts[3])
	}
	if insts[4].Kind != Barrier {
		t.Fatalf("Barrier = %+v", insts[4])
	}
}

func TestChain(t *testing.T) {
	a := NewSliceProgram([]Inst{{Kind: Load, Addr: 1}})
	b := NewSliceProgram([]Inst{{Kind: Load, Addr: 2}, {Kind: Load, Addr: 3}})
	c := Chain(a, b)
	var addrs []uint64
	for {
		inst, ok := c.Next()
		if !ok {
			break
		}
		addrs = append(addrs, inst.Addr)
	}
	if len(addrs) != 3 || addrs[0] != 1 || addrs[1] != 2 || addrs[2] != 3 {
		t.Fatalf("chained addrs = %v", addrs)
	}
}

func TestChainEmptyPrograms(t *testing.T) {
	c := Chain(NewSliceProgram(nil), NewSliceProgram([]Inst{{Kind: Barrier}}), NewSliceProgram(nil))
	inst, ok := c.Next()
	if !ok || inst.Kind != Barrier {
		t.Fatalf("chain skipped empties wrongly: %+v %v", inst, ok)
	}
	if _, ok := c.Next(); ok {
		t.Fatal("chain not drained")
	}
}

func TestFuncProgram(t *testing.T) {
	n := 0
	p := FuncProgram(func() (Inst, bool) {
		if n >= 2 {
			return Inst{}, false
		}
		n++
		return Inst{Kind: Compute, Ops: n}, true
	})
	i1, _ := p.Next()
	i2, _ := p.Next()
	_, ok := p.Next()
	if i1.Ops != 1 || i2.Ops != 2 || ok {
		t.Fatalf("func program: %d %d %v", i1.Ops, i2.Ops, ok)
	}
}
