// Package isa defines the instruction set of the simulated machine — the
// vocabulary shared between the compiler pass (which emits instruction
// streams), the runtime library (which emits DMA commands), and the core
// model (which executes them).
//
// The paper assumes an x86_64 machine where "guarded" memory instructions are
// normal loads/stores carrying an instruction prefix. Here the guard is an
// explicit instruction kind; the semantics are identical (see DESIGN.md §2).
package isa

import "fmt"

// Kind enumerates instruction kinds.
type Kind int

const (
	// Compute represents Ops back-to-back ALU/FP operations with no
	// memory access.
	Compute Kind = iota
	// Load is a normal load whose address the compiler proved resides in
	// global memory (GM) — served by the cache hierarchy.
	Load
	// Store is a normal GM store.
	Store
	// GuardedLoad is a potentially incoherent load: the compiler could
	// not prove the address does not alias data mapped to some SPM, so
	// the hardware must divert it to the valid copy (paper §2.4, §3.2).
	GuardedLoad
	// GuardedStore is a potentially incoherent store.
	GuardedStore
	// SPMLoad is a load whose address is statically in the SPM virtual
	// range (strided accesses rewritten by the compiler to SPM buffers).
	SPMLoad
	// SPMStore is an SPM store.
	SPMStore
	// DMAGet enqueues a dma-get: transfer Bytes from GM address Addr to
	// SPM address Addr2, completion signalled on Tag.
	DMAGet
	// DMAPut enqueues a dma-put: transfer Bytes from SPM address Addr2 to
	// GM address Addr, completion signalled on Tag.
	DMAPut
	// DMASync blocks until every DMA command with tag Tag has completed.
	DMASync
	// SetBufSize notifies the hardware of the SPM buffer size chosen for
	// the upcoming loop; it programs the Base/Offset mask registers used
	// by the SPMDir, Filter and FilterDir (paper §3.1). Bytes holds the
	// buffer size, which must be a power of two.
	SetBufSize
	// Barrier joins all cores (fork-join parallelism between kernels).
	Barrier
	// PhaseBegin marks the start of an execution phase for cycle
	// attribution (paper Fig. 9 splits control / sync / work).
	PhaseBegin
)

var kindNames = map[Kind]string{
	Compute: "compute", Load: "load", Store: "store",
	GuardedLoad: "gload", GuardedStore: "gstore",
	SPMLoad: "spmload", SPMStore: "spmstore",
	DMAGet: "dmaget", DMAPut: "dmaput", DMASync: "dmasync",
	SetBufSize: "setbufsz", Barrier: "barrier", PhaseBegin: "phase",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsMemory reports whether the kind accesses the memory system directly
// (loads and stores of any flavour).
func (k Kind) IsMemory() bool {
	switch k {
	case Load, Store, GuardedLoad, GuardedStore, SPMLoad, SPMStore:
		return true
	}
	return false
}

// IsStore reports whether the kind writes memory.
func (k Kind) IsStore() bool {
	return k == Store || k == GuardedStore || k == SPMStore
}

// Phase identifies the execution phase an instruction belongs to, matching
// the paper's control / synchronization / work split (Fig. 3, Fig. 9).
type Phase int

const (
	// PhaseWork is the computation itself (also used for the whole
	// execution on the cache-based system).
	PhaseWork Phase = iota
	// PhaseControl is the runtime-library code mapping chunks to SPMs.
	PhaseControl
	// PhaseSync is time spent waiting for DMA transfers.
	PhaseSync

	// NumPhases is the number of phases.
	NumPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseWork:
		return "work"
	case PhaseControl:
		return "control"
	case PhaseSync:
		return "sync"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Inst is one instruction. Field meaning depends on Kind (see the Kind
// constants). PC drives the instruction-fetch model and the prefetcher's
// per-PC stride table.
type Inst struct {
	Kind  Kind
	Addr  uint64 // memory address / DMA GM address
	Addr2 uint64 // DMA SPM address
	Bytes int    // DMA transfer size / SetBufSize buffer size
	Ops   int    // Compute: number of ALU operations
	Tag   int    // DMA tag
	Phase Phase
	PC    uint64
}

// Program is a lazily generated instruction stream for one core. Next
// returns the next instruction, or ok=false at the end of the stream.
// Implementations must be deterministic.
type Program interface {
	Next() (inst Inst, ok bool)
}

// SliceProgram adapts a pre-built instruction slice to the Program interface.
type SliceProgram struct {
	insts []Inst
	pos   int
}

// NewSliceProgram wraps insts.
func NewSliceProgram(insts []Inst) *SliceProgram {
	return &SliceProgram{insts: insts}
}

// Next implements Program.
func (p *SliceProgram) Next() (Inst, bool) {
	if p.pos >= len(p.insts) {
		return Inst{}, false
	}
	i := p.insts[p.pos]
	p.pos++
	return i, true
}

// Len returns the total instruction count.
func (p *SliceProgram) Len() int { return len(p.insts) }

// FuncProgram adapts a generator function to the Program interface.
type FuncProgram func() (Inst, bool)

// Next implements Program.
func (f FuncProgram) Next() (Inst, bool) { return f() }

// Chain concatenates programs, draining each in turn.
func Chain(progs ...Program) Program {
	idx := 0
	return FuncProgram(func() (Inst, bool) {
		for idx < len(progs) {
			if inst, ok := progs[idx].Next(); ok {
				return inst, true
			}
			idx++
		}
		return Inst{}, false
	})
}

// Builder incrementally assembles an instruction slice with automatic PC
// assignment (4 bytes per instruction, x86-ish density). The zero value is
// ready to use with PC starting at base 0; use NewBuilder to set a code base.
type Builder struct {
	insts []Inst
	pc    uint64
	phase Phase
}

// NewBuilder returns a builder whose first instruction sits at codeBase.
func NewBuilder(codeBase uint64) *Builder {
	return &Builder{pc: codeBase}
}

// SetPhase sets the phase attributed to subsequently emitted instructions.
func (b *Builder) SetPhase(p Phase) *Builder { b.phase = p; return b }

// SetPC repositions the emission PC (used to model runtime-library calls:
// the callee's code lives at a different address range).
func (b *Builder) SetPC(pc uint64) *Builder { b.pc = pc; return b }

// PC returns the next instruction's address.
func (b *Builder) PC() uint64 { return b.pc }

// Emit appends inst, stamping PC and phase.
func (b *Builder) Emit(inst Inst) *Builder {
	inst.PC = b.pc
	inst.Phase = b.phase
	b.pc += 4
	b.insts = append(b.insts, inst)
	return b
}

// Compute emits n ALU operations.
func (b *Builder) Compute(n int) *Builder { return b.Emit(Inst{Kind: Compute, Ops: n}) }

// Load emits a GM load.
func (b *Builder) Load(addr uint64) *Builder { return b.Emit(Inst{Kind: Load, Addr: addr}) }

// Store emits a GM store.
func (b *Builder) Store(addr uint64) *Builder { return b.Emit(Inst{Kind: Store, Addr: addr}) }

// GuardedLoad emits a potentially incoherent load.
func (b *Builder) GuardedLoad(addr uint64) *Builder {
	return b.Emit(Inst{Kind: GuardedLoad, Addr: addr})
}

// GuardedStore emits a potentially incoherent store.
func (b *Builder) GuardedStore(addr uint64) *Builder {
	return b.Emit(Inst{Kind: GuardedStore, Addr: addr})
}

// SPMLoad emits a load from the SPM virtual range.
func (b *Builder) SPMLoad(addr uint64) *Builder { return b.Emit(Inst{Kind: SPMLoad, Addr: addr}) }

// SPMStore emits a store to the SPM virtual range.
func (b *Builder) SPMStore(addr uint64) *Builder { return b.Emit(Inst{Kind: SPMStore, Addr: addr}) }

// DMAGet emits a dma-get command.
func (b *Builder) DMAGet(gm, spm uint64, bytes, tag int) *Builder {
	return b.Emit(Inst{Kind: DMAGet, Addr: gm, Addr2: spm, Bytes: bytes, Tag: tag})
}

// DMAPut emits a dma-put command.
func (b *Builder) DMAPut(gm, spm uint64, bytes, tag int) *Builder {
	return b.Emit(Inst{Kind: DMAPut, Addr: gm, Addr2: spm, Bytes: bytes, Tag: tag})
}

// DMASync emits a dma-synch on tag.
func (b *Builder) DMASync(tag int) *Builder { return b.Emit(Inst{Kind: DMASync, Tag: tag}) }

// SetBufSize emits the buffer-size notification.
func (b *Builder) SetBufSize(bytes int) *Builder {
	return b.Emit(Inst{Kind: SetBufSize, Bytes: bytes})
}

// Barrier emits a barrier.
func (b *Builder) Barrier() *Builder { return b.Emit(Inst{Kind: Barrier}) }

// Program returns the assembled program.
func (b *Builder) Program() *SliceProgram { return NewSliceProgram(b.insts) }

// Insts returns the raw instruction slice (shared, not copied).
func (b *Builder) Insts() []Inst { return b.insts }
