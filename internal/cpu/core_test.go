package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/sim"
)

// fakeOps is a memory system with fixed latencies.
type fakeOps struct {
	eng      *sim.Engine
	memLat   sim.Time
	ifLat    sim.Time
	memCalls []isa.Inst
	dmaCalls []isa.Inst
	dmaFail  int // reject the first N DMA enqueues
	syncLat  sim.Time
	bufSizes map[int]int
}

func newFakeOps(eng *sim.Engine) *fakeOps {
	return &fakeOps{eng: eng, memLat: 5, ifLat: 2, syncLat: 20, bufSizes: map[int]int{}}
}

func (f *fakeOps) IFetch(core int, pc uint64, done sim.Cont) { f.eng.ScheduleCont(f.ifLat, done) }
func (f *fakeOps) Mem(core int, inst isa.Inst, done sim.Cont) {
	f.memCalls = append(f.memCalls, inst)
	f.eng.ScheduleCont(f.memLat, done)
}
func (f *fakeOps) DMAEnqueue(core int, inst isa.Inst) bool {
	if f.dmaFail > 0 {
		f.dmaFail--
		return false
	}
	f.dmaCalls = append(f.dmaCalls, inst)
	return true
}
func (f *fakeOps) DMASync(core, tag int, done sim.Cont) { f.eng.ScheduleCont(f.syncLat, done) }
func (f *fakeOps) SetBufSize(core, bytes int)           { f.bufSizes[core] = bytes }

func params() Params {
	return Params{IssueWidth: 2, PipelineDepth: 13, LQEntries: 8, SQEntries: 4, MLP: 2, LineSize: 64}
}

func runCore(t *testing.T, prog isa.Program) (*sim.Engine, *fakeOps, *Core) {
	t.Helper()
	eng := sim.NewEngine()
	ops := newFakeOps(eng)
	c := NewCore(eng, 0, params(), ops, prog, nil, nil)
	c.Start()
	eng.Run()
	if !c.Finished() {
		t.Fatal("core never finished")
	}
	return eng, ops, c
}

func TestComputeAdvancesTime(t *testing.T) {
	b := isa.NewBuilder(0)
	b.Compute(20) // 20 ops / 2-wide = 10 cycles
	eng, _, c := runCore(t, b.Program())
	if eng.Now() < 10 {
		t.Fatalf("finished at %d, want >= 10", eng.Now())
	}
	if c.Retired() != 20 {
		t.Fatalf("retired = %d", c.Retired())
	}
}

func TestLoadIssuesToMem(t *testing.T) {
	b := isa.NewBuilder(0)
	b.Load(0x1000).Store(0x2000).GuardedLoad(0x3000).SPMStore(0x4000)
	_, ops, c := runCore(t, b.Program())
	if len(ops.memCalls) != 4 {
		t.Fatalf("mem calls = %d", len(ops.memCalls))
	}
	if ops.memCalls[2].Kind != isa.GuardedLoad {
		t.Fatalf("third call = %v", ops.memCalls[2].Kind)
	}
	if c.Retired() != 4 {
		t.Fatalf("retired = %d", c.Retired())
	}
}

func TestMLPWindowLimitsOutstandingLoads(t *testing.T) {
	eng := sim.NewEngine()
	ops := newFakeOps(eng)
	ops.memLat = 100
	b := isa.NewBuilder(0)
	for i := 0; i < 4; i++ {
		b.Load(uint64(0x1000 * (i + 1)))
	}
	c := NewCore(eng, 0, params(), ops, b.Program(), nil, nil) // MLP=2
	c.Start()
	// Before any completion, only 2 loads may be in flight.
	eng.RunUntil(50)
	if len(ops.memCalls) != 2 {
		t.Fatalf("loads issued before first completion = %d, want 2", len(ops.memCalls))
	}
	eng.Run()
	if !c.Finished() || len(ops.memCalls) != 4 {
		t.Fatalf("finished=%v issued=%d", c.Finished(), len(ops.memCalls))
	}
}

func TestStoreQueueBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	ops := newFakeOps(eng)
	ops.memLat = 1000
	b := isa.NewBuilder(0)
	for i := 0; i < 6; i++ {
		b.Store(uint64(0x100 * (i + 1)))
	}
	c := NewCore(eng, 0, params(), ops, b.Program(), nil, nil) // SQ=4
	c.Start()
	eng.RunUntil(100)
	if len(ops.memCalls) != 4 {
		t.Fatalf("stores in flight = %d, want SQ limit 4", len(ops.memCalls))
	}
	eng.Run()
	if !c.Finished() {
		t.Fatal("never finished")
	}
}

func TestDMAEnqueueRetries(t *testing.T) {
	eng := sim.NewEngine()
	ops := newFakeOps(eng)
	ops.dmaFail = 3
	b := isa.NewBuilder(0)
	b.DMAGet(0x1000, 0xF000, 512, 1)
	c := NewCore(eng, 0, params(), ops, b.Program(), nil, nil)
	c.Start()
	eng.Run()
	if !c.Finished() {
		t.Fatal("never finished")
	}
	if len(ops.dmaCalls) != 1 {
		t.Fatalf("dma accepted = %d, want 1 after retries", len(ops.dmaCalls))
	}
	if eng.Now() < 3*8 {
		t.Fatalf("finished at %d, want >= 24 (three retry waits)", eng.Now())
	}
}

func TestDMASyncBlocksAndAttributesSyncPhase(t *testing.T) {
	b := isa.NewBuilder(0)
	b.SetPhase(isa.PhaseControl).DMAGet(0x1000, 0xF000, 64, 1)
	b.SetPhase(isa.PhaseSync).DMASync(1)
	b.SetPhase(isa.PhaseWork).Compute(4)
	_, _, c := runCore(t, b.Program())
	if c.PhaseCycles(isa.PhaseSync) < 20 {
		t.Fatalf("sync cycles = %d, want >= 20 (syncLat)", c.PhaseCycles(isa.PhaseSync))
	}
	if c.PhaseCycles(isa.PhaseWork) == 0 {
		t.Fatal("no work cycles attributed")
	}
}

func TestSetBufSizeReachesOps(t *testing.T) {
	b := isa.NewBuilder(0)
	b.SetBufSize(2048)
	_, ops, _ := runCore(t, b.Program())
	if ops.bufSizes[0] != 2048 {
		t.Fatalf("bufSizes = %v", ops.bufSizes)
	}
}

func TestIFetchPerLine(t *testing.T) {
	b := isa.NewBuilder(0)
	// 40 sequential instructions at 4B each = 160B = 3 lines.
	for i := 0; i < 40; i++ {
		b.Compute(1)
	}
	_, _, c := runCore(t, b.Program())
	if c.IFetches() != 3 {
		t.Fatalf("ifetches = %d, want 3", c.IFetches())
	}
}

func TestIFetchAcrossCallSite(t *testing.T) {
	b := isa.NewBuilder(0)
	b.Compute(1)
	b.SetPC(0x9000) // "call" into the runtime library
	b.Compute(1)
	b.SetPC(4) // return
	b.Compute(1)
	_, _, c := runCore(t, b.Program())
	if c.IFetches() != 3 {
		t.Fatalf("ifetches = %d, want 3 (two jumps)", c.IFetches())
	}
}

func TestBarrierJoinsCores(t *testing.T) {
	eng := sim.NewEngine()
	ops := newFakeOps(eng)
	cfg := config.SmallTest()
	cfg.IssueWidth = 2
	cfg.CoreMLP = 2
	progs := make([]isa.Program, 3)
	for i := range progs {
		b := isa.NewBuilder(0)
		b.Compute((i + 1) * 20) // unequal work before the barrier
		b.Barrier()
		b.Compute(2)
		progs[i] = b.Program()
	}
	// Build a 3-core cluster manually (config wants mesh geometry).
	cl := &Cluster{eng: eng, barrier: NewBarrier(eng, 3)}
	p := params()
	for i, prog := range progs {
		cl.cores = append(cl.cores, NewCore(eng, i, p, ops, prog, cl.barrier, func() { cl.done++ }))
	}
	cl.Start()
	eng.Run()
	if !cl.AllDone() {
		t.Fatal("cluster never finished")
	}
	if cl.barrier.Epochs() != 1 {
		t.Fatalf("barrier epochs = %d", cl.barrier.Epochs())
	}
	// All cores finish within a few cycles of each other after the join.
	var min, max sim.Time = 1 << 62, 0
	for _, c := range cl.cores {
		ft := c.FinishTime()
		if ft < min {
			min = ft
		}
		if ft > max {
			max = ft
		}
	}
	if max-min > 10 {
		t.Fatalf("post-barrier finish spread = %d cycles", max-min)
	}
	_ = cfg
}

func TestLSQRecheckDetectsConflict(t *testing.T) {
	eng := sim.NewEngine()
	ops := newFakeOps(eng)
	ops.memLat = 500 // keep accesses in the LSQ
	b := isa.NewBuilder(0)
	b.Store(0xF0000)
	c := NewCore(eng, 0, params(), ops, b.Program(), nil, nil)
	c.Start()
	eng.RunUntil(50)
	// A guarded access just got diverted to the same word: must flush.
	if !c.Recheck(0xF0004, false) {
		t.Fatal("recheck missed store-load conflict on same word")
	}
	if c.Flushes() != 1 {
		t.Fatalf("flushes = %d", c.Flushes())
	}
	// Different word: no conflict.
	if c.Recheck(0xF0100, false) {
		t.Fatal("recheck false positive")
	}
	// Load-load on same word: no conflict either.
	eng.Run()
	if c.Recheck(0xF0000, false) {
		t.Fatal("load-load flagged after queue drained")
	}
}

func TestLSQLoadLoadNoConflict(t *testing.T) {
	eng := sim.NewEngine()
	ops := newFakeOps(eng)
	ops.memLat = 500
	b := isa.NewBuilder(0)
	b.Load(0xA000)
	c := NewCore(eng, 0, params(), ops, b.Program(), nil, nil)
	c.Start()
	eng.RunUntil(50)
	if c.Recheck(0xA000, false) {
		t.Fatal("two loads to same word must not flush")
	}
	if !c.Recheck(0xA000, true) {
		t.Fatal("store recheck against in-flight load must flush")
	}
}

func TestClusterAggregation(t *testing.T) {
	eng := sim.NewEngine()
	ops := newFakeOps(eng)
	cfg := config.SmallTest()
	progs := make([]isa.Program, cfg.Cores)
	for i := range progs {
		b := isa.NewBuilder(0)
		b.Compute(10).Load(uint64(0x1000 * (i + 1)))
		progs[i] = b.Program()
	}
	cl := NewCluster(eng, cfg, ops, progs)
	cl.Start()
	eng.Run()
	if !cl.AllDone() {
		t.Fatal("not all done")
	}
	if cl.Retired() != uint64(cfg.Cores*11) {
		t.Fatalf("retired = %d, want %d", cl.Retired(), cfg.Cores*11)
	}
	if cl.FinishTime() == 0 {
		t.Fatal("finish time zero")
	}
	if cl.Cores() != cfg.Cores {
		t.Fatalf("Cores() = %d", cl.Cores())
	}
	hook := cl.RecheckHook()
	if hook(0, 0xDEAD000, false) {
		t.Fatal("hook flushed with empty LSQ")
	}
}

func TestEmptyProgramFinishesImmediately(t *testing.T) {
	_, _, c := runCore(t, isa.NewSliceProgram(nil))
	if c.Retired() != 0 {
		t.Fatalf("retired = %d", c.Retired())
	}
}

func TestPhaseAttributionSumsToFinishTime(t *testing.T) {
	b := isa.NewBuilder(0)
	b.SetPhase(isa.PhaseControl).Compute(30).DMAGet(0x1000, 0xF000, 64, 1)
	b.SetPhase(isa.PhaseSync).DMASync(1)
	b.SetPhase(isa.PhaseWork).Compute(50).Load(0x5000).Load(0x6000)
	_, _, c := runCore(t, b.Program())
	var sum sim.Time
	for p := isa.Phase(0); p < isa.NumPhases; p++ {
		sum += c.PhaseCycles(p)
	}
	if sum != c.FinishTime() {
		t.Fatalf("phase sum %d != finish time %d", sum, c.FinishTime())
	}
}
