package cpu

import (
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Cluster drives all cores of the machine through one shared barrier.
type Cluster struct {
	eng     *sim.Engine
	cores   []*Core
	barrier *Barrier
	done    int
}

// NewCluster builds one core per program using the machine configuration.
func NewCluster(eng *sim.Engine, cfg config.Config, ops Ops, programs []isa.Program) *Cluster {
	cl := &Cluster{eng: eng, barrier: NewBarrier(eng, len(programs))}
	p := Params{
		IssueWidth:    cfg.IssueWidth,
		PipelineDepth: cfg.PipelineDepth,
		LQEntries:     cfg.LQEntries,
		SQEntries:     cfg.SQEntries,
		MLP:           cfg.CoreMLP,
		LineSize:      cfg.LineSize,
	}
	for i, prog := range programs {
		cl.cores = append(cl.cores, NewCore(eng, i, p, ops, prog, cl.barrier, func() { cl.done++ }))
	}
	return cl
}

// SetTrace enables event tracing on every core.
func (cl *Cluster) SetTrace(tr *telemetry.Trace) {
	for _, c := range cl.cores {
		c.SetTrace(tr)
	}
}

// Start launches every core.
func (cl *Cluster) Start() {
	for _, c := range cl.cores {
		c.Start()
	}
}

// AllDone reports whether every core has drained.
func (cl *Cluster) AllDone() bool { return cl.done == len(cl.cores) }

// Core returns core i.
func (cl *Cluster) Core(i int) *Core { return cl.cores[i] }

// Cores returns the core count.
func (cl *Cluster) Cores() int { return len(cl.cores) }

// FinishTime returns the cycle the slowest core drained.
func (cl *Cluster) FinishTime() sim.Time {
	var t sim.Time
	for _, c := range cl.cores {
		if c.FinishTime() > t {
			t = c.FinishTime()
		}
	}
	return t
}

// PhaseCycles sums per-phase cycles over all cores.
func (cl *Cluster) PhaseCycles(p isa.Phase) sim.Time {
	var t sim.Time
	for _, c := range cl.cores {
		t += c.PhaseCycles(p)
	}
	return t
}

// Retired sums retired instructions over all cores.
func (cl *Cluster) Retired() uint64 {
	var t uint64
	for _, c := range cl.cores {
		t += c.Retired()
	}
	return t
}

// Flushes sums LSQ-ordering pipeline flushes over all cores.
func (cl *Cluster) Flushes() uint64 {
	var t uint64
	for _, c := range cl.cores {
		t += c.Flushes()
	}
	return t
}

// RecheckHook adapts the cluster to the protocol's LSQ re-check interface.
func (cl *Cluster) RecheckHook() func(core int, spmAddr uint64, isStore bool) bool {
	return func(core int, spmAddr uint64, isStore bool) bool {
		return cl.cores[core].Recheck(spmAddr, isStore)
	}
}
