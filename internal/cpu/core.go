// Package cpu models the cores of the manycore: a calibrated approximation
// of the 6-wide out-of-order pipeline of Table 1. Instructions retire at up
// to IssueWidth per cycle; loads issue asynchronously with a bounded
// memory-level-parallelism window (CoreMLP) and a bounded load queue; stores
// drain through a store queue without blocking retirement until it fills.
// Execution cycles are attributed to the control / synchronization / work
// phases of the SPM runtime (paper Fig. 3/Fig. 9).
//
// The core also models the LSQ ordering re-check of paper §3.4: when the
// SPM coherence protocol rewrites a guarded access's address to an SPM
// address, the LSQ is searched for a conflicting in-flight access; a match
// with at least one store flushes the pipeline (PipelineDepth cycles).
package cpu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Ops is everything a core asks of the rest of the machine. The system
// package implements it by routing to the cache hierarchy, the SPMs, the
// DMA controllers and the SPM coherence protocol.
type Ops interface {
	// IFetch fetches the instruction-cache line holding pc.
	IFetch(core int, pc uint64, done sim.Cont)
	// Mem executes a memory instruction (any isa kind with IsMemory).
	Mem(core int, inst isa.Inst, done sim.Cont)
	// DMAEnqueue offers a DMAGet/DMAPut to the core's DMAC; false means
	// the command queue is full and the core must retry.
	DMAEnqueue(core int, inst isa.Inst) bool
	// DMASync fires done once all transfers tagged inst.Tag are complete.
	DMASync(core int, tag int, done sim.Cont)
	// SetBufSize programs the protocol's mask registers.
	SetBufSize(core int, bytes int)
}

// Params are the pipeline parameters a core needs.
type Params struct {
	IssueWidth    int
	PipelineDepth int
	LQEntries     int
	SQEntries     int
	MLP           int
	LineSize      int
}

// blockReason says why a core is not retiring instructions.
type blockReason int

const (
	notBlocked  blockReason = iota
	blockLoad               // MLP window or LQ full
	blockStore              // SQ full
	blockIFetch             // fetch queue full (front-end starved)
	blockDMA                // DMAC command queue full
	blockSync               // dma-synch in progress
	blockBarrier
	blockDrain // program done, draining outstanding accesses
)

// lsqEntry mirrors one in-flight memory access for the §3.4 re-check.
type lsqEntry struct {
	addr  uint64
	store bool
	live  bool
}

// Core executes one instruction stream.
type Core struct {
	eng  *sim.Engine
	id   int
	p    Params
	ops  Ops
	prog isa.Program
	bar  *Barrier

	// Issue bookkeeping.
	issueSlots int      // sub-cycle slots consumed (mod IssueWidth)
	budget     sim.Time // accumulated cycles not yet simulated

	// Outstanding accesses.
	loads, stores, fetches int
	lastFetchLine          uint64
	haveFetched            bool

	blocked    blockReason
	blockStart sim.Time
	pendInst   isa.Inst // instruction waiting for resources
	havePend   bool

	phase       isa.Phase
	phaseCycles [isa.NumPhases]sim.Time
	lastStamp   sim.Time

	// LSQ mirror for ordering re-checks.
	lsq    []lsqEntry
	lsqPos int

	retired    uint64
	flushes    uint64
	ifetchOps  uint64
	finished   bool
	finishTime sim.Time
	onFinish   func()

	// Cached continuations: each recurring wakeup closure is allocated
	// once per core instead of once per event. Load/store completions need
	// the access address for the LSQ mirror, so they ride pooled memTok
	// nodes off freeToks instead.
	resume      sim.Cont // flushBudget expiry: account + step
	fetchDone   sim.Cont // IFetch completion
	dmaRetry    sim.Cont // DMAC queue-full retry
	syncDone    sim.Cont // DMASync completion
	barrierDone sim.Cont // barrier release
	freeToks    *memTok

	// tr, when set, records stall spans and ordering flushes. Nil on
	// untraced runs: one pointer check per unblock/flush.
	tr *telemetry.Trace
}

// SetTrace enables event tracing on the core.
func (c *Core) SetTrace(tr *telemetry.Trace) { c.tr = tr }

// memTok is a pooled load/store completion token: the callback state (core,
// address, direction) lives on a recycled node, so issuing a memory access
// allocates nothing in steady state.
type memTok struct {
	c     *Core
	addr  uint64
	store bool
	next  *memTok // free-list link
}

// Fire completes the access. The node returns to the pool first: unblocking
// the core can immediately issue a new access that reuses it.
func (t *memTok) Fire() {
	c := t.c
	addr, store := t.addr, t.store
	t.next = c.freeToks
	c.freeToks = t
	if store {
		c.stores--
		c.lsqRemove(addr, true)
		c.unblockIf(blockStore)
	} else {
		c.loads--
		c.lsqRemove(addr, false)
		c.unblockIf(blockLoad)
	}
	c.maybeFinish()
}

// newTok takes a completion token off the free list.
func (c *Core) newTok(addr uint64, store bool) *memTok {
	t := c.freeToks
	if t != nil {
		c.freeToks = t.next
		t.next = nil
	} else {
		t = &memTok{c: c}
	}
	t.addr, t.store = addr, store
	return t
}

// NewCore builds core id running prog. bar may be nil when the program has
// no barriers; onFinish may be nil.
func NewCore(eng *sim.Engine, id int, p Params, ops Ops, prog isa.Program, bar *Barrier, onFinish func()) *Core {
	if p.IssueWidth <= 0 || p.MLP <= 0 || p.LineSize <= 0 {
		panic(fmt.Sprintf("cpu: invalid params %+v", p))
	}
	c := &Core{
		eng: eng, id: id, p: p, ops: ops, prog: prog, bar: bar,
		lsq:      make([]lsqEntry, p.LQEntries+p.SQEntries),
		onFinish: onFinish,
	}
	c.resume = sim.AsCont(func() { c.account(); c.step() })
	c.fetchDone = sim.AsCont(func() {
		c.fetches--
		c.unblockIf(blockIFetch)
		c.maybeFinish()
	})
	c.dmaRetry = sim.AsCont(func() { c.unblockIf(blockDMA) })
	c.syncDone = sim.AsCont(func() { c.unblockIf(blockSync) })
	c.barrierDone = sim.AsCont(func() { c.unblockIf(blockBarrier) })
	return c
}

// Start begins execution (call once; the engine drives everything after).
func (c *Core) Start() {
	c.lastStamp = c.eng.Now()
	c.step()
}

// Finished reports whether the core has drained completely.
func (c *Core) Finished() bool { return c.finished }

// FinishTime returns the cycle the core drained (valid once Finished).
func (c *Core) FinishTime() sim.Time { return c.finishTime }

// Retired returns retired instruction count.
func (c *Core) Retired() uint64 { return c.retired }

// Flushes returns LSQ-ordering pipeline flushes taken (paper §3.4).
func (c *Core) Flushes() uint64 { return c.flushes }

// IFetches returns instruction-line fetches issued.
func (c *Core) IFetches() uint64 { return c.ifetchOps }

// PhaseCycles returns cycles attributed to phase.
func (c *Core) PhaseCycles(p isa.Phase) sim.Time { return c.phaseCycles[p] }

// account charges elapsed wall-cycles since the last stamp to the current
// phase.
func (c *Core) account() {
	now := c.eng.Now()
	c.phaseCycles[c.phase] += now - c.lastStamp
	c.lastStamp = now
}

// chargeIssue consumes one issue slot, converting full groups into cycles.
func (c *Core) chargeIssue(n int) {
	c.issueSlots += n
	c.budget += sim.Time(c.issueSlots / c.p.IssueWidth)
	c.issueSlots %= c.p.IssueWidth
}

// flushBudget simulates the accumulated cycles, then resumes stepping.
// Returns true if a wait was scheduled (caller must stop stepping).
func (c *Core) flushBudget() bool {
	if c.budget == 0 {
		return false
	}
	d := c.budget
	c.budget = 0
	c.eng.ScheduleCont(d, c.resume)
	return true
}

// step retires instructions until the core must wait for something.
func (c *Core) step() {
	for {
		inst, ok := c.nextInst()
		if !ok {
			c.drain()
			return
		}
		if c.phase != inst.Phase {
			c.account()
			c.phase = inst.Phase
		}
		// Front-end: fetch each new instruction line.
		if line := inst.PC >> 6; !c.haveFetched || line != c.lastFetchLine {
			if c.fetches >= 2 {
				// Fetch queue full: block until one returns.
				c.block(blockIFetch, inst)
				return
			}
			c.haveFetched = true
			c.lastFetchLine = line
			c.fetches++
			c.ifetchOps++
			c.ops.IFetch(c.id, inst.PC, c.fetchDone)
		}

		if !c.execute(inst) {
			return // blocked or waiting; execute re-enters step
		}
	}
}

// nextInst returns the pending (resource-stalled) instruction or pulls the
// next one from the program.
func (c *Core) nextInst() (isa.Inst, bool) {
	if c.havePend {
		c.havePend = false
		return c.pendInst, true
	}
	return c.prog.Next()
}

// block records why the core stalled and parks inst for retry.
func (c *Core) block(reason blockReason, inst isa.Inst) {
	c.account()
	c.blocked = reason
	c.blockStart = c.eng.Now()
	c.pendInst = inst
	c.havePend = true
}

// unblockIf resumes the core if it is blocked for the given reason.
func (c *Core) unblockIf(reason blockReason) {
	if c.blocked != reason {
		return
	}
	if c.tr != nil {
		c.tr.Add(telemetry.KStall, c.id, c.eng.Now()-c.blockStart, uint64(reason), 0)
	}
	c.blocked = notBlocked
	c.account()
	c.step()
}

// deferForBudget parks inst and simulates the accumulated compute cycles
// first; step resumes with inst afterwards. Reports true if it deferred.
func (c *Core) deferForBudget(inst isa.Inst) bool {
	if c.budget == 0 {
		return false
	}
	c.pendInst = inst
	c.havePend = true
	c.flushBudget()
	return true
}

// execute runs one instruction. It returns false when the core must stop
// stepping (blocked or waiting on scheduled work).
func (c *Core) execute(inst isa.Inst) bool {
	switch inst.Kind {
	case isa.Compute:
		c.retired += uint64(inst.Ops)
		c.chargeIssue(inst.Ops)
		// Cap unsimulated work so wait accounting stays honest.
		if c.budget >= 64 {
			return !c.flushBudget()
		}
		return true

	case isa.Load, isa.GuardedLoad, isa.SPMLoad:
		if c.deferForBudget(inst) {
			return false
		}
		if c.loads >= c.p.MLP || c.loads >= c.p.LQEntries {
			c.block(blockLoad, inst)
			return false
		}
		c.retired++
		c.chargeIssue(1)
		c.lsqInsert(inst.Addr, false)
		c.loads++
		c.ops.Mem(c.id, inst, c.newTok(inst.Addr, false))
		return true

	case isa.Store, isa.GuardedStore, isa.SPMStore:
		if c.deferForBudget(inst) {
			return false
		}
		if c.stores >= c.p.SQEntries {
			c.block(blockStore, inst)
			return false
		}
		c.retired++
		c.chargeIssue(1)
		c.lsqInsert(inst.Addr, true)
		c.stores++
		c.ops.Mem(c.id, inst, c.newTok(inst.Addr, true))
		return true

	case isa.DMAGet, isa.DMAPut:
		if c.deferForBudget(inst) {
			return false
		}
		if !c.ops.DMAEnqueue(c.id, inst) {
			// Command queue full: retry shortly.
			c.block(blockDMA, inst)
			c.eng.ScheduleCont(8, c.dmaRetry)
			return false
		}
		c.retired++
		c.chargeIssue(1)
		return true

	case isa.DMASync:
		if c.deferForBudget(inst) {
			return false
		}
		c.retired++
		c.block(blockSync, isa.Inst{})
		c.havePend = false
		c.ops.DMASync(c.id, inst.Tag, c.syncDone)
		return false

	case isa.SetBufSize:
		c.retired++
		c.chargeIssue(1)
		c.ops.SetBufSize(c.id, inst.Bytes)
		return true

	case isa.Barrier:
		if c.deferForBudget(inst) {
			return false
		}
		c.retired++
		if c.bar == nil {
			return true
		}
		c.block(blockBarrier, isa.Inst{})
		c.havePend = false
		c.bar.Arrive(c.barrierDone)
		return false

	case isa.PhaseBegin:
		return true

	default:
		panic(fmt.Sprintf("cpu: unknown instruction kind %v", inst.Kind))
	}
}

// drain finishes the program: wait for the budget and outstanding accesses.
func (c *Core) drain() {
	if c.flushBudget() {
		return // re-enters step -> drain
	}
	c.blocked = blockDrain
	c.maybeFinish()
}

func (c *Core) maybeFinish() {
	if c.finished || c.blocked != blockDrain {
		return
	}
	if c.loads > 0 || c.stores > 0 || c.fetches > 0 {
		return
	}
	c.finished = true
	c.account()
	c.finishTime = c.eng.Now()
	if c.onFinish != nil {
		c.onFinish()
	}
}

// ---------------------------------------------------------------------------
// LSQ mirror (§3.4)

func (c *Core) lsqInsert(addr uint64, store bool) {
	c.lsq[c.lsqPos] = lsqEntry{addr: addr, store: store, live: true}
	c.lsqPos = (c.lsqPos + 1) % len(c.lsq)
}

func (c *Core) lsqRemove(addr uint64, store bool) {
	for i := range c.lsq {
		e := &c.lsq[i]
		if e.live && e.addr == addr && e.store == store {
			e.live = false
			return
		}
	}
}

// Recheck implements the protocol's RecheckHook for this core: the guarded
// access's address changed to spmAddr; search the LSQ for an in-flight
// access to the same 8-byte word where at least one of the pair is a store.
// A hit means the out-of-order core may have violated program order, so the
// pipeline is flushed (PipelineDepth cycles).
func (c *Core) Recheck(spmAddr uint64, isStore bool) bool {
	const wordMask = ^uint64(7)
	for i := range c.lsq {
		e := &c.lsq[i]
		if e.live && e.addr&wordMask == spmAddr&wordMask && (e.store || isStore) {
			c.flushes++
			if c.tr != nil {
				c.tr.Add(telemetry.KFlush, c.id, 0, spmAddr, 0)
			}
			c.budget += sim.Time(c.p.PipelineDepth)
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Barrier

// Barrier joins n cores; the last arrival releases everyone (fork-join
// parallelism between kernels).
type Barrier struct {
	eng     *sim.Engine
	n       int
	arrived int
	waiters []sim.Cont // reused across epochs
	epochs  uint64
}

// NewBarrier builds a barrier over n cores.
func NewBarrier(eng *sim.Engine, n int) *Barrier {
	if n <= 0 {
		panic("cpu: barrier over no cores")
	}
	return &Barrier{eng: eng, n: n}
}

// Arrive registers one core; done fires when all n have arrived.
func (b *Barrier) Arrive(done sim.Cont) {
	b.arrived++
	b.waiters = append(b.waiters, done)
	if b.arrived < b.n {
		return
	}
	b.arrived = 0
	b.epochs++
	// ScheduleCont copies each continuation into the event queue, so the
	// backing array can be truncated and reused for the next epoch.
	for i, w := range b.waiters {
		b.eng.ScheduleCont(1, w)
		b.waiters[i] = nil
	}
	b.waiters = b.waiters[:0]
}

// Epochs returns how many times the barrier has released.
func (b *Barrier) Epochs() uint64 { return b.epochs }
