// Package rescache is a content-addressed result store for simulation runs.
//
// Every run is a pure function of its Spec (single-threaded engine, fixed
// seed — DESIGN.md §8), so Results can be memoized forever under the Spec's
// canonical Hash. The cache is two-tiered: a bounded in-memory LRU for the
// hot set, and an optional on-disk JSON tier (one file per hash) that
// survives restarts. Concurrent requests for the same Spec are deduplicated
// with a singleflight, so N callers cost one Execute.
package rescache

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/system"
)

// Entry is the unit the cache stores and round-trips to disk: the Spec that
// produced the Results, so a disk file is self-describing and verifiable
// (the file name must equal Spec.Hash()).
type Entry struct {
	Spec system.Spec    `json:"spec"`
	Res  system.Results `json:"results"`
}

// Stats counts cache traffic. Hits covers both tiers plus singleflight
// followers — every request that did not pay for an Execute of its own.
type Stats struct {
	Entries   int    `json:"entries"`  // memory-tier population
	Capacity  int    `json:"capacity"` // memory-tier bound
	Hits      uint64 `json:"hits"`
	MemHits   uint64 `json:"mem_hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Dedup     uint64 `json:"deduplicated"` // callers that joined an in-flight run
	Misses    uint64 `json:"misses"`       // requests that executed
	Evictions uint64 `json:"evictions"`

	// DiskErrors counts disk-tier entries that were present but unusable —
	// corrupt, truncated, or mis-addressed files skipped at lookup.
	DiskErrors uint64 `json:"disk_errors"`

	// PeerFills counts results adopted from fleet peers (cache fills and
	// owner back-fills); they are neither local hits nor local misses.
	PeerFills uint64 `json:"peer_fills"`
}

// Cache is safe for concurrent use.
type Cache struct {
	cap int
	dir string // "" disables the disk tier
	log *slog.Logger

	mu      sync.Mutex
	ll      *list.List               // MRU at front; values are *Entry
	entries map[string]*list.Element // hash -> element
	flights map[string]*flight
	stats   Stats
}

// flight is one in-progress fill; followers block on done and share the
// leader's outcome.
type flight struct {
	done chan struct{}
	res  system.Results
	err  error
}

// New builds a cache holding up to capacity entries in memory. A non-empty
// dir enables the disk tier (created if missing); disk entries are never
// evicted, so the disk is the larger, slower tier.
func New(capacity int, dir string) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("rescache: capacity %d < 1", capacity)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("rescache: %w", err)
		}
	}
	return &Cache{
		cap:     capacity,
		dir:     dir,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}, nil
}

// SetLogger routes disk-tier diagnostics (corrupt entries, write failures)
// to l; nil keeps them silent. Call before the cache is shared.
func (c *Cache) SetLogger(l *slog.Logger) { c.log = l }

// logWarn emits one diagnostic if a logger is configured.
func (c *Cache) logWarn(msg string, args ...any) {
	if c.log != nil {
		c.log.Warn(msg, args...)
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Capacity = c.cap
	return s
}

// Get reports the cached Results for spec, consulting memory then disk.
func (c *Cache) Get(spec system.Spec) (system.Results, bool) {
	return c.GetKey(spec.Hash())
}

// GetKey is Get addressed by a canonical hash directly — the form a service
// poll URL carries.
func (c *Cache) GetKey(key string) (system.Results, bool) {
	e, ok := c.EntryKey(key)
	return e.Res, ok
}

// EntryKey returns the full cached entry — Spec and Results — for a hash,
// consulting memory then disk. Disk hits are promoted into memory.
func (c *Cache) EntryKey(key string) (Entry, bool) {
	c.mu.Lock()
	if e, ok := c.lookupLocked(key); ok {
		c.stats.Hits++
		c.stats.MemHits++
		c.mu.Unlock()
		return e, true
	}
	c.mu.Unlock()
	if e, ok := c.diskGet(key); ok {
		c.mu.Lock()
		c.storeLocked(key, e)
		c.stats.Hits++
		c.stats.DiskHits++
		c.mu.Unlock()
		return e, true
	}
	return Entry{}, false
}

// GetOrRun returns the cached Results for spec, executing run exactly once
// per key on a miss no matter how many callers race. hit reports whether
// this caller avoided an Execute of its own (memory, disk, or another
// caller's in-flight run). Failed runs are never cached: the error is
// shared with the followers of that flight, then forgotten so a later
// request retries. A flight that died of its *leader's* cancellation is
// not inherited: a follower whose own context is still live retries (and
// becomes the new leader), so one client's disconnect cannot fail an
// unrelated request that happened to share the Spec.
func (c *Cache) GetOrRun(ctx context.Context, spec system.Spec, run func(context.Context) (system.Results, error)) (res system.Results, hit bool, err error) {
	key := spec.Hash()
	for {
		c.mu.Lock()
		if e, ok := c.lookupLocked(key); ok {
			c.stats.Hits++
			c.stats.MemHits++
			c.mu.Unlock()
			return e.Res, true, nil
		}
		f, inFlight := c.flights[key]
		if !inFlight {
			break
		}
		c.stats.Hits++
		c.stats.Dedup++
		c.mu.Unlock()
		select {
		case <-f.done:
			if isContextErr(f.err) && ctx.Err() == nil {
				continue // the leader was canceled, this caller was not
			}
			return f.res, true, f.err
		case <-ctx.Done():
			return system.Results{}, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	// This caller is the flight leader: check the disk tier (I/O stays
	// outside the lock, inside the flight so it happens once), then run.
	if e, ok := c.diskGet(key); ok {
		f.res = e.Res
		c.mu.Lock()
		c.storeLocked(key, e)
		c.stats.Hits++
		c.stats.DiskHits++
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
		return f.res, true, nil
	}

	f.res, f.err = run(ctx)
	c.mu.Lock()
	c.stats.Misses++
	if f.err == nil {
		c.storeLocked(key, Entry{Spec: spec, Res: f.res})
	}
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	if f.err == nil && c.dir != "" {
		// Disk persistence is best-effort; a read-only disk must not fail
		// the run that produced a perfectly good result.
		c.diskPutLogged(key, Entry{Spec: spec, Res: f.res})
	}
	return f.res, false, f.err
}

// Put fills the cache with an already-executed result, both tiers. It exists
// for callers that run a Spec outside GetOrRun (telemetry-observed runs
// execute directly so they can attach a recorder) but still want the result
// memoized for everyone else. The fill counts as a miss: the run happened.
func (c *Cache) Put(spec system.Spec, res system.Results) {
	key := spec.Hash()
	e := Entry{Spec: spec, Res: res}
	c.mu.Lock()
	c.stats.Misses++
	c.storeLocked(key, e)
	c.mu.Unlock()
	if c.dir != "" {
		c.diskPutLogged(key, e) // best-effort, like GetOrRun
	}
}

// FillPeer adopts a result computed elsewhere in the fleet — a peer cache
// fill or an owner back-fill — into both tiers. Unlike Put it counts
// neither a hit nor a miss (no local lookup or Execute happened) but a
// PeerFill, so per-node hit rates stay honest in cluster mode.
func (c *Cache) FillPeer(spec system.Spec, res system.Results) {
	key := spec.Hash()
	e := Entry{Spec: spec, Res: res}
	c.mu.Lock()
	c.stats.PeerFills++
	c.storeLocked(key, e)
	c.mu.Unlock()
	if c.dir != "" {
		c.diskPutLogged(key, e) // best-effort, like GetOrRun
	}
}

// Contains reports whether key is resident in either tier without touching
// the hit counters or promoting anything — the cheap routing probe cluster
// mode uses to decide whether a network hop is worth anything.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	_, ok := c.entries[key]
	c.mu.Unlock()
	if ok || c.dir == "" {
		return ok
	}
	_, err := os.Stat(c.path(key))
	return err == nil
}

// isContextErr reports whether err is (or wraps) a cancellation.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// lookupLocked finds key in the memory tier and marks it most-recent.
func (c *Cache) lookupLocked(key string) (Entry, bool) {
	el, ok := c.entries[key]
	if !ok {
		return Entry{}, false
	}
	c.ll.MoveToFront(el)
	return *el.Value.(*entryNode).e, true
}

// entryNode carries the key alongside the Entry so eviction can unmap it.
type entryNode struct {
	key string
	e   *Entry
}

// storeLocked inserts (or refreshes) key as most-recent and evicts the
// least-recent entry past capacity.
func (c *Cache) storeLocked(key string, e Entry) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entryNode).e = &e
		return
	}
	c.entries[key] = c.ll.PushFront(&entryNode{key: key, e: &e})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*entryNode).key)
		c.stats.Evictions++
	}
}

// diskPutLogged is diskPut for callers that treat persistence as
// best-effort: the error is logged and dropped.
func (c *Cache) diskPutLogged(key string, e Entry) {
	if err := c.diskPut(key, e); err != nil {
		c.logWarn("rescache: disk write failed", "key", key, "err", err)
	}
}

// path maps a hash to its disk file.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// diskGet loads and verifies one disk entry. Corrupt, foreign, or stale
// files (truncated JSON, a half-written entry, a Spec that no longer hashes
// to its file name) are skipped — logged and counted in DiskErrors, never
// surfaced as lookup failures — so one bad file costs a re-execute, not an
// outage. A missing file is an ordinary miss.
func (c *Cache) diskGet(key string) (Entry, bool) {
	if c.dir == "" {
		return Entry{}, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			c.diskError(key, err)
		}
		return Entry{}, false
	}
	var e Entry
	if err := json.Unmarshal(b, &e); err != nil {
		c.diskError(key, fmt.Errorf("corrupt entry: %w", err))
		return Entry{}, false
	}
	if got := e.Spec.Hash(); got != key {
		c.diskError(key, fmt.Errorf("entry hashes to %s, not its file name", got))
		return Entry{}, false
	}
	return e, true
}

// diskError records one unusable disk entry.
func (c *Cache) diskError(key string, err error) {
	c.mu.Lock()
	c.stats.DiskErrors++
	c.mu.Unlock()
	c.logWarn("rescache: skipping unusable disk entry", "key", key, "err", err)
}

// diskPut writes one entry atomically (temp file + rename), so a crashed or
// concurrent writer can never leave a torn file a reader would half-parse.
func (c *Cache) diskPut(key string, e Entry) error {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(b, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	return os.Rename(tmp.Name(), c.path(key))
}
