package rescache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/system"
	"repro/internal/workloads"
)

// spec returns a valid Spec distinguished by its filter size, so tests can
// mint arbitrarily many distinct cache keys without running anything.
func spec(filter int) system.Spec {
	return system.Spec{
		System:        config.HybridReal,
		Benchmark:     "EP",
		Scale:         workloads.Tiny,
		Cores:         4,
		FilterEntries: filter,
	}
}

// fakeRun builds a run function that counts its calls and returns synthetic
// Results tagged with the filter size, so tests never pay for a simulation.
func fakeRun(calls *int, cycles uint64) func(context.Context) (system.Results, error) {
	return func(context.Context) (system.Results, error) {
		*calls++
		return system.Results{Benchmark: "EP", System: config.HybridReal, Cycles: cycles}, nil
	}
}

func mustNew(t *testing.T, capacity int, dir string) *Cache {
	t.Helper()
	c, err := New(capacity, dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGetOrRunExecutesOnceThenHits(t *testing.T) {
	c := mustNew(t, 8, "")
	calls := 0
	res, hit, err := c.GetOrRun(context.Background(), spec(8), fakeRun(&calls, 42))
	if err != nil || hit {
		t.Fatalf("first call: hit=%v err=%v, want miss", hit, err)
	}
	if res.Cycles != 42 {
		t.Fatalf("Cycles = %d, want 42", res.Cycles)
	}
	res2, hit, err := c.GetOrRun(context.Background(), spec(8), fakeRun(&calls, 42))
	if err != nil || !hit {
		t.Fatalf("second call: hit=%v err=%v, want hit", hit, err)
	}
	if res2 != res {
		t.Fatalf("cached Results diverged: %+v vs %+v", res2, res)
	}
	if calls != 1 {
		t.Fatalf("run executed %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.MemHits != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 mem hit", st)
	}
}

func TestSingleflightDeduplicatesConcurrentCallers(t *testing.T) {
	c := mustNew(t, 8, "")
	started := make(chan struct{})
	release := make(chan struct{})
	calls := 0
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, err := c.GetOrRun(context.Background(), spec(8), func(context.Context) (system.Results, error) {
			calls++
			close(started)
			<-release
			return system.Results{Cycles: 7}, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	<-started // the flight is registered: every caller below must join it

	const followers = 8
	var wg sync.WaitGroup
	results := make([]system.Results, followers)
	hits := make([]bool, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, hit, err := c.GetOrRun(context.Background(), spec(8), func(context.Context) (system.Results, error) {
				t.Error("follower executed the run")
				return system.Results{}, nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			results[i], hits[i] = res, hit
		}(i)
	}
	// Followers block on the flight; releasing the leader resolves them all.
	waitForDedup(t, c, followers)
	close(release)
	wg.Wait()
	<-leaderDone

	for i := range results {
		if !hits[i] || results[i].Cycles != 7 {
			t.Fatalf("follower %d: hit=%v res=%+v, want shared hit", i, hits[i], results[i])
		}
	}
	if calls != 1 {
		t.Fatalf("run executed %d times for %d callers, want 1", calls, followers+1)
	}
	if st := c.Stats(); st.Dedup != followers {
		t.Fatalf("Dedup = %d, want %d", st.Dedup, followers)
	}
}

// waitForDedup waits until all followers have registered on the flight, so
// the release cannot race ahead of a slow goroutine start.
func waitForDedup(t *testing.T, c *Cache, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Dedup != n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers joined the flight", c.Stats().Dedup, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFollowerContextCancellation(t *testing.T) {
	c := mustNew(t, 8, "")
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.GetOrRun(context.Background(), spec(8), func(context.Context) (system.Results, error) {
		close(started)
		<-release
		return system.Results{}, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrRun(ctx, spec(8), fakeRun(new(int), 0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustNew(t, 2, "")
	calls := 0
	for _, f := range []int{8, 16, 32} {
		if _, _, err := c.GetOrRun(context.Background(), spec(f), fakeRun(&calls, uint64(f))); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction and 2 entries", st)
	}
	// spec(8) was least-recent and must have been evicted; 16 and 32 stay.
	if _, ok := c.Get(spec(8)); ok {
		t.Fatal("evicted entry still present")
	}
	for _, f := range []int{16, 32} {
		if res, ok := c.Get(spec(f)); !ok || res.Cycles != uint64(f) {
			t.Fatalf("spec(%d): ok=%v res=%+v, want retained", f, ok, res)
		}
	}
	// Re-filling the evicted key executes again.
	if _, hit, _ := c.GetOrRun(context.Background(), spec(8), fakeRun(&calls, 8)); hit {
		t.Fatal("evicted key reported a hit")
	}
	if calls != 4 {
		t.Fatalf("run executed %d times, want 4", calls)
	}
}

func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1 := mustNew(t, 8, dir)
	calls := 0
	want, _, err := c1.GetOrRun(context.Background(), spec(8), fakeRun(&calls, 99))
	if err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory serves the result from disk
	// without executing, and the Entry round-trips losslessly.
	c2 := mustNew(t, 8, dir)
	res, hit, err := c2.GetOrRun(context.Background(), spec(8), func(context.Context) (system.Results, error) {
		t.Error("disk hit still executed the run")
		return system.Results{}, nil
	})
	if err != nil || !hit {
		t.Fatalf("hit=%v err=%v, want disk hit", hit, err)
	}
	if res != want {
		t.Fatalf("disk round-trip changed Results:\n got %+v\nwant %+v", res, want)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 disk hit, 0 misses", st)
	}
	// The second lookup is a memory hit — the disk entry was promoted.
	if _, hit, _ := c2.GetOrRun(context.Background(), spec(8), fakeRun(&calls, 0)); !hit {
		t.Fatal("promoted entry missed")
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Fatalf("MemHits = %d, want 1", st.MemHits)
	}
}

func TestCorruptDiskEntryReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, 8, dir)
	key := spec(8).Hash()
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if _, hit, err := c.GetOrRun(context.Background(), spec(8), fakeRun(&calls, 1)); hit || err != nil {
		t.Fatalf("hit=%v err=%v, want clean miss over corrupt file", hit, err)
	}
	if calls != 1 {
		t.Fatalf("run executed %d times, want 1", calls)
	}
}

func TestMismatchedDiskEntryReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, 8, dir)
	// A valid entry filed under the wrong hash must be ignored, not served.
	if _, _, err := c.GetOrRun(context.Background(), spec(8), fakeRun(new(int), 5)); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, spec(8).Hash()+".json")
	dst := filepath.Join(dir, spec(16).Hash()+".json")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := mustNew(t, 8, dir)
	calls := 0
	if _, hit, _ := c2.GetOrRun(context.Background(), spec(16), fakeRun(&calls, 6)); hit {
		t.Fatal("mis-filed disk entry served as a hit")
	}
	if calls != 1 {
		t.Fatalf("run executed %d times, want 1", calls)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := mustNew(t, 8, "")
	calls := 0
	boom := errors.New("boom")
	fail := func(context.Context) (system.Results, error) {
		calls++
		return system.Results{}, boom
	}
	if _, _, err := c.GetOrRun(context.Background(), spec(8), fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := c.GetOrRun(context.Background(), spec(8), fail); !errors.Is(err, boom) {
		t.Fatalf("retry err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("failed run executed %d times, want 2 (no negative caching)", calls)
	}
	if _, ok := c.Get(spec(8)); ok {
		t.Fatal("failed run was cached")
	}
}

func TestNewRejectsBadCapacity(t *testing.T) {
	if _, err := New(0, ""); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("New(0) err = %v, want capacity error", err)
	}
}

// TestFollowerSurvivesLeaderCancellation: a flight that dies because its
// *leader's* caller disconnected must not fail a follower whose own
// context is still live — the follower retries and becomes the new leader.
func TestFollowerSurvivesLeaderCancellation(t *testing.T) {
	c := mustNew(t, 8, "")
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	followerJoined := make(chan struct{})
	go func() {
		c.GetOrRun(leaderCtx, spec(8), func(ctx context.Context) (system.Results, error) {
			close(started)
			<-followerJoined
			cancelLeader()
			<-ctx.Done()
			return system.Results{}, fmt.Errorf("run canceled: %w", ctx.Err())
		})
	}()
	<-started

	calls := 0
	type outcome struct {
		res system.Results
		hit bool
		err error
	}
	got := make(chan outcome, 1)
	go func() {
		res, hit, err := c.GetOrRun(context.Background(), spec(8), fakeRun(&calls, 11))
		got <- outcome{res, hit, err}
	}()
	waitForDedup(t, c, 1)
	close(followerJoined)

	o := <-got
	if o.err != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", o.err)
	}
	if o.hit || o.res.Cycles != 11 || calls != 1 {
		t.Fatalf("follower takeover: hit=%v res=%+v calls=%d, want a fresh run", o.hit, o.res, calls)
	}
}

// v1Hash reproduces the retired hybridsim-spec-v1 encoding, which resolved
// every defaultable field instead of listing non-default knobs.
func v1Hash(s system.Spec) string {
	def := config.ForSystem(s.System)
	cores, filter := def.Cores, def.FilterEntries
	if s.Cores > 0 {
		cores = s.Cores
	}
	if s.FilterEntries > 0 {
		filter = s.FilterEntries
	}
	seed := s.Seed
	if seed == 0 {
		seed = system.DefaultSeed
	}
	enc := fmt.Sprintf(
		"hybridsim-spec-v1\nsystem=%s\nbenchmark=%s\nscale=%s\ncores=%d\nseed=%x\nfilter=%d\nmaxevents=%d\n",
		s.System, s.Benchmark, s.Scale, cores, seed, filter, s.MaxEvents)
	sum := sha256.Sum256([]byte(enc))
	return hex.EncodeToString(sum[:])
}

// TestV1DiskEntriesMissUnderV2 pins DESIGN.md §8's versioning contract for
// the v1 -> v2 hash migration: an entry a v1 daemon persisted sits under a
// name no v2 Spec can hash to, so it reads as a miss (a re-execute), never
// as a wrong or stale answer.
func TestV1DiskEntriesMissUnderV2(t *testing.T) {
	dir := t.TempDir()
	s := spec(8)
	if s.Hash() == v1Hash(s) {
		t.Fatal("v2 hash equals the v1 hash; the encoding was not versioned")
	}
	// Simulate the upgrade: a v1-era file holding perfectly good Results
	// under the old address.
	e := Entry{Spec: s, Res: system.Results{Benchmark: "EP", Cycles: 999}}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, v1Hash(s)+".json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, 8, dir)
	if _, ok := c.Get(s); ok {
		t.Fatal("a v1 disk entry was served under the v2 address")
	}
	calls := 0
	if _, hit, err := c.GetOrRun(context.Background(), s, fakeRun(&calls, 7)); err != nil || hit {
		t.Fatalf("hit=%v err=%v, want a clean miss and re-execute", hit, err)
	}
	if calls != 1 {
		t.Fatalf("run executed %d times, want 1", calls)
	}
	// The re-executed result is re-persisted under the v2 address, so the
	// next process hits.
	c2 := mustNew(t, 8, dir)
	if _, ok := c2.Get(s); !ok {
		t.Fatal("re-executed result not persisted under the v2 address")
	}
}
