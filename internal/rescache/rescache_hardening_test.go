package rescache

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestDiskErrorsCounted: every flavor of unusable disk entry — corrupt,
// truncated, mis-addressed — is skipped AND counted, so an operator can see
// a rotting disk tier on /metrics instead of diagnosing silent re-executes.
func TestDiskErrorsCounted(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, 8, dir)

	// Corrupt: not JSON at all.
	if err := os.WriteFile(filepath.Join(dir, spec(8).Hash()+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Truncated: a valid prefix of a real entry, cut mid-value.
	if err := os.WriteFile(filepath.Join(dir, spec(16).Hash()+".json"), []byte(`{"spec":{"system":"hy`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Mis-addressed: well-formed JSON whose Spec hashes elsewhere.
	if _, _, err := c.GetOrRun(context.Background(), spec(24), fakeRun(new(int), 1)); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(filepath.Join(dir, spec(24).Hash()+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, spec(32).Hash()+".json"), good, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, filter := range []int{8, 16, 32} {
		calls := 0
		if _, hit, err := c.GetOrRun(context.Background(), spec(filter), fakeRun(&calls, 1)); hit || err != nil {
			t.Fatalf("filter %d: hit=%v err=%v, want clean miss over bad file", filter, hit, err)
		}
		if calls != 1 {
			t.Fatalf("filter %d: run executed %d times, want 1", filter, calls)
		}
	}
	if st := c.Stats(); st.DiskErrors != 3 {
		t.Fatalf("DiskErrors = %d, want 3 (corrupt + truncated + mis-addressed)", st.DiskErrors)
	}
}

// TestFillPeerCountsNeitherHitNorMiss: adopted fleet results must not skew
// the local hit rate — they are PeerFills, and the next lookup is a real
// memory hit.
func TestFillPeerCountsNeitherHitNorMiss(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, 8, dir)
	sp := spec(8)
	res, _, err := mustNew(t, 8, "").GetOrRun(context.Background(), sp, fakeRun(new(int), 7))
	if err != nil {
		t.Fatal(err)
	}

	c.FillPeer(sp, res)
	st := c.Stats()
	if st.PeerFills != 1 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("after FillPeer: %+v, want exactly one PeerFill and untouched hit/miss counters", st)
	}
	got, hit, err := c.GetOrRun(context.Background(), sp, fakeRun(new(int), 99))
	if err != nil || !hit || got != res {
		t.Fatalf("GetOrRun after FillPeer = %+v hit=%v err=%v, want the adopted result as a hit", got, hit, err)
	}
	// And the fill persisted to disk: a fresh cache over the same dir hits.
	c2 := mustNew(t, 8, dir)
	if _, ok := c2.GetKey(sp.Hash()); !ok {
		t.Fatal("peer fill did not reach the disk tier")
	}
}

// TestContainsProbesWithoutCounting: Contains is the cluster's routing
// probe — it must see both tiers and never move the traffic counters.
func TestContainsProbesWithoutCounting(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, 8, dir)
	sp := spec(8)
	if c.Contains(sp.Hash()) {
		t.Fatal("empty cache claims to contain the key")
	}
	if _, _, err := c.GetOrRun(context.Background(), sp, fakeRun(new(int), 1)); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	if !c.Contains(sp.Hash()) {
		t.Fatal("cache denies a key it just stored")
	}
	// Disk-only residency (fresh cache, same dir) must count too.
	c2 := mustNew(t, 8, dir)
	if !c2.Contains(sp.Hash()) {
		t.Fatal("Contains missed a disk-tier entry")
	}
	if after := c.Stats(); after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("Contains moved counters: %+v -> %+v", before, after)
	}
}
