package core

import (
	"testing"
	"testing/quick"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/spm"
)

// rig assembles a 4-core hybrid system: mesh + DRAM + coherent hierarchy +
// SPMs + protocol.
type rig struct {
	eng  *sim.Engine
	mesh *noc.Mesh
	hier *coherence.Hierarchy
	spms []*spm.SPM
	amap spm.AddressMap
	p    *Protocol
	cfg  config.Config
}

func newRig(t testing.TB, ideal bool) *rig {
	cfg := config.SmallTest()
	if ideal {
		cfg.System = config.HybridIdeal
	}
	eng := sim.NewEngine()
	mesh := noc.New(eng, cfg.MeshWidth, cfg.MeshHeight, cfg.FlitBytes, cfg.LinkLatency, cfg.RouterLatency)
	dram := mem.NewSystem(eng, []int{0}, cfg.LineSize, cfg.MemLatency, cfg.MemCyclesPerLn)
	hier := coherence.New(eng, cfg, mesh, dram)
	var spms []*spm.SPM
	for i := 0; i < cfg.Cores; i++ {
		spms = append(spms, spm.New(eng, cfg.SPMLatency))
	}
	amap := spm.NewAddressMap(cfg.Cores, cfg.SPMSize)
	p := New(eng, cfg, mesh, hier, spms, amap, ideal)
	return &rig{eng: eng, mesh: mesh, hier: hier, spms: spms, amap: amap, p: p, cfg: cfg}
}

const bufSz = 1024

// prep configures 1KB buffers on every core.
func (r *rig) prep() {
	for c := 0; c < r.cfg.Cores; c++ {
		r.p.SetBufSize(c, bufSz)
	}
}

// mapChunk simulates the dma-get mapping gmBase into core's buffer bufIdx.
func (r *rig) mapChunk(core int, gmBase uint64, bufIdx int) {
	r.p.NotifyMap(core, gmBase, r.amap.AddrFor(core, uint64(bufIdx)*bufSz), bufSz)
	r.eng.Run()
}

func TestSetBufSizeMasks(t *testing.T) {
	r := newRig(t, false)
	r.p.SetBufSize(0, 512)
	if r.p.BufSize(0) != 512 {
		t.Fatalf("BufSize = %d", r.p.BufSize(0))
	}
}

func TestSetBufSizeRejectsNonPow2(t *testing.T) {
	r := newRig(t, false)
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two buffer size accepted")
		}
	}()
	r.p.SetBufSize(0, 768)
}

func TestSetBufSizeRejectsTooManyBuffers(t *testing.T) {
	r := newRig(t, false) // SmallTest: 4KB SPM, 8 SPMDir entries
	defer func() {
		if recover() == nil {
			t.Fatal("buffer count beyond SPMDir entries accepted")
		}
	}()
	r.p.SetBufSize(0, 256) // 16 buffers > 8 entries
}

func TestNotifyMapUpdatesSPMDir(t *testing.T) {
	r := newRig(t, false)
	r.prep()
	r.mapChunk(1, 0x10000, 2)
	base, valid := r.p.SPMDirEntry(1, 2)
	if !valid || base != 0x10000 {
		t.Fatalf("SPMDir[1][2] = %#x valid=%v", base, valid)
	}
	if c, ok := r.p.Mapped(0x10000); !ok || c != 1 {
		t.Fatalf("oracle: core=%d ok=%v", c, ok)
	}
}

func TestBufferReuseUnmapsOldChunk(t *testing.T) {
	r := newRig(t, false)
	r.prep()
	r.mapChunk(0, 0x10000, 0)
	r.mapChunk(0, 0x20000, 0) // reuse buffer 0
	if _, ok := r.p.Mapped(0x10000); ok {
		t.Fatal("old chunk still mapped after buffer reuse")
	}
	if c, ok := r.p.Mapped(0x20000); !ok || c != 0 {
		t.Fatalf("new chunk: core=%d ok=%v", c, ok)
	}
}

func TestCaseA_FilterHitServedByCache(t *testing.T) {
	r := newRig(t, false)
	r.prep()
	// First access warms the filter (case c), second is the fast path.
	var served []Served
	r.p.GuardedAccess(0, 0x50000, 0x40, false, func(s Served) {
		served = append(served, s)
		r.p.GuardedAccess(0, 0x50008, 0x44, false, func(s Served) { served = append(served, s) })
	})
	r.eng.Run()
	if len(served) != 2 || served[0] != ServedCache || served[1] != ServedCache {
		t.Fatalf("served = %v", served)
	}
	st := r.p.Stats()
	if st.Get("filter.misses") != 1 || st.Get("filter.hits") != 1 {
		t.Fatalf("filter hits=%d misses=%d", st.Get("filter.hits"), st.Get("filter.misses"))
	}
}

func TestCaseB_LocalSPMDirHit(t *testing.T) {
	r := newRig(t, false)
	r.prep()
	r.mapChunk(0, 0x10000, 0)
	var got Served
	r.p.GuardedAccess(0, 0x10040, 0x40, false, func(s Served) { got = s })
	r.eng.Run()
	if got != ServedLocalSPM {
		t.Fatalf("served = %v, want local-spm", got)
	}
	if r.spms[0].Reads() != 1 {
		t.Fatalf("spm reads = %d", r.spms[0].Reads())
	}
	if r.p.Stats().Get("spmdir.hits") != 1 {
		t.Fatal("SPMDir hit not counted")
	}
}

func TestCaseB_GuardedStoreAlsoWritesL1(t *testing.T) {
	r := newRig(t, false)
	r.prep()
	r.mapChunk(0, 0x10000, 0)
	var got Served
	r.p.GuardedAccess(0, 0x10040, 0x40, true, func(s Served) { got = s })
	r.eng.Run()
	if got != ServedLocalSPM {
		t.Fatalf("served = %v", got)
	}
	if r.spms[0].Writes() != 1 {
		t.Fatalf("spm writes = %d", r.spms[0].Writes())
	}
	// The L1 write must have gone through the coherent path.
	if r.hier.L1State(0, r.hier.LineAddr(0x10040)) != coherence.StateM {
		t.Fatal("guarded store did not write the L1 in M state")
	}
}

func TestCaseC_FilterMissNotMapped(t *testing.T) {
	r := newRig(t, false)
	r.prep()
	var got Served
	r.p.GuardedAccess(2, 0x60000, 0x40, false, func(s Served) { got = s })
	r.eng.Run()
	if got != ServedCache {
		t.Fatalf("served = %v, want cache", got)
	}
	st := r.p.Stats()
	if st.Get("fdir.broadcasts") != 1 {
		t.Fatalf("broadcasts = %d, want 1 (cold FilterDir must broadcast)", st.Get("fdir.broadcasts"))
	}
	if st.Get("filter.inserts") != 1 {
		t.Fatal("filter not updated after all-NACK resolution")
	}
	if r.p.FilterValidCount(2) != 1 {
		t.Fatalf("filter entries = %d", r.p.FilterValidCount(2))
	}
}

func TestCaseC_SecondCoreHitsFilterDir(t *testing.T) {
	r := newRig(t, false)
	r.prep()
	n := 0
	r.p.GuardedAccess(0, 0x60000, 0x40, false, func(Served) {
		n++
		// Same base from another core: FilterDir hit, no broadcast.
		r.p.GuardedAccess(1, 0x60010, 0x44, false, func(Served) { n++ })
	})
	r.eng.Run()
	if n != 2 {
		t.Fatalf("completed = %d", n)
	}
	st := r.p.Stats()
	if st.Get("fdir.broadcasts") != 1 {
		t.Fatalf("broadcasts = %d, want 1 (second miss resolves at FilterDir)", st.Get("fdir.broadcasts"))
	}
}

func TestCaseD_RemoteSPMServes(t *testing.T) {
	r := newRig(t, false)
	r.prep()
	r.mapChunk(3, 0x10000, 0)
	var got Served
	r.p.GuardedAccess(0, 0x10080, 0x40, false, func(s Served) { got = s })
	r.eng.Run()
	if got != ServedRemoteSPM {
		t.Fatalf("served = %v, want remote-spm", got)
	}
	if r.spms[3].RemoteReads() != 1 {
		t.Fatalf("remote SPM reads = %d", r.spms[3].RemoteReads())
	}
	// The requester's filter must NOT cache a mapped base.
	if r.p.FilterValidCount(0) != 0 {
		t.Fatal("filter polluted with a mapped base")
	}
	if r.p.Stats().Get("spmdir.remote_hits") != 1 {
		t.Fatal("remote SPMDir hit not counted")
	}
}

func TestCaseD_RemoteStoreAcked(t *testing.T) {
	r := newRig(t, false)
	r.prep()
	r.mapChunk(2, 0x30000, 1)
	var got Served
	r.p.GuardedAccess(1, 0x30004, 0x40, true, func(s Served) { got = s })
	r.eng.Run()
	if got != ServedRemoteSPM {
		t.Fatalf("served = %v", got)
	}
	if r.spms[2].RemoteWrites() != 1 {
		t.Fatalf("remote writes = %d", r.spms[2].RemoteWrites())
	}
}

func TestFilterInvalidationOnMap(t *testing.T) {
	r := newRig(t, false)
	r.prep()
	// Warm core 0's filter with base 0x70000 (case c).
	done := false
	r.p.GuardedAccess(0, 0x70000, 0x40, false, func(Served) { done = true })
	r.eng.Run()
	if !done || r.p.FilterValidCount(0) != 1 {
		t.Fatalf("warmup failed: done=%v entries=%d", done, r.p.FilterValidCount(0))
	}
	// Core 1 maps that base: core 0's filter entry must be invalidated.
	r.mapChunk(1, 0x70000, 0)
	if r.p.FilterValidCount(0) != 0 {
		t.Fatal("filter entry survived a mapping dma-get (stale filter!)")
	}
	if r.p.Stats().Get("filter.invalidations") != 1 {
		t.Fatalf("filter.invalidations = %d", r.p.Stats().Get("filter.invalidations"))
	}
	// And the access must now be diverted to the remote SPM.
	var got Served
	r.p.GuardedAccess(0, 0x70000, 0x44, false, func(s Served) { got = s })
	r.eng.Run()
	if got != ServedRemoteSPM {
		t.Fatalf("post-map access served by %v, want remote-spm", got)
	}
}

func TestFilterEvictionNotifiesFilterDir(t *testing.T) {
	r := newRig(t, false) // SmallTest: 8 filter entries
	r.prep()
	// Touch 9 distinct unmapped bases from core 0 to overflow its filter.
	var issue func(i int)
	issue = func(i int) {
		if i == 9 {
			return
		}
		r.p.GuardedAccess(0, uint64(0x100000+i*bufSz), 0x40, false, func(Served) { issue(i + 1) })
	}
	issue(0)
	r.eng.Run()
	st := r.p.Stats()
	if st.Get("filter.evictions") != 1 {
		t.Fatalf("filter.evictions = %d, want 1", st.Get("filter.evictions"))
	}
	if r.p.FilterValidCount(0) != 8 {
		t.Fatalf("filter entries = %d, want 8", r.p.FilterValidCount(0))
	}
}

func TestFilterDirEvictionInvalidatesSharers(t *testing.T) {
	r := newRig(t, false) // SmallTest: 64/4 = 16 FilterDir entries per slice
	r.prep()
	// Fill one FilterDir slice: bases hashing to slice 0 are chunk numbers
	// ≡ 0 mod 4. Touch 17 of them from core 1 (filter holds only 8, so
	// filter evictions also occur; FilterDir eviction must fire too).
	var issue func(i int)
	issue = func(i int) {
		if i == 17 {
			return
		}
		base := uint64((i*4 + 4) * bufSz) // chunk numbers 4,8,12,... → slice 0
		r.p.GuardedAccess(1, base, 0x40, false, func(Served) { issue(i + 1) })
	}
	issue(0)
	r.eng.Run()
	if got := r.p.Stats().Get("fdir.evictions"); got == 0 {
		t.Fatal("FilterDir never evicted despite overflow")
	}
}

func TestLSQRecheckHookFires(t *testing.T) {
	r := newRig(t, false)
	r.prep()
	r.mapChunk(0, 0x10000, 0)
	var hookAddr uint64
	var hookStore bool
	r.p.SetRecheckHook(func(core int, spmAddr uint64, isStore bool) bool {
		hookAddr, hookStore = spmAddr, isStore
		return true // pretend a violation was found
	})
	r.p.GuardedAccess(0, 0x10040, 0x40, true, func(Served) {})
	r.eng.Run()
	want := r.amap.AddrFor(0, 0x40)
	if hookAddr != want {
		t.Fatalf("recheck addr = %#x, want %#x", hookAddr, want)
	}
	if !hookStore {
		t.Fatal("recheck isStore lost")
	}
	if r.p.Stats().Get("lsq.flushes") != 1 {
		t.Fatal("flush not counted")
	}
}

func TestIdealCoherenceNoProtocolTraffic(t *testing.T) {
	r := newRig(t, true)
	r.prep()
	r.mapChunk(0, 0x10000, 0)
	var local, cached Served
	r.p.GuardedAccess(0, 0x10040, 0x40, false, func(s Served) {
		local = s
		r.p.GuardedAccess(0, 0x90000, 0x44, false, func(s Served) { cached = s })
	})
	r.eng.Run()
	if local != ServedLocalSPM || cached != ServedCache {
		t.Fatalf("served = %v %v", local, cached)
	}
	if got := r.mesh.Packets(noc.CohProt); got != 0 {
		t.Fatalf("ideal coherence sent %d CohProt packets for local/unmapped accesses", got)
	}
	st := r.p.Stats()
	if st.Get("filter.lookups") != 0 || st.Get("fdir.lookups") != 0 {
		t.Fatal("ideal coherence exercised the CAMs")
	}
}

func TestIdealRemoteAccessStillMovesData(t *testing.T) {
	r := newRig(t, true)
	r.prep()
	r.mapChunk(2, 0x30000, 0)
	var got Served
	r.p.GuardedAccess(0, 0x30000, 0x40, false, func(s Served) { got = s })
	r.eng.Run()
	if got != ServedRemoteSPM {
		t.Fatalf("served = %v", got)
	}
	if r.spms[2].RemoteReads() != 1 {
		t.Fatal("ideal remote access did not touch the remote SPM")
	}
}

func TestFilterHitRatio(t *testing.T) {
	r := newRig(t, false)
	r.prep()
	if r.p.FilterHitRatio() != 1 {
		t.Fatal("unexercised filter should report ratio 1")
	}
	n := 0
	r.p.GuardedAccess(0, 0x50000, 0x40, false, func(Served) {
		n++
		var rep func(i int)
		rep = func(i int) {
			if i == 3 {
				return
			}
			r.p.GuardedAccess(0, 0x50000+uint64(8*i), 0x44, false, func(Served) { n++; rep(i + 1) })
		}
		rep(0)
	})
	r.eng.Run()
	if n != 4 {
		t.Fatalf("completed = %d", n)
	}
	if got := r.p.FilterHitRatio(); got != 0.75 {
		t.Fatalf("hit ratio = %v, want 0.75 (1 miss, 3 hits)", got)
	}
}

// Property: a guarded access is always served by the storage the oracle says
// holds the valid copy, under random mapping/access interleavings.
func TestValidCopyProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		r := newRig(t, false)
		r.prep()
		okAll := true
		var step func(i int)
		step = func(i int) {
			if i >= len(ops) {
				return
			}
			op := ops[i]
			core := int(op) % 4
			chunk := uint64(op>>2)%6 + 1
			base := chunk * bufSz
			if op&0x8000 != 0 {
				// Map the chunk into this core's buffer (chunk%2).
				r.p.NotifyMap(core, base, r.amap.AddrFor(core, uint64(chunk%2)*bufSz), bufSz)
				r.eng.Schedule(50, func() { step(i + 1) })
				return
			}
			isStore := op&0x4000 != 0
			r.p.GuardedAccess(core, base+uint64(op%bufSz&^7), uint64(op), isStore, func(s Served) {
				mc, mapped := r.p.Mapped(base)
				var want Served
				switch {
				case !mapped:
					want = ServedCache
				case mc == core:
					want = ServedLocalSPM
				default:
					want = ServedRemoteSPM
				}
				// The mapping may have changed while the access
				// was in flight; accept the answer if it matches
				// either the current or a cache fallback rule.
				if s != want && !(s == ServedCache && !mapped) {
					okAll = false
				}
				step(i + 1)
			})
		}
		step(0)
		r.eng.Run()
		return okAll
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: every guarded access completes exactly once, whatever the mix.
func TestGuardedCompletionProperty(t *testing.T) {
	prop := func(ops []uint16, ideal bool) bool {
		r := newRig(t, ideal)
		r.prep()
		want, got := 0, 0
		for _, op := range ops {
			core := int(op) % 4
			base := (uint64(op>>2)%8 + 1) * bufSz
			if op&0x8000 != 0 {
				r.p.NotifyMap(core, base, r.amap.AddrFor(core, uint64(op>>3%4)*bufSz), bufSz)
				continue
			}
			want++
			r.p.GuardedAccess(core, base+uint64(op&0x3F8), uint64(op), op&0x4000 != 0,
				func(Served) { got++ })
		}
		r.eng.Run()
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
