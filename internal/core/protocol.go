// Package core implements the paper's primary contribution: the coherence
// protocol that lets guarded (potentially incoherent) memory accesses always
// reach the valid copy of their data in a hybrid memory system.
//
// Hardware structures (paper §3.1, Fig. 4):
//
//   - SPMDir (one per core): a CAM tracking the GM base address of every
//     chunk mapped to the core's SPM. The entry index equals the SPM buffer
//     number, so no RAM array is needed to recover the SPM address.
//   - Filter (one per core): a small fully-associative pseudoLRU CAM caching
//     GM base addresses known NOT to be mapped to any SPM — the fast path
//     for the overwhelmingly common case.
//   - FilterDir (distributed across the cache-directory slices): a CAM of
//     filtered base addresses plus a sharer bit-vector recording which cores
//     cache each one in their filter.
//
// Guarded accesses follow the casuistic of Fig. 5: (a) filter hit → served
// by the L1; (b) local SPMDir hit → diverted to the local SPM (loads discard
// the parallel cache access, stores also write the L1); (c) both miss and
// the FilterDir resolves "not mapped" (directly or via an all-NACK
// broadcast) → filter updated, buffered cache access used; (d) a remote
// SPMDir hits during the broadcast → the remote SPM serves the access and
// replies directly to the requesting core.
//
// Address decomposition uses the Base/Offset mask registers programmed by
// the SetBufSize instruction before each loop: every structure operates on
// base addresses, exploiting the equal-buffer-size invariant of fork-join
// parallelism (paper §3.1).
package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/spm"
	"repro/internal/stats"
)

// Served identifies which storage satisfied a guarded access.
type Served int

const (
	// ServedCache means the L1/GM path provided the data (Fig. 5a/5c).
	ServedCache Served = iota
	// ServedLocalSPM means the access was diverted to the local SPM (5b).
	ServedLocalSPM
	// ServedRemoteSPM means a remote SPM served the access (5d).
	ServedRemoteSPM
)

func (s Served) String() string {
	switch s {
	case ServedCache:
		return "cache"
	case ServedLocalSPM:
		return "local-spm"
	case ServedRemoteSPM:
		return "remote-spm"
	default:
		return fmt.Sprintf("Served(%d)", int(s))
	}
}

// GM abstracts the coherent cache path used by guarded accesses
// (implemented by coherence.Hierarchy).
type GM interface {
	Read(core int, addr, pc uint64, done func())
	Write(core int, addr, pc uint64, done func())
}

// RecheckHook is the LSQ ordering re-check of §3.4: invoked when a guarded
// access hits in the local SPMDir and its effective address changes to an
// SPM address. The CPU model re-checks ordering against the new address and
// reports whether a pipeline flush was triggered.
type RecheckHook func(core int, spmAddr uint64, isStore bool) bool

// message sizes (bytes).
const (
	ctrlBytes = 8
	dataBytes = 72
)

// Protocol is the chip-wide SPM coherence engine.
type Protocol struct {
	eng  *sim.Engine
	cfg  config.Config
	mesh *noc.Mesh
	gm   GM
	spms []*spm.SPM
	amap spm.AddressMap

	ideal bool

	// Per-core Base/Offset mask registers (§3.1).
	bufSize    []int
	baseMask   []uint64
	offsetMask []uint64

	spmdirs []*spmDir
	filters []*filter
	fdir    []*fdirSlice

	// oracle is the authoritative chunk-mapping table. The real protocol
	// never reads it to divert accesses (only its CAMs); it backs the
	// ideal-coherence configuration and invariant checks.
	oracle map[uint64]oracleEntry

	recheck RecheckHook

	set *stats.Set
}

type oracleEntry struct {
	core   int
	bufIdx int
}

// spmDir is one core's SPMDir: entry index == buffer number (§3.1).
type spmDir struct {
	base  []uint64
	valid []bool
}

func newSPMDir(entries int) *spmDir {
	return &spmDir{base: make([]uint64, entries), valid: make([]bool, entries)}
}

// lookup CAM-searches for a GM base address.
func (d *spmDir) lookup(base uint64) (bufIdx int, ok bool) {
	for i, b := range d.base {
		if d.valid[i] && b == base {
			return i, true
		}
	}
	return 0, false
}

func (d *spmDir) set(bufIdx int, base uint64) {
	d.base[bufIdx] = base
	d.valid[bufIdx] = true
}

// filter is one core's fully-associative pseudoLRU filter CAM.
type filter struct {
	base []uint64
	use  []uint64 // recency stamps (pseudoLRU approximated by LRU here)
	tick uint64
}

func newFilter(entries int) *filter {
	return &filter{base: make([]uint64, entries), use: make([]uint64, entries)}
}

// lookup searches for base, refreshing recency on hit.
func (f *filter) lookup(base uint64) bool {
	for i, b := range f.base {
		if f.use[i] != 0 && b == base {
			f.tick++
			f.use[i] = f.tick
			return true
		}
	}
	return false
}

// insert adds base, evicting the least recent entry. It returns the evicted
// base and whether an eviction occurred.
func (f *filter) insert(base uint64) (evicted uint64, wasValid bool) {
	victim, oldest := 0, ^uint64(0)
	for i := range f.base {
		if f.use[i] == 0 {
			victim, oldest = i, 0
			break
		}
		if f.use[i] < oldest {
			victim, oldest = i, f.use[i]
		}
	}
	evicted, wasValid = f.base[victim], f.use[victim] != 0 && oldest != 0
	f.tick++
	f.base[victim] = base
	f.use[victim] = f.tick
	return evicted, wasValid
}

// invalidate removes base if present.
func (f *filter) invalidate(base uint64) bool {
	for i, b := range f.base {
		if f.use[i] != 0 && b == base {
			f.use[i] = 0
			return true
		}
	}
	return false
}

// valid counts live entries (tests).
func (f *filter) validCount() int {
	n := 0
	for _, u := range f.use {
		if u != 0 {
			n++
		}
	}
	return n
}

// fdirSlice is one distributed slice of the FilterDir: a CAM of base
// addresses with sharer bit-vectors, LRU-replaced.
type fdirSlice struct {
	node    int
	base    []uint64
	sharers []uint64
	use     []uint64
	tick    uint64
	busy    map[uint64][]func() // per-base transaction serialization
}

func newFDirSlice(node, entries int) *fdirSlice {
	return &fdirSlice{
		node:    node,
		base:    make([]uint64, entries),
		sharers: make([]uint64, entries),
		use:     make([]uint64, entries),
		busy:    make(map[uint64][]func()),
	}
}

func (s *fdirSlice) find(base uint64) int {
	for i, b := range s.base {
		if s.use[i] != 0 && b == base {
			return i
		}
	}
	return -1
}

func (s *fdirSlice) touch(i int) {
	s.tick++
	s.use[i] = s.tick
}

// insert allocates an entry for base, returning a victim (base + sharers)
// when a valid entry had to be displaced.
func (s *fdirSlice) insert(base uint64, sharerBit uint64) (victimBase, victimSharers uint64, evicted bool) {
	victim, oldest := 0, ^uint64(0)
	for i := range s.base {
		if s.use[i] == 0 {
			victim, oldest = i, 0
			break
		}
		if s.use[i] < oldest {
			victim, oldest = i, s.use[i]
		}
	}
	if oldest != 0 {
		victimBase, victimSharers, evicted = s.base[victim], s.sharers[victim], true
	}
	s.tick++
	s.base[victim] = base
	s.sharers[victim] = sharerBit
	s.use[victim] = s.tick
	return victimBase, victimSharers, evicted
}

func (s *fdirSlice) remove(i int) { s.use[i] = 0; s.sharers[i] = 0 }

// New builds the protocol engine. spms must hold one SPM per core; amap is
// the chip's SPM address map. ideal selects the oracle coherence used as
// the Fig. 7 baseline.
func New(eng *sim.Engine, cfg config.Config, mesh *noc.Mesh, gm GM, spms []*spm.SPM, amap spm.AddressMap, ideal bool) *Protocol {
	if len(spms) != cfg.Cores {
		panic(fmt.Sprintf("core: %d SPMs for %d cores", len(spms), cfg.Cores))
	}
	p := &Protocol{
		eng:        eng,
		cfg:        cfg,
		mesh:       mesh,
		gm:         gm,
		spms:       spms,
		amap:       amap,
		ideal:      ideal,
		bufSize:    make([]int, cfg.Cores),
		baseMask:   make([]uint64, cfg.Cores),
		offsetMask: make([]uint64, cfg.Cores),
		oracle:     make(map[uint64]oracleEntry),
		set:        stats.NewSet("spmcoh"),
	}
	perSlice := cfg.FilterDirEntries / cfg.Cores
	if perSlice <= 0 {
		perSlice = 1
	}
	for i := 0; i < cfg.Cores; i++ {
		p.spmdirs = append(p.spmdirs, newSPMDir(cfg.SPMDirEntries))
		p.filters = append(p.filters, newFilter(cfg.FilterEntries))
		p.fdir = append(p.fdir, newFDirSlice(i, perSlice))
		p.SetBufSize(i, cfg.SPMSize) // sane default: one buffer
	}
	return p
}

// SetRecheckHook installs the LSQ re-check callback (§3.4).
func (p *Protocol) SetRecheckHook(h RecheckHook) { p.recheck = h }

// Stats returns the protocol counter set.
func (p *Protocol) Stats() *stats.Set { return p.set }

// SetBufSize programs core's Base/Offset mask registers for buffer size
// bytes (a power of two). Emitted by the runtime before each loop (§3.1).
func (p *Protocol) SetBufSize(core, bytes int) {
	if bytes <= 0 || bytes&(bytes-1) != 0 {
		panic(fmt.Sprintf("core: buffer size %d not a power of two", bytes))
	}
	if n := p.cfg.SPMSize / bytes; n > p.cfg.SPMDirEntries {
		panic(fmt.Sprintf("core: %d buffers exceed %d SPMDir entries", n, p.cfg.SPMDirEntries))
	}
	p.bufSize[core] = bytes
	p.offsetMask[core] = uint64(bytes - 1)
	p.baseMask[core] = ^p.offsetMask[core]
}

// BufSize returns core's configured buffer size.
func (p *Protocol) BufSize(core int) int { return p.bufSize[core] }

// fdirHome returns the FilterDir slice owning a base address. Bases are
// buffer-size aligned, so interleave on the chunk number (fork-join code
// uses one buffer size chip-wide, §3.1).
func (p *Protocol) fdirHome(base uint64) *fdirSlice {
	return p.fdir[(base/uint64(p.bufSize[0]))%uint64(len(p.fdir))]
}

// ---------------------------------------------------------------------------
// Tracking SPM contents (paper §3.3)

// NotifyMap implements dma.MapNotifier: a dma-get maps the chunk at gmAddr
// into core's SPM buffer at spmAddr. The SPMDir is updated and every filter
// caching the base address is invalidated through the FilterDir (Fig. 6a).
func (p *Protocol) NotifyMap(core int, gmAddr, spmAddr uint64, bytes int) {
	base := gmAddr & p.baseMask[core]
	bufIdx := int(p.amap.Offset(spmAddr)) / p.bufSize[core]

	// Reusing a buffer unmaps its previous chunk.
	d := p.spmdirs[core]
	if d.valid[bufIdx] {
		old := d.base[bufIdx]
		if e, ok := p.oracle[old]; ok && e.core == core && e.bufIdx == bufIdx {
			delete(p.oracle, old)
		}
	}
	// Array sections are private to one thread (fork-join, §2.2), so a
	// chunk lives in at most one SPM. Re-mapping by another core migrates
	// it: the previous mapper's SPMDir entry is cleared.
	if prev, ok := p.oracle[base]; ok && prev.core != core {
		pd := p.spmdirs[prev.core]
		if pd.valid[prev.bufIdx] && pd.base[prev.bufIdx] == base {
			pd.valid[prev.bufIdx] = false
		}
	}
	d.set(bufIdx, base)
	p.oracle[base] = oracleEntry{core: core, bufIdx: bufIdx}
	p.set.Inc("spmdir.updates")

	if p.ideal {
		return // oracle coherence: no structures to maintain
	}

	// Fig. 6a: invalidation message to the FilterDir home, which fans out
	// to every core in the sharer list.
	home := p.fdirHome(base)
	p.mesh.Send(core, home.node, ctrlBytes, noc.CohProt, func() {
		p.set.Inc("fdir.lookups")
		i := home.find(base)
		if i < 0 {
			return // nobody filters it; nothing to do
		}
		sharers := home.sharers[i]
		home.remove(i)
		p.invalidateFilters(home.node, base, sharers)
	})
}

// invalidateFilters sends filter-invalidation messages from the FilterDir
// node to every sharer core.
func (p *Protocol) invalidateFilters(fromNode int, base uint64, sharers uint64) {
	for c := 0; c < p.cfg.Cores; c++ {
		if sharers&(1<<uint(c)) == 0 {
			continue
		}
		c := c
		p.mesh.Send(fromNode, c, ctrlBytes, noc.CohProt, func() {
			if p.filters[c].invalidate(base) {
				p.set.Inc("filter.invalidations")
			}
		})
	}
}

// Mapped reports where a GM base address is currently mapped (oracle view;
// used by tests, the ideal protocol, and assertions).
func (p *Protocol) Mapped(base uint64) (core int, ok bool) {
	e, ok := p.oracle[base]
	return e.core, ok
}

// ---------------------------------------------------------------------------
// Guarded accesses (paper §3.2, Fig. 5)

// GuardedAccess executes a potentially incoherent access for core at
// GM virtual address addr. done receives which storage served it.
func (p *Protocol) GuardedAccess(core int, addr, pc uint64, isStore bool, done func(Served)) {
	p.set.Inc("guarded.accesses")
	base := addr & p.baseMask[core]
	off := addr & p.offsetMask[core]

	if p.ideal {
		p.idealAccess(core, addr, pc, base, off, isStore, done)
		return
	}

	// The filter and SPMDir CAMs are probed in parallel with the normal
	// TLB+L1 path (their latency hides behind it).
	p.set.Inc("spmdir.lookups")
	p.set.Inc("filter.lookups")

	if bufIdx, ok := p.spmdirs[core].lookup(base); ok {
		// Fig. 5b — mapped to the local SPM.
		p.set.Inc("spmdir.hits")
		p.localSPMAccess(core, bufIdx, off, pc, addr, isStore, done)
		return
	}

	if p.filters[core].lookup(base) {
		// Fig. 5a — known not mapped anywhere: the L1 serves it.
		p.set.Inc("filter.hits")
		p.cacheAccess(core, addr, pc, isStore, func() { done(ServedCache) })
		return
	}

	// Fig. 5c/5d — both CAMs missed: ask the FilterDir. The cache access
	// proceeds in parallel and is buffered in the MSHR (loads) until the
	// resolution arrives.
	p.set.Inc("filter.misses")
	cacheDone := false
	resolved := false
	completed := false
	var resolution Served
	remoteDataArrived := false

	finishIfReady := func() {
		if !resolved || completed {
			return
		}
		switch resolution {
		case ServedCache:
			if cacheDone {
				completed = true
				done(ServedCache)
			}
		case ServedRemoteSPM:
			if remoteDataArrived && (cacheDone || !isStore) {
				// Loads discard the buffered cache access; its
				// completion is not waited on. Stores also
				// write the L1, so they retire when both done.
				completed = true
				done(ServedRemoteSPM)
			}
		}
	}

	p.cacheAccess(core, addr, pc, isStore, func() {
		cacheDone = true
		finishIfReady()
	})

	home := p.fdirHome(base)
	p.mesh.Send(core, home.node, ctrlBytes, noc.CohProt, func() {
		p.fdirResolve(home, core, base, off, pc, isStore,
			func(mapped bool) { // resolution from FilterDir
				resolved = true
				if mapped {
					resolution = ServedRemoteSPM
				} else {
					resolution = ServedCache
					p.filterInsert(core, base)
				}
				finishIfReady()
			},
			func() { // data/ack from the remote SPM (Fig. 5d)
				remoteDataArrived = true
				resolved = true
				resolution = ServedRemoteSPM
				finishIfReady()
			})
	})
}

// localSPMAccess is Fig. 5b: divert to the local SPM. The parallel L1 access
// result is discarded for loads; guarded stores always also write the L1
// (they may alias a read-only SPM buffer that will never be written back).
func (p *Protocol) localSPMAccess(core, bufIdx int, off, pc, gmAddr uint64, isStore bool, done func(Served)) {
	spmAddr := p.amap.AddrFor(core, uint64(bufIdx)*uint64(p.bufSize[core])+off)
	if p.recheck != nil && p.recheck(core, spmAddr, isStore) {
		p.set.Inc("lsq.flushes")
	}
	p.set.Inc("guarded.l1_probe_discarded")
	if isStore {
		p.cacheAccess(core, gmAddr, pc, true, func() {})
	}
	p.spms[core].Access(isStore, func() { done(ServedLocalSPM) })
}

// cacheAccess issues the normal coherent GM access for a guarded
// instruction.
func (p *Protocol) cacheAccess(core int, addr, pc uint64, isStore bool, done func()) {
	if isStore {
		p.gm.Write(core, addr, pc, done)
	} else {
		p.gm.Read(core, addr, pc, done)
	}
}

// filterInsert caches "base is unmapped" in core's filter, notifying the
// FilterDir when a valid entry is displaced (§3.3).
func (p *Protocol) filterInsert(core int, base uint64) {
	evicted, wasValid := p.filters[core].insert(base)
	p.set.Inc("filter.inserts")
	if !wasValid {
		return
	}
	p.set.Inc("filter.evictions")
	home := p.fdirHome(evicted)
	p.mesh.Send(core, home.node, ctrlBytes, noc.CohProt, func() {
		if i := home.find(evicted); i >= 0 {
			home.sharers[i] &^= 1 << uint(core)
		}
	})
}

// fdirResolve runs the FilterDir side of a filter miss (Fig. 6b). resolved
// is invoked at the requesting core with whether the base is mapped to some
// SPM; remoteServed fires when a remote SPM has served the access (5d).
func (p *Protocol) fdirResolve(home *fdirSlice, req int, base, off, pc uint64, isStore bool,
	resolved func(bool), remoteServed func()) {

	// Serialize transactions on the same base at the home slice.
	if q, busy := home.busy[base]; busy {
		home.busy[base] = append(q, func() {
			p.fdirResolve(home, req, base, off, pc, isStore, resolved, remoteServed)
		})
		return
	}
	home.busy[base] = nil
	releaseBusy := func() {
		q := home.busy[base]
		delete(home.busy, base)
		// Deferred transactions re-enter fdirResolve and re-serialize.
		for _, fn := range q {
			p.eng.Schedule(0, fn)
		}
	}

	p.set.Inc("fdir.lookups")
	if i := home.find(base); i >= 0 {
		// FilterDir hit: not mapped to any SPM. Add sharer, ACK.
		home.sharers[i] |= 1 << uint(req)
		home.touch(i)
		p.mesh.Send(home.node, req, ctrlBytes, noc.CohProt, func() { resolved(false) })
		releaseBusy()
		return
	}

	// FilterDir miss: broadcast to every core's SPMDir (Fig. 6b step 3).
	p.set.Inc("fdir.broadcasts")
	pending := p.cfg.Cores
	anyMapped := false
	collect := func(mapped bool) {
		if mapped {
			anyMapped = true
		}
		pending--
		if pending > 0 {
			return
		}
		if anyMapped {
			// Mapped to a remote SPM: NACK the requester (no
			// filter update); the remote core serves the access.
			p.mesh.Send(home.node, req, ctrlBytes, noc.CohProt, func() { resolved(true) })
			releaseBusy()
			return
		}
		// Nobody maps it: insert into the FilterDir with the
		// requester as first sharer; evictions invalidate filters.
		vb, vs, evicted := home.insert(base, 1<<uint(req))
		if evicted {
			p.set.Inc("fdir.evictions")
			p.invalidateFilters(home.node, vb, vs)
		}
		p.mesh.Send(home.node, req, ctrlBytes, noc.CohProt, func() { resolved(false) })
		releaseBusy()
	}

	for c := 0; c < p.cfg.Cores; c++ {
		c := c
		p.mesh.Send(home.node, c, ctrlBytes, noc.CohProt, func() {
			p.set.Inc("spmdir.lookups")
			_, ok := p.spmdirs[c].lookup(base)
			if ok {
				// Normally a remote core; c == req can happen
				// only when a dma-get mapped the chunk locally
				// while this access was in flight — the local
				// SPM then serves it through the same path.
				p.set.Inc("spmdir.remote_hits")
				// Fig. 5d: this SPM serves the access directly
				// and responds to the requesting core.
				p.spms[c].RemoteAccess(isStore, func() {
					size := dataBytes
					if isStore {
						size = ctrlBytes // store ack
					}
					p.mesh.Send(c, req, size, noc.CohProt, remoteServed)
				})
				// ...and ACKs "mapped" to the FilterDir.
				p.mesh.Send(c, home.node, ctrlBytes, noc.CohProt, func() { collect(true) })
				return
			}
			p.mesh.Send(c, home.node, ctrlBytes, noc.CohProt, func() { collect(ok) })
		})
	}
}

// idealAccess resolves a guarded access with oracle knowledge: no CAMs, no
// protocol traffic (paper §5.3's "ideal coherence" baseline). Data that
// physically lives in a remote SPM still has to cross the NoC.
func (p *Protocol) idealAccess(core int, addr, pc, base, off uint64, isStore bool, done func(Served)) {
	e, ok := p.oracle[base]
	switch {
	case !ok:
		p.cacheAccess(core, addr, pc, isStore, func() { done(ServedCache) })
	case e.core == core:
		if p.recheck != nil && p.recheck(core, p.amap.AddrFor(core, uint64(e.bufIdx)*uint64(p.bufSize[core])+off), isStore) {
			p.set.Inc("lsq.flushes")
		}
		if isStore {
			p.cacheAccess(core, addr, pc, true, func() {})
		}
		p.spms[core].Access(isStore, func() { done(ServedLocalSPM) })
	default:
		remote := e.core
		p.mesh.Send(core, remote, ctrlBytes, noc.CohProt, func() {
			p.spms[remote].RemoteAccess(isStore, func() {
				size := dataBytes
				if isStore {
					size = ctrlBytes
				}
				p.mesh.Send(remote, core, size, noc.CohProt, func() { done(ServedRemoteSPM) })
			})
		})
		if isStore {
			p.cacheAccess(core, addr, pc, true, func() {})
		}
	}
}

// ---------------------------------------------------------------------------
// Derived statistics

// FilterHitRatio returns hits/(hits+misses) over filter lookups that reached
// the filter (i.e. SPMDir misses) — the quantity of paper Fig. 8. Returns 1
// when the filter was never exercised (e.g. SP has no guarded accesses).
func (p *Protocol) FilterHitRatio() float64 {
	h := p.set.Get("filter.hits")
	m := p.set.Get("filter.misses")
	if h+m == 0 {
		return 1
	}
	return float64(h) / float64(h+m)
}

// FilterValidCount returns live entries in core's filter (tests).
func (p *Protocol) FilterValidCount(core int) int { return p.filters[core].validCount() }

// SPMDirEntry exposes core's SPMDir entry bufIdx (tests).
func (p *Protocol) SPMDirEntry(core, bufIdx int) (base uint64, valid bool) {
	d := p.spmdirs[core]
	return d.base[bufIdx], d.valid[bufIdx]
}
