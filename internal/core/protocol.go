// Package core implements the paper's primary contribution: the coherence
// protocol that lets guarded (potentially incoherent) memory accesses always
// reach the valid copy of their data in a hybrid memory system.
//
// Hardware structures (paper §3.1, Fig. 4):
//
//   - SPMDir (one per core): a CAM tracking the GM base address of every
//     chunk mapped to the core's SPM. The entry index equals the SPM buffer
//     number, so no RAM array is needed to recover the SPM address.
//   - Filter (one per core): a small fully-associative pseudoLRU CAM caching
//     GM base addresses known NOT to be mapped to any SPM — the fast path
//     for the overwhelmingly common case.
//   - FilterDir (distributed across the cache-directory slices): a CAM of
//     filtered base addresses plus a sharer bit-vector recording which cores
//     cache each one in their filter.
//
// Guarded accesses follow the casuistic of Fig. 5: (a) filter hit → served
// by the L1; (b) local SPMDir hit → diverted to the local SPM (loads discard
// the parallel cache access, stores also write the L1); (c) both miss and
// the FilterDir resolves "not mapped" (directly or via an all-NACK
// broadcast) → filter updated, buffered cache access used; (d) a remote
// SPMDir hits during the broadcast → the remote SPM serves the access and
// replies directly to the requesting core.
//
// Address decomposition uses the Base/Offset mask registers programmed by
// the SetBufSize instruction before each loop: every structure operates on
// base addresses, exploiting the equal-buffer-size invariant of fork-join
// parallelism (paper §3.1).
//
// Hot-path memory discipline: a guarded access is a pooled gtxn node whose
// three concurrent strands (buffered cache access, FilterDir resolution,
// remote-SPM data) are pre-wired sub-continuations; FilterDir transactions
// and protocol messages are pooled pnode state machines; the oracle and the
// per-base busy serialization are flat open-addressed tables. Steady-state
// guarded traffic allocates nothing.
package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/spm"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Served identifies which storage satisfied a guarded access.
type Served int

const (
	// ServedCache means the L1/GM path provided the data (Fig. 5a/5c).
	ServedCache Served = iota
	// ServedLocalSPM means the access was diverted to the local SPM (5b).
	ServedLocalSPM
	// ServedRemoteSPM means a remote SPM served the access (5d).
	ServedRemoteSPM
)

func (s Served) String() string {
	switch s {
	case ServedCache:
		return "cache"
	case ServedLocalSPM:
		return "local-spm"
	case ServedRemoteSPM:
		return "remote-spm"
	default:
		return fmt.Sprintf("Served(%d)", int(s))
	}
}

// GM abstracts the coherent cache path used by guarded accesses
// (implemented by coherence.Hierarchy).
type GM interface {
	Read(core int, addr, pc uint64, done sim.Cont)
	Write(core int, addr, pc uint64, done sim.Cont)
}

// RecheckHook is the LSQ ordering re-check of §3.4: invoked when a guarded
// access hits in the local SPMDir and its effective address changes to an
// SPM address. The CPU model re-checks ordering against the new address and
// reports whether a pipeline flush was triggered.
type RecheckHook func(core int, spmAddr uint64, isStore bool) bool

// message sizes (bytes).
const (
	ctrlBytes = 8
	dataBytes = 72
)

// Interned counter handles (resolved once at package init).
var (
	protReg = stats.NewReg()

	hGuardedAcc  = protReg.Handle("guarded.accesses")
	hDiscarded   = protReg.Handle("guarded.l1_probe_discarded")
	hSPMDirLk    = protReg.Handle("spmdir.lookups")
	hSPMDirHit   = protReg.Handle("spmdir.hits")
	hSPMDirRHit  = protReg.Handle("spmdir.remote_hits")
	hSPMDirUpd   = protReg.Handle("spmdir.updates")
	hFilterLk    = protReg.Handle("filter.lookups")
	hFilterHit   = protReg.Handle("filter.hits")
	hFilterMiss  = protReg.Handle("filter.misses")
	hFilterIns   = protReg.Handle("filter.inserts")
	hFilterEvict = protReg.Handle("filter.evictions")
	hFilterInval = protReg.Handle("filter.invalidations")
	hFDirLk      = protReg.Handle("fdir.lookups")
	hFDirBcast   = protReg.Handle("fdir.broadcasts")
	hFDirEvict   = protReg.Handle("fdir.evictions")
	hLSQFlush    = protReg.Handle("lsq.flushes")
)

// Protocol is the chip-wide SPM coherence engine.
type Protocol struct {
	eng  *sim.Engine
	cfg  config.Config
	mesh *noc.Mesh
	gm   GM
	spms []*spm.SPM
	amap spm.AddressMap

	ideal bool

	// Per-core Base/Offset mask registers (§3.1).
	bufSize    []int
	baseMask   []uint64
	offsetMask []uint64

	spmdirs []*spmDir
	filters []*filter
	fdir    []*fdirSlice

	// oracle is the authoritative chunk-mapping table. The real protocol
	// never reads it to divert accesses (only its CAMs); it backs the
	// ideal-coherence configuration and invariant checks.
	oracle oracleTab

	recheck RecheckHook

	set *stats.Counters

	// tr, when set, wraps guarded accesses in trace spans. Nil on untraced
	// runs: one pointer check per access.
	tr *telemetry.Trace

	freeG *gtxn
	freeP *pnode
}

// SetTrace enables event tracing on the protocol.
func (p *Protocol) SetTrace(tr *telemetry.Trace) { p.tr = tr }

// spmDir is one core's SPMDir: entry index == buffer number (§3.1).
type spmDir struct {
	base  []uint64
	valid []bool
}

func newSPMDir(entries int) *spmDir {
	return &spmDir{base: make([]uint64, entries), valid: make([]bool, entries)}
}

// lookup CAM-searches for a GM base address.
func (d *spmDir) lookup(base uint64) (bufIdx int, ok bool) {
	for i, b := range d.base {
		if d.valid[i] && b == base {
			return i, true
		}
	}
	return 0, false
}

func (d *spmDir) set(bufIdx int, base uint64) {
	d.base[bufIdx] = base
	d.valid[bufIdx] = true
}

// filter is one core's fully-associative pseudoLRU filter CAM.
type filter struct {
	base []uint64
	use  []uint64 // recency stamps (pseudoLRU approximated by LRU here)
	tick uint64
}

func newFilter(entries int) *filter {
	return &filter{base: make([]uint64, entries), use: make([]uint64, entries)}
}

// lookup searches for base, refreshing recency on hit.
func (f *filter) lookup(base uint64) bool {
	for i, b := range f.base {
		if f.use[i] != 0 && b == base {
			f.tick++
			f.use[i] = f.tick
			return true
		}
	}
	return false
}

// insert adds base, evicting the least recent entry. It returns the evicted
// base and whether an eviction occurred.
func (f *filter) insert(base uint64) (evicted uint64, wasValid bool) {
	victim, oldest := 0, ^uint64(0)
	for i := range f.base {
		if f.use[i] == 0 {
			victim, oldest = i, 0
			break
		}
		if f.use[i] < oldest {
			victim, oldest = i, f.use[i]
		}
	}
	evicted, wasValid = f.base[victim], f.use[victim] != 0 && oldest != 0
	f.tick++
	f.base[victim] = base
	f.use[victim] = f.tick
	return evicted, wasValid
}

// invalidate removes base if present.
func (f *filter) invalidate(base uint64) bool {
	for i, b := range f.base {
		if f.use[i] != 0 && b == base {
			f.use[i] = 0
			return true
		}
	}
	return false
}

// valid counts live entries (tests).
func (f *filter) validCount() int {
	n := 0
	for _, u := range f.use {
		if u != 0 {
			n++
		}
	}
	return n
}

// fdirSlice is one distributed slice of the FilterDir: a CAM of base
// addresses with sharer bit-vectors, LRU-replaced. busy serializes
// transactions per base address.
type fdirSlice struct {
	node    int
	base    []uint64
	sharers []uint64
	use     []uint64
	tick    uint64
	busy    busyTab
}

func newFDirSlice(node, entries int) *fdirSlice {
	s := &fdirSlice{
		node:    node,
		base:    make([]uint64, entries),
		sharers: make([]uint64, entries),
		use:     make([]uint64, entries),
	}
	s.busy.init(16)
	return s
}

func (s *fdirSlice) find(base uint64) int {
	for i, b := range s.base {
		if s.use[i] != 0 && b == base {
			return i
		}
	}
	return -1
}

func (s *fdirSlice) touch(i int) {
	s.tick++
	s.use[i] = s.tick
}

// insert allocates an entry for base, returning a victim (base + sharers)
// when a valid entry had to be displaced.
func (s *fdirSlice) insert(base uint64, sharerBit uint64) (victimBase, victimSharers uint64, evicted bool) {
	victim, oldest := 0, ^uint64(0)
	for i := range s.base {
		if s.use[i] == 0 {
			victim, oldest = i, 0
			break
		}
		if s.use[i] < oldest {
			victim, oldest = i, s.use[i]
		}
	}
	if oldest != 0 {
		victimBase, victimSharers, evicted = s.base[victim], s.sharers[victim], true
	}
	s.tick++
	s.base[victim] = base
	s.sharers[victim] = sharerBit
	s.use[victim] = s.tick
	return victimBase, victimSharers, evicted
}

func (s *fdirSlice) remove(i int) { s.use[i] = 0; s.sharers[i] = 0 }

// ---------------------------------------------------------------------------
// Open-addressed tables (linear probing, backward-shift deletion).

// busyTab serializes FilterDir transactions per base: an entry exists while
// a transaction holds the base, and queued transactions wait on an intrusive
// deque of pnodes.
type busyTab struct {
	mask  uint64
	count int
	slots []busySlot
}

type busySlot struct {
	base uint64
	used bool
	head *pnode
	tail *pnode
}

func (b *busyTab) init(size int) {
	b.slots = make([]busySlot, size)
	b.mask = uint64(size - 1)
}

func (b *busyTab) ideal(base uint64) uint64 {
	return (base * 0x9E3779B97F4A7C15) & b.mask
}

func (b *busyTab) find(base uint64) int {
	for i := b.ideal(base); ; i = (i + 1) & b.mask {
		s := &b.slots[i]
		if !s.used {
			return -1
		}
		if s.base == base {
			return int(i)
		}
	}
}

// acquire marks base busy, returning false when it already was.
func (b *busyTab) acquire(base uint64) bool {
	if b.find(base) >= 0 {
		return false
	}
	if b.count*4 >= len(b.slots)*3 {
		b.grow()
	}
	i := b.ideal(base)
	for b.slots[i].used {
		i = (i + 1) & b.mask
	}
	b.slots[i] = busySlot{base: base, used: true}
	b.count++
	return true
}

func (b *busyTab) grow() {
	old := b.slots
	b.slots = make([]busySlot, 2*len(old))
	b.mask = uint64(len(b.slots) - 1)
	for i := range old {
		if !old[i].used {
			continue
		}
		j := b.ideal(old[i].base)
		for b.slots[j].used {
			j = (j + 1) & b.mask
		}
		b.slots[j] = old[i]
	}
}

// queue appends n to base's waiting deque (base must be busy).
func (b *busyTab) queue(base uint64, n *pnode) {
	s := &b.slots[b.find(base)]
	n.next = nil
	if s.tail == nil {
		s.head = n
	} else {
		s.tail.next = n
	}
	s.tail = n
}

// release removes base's entry and returns the head of its waiting deque.
func (b *busyTab) release(base uint64) *pnode {
	i := b.find(base)
	if i < 0 {
		return nil
	}
	head := b.slots[i].head
	b.del(uint64(i))
	return head
}

func (b *busyTab) del(i uint64) {
	b.count--
	j := i
	for {
		b.slots[i] = busySlot{}
		for {
			j = (j + 1) & b.mask
			s := &b.slots[j]
			if !s.used {
				return
			}
			k := b.ideal(s.base)
			if (j >= i && (k <= i || k > j)) || (j < i && k <= i && k > j) {
				b.slots[i] = *s
				i = j
				break
			}
		}
	}
}

// oracleTab maps a GM base address to its current SPM mapping.
type oracleTab struct {
	mask  uint64
	count int
	slots []oracleSlot
}

type oracleSlot struct {
	base   uint64
	used   bool
	core   int32
	bufIdx int32
}

func (o *oracleTab) init(size int) {
	o.slots = make([]oracleSlot, size)
	o.mask = uint64(size - 1)
}

func (o *oracleTab) ideal(base uint64) uint64 {
	return (base * 0x9E3779B97F4A7C15) & o.mask
}

func (o *oracleTab) find(base uint64) int {
	for i := o.ideal(base); ; i = (i + 1) & o.mask {
		s := &o.slots[i]
		if !s.used {
			return -1
		}
		if s.base == base {
			return int(i)
		}
	}
}

func (o *oracleTab) get(base uint64) (core, bufIdx int, ok bool) {
	i := o.find(base)
	if i < 0 {
		return 0, 0, false
	}
	return int(o.slots[i].core), int(o.slots[i].bufIdx), true
}

func (o *oracleTab) put(base uint64, core, bufIdx int) {
	if i := o.find(base); i >= 0 {
		o.slots[i].core = int32(core)
		o.slots[i].bufIdx = int32(bufIdx)
		return
	}
	if o.count*4 >= len(o.slots)*3 {
		o.grow()
	}
	i := o.ideal(base)
	for o.slots[i].used {
		i = (i + 1) & o.mask
	}
	o.slots[i] = oracleSlot{base: base, used: true, core: int32(core), bufIdx: int32(bufIdx)}
	o.count++
}

func (o *oracleTab) grow() {
	old := o.slots
	o.slots = make([]oracleSlot, 2*len(old))
	o.mask = uint64(len(o.slots) - 1)
	for i := range old {
		if !old[i].used {
			continue
		}
		j := o.ideal(old[i].base)
		for o.slots[j].used {
			j = (j + 1) & o.mask
		}
		o.slots[j] = old[i]
	}
}

func (o *oracleTab) delete(base uint64) {
	i := o.find(base)
	if i < 0 {
		return
	}
	o.count--
	j := uint64(i)
	k := j
	for {
		o.slots[j] = oracleSlot{}
		for {
			k = (k + 1) & o.mask
			s := &o.slots[k]
			if !s.used {
				return
			}
			h := o.ideal(s.base)
			if (k >= j && (h <= j || h > k)) || (k < j && h <= j && h > k) {
				o.slots[j] = *s
				j = k
				break
			}
		}
	}
}

// New builds the protocol engine. spms must hold one SPM per core; amap is
// the chip's SPM address map. ideal selects the oracle coherence used as
// the Fig. 7 baseline.
func New(eng *sim.Engine, cfg config.Config, mesh *noc.Mesh, gm GM, spms []*spm.SPM, amap spm.AddressMap, ideal bool) *Protocol {
	if len(spms) != cfg.Cores {
		panic(fmt.Sprintf("core: %d SPMs for %d cores", len(spms), cfg.Cores))
	}
	p := &Protocol{
		eng:        eng,
		cfg:        cfg,
		mesh:       mesh,
		gm:         gm,
		spms:       spms,
		amap:       amap,
		ideal:      ideal,
		bufSize:    make([]int, cfg.Cores),
		baseMask:   make([]uint64, cfg.Cores),
		offsetMask: make([]uint64, cfg.Cores),
		set:        protReg.NewCounters("spmcoh"),
	}
	p.oracle.init(64)
	perSlice := cfg.FilterDirEntries / cfg.Cores
	if perSlice <= 0 {
		perSlice = 1
	}
	for i := 0; i < cfg.Cores; i++ {
		p.spmdirs = append(p.spmdirs, newSPMDir(cfg.SPMDirEntries))
		p.filters = append(p.filters, newFilter(cfg.FilterEntries))
		p.fdir = append(p.fdir, newFDirSlice(i, perSlice))
		p.SetBufSize(i, cfg.SPMSize) // sane default: one buffer
	}
	return p
}

// SetRecheckHook installs the LSQ re-check callback (§3.4).
func (p *Protocol) SetRecheckHook(h RecheckHook) { p.recheck = h }

// Stats returns the protocol counter set.
func (p *Protocol) Stats() *stats.Counters { return p.set }

// SetBufSize programs core's Base/Offset mask registers for buffer size
// bytes (a power of two). Emitted by the runtime before each loop (§3.1).
func (p *Protocol) SetBufSize(core, bytes int) {
	if bytes <= 0 || bytes&(bytes-1) != 0 {
		panic(fmt.Sprintf("core: buffer size %d not a power of two", bytes))
	}
	if n := p.cfg.SPMSize / bytes; n > p.cfg.SPMDirEntries {
		panic(fmt.Sprintf("core: %d buffers exceed %d SPMDir entries", n, p.cfg.SPMDirEntries))
	}
	p.bufSize[core] = bytes
	p.offsetMask[core] = uint64(bytes - 1)
	p.baseMask[core] = ^p.offsetMask[core]
}

// BufSize returns core's configured buffer size.
func (p *Protocol) BufSize(core int) int { return p.bufSize[core] }

// fdirHome returns the FilterDir slice owning a base address. Bases are
// buffer-size aligned, so interleave on the chunk number (fork-join code
// uses one buffer size chip-wide, §3.1).
func (p *Protocol) fdirHome(base uint64) *fdirSlice {
	return p.fdir[(base/uint64(p.bufSize[0]))%uint64(len(p.fdir))]
}

// ---------------------------------------------------------------------------
// Pooled transaction nodes

// gtxn is one pooled guarded-access transaction. Its three concurrent
// strands in the filter-miss case — the buffered cache access, the FilterDir
// resolution, and the remote-SPM data — are pre-wired sub-continuations, so
// the whole Fig. 5 casuistic runs without allocating. refs counts strands in
// flight: the node recycles when the access completed and every strand fired
// (a discarded buffered load can complete after the access itself).
type gtxn struct {
	p    *Protocol
	next *gtxn

	done  sim.Cont     // hot path: Served is irrelevant to the CPU
	doneS func(Served) // compat path (tests): receives which storage served

	kind uint8
	step uint8
	refs int8

	isStore bool
	// Filter-miss resolution state (the captured variables of Fig. 5c/5d).
	resolved      bool
	completed     bool
	cacheDone     bool
	remoteArrived bool
	mappedStaged  bool // resolution outcome, read when the response arrives
	resolution    Served

	core int
	aux  int // remote core (ideal path)
	base uint64

	cacheSub  subCont
	resSub    subCont
	remoteSub subCont
}

// gtxn kinds for the main continuation.
const (
	gCache       uint8 = iota // gm access completion serves the access
	gLocal                    // local SPM access completion
	gIdealRemote              // oracle remote-SPM round trip
	gMiss                     // filter miss: only sub-strands fire
)

// sub-strand kinds.
const (
	subCache uint8 = iota
	subRes
	subRemote
)

// subCont adapts one strand of a gtxn to sim.Cont without allocation.
type subCont struct {
	t    *gtxn
	kind uint8
}

func (s *subCont) Fire() { s.t.subFire(s.kind) }

func (p *Protocol) allocGtxn() *gtxn {
	t := p.freeG
	if t != nil {
		p.freeG = t.next
		t.next = nil
		t.kind, t.step, t.refs = 0, 0, 0
		t.resolved, t.completed, t.cacheDone = false, false, false
		t.remoteArrived, t.mappedStaged = false, false
		t.resolution = ServedCache
	} else {
		t = &gtxn{p: p}
		t.cacheSub = subCont{t: t, kind: subCache}
		t.resSub = subCont{t: t, kind: subRes}
		t.remoteSub = subCont{t: t, kind: subRemote}
	}
	return t
}

func (p *Protocol) freeGtxn(t *gtxn) {
	t.done = nil
	t.doneS = nil
	t.next = p.freeG
	p.freeG = t
}

// serve fires the completion callback and recycles single-strand nodes.
func (t *gtxn) serve(s Served) {
	p := t.p
	d, ds := t.done, t.doneS
	p.freeGtxn(t)
	if ds != nil {
		ds(s)
	} else {
		d.Fire()
	}
}

// Fire advances the main continuation (hit paths and the ideal protocol).
func (t *gtxn) Fire() {
	p := t.p
	switch t.kind {
	case gCache:
		t.serve(ServedCache)
	case gLocal:
		t.serve(ServedLocalSPM)
	case gIdealRemote:
		switch t.step {
		case 0:
			t.step = 1
			p.spms[t.aux].RemoteAccess(t.isStore, t)
		case 1:
			size := dataBytes
			if t.isStore {
				size = ctrlBytes
			}
			t.step = 2
			p.mesh.SendCont(t.aux, t.core, size, noc.CohProt, t)
		case 2:
			t.serve(ServedRemoteSPM)
		}
	default:
		panic(fmt.Sprintf("core: bad gtxn kind %d", t.kind))
	}
}

// subFire handles one filter-miss strand completing.
func (t *gtxn) subFire(k uint8) {
	p := t.p
	t.refs--
	switch k {
	case subCache:
		t.cacheDone = true
	case subRes:
		t.resolved = true
		if t.mappedStaged {
			t.resolution = ServedRemoteSPM
		} else {
			t.resolution = ServedCache
			p.filterInsert(t.core, t.base)
		}
	case subRemote:
		t.remoteArrived = true
		t.resolved = true
		t.resolution = ServedRemoteSPM
	}
	t.finishIfReady()
	if t.refs == 0 && t.completed {
		p.freeGtxn(t)
	}
}

// finishIfReady applies the completion rules of Fig. 5c/5d: a cache
// resolution retires when the buffered access is done; a remote-SPM
// resolution retires on data arrival (stores also wait for the parallel L1
// write; loads discard it without waiting).
func (t *gtxn) finishIfReady() {
	if !t.resolved || t.completed {
		return
	}
	switch t.resolution {
	case ServedCache:
		if t.cacheDone {
			t.completed = true
			t.fire(ServedCache)
		}
	case ServedRemoteSPM:
		if t.remoteArrived && (t.cacheDone || !t.isStore) {
			t.completed = true
			t.fire(ServedRemoteSPM)
		}
	}
}

func (t *gtxn) fire(s Served) {
	if t.doneS != nil {
		t.doneS(s)
		return
	}
	t.done.Fire()
}

// pnode is a pooled protocol-message node: FilterDir transactions, SPMDir
// broadcast probes, filter invalidations and eviction notices.
type pnode struct {
	p      *Protocol
	next   *pnode
	gt     *gtxn
	parent *pnode
	kind   uint8
	step   uint8
	flag   bool // isStore
	mapped bool
	core   int // requesting core
	aux    int // probe / invalidation target core
	base   uint64
	pend   int
	anyMap bool
}

const (
	pkNotify      uint8 = iota // dma-get map notice at the FilterDir home
	pkFInv                     // filter invalidation at one core
	pkEvict                    // filter-eviction sharer clear at the home
	pkResolve                  // FilterDir resolve transaction (Fig. 6b)
	pkBroadcast                // one SPMDir probe strand (step 0 probe, 1 ack)
	pkRemoteServe              // remote SPM served; data/ack to the requester
)

func (p *Protocol) allocPnode() *pnode {
	n := p.freeP
	if n != nil {
		p.freeP = n.next
		*n = pnode{p: p}
	} else {
		n = &pnode{p: p}
	}
	return n
}

func (p *Protocol) freePnode(n *pnode) {
	n.gt = nil
	n.parent = nil
	n.next = p.freeP
	p.freeP = n
}

func (n *pnode) Fire() {
	p := n.p
	switch n.kind {
	case pkNotify:
		home := p.fdirHome(n.base)
		base := n.base
		p.freePnode(n)
		p.set.Inc(hFDirLk)
		i := home.find(base)
		if i < 0 {
			return // nobody filters it; nothing to do
		}
		sharers := home.sharers[i]
		home.remove(i)
		p.invalidateFilters(home.node, base, sharers)
	case pkFInv:
		aux, base := n.aux, n.base
		p.freePnode(n)
		if p.filters[aux].invalidate(base) {
			p.set.Inc(hFilterInval)
		}
	case pkEvict:
		home := p.fdirHome(n.base)
		base, core := n.base, n.core
		p.freePnode(n)
		if i := home.find(base); i >= 0 {
			home.sharers[i] &^= 1 << uint(core)
		}
	case pkResolve:
		p.resolveStep(n)
	case pkBroadcast:
		p.broadcastStep(n)
	case pkRemoteServe:
		gt, c, req, isStore := n.gt, n.aux, n.core, n.flag
		p.freePnode(n)
		size := dataBytes
		if isStore {
			size = ctrlBytes // store ack
		}
		p.mesh.SendCont(c, req, size, noc.CohProt, &gt.remoteSub)
	default:
		panic(fmt.Sprintf("core: bad pnode kind %d", n.kind))
	}
}

// ---------------------------------------------------------------------------
// Tracking SPM contents (paper §3.3)

// NotifyMap implements dma.MapNotifier: a dma-get maps the chunk at gmAddr
// into core's SPM buffer at spmAddr. The SPMDir is updated and every filter
// caching the base address is invalidated through the FilterDir (Fig. 6a).
func (p *Protocol) NotifyMap(core int, gmAddr, spmAddr uint64, bytes int) {
	base := gmAddr & p.baseMask[core]
	bufIdx := int(p.amap.Offset(spmAddr)) / p.bufSize[core]

	// Reusing a buffer unmaps its previous chunk.
	d := p.spmdirs[core]
	if d.valid[bufIdx] {
		old := d.base[bufIdx]
		if c, b, ok := p.oracle.get(old); ok && c == core && b == bufIdx {
			p.oracle.delete(old)
		}
	}
	// Array sections are private to one thread (fork-join, §2.2), so a
	// chunk lives in at most one SPM. Re-mapping by another core migrates
	// it: the previous mapper's SPMDir entry is cleared.
	if pc, pb, ok := p.oracle.get(base); ok && pc != core {
		pd := p.spmdirs[pc]
		if pd.valid[pb] && pd.base[pb] == base {
			pd.valid[pb] = false
		}
	}
	d.set(bufIdx, base)
	p.oracle.put(base, core, bufIdx)
	p.set.Inc(hSPMDirUpd)

	if p.ideal {
		return // oracle coherence: no structures to maintain
	}

	// Fig. 6a: invalidation message to the FilterDir home, which fans out
	// to every core in the sharer list.
	home := p.fdirHome(base)
	n := p.allocPnode()
	n.kind = pkNotify
	n.base = base
	p.mesh.SendCont(core, home.node, ctrlBytes, noc.CohProt, n)
}

// invalidateFilters sends filter-invalidation messages from the FilterDir
// node to every sharer core.
func (p *Protocol) invalidateFilters(fromNode int, base uint64, sharers uint64) {
	for c := 0; c < p.cfg.Cores; c++ {
		if sharers&(1<<uint(c)) == 0 {
			continue
		}
		n := p.allocPnode()
		n.kind = pkFInv
		n.aux = c
		n.base = base
		p.mesh.SendCont(fromNode, c, ctrlBytes, noc.CohProt, n)
	}
}

// Mapped reports where a GM base address is currently mapped (oracle view;
// used by tests, the ideal protocol, and assertions).
func (p *Protocol) Mapped(base uint64) (core int, ok bool) {
	core, _, ok = p.oracle.get(base)
	return core, ok
}

// ---------------------------------------------------------------------------
// Guarded accesses (paper §3.2, Fig. 5)

// GuardedAccess executes a potentially incoherent access for core at GM
// virtual address addr. done receives which storage served it. Callers that
// do not care which storage served the access should use GuardedAccessCont.
func (p *Protocol) GuardedAccess(core int, addr, pc uint64, isStore bool, done func(Served)) {
	t := p.allocGtxn()
	t.core = core
	t.isStore = isStore
	t.doneS = done
	p.guarded(t, addr, pc)
}

// GuardedAccessCont is the allocation-free fast path: done fires when the
// access completes, whichever storage served it.
func (p *Protocol) GuardedAccessCont(core int, addr, pc uint64, isStore bool, done sim.Cont) {
	if done == nil {
		done = sim.Nop
	}
	if p.tr != nil {
		var st uint64
		if isStore {
			st = 1
		}
		done = p.tr.Span(telemetry.KGuarded, core, addr, st, done)
	}
	t := p.allocGtxn()
	t.core = core
	t.isStore = isStore
	t.done = done
	p.guarded(t, addr, pc)
}

func (p *Protocol) guarded(t *gtxn, addr, pc uint64) {
	core, isStore := t.core, t.isStore
	p.set.Inc(hGuardedAcc)
	base := addr & p.baseMask[core]
	off := addr & p.offsetMask[core]
	t.base = base

	if p.ideal {
		p.idealAccess(t, addr, pc, base, off)
		return
	}

	// The filter and SPMDir CAMs are probed in parallel with the normal
	// TLB+L1 path (their latency hides behind it).
	p.set.Inc(hSPMDirLk)
	p.set.Inc(hFilterLk)

	if bufIdx, ok := p.spmdirs[core].lookup(base); ok {
		// Fig. 5b — mapped to the local SPM.
		p.set.Inc(hSPMDirHit)
		p.localSPMAccess(t, bufIdx, off, pc, addr)
		return
	}

	if p.filters[core].lookup(base) {
		// Fig. 5a — known not mapped anywhere: the L1 serves it.
		p.set.Inc(hFilterHit)
		t.kind = gCache
		p.cacheAccess(core, addr, pc, isStore, t)
		return
	}

	// Fig. 5c/5d — both CAMs missed: ask the FilterDir. The cache access
	// proceeds in parallel and is buffered in the MSHR (loads) until the
	// resolution arrives.
	p.set.Inc(hFilterMiss)
	t.kind = gMiss
	t.refs = 2 // cache strand + resolution strand
	p.cacheAccess(core, addr, pc, isStore, &t.cacheSub)

	home := p.fdirHome(base)
	r := p.allocPnode()
	r.kind = pkResolve
	r.gt = t
	r.core = core
	r.base = base
	r.flag = isStore
	p.mesh.SendCont(core, home.node, ctrlBytes, noc.CohProt, r)
}

// localSPMAccess is Fig. 5b: divert to the local SPM. The parallel L1 access
// result is discarded for loads; guarded stores always also write the L1
// (they may alias a read-only SPM buffer that will never be written back).
func (p *Protocol) localSPMAccess(t *gtxn, bufIdx int, off, pc, gmAddr uint64) {
	core, isStore := t.core, t.isStore
	spmAddr := p.amap.AddrFor(core, uint64(bufIdx)*uint64(p.bufSize[core])+off)
	if p.recheck != nil && p.recheck(core, spmAddr, isStore) {
		p.set.Inc(hLSQFlush)
	}
	p.set.Inc(hDiscarded)
	if isStore {
		p.cacheAccess(core, gmAddr, pc, true, sim.Nop)
	}
	t.kind = gLocal
	p.spms[core].Access(isStore, t)
}

// cacheAccess issues the normal coherent GM access for a guarded
// instruction.
func (p *Protocol) cacheAccess(core int, addr, pc uint64, isStore bool, done sim.Cont) {
	if isStore {
		p.gm.Write(core, addr, pc, done)
	} else {
		p.gm.Read(core, addr, pc, done)
	}
}

// filterInsert caches "base is unmapped" in core's filter, notifying the
// FilterDir when a valid entry is displaced (§3.3).
func (p *Protocol) filterInsert(core int, base uint64) {
	evicted, wasValid := p.filters[core].insert(base)
	p.set.Inc(hFilterIns)
	if !wasValid {
		return
	}
	p.set.Inc(hFilterEvict)
	home := p.fdirHome(evicted)
	n := p.allocPnode()
	n.kind = pkEvict
	n.core = core
	n.base = evicted
	p.mesh.SendCont(core, home.node, ctrlBytes, noc.CohProt, n)
}

// resolveStep runs the FilterDir side of a filter miss (Fig. 6b). The node
// arrives at the home slice, serializes on the base, and either ACKs
// directly (FilterDir hit: not mapped) or broadcasts to every SPMDir.
func (p *Protocol) resolveStep(n *pnode) {
	home := p.fdirHome(n.base)
	req, base := n.core, n.base

	// Serialize transactions on the same base at the home slice.
	if !home.busy.acquire(base) {
		home.busy.queue(base, n)
		return
	}

	p.set.Inc(hFDirLk)
	if i := home.find(base); i >= 0 {
		// FilterDir hit: not mapped to any SPM. Add sharer, ACK.
		home.sharers[i] |= 1 << uint(req)
		home.touch(i)
		gt := n.gt
		p.freePnode(n)
		gt.mappedStaged = false
		p.mesh.SendCont(home.node, req, ctrlBytes, noc.CohProt, &gt.resSub)
		p.releaseBusy(home, base)
		return
	}

	// FilterDir miss: broadcast to every core's SPMDir (Fig. 6b step 3).
	p.set.Inc(hFDirBcast)
	n.pend = p.cfg.Cores
	n.anyMap = false
	for c := 0; c < p.cfg.Cores; c++ {
		bc := p.allocPnode()
		bc.kind = pkBroadcast
		bc.parent = n
		bc.gt = n.gt
		bc.core = req
		bc.aux = c
		bc.base = base
		bc.flag = n.flag
		p.mesh.SendCont(home.node, c, ctrlBytes, noc.CohProt, bc)
	}
}

// releaseBusy unlocks base at the home slice and reschedules every deferred
// transaction; they re-enter resolveStep and re-serialize in order.
func (p *Protocol) releaseBusy(home *fdirSlice, base uint64) {
	for n := home.busy.release(base); n != nil; {
		nx := n.next
		n.next = nil
		p.eng.ScheduleCont(0, n)
		n = nx
	}
}

// broadcastStep runs one SPMDir probe strand: step 0 probes core aux, step 1
// delivers the ack at the home slice; the last ack resolves the transaction.
func (p *Protocol) broadcastStep(n *pnode) {
	home := p.fdirHome(n.base)
	if n.step == 0 {
		c, base, req, isStore := n.aux, n.base, n.core, n.flag
		p.set.Inc(hSPMDirLk)
		_, ok := p.spmdirs[c].lookup(base)
		if ok {
			// Normally a remote core; c == req can happen only when
			// a dma-get mapped the chunk locally while this access
			// was in flight — the local SPM then serves it through
			// the same path.
			p.set.Inc(hSPMDirRHit)
			// Fig. 5d: this SPM serves the access directly and
			// responds to the requesting core.
			rs := p.allocPnode()
			rs.kind = pkRemoteServe
			rs.gt = n.gt
			rs.core = req
			rs.aux = c
			rs.flag = isStore
			n.gt.refs++
			p.spms[c].RemoteAccess(isStore, rs)
		}
		// ...and ACK the probe result to the FilterDir.
		n.step = 1
		n.mapped = ok
		p.mesh.SendCont(c, home.node, ctrlBytes, noc.CohProt, n)
		return
	}

	parent := n.parent
	mapped := n.mapped
	p.freePnode(n)
	if mapped {
		parent.anyMap = true
	}
	parent.pend--
	if parent.pend > 0 {
		return
	}

	req, base, gt, anyMap := parent.core, parent.base, parent.gt, parent.anyMap
	p.freePnode(parent)
	if anyMap {
		// Mapped to a remote SPM: NACK the requester (no filter
		// update); the remote core serves the access.
		gt.mappedStaged = true
		p.mesh.SendCont(home.node, req, ctrlBytes, noc.CohProt, &gt.resSub)
		p.releaseBusy(home, base)
		return
	}
	// Nobody maps it: insert into the FilterDir with the requester as
	// first sharer; evictions invalidate filters.
	vb, vs, evicted := home.insert(base, 1<<uint(req))
	if evicted {
		p.set.Inc(hFDirEvict)
		p.invalidateFilters(home.node, vb, vs)
	}
	gt.mappedStaged = false
	p.mesh.SendCont(home.node, req, ctrlBytes, noc.CohProt, &gt.resSub)
	p.releaseBusy(home, base)
}

// idealAccess resolves a guarded access with oracle knowledge: no CAMs, no
// protocol traffic (paper §5.3's "ideal coherence" baseline). Data that
// physically lives in a remote SPM still has to cross the NoC.
func (p *Protocol) idealAccess(t *gtxn, addr, pc, base, off uint64) {
	core, isStore := t.core, t.isStore
	ocore, obuf, ok := p.oracle.get(base)
	switch {
	case !ok:
		t.kind = gCache
		p.cacheAccess(core, addr, pc, isStore, t)
	case ocore == core:
		if p.recheck != nil && p.recheck(core, p.amap.AddrFor(core, uint64(obuf)*uint64(p.bufSize[core])+off), isStore) {
			p.set.Inc(hLSQFlush)
		}
		if isStore {
			p.cacheAccess(core, addr, pc, true, sim.Nop)
		}
		t.kind = gLocal
		p.spms[core].Access(isStore, t)
	default:
		t.kind = gIdealRemote
		t.aux = ocore
		p.mesh.SendCont(core, ocore, ctrlBytes, noc.CohProt, t)
		if isStore {
			p.cacheAccess(core, addr, pc, true, sim.Nop)
		}
	}
}

// ---------------------------------------------------------------------------
// Derived statistics

// FilterHitRatio returns hits/(hits+misses) over filter lookups that reached
// the filter (i.e. SPMDir misses) — the quantity of paper Fig. 8. Returns 1
// when the filter was never exercised (e.g. SP has no guarded accesses).
func (p *Protocol) FilterHitRatio() float64 {
	h := p.set.Val(hFilterHit)
	m := p.set.Val(hFilterMiss)
	if h+m == 0 {
		return 1
	}
	return float64(h) / float64(h+m)
}

// FilterValidCount returns live entries in core's filter (tests).
func (p *Protocol) FilterValidCount(core int) int { return p.filters[core].validCount() }

// SPMDirEntry exposes core's SPMDir entry bufIdx (tests).
func (p *Protocol) SPMDirEntry(core, bufIdx int) (base uint64, valid bool) {
	d := p.spmdirs[core]
	return d.base[bufIdx], d.valid[bufIdx]
}
