package system

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workloads"
)

// specVariants enumerates every combination of the optional Spec fields
// (Cores, Seed, FilterEntries, MaxEvents set or zero) over a couple of
// base (system, benchmark, scale) triples — 2 x 16 Specs.
func specVariants() []Spec {
	bases := []Spec{
		{System: config.CacheBased, Benchmark: "EP", Scale: workloads.Tiny},
		{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Small},
	}
	var out []Spec
	for _, base := range bases {
		for mask := 0; mask < 16; mask++ {
			s := base
			if mask&1 != 0 {
				s.Cores = 8
			}
			if mask&2 != 0 {
				s.Seed = 12345
			}
			if mask&4 != 0 {
				s.FilterEntries = 16
			}
			if mask&8 != 0 {
				s.MaxEvents = 1 << 20
			}
			out = append(out, s)
		}
	}
	return out
}

// TestSpecJSONRoundTrip pins the service wire contract: marshal →
// unmarshal must reproduce the Spec exactly — same struct, same Key, same
// canonical Hash — for every optional-field combination.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, s := range specVariants() {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%s: marshal: %v", s.Key(), err)
		}
		var got Spec
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("%s: unmarshal %s: %v", s.Key(), b, err)
		}
		if got != s {
			t.Fatalf("round trip changed the Spec:\n got %+v\nwant %+v\nwire %s", got, s, b)
		}
		if got.Key() != s.Key() {
			t.Fatalf("round trip changed Key: %q vs %q", got.Key(), s.Key())
		}
		if got.Hash() != s.Hash() {
			t.Fatalf("round trip changed Hash: %q vs %q", got.Hash(), s.Hash())
		}
	}
}

// TestSpecJSONNamesNotEnums pins the wire encoding to stable names, so a
// reordered enum can never silently remap cached or in-flight runs.
func TestSpecJSONNamesNotEnums(t *testing.T) {
	s := Spec{System: config.HybridIdeal, Benchmark: "CG", Scale: workloads.Small}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"system":"hybrid-ideal"`, `"scale":"small"`, `"benchmark":"CG"`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("wire form %s missing %s", b, want)
		}
	}
}

func TestSpecJSONRejectsUnknownBenchmark(t *testing.T) {
	var s Spec
	err := json.Unmarshal([]byte(`{"system":"cache","benchmark":"LU","scale":"tiny"}`), &s)
	if err == nil || !strings.Contains(err.Error(), "LU") {
		t.Fatalf("err = %v, want unknown-benchmark rejection at decode time", err)
	}
}

func TestSpecJSONRejectsUnknownFields(t *testing.T) {
	var s Spec
	err := json.Unmarshal([]byte(`{"system":"cache","benchmark":"EP","scale":"tiny","turbo":true}`), &s)
	if err == nil || !strings.Contains(err.Error(), "turbo") {
		t.Fatalf("err = %v, want unknown-field rejection", err)
	}
}

func TestSpecJSONRejectsBadNames(t *testing.T) {
	cases := []string{
		`{"system":"quantum","benchmark":"EP","scale":"tiny"}`,
		`{"system":"cache","benchmark":"EP","scale":"huge"}`,
	}
	for _, body := range cases {
		var s Spec
		if err := json.Unmarshal([]byte(body), &s); err == nil {
			t.Fatalf("decoded %s without error", body)
		}
	}
}

// TestSpecSeedNormalization pins the satellite fix: an explicit
// Seed == DefaultSeed is the same run as the zero value and must share one
// cache identity, while a genuinely different seed must not.
func TestSpecSeedNormalization(t *testing.T) {
	implicit := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny}
	explicit := implicit
	explicit.Seed = DefaultSeed
	if implicit.Key() != explicit.Key() {
		t.Fatalf("equivalent Specs diverge: %q vs %q", implicit.Key(), explicit.Key())
	}
	if strings.Contains(explicit.Key(), "/s") {
		t.Fatalf("default seed leaked into Key %q", explicit.Key())
	}
	if implicit.Hash() != explicit.Hash() {
		t.Fatalf("equivalent Specs hash apart: %q vs %q", implicit.Hash(), explicit.Hash())
	}
	other := implicit
	other.Seed = 7
	if other.Key() == implicit.Key() || other.Hash() == implicit.Hash() {
		t.Fatal("a non-default seed did not change the cache identity")
	}
}

// TestSpecHashDistinguishesEveryField guards the canonical encoding: each
// result-affecting field must perturb the digest.
func TestSpecHashDistinguishesEveryField(t *testing.T) {
	base := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny}
	seen := map[string]string{base.Hash(): "base"}
	mutations := map[string]Spec{
		"system":    {System: config.CacheBased, Benchmark: "IS", Scale: workloads.Tiny},
		"benchmark": {System: config.HybridReal, Benchmark: "CG", Scale: workloads.Tiny},
		"scale":     {System: config.HybridReal, Benchmark: "IS", Scale: workloads.Small},
		"cores":     {System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny, Cores: 8},
		"seed":      {System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny, Seed: 9},
		"filter":    {System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny, FilterEntries: 8},
		"maxevents": {System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny, MaxEvents: 10},
	}
	for field, s := range mutations {
		h := s.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("mutating %s collides with %s (hash %s)", field, prev, h)
		}
		seen[h] = field
	}
}

// TestExecuteContextCancellation pins cooperative cancellation at the
// machine level: a dead context stops the run mid-simulation.
func TestExecuteContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := Spec{System: config.CacheBased, Benchmark: "EP", Scale: workloads.Tiny, Cores: 4}
	_, err := s.ExecuteContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSpecDefaultNormalization: spelling out a Table 1 default (cores,
// filter size) names the same run as leaving the field zero, so both must
// share one Key and one canonical Hash — same rule as the seed.
func TestSpecDefaultNormalization(t *testing.T) {
	base := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny}
	def := config.ForSystem(config.HybridReal)
	explicit := base
	explicit.Cores = def.Cores
	explicit.FilterEntries = def.FilterEntries
	if base.Key() != explicit.Key() {
		t.Fatalf("explicit defaults change Key: %q vs %q", explicit.Key(), base.Key())
	}
	if base.Hash() != explicit.Hash() {
		t.Fatalf("explicit defaults change Hash: %q vs %q", explicit.Hash(), base.Hash())
	}
	shrunk := base
	shrunk.Cores = 8
	if shrunk.Hash() == base.Hash() {
		t.Fatal("a real core-count override did not change the Hash")
	}
}

// TestSpecValidateRejectsNegativeOverrides: negative values would be
// ignored by Config yet perturb nothing but the wire form — reject them.
func TestSpecValidateRejectsNegativeOverrides(t *testing.T) {
	bad := []Spec{
		{System: config.CacheBased, Benchmark: "EP", Scale: workloads.Tiny, Cores: -4},
		{System: config.CacheBased, Benchmark: "EP", Scale: workloads.Tiny, FilterEntries: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", s)
		}
	}
	var s Spec
	if err := json.Unmarshal([]byte(`{"system":"cache","benchmark":"EP","scale":"tiny","cores":-4}`), &s); err == nil {
		t.Fatal("decode accepted a negative core count")
	}
}
