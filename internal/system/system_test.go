package system

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/noc"
	"repro/internal/workloads"
)

// smallCfg returns a 4-core machine of the given flavor.
func smallCfg(sys config.MemorySystem) config.Config {
	cfg := config.SmallTest()
	cfg.System = sys
	if sys == config.CacheBased {
		cfg.L1DSize = 8 << 10
	}
	return cfg
}

// microBench is a minimal 2-kernel benchmark exercising every access class.
func microBench() *compiler.Benchmark {
	a := &compiler.Array{Name: "a", Base: 0x100000, Size: 32 << 10}
	b := &compiler.Array{Name: "b", Base: 0x200000, Size: 32 << 10}
	g := &compiler.Array{Name: "g", Base: 0x300000, Size: 8 << 10}
	return &compiler.Benchmark{
		Name:    "micro",
		Repeats: 1,
		Arrays:  []*compiler.Array{a, b, g},
		Kernels: []compiler.Kernel{{
			Name:       "k",
			Iters:      4096,
			ComputeOps: 4,
			Refs: []compiler.Ref{
				{Name: "a", Array: a, Pattern: compiler.Strided, IsWrite: true},
				{Name: "b", Array: b, Pattern: compiler.Strided},
				{Name: "g", Array: g, Pattern: compiler.Random, MayAliasSPM: true,
					HotFraction: 0.8, HotBytes: 2 << 10},
				{Name: "sp", Pattern: compiler.Stack, IsWrite: true},
			},
		}},
	}
}

func runMicro(t *testing.T, sys config.MemorySystem) Results {
	t.Helper()
	m, err := Build(smallCfg(sys), microBench(), 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCacheBasedRuns(t *testing.T) {
	r := runMicro(t, config.CacheBased)
	if r.Cycles == 0 || r.Retired == 0 {
		t.Fatalf("empty results: %+v", r)
	}
	if r.NoCPackets[noc.DMA] != 0 {
		t.Fatal("cache-based machine produced DMA traffic")
	}
	if r.NoCPackets[noc.CohProt] != 0 {
		t.Fatal("cache-based machine produced CohProt traffic")
	}
	if r.Energy.SPMs != 0 || r.Energy.CohProt != 0 {
		t.Fatal("cache-based machine charged SPM/CohProt energy")
	}
	if r.PhaseCycles[isa.PhaseControl] != 0 || r.PhaseCycles[isa.PhaseSync] != 0 {
		t.Fatal("cache-based run attributed control/sync cycles")
	}
}

func TestHybridRealRuns(t *testing.T) {
	r := runMicro(t, config.HybridReal)
	if r.NoCPackets[noc.DMA] == 0 {
		t.Fatal("hybrid run produced no DMA traffic")
	}
	if r.NoCPackets[noc.CohProt] == 0 {
		t.Fatal("hybrid run produced no protocol traffic")
	}
	if r.PhaseCycles[isa.PhaseControl] == 0 || r.PhaseCycles[isa.PhaseSync] == 0 {
		t.Fatal("hybrid run missing control/sync phases")
	}
	if r.Energy.SPMs <= 0 || r.Energy.CohProt <= 0 {
		t.Fatalf("hybrid energy breakdown: %+v", r.Energy)
	}
	if r.FilterHitRatio <= 0 || r.FilterHitRatio > 1 {
		t.Fatalf("filter hit ratio = %v", r.FilterHitRatio)
	}
	if r.DMALineTransfers == 0 {
		t.Fatal("no DMA line transfers recorded")
	}
}

func TestHybridIdealHasNoProtocolCost(t *testing.T) {
	r := runMicro(t, config.HybridIdeal)
	if r.Energy.CohProt != 0 {
		t.Fatalf("ideal coherence charged CohProt energy: %v", r.Energy.CohProt)
	}
	if r.NoCPackets[noc.CohProt] != 0 {
		t.Fatal("ideal coherence generated protocol traffic (guarded data is unmapped here)")
	}
}

func TestRealProtocolCostsMoreThanIdeal(t *testing.T) {
	ideal := runMicro(t, config.HybridIdeal)
	real := runMicro(t, config.HybridReal)
	// Cycle counts on a 4-core micro-run can invert by a percent or two
	// from timing interactions; the robust claims are traffic and energy.
	if float64(real.Cycles) < 0.97*float64(ideal.Cycles) {
		t.Fatalf("real protocol much faster than ideal: %d < %d", real.Cycles, ideal.Cycles)
	}
	if real.TotalPkts <= ideal.TotalPkts {
		t.Fatalf("real protocol sent no extra traffic: %d <= %d", real.TotalPkts, ideal.TotalPkts)
	}
	if real.Energy.Total() <= ideal.Energy.Total() {
		t.Fatal("real protocol consumed no extra energy")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runMicro(t, config.HybridReal)
	b := runMicro(t, config.HybridReal)
	if a.Cycles != b.Cycles || a.TotalPkts != b.TotalPkts || a.Retired != b.Retired {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestCoherenceInvariantsAfterRun(t *testing.T) {
	m, err := Build(smallCfg(config.HybridReal), microBench(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.Hier.CheckInvariants(); err != nil {
		t.Fatalf("coherence invariants violated after full run: %v", err)
	}
}

func TestEventBudgetEnforced(t *testing.T) {
	m, err := Build(smallCfg(config.HybridReal), microBench(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(100); err == nil {
		t.Fatal("tiny event budget not enforced")
	}
}

func TestRunBenchmarkTinyWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		for _, sys := range []config.MemorySystem{config.CacheBased, config.HybridReal} {
			r, err := RunBenchmark(sys, workloads.Build(name, workloads.Tiny), 4, 500_000_000)
			if err != nil {
				t.Fatalf("%s on %v: %v", name, sys, err)
			}
			if r.Cycles == 0 {
				t.Fatalf("%s on %v: zero cycles", name, sys)
			}
		}
	}
}

func TestShrinkGeometry(t *testing.T) {
	cfg := shrink(config.ForSystem(config.HybridReal), 16)
	if cfg.Cores != 16 || cfg.MeshWidth*cfg.MeshHeight != 16 {
		t.Fatalf("shrink: %d cores, %dx%d", cfg.Cores, cfg.MeshWidth, cfg.MeshHeight)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSPFilterNeverExercised(t *testing.T) {
	r, err := RunBenchmark(config.HybridReal, workloads.Build("SP", workloads.Tiny), 4, 500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.FilterHitRatio != 1 {
		t.Fatalf("SP filter hit ratio = %v, want 1 (never exercised)", r.FilterHitRatio)
	}
}
