package system

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/workloads"
)

// DefaultSeed is the workload-generation seed used by every exhibit of the
// evaluation; fixing it makes each run a pure function of its Spec.
const DefaultSeed = 0xC0FFEE

// Spec declares one simulation run as a plain value: which machine, which
// benchmark, at what scale, with which overrides. A Spec carries no wired
// hardware, so it can be enumerated, hashed (Key), scheduled across workers,
// and cached before anything is built. Execute turns it into Results.
type Spec struct {
	System    config.MemorySystem
	Benchmark string // a workloads name: CG, EP, FT, IS, MG, SP
	Scale     workloads.Scale

	// Cores overrides the Table 1 core count when > 0; the mesh is
	// re-dimensioned to match (tests and scaled-down sweeps).
	Cores int

	// Seed overrides the workload-generation seed when != 0.
	Seed uint64

	// FilterEntries overrides the per-core filter capacity when > 0 —
	// the knob DESIGN.md's Ablation A sweeps.
	FilterEntries int

	// MaxEvents bounds the run (0 = unbounded); exceeding it is an error.
	MaxEvents uint64
}

// seed resolves the effective workload seed.
func (s Spec) seed() uint64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return DefaultSeed
}

// Key is a stable, human-readable identity for the run — usable as a map
// key, a cache filename, or a progress label. Two Specs with equal Keys
// produce byte-identical Results.
func (s Spec) Key() string {
	k := fmt.Sprintf("%s/%s/%s", s.Benchmark, s.System, s.Scale)
	if s.Cores > 0 {
		k += fmt.Sprintf("/c%d", s.Cores)
	}
	if s.FilterEntries > 0 {
		k += fmt.Sprintf("/f%d", s.FilterEntries)
	}
	if s.Seed != 0 {
		k += fmt.Sprintf("/s%x", s.Seed)
	}
	if s.MaxEvents != 0 {
		k += fmt.Sprintf("/e%d", s.MaxEvents)
	}
	return k
}

// Config materializes the machine configuration the Spec describes.
func (s Spec) Config() config.Config {
	cfg := config.ForSystem(s.System)
	if s.FilterEntries > 0 {
		cfg.FilterEntries = s.FilterEntries
	}
	if s.Cores > 0 && s.Cores != cfg.Cores {
		cfg = shrink(cfg, s.Cores)
	}
	return cfg
}

// Validate reports whether the Spec names a buildable run.
func (s Spec) Validate() error {
	for _, n := range workloads.Names() {
		if n == s.Benchmark {
			return s.Config().Validate()
		}
	}
	return fmt.Errorf("system: unknown benchmark %q (want one of %v)", s.Benchmark, workloads.Names())
}

// Execute builds the machine, runs the benchmark to completion, and returns
// the measurements. Each call wires a fresh single-threaded engine, so
// concurrent Executes of different Specs are independent and race-free.
func (s Spec) Execute() (Results, error) {
	if err := s.Validate(); err != nil {
		return Results{}, err
	}
	m, err := Build(s.Config(), workloads.Build(s.Benchmark, s.Scale), s.seed())
	if err != nil {
		return Results{}, err
	}
	return m.Run(s.MaxEvents)
}
