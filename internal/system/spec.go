package system

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/config"
	"repro/internal/workloads"
)

// DefaultSeed is the workload-generation seed used by every exhibit of the
// evaluation; fixing it makes each run a pure function of its Spec.
const DefaultSeed = 0xC0FFEE

// Spec declares one simulation run as a plain value: which machine, which
// benchmark, at what scale, with which overrides. A Spec carries no wired
// hardware, so it can be enumerated, hashed (Key), scheduled across workers,
// and cached before anything is built. Execute turns it into Results.
type Spec struct {
	System    config.MemorySystem
	Benchmark string // a workloads name: CG, EP, FT, IS, MG, SP
	Scale     workloads.Scale

	// Cores overrides the Table 1 core count when > 0; the mesh is
	// re-dimensioned to match (tests and scaled-down sweeps).
	Cores int

	// Seed overrides the workload-generation seed when != 0.
	Seed uint64

	// FilterEntries overrides the per-core filter capacity when > 0 —
	// the knob DESIGN.md's Ablation A sweeps.
	FilterEntries int

	// MaxEvents bounds the run (0 = unbounded); exceeding it is an error.
	MaxEvents uint64
}

// seed resolves the effective workload seed.
func (s Spec) seed() uint64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return DefaultSeed
}

// cores resolves the effective core count (0 means the Table 1 default).
func (s Spec) cores() int {
	if s.Cores > 0 {
		return s.Cores
	}
	return config.ForSystem(s.System).Cores
}

// filterEntries resolves the effective filter capacity (0 = Table 1).
func (s Spec) filterEntries() int {
	if s.FilterEntries > 0 {
		return s.FilterEntries
	}
	return config.ForSystem(s.System).FilterEntries
}

// Key is a stable, human-readable identity for the run — usable as a map
// key, a cache filename, or a progress label. Two Specs with equal Keys
// produce byte-identical Results; equivalent Specs (a zero field vs its
// explicit default — seed, cores, filter size) share one Key.
func (s Spec) Key() string {
	k := fmt.Sprintf("%s/%s/%s", s.Benchmark, s.System, s.Scale)
	def := config.ForSystem(s.System)
	if s.Cores > 0 && s.Cores != def.Cores {
		k += fmt.Sprintf("/c%d", s.Cores)
	}
	if s.FilterEntries > 0 && s.FilterEntries != def.FilterEntries {
		k += fmt.Sprintf("/f%d", s.FilterEntries)
	}
	if s.seed() != DefaultSeed {
		k += fmt.Sprintf("/s%x", s.seed())
	}
	if s.MaxEvents != 0 {
		k += fmt.Sprintf("/e%d", s.MaxEvents)
	}
	return k
}

// Hash is the canonical content address of the run: the SHA-256 (hex) of a
// normalized fixed-order encoding of every result-affecting field, with
// defaultable fields (seed, cores, filter size) resolved so equivalent
// Specs collapse to one digest. DESIGN.md §8 documents the encoding; it is
// versioned, so any change to the field set bumps the prefix and old cache
// entries simply miss.
func (s Spec) Hash() string {
	enc := fmt.Sprintf(
		"hybridsim-spec-v1\nsystem=%s\nbenchmark=%s\nscale=%s\ncores=%d\nseed=%x\nfilter=%d\nmaxevents=%d\n",
		s.System, s.Benchmark, s.Scale, s.cores(), s.seed(), s.filterEntries(), s.MaxEvents)
	sum := sha256.Sum256([]byte(enc))
	return hex.EncodeToString(sum[:])
}

// specJSON is the wire form of a Spec. Field set and order mirror Spec
// exactly so conversion is a plain type cast.
type specJSON struct {
	System        config.MemorySystem `json:"system"`
	Benchmark     string              `json:"benchmark"`
	Scale         workloads.Scale     `json:"scale"`
	Cores         int                 `json:"cores,omitempty"`
	Seed          uint64              `json:"seed,omitempty"`
	FilterEntries int                 `json:"filter_entries,omitempty"`
	MaxEvents     uint64              `json:"max_events,omitempty"`
}

// MarshalJSON encodes the Spec losslessly with the memory system and scale
// by name, so specs survive service requests and disk cache entries intact.
func (s Spec) MarshalJSON() ([]byte, error) {
	return json.Marshal(specJSON(s))
}

// UnmarshalJSON decodes what MarshalJSON produces, rejecting unknown fields
// and validating the Spec (unknown benchmarks, unbuildable machines) at
// decode time — a service must fail a bad request before queueing it.
func (s *Spec) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var sj specJSON
	if err := dec.Decode(&sj); err != nil {
		return fmt.Errorf("system: bad spec: %w", err)
	}
	decoded := Spec(sj)
	if err := decoded.Validate(); err != nil {
		return err
	}
	*s = decoded
	return nil
}

// Config materializes the machine configuration the Spec describes.
func (s Spec) Config() config.Config {
	cfg := config.ForSystem(s.System)
	if s.FilterEntries > 0 {
		cfg.FilterEntries = s.FilterEntries
	}
	if s.Cores > 0 && s.Cores != cfg.Cores {
		cfg = shrink(cfg, s.Cores)
	}
	return cfg
}

// Validate reports whether the Spec names a buildable run.
func (s Spec) Validate() error {
	// Negative overrides would be ignored by Config (which treats <= 0 as
	// "default") yet still perturb the canonical Hash — reject them before
	// they can mint a bogus cache identity.
	if s.Cores < 0 {
		return fmt.Errorf("system: negative core count %d", s.Cores)
	}
	if s.FilterEntries < 0 {
		return fmt.Errorf("system: negative filter size %d", s.FilterEntries)
	}
	for _, n := range workloads.Names() {
		if n == s.Benchmark {
			return s.Config().Validate()
		}
	}
	return fmt.Errorf("system: unknown benchmark %q (want one of %v)", s.Benchmark, workloads.Names())
}

// Execute builds the machine, runs the benchmark to completion, and returns
// the measurements. Each call wires a fresh single-threaded engine, so
// concurrent Executes of different Specs are independent and race-free.
func (s Spec) Execute() (Results, error) {
	return s.ExecuteContext(context.Background())
}

// ExecuteContext is Execute with cooperative cancellation: the engine polls
// ctx between event batches, so client disconnects and per-request deadlines
// stop a simulation mid-run instead of burning the rest of it.
func (s Spec) ExecuteContext(ctx context.Context) (Results, error) {
	if err := s.Validate(); err != nil {
		return Results{}, err
	}
	m, err := Build(s.Config(), workloads.Build(s.Benchmark, s.Scale), s.seed())
	if err != nil {
		return Results{}, err
	}
	return m.RunContext(ctx, s.MaxEvents)
}
