package system

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/workloads"
)

// DefaultSeed is the workload-generation seed used by every exhibit of the
// evaluation; fixing it makes each run a pure function of its Spec.
const DefaultSeed = 0xC0FFEE

// Spec declares one simulation run as a plain value: which machine, which
// benchmark, at what scale, with which overrides. A Spec carries no wired
// hardware, so it can be enumerated, hashed (Key), scheduled across workers,
// and cached before anything is built. Execute turns it into Results.
//
// The machine parameter space is open: Overrides can retarget any knob of
// config.Config by name (the registry in config.Knobs()), so sweeps over
// cache sizes, NoC bandwidth, DRAM latency, prefetch degree, DMA queue
// depths, etc. need no Go-code changes anywhere in the stack.
type Spec struct {
	System    config.MemorySystem
	Benchmark string // a workloads name: CG, EP, FT, IS, MG, SP
	Scale     workloads.Scale

	// Overrides retargets any subset of the machine's ~40 knobs relative to
	// the Table 1 defaults of ForSystem(System). Zero-valued knobs are
	// unset. All-int fields keep Spec comparable and map-key-safe.
	Overrides config.Overrides

	// Cores is a legacy shim predating Overrides: when > 0 it folds into
	// Overrides.Cores at resolve time, so old JSON bodies, CLI flags and
	// cache identities keep working. The mesh is re-dimensioned to match
	// unless mesh_width/mesh_height are overridden explicitly.
	Cores int

	// Seed overrides the workload-generation seed when != 0.
	Seed uint64

	// FilterEntries is the second legacy shim (the knob DESIGN.md's
	// Ablation A sweeps); when > 0 it folds into Overrides.FilterEntries.
	FilterEntries int

	// MaxEvents bounds the run (0 = unbounded); exceeding it is an error.
	MaxEvents uint64
}

// seed resolves the effective workload seed.
func (s Spec) seed() uint64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return DefaultSeed
}

// resolved folds the legacy Cores/FilterEntries shims into the Overrides,
// which afterwards is the single source of machine-knob truth. An explicit
// Overrides field wins over its legacy twin (Validate rejects the
// conflicting case, so the precedence only decides error messages).
func (s Spec) resolved() config.Overrides {
	ov := s.Overrides
	if s.Cores > 0 && ov.Cores == 0 {
		ov.Cores = s.Cores
	}
	if s.FilterEntries > 0 && ov.FilterEntries == 0 {
		ov.FilterEntries = s.FilterEntries
	}
	return ov
}

// KnobDiff returns, in canonical registry order, every knob of the
// materialized machine (Spec.Config()) that differs from the ForSystem
// defaults — the identity Key and Hash encode, and the columns a sweep
// sink prints (report.SweepCSV). Diffing the materialized Config rather
// than the sparse override list matters for correctness: a core-count
// change drags derived adjustments along (mesh re-dimensioning, the
// memory-controller cap), and an explicit override spelled at a default
// value can suppress such an adjustment — so only the final machine says
// whether two Specs name the same run.
func (s Spec) KnobDiff() []config.KnobValue {
	return config.ConfigDiff(s.Config(), config.ForSystem(s.System))
}

// Key is a stable, human-readable identity for the run — usable as a map
// key, a cache filename, or a progress label. Two Specs with equal Keys
// produce byte-identical Results; equivalent Specs (a zero field vs its
// explicit default, a legacy field vs its Overrides twin) share one Key.
// Non-default knobs render as "/name=value" in registry order.
func (s Spec) Key() string {
	k := fmt.Sprintf("%s/%s/%s", s.Benchmark, s.System, s.Scale)
	for _, kv := range s.KnobDiff() {
		k += fmt.Sprintf("/%s=%d", kv.Name, kv.Value)
	}
	if s.seed() != DefaultSeed {
		k += fmt.Sprintf("/s%x", s.seed())
	}
	if s.MaxEvents != 0 {
		k += fmt.Sprintf("/e%d", s.MaxEvents)
	}
	return k
}

// Hash is the canonical content address of the run: the SHA-256 (hex) of
// the normalized fixed-order "hybridsim-spec-v2" encoding — the scenario
// header followed by one "knob name=value" line per knob of the
// materialized machine that differs from its Table 1 default, in
// config.Knobs() registry order (KnobDiff). Defaultable fields are
// resolved (seed) or dropped (knobs at their Table 1 value), so every
// spelling of one machine — legacy Cores/FilterEntries, Overrides, or the
// derived mesh/controller adjustments written out by hand — collapses to
// one digest, and distinct machines never share one. DESIGN.md §8
// documents the encoding; it is versioned, so any change to the field set
// bumps the prefix and old cache entries simply miss (v1 entries now do
// exactly that).
func (s Spec) Hash() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hybridsim-spec-v2\nsystem=%s\nbenchmark=%s\nscale=%s\nseed=%x\nmaxevents=%d\n",
		s.System, s.Benchmark, s.Scale, s.seed(), s.MaxEvents)
	for _, kv := range s.KnobDiff() {
		fmt.Fprintf(&b, "knob %s=%d\n", kv.Name, kv.Value)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// specJSON is the wire form of a Spec. Overrides travels as a pointer so an
// all-default Spec serializes without an empty "overrides" object.
type specJSON struct {
	System        config.MemorySystem `json:"system"`
	Benchmark     string              `json:"benchmark"`
	Scale         workloads.Scale     `json:"scale"`
	Overrides     *config.Overrides   `json:"overrides,omitempty"`
	Cores         int                 `json:"cores,omitempty"`
	Seed          uint64              `json:"seed,omitempty"`
	FilterEntries int                 `json:"filter_entries,omitempty"`
	MaxEvents     uint64              `json:"max_events,omitempty"`
}

// MarshalJSON encodes the Spec losslessly with the memory system and scale
// by name, so specs survive service requests and disk cache entries intact.
func (s Spec) MarshalJSON() ([]byte, error) {
	sj := specJSON{
		System:        s.System,
		Benchmark:     s.Benchmark,
		Scale:         s.Scale,
		Cores:         s.Cores,
		Seed:          s.Seed,
		FilterEntries: s.FilterEntries,
		MaxEvents:     s.MaxEvents,
	}
	if !s.Overrides.IsZero() {
		ov := s.Overrides
		sj.Overrides = &ov
	}
	return json.Marshal(sj)
}

// UnmarshalJSON decodes what MarshalJSON produces, rejecting unknown fields
// and validating the Spec (unknown benchmarks, unbuildable machines) at
// decode time — a service must fail a bad request before queueing it.
func (s *Spec) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var sj specJSON
	if err := dec.Decode(&sj); err != nil {
		return fmt.Errorf("system: bad spec: %w", err)
	}
	decoded := Spec{
		System:        sj.System,
		Benchmark:     sj.Benchmark,
		Scale:         sj.Scale,
		Cores:         sj.Cores,
		Seed:          sj.Seed,
		FilterEntries: sj.FilterEntries,
		MaxEvents:     sj.MaxEvents,
	}
	if sj.Overrides != nil {
		decoded.Overrides = *sj.Overrides
	}
	if err := decoded.Validate(); err != nil {
		return err
	}
	*s = decoded
	return nil
}

// Config materializes the machine configuration the Spec describes: Table 1
// defaults for the system, every override applied, and — when the core
// count changes without an explicit mesh override — the mesh, memory
// controllers and FilterDir re-dimensioned exactly as the legacy shrink
// path did, so legacy and Overrides spellings build identical machines.
func (s Spec) Config() config.Config {
	def := config.ForSystem(s.System)
	cfg := def
	ov := s.resolved()
	ov.Apply(&cfg)
	if ov.Cores > 0 && ov.Cores != def.Cores {
		cfg = applyShrink(cfg, ov)
	}
	return cfg
}

// Validate reports whether the Spec names a buildable run.
func (s Spec) Validate() error {
	// Negative overrides would be ignored by Config (which treats <= 0 as
	// "default") yet still perturb the wire form — reject them before they
	// can mint a bogus cache identity.
	if s.Cores < 0 {
		return fmt.Errorf("system: negative core count %d", s.Cores)
	}
	if s.FilterEntries < 0 {
		return fmt.Errorf("system: negative filter size %d", s.FilterEntries)
	}
	if err := s.Overrides.Validate(); err != nil {
		return fmt.Errorf("system: %w", err)
	}
	// A legacy shim and its Overrides twin naming different values is a
	// contradiction, not a precedence question.
	if s.Cores > 0 && s.Overrides.Cores > 0 && s.Cores != s.Overrides.Cores {
		return fmt.Errorf("system: cores %d conflicts with overrides cores %d", s.Cores, s.Overrides.Cores)
	}
	if s.FilterEntries > 0 && s.Overrides.FilterEntries > 0 && s.FilterEntries != s.Overrides.FilterEntries {
		return fmt.Errorf("system: filter_entries %d conflicts with overrides filter_entries %d",
			s.FilterEntries, s.Overrides.FilterEntries)
	}
	for _, n := range workloads.Names() {
		if n == s.Benchmark {
			return s.Config().Validate()
		}
	}
	return fmt.Errorf("system: unknown benchmark %q (want one of %v)", s.Benchmark, workloads.Names())
}

// Execute builds the machine, runs the benchmark to completion, and returns
// the measurements. Each call wires a fresh single-threaded engine, so
// concurrent Executes of different Specs are independent and race-free.
func (s Spec) Execute() (Results, error) {
	return s.ExecuteContext(context.Background())
}

// ExecuteContext is Execute with cooperative cancellation: the engine polls
// ctx between event batches, so client disconnects and per-request deadlines
// stop a simulation mid-run instead of burning the rest of it.
func (s Spec) ExecuteContext(ctx context.Context) (Results, error) {
	if err := s.Validate(); err != nil {
		return Results{}, err
	}
	m, err := Build(s.Config(), workloads.Build(s.Benchmark, s.Scale), s.seed())
	if err != nil {
		return Results{}, err
	}
	return m.RunContext(ctx, s.MaxEvents)
}
