package system

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// DefaultSeed is the workload-generation seed used by every exhibit of the
// evaluation; fixing it makes each run a pure function of its Spec.
const DefaultSeed = 0xC0FFEE

// Spec declares one simulation run as a plain value: which machine, which
// benchmark, at what scale, with which overrides. A Spec carries no wired
// hardware, so it can be enumerated, hashed (Key), scheduled across workers,
// and cached before anything is built. Execute turns it into Results.
//
// The machine parameter space is open: Overrides can retarget any knob of
// config.Config by name (the registry in config.Knobs()), so sweeps over
// cache sizes, NoC bandwidth, DRAM latency, prefetch degree, DMA queue
// depths, etc. need no Go-code changes anywhere in the stack.
// The workload space is equally open: Benchmark names any entry of the
// workloads registry (workloads.Names()), and Params narrows that entry's
// typed parameter set, so sweeps over strides, footprints, localities and
// tree arities compose with the machine axes end-to-end.
type Spec struct {
	System    config.MemorySystem
	Benchmark string // a workloads registry name: CG, EP, ..., stream, gups
	Scale     workloads.Scale

	// Params is a sparse "name=value[,name=value]" assignment over the
	// workload's declared parameters (workloads.Lookup(Benchmark).Params);
	// empty keeps every default. It is a string rather than a map to keep
	// Spec comparable and map-key-safe; Key and Hash canonicalize it
	// (declaration order, defaults dropped), so equivalent spellings share
	// one cache address.
	Params string

	// Overrides retargets any subset of the machine's ~40 knobs relative to
	// the Table 1 defaults of ForSystem(System). Zero-valued knobs are
	// unset. All-int fields keep Spec comparable and map-key-safe.
	Overrides config.Overrides

	// Cores is a legacy shim predating Overrides: when > 0 it folds into
	// Overrides.Cores at resolve time, so old JSON bodies, CLI flags and
	// cache identities keep working. The mesh is re-dimensioned to match
	// unless mesh_width/mesh_height are overridden explicitly.
	Cores int

	// Seed overrides the workload-generation seed when != 0.
	Seed uint64

	// FilterEntries is the second legacy shim (the knob DESIGN.md's
	// Ablation A sweeps); when > 0 it folds into Overrides.FilterEntries.
	FilterEntries int

	// MaxEvents bounds the run (0 = unbounded); exceeding it is an error.
	MaxEvents uint64
}

// seed resolves the effective workload seed.
func (s Spec) seed() uint64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return DefaultSeed
}

// resolved folds the legacy Cores/FilterEntries shims into the Overrides,
// which afterwards is the single source of machine-knob truth. An explicit
// Overrides field wins over its legacy twin (Validate rejects the
// conflicting case, so the precedence only decides error messages).
func (s Spec) resolved() config.Overrides {
	ov := s.Overrides
	if s.Cores > 0 && ov.Cores == 0 {
		ov.Cores = s.Cores
	}
	if s.FilterEntries > 0 && ov.FilterEntries == 0 {
		ov.FilterEntries = s.FilterEntries
	}
	return ov
}

// ParamDiff returns, in canonical declaration order, every workload
// parameter that differs from its registry default — the segments Key
// renders, the "wparam" lines Hash encodes, and the columns a sweep sink
// prints. A Spec whose Params cannot be parsed or validated yields a nil
// diff and ok=false; Validate rejects such Specs before they can run or
// mint a cache identity.
func (s Spec) ParamDiff() ([]workloads.ParamValue, bool) {
	p, err := workloads.ParseParams(s.Params)
	if err != nil {
		return nil, false
	}
	diff, err := workloads.DiffParams(s.Benchmark, p)
	if err != nil {
		return nil, false
	}
	return diff, true
}

// ResolvedParam resolves one workload parameter to the value this run uses
// (the override if set, the registry default otherwise). ok is false when
// the workload does not declare the parameter or the Spec's Params are
// invalid.
func (s Spec) ResolvedParam(name string) (int, bool) {
	p, err := workloads.ParseParams(s.Params)
	if err != nil {
		return 0, false
	}
	full, err := workloads.ResolveParams(s.Benchmark, p)
	if err != nil {
		return 0, false
	}
	v, ok := full[name]
	return v, ok
}

// workloadLabel renders the benchmark with its non-default parameters in
// the CLI's "name:k=v,k2=v2" spelling — the first segment of Key. An
// invalid Params payload renders with a "!" marker; it still labels the
// Spec deterministically, but Validate prevents such Specs from running.
func (s Spec) workloadLabel() string {
	diff, ok := s.ParamDiff()
	if !ok {
		return s.Benchmark + ":!" + s.Params
	}
	if len(diff) == 0 {
		return s.Benchmark
	}
	parts := make([]string, len(diff))
	for i, pv := range diff {
		parts[i] = fmt.Sprintf("%s=%d", pv.Name, pv.Value)
	}
	return s.Benchmark + ":" + strings.Join(parts, ",")
}

// KnobDiff returns, in canonical registry order, every knob of the
// materialized machine (Spec.Config()) that differs from the ForSystem
// defaults — the identity Key and Hash encode, and the columns a sweep
// sink prints (report.SweepCSV). Diffing the materialized Config rather
// than the sparse override list matters for correctness: a core-count
// change drags derived adjustments along (mesh re-dimensioning, the
// memory-controller cap), and an explicit override spelled at a default
// value can suppress such an adjustment — so only the final machine says
// whether two Specs name the same run.
func (s Spec) KnobDiff() []config.KnobValue {
	return config.ConfigDiff(s.Config(), config.ForSystem(s.System))
}

// Key is a stable, human-readable identity for the run — usable as a map
// key, a cache filename, or a progress label. Two Specs with equal Keys
// produce byte-identical Results; equivalent Specs (a zero field vs its
// explicit default, a legacy field vs its Overrides twin, an unset workload
// parameter vs its explicit default) share one Key. Non-default workload
// params render inside the first segment as "name:k=v"; non-default knobs
// render as "/name=value" in registry order.
func (s Spec) Key() string {
	k := fmt.Sprintf("%s/%s/%s", s.workloadLabel(), s.System, s.Scale)
	for _, kv := range s.KnobDiff() {
		k += fmt.Sprintf("/%s=%d", kv.Name, kv.Value)
	}
	if s.seed() != DefaultSeed {
		k += fmt.Sprintf("/s%x", s.seed())
	}
	if s.MaxEvents != 0 {
		k += fmt.Sprintf("/e%d", s.MaxEvents)
	}
	return k
}

// Hash is the canonical content address of the run: the SHA-256 (hex) of
// the normalized fixed-order "hybridsim-spec-v3" encoding — the scenario
// header, one "wparam name=value" line per workload parameter that differs
// from its registry default (in the workload's declaration order,
// ParamDiff), then one "knob name=value" line per knob of the materialized
// machine that differs from its Table 1 default, in config.Knobs() registry
// order (KnobDiff). Defaultable fields are resolved (seed) or dropped
// (knobs and params at their default value), so every spelling of one run —
// legacy Cores/FilterEntries, Overrides, derived mesh/controller
// adjustments written out by hand, or a workload parameter spelled at its
// default — collapses to one digest, and distinct runs never share one.
// DESIGN.md §8 documents the encoding; it is versioned, so any change to
// the field set bumps the prefix and old cache entries simply miss (v1 and
// v2 entries now do exactly that — v3 added the workload-parameter lines).
func (s Spec) Hash() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hybridsim-spec-v3\nsystem=%s\nbenchmark=%s\nscale=%s\nseed=%x\nmaxevents=%d\n",
		s.System, s.Benchmark, s.Scale, s.seed(), s.MaxEvents)
	if diff, ok := s.ParamDiff(); ok {
		for _, pv := range diff {
			fmt.Fprintf(&b, "wparam %s=%d\n", pv.Name, pv.Value)
		}
	} else {
		// Unvalidatable params cannot run, but the digest must still be
		// total and deterministic for error paths that label by Hash.
		fmt.Fprintf(&b, "wparam!=%s\n", s.Params)
	}
	for _, kv := range s.KnobDiff() {
		fmt.Fprintf(&b, "knob %s=%d\n", kv.Name, kv.Value)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// specJSON is the wire form of a Spec. Overrides travels as a pointer so an
// all-default Spec serializes without an empty "overrides" object.
type specJSON struct {
	System        config.MemorySystem `json:"system"`
	Benchmark     string              `json:"benchmark"`
	Scale         workloads.Scale     `json:"scale"`
	Params        map[string]int      `json:"params,omitempty"`
	Overrides     *config.Overrides   `json:"overrides,omitempty"`
	Cores         int                 `json:"cores,omitempty"`
	Seed          uint64              `json:"seed,omitempty"`
	FilterEntries int                 `json:"filter_entries,omitempty"`
	MaxEvents     uint64              `json:"max_events,omitempty"`
}

// MarshalJSON encodes the Spec losslessly with the memory system and scale
// by name, so specs survive service requests and disk cache entries intact.
func (s Spec) MarshalJSON() ([]byte, error) {
	sj := specJSON{
		System:        s.System,
		Benchmark:     s.Benchmark,
		Scale:         s.Scale,
		Cores:         s.Cores,
		Seed:          s.Seed,
		FilterEntries: s.FilterEntries,
		MaxEvents:     s.MaxEvents,
	}
	if !s.Overrides.IsZero() {
		ov := s.Overrides
		sj.Overrides = &ov
	}
	if s.Params != "" {
		p, err := workloads.ParseParams(s.Params)
		if err != nil {
			return nil, fmt.Errorf("system: bad workload params %q: %w", s.Params, err)
		}
		sj.Params = p
	}
	return json.Marshal(sj)
}

// UnmarshalJSON decodes what MarshalJSON produces, rejecting unknown fields
// and validating the Spec (unknown benchmarks, unbuildable machines) at
// decode time — a service must fail a bad request before queueing it.
func (s *Spec) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var sj specJSON
	if err := dec.Decode(&sj); err != nil {
		return fmt.Errorf("system: bad spec: %w", err)
	}
	decoded := Spec{
		System:        sj.System,
		Benchmark:     sj.Benchmark,
		Scale:         sj.Scale,
		Cores:         sj.Cores,
		Seed:          sj.Seed,
		FilterEntries: sj.FilterEntries,
		MaxEvents:     sj.MaxEvents,
	}
	if sj.Overrides != nil {
		decoded.Overrides = *sj.Overrides
	}
	// JSON objects carry no order, so the decoded assignment is rendered
	// in the workload's canonical declaration order — one spelling per
	// assignment, whatever the wire ordering was.
	decoded.Params = workloads.FormatParams(sj.Benchmark, sj.Params)
	if err := decoded.Validate(); err != nil {
		return err
	}
	*s = decoded
	return nil
}

// Config materializes the machine configuration the Spec describes: Table 1
// defaults for the system, every override applied, and — when the core
// count changes without an explicit mesh override — the mesh, memory
// controllers and FilterDir re-dimensioned exactly as the legacy shrink
// path did, so legacy and Overrides spellings build identical machines.
func (s Spec) Config() config.Config {
	def := config.ForSystem(s.System)
	cfg := def
	ov := s.resolved()
	ov.Apply(&cfg)
	if ov.Cores > 0 && ov.Cores != def.Cores {
		cfg = applyShrink(cfg, ov)
	}
	return cfg
}

// Validate reports whether the Spec names a buildable run.
func (s Spec) Validate() error {
	// Negative overrides would be ignored by Config (which treats <= 0 as
	// "default") yet still perturb the wire form — reject them before they
	// can mint a bogus cache identity.
	if s.Cores < 0 {
		return fmt.Errorf("system: negative core count %d", s.Cores)
	}
	if s.FilterEntries < 0 {
		return fmt.Errorf("system: negative filter size %d", s.FilterEntries)
	}
	if err := s.Overrides.Validate(); err != nil {
		return fmt.Errorf("system: %w", err)
	}
	// A legacy shim and its Overrides twin naming different values is a
	// contradiction, not a precedence question.
	if s.Cores > 0 && s.Overrides.Cores > 0 && s.Cores != s.Overrides.Cores {
		return fmt.Errorf("system: cores %d conflicts with overrides cores %d", s.Cores, s.Overrides.Cores)
	}
	if s.FilterEntries > 0 && s.Overrides.FilterEntries > 0 && s.FilterEntries != s.Overrides.FilterEntries {
		return fmt.Errorf("system: filter_entries %d conflicts with overrides filter_entries %d",
			s.FilterEntries, s.Overrides.FilterEntries)
	}
	// The workload and its parameters validate against the registry —
	// unknown names, undeclared or out-of-range params, and unparsable
	// payloads all fail here, before anything is queued or hashed into a
	// cache identity.
	if _, ok := workloads.Lookup(s.Benchmark); !ok {
		return fmt.Errorf("system: unknown benchmark %q (want one of %v)", s.Benchmark, workloads.Names())
	}
	p, err := workloads.ParseParams(s.Params)
	if err != nil {
		return fmt.Errorf("system: %w", err)
	}
	if err := workloads.ValidateParams(s.Benchmark, p); err != nil {
		return fmt.Errorf("system: %w", err)
	}
	return s.Config().Validate()
}

// Execute builds the machine, runs the benchmark to completion, and returns
// the measurements. Each call wires a fresh single-threaded engine, so
// concurrent Executes of different Specs are independent and race-free.
func (s Spec) Execute() (Results, error) {
	return s.ExecuteContext(context.Background())
}

// ExecuteContext is Execute with cooperative cancellation: the engine polls
// ctx between event batches, so client disconnects and per-request deadlines
// stop a simulation mid-run instead of burning the rest of it.
func (s Spec) ExecuteContext(ctx context.Context) (Results, error) {
	return s.ExecuteRecorded(ctx, nil)
}

// ExecuteRecorded is ExecuteContext with an observer: rec (if non-nil) is
// attached to the machine before the run, so it samples counters and/or
// traces events while the benchmark executes. Telemetry never feeds back into
// simulated behavior — Results are identical with or without rec — so it is
// deliberately not part of the Spec (and thus not part of the cache
// identity): it describes how to watch a run, not which run to do.
func (s Spec) ExecuteRecorded(ctx context.Context, rec *telemetry.Recorder) (Results, error) {
	r, _, err := s.executeOn(ctx, rec, false)
	return r, err
}

// ExecuteObserved is ExecuteRecorded plus a post-run counter snapshot
// (Machine.CounterSnapshot) — the full-fidelity input the analysis rules
// want. Like telemetry, the snapshot is pure observation: Results are
// identical to Execute's, and nothing here touches Spec identity.
func (s Spec) ExecuteObserved(ctx context.Context, rec *telemetry.Recorder) (Results, map[string]uint64, error) {
	return s.executeOn(ctx, rec, true)
}

// executeOn is the shared run path: validate, build the workload and the
// machine, optionally attach an observer, run, optionally snapshot counters.
func (s Spec) executeOn(ctx context.Context, rec *telemetry.Recorder, snapshot bool) (Results, map[string]uint64, error) {
	if err := s.Validate(); err != nil {
		return Results{}, nil, err
	}
	p, _ := workloads.ParseParams(s.Params) // Validate just accepted it
	bench, err := workloads.BuildSpec(s.Benchmark, p, s.Scale)
	if err != nil {
		return Results{}, nil, err
	}
	m, err := Build(s.Config(), bench, s.seed())
	if err != nil {
		return Results{}, nil, err
	}
	if rec != nil {
		m.Attach(rec)
	}
	r, err := m.RunContext(ctx, s.MaxEvents)
	if err != nil || !snapshot {
		return r, nil, err
	}
	return r, m.CounterSnapshot(), nil
}
