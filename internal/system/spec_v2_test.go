package system

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workloads"
)

// TestV2EntriesMissUnderV3 pins the v2 → v3 migration contract: the golden
// digests of the retired hybridsim-spec-v2 encoding (pinned here before the
// workload-parameter lines were added) must NOT be reproduced by the v3
// encoding, so every v2 cache entry misses by design instead of aliasing a
// v3 run. The Key layout for knob-bearing Specs is unchanged.
func TestV2EntriesMissUnderV3(t *testing.T) {
	plain := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Small}
	if got, v2 := plain.Hash(), "83608ff9e2718031d950239ec6da3e6fe19e235bafe3a282468e130c8ddd65e9"; got == v2 {
		t.Errorf("plain spec still hashes to its v2 digest %s", v2)
	}
	withKnobs := plain
	withKnobs.Overrides.L1DSize = 65536
	withKnobs.Overrides.FilterEntries = 16
	withKnobs.Seed = 7
	withKnobs.MaxEvents = 1 << 20
	if got, v2 := withKnobs.Hash(), "5e4626647642d563953cb5dc36105e1ce77c060997dce84d2412f795f6263945"; got == v2 {
		t.Errorf("overridden spec still hashes to its v2 digest %s", v2)
	}
	if got, want := withKnobs.Key(), "IS/hybrid/small/l1d_size=65536/filter_entries=16/s7/e1048576"; got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
}

// TestSpecLegacyOverridesEquivalence is the cache-compat regression guard:
// a Spec using the legacy Cores/FilterEntries fields and the same run
// spelled through Overrides must share one Hash, one Key and one Config —
// otherwise upgrading a client would split the daemon's cache in two.
func TestSpecLegacyOverridesEquivalence(t *testing.T) {
	legacy := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny,
		Cores: 8, FilterEntries: 16}
	modern := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny}
	modern.Overrides.Cores = 8
	modern.Overrides.FilterEntries = 16

	if legacy.Hash() != modern.Hash() {
		t.Fatalf("legacy and Overrides spellings hash apart:\n%s\n%s", legacy.Hash(), modern.Hash())
	}
	if legacy.Key() != modern.Key() {
		t.Fatalf("legacy and Overrides spellings key apart: %q vs %q", legacy.Key(), modern.Key())
	}
	if legacy.Config() != modern.Config() {
		t.Fatalf("legacy and Overrides spellings build different machines:\n%+v\n%+v",
			legacy.Config(), modern.Config())
	}
	// Both set, agreeing: fine. Both set, disagreeing: a contradiction.
	both := legacy
	both.Overrides.Cores = 8
	if err := both.Validate(); err != nil {
		t.Fatalf("agreeing legacy+override rejected: %v", err)
	}
	if both.Hash() != legacy.Hash() {
		t.Fatal("agreeing legacy+override changed the hash")
	}
	both.Overrides.Cores = 16
	if err := both.Validate(); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("conflicting legacy+override accepted: %v", err)
	}
}

// TestSpecJSONRoundTripArbitraryOverrides is the property test for the wire
// contract: for seeded-random subsets of the knob registry with random
// values, marshal → unmarshal must reproduce the Spec exactly, with Key and
// Hash intact. Values are drawn from each knob's current default (always
// valid) so decode-time validation never trips on structural constraints.
func TestSpecJSONRoundTripArbitraryOverrides(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	def := config.ForSystem(config.HybridReal)
	knobs := config.Knobs()
	for trial := 0; trial < 200; trial++ {
		s := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny}
		for _, k := range knobs {
			switch rng.Intn(3) {
			case 0: // leave unset
			case 1: // explicit default — must normalize away in Key/Hash
				*k.Over(&s.Overrides) = *k.Field(&def)
			case 2: // perturbed but structurally safe: defaults doubled
				*k.Over(&s.Overrides) = *k.Field(&def) * 2
			}
		}
		// Structural coupling (mesh must cover cores, power-of-two sets)
		// makes some random machines unbuildable; those are Validate's
		// problem, not the wire's. Only buildable Specs must round-trip.
		if s.Validate() != nil {
			continue
		}
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		var got Spec
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("trial %d: unmarshal %s: %v", trial, b, err)
		}
		if got != s {
			t.Fatalf("trial %d: round trip changed the Spec:\n got %+v\nwant %+v\nwire %s", trial, got, s, b)
		}
		if got.Key() != s.Key() || got.Hash() != s.Hash() {
			t.Fatalf("trial %d: round trip changed identity", trial)
		}
	}
}

// TestSpecOverridesDefaultNormalization: knobs spelled at their Table 1
// value are the same run as unset knobs — one Key, one Hash, no knob
// segments in the Key.
func TestSpecOverridesDefaultNormalization(t *testing.T) {
	base := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny}
	def := config.ForSystem(config.HybridReal)
	explicit := base
	explicit.Overrides.L1DSize = def.L1DSize
	explicit.Overrides.MemLatency = def.MemLatency
	if base.Hash() != explicit.Hash() || base.Key() != explicit.Key() {
		t.Fatalf("explicit defaults changed identity: %q vs %q", explicit.Key(), base.Key())
	}
	changed := base
	changed.Overrides.MemLatency = def.MemLatency * 2
	if changed.Hash() == base.Hash() {
		t.Fatal("a real mem_latency override did not change the Hash")
	}
	if !strings.Contains(changed.Key(), "mem_latency=200") {
		t.Fatalf("Key %q does not name the overridden knob", changed.Key())
	}
}

// TestSpecOverridesAffectResults: an L1D size override must actually reach
// the machine and perturb the measurements — the end-to-end guarantee the
// whole redesign exists for.
func TestSpecOverridesAffectResults(t *testing.T) {
	base := Spec{System: config.CacheBased, Benchmark: "IS", Scale: workloads.Tiny, Cores: 4}
	shrunkL1 := base
	shrunkL1.Overrides.L1DSize = 1 << 10
	rBase, err := base.Execute()
	if err != nil {
		t.Fatal(err)
	}
	rSmall, err := shrunkL1.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if rSmall.L1DMisses <= rBase.L1DMisses {
		t.Fatalf("a 1KB L1D did not increase misses: %d vs %d", rSmall.L1DMisses, rBase.L1DMisses)
	}
}

// TestSpecRejectsNegativeOverrideKnob: the open parameter space keeps the
// old rule — negative values cannot mint cache identities.
func TestSpecRejectsNegativeOverrideKnob(t *testing.T) {
	s := Spec{System: config.CacheBased, Benchmark: "EP", Scale: workloads.Tiny}
	s.Overrides.MemLatency = -5
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "mem_latency") {
		t.Fatalf("err = %v, want negative mem_latency rejection", err)
	}
	var decoded Spec
	err := json.Unmarshal([]byte(`{"system":"cache","benchmark":"EP","scale":"tiny","overrides":{"mem_latency":-5}}`), &decoded)
	if err == nil {
		t.Fatal("decode accepted a negative knob")
	}
}

// TestSpecMeshOverrideWinsOverShrink: an explicit mesh override suppresses
// the automatic re-dimensioning that a core-count change triggers.
func TestSpecMeshOverrideWinsOverShrink(t *testing.T) {
	s := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny}
	s.Overrides.Cores = 8
	s.Overrides.MeshWidth = 1
	s.Overrides.MeshHeight = 8
	cfg := s.Config()
	if cfg.MeshWidth != 1 || cfg.MeshHeight != 8 {
		t.Fatalf("mesh %dx%d, want the explicit 1x8", cfg.MeshWidth, cfg.MeshHeight)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMeshForNonRectangularCores documents the §2 decision: a prime core
// count yields the degenerate 1 x N chain rather than silently simulating a
// different core count.
func TestMeshForNonRectangularCores(t *testing.T) {
	cases := []struct{ cores, w, h int }{
		{4, 2, 2}, {8, 2, 4}, {12, 3, 4}, {7, 1, 7}, {13, 1, 13}, {1, 1, 1},
	}
	for _, c := range cases {
		w, h := meshFor(c.cores)
		if w != c.w || h != c.h {
			t.Errorf("meshFor(%d) = %dx%d, want %dx%d", c.cores, w, h, c.w, c.h)
		}
	}
	s := Spec{System: config.CacheBased, Benchmark: "EP", Scale: workloads.Tiny, Cores: 7}
	if err := s.Validate(); err != nil {
		t.Fatalf("a prime core count must still be buildable (1x7 chain): %v", err)
	}
	cfg := s.Config()
	if cfg.MeshWidth*cfg.MeshHeight != 7 {
		t.Fatalf("mesh %dx%d does not cover 7 cores", cfg.MeshWidth, cfg.MeshHeight)
	}
}

// TestSpecHashSeesDerivedAdjustments is the regression guard for the
// review finding: an override spelled at a Table 1 default value can
// suppress a shrink-time adjustment (here the memory-controller cap), so
// it names a DIFFERENT machine than the unset spelling and must hash
// apart — the content cache must never serve one's Results for the other.
// Conversely, writing the derived adjustments out by hand names the SAME
// machine as letting shrink compute them, and must share one address.
func TestSpecHashSeesDerivedAdjustments(t *testing.T) {
	capped := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny, Cores: 4}
	uncapped := capped
	uncapped.Overrides.MemControllers = config.ForSystem(config.HybridReal).MemControllers // 16, the default
	if capped.Config().MemControllers == uncapped.Config().MemControllers {
		t.Fatal("fixture broken: the explicit default no longer suppresses the cap")
	}
	if capped.Hash() == uncapped.Hash() {
		t.Fatalf("different machines share a hash:\n capped   %+v\n uncapped %+v", capped.Config(), uncapped.Config())
	}
	if capped.Key() == uncapped.Key() {
		t.Fatal("different machines share a Key")
	}

	spelledOut := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny}
	spelledOut.Overrides.Cores = 4
	cfg := capped.Config()
	spelledOut.Overrides.MeshWidth = cfg.MeshWidth
	spelledOut.Overrides.MeshHeight = cfg.MeshHeight
	spelledOut.Overrides.MemControllers = cfg.MemControllers
	if spelledOut.Config() != capped.Config() {
		t.Fatalf("hand-spelled adjustments build a different machine:\n%+v\n%+v", spelledOut.Config(), capped.Config())
	}
	if spelledOut.Hash() != capped.Hash() || spelledOut.Key() != capped.Key() {
		t.Fatal("equal machines hash or key apart")
	}
}
