package system

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// TestRecorderResultsIdentical pins the telemetry package's core contract:
// attaching a Recorder — sampling and tracing both on — observes the run
// without perturbing it. The Results of a recorded run must equal the plain
// run's bit for bit.
func TestRecorderResultsIdentical(t *testing.T) {
	spec := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny, Cores: 4}

	plain, err := spec.Execute()
	if err != nil {
		t.Fatal(err)
	}

	rec := telemetry.NewRecorder(64, 1<<12)
	recorded, err := spec.ExecuteRecorded(context.Background(), rec)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, recorded) {
		t.Errorf("recorded run's Results differ from plain run:\nplain:    %+v\nrecorded: %+v", plain, recorded)
	}
}

// TestRecordedRunProducesTelemetry checks the machine wiring end to end: a
// tiny run with sampling and tracing enabled yields a non-empty time series
// over the machine's probe schema and a non-empty event trace.
func TestRecordedRunProducesTelemetry(t *testing.T) {
	spec := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny, Cores: 4}
	rec := telemetry.NewRecorder(64, 1<<14)
	if _, err := spec.ExecuteRecorded(context.Background(), rec); err != nil {
		t.Fatal(err)
	}

	ts := rec.Series()
	if len(ts.Names) == 0 {
		t.Fatal("recorder has no probes — Machine.Attach registered nothing")
	}
	if len(ts.Epochs) == 0 {
		t.Fatal("recorded run produced no epochs")
	}
	if ts.FinalCycle == 0 {
		t.Error("FinalCycle not stamped")
	}
	for _, want := range []string{"core.retired", "noc.flithops"} {
		found := false
		for _, n := range ts.Names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("probe %q missing from series names", want)
		}
	}
	for i, ep := range ts.Epochs {
		if len(ep.Deltas) != len(ts.Names) {
			t.Fatalf("epoch %d has %d deltas for %d names", i, len(ep.Deltas), len(ts.Names))
		}
	}

	tr := rec.Tracer()
	if tr == nil {
		t.Fatal("Tracer() = nil with tracing enabled")
	}
	if tr.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
	seen := map[telemetry.Kind]bool{}
	for _, e := range tr.Events() {
		seen[e.Kind] = true
	}
	for _, k := range []telemetry.Kind{telemetry.KNoCSend, telemetry.KCohAccess, telemetry.KStall} {
		if !seen[k] {
			t.Errorf("no %v events in a hybrid IS run", k)
		}
	}
}

// TestUnrecordedRunPaysNothing pins the disabled-path contract from the
// machine's side: ExecuteRecorded(nil) is exactly ExecuteContext.
func TestUnrecordedRunPaysNothing(t *testing.T) {
	spec := Spec{System: config.HybridReal, Benchmark: "EP", Scale: workloads.Tiny, Cores: 4}
	a, err := spec.ExecuteContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.ExecuteRecorded(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("ExecuteRecorded(nil) diverged from ExecuteContext:\n%+v\n%+v", a, b)
	}
}
