package system

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workloads"
)

func TestSpecConfigDefaults(t *testing.T) {
	s := Spec{System: config.HybridReal, Benchmark: "CG", Scale: workloads.Tiny}
	cfg := s.Config()
	if cfg.Cores != config.Default().Cores {
		t.Fatalf("Cores = %d, want Table 1 default %d", cfg.Cores, config.Default().Cores)
	}
	if cfg.FilterEntries != config.Default().FilterEntries {
		t.Fatalf("FilterEntries = %d, want default %d", cfg.FilterEntries, config.Default().FilterEntries)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecConfigOverrides(t *testing.T) {
	s := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny,
		Cores: 8, FilterEntries: 16}
	cfg := s.Config()
	if cfg.Cores != 8 {
		t.Fatalf("Cores = %d, want 8", cfg.Cores)
	}
	if cfg.MeshWidth*cfg.MeshHeight != 8 {
		t.Fatalf("mesh %dx%d does not cover 8 cores", cfg.MeshWidth, cfg.MeshHeight)
	}
	if cfg.FilterEntries != 16 {
		t.Fatalf("FilterEntries = %d, want 16", cfg.FilterEntries)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecKeyDistinguishesRuns(t *testing.T) {
	base := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny}
	variants := []Spec{
		base,
		{System: config.CacheBased, Benchmark: "IS", Scale: workloads.Tiny},
		{System: config.HybridReal, Benchmark: "CG", Scale: workloads.Tiny},
		{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Small},
		{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny, Cores: 8},
		{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny, FilterEntries: 8},
		{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny, Seed: 7},
	}
	seen := map[string]Spec{}
	for _, s := range variants {
		k := s.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("specs %+v and %+v share key %q", prev, s, k)
		}
		seen[k] = s
	}
	if k := base.Key(); k != base.Key() {
		t.Fatalf("Key not stable: %q vs %q", k, base.Key())
	}
}

func TestSpecValidateRejectsUnknownBenchmark(t *testing.T) {
	s := Spec{System: config.HybridReal, Benchmark: "LU", Scale: workloads.Tiny}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "LU") {
		t.Fatalf("Validate = %v, want unknown-benchmark error", err)
	}
	if _, err := s.Execute(); err == nil {
		t.Fatal("Execute accepted an unknown benchmark")
	}
}

// TestSpecExecuteMatchesRunBenchmark pins the refactor: the declarative path
// must reproduce the legacy convenience call exactly.
func TestSpecExecuteMatchesRunBenchmark(t *testing.T) {
	s := Spec{System: config.HybridIdeal, Benchmark: "EP", Scale: workloads.Tiny, Cores: 4}
	got, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunBenchmark(config.HybridIdeal, workloads.Build("EP", workloads.Tiny), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Spec.Execute diverged from RunBenchmark:\n got %+v\nwant %+v", got, want)
	}
}

func TestSpecMaxEventsBudget(t *testing.T) {
	s := Spec{System: config.CacheBased, Benchmark: "EP", Scale: workloads.Tiny,
		Cores: 4, MaxEvents: 100}
	if _, err := s.Execute(); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v, want event-budget error", err)
	}
}
