// Package system assembles complete machines — cache-based, hybrid with
// ideal coherence, or hybrid with the paper's protocol — runs benchmarks on
// them, and collects the measurements every figure of the evaluation needs.
package system

import (
	"context"
	"fmt"

	"repro/internal/coherence"
	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dma"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/spm"
	"repro/internal/telemetry"
)

// stackBase returns core c's stack region (thread-private, far from the
// workload arrays and the SPM range).
func stackBase(c int) uint64 { return 0x7F00_0000 + uint64(c)*(1<<20) }

// Machine is one fully wired simulated manycore plus the workload running
// on it.
type Machine struct {
	Eng  *sim.Engine
	Cfg  config.Config
	Mesh *noc.Mesh
	Dram *mem.System
	Hier *coherence.Hierarchy

	// Hybrid-only components (nil / empty on the cache-based machine).
	SPMs     []*spm.SPM
	AMap     spm.AddressMap
	Protocol *core.Protocol
	DMACs    []*dma.Controller

	Cluster *cpu.Cluster

	freeSpmToks *spmTok

	bench *compiler.Benchmark

	// rec, when attached, observes the run (counter sampling and/or event
	// tracing). Nil on ordinary runs — the whole telemetry layer then costs
	// one nil check here plus one per instrumented component site.
	rec *telemetry.Recorder
}

// Attach wires an observer into the machine: the recorder's trace (if any)
// into every traced component, and one probe per counter of every stats
// surface the machine exposes. Call between Build and Run; RunContext then
// drives the recorder's sampling lifecycle.
func (m *Machine) Attach(rec *telemetry.Recorder) {
	m.rec = rec
	rec.Bind(m.Eng)
	if tr := rec.Tracer(); tr != nil {
		m.Mesh.SetTrace(tr)
		m.Hier.SetTrace(tr)
		m.Cluster.SetTrace(tr)
		if m.Protocol != nil {
			m.Protocol.SetTrace(tr)
		}
		for _, d := range m.DMACs {
			d.SetTrace(tr)
		}
	}
	rec.AddProbe("core.retired", m.Cluster.Retired)
	rec.AddProbe("core.flushes", m.Cluster.Flushes)
	for c := noc.Category(0); c < noc.NumCategories; c++ {
		c := c
		rec.AddProbe("noc.pkts."+c.String(), func() uint64 { return m.Mesh.Packets(c) })
	}
	rec.AddProbe("noc.flithops", m.Mesh.TotalFlitHops)
	rec.AddCounters("coherence", m.Hier.Stats())
	if m.Protocol != nil {
		rec.AddCounters("protocol", m.Protocol.Stats())
	}
	if len(m.DMACs) > 0 {
		rec.AddProbe("dma.lines", func() uint64 {
			var t uint64
			for _, d := range m.DMACs {
				t += d.LineTransfers()
			}
			return t
		})
	}
	if len(m.SPMs) > 0 {
		rec.AddProbe("spm.accesses", func() uint64 {
			var t uint64
			for _, s := range m.SPMs {
				t += s.TotalAccesses()
			}
			return t
		})
	}
}

// CounterSnapshot returns every interned counter the machine exposes, keyed
// with the same prefixed names the telemetry probes use ("coherence.l2.misses",
// "protocol.filter.evictions", "dma.lines", "spm.accesses"), so the analysis
// rules and the timeline series read one vocabulary. It is a read-only
// post-run summary: call it after Run; it never perturbs simulated behavior.
func (m *Machine) CounterSnapshot() map[string]uint64 {
	out := make(map[string]uint64, 64)
	hs := m.Hier.Stats()
	for _, name := range hs.AllNames() {
		out["coherence."+name] = hs.Get(name)
	}
	if m.Protocol != nil {
		ps := m.Protocol.Stats()
		for _, name := range ps.AllNames() {
			out["protocol."+name] = ps.Get(name)
		}
	}
	if len(m.DMACs) > 0 {
		var t uint64
		for _, d := range m.DMACs {
			t += d.LineTransfers()
		}
		out["dma.lines"] = t
	}
	if len(m.SPMs) > 0 {
		var t uint64
		for _, s := range m.SPMs {
			t += s.TotalAccesses()
		}
		out["spm.accesses"] = t
	}
	return out
}

// memControllerNodes spreads the memory controllers over two interior mesh
// rows so each controller's router has full link fan-out and DMA bursts do
// not concentrate on corner links.
func memControllerNodes(cfg config.Config) []int {
	w, h := cfg.MeshWidth, cfg.MeshHeight
	rows := []int{h / 4, 3 * h / 4}
	if rows[0] == rows[1] {
		rows = rows[:1]
	}
	var nodes []int
	seen := map[int]bool{}
	perRow := (cfg.MemControllers + len(rows) - 1) / len(rows)
	for _, y := range rows {
		for i := 0; i < perRow && len(nodes) < cfg.MemControllers; i++ {
			x := (i*w + w/2) / perRow % w
			n := y*w + x
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	for i := 0; len(nodes) < cfg.MemControllers; i++ {
		if !seen[i] {
			seen[i] = true
			nodes = append(nodes, i)
		}
	}
	return nodes
}

// Build wires a machine for cfg and generates per-core programs for bench.
func Build(cfg config.Config, bench *compiler.Benchmark, seed uint64) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	mesh := noc.NewBW(eng, cfg.MeshWidth, cfg.MeshHeight, cfg.FlitBytes, cfg.LinkBandwidth, cfg.LinkLatency, cfg.RouterLatency)
	dram := mem.NewSystem(eng, memControllerNodes(cfg), cfg.LineSize, cfg.MemLatency, cfg.MemCyclesPerLn)
	hier := coherence.New(eng, cfg, mesh, dram)

	m := &Machine{Eng: eng, Cfg: cfg, Mesh: mesh, Dram: dram, Hier: hier, bench: bench}

	if cfg.HasSPM() {
		m.AMap = spm.NewAddressMap(cfg.Cores, cfg.SPMSize)
		for i := 0; i < cfg.Cores; i++ {
			m.SPMs = append(m.SPMs, spm.New(eng, cfg.SPMLatency))
		}
		m.Protocol = core.New(eng, cfg, mesh, hier, m.SPMs, m.AMap, cfg.IdealCoherence())
		var notifier dma.MapNotifier = m.Protocol
		for i := 0; i < cfg.Cores; i++ {
			m.DMACs = append(m.DMACs, dma.NewController(eng, i, hier, m.SPMs[i], notifier,
				cfg.LineSize, cfg.DMACmdQueue, cfg.DMABusQueue, cfg.DMALineCycles))
		}
	}

	programs := make([]isa.Program, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		opt := compiler.GenOptions{
			Cores:         cfg.Cores,
			Core:          c,
			Hybrid:        cfg.HasSPM(),
			SPMSize:       cfg.SPMSize,
			SPMDirEntries: cfg.SPMDirEntries,
			StackBase:     stackBase(c),
			Seed:          seed,
		}
		if cfg.HasSPM() {
			opt.SPMBase = m.AMap.AddrFor(c, 0)
		}
		programs[c] = compiler.Generate(bench, opt)
	}
	m.Cluster = cpu.NewCluster(eng, cfg, m, programs)
	if m.Protocol != nil {
		m.Protocol.SetRecheckHook(m.Cluster.RecheckHook())
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// cpu.Ops implementation: route each instruction to the right hardware.

// IFetch implements cpu.Ops.
func (m *Machine) IFetch(c int, pc uint64, done sim.Cont) { m.Hier.IFetch(c, pc, done) }

// Mem implements cpu.Ops.
func (m *Machine) Mem(c int, inst isa.Inst, done sim.Cont) {
	switch inst.Kind {
	case isa.Load:
		m.Hier.Read(c, inst.Addr, inst.PC, done)
	case isa.Store:
		m.Hier.Write(c, inst.Addr, inst.PC, done)
	case isa.GuardedLoad, isa.GuardedStore:
		if m.Protocol == nil {
			// No SPMs: the guard prefix is meaningless; normal access.
			if inst.Kind == isa.GuardedStore {
				m.Hier.Write(c, inst.Addr, inst.PC, done)
			} else {
				m.Hier.Read(c, inst.Addr, inst.PC, done)
			}
			return
		}
		m.Protocol.GuardedAccessCont(c, inst.Addr, inst.PC, inst.Kind == isa.GuardedStore, done)
	case isa.SPMLoad, isa.SPMStore:
		m.spmAccess(c, inst, done)
	default:
		panic(fmt.Sprintf("system: non-memory inst %v routed to Mem", inst.Kind))
	}
}

// spmTok is a pooled continuation node for one remote-SPM round trip: step 0
// fires at the owner's node, step 1 after the SPM array access.
type spmTok struct {
	m         *Machine
	step      uint8
	core      int
	owner     int
	write     bool
	respBytes int
	done      sim.Cont
	next      *spmTok
}

func (t *spmTok) Fire() {
	m := t.m
	if t.step == 0 {
		t.step = 1
		m.SPMs[t.owner].RemoteAccess(t.write, t)
		return
	}
	core, owner, respBytes, done := t.core, t.owner, t.respBytes, t.done
	t.done = nil
	t.next = m.freeSpmToks
	m.freeSpmToks = t
	m.Mesh.SendCont(owner, core, respBytes, noc.Read, done)
}

// spmAccess performs a direct load/store to the SPM virtual range. The range
// check picks local vs remote; remote accesses ride the NoC (every core can
// address any SPM, paper §2.1).
func (m *Machine) spmAccess(c int, inst isa.Inst, done sim.Cont) {
	if m.SPMs == nil {
		panic("system: SPM access on a cache-based machine")
	}
	owner := m.AMap.CoreOf(inst.Addr)
	write := inst.Kind == isa.SPMStore
	if owner == c {
		m.SPMs[c].Access(write, done)
		return
	}
	// Remote SPM access: request + response over the NoC.
	reqBytes, respBytes := 8, 72
	if write {
		reqBytes, respBytes = 72, 8
	}
	t := m.freeSpmToks
	if t != nil {
		m.freeSpmToks = t.next
		t.next = nil
	} else {
		t = &spmTok{m: m}
	}
	t.step = 0
	t.core, t.owner, t.write, t.respBytes, t.done = c, owner, write, respBytes, done
	m.Mesh.SendCont(c, owner, reqBytes, noc.Read, t)
}

// DMAEnqueue implements cpu.Ops.
func (m *Machine) DMAEnqueue(c int, inst isa.Inst) bool {
	if m.DMACs == nil {
		panic("system: DMA on a cache-based machine")
	}
	if inst.Kind == isa.DMAPut {
		return m.DMACs[c].Put(inst.Addr, inst.Addr2, inst.Bytes, inst.Tag)
	}
	return m.DMACs[c].Get(inst.Addr, inst.Addr2, inst.Bytes, inst.Tag)
}

// DMASync implements cpu.Ops.
func (m *Machine) DMASync(c, tag int, done sim.Cont) {
	if m.DMACs == nil {
		panic("system: DMA sync on a cache-based machine")
	}
	m.DMACs[c].Sync(tag, done)
}

// SetBufSize implements cpu.Ops.
func (m *Machine) SetBufSize(c, bytes int) {
	if m.Protocol != nil {
		m.Protocol.SetBufSize(c, bytes)
	}
}

// ---------------------------------------------------------------------------
// Running and results

// Results holds everything the evaluation figures need from one run.
type Results struct {
	Benchmark string
	System    config.MemorySystem

	Cycles      uint64
	PhaseCycles [isa.NumPhases]uint64
	Retired     uint64
	Flushes     uint64

	NoCPackets  [noc.NumCategories]uint64
	TotalPkts   uint64
	NoCFlitHops uint64

	FilterHitRatio float64
	FDirBroadcasts uint64
	Energy         energy.Breakdown

	// L1D behaviour (drives the Fig. 9 analysis).
	L1DHits, L1DMisses uint64
	Prefetches         uint64
	DMALineTransfers   uint64
}

// Run executes the benchmark to completion. maxEvents bounds the run (0
// means no bound); exceeding it or deadlocking returns an error.
func (m *Machine) Run(maxEvents uint64) (Results, error) {
	return m.RunContext(context.Background(), maxEvents)
}

// ctxPollEvents is how many events may fire between context checks in
// RunContext: rare enough that the atomic load inside ctx.Err never shows up
// in profiles, frequent enough that cancellation lands within microseconds.
const ctxPollEvents = 1 << 12

// RunContext is Run with cooperative cancellation: ctx is polled every
// ctxPollEvents fired events, so a canceled context (client disconnect,
// request deadline, daemon shutdown) stops the simulation mid-run.
func (m *Machine) RunContext(ctx context.Context, maxEvents uint64) (Results, error) {
	m.Cluster.Start()
	if m.rec != nil {
		m.rec.Start()
	}
	next := uint64(ctxPollEvents)
	for m.Eng.Step() {
		fired := m.Eng.Fired()
		if maxEvents > 0 && fired > maxEvents {
			return Results{}, fmt.Errorf("system: event budget %d exceeded at cycle %d", maxEvents, m.Eng.Now())
		}
		if fired >= next {
			next = fired + ctxPollEvents
			if err := ctx.Err(); err != nil {
				return Results{}, fmt.Errorf("system: run canceled at cycle %d: %w", m.Eng.Now(), err)
			}
		}
	}
	if !m.Cluster.AllDone() {
		return Results{}, fmt.Errorf("system: deadlock — engine drained at cycle %d with unfinished cores", m.Eng.Now())
	}
	if m.rec != nil {
		m.rec.Finish()
	}
	return m.collect(), nil
}

func (m *Machine) collect() Results {
	r := Results{
		Benchmark: m.bench.Name,
		System:    m.Cfg.System,
		Cycles:    uint64(m.Cluster.FinishTime()),
		Retired:   m.Cluster.Retired(),
		Flushes:   m.Cluster.Flushes(),
	}
	for p := isa.Phase(0); p < isa.NumPhases; p++ {
		r.PhaseCycles[p] = uint64(m.Cluster.PhaseCycles(p))
	}
	for c := noc.Category(0); c < noc.NumCategories; c++ {
		r.NoCPackets[c] = m.Mesh.Packets(c)
	}
	r.TotalPkts = m.Mesh.TotalPackets()
	r.NoCFlitHops = m.Mesh.TotalFlitHops()
	r.L1DHits = m.Hier.L1DHits()
	r.L1DMisses = m.Hier.L1DMisses()
	r.Prefetches = m.Hier.PrefetchesIssued()

	hs := m.Hier.Stats()
	in := energy.Inputs{
		Cycles:        r.Cycles,
		Cores:         m.Cfg.Cores,
		RetiredInstrs: r.Retired,
		L1DAccesses:   hs.Get("l1d.accesses"),
		L1IAccesses:   hs.Get("l1i.accesses"),
		L1DSize:       m.Cfg.L1DSize,
		TLBAccesses:   hs.Get("tlb.accesses"),
		L2Accesses:    hs.Get("l2.accesses"),
		MemLines:      hs.Get("dram.reads") + hs.Get("dram.writes"),
		NoCFlitHops:   r.NoCFlitHops,
		HasSPM:        m.Cfg.HasSPM(),
	}
	if m.Cfg.HasSPM() {
		for _, s := range m.SPMs {
			in.SPMAccesses += s.TotalAccesses()
		}
		for _, d := range m.DMACs {
			r.DMALineTransfers += d.LineTransfers()
		}
		in.DMALineTransfers = r.DMALineTransfers
		ps := m.Protocol.Stats()
		in.ProtocolPresent = !m.Cfg.IdealCoherence()
		in.FilterLookups = ps.Get("filter.lookups")
		in.SPMDirLookups = ps.Get("spmdir.lookups")
		in.SPMDirUpdates = ps.Get("spmdir.updates")
		in.FDirLookups = ps.Get("fdir.lookups")
		in.FilterInvals = ps.Get("filter.invalidations")
		in.GuardedPresent = compiler.Characterize(m.bench).GuardedRefs > 0
		r.FilterHitRatio = m.Protocol.FilterHitRatio()
		r.FDirBroadcasts = ps.Get("fdir.broadcasts")
	} else {
		r.FilterHitRatio = 1
	}
	r.Energy = energy.Compute(in, energy.Defaults22nm())
	return r
}

// RunBenchmark is the one-call convenience: build the machine for sys and
// run bench on it.
func RunBenchmark(sys config.MemorySystem, bench *compiler.Benchmark, cores int, maxEvents uint64) (Results, error) {
	cfg := config.ForSystem(sys)
	if cores > 0 && cores != cfg.Cores {
		cfg = shrink(cfg, cores)
	}
	m, err := Build(cfg, bench, 0xC0FFEE)
	if err != nil {
		return Results{}, err
	}
	return m.Run(maxEvents)
}

// meshFor picks the squarest w x h mesh covering exactly cores nodes: the
// largest divisor pair, w <= h. For a prime (or otherwise poorly factorable)
// core count the only cover is the degenerate 1 x N chain, whose NoC
// diameter is N-1 instead of O(sqrt N) — a very different network. That is
// deliberate: silently rounding the core count up to a nicer mesh would
// simulate a machine the user did not ask for, so the count is honored and
// the chain documented (DESIGN.md §2, "Mesh dimensioning"); users who care
// about the topology override mesh_width/mesh_height explicitly.
func meshFor(cores int) (w, h int) {
	w, h = 1, cores
	for d := 1; d*d <= cores; d++ {
		if cores%d == 0 {
			w, h = d, cores/d
		}
	}
	return w, h
}

// applyShrink re-dimensions cfg's derived structures for a changed core
// count: the mesh is re-factored, the memory controllers capped, and the
// FilterDir floored (DESIGN.md §5 "Structure floors"). Each adjustment is
// suppressed when ov pins the corresponding knob explicitly. This is the
// single implementation behind both shrink (the legacy RunBenchmark path)
// and Spec.Config — they must not diverge, because Spec.Hash() encodes the
// machine this function produces.
func applyShrink(cfg config.Config, ov config.Overrides) config.Config {
	if ov.MeshWidth == 0 && ov.MeshHeight == 0 {
		cfg.MeshWidth, cfg.MeshHeight = meshFor(cfg.Cores)
	}
	if ov.MemControllers == 0 && cfg.MemControllers > cfg.Cores {
		cfg.MemControllers = cfg.Cores
	}
	if ov.FilterDirEntries == 0 && cfg.FilterDirEntries < cfg.Cores {
		cfg.FilterDirEntries = cfg.Cores
	}
	return cfg
}

// shrink reconfigures the mesh for a smaller core count (tests, benches).
func shrink(cfg config.Config, cores int) config.Config {
	cfg.Cores = cores
	return applyShrink(cfg, config.Overrides{})
}
