package system

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workloads"
)

// TestSpecHashV3Golden pins the hybridsim-spec-v3 encoding to fixed
// digests, for NAS-default, knob-bearing and workload-param-bearing Specs.
// If this test fails, the canonical encoding changed: every cached result
// in every deployed rescache directory silently misses, so the change must
// be deliberate and must bump the version prefix (DESIGN.md §8).
func TestSpecHashV3Golden(t *testing.T) {
	plain := Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Small}
	if got, want := plain.Hash(), "efa642c9b6ae65a93979d3266aea9ef200851f8d786d4318934c14355c5a7caf"; got != want {
		t.Errorf("plain spec hash = %s, want %s", got, want)
	}
	withKnobs := plain
	withKnobs.Overrides.L1DSize = 65536
	withKnobs.Overrides.FilterEntries = 16
	withKnobs.Seed = 7
	withKnobs.MaxEvents = 1 << 20
	if got, want := withKnobs.Hash(), "17fe4177ec40dc748c79d9ad634c7afda683188bcd4477254f79a57527effa51"; got != want {
		t.Errorf("knob-bearing spec hash = %s, want %s", got, want)
	}
	withParams := Spec{System: config.HybridReal, Benchmark: "stream", Scale: workloads.Small,
		Params: "stride=128"}
	if got, want := withParams.Hash(), "e66dbd184f9be8ff609e102950d9ff5c300c759a11e7f20f586528b588394278"; got != want {
		t.Errorf("param-bearing spec hash = %s, want %s", got, want)
	}
	if got, want := withParams.Key(), "stream:stride=128/hybrid/small"; got != want {
		t.Errorf("param-bearing Key = %q, want %q", got, want)
	}
	both := withParams
	both.Overrides.Cores = 8
	if got, want := both.Hash(), "fc6e684e44eb1b920c7e694b80a6831601ddd248de02862ed1516e7f57b42d53"; got != want {
		t.Errorf("param+knob spec hash = %s, want %s", got, want)
	}
	if got, want := both.Key(), "stream:stride=128/hybrid/small/cores=8/mesh_width=2/mesh_height=4/mem_controllers=8"; got != want {
		t.Errorf("param+knob Key = %q, want %q", got, want)
	}
}

// TestSpecParamDefaultNormalization is the cache-address contract of the
// acceptance criteria: the default-param spelling and the explicit-default
// spelling of one run share one Key and one Hash, while two distinct
// parameter values never do.
func TestSpecParamDefaultNormalization(t *testing.T) {
	unset := Spec{System: config.HybridReal, Benchmark: "stream", Scale: workloads.Tiny}
	explicit := unset
	explicit.Params = "stride=8" // the registry default, spelled out
	if unset.Hash() != explicit.Hash() || unset.Key() != explicit.Key() {
		t.Fatalf("explicit-default params changed identity: %q vs %q", explicit.Key(), unset.Key())
	}
	s128 := unset
	s128.Params = "stride=128"
	s256 := unset
	s256.Params = "stride=256"
	if s128.Hash() == s256.Hash() || s128.Hash() == unset.Hash() {
		t.Fatal("distinct stride values share a content address")
	}
	if s128.Key() == s256.Key() {
		t.Fatal("distinct stride values share a Key")
	}
	// Spelling order does not matter: the diff renders in declaration
	// order either way.
	a := Spec{System: config.HybridReal, Benchmark: "stream", Scale: workloads.Tiny,
		Params: "streams=4,stride=128"}
	b := Spec{System: config.HybridReal, Benchmark: "stream", Scale: workloads.Tiny,
		Params: "stride=128,streams=4"}
	if a.Hash() != b.Hash() || a.Key() != b.Key() {
		t.Fatalf("param spelling order changed identity: %q vs %q", a.Key(), b.Key())
	}
}

// TestSpecValidateParamsFromRegistry: Spec validation derives from the
// workloads registry — undeclared parameters, out-of-range values and
// unparsable payloads are rejected before queueing, hashing or running.
func TestSpecValidateParamsFromRegistry(t *testing.T) {
	good := Spec{System: config.HybridReal, Benchmark: "ptrchase", Scale: workloads.Tiny,
		Params: "hot_pct=90,footprint=65536"}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Spec{
		{System: config.HybridReal, Benchmark: "ptrchase", Scale: workloads.Tiny, Params: "warp=1"},
		{System: config.HybridReal, Benchmark: "ptrchase", Scale: workloads.Tiny, Params: "hot_pct=101"},
		{System: config.HybridReal, Benchmark: "ptrchase", Scale: workloads.Tiny, Params: "hot_pct"},
		{System: config.HybridReal, Benchmark: "CG", Scale: workloads.Tiny, Params: "n=10"},
	}
	for _, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate accepted %q on %s", s.Params, s.Benchmark)
		}
		if _, err := s.Execute(); err == nil {
			t.Errorf("Execute accepted %q on %s", s.Params, s.Benchmark)
		}
	}
}

// TestSpecParamsJSONRoundTrip: params travel the wire as a sparse JSON
// object and decode back to the canonical declaration-order string, with
// identity intact.
func TestSpecParamsJSONRoundTrip(t *testing.T) {
	s := Spec{System: config.HybridReal, Benchmark: "stream", Scale: workloads.Tiny,
		Params: "n=4096,stride=128", Cores: 4}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"params"`) || !strings.Contains(string(b), `"stride":128`) {
		t.Fatalf("wire form lacks the params object: %s", b)
	}
	var got Spec
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip changed the Spec:\n got %+v\nwant %+v", got, s)
	}
	if got.Key() != s.Key() || got.Hash() != s.Hash() {
		t.Fatal("round trip changed identity")
	}
	// A wire object in any key order decodes to the same canonical Spec.
	var reordered Spec
	if err := json.Unmarshal([]byte(`{"system":"hybrid","benchmark":"stream","scale":"tiny","cores":4,"params":{"stride":128,"n":4096}}`), &reordered); err != nil {
		t.Fatal(err)
	}
	if reordered != s {
		t.Fatalf("reordered wire decoded to %+v, want %+v", reordered, s)
	}
	// Bad params die at decode time, like every other invalid Spec field.
	if err := json.Unmarshal([]byte(`{"system":"hybrid","benchmark":"stream","scale":"tiny","params":{"warp":1}}`), &got); err == nil {
		t.Fatal("decode accepted an undeclared workload parameter")
	}
}

// TestSpecParamsAffectResults: the end-to-end guarantee the redesign exists
// for — a workload parameter must reach the machine and perturb the
// measurements.
func TestSpecParamsAffectResults(t *testing.T) {
	base := Spec{System: config.HybridReal, Benchmark: "stream", Scale: workloads.Tiny, Cores: 4}
	rBase, err := base.Execute()
	if err != nil {
		t.Fatal(err)
	}
	wide := base
	wide.Params = "stride=512"
	rWide, err := wide.Execute()
	if err != nil {
		t.Fatal(err)
	}
	// A 512-byte stride turns dense SPM streams into cache-hostile GM
	// streams: one touched element per line, no DMA staging.
	if rWide.Cycles <= rBase.Cycles {
		t.Fatalf("wide stride did not slow the run: %d vs %d cycles", rWide.Cycles, rBase.Cycles)
	}
	if rWide.DMALineTransfers >= rBase.DMALineTransfers {
		t.Fatalf("wide stride kept DMA busy: %d vs %d line transfers",
			rWide.DMALineTransfers, rBase.DMALineTransfers)
	}
}
