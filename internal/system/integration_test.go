package system

// End-to-end integration tests: full machines running crafted benchmarks
// that force specific protocol behaviours, checked against the protocol's
// own counters. These exercise the paths the NAS-like workloads never take
// (true aliasing, remote SPM service) through the complete stack —
// compiler -> cores -> DMACs -> protocol -> hierarchy -> NoC -> DRAM.

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/noc"
)

// aliasingBench builds a kernel whose guarded accesses REALLY alias the
// SPM-mapped section — the case alias analysis can never rule out and the
// protocol exists to make safe.
func aliasingBench() *compiler.Benchmark {
	shared := &compiler.Array{Name: "shared", Base: 0x100000, Size: 64 << 10}
	other := &compiler.Array{Name: "other", Base: 0x200000, Size: 64 << 10}
	return &compiler.Benchmark{
		Name:    "alias",
		Repeats: 1,
		Arrays:  []*compiler.Array{shared, other},
		Kernels: []compiler.Kernel{{
			Name:       "k",
			Iters:      8192,
			ComputeOps: 4,
			Refs: []compiler.Ref{
				// The compiler maps this section to the SPMs...
				{Name: "s", Array: shared, Pattern: compiler.Strided},
				{Name: "o", Array: other, Pattern: compiler.Strided, IsWrite: true},
				// ...and this pointer truly dereferences into it.
				{Name: "p", Array: shared, Pattern: compiler.Random, MayAliasSPM: true},
			},
		}},
	}
}

func TestTrueAliasingDivertsToSPMs(t *testing.T) {
	m, err := Build(smallCfg(config.HybridReal), aliasingBench(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	ps := m.Protocol.Stats()
	local := ps.Get("spmdir.hits")
	remote := ps.Get("spmdir.remote_hits")
	if local+remote == 0 {
		t.Fatal("no guarded access was ever diverted despite true aliasing")
	}
	// The random pointer sprays the whole shared array; with 4 cores each
	// mapping a quarter, roughly 3/4 of diverted accesses land remotely.
	if remote == 0 {
		t.Fatal("no remote SPM service (Fig. 5d) despite cross-core aliasing")
	}
	// Remote services move CohProt data packets on the NoC.
	if m.Mesh.Packets(noc.CohProt) == 0 {
		t.Fatal("no protocol traffic for remote SPM services")
	}
	if err := m.Hier.CheckInvariants(); err != nil {
		t.Fatalf("cache coherence corrupted by SPM protocol traffic: %v", err)
	}
}

func TestTrueAliasingFilterStaysClean(t *testing.T) {
	// A base address that is mapped to some SPM must never be cached in a
	// filter — otherwise a later access would read the stale GM copy.
	m, err := Build(smallCfg(config.HybridReal), aliasingBench(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	// Every filter insert must have been for an unmapped base; the
	// aliasing accesses hit bases that are mapped while tiles are live,
	// so NACK resolutions must exceed zero and inserts must stay below
	// total filter misses.
	ps := m.Protocol.Stats()
	if ps.Get("filter.inserts") > ps.Get("filter.misses") {
		t.Fatalf("more filter inserts (%d) than misses (%d)",
			ps.Get("filter.inserts"), ps.Get("filter.misses"))
	}
}

func TestIdealAndRealAgreeOnServing(t *testing.T) {
	// The ideal oracle and the real protocol must divert the same
	// accesses to SPMs (timing differs; the destination must not).
	counts := map[config.MemorySystem]uint64{}
	for _, sys := range []config.MemorySystem{config.HybridIdeal, config.HybridReal} {
		m, err := Build(smallCfg(sys), aliasingBench(), 11)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(500_000_000); err != nil {
			t.Fatal(err)
		}
		var spmServed uint64
		for _, s := range m.SPMs {
			spmServed += s.Reads() + s.Writes() + s.RemoteReads() + s.RemoteWrites()
		}
		counts[sys] = spmServed
	}
	if counts[config.HybridIdeal] == 0 {
		t.Fatal("oracle never diverted anything")
	}
	// SPM (strided) accesses dominate both counts equally; the guarded
	// diversions add a small delta that must be close between the two
	// (resolution timing races move a handful of accesses either way).
	a, b := float64(counts[config.HybridIdeal]), float64(counts[config.HybridReal])
	if b < 0.95*a || b > 1.05*a {
		t.Fatalf("real protocol served %v SPM accesses, ideal %v — diverging destinations", b, a)
	}
}

func TestPhaseAccountingConsistent(t *testing.T) {
	// Phase cycles must sum to (roughly) cores * finish time: nothing is
	// double-counted or lost in the attribution.
	m, err := Build(smallCfg(config.HybridReal), microBench(), 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for p := isa.Phase(0); p < isa.NumPhases; p++ {
		sum += r.PhaseCycles[p]
	}
	// Cores finish at slightly different times; the sum equals the sum of
	// per-core finish times, bounded by cores * machine finish time.
	upper := uint64(m.Cfg.Cores) * r.Cycles
	if sum > upper {
		t.Fatalf("phase sum %d exceeds cores*cycles %d", sum, upper)
	}
	if sum < upper/2 {
		t.Fatalf("phase sum %d under half of cores*cycles %d — attribution lost", sum, upper)
	}
}

func TestTrafficConservation(t *testing.T) {
	// Every NoC category must be attributable: cache machine has zero
	// DMA/CohProt; hybrid has all six; totals match the category sum.
	for _, sys := range []config.MemorySystem{config.CacheBased, config.HybridReal} {
		m, err := Build(smallCfg(sys), microBench(), 7)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run(200_000_000)
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for c := noc.Category(0); c < noc.NumCategories; c++ {
			sum += r.NoCPackets[c]
		}
		if sum != r.TotalPkts {
			t.Fatalf("%v: category sum %d != total %d", sys, sum, r.TotalPkts)
		}
	}
}

func TestSeedChangesGuardedAddressesOnly(t *testing.T) {
	// Different seeds permute the random addresses but must not change
	// the amount of work: retired instructions stay identical.
	r1, err := Build(smallCfg(config.HybridReal), microBench(), 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r1.Run(200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Build(smallCfg(config.HybridReal), microBench(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.Run(200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Retired != b.Retired {
		t.Fatalf("seed changed retired count: %d vs %d", a.Retired, b.Retired)
	}
	if a.DMALineTransfers != b.DMALineTransfers {
		t.Fatalf("seed changed DMA volume: %d vs %d", a.DMALineTransfers, b.DMALineTransfers)
	}
}
