package config

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Overrides is a sparse, typed view of the machine parameter space: one
// optional field per Config knob, zero meaning "keep the ForSystem default".
// It is the unit the run-declaration API (system.Spec), the sweep axes
// (runner.Axes) and the service wire all share, so any scenario a Config can
// express is reachable without editing Go code. Every knob is a positive
// integer, which is why 0 can double as "unset"; a knob whose meaningful
// range included 0 would need a pointer field instead.
//
// Overrides contains only comparable value fields, so structs embedding it
// (system.Spec) stay usable as map keys and comparable with ==.
type Overrides struct {
	Cores         int `json:"cores,omitempty"`
	MeshWidth     int `json:"mesh_width,omitempty"`
	MeshHeight    int `json:"mesh_height,omitempty"`
	IssueWidth    int `json:"issue_width,omitempty"`
	PipelineDepth int `json:"pipeline_depth,omitempty"`
	ROBEntries    int `json:"rob_entries,omitempty"`
	IQEntries     int `json:"iq_entries,omitempty"`
	LQEntries     int `json:"lq_entries,omitempty"`
	SQEntries     int `json:"sq_entries,omitempty"`
	CoreMLP       int `json:"core_mlp,omitempty"`

	L1ILatency  int `json:"l1i_latency,omitempty"`
	L1ISize     int `json:"l1i_size,omitempty"`
	L1IAssoc    int `json:"l1i_assoc,omitempty"`
	L1DLatency  int `json:"l1d_latency,omitempty"`
	L1DSize     int `json:"l1d_size,omitempty"`
	L1DAssoc    int `json:"l1d_assoc,omitempty"`
	LineSize    int `json:"line_size,omitempty"`
	MSHREntries int `json:"mshr_entries,omitempty"`

	PrefetchDegree   int `json:"prefetch_degree,omitempty"`
	PrefetchTableSz  int `json:"prefetch_table,omitempty"`
	PrefetchDistance int `json:"prefetch_distance,omitempty"`

	L2Latency   int `json:"l2_latency,omitempty"`
	L2SliceSize int `json:"l2_slice_size,omitempty"`
	L2Assoc     int `json:"l2_assoc,omitempty"`

	DirEntriesPerSlice int `json:"dir_entries_per_slice,omitempty"`
	DirAssoc           int `json:"dir_assoc,omitempty"`

	TLBLatency int `json:"tlb_latency,omitempty"`
	TLBEntries int `json:"tlb_entries,omitempty"`
	TLBMissLat int `json:"tlb_miss_latency,omitempty"`

	LinkLatency   int `json:"link_latency,omitempty"`
	RouterLatency int `json:"router_latency,omitempty"`
	FlitBytes     int `json:"flit_bytes,omitempty"`
	LinkBandwidth int `json:"link_bandwidth,omitempty"`

	MemControllers int `json:"mem_controllers,omitempty"`
	MemLatency     int `json:"mem_latency,omitempty"`
	MemCyclesPerLn int `json:"mem_cycles_per_line,omitempty"`

	SPMLatency    int `json:"spm_latency,omitempty"`
	SPMSize       int `json:"spm_size,omitempty"`
	DMACmdQueue   int `json:"dma_cmd_queue,omitempty"`
	DMABusQueue   int `json:"dma_bus_queue,omitempty"`
	DMALineCycles int `json:"dma_line_cycles,omitempty"`

	SPMDirEntries    int `json:"spmdir_entries,omitempty"`
	FilterEntries    int `json:"filter_entries,omitempty"`
	FilterDirEntries int `json:"filterdir_entries,omitempty"`
}

// Knob is one entry of the machine-parameter registry: a stable wire name
// plus accessors into both Config and Overrides, so applying, enumerating,
// parsing and diffing overrides are table loops instead of per-field code
// scattered across callers.
type Knob struct {
	// Name is the stable snake_case identifier used in JSON, -set/-sweep
	// flags, query parameters, Spec.Key() and the v2 hash encoding.
	Name string
	// Field returns the knob's slot in a Config.
	Field func(*Config) *int
	// Over returns the knob's slot in an Overrides.
	Over func(*Overrides) *int
}

// knobs is the registry, in the fixed order the v2 hash encoding and every
// enumeration (Key, Diff, sweep CSV columns) use. Append-only: reordering or
// renaming entries changes canonical hashes and requires a version bump in
// system.Spec.Hash (DESIGN.md §8).
var knobs = []Knob{
	{"cores", func(c *Config) *int { return &c.Cores }, func(o *Overrides) *int { return &o.Cores }},
	{"mesh_width", func(c *Config) *int { return &c.MeshWidth }, func(o *Overrides) *int { return &o.MeshWidth }},
	{"mesh_height", func(c *Config) *int { return &c.MeshHeight }, func(o *Overrides) *int { return &o.MeshHeight }},
	{"issue_width", func(c *Config) *int { return &c.IssueWidth }, func(o *Overrides) *int { return &o.IssueWidth }},
	{"pipeline_depth", func(c *Config) *int { return &c.PipelineDepth }, func(o *Overrides) *int { return &o.PipelineDepth }},
	{"rob_entries", func(c *Config) *int { return &c.ROBEntries }, func(o *Overrides) *int { return &o.ROBEntries }},
	{"iq_entries", func(c *Config) *int { return &c.IQEntries }, func(o *Overrides) *int { return &o.IQEntries }},
	{"lq_entries", func(c *Config) *int { return &c.LQEntries }, func(o *Overrides) *int { return &o.LQEntries }},
	{"sq_entries", func(c *Config) *int { return &c.SQEntries }, func(o *Overrides) *int { return &o.SQEntries }},
	{"core_mlp", func(c *Config) *int { return &c.CoreMLP }, func(o *Overrides) *int { return &o.CoreMLP }},
	{"l1i_latency", func(c *Config) *int { return &c.L1ILatency }, func(o *Overrides) *int { return &o.L1ILatency }},
	{"l1i_size", func(c *Config) *int { return &c.L1ISize }, func(o *Overrides) *int { return &o.L1ISize }},
	{"l1i_assoc", func(c *Config) *int { return &c.L1IAssoc }, func(o *Overrides) *int { return &o.L1IAssoc }},
	{"l1d_latency", func(c *Config) *int { return &c.L1DLatency }, func(o *Overrides) *int { return &o.L1DLatency }},
	{"l1d_size", func(c *Config) *int { return &c.L1DSize }, func(o *Overrides) *int { return &o.L1DSize }},
	{"l1d_assoc", func(c *Config) *int { return &c.L1DAssoc }, func(o *Overrides) *int { return &o.L1DAssoc }},
	{"line_size", func(c *Config) *int { return &c.LineSize }, func(o *Overrides) *int { return &o.LineSize }},
	{"mshr_entries", func(c *Config) *int { return &c.MSHREntries }, func(o *Overrides) *int { return &o.MSHREntries }},
	{"prefetch_degree", func(c *Config) *int { return &c.PrefetchDegree }, func(o *Overrides) *int { return &o.PrefetchDegree }},
	{"prefetch_table", func(c *Config) *int { return &c.PrefetchTableSz }, func(o *Overrides) *int { return &o.PrefetchTableSz }},
	{"prefetch_distance", func(c *Config) *int { return &c.PrefetchDistance }, func(o *Overrides) *int { return &o.PrefetchDistance }},
	{"l2_latency", func(c *Config) *int { return &c.L2Latency }, func(o *Overrides) *int { return &o.L2Latency }},
	{"l2_slice_size", func(c *Config) *int { return &c.L2SliceSize }, func(o *Overrides) *int { return &o.L2SliceSize }},
	{"l2_assoc", func(c *Config) *int { return &c.L2Assoc }, func(o *Overrides) *int { return &o.L2Assoc }},
	{"dir_entries_per_slice", func(c *Config) *int { return &c.DirEntriesPerSlice }, func(o *Overrides) *int { return &o.DirEntriesPerSlice }},
	{"dir_assoc", func(c *Config) *int { return &c.DirAssoc }, func(o *Overrides) *int { return &o.DirAssoc }},
	{"tlb_latency", func(c *Config) *int { return &c.TLBLatency }, func(o *Overrides) *int { return &o.TLBLatency }},
	{"tlb_entries", func(c *Config) *int { return &c.TLBEntries }, func(o *Overrides) *int { return &o.TLBEntries }},
	{"tlb_miss_latency", func(c *Config) *int { return &c.TLBMissLat }, func(o *Overrides) *int { return &o.TLBMissLat }},
	{"link_latency", func(c *Config) *int { return &c.LinkLatency }, func(o *Overrides) *int { return &o.LinkLatency }},
	{"router_latency", func(c *Config) *int { return &c.RouterLatency }, func(o *Overrides) *int { return &o.RouterLatency }},
	{"flit_bytes", func(c *Config) *int { return &c.FlitBytes }, func(o *Overrides) *int { return &o.FlitBytes }},
	{"link_bandwidth", func(c *Config) *int { return &c.LinkBandwidth }, func(o *Overrides) *int { return &o.LinkBandwidth }},
	{"mem_controllers", func(c *Config) *int { return &c.MemControllers }, func(o *Overrides) *int { return &o.MemControllers }},
	{"mem_latency", func(c *Config) *int { return &c.MemLatency }, func(o *Overrides) *int { return &o.MemLatency }},
	{"mem_cycles_per_line", func(c *Config) *int { return &c.MemCyclesPerLn }, func(o *Overrides) *int { return &o.MemCyclesPerLn }},
	{"spm_latency", func(c *Config) *int { return &c.SPMLatency }, func(o *Overrides) *int { return &o.SPMLatency }},
	{"spm_size", func(c *Config) *int { return &c.SPMSize }, func(o *Overrides) *int { return &o.SPMSize }},
	{"dma_cmd_queue", func(c *Config) *int { return &c.DMACmdQueue }, func(o *Overrides) *int { return &o.DMACmdQueue }},
	{"dma_bus_queue", func(c *Config) *int { return &c.DMABusQueue }, func(o *Overrides) *int { return &o.DMABusQueue }},
	{"dma_line_cycles", func(c *Config) *int { return &c.DMALineCycles }, func(o *Overrides) *int { return &o.DMALineCycles }},
	{"spmdir_entries", func(c *Config) *int { return &c.SPMDirEntries }, func(o *Overrides) *int { return &o.SPMDirEntries }},
	{"filter_entries", func(c *Config) *int { return &c.FilterEntries }, func(o *Overrides) *int { return &o.FilterEntries }},
	{"filterdir_entries", func(c *Config) *int { return &c.FilterDirEntries }, func(o *Overrides) *int { return &o.FilterDirEntries }},
}

var knobByName = func() map[string]Knob {
	m := make(map[string]Knob, len(knobs))
	for _, k := range knobs {
		if _, dup := m[k.Name]; dup {
			panic("config: duplicate knob name " + k.Name)
		}
		m[k.Name] = k
	}
	return m
}()

// Knobs returns the registry in its fixed canonical order. The slice is
// shared; callers must not mutate it.
func Knobs() []Knob { return knobs }

// KnobNames lists every knob name in canonical order.
func KnobNames() []string {
	names := make([]string, len(knobs))
	for i, k := range knobs {
		names[i] = k.Name
	}
	return names
}

// KnobByName resolves a wire name to its registry entry.
func KnobByName(name string) (Knob, bool) {
	k, ok := knobByName[name]
	return k, ok
}

// KnobValue is one (knob, value) pair — the element of Diff results, sweep
// axes and the canonical hash encoding.
type KnobValue struct {
	Name  string `json:"name"`
	Value int    `json:"value"`
}

// Set assigns one knob by wire name. Values must be positive: every knob is
// a positive count/size/latency, and 0 is reserved for "unset".
func (o *Overrides) Set(name string, value int) error {
	k, ok := KnobByName(name)
	if !ok {
		return fmt.Errorf("config: unknown knob %q (want one of %v)", name, KnobNames())
	}
	if value <= 0 {
		return fmt.Errorf("config: knob %s=%d must be positive", name, value)
	}
	*k.Over(o) = value
	return nil
}

// IsZero reports whether no knob is overridden.
func (o Overrides) IsZero() bool { return o == Overrides{} }

// Validate rejects negative knob values, which can never name a machine and
// would otherwise be silently treated as "unset minus a perturbed wire form".
func (o Overrides) Validate() error {
	for _, k := range knobs {
		if v := *k.Over(&o); v < 0 {
			return fmt.Errorf("config: negative override %s=%d", k.Name, v)
		}
	}
	return nil
}

// Apply writes every set knob into c, leaving unset knobs at c's values.
func (o Overrides) Apply(c *Config) {
	for _, k := range knobs {
		if v := *k.Over(&o); v > 0 {
			*k.Field(c) = v
		}
	}
}

// List returns every set knob as (name, value) pairs in canonical registry
// order — the enumeration -set flags and ?set= parameters round-trip
// through.
func (o Overrides) List() []KnobValue {
	var out []KnobValue
	for _, k := range knobs {
		if v := *k.Over(&o); v > 0 {
			out = append(out, KnobValue{Name: k.Name, Value: v})
		}
	}
	return out
}

// ConfigDiff returns, in canonical registry order, every knob whose value
// in cfg differs from base. Identity always diffs two materialized Configs
// — never a sparse Overrides against a Config, which would miss derived
// adjustments (mesh re-dimensioning, controller caps) and could collapse
// distinct machines to one content address (DESIGN.md §8).
func ConfigDiff(cfg, base Config) []KnobValue {
	var out []KnobValue
	for _, k := range knobs {
		if v := *k.Field(&cfg); v != *k.Field(&base) {
			out = append(out, KnobValue{Name: k.Name, Value: v})
		}
	}
	return out
}

// ParseValue parses one knob or workload-parameter value: a plain integer
// ("4096"), a binary size suffix ("64k", "2m", "1g"), or integral
// scientific notation ("1e6"). Every value surface — -set, -sweep,
// -workload, -wsweep, and their query-parameter twins — accepts exactly
// this grammar, so a spelling that works on one flag works on all.
func ParseValue(s string) (int, error) {
	if v, err := strconv.Atoi(s); err == nil {
		return v, nil
	}
	if n := len(s); n > 1 {
		shift := 0
		switch s[n-1] {
		case 'k', 'K':
			shift = 10
		case 'm', 'M':
			shift = 20
		case 'g', 'G':
			shift = 30
		}
		if shift > 0 {
			if v, err := strconv.Atoi(s[:n-1]); err == nil {
				return v << shift, nil
			}
		}
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && f == math.Trunc(f) &&
		f >= math.MinInt32 && f <= math.MaxInt32 {
		return int(f), nil
	}
	return 0, fmt.Errorf("not an integer (plain, k/m/g-suffixed, or integral scientific)")
}

// ParseAssignment parses one "name=value" string, the payload of a -set
// flag or a ?set= query parameter.
func ParseAssignment(s string) (name string, value int, err error) {
	name, raw, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return "", 0, fmt.Errorf("config: bad assignment %q (want name=value)", s)
	}
	v, err := ParseValue(strings.TrimSpace(raw))
	if err != nil {
		return "", 0, fmt.Errorf("config: bad value in %q: %w", s, err)
	}
	return strings.TrimSpace(name), v, nil
}

// ParseOverrides folds a list of "name=value" assignments into one
// Overrides, validating every name and value. Later assignments to the same
// knob win, like repeated flags usually do.
func ParseOverrides(assignments []string) (Overrides, error) {
	var o Overrides
	for _, a := range assignments {
		name, v, err := ParseAssignment(a)
		if err != nil {
			return Overrides{}, err
		}
		if err := o.Set(name, v); err != nil {
			return Overrides{}, err
		}
	}
	return o, nil
}
