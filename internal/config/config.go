// Package config describes the simulated manycore. Default() reproduces
// Table 1 of the paper: a 64-core out-of-order x86-like manycore with a
// MOESI-coherent two-level cache hierarchy, a mesh NoC and, in the hybrid
// configuration, a 32 KB scratchpad plus DMA controller per core.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
)

// MemorySystem selects which machine is simulated.
type MemorySystem int

const (
	// CacheBased is the baseline: no SPMs, and (per the paper's fairness
	// rule) the L1 D-cache is doubled to 64 KB.
	CacheBased MemorySystem = iota
	// HybridIdeal is the hybrid memory system with an oracle coherence
	// protocol: guarded accesses are diverted to the valid copy with no
	// SPMDir/Filter/FilterDir lookups and no protocol traffic.
	HybridIdeal
	// HybridReal is the hybrid memory system with the paper's coherence
	// protocol (SPMDirs, Filters, FilterDir).
	HybridReal
)

func (m MemorySystem) String() string {
	switch m {
	case CacheBased:
		return "cache"
	case HybridIdeal:
		return "hybrid-ideal"
	case HybridReal:
		return "hybrid"
	default:
		return fmt.Sprintf("MemorySystem(%d)", int(m))
	}
}

// MarshalJSON encodes the system by its stable name, so JSON result sinks
// stay readable and robust against enum reordering.
func (m MemorySystem) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.String())
}

// UnmarshalJSON accepts the names MarshalJSON produces.
func (m *MemorySystem) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for _, v := range []MemorySystem{CacheBased, HybridIdeal, HybridReal} {
		if v.String() == s {
			*m = v
			return nil
		}
	}
	return fmt.Errorf("config: unknown memory system %q", s)
}

// ParseMemorySystem maps a user-facing name to its MemorySystem. It accepts
// the canonical String() names plus "ideal", the short form every CLI flag
// and API query parameter uses for HybridIdeal.
func ParseMemorySystem(name string) (MemorySystem, error) {
	switch name {
	case "cache":
		return CacheBased, nil
	case "hybrid":
		return HybridReal, nil
	case "ideal", "hybrid-ideal":
		return HybridIdeal, nil
	default:
		return 0, fmt.Errorf("config: unknown memory system %q (want cache, hybrid or ideal)", name)
	}
}

// Config holds every machine parameter. Sizes are bytes unless suffixed.
type Config struct {
	System MemorySystem

	// Cores and pipeline (Table 1, "Cores" / "Pipeline" / "Execution").
	Cores         int // 64
	MeshWidth     int // 8
	MeshHeight    int // 8
	IssueWidth    int // 6 instructions wide
	PipelineDepth int // 13 cycles front end (flush penalty)
	ROBEntries    int // 160
	IQEntries     int // 64
	LQEntries     int // 48
	SQEntries     int // 32
	// CoreMLP approximates the memory-level parallelism the 160-entry ROB
	// extracts from dependent code: how many loads may be outstanding
	// before issue stalls. (Full dependence tracking is out of scope; see
	// DESIGN.md §2.)
	CoreMLP int

	// L1 caches.
	L1ILatency  int // 2 cycles
	L1ISize     int // 32 KB
	L1IAssoc    int // 4
	L1DLatency  int // 2 cycles
	L1DSize     int // 32 KB (64 KB for CacheBased, applied by Normalize)
	L1DAssoc    int // 4
	LineSize    int // 64 B
	MSHREntries int // outstanding L1 misses per core

	// Stride prefetcher attached to the L1D.
	PrefetchDegree   int // lines fetched ahead on a detected stream
	PrefetchTableSz  int // tracked streams per core
	PrefetchDistance int // lines of lookahead before steady state

	// Shared L2 NUCA (sliced per core).
	L2Latency   int // 15 cycles
	L2SliceSize int // 256 KB per core
	L2Assoc     int // 16

	// Cache directory.
	DirEntriesPerSlice int // 64K total / cores
	DirAssoc           int // 4

	// TLB (hybrid SPM accesses bypass it entirely).
	TLBLatency int // cycles added on the L1 path for GM accesses
	TLBEntries int
	TLBMissLat int // page-walk cost

	// NoC.
	LinkLatency   int // 1 cycle
	RouterLatency int // 1 cycle
	FlitBytes     int // link width; packets serialize into flits
	LinkBandwidth int // flits accepted per link per cycle

	// DRAM.
	MemControllers int
	MemLatency     int // fixed access latency, cycles
	MemCyclesPerLn int // inverse bandwidth: cycles per 64B line per controller

	// SPM + DMA (hybrid only).
	SPMLatency    int // 2 cycles
	SPMSize       int // 32 KB
	DMACmdQueue   int // 32 entries
	DMABusQueue   int // 512 entries
	DMALineCycles int // issue rate: cycles between line-granule bus requests

	// Coherence-protocol structures (the paper's contribution).
	SPMDirEntries    int // 32
	FilterEntries    int // 48, fully associative, pseudoLRU
	FilterDirEntries int // 4K, distributed across slices, fully associative
}

// Default returns the Table 1 machine (hybrid with the real protocol).
func Default() Config {
	return Config{
		System:        HybridReal,
		Cores:         64,
		MeshWidth:     8,
		MeshHeight:    8,
		IssueWidth:    6,
		PipelineDepth: 13,
		ROBEntries:    160,
		IQEntries:     64,
		LQEntries:     48,
		SQEntries:     32,
		CoreMLP:       8,

		L1ILatency:  2,
		L1ISize:     32 << 10,
		L1IAssoc:    4,
		L1DLatency:  2,
		L1DSize:     32 << 10,
		L1DAssoc:    4,
		LineSize:    64,
		MSHREntries: 64,

		PrefetchDegree:   2,
		PrefetchTableSz:  32,
		PrefetchDistance: 8,

		L2Latency:   15,
		L2SliceSize: 32 << 10, // 256KB/core in the paper, scaled with the
		// workload footprints (DESIGN.md §5) so the footprint:LLC ratio
		// of Table 2 is preserved
		L2Assoc: 16,

		DirEntriesPerSlice: 64 << 10 / 64,
		DirAssoc:           4,

		TLBLatency: 1,
		TLBEntries: 64,
		TLBMissLat: 30,

		LinkLatency:   1,
		RouterLatency: 1,
		FlitBytes:     32,
		LinkBandwidth: 4,

		MemControllers: 16,
		MemLatency:     100,
		MemCyclesPerLn: 1,

		SPMLatency:    2,
		SPMSize:       32 << 10,
		DMACmdQueue:   32,
		DMABusQueue:   512,
		DMALineCycles: 1,

		SPMDirEntries:    32,
		FilterEntries:    48,
		FilterDirEntries: 4 << 10,
	}
}

// ForSystem returns the default machine configured as the given system,
// applying the paper's fairness rule (CacheBased gets a 64 KB L1D matching
// the hybrid's 32 KB L1D + 32 KB SPM, at unchanged latency).
func ForSystem(sys MemorySystem) Config {
	c := Default()
	c.System = sys
	if sys == CacheBased {
		c.L1DSize = 64 << 10
	}
	return c
}

// SmallTest returns a scaled-down machine for unit tests: 4 cores, small
// caches, same structure. Protocol state machines are identical.
func SmallTest() Config {
	c := Default()
	c.Cores = 4
	c.MeshWidth = 2
	c.MeshHeight = 2
	c.L1DSize = 4 << 10
	c.L1ISize = 4 << 10
	c.L2SliceSize = 16 << 10
	c.SPMSize = 4 << 10
	c.DirEntriesPerSlice = 1 << 10
	c.FilterEntries = 8
	c.FilterDirEntries = 64
	c.SPMDirEntries = 8
	c.MemControllers = 1
	return c
}

// HasSPM reports whether this configuration includes scratchpads.
func (c Config) HasSPM() bool { return c.System != CacheBased }

// IdealCoherence reports whether guarded accesses are resolved by an oracle.
func (c Config) IdealCoherence() bool { return c.System == HybridIdeal }

// Validate checks structural invariants; models assume these hold.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return errors.New("config: Cores must be positive")
	}
	if c.MeshWidth*c.MeshHeight != c.Cores {
		return fmt.Errorf("config: mesh %dx%d does not cover %d cores",
			c.MeshWidth, c.MeshHeight, c.Cores)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("config: LineSize %d must be a power of two", c.LineSize)
	}
	for _, p := range []struct {
		name      string
		size, ass int
	}{
		{"L1I", c.L1ISize, c.L1IAssoc},
		{"L1D", c.L1DSize, c.L1DAssoc},
		{"L2 slice", c.L2SliceSize, c.L2Assoc},
	} {
		if p.size <= 0 || p.ass <= 0 {
			return fmt.Errorf("config: %s size/assoc must be positive", p.name)
		}
		sets := p.size / (p.ass * c.LineSize)
		if sets <= 0 || sets&(sets-1) != 0 {
			return fmt.Errorf("config: %s sets %d must be a power of two", p.name, sets)
		}
	}
	if c.HasSPM() {
		if c.SPMSize <= 0 || c.SPMSize%c.LineSize != 0 {
			return fmt.Errorf("config: SPMSize %d must be a positive multiple of LineSize", c.SPMSize)
		}
		if c.SPMDirEntries <= 0 || c.FilterEntries <= 0 || c.FilterDirEntries <= 0 {
			return errors.New("config: protocol structure sizes must be positive")
		}
		if c.DMACmdQueue <= 0 || c.DMABusQueue <= 0 {
			return errors.New("config: DMA queue sizes must be positive")
		}
	}
	if c.MemControllers <= 0 {
		return errors.New("config: MemControllers must be positive")
	}
	if c.FlitBytes <= 0 {
		return errors.New("config: FlitBytes must be positive")
	}
	if c.LinkBandwidth <= 0 {
		return errors.New("config: LinkBandwidth must be positive")
	}
	if c.IssueWidth <= 0 || c.ROBEntries <= 0 || c.LQEntries <= 0 || c.SQEntries <= 0 {
		return errors.New("config: pipeline parameters must be positive")
	}
	// Capacity knobs an Overrides can now reach directly: a zero here wires a
	// machine that deadlocks (no MSHRs, no issue window) or divides by zero,
	// so fail fast instead.
	for _, p := range []struct {
		name string
		v    int
	}{
		{"MSHREntries", c.MSHREntries},
		{"CoreMLP", c.CoreMLP},
		{"IQEntries", c.IQEntries},
		{"TLBEntries", c.TLBEntries},
		{"PrefetchDegree", c.PrefetchDegree},
		{"PrefetchTableSz", c.PrefetchTableSz},
		{"PrefetchDistance", c.PrefetchDistance},
		{"MemCyclesPerLn", c.MemCyclesPerLn},
	} {
		if p.v <= 0 {
			return fmt.Errorf("config: %s %d must be positive", p.name, p.v)
		}
	}
	// Latencies may legitimately be zero (a free structure) but never
	// negative — a negative latency schedules events into the past.
	for _, p := range []struct {
		name string
		v    int
	}{
		{"L1ILatency", c.L1ILatency},
		{"L1DLatency", c.L1DLatency},
		{"L2Latency", c.L2Latency},
		{"TLBLatency", c.TLBLatency},
		{"TLBMissLat", c.TLBMissLat},
		{"LinkLatency", c.LinkLatency},
		{"RouterLatency", c.RouterLatency},
		{"MemLatency", c.MemLatency},
		{"SPMLatency", c.SPMLatency},
		{"DMALineCycles", c.DMALineCycles},
	} {
		if p.v < 0 {
			return fmt.Errorf("config: %s %d must not be negative", p.name, p.v)
		}
	}
	return nil
}
