package config

import "testing"

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"Cores", c.Cores, 64},
		{"IssueWidth", c.IssueWidth, 6},
		{"PipelineDepth", c.PipelineDepth, 13},
		{"ROBEntries", c.ROBEntries, 160},
		{"IQEntries", c.IQEntries, 64},
		{"LQEntries", c.LQEntries, 48},
		{"SQEntries", c.SQEntries, 32},
		{"L1DLatency", c.L1DLatency, 2},
		{"L1DSize", c.L1DSize, 32 << 10},
		{"L1DAssoc", c.L1DAssoc, 4},
		{"L2Latency", c.L2Latency, 15},
		// 256 KB/core in the paper, scaled with the workload footprints
		// to preserve the footprint:LLC ratio (DESIGN.md §5).
		{"L2SliceSize", c.L2SliceSize, 32 << 10},
		{"L2Assoc", c.L2Assoc, 16},
		{"LineSize", c.LineSize, 64},
		{"LinkLatency", c.LinkLatency, 1},
		{"RouterLatency", c.RouterLatency, 1},
		{"SPMLatency", c.SPMLatency, 2},
		{"SPMSize", c.SPMSize, 32 << 10},
		{"DMACmdQueue", c.DMACmdQueue, 32},
		{"DMABusQueue", c.DMABusQueue, 512},
		{"SPMDirEntries", c.SPMDirEntries, 32},
		{"FilterEntries", c.FilterEntries, 48},
		{"FilterDirEntries", c.FilterDirEntries, 4 << 10},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestForSystemFairnessRule(t *testing.T) {
	cb := ForSystem(CacheBased)
	if cb.L1DSize != 64<<10 {
		t.Fatalf("cache-based L1D = %d, want 64KB", cb.L1DSize)
	}
	if cb.L1DLatency != Default().L1DLatency {
		t.Fatal("fairness rule must not change L1D latency")
	}
	if cb.HasSPM() {
		t.Fatal("cache-based system must not have SPMs")
	}
	hy := ForSystem(HybridReal)
	if hy.L1DSize != 32<<10 || !hy.HasSPM() {
		t.Fatalf("hybrid L1D = %d, HasSPM = %v", hy.L1DSize, hy.HasSPM())
	}
	if err := cb.Validate(); err != nil {
		t.Fatalf("cache-based invalid: %v", err)
	}
}

func TestIdealCoherence(t *testing.T) {
	if !ForSystem(HybridIdeal).IdealCoherence() {
		t.Fatal("HybridIdeal must report ideal coherence")
	}
	if ForSystem(HybridReal).IdealCoherence() {
		t.Fatal("HybridReal must not report ideal coherence")
	}
	if ForSystem(CacheBased).IdealCoherence() {
		t.Fatal("CacheBased must not report ideal coherence")
	}
}

func TestSmallTestValid(t *testing.T) {
	c := SmallTest()
	if err := c.Validate(); err != nil {
		t.Fatalf("SmallTest invalid: %v", err)
	}
	if c.Cores != 4 || c.MeshWidth*c.MeshHeight != 4 {
		t.Fatalf("SmallTest geometry: %d cores, %dx%d", c.Cores, c.MeshWidth, c.MeshHeight)
	}
}

func TestValidateRejectsBadMesh(t *testing.T) {
	c := Default()
	c.MeshWidth = 7
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted 7x8 mesh for 64 cores")
	}
}

func TestValidateRejectsBadLineSize(t *testing.T) {
	c := Default()
	c.LineSize = 48
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted non-power-of-two line size")
	}
}

func TestValidateRejectsNonPow2Sets(t *testing.T) {
	c := Default()
	c.L1DSize = 3 << 10 // 3KB/4-way/64B = 12 sets
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted non-power-of-two set count")
	}
}

func TestValidateRejectsZeroQueues(t *testing.T) {
	c := Default()
	c.DMACmdQueue = 0
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted zero DMA command queue")
	}
}

func TestValidateCacheBasedIgnoresSPMFields(t *testing.T) {
	c := ForSystem(CacheBased)
	c.SPMSize = 0 // irrelevant without SPMs
	c.SPMDirEntries = 0
	if err := c.Validate(); err != nil {
		t.Fatalf("cache-based config should ignore SPM fields: %v", err)
	}
}

func TestSystemString(t *testing.T) {
	for sys, want := range map[MemorySystem]string{
		CacheBased:  "cache",
		HybridIdeal: "hybrid-ideal",
		HybridReal:  "hybrid",
	} {
		if sys.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(sys), sys.String(), want)
		}
	}
}
