package config

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestKnobRegistryCoversEveryConfigKnob pins the registry to the Config
// struct: every int field of Config (everything but the System enum) must
// have exactly one registry entry, and every registry entry must address a
// distinct field in both Config and Overrides. A knob added to Config
// without a registry entry would be silently unsweepable.
func TestKnobRegistryCoversEveryConfigKnob(t *testing.T) {
	intFields := 0
	rt := reflect.TypeOf(Config{})
	for i := 0; i < rt.NumField(); i++ {
		if rt.Field(i).Type == reflect.TypeOf(int(0)) {
			intFields++
		}
	}
	if got := len(Knobs()); got != intFields {
		t.Fatalf("registry has %d knobs, Config has %d int fields", got, intFields)
	}
	if ot := reflect.TypeOf(Overrides{}); ot.NumField() != intFields {
		t.Fatalf("Overrides has %d fields, Config has %d int knobs", ot.NumField(), intFields)
	}

	var c Config
	var o Overrides
	seenCfg := map[*int]string{}
	seenOv := map[*int]string{}
	for _, k := range Knobs() {
		if prev, dup := seenCfg[k.Field(&c)]; dup {
			t.Fatalf("knobs %s and %s share a Config field", prev, k.Name)
		}
		if prev, dup := seenOv[k.Over(&o)]; dup {
			t.Fatalf("knobs %s and %s share an Overrides field", prev, k.Name)
		}
		seenCfg[k.Field(&c)] = k.Name
		seenOv[k.Over(&o)] = k.Name
	}
}

// TestKnobNamesMatchJSONTags: a knob's registry name is also its JSON wire
// name, so -set flags, ?set= parameters and {"overrides":{...}} bodies all
// speak one vocabulary.
func TestKnobNamesMatchJSONTags(t *testing.T) {
	var o Overrides
	ot := reflect.TypeOf(o)
	tags := map[string]bool{}
	for i := 0; i < ot.NumField(); i++ {
		tag := strings.TrimSuffix(ot.Field(i).Tag.Get("json"), ",omitempty")
		tags[tag] = true
	}
	for _, name := range KnobNames() {
		if !tags[name] {
			t.Errorf("knob %q has no matching Overrides JSON tag", name)
		}
	}
}

func TestOverridesApplyAndConfigDiff(t *testing.T) {
	var o Overrides
	if err := o.Set("l1d_size", 64<<10); err != nil {
		t.Fatal(err)
	}
	if err := o.Set("filter_entries", 16); err != nil {
		t.Fatal(err)
	}
	base := ForSystem(HybridReal)
	cfg := base
	o.Apply(&cfg)
	if cfg.L1DSize != 64<<10 || cfg.FilterEntries != 16 {
		t.Fatalf("Apply missed: L1DSize=%d FilterEntries=%d", cfg.L1DSize, cfg.FilterEntries)
	}
	if cfg.Cores != base.Cores {
		t.Fatalf("Apply perturbed an unset knob: Cores=%d", cfg.Cores)
	}
	diff := ConfigDiff(cfg, base)
	want := []KnobValue{{"l1d_size", 64 << 10}, {"filter_entries", 16}}
	if !reflect.DeepEqual(diff, want) {
		t.Fatalf("ConfigDiff = %v, want %v", diff, want)
	}
	// A knob set to its default value is not a difference.
	var od Overrides
	od.Set("cores", base.Cores)
	cfg = base
	od.Apply(&cfg)
	if d := ConfigDiff(cfg, base); len(d) != 0 {
		t.Fatalf("default-valued override diffed: %v", d)
	}
}

func TestOverridesSetRejectsBadInput(t *testing.T) {
	var o Overrides
	if err := o.Set("warp_drive", 1); err == nil || !strings.Contains(err.Error(), "warp_drive") {
		t.Fatalf("unknown knob: err = %v", err)
	}
	if err := o.Set("cores", 0); err == nil {
		t.Fatal("Set accepted 0")
	}
	if err := o.Set("cores", -4); err == nil {
		t.Fatal("Set accepted a negative value")
	}
}

func TestParseOverrides(t *testing.T) {
	o, err := ParseOverrides([]string{"l1d_size=65536", "cores=16", "cores=8"})
	if err != nil {
		t.Fatal(err)
	}
	if o.L1DSize != 65536 || o.Cores != 8 {
		t.Fatalf("parsed %+v, want l1d_size=65536 cores=8 (last assignment wins)", o)
	}
	for _, bad := range []string{"cores", "=4", "cores=abc", "cores=-1", "nope=1"} {
		if _, err := ParseOverrides([]string{bad}); err == nil {
			t.Errorf("ParseOverrides accepted %q", bad)
		}
	}
}

func TestOverridesJSONSparse(t *testing.T) {
	var o Overrides
	o.Set("l1d_size", 65536)
	b, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"l1d_size":65536}` {
		t.Fatalf("wire form %s, want only the set knob", b)
	}
	var got Overrides
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != o {
		t.Fatalf("round trip changed Overrides: %+v vs %+v", got, o)
	}
}

func TestOverridesValidate(t *testing.T) {
	var o Overrides
	o.MemLatency = -1
	if err := o.Validate(); err == nil || !strings.Contains(err.Error(), "mem_latency") {
		t.Fatalf("err = %v, want negative mem_latency rejection", err)
	}
	o = Overrides{}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestValidateRejectsDegenerateCapacities pins the Validate gap fix: knobs
// an Overrides can now zero out must be rejected, not wired.
func TestValidateRejectsDegenerateCapacities(t *testing.T) {
	fields := []string{"MSHREntries", "CoreMLP", "IQEntries", "TLBEntries",
		"PrefetchDegree", "PrefetchTableSz", "PrefetchDistance", "MemCyclesPerLn"}
	for _, f := range fields {
		c := Default()
		reflect.ValueOf(&c).Elem().FieldByName(f).SetInt(0)
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted %s = 0", f)
		}
	}
	lat := []string{"L1ILatency", "L1DLatency", "L2Latency", "TLBLatency", "TLBMissLat",
		"LinkLatency", "RouterLatency", "MemLatency", "SPMLatency", "DMALineCycles"}
	for _, f := range lat {
		c := Default()
		reflect.ValueOf(&c).Elem().FieldByName(f).SetInt(-1)
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted %s = -1", f)
		}
		c = Default()
		reflect.ValueOf(&c).Elem().FieldByName(f).SetInt(0)
		if err := c.Validate(); err != nil {
			t.Errorf("Validate rejected %s = 0: %v (zero latency is legal)", f, err)
		}
	}
}

// TestParseValueGrammarSharedWithSet: the -set flag accepts the same value
// spellings as every sweep axis (plain, k/m/g suffixes, integral
// scientific) — one grammar for every surface.
func TestParseValueGrammarSharedWithSet(t *testing.T) {
	ov, err := ParseOverrides([]string{"l1d_size=64k", "mem_latency=1e2"})
	if err != nil {
		t.Fatal(err)
	}
	if ov.L1DSize != 64<<10 || ov.MemLatency != 100 {
		t.Fatalf("suffixed -set values parsed as %+v", ov)
	}
	if _, err := ParseOverrides([]string{"l1d_size=64q"}); err == nil {
		t.Fatal("ParseOverrides accepted a bogus suffix")
	}
}
