package osched

import (
	"testing"

	"repro/internal/sim"
)

func newSched(t *testing.T) *Scheduler {
	t.Helper()
	return New(sim.NewEngine(), 4, DefaultCosts())
}

func TestLegacyProcessCannotSeeSPMs(t *testing.T) {
	s := newSched(t)
	s.Register(&Process{ID: 1, SPMEnabled: false})
	cost := s.Switch(0, 1)
	if cost != 0 {
		t.Fatalf("legacy switch onto idle core cost %d, want 0 (no registers to restore)", cost)
	}
	if s.SPMPowered(0) {
		t.Fatal("idle SPM stayed powered under a legacy process")
	}
	if pen, ok := s.Access(0, 0); ok || pen == 0 {
		t.Fatalf("legacy SPM access allowed (pen=%d ok=%v)", pen, ok)
	}
}

func TestSPMEnabledFastPath(t *testing.T) {
	s := newSched(t)
	s.Register(&Process{ID: 2, SPMEnabled: true})
	s.Switch(1, 2)
	pen, ok := s.Access(1, 1)
	if !ok || pen != 0 {
		t.Fatalf("local SPM access after switch: pen=%d ok=%v, want fast path", pen, ok)
	}
	if !s.SPMPowered(1) {
		t.Fatal("SPM not powered for an SPM-enabled process")
	}
}

func TestLazySPMSwitch(t *testing.T) {
	s := newSched(t)
	s.Register(&Process{ID: 2, SPMEnabled: true})
	s.Register(&Process{ID: 3, SPMEnabled: true})
	s.Switch(0, 2)
	s.MarkSPMUse(0) // process 2 fills its SPM

	// Switch to process 3: contents must NOT be saved yet.
	s.Switch(0, 3)
	_, lazy, spills, _, _ := s.Stats()
	if lazy != 1 {
		t.Fatalf("lazySkips = %d, want 1", lazy)
	}
	if spills != 0 {
		t.Fatalf("spills = %d, want 0 (lazy)", spills)
	}

	// First touch by process 3 faults, spills 2's contents, fills 3's.
	pen, ok := s.Access(0, 0)
	if !ok {
		t.Fatal("lazy-switch fault not serviced")
	}
	c := DefaultCosts()
	if pen != c.Exception+c.SPMSpill+c.SPMFill {
		t.Fatalf("fault penalty = %d, want %d", pen, c.Exception+c.SPMSpill+c.SPMFill)
	}
	_, _, spills, exc, _ := s.Stats()
	if spills != 1 || exc != 1 {
		t.Fatalf("spills=%d exceptions=%d", spills, exc)
	}

	// Subsequent accesses are back on the fast path.
	if pen, ok := s.Access(0, 0); !ok || pen != 0 {
		t.Fatalf("post-fault access pen=%d ok=%v", pen, ok)
	}
}

func TestSameProcessReschedulesWithoutFault(t *testing.T) {
	s := newSched(t)
	s.Register(&Process{ID: 2, SPMEnabled: true})
	s.Register(&Process{ID: 9, SPMEnabled: false})
	s.Switch(0, 2)
	s.MarkSPMUse(0)
	s.Switch(0, 9) // legacy interlude; SPM contents stay (lazy)
	s.Switch(0, 2) // process 2 returns
	if pen, ok := s.Access(0, 0); !ok || pen != 0 {
		t.Fatalf("returning owner faulted: pen=%d ok=%v", pen, ok)
	}
	_, _, spills, _, _ := s.Stats()
	if spills != 0 {
		t.Fatalf("spills = %d, want 0 (contents were still the owner's)", spills)
	}
}

func TestRemoteSPMNeedsGrant(t *testing.T) {
	s := newSched(t)
	s.Register(&Process{ID: 2, SPMEnabled: true})
	s.Switch(0, 2)
	if _, ok := s.Access(0, 3); ok {
		t.Fatal("remote SPM access allowed without a grant")
	}
	s.GrantRemote(0, 3)
	if pen, ok := s.Access(0, 3); !ok || pen != 0 {
		t.Fatalf("granted remote access pen=%d ok=%v", pen, ok)
	}
}

func TestPowerDownIdle(t *testing.T) {
	s := newSched(t)
	s.Register(&Process{ID: 2, SPMEnabled: true})
	s.Register(&Process{ID: 9, SPMEnabled: false})
	s.Switch(0, 2)
	s.MarkSPMUse(0)
	// Process 2 exits; a legacy process takes the core.
	delete(s.procs, 2)
	s.Switch(0, 9)
	if n := s.PowerDownIdle(); n != 1 {
		t.Fatalf("PowerDownIdle gated %d SPMs, want 1", n)
	}
	if s.SPMPowered(0) {
		t.Fatal("SPM still powered after gating")
	}
}

func TestSwitchCostAccounting(t *testing.T) {
	s := newSched(t)
	s.Register(&Process{ID: 2, SPMEnabled: true})
	s.Register(&Process{ID: 3, SPMEnabled: true})
	c1 := s.Switch(0, 2) // restore only
	c2 := s.Switch(0, 3) // save + restore
	c := DefaultCosts()
	if c1 != c.RegisterSwap {
		t.Fatalf("first switch cost %d, want %d", c1, c.RegisterSwap)
	}
	if c2 != 2*c.RegisterSwap {
		t.Fatalf("second switch cost %d, want %d", c2, 2*c.RegisterSwap)
	}
	_, _, _, _, cyc := s.Stats()
	if cyc != uint64(c1+c2) {
		t.Fatalf("cyclesLost = %d, want %d", cyc, c1+c2)
	}
}

func TestDuplicatePIDPanics(t *testing.T) {
	s := newSched(t)
	s.Register(&Process{ID: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate PID accepted")
		}
	}()
	s.Register(&Process{ID: 2})
}

func TestUnknownPIDPanics(t *testing.T) {
	s := newSched(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown PID accepted")
		}
	}()
	s.Switch(0, 42)
}
