// Package osched models the operating-system support of paper §4.1: the
// process-structure extensions and context-switch machinery that make the
// hybrid memory system backwards compatible.
//
//   - Every process records whether it is SPM-enabled and, if so, the values
//     of the eight SPM address-mapping registers. Legacy processes run with
//     the mapping disabled, so the SPMs are simply invisible to them.
//   - SPM contents are switched lazily, the way Linux handles the FP register
//     file: on a context switch the SPM is NOT saved; instead SPM access is
//     disabled, and only when some process actually touches an SPM whose
//     contents belong to another process does the OS spill and reload it.
//   - A per-core permission register holds one bit per SPM in the system;
//     accessing an SPM whose bit is clear raises an exception that the OS
//     services (possibly triggering the lazy switch).
//   - The OS powers down SPMs no runnable process uses, saving their leakage.
package osched

import (
	"fmt"

	"repro/internal/sim"
)

// PID identifies a process.
type PID int

// Process is the OS view of one process (§4.1's process-structure fields).
type Process struct {
	ID         PID
	SPMEnabled bool
	// MappingRegs stands for the eight virtual/physical SPM range
	// registers saved and restored at context switch.
	MappingRegs [8]uint64
}

// Costs parameterizes the context-switch overheads in cycles.
type Costs struct {
	RegisterSwap int // save+restore the 8 mapping registers
	SPMSpill     int // write one SPM's contents back to memory
	SPMFill      int // load one SPM's contents from memory
	Exception    int // trap entry/exit for a permission fault
}

// DefaultCosts returns cycle costs in line with §4.1's "minor changes /
// without impacting performance": register swaps are trivial; spills move a
// whole 32 KB SPM through the DMA engine.
func DefaultCosts() Costs {
	return Costs{RegisterSwap: 40, SPMSpill: 1500, SPMFill: 1500, Exception: 300}
}

// coreState tracks what the OS knows about one core and its SPM.
type coreState struct {
	running PID
	// spmOwner is the process whose data currently sits in this core's
	// SPM; 0 (PIDNone) when the SPM is clean/empty.
	spmOwner PID
	// perms[i] is the access bit for SPM i in this core's permission
	// register.
	perms []bool
	// powered reports whether this core's SPM is powered up.
	powered bool
}

// PIDNone marks an empty slot.
const PIDNone PID = 0

// Scheduler is the OS scheduler model.
type Scheduler struct {
	eng   *sim.Engine
	costs Costs
	procs map[PID]*Process
	cores []coreState

	switches   uint64
	lazySkips  uint64 // SPM saves avoided by laziness
	spills     uint64
	fills      uint64
	exceptions uint64
	cyclesLost uint64
}

// New builds a scheduler for a machine with cores cores (one SPM each).
func New(eng *sim.Engine, cores int, costs Costs) *Scheduler {
	if cores <= 0 {
		panic("osched: no cores")
	}
	s := &Scheduler{eng: eng, costs: costs, procs: map[PID]*Process{}}
	for i := 0; i < cores; i++ {
		s.cores = append(s.cores, coreState{
			running:  PIDNone,
			spmOwner: PIDNone,
			perms:    make([]bool, cores),
		})
	}
	return s
}

// Register adds a process. SPM-enabled processes get mapping registers
// configured at creation (the paper: "whenever a SPM-enabled application
// starts, the OS configures the registers ... and stores their values").
func (s *Scheduler) Register(p *Process) {
	if p.ID == PIDNone {
		panic("osched: PID 0 is reserved")
	}
	if _, dup := s.procs[p.ID]; dup {
		panic(fmt.Sprintf("osched: duplicate PID %d", p.ID))
	}
	cp := *p
	s.procs[p.ID] = &cp
}

// Running returns the process occupying core.
func (s *Scheduler) Running(core int) PID { return s.cores[core].running }

// SPMPowered reports whether core's SPM is powered.
func (s *Scheduler) SPMPowered(core int) bool { return s.cores[core].powered }

// Switch schedules process pid onto core and returns the cycle cost charged
// to the switch. The SPM contents are switched lazily: this only swaps the
// mapping registers and flips permissions; any spill/fill is deferred to the
// first faulting access.
func (s *Scheduler) Switch(core int, pid PID) int {
	p, ok := s.procs[pid]
	if !ok {
		panic(fmt.Sprintf("osched: unknown PID %d", pid))
	}
	cs := &s.cores[core]
	cost := 0
	if cs.running != PIDNone {
		cost += s.costs.RegisterSwap // save outgoing mapping registers
	}
	cs.running = pid
	s.switches++

	if p.SPMEnabled {
		cost += s.costs.RegisterSwap // restore incoming mapping registers
		// Grant access to the local SPM only; remote-SPM permissions
		// are granted when sibling threads of the same job run there.
		for i := range cs.perms {
			cs.perms[i] = false
		}
		cs.perms[core] = true
		cs.powered = true
		if cs.spmOwner != PIDNone && cs.spmOwner != pid {
			// Lazy: do NOT spill yet.
			s.lazySkips++
			cs.perms[core] = false // first touch will fault
		}
	} else {
		// Legacy process: mapping disabled, SPMs inaccessible. The SPM
		// keeps the previous owner's data (lazy) but is powered down
		// if it holds nothing.
		for i := range cs.perms {
			cs.perms[i] = false
		}
		if cs.spmOwner == PIDNone {
			cs.powered = false
		}
	}
	s.cyclesLost += uint64(cost)
	return cost
}

// GrantRemote lets the process on core access sibling SPM remote (fork-join
// threads of one job share all of that job's SPMs).
func (s *Scheduler) GrantRemote(core, remote int) {
	s.cores[core].perms[remote] = true
}

// Access models one SPM access by the process on core targeting the SPM of
// core spmIdx. It returns the extra cycles the access suffers (0 on the
// common fast path) and whether it was allowed at all after OS service.
// A clear permission bit raises an exception (§4.1); if the fault is a lazy
// SPM switch, the OS spills the old contents, reloads the new owner's, sets
// the bit and resumes.
func (s *Scheduler) Access(core, spmIdx int) (penalty int, ok bool) {
	cs := &s.cores[core]
	p := s.procs[cs.running]
	if p == nil || !p.SPMEnabled {
		// Legacy code cannot generate SPM addresses at all (mapping
		// disabled): treat as a fault with no service.
		s.exceptions++
		return s.costs.Exception, false
	}
	if cs.perms[spmIdx] {
		return 0, true
	}
	s.exceptions++
	penalty = s.costs.Exception
	if spmIdx == core && cs.spmOwner != PIDNone && cs.spmOwner != cs.running {
		// Lazy SPM switch: spill the previous owner, fill ours.
		penalty += s.costs.SPMSpill + s.costs.SPMFill
		s.spills++
		s.fills++
		cs.spmOwner = cs.running
		cs.perms[core] = true
		s.cyclesLost += uint64(penalty)
		return penalty, true
	}
	if spmIdx == core {
		// First use on a clean SPM: just claim it.
		cs.spmOwner = cs.running
		cs.perms[core] = true
		cs.powered = true
		s.cyclesLost += uint64(penalty)
		return penalty, true
	}
	// Touching a remote SPM without a grant is a protection error the OS
	// surfaces to the process.
	s.cyclesLost += uint64(penalty)
	return penalty, false
}

// MarkSPMUse records that the process on core has populated its SPM (called
// when the runtime issues its first dma-get after a switch).
func (s *Scheduler) MarkSPMUse(core int) {
	cs := &s.cores[core]
	cs.spmOwner = cs.running
	cs.powered = true
}

// PowerDownIdle powers off every SPM whose contents belong to no live
// SPM-enabled process (the §4.1 energy knob). It returns how many SPMs were
// gated.
func (s *Scheduler) PowerDownIdle() int {
	n := 0
	for i := range s.cores {
		cs := &s.cores[i]
		owner := s.procs[cs.spmOwner]
		runner := s.procs[cs.running]
		ownerLive := owner != nil && owner.SPMEnabled
		runnerUses := runner != nil && runner.SPMEnabled
		if cs.powered && !ownerLive && !runnerUses {
			cs.powered = false
			n++
		}
	}
	return n
}

// Stats returns (switches, lazy saves avoided, spills, exceptions, cycles).
func (s *Scheduler) Stats() (switches, lazySkips, spills, exceptions, cycles uint64) {
	return s.switches, s.lazySkips, s.spills, s.exceptions, s.cyclesLost
}
