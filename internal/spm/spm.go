// Package spm models the scratchpad memories of the hybrid memory system
// and the reserved address-range mapping that integrates them into the
// shared virtual address space (paper §2.1, Fig. 2).
//
// The system reserves a contiguous virtual range holding every SPM of the
// chip back to back; each core's eight mapping registers are summarized here
// by the AddressMap. A range check on every memory instruction classifies
// the address before any MMU action; SPM accesses bypass the TLB entirely,
// which is why they are both faster to validate and more energy-efficient
// than cache accesses.
package spm

import (
	"fmt"

	"repro/internal/sim"
)

// DefaultVirtBase is where the global SPM virtual range is reserved. SPMs
// are orders of magnitude smaller than the 64-bit address space, so the
// reservation occupies a negligible portion of it (paper §2.1).
const DefaultVirtBase uint64 = 0xFFFF_0000_0000

// AddressMap is the chip-wide SPM address-space mapping: core i's SPM
// occupies [VirtBase + i*Size, VirtBase + (i+1)*Size).
type AddressMap struct {
	VirtBase uint64
	Size     uint64 // bytes per SPM
	Cores    int
}

// NewAddressMap builds the mapping for cores SPMs of size bytes each.
func NewAddressMap(cores, size int) AddressMap {
	if cores <= 0 || size <= 0 {
		panic(fmt.Sprintf("spm: invalid address map cores=%d size=%d", cores, size))
	}
	return AddressMap{VirtBase: DefaultVirtBase, Size: uint64(size), Cores: cores}
}

// End returns one past the last SPM virtual address.
func (m AddressMap) End() uint64 { return m.VirtBase + m.Size*uint64(m.Cores) }

// Contains reports whether va falls inside the global SPM range. This is
// the range check performed on every memory instruction before any MMU
// action (paper §2.1).
func (m AddressMap) Contains(va uint64) bool {
	return va >= m.VirtBase && va < m.End()
}

// CoreOf returns which core's SPM holds va. Panics if va is outside the
// range; callers must check Contains first.
func (m AddressMap) CoreOf(va uint64) int {
	if !m.Contains(va) {
		panic(fmt.Sprintf("spm: address %#x outside SPM range", va))
	}
	return int((va - m.VirtBase) / m.Size)
}

// Offset returns va's byte offset within its SPM.
func (m AddressMap) Offset(va uint64) uint64 {
	return (va - m.VirtBase) % m.Size
}

// AddrFor returns the virtual address of offset within core's SPM.
func (m AddressMap) AddrFor(core int, offset uint64) uint64 {
	if core < 0 || core >= m.Cores {
		panic(fmt.Sprintf("spm: core %d out of range", core))
	}
	if offset >= m.Size {
		panic(fmt.Sprintf("spm: offset %#x beyond SPM size %#x", offset, m.Size))
	}
	return m.VirtBase + uint64(core)*m.Size + offset
}

// SPM is one core's scratchpad: fixed-latency storage with access counters
// for the energy model. Simulation is timing-level; data values are not
// stored (the protocol layer tracks which storage holds the valid copy).
type SPM struct {
	eng     *sim.Engine
	latency sim.Time

	reads, writes         uint64 // CPU-side accesses
	dmaReads, dmaWrites   uint64 // DMA-side line transfers
	remoteReads, remoteWr uint64 // accesses arriving from other cores
}

// New builds an SPM with the given access latency in cycles.
func New(eng *sim.Engine, latency int) *SPM {
	return &SPM{eng: eng, latency: sim.Time(latency)}
}

// Access performs a CPU-side access and fires done after the SPM latency.
// A nil done still schedules a completion event (as sim.Nop) so event counts
// do not depend on whether the caller wanted a callback.
func (s *SPM) Access(write bool, done sim.Cont) {
	if write {
		s.writes++
	} else {
		s.reads++
	}
	if done == nil {
		done = sim.Nop
	}
	s.eng.ScheduleCont(s.latency, done)
}

// RemoteAccess performs an access on behalf of another core (the protocol's
// Fig. 5d case). NoC transit is charged by the caller.
func (s *SPM) RemoteAccess(write bool, done sim.Cont) {
	if write {
		s.remoteWr++
	} else {
		s.remoteReads++
	}
	if done == nil {
		done = sim.Nop
	}
	s.eng.ScheduleCont(s.latency, done)
}

// DMAAccess accounts one line-granule DMA transfer touching the SPM array
// (read for dma-put, write for dma-get). The DMA engine pipelines these, so
// no latency is charged here; the DMA controller owns transfer timing.
func (s *SPM) DMAAccess(write bool) {
	if write {
		s.dmaWrites++
	} else {
		s.dmaReads++
	}
}

// Reads returns CPU-side read count.
func (s *SPM) Reads() uint64 { return s.reads }

// Writes returns CPU-side write count.
func (s *SPM) Writes() uint64 { return s.writes }

// RemoteReads returns reads served for other cores.
func (s *SPM) RemoteReads() uint64 { return s.remoteReads }

// RemoteWrites returns writes served for other cores.
func (s *SPM) RemoteWrites() uint64 { return s.remoteWr }

// DMAReads returns DMA line reads (dma-put source traffic).
func (s *SPM) DMAReads() uint64 { return s.dmaReads }

// DMAWrites returns DMA line writes (dma-get destination traffic).
func (s *SPM) DMAWrites() uint64 { return s.dmaWrites }

// TotalAccesses sums every access type.
func (s *SPM) TotalAccesses() uint64 {
	return s.reads + s.writes + s.dmaReads + s.dmaWrites + s.remoteReads + s.remoteWr
}
