package spm

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAddressMapGeometry(t *testing.T) {
	m := NewAddressMap(64, 32<<10)
	if m.VirtBase != DefaultVirtBase {
		t.Fatalf("VirtBase = %#x", m.VirtBase)
	}
	if m.End() != DefaultVirtBase+64*32<<10 {
		t.Fatalf("End = %#x", m.End())
	}
}

func TestContains(t *testing.T) {
	m := NewAddressMap(4, 1024)
	if m.Contains(m.VirtBase - 1) {
		t.Fatal("Contains below base")
	}
	if !m.Contains(m.VirtBase) {
		t.Fatal("!Contains at base")
	}
	if !m.Contains(m.End() - 1) {
		t.Fatal("!Contains at last byte")
	}
	if m.Contains(m.End()) {
		t.Fatal("Contains at end")
	}
	if m.Contains(0x1000) {
		t.Fatal("Contains a GM address")
	}
}

func TestCoreOfAndOffset(t *testing.T) {
	m := NewAddressMap(4, 1024)
	for core := 0; core < 4; core++ {
		va := m.AddrFor(core, 100)
		if got := m.CoreOf(va); got != core {
			t.Fatalf("CoreOf(AddrFor(%d,100)) = %d", core, got)
		}
		if got := m.Offset(va); got != 100 {
			t.Fatalf("Offset = %d, want 100", got)
		}
	}
}

func TestCoreOfOutsidePanics(t *testing.T) {
	m := NewAddressMap(2, 512)
	defer func() {
		if recover() == nil {
			t.Fatal("CoreOf outside range did not panic")
		}
	}()
	m.CoreOf(0x1234)
}

func TestAddrForBadOffsetPanics(t *testing.T) {
	m := NewAddressMap(2, 512)
	defer func() {
		if recover() == nil {
			t.Fatal("AddrFor with oversized offset did not panic")
		}
	}()
	m.AddrFor(0, 512)
}

// Property: AddrFor and (CoreOf, Offset) are inverses for all valid inputs.
func TestAddressRoundTripProperty(t *testing.T) {
	m := NewAddressMap(64, 32<<10)
	prop := func(c uint8, off uint16) bool {
		core := int(c) % 64
		offset := uint64(off) % (32 << 10)
		va := m.AddrFor(core, offset)
		return m.Contains(va) && m.CoreOf(va) == core && m.Offset(va) == offset
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSPMAccessLatency(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, 2)
	var at sim.Time
	s.Access(false, sim.AsCont(func() { at = eng.Now() }))
	eng.Run()
	if at != 2 {
		t.Fatalf("access completed at %d, want 2", at)
	}
	if s.Reads() != 1 || s.Writes() != 0 {
		t.Fatalf("reads=%d writes=%d", s.Reads(), s.Writes())
	}
}

func TestSPMCounters(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, 2)
	s.Access(true, nil)
	s.RemoteAccess(false, nil)
	s.RemoteAccess(true, nil)
	s.DMAAccess(true)
	s.DMAAccess(false)
	eng.Run()
	if s.Writes() != 1 || s.RemoteReads() != 1 || s.RemoteWrites() != 1 {
		t.Fatalf("counters: w=%d rr=%d rw=%d", s.Writes(), s.RemoteReads(), s.RemoteWrites())
	}
	if s.DMAWrites() != 1 || s.DMAReads() != 1 {
		t.Fatalf("dma: w=%d r=%d", s.DMAWrites(), s.DMAReads())
	}
	if s.TotalAccesses() != 5 {
		t.Fatalf("TotalAccesses = %d, want 5", s.TotalAccesses())
	}
}

func TestInvalidAddressMapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAddressMap(0, 0) did not panic")
		}
	}()
	NewAddressMap(0, 0)
}
