package compiler

import (
	"fmt"

	"repro/internal/isa"
)

// GenOptions parameterizes code generation for one core.
type GenOptions struct {
	Cores int // total cores
	Core  int // this core

	Hybrid        bool // hybrid memory system vs cache-based
	SPMSize       int  // bytes per SPM (hybrid)
	SPMDirEntries int  // SPMDir capacity: bounds the buffer count
	SPMBase       uint64
	StackBase     uint64
	Seed          uint64
}

const (
	elemBytes = 8 // every reference moves 8-byte elements

	// Code layout: each kernel's work body has stable PCs so the L1I and
	// the stride prefetcher see a loop, and the SPM runtime library lives
	// in its own code region (its extra instruction fetches are the
	// paper's ~3% Ifetch overhead).
	workCodeBase    = 0x0040_0000
	runtimeCodeBase = 0x0080_0000
	kernelCodeSpan  = 0x1000

	// Control-phase bookkeeping cost of one runtime MAP call, in ALU ops
	// (pointer updates, tag setup, iteration bounds — Fig. 3).
	mapCallOps = 24
	// Per-tile loop bookkeeping in the transformed code.
	tileLoopOps = 16

	// Cache-based code generation emits work in fixed-size blocks.
	cacheBlockIters = 2048
)

// BufferPlan describes the equal-size SPM buffer allocation the runtime
// performs before a loop (ALLOCATE_BUFFERS in Fig. 3).
type BufferPlan struct {
	NumBuffers int
	BufBytes   int
	TileIters  int // iterations per tile = BufBytes / elemBytes
}

// PlanBuffers divides the SPM among the kernel's SPM-classified references.
// The buffer size is the largest power of two that (a) fits every buffer in
// the SPM, (b) keeps SPMSize/BufBytes within the SPMDir capacity (§3.1),
// and (c) yields at least one tile per core so the fork-join loop keeps the
// whole machine busy.
func PlanBuffers(k *Kernel, spmSize, spmDirEntries, cores int) (BufferPlan, error) {
	n := 0
	for i := range k.Refs {
		if Classify(&k.Refs[i]) == ClassSPM {
			n++
		}
	}
	if n == 0 {
		return BufferPlan{}, nil
	}
	if n > spmDirEntries {
		return BufferPlan{}, fmt.Errorf("compiler: kernel %s needs %d buffers > %d SPMDir entries",
			k.Name, n, spmDirEntries)
	}
	buf := 1
	for buf*2*n <= spmSize {
		buf *= 2
	}
	minBuf := spmSize / spmDirEntries // SPMDir must cover every window
	if minBuf < elemBytes {
		minBuf = elemBytes
	}
	for buf < minBuf {
		buf *= 2
	}
	// Shrink buffers until every core owns at least one tile (when the
	// iteration count allows it at all).
	if cores > 0 {
		for buf > minBuf && k.Iters/(buf/elemBytes) < cores {
			buf /= 2
		}
	}
	if buf < elemBytes || buf > spmSize {
		return BufferPlan{}, fmt.Errorf("compiler: kernel %s: no feasible buffer size", k.Name)
	}
	return BufferPlan{NumBuffers: n, BufBytes: buf, TileIters: buf / elemBytes}, nil
}

// rng is xorshift64*: deterministic, seedable, allocation-free.
type rng uint64

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return rng(seed)
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545F4914F6CDD1D
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// refAddr generates the address a reference touches at global iteration it.
func refAddr(r *Ref, it int, opt *GenOptions, rnd *rng) uint64 {
	switch r.Pattern {
	case Strided:
		// Sparse strided refs (Every > 1) traverse a compacted section:
		// one element per Every iterations.
		j := uint64(it / r.every())
		st := uint64(r.stride())
		if st == elemBytes {
			return r.Array.Base + j*elemBytes
		}
		// Non-unit stride: hop st bytes per element and wrap column-major
		// once past the array's end (the j-th element of a transpose's
		// write stream). period is the number of hops per pass; each
		// completed pass shifts the lane by one dense element.
		period := uint64(r.Array.Size) / st
		if period == 0 {
			return r.Array.Base + j*elemBytes // stride wider than the array
		}
		return r.Array.Base + (j%period)*st + (j/period)*elemBytes
	case Stack:
		// Cycle within a 4 KB frame: high L1 locality.
		return opt.StackBase + uint64(it*16)%4096
	case Random:
		if r.HotFraction > 0 && r.HotBytes > 0 && rnd.float() < r.HotFraction {
			span := r.HotBytes
			if span > r.Array.Size {
				span = r.Array.Size
			}
			// Hot windows partition the array across cores (bucket
			// affinity): distinct cores get distinct windows until
			// the array runs out of them.
			windows := r.Array.Size / span
			hotStart := 0
			if windows > 0 {
				hotStart = (opt.Core % windows) * span
			}
			off := int(rnd.next()%uint64(span)) &^ (elemBytes - 1)
			return r.Array.Base + uint64(hotStart+off)
		}
		off := rnd.next() % uint64(r.Array.Size/elemBytes) * elemBytes
		return r.Array.Base + off
	default:
		panic("compiler: bad pattern")
	}
}

// memInst builds the instruction for one dynamic reference instance.
func memInst(r *Ref, class Class, addr, pc uint64, phase isa.Phase) isa.Inst {
	var k isa.Kind
	switch class {
	case ClassSPM:
		if r.IsWrite {
			k = isa.SPMStore
		} else {
			k = isa.SPMLoad
		}
	case ClassGuarded:
		if r.IsWrite {
			k = isa.GuardedStore
		} else {
			k = isa.GuardedLoad
		}
	default:
		if r.IsWrite {
			k = isa.Store
		} else {
			k = isa.Load
		}
	}
	return isa.Inst{Kind: k, Addr: addr, PC: pc, Phase: phase}
}

// Generate produces core opt.Core's instruction stream for the benchmark.
// Hybrid mode performs the Fig. 3 transformation (tiling + runtime calls);
// cache mode emits the original loop. Kernels are separated by barriers and
// the whole kernel sequence repeats b.Repeats times.
func Generate(b *Benchmark, opt GenOptions) isa.Program {
	if opt.Cores <= 0 || opt.Core < 0 || opt.Core >= opt.Cores {
		panic(fmt.Sprintf("compiler: bad core %d/%d", opt.Core, opt.Cores))
	}
	g := &generator{b: b, opt: opt}
	return g
}

// generator lazily materializes the instruction stream one tile at a time.
type generator struct {
	b   *Benchmark
	opt GenOptions

	rep    int
	kernel int
	inited bool // per-kernel setup done
	plan   BufferPlan
	tile   int // next tile index within this core's range
	tile0  int // first tile owned by this core
	tileN  int // one past the last
	rnd    rng

	buf []isa.Inst
	pos int
}

// Next implements isa.Program.
func (g *generator) Next() (isa.Inst, bool) {
	for g.pos >= len(g.buf) {
		if !g.refill() {
			return isa.Inst{}, false
		}
	}
	inst := g.buf[g.pos]
	g.pos++
	return inst, true
}

// refill produces the next batch of instructions. Returns false at stream
// end.
func (g *generator) refill() bool {
	g.buf = g.buf[:0]
	g.pos = 0

	if g.rep >= g.b.Repeats {
		return false
	}
	k := &g.b.Kernels[g.kernel]

	if !g.inited {
		g.initKernel(k)
	}

	if g.tile < g.tileN {
		g.emitTile(k, g.tile)
		g.tile++
		return true
	}

	// Kernel finished on this core: final write-backs + barrier.
	g.emitKernelEpilogue(k)
	g.inited = false
	g.kernel++
	if g.kernel >= len(g.b.Kernels) {
		g.kernel = 0
		g.rep++
	}
	return true
}

// initKernel computes the tiling for this kernel and this core. The
// cache-based machine distributes iterations with the same tile boundaries
// as the hybrid so the two systems execute identical work partitions.
func (g *generator) initKernel(k *Kernel) {
	g.inited = true
	plan, err := PlanBuffers(k, g.opt.SPMSize, g.opt.SPMDirEntries, g.opt.Cores)
	if err != nil {
		panic(err)
	}
	if plan.NumBuffers == 0 {
		plan.TileIters = cacheBlockIters
		for g.opt.Cores > 0 && plan.TileIters > 64 &&
			k.Iters/plan.TileIters < g.opt.Cores {
			plan.TileIters /= 2
		}
	}
	g.plan = plan
	totalTiles := (k.Iters + plan.TileIters - 1) / plan.TileIters
	g.tile0 = g.opt.Core * totalTiles / g.opt.Cores
	g.tileN = (g.opt.Core + 1) * totalTiles / g.opt.Cores
	g.tile = g.tile0
	g.rnd = newRNG(g.opt.Seed ^ (uint64(g.opt.Core) << 32) ^ (uint64(g.kernel) << 16) ^ (uint64(g.rep) + 1))

	if g.opt.Hybrid && plan.NumBuffers > 0 {
		// ALLOCATE_BUFFERS: program the Base/Offset mask registers.
		pc := g.runtimePC(0)
		g.buf = append(g.buf,
			isa.Inst{Kind: isa.Compute, Ops: tileLoopOps, PC: pc, Phase: isa.PhaseControl},
			isa.Inst{Kind: isa.SetBufSize, Bytes: plan.BufBytes, PC: pc + 4, Phase: isa.PhaseControl})
	}
}

// workPC returns the stable PC of work-body slot i for the current kernel.
func (g *generator) workPC(i int) uint64 {
	return workCodeBase + uint64(g.kernel)*kernelCodeSpan + uint64(i)*4
}

// runtimePC returns a PC inside the runtime library region.
func (g *generator) runtimePC(i int) uint64 {
	return runtimeCodeBase + uint64(g.kernel%4)*kernelCodeSpan + uint64(i)*4
}

// emitTile emits control + sync + work for one tile (hybrid), or just the
// work block (cache-based).
func (g *generator) emitTile(k *Kernel, tile int) {
	itStart := tile * g.plan.TileIters
	itEnd := itStart + g.plan.TileIters
	if itEnd > k.Iters {
		itEnd = k.Iters
	}
	hybrid := g.opt.Hybrid && g.plan.NumBuffers > 0

	if hybrid {
		// Control phase: one MAP per SPM reference (Fig. 3). MAP
		// writes back the previously mapped chunk when the buffer is
		// dirty and dma-gets the next chunk.
		bufIdx := 0
		rpc := 0
		for ri := range k.Refs {
			r := &k.Refs[ri]
			if Classify(r) != ClassSPM {
				continue
			}
			// A sparse section (Every > 1) moves proportionally
			// fewer bytes per tile.
			ev := r.every()
			chunkSpan := g.plan.BufBytes / ev
			gmChunk := r.Array.Base + uint64(tile)*uint64(chunkSpan)
			spmAddr := g.opt.SPMBase + uint64(bufIdx)*uint64(g.plan.BufBytes)
			bytes := ((itEnd - itStart + ev - 1) / ev) * elemBytes
			g.buf = append(g.buf, isa.Inst{Kind: isa.Compute, Ops: mapCallOps,
				PC: g.runtimePC(rpc), Phase: isa.PhaseControl})
			rpc++
			if r.IsWrite && tile > g.tile0 {
				prevChunk := r.Array.Base + uint64(tile-1)*uint64(chunkSpan)
				g.buf = append(g.buf, isa.Inst{Kind: isa.DMAPut,
					Addr: prevChunk, Addr2: spmAddr, Bytes: chunkSpan,
					Tag: bufIdx, PC: g.runtimePC(rpc), Phase: isa.PhaseControl})
				rpc++
			}
			g.buf = append(g.buf, isa.Inst{Kind: isa.DMAGet,
				Addr: gmChunk, Addr2: spmAddr, Bytes: bytes,
				Tag: bufIdx, PC: g.runtimePC(rpc), Phase: isa.PhaseControl})
			rpc++
			bufIdx++
		}
		// Synchronization phase: wait for every buffer's transfers.
		for bi := 0; bi < g.plan.NumBuffers; bi++ {
			g.buf = append(g.buf, isa.Inst{Kind: isa.DMASync, Tag: bi,
				PC: g.runtimePC(rpc), Phase: isa.PhaseSync})
			rpc++
		}
	}

	// Work phase.
	for it := itStart; it < itEnd; it++ {
		slot := 0
		bufIdx := 0
		for ri := range k.Refs {
			r := &k.Refs[ri]
			class := Classify(r)
			if !hybrid {
				// Cache-based machine: everything is a plain GM
				// access (no SPMs, no guard prefix semantics).
				class = ClassGM
			}
			isSPM := class == ClassSPM
			var myBuf int
			if isSPM {
				myBuf = bufIdx
				bufIdx++
			}
			if it%r.every() != 0 {
				slot++
				continue
			}
			var addr uint64
			if isSPM {
				addr = g.opt.SPMBase + uint64(myBuf)*uint64(g.plan.BufBytes) +
					uint64((it-itStart)/r.every())*elemBytes
			} else {
				addr = refAddr(r, it, &g.opt, &g.rnd)
			}
			g.buf = append(g.buf, memInst(r, class, addr, g.workPC(slot), isa.PhaseWork))
			slot++
		}
		if k.ComputeOps > 0 {
			g.buf = append(g.buf, isa.Inst{Kind: isa.Compute, Ops: k.ComputeOps,
				PC: g.workPC(slot), Phase: isa.PhaseWork})
		}
	}
}

// emitKernelEpilogue writes dirty buffers back (hybrid) and joins the
// barrier that separates kernels.
func (g *generator) emitKernelEpilogue(k *Kernel) {
	if g.opt.Hybrid && g.plan.NumBuffers > 0 && g.tileN > g.tile0 {
		lastTile := g.tileN - 1
		bufIdx := 0
		rpc := 0
		for ri := range k.Refs {
			r := &k.Refs[ri]
			if Classify(r) != ClassSPM {
				continue
			}
			if r.IsWrite {
				chunkSpan := g.plan.BufBytes / r.every()
				gmChunk := r.Array.Base + uint64(lastTile)*uint64(chunkSpan)
				spmAddr := g.opt.SPMBase + uint64(bufIdx)*uint64(g.plan.BufBytes)
				g.buf = append(g.buf, isa.Inst{Kind: isa.DMAPut,
					Addr: gmChunk, Addr2: spmAddr, Bytes: chunkSpan,
					Tag: bufIdx, PC: g.runtimePC(rpc), Phase: isa.PhaseControl})
				rpc++
				g.buf = append(g.buf, isa.Inst{Kind: isa.DMASync, Tag: bufIdx,
					PC: g.runtimePC(rpc), Phase: isa.PhaseSync})
				rpc++
			}
			bufIdx++
		}
	}
	g.buf = append(g.buf, isa.Inst{Kind: isa.Barrier,
		PC: g.workPC(0), Phase: isa.PhaseWork})
}
