// Package compiler implements the compiler support of the hybrid memory
// system (paper §2.2 and §2.4): it classifies the memory references of a
// parallel kernel into SPM accesses, GM accesses and potentially incoherent
// (guarded) accesses, and performs the tiling code transformation that turns
// a parallel loop into control / synchronization / work phases driving the
// SPM runtime.
//
// The kernel IR is declarative: a kernel is a parallel loop with a set of
// memory references, each carrying an access pattern and an alias-analysis
// verdict (standing in for the GCC alias report the paper consumes). Code
// generation is lazy — work phases are materialized one tile at a time — so
// multi-million-iteration kernels do not hold their instruction streams in
// memory.
package compiler

import "fmt"

// Pattern is a reference's access pattern.
type Pattern int

const (
	// Strided references sequentially traverse an array section private
	// to each thread — the preferred SPM candidates (paper §2.2).
	Strided Pattern = iota
	// Random references are unpredictable (pointer chasing, indirection).
	Random
	// Stack references hit the core-private stack with high locality
	// (register spilling; dominant in EP).
	Stack
)

func (p Pattern) String() string {
	switch p {
	case Strided:
		return "strided"
	case Random:
		return "random"
	case Stack:
		return "stack"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Class is the compiler's categorization of a reference (paper §2.4).
type Class int

const (
	// ClassSPM references are rewritten to SPM buffers and fed by DMA.
	ClassSPM Class = iota
	// ClassGM references provably never alias SPM contents: normal
	// loads/stores served by the cache hierarchy.
	ClassGM
	// ClassGuarded references may alias SPM contents: the compiler emits
	// guarded memory instructions for the hardware to divert.
	ClassGuarded
)

func (c Class) String() string {
	switch c {
	case ClassSPM:
		return "spm"
	case ClassGM:
		return "gm"
	case ClassGuarded:
		return "guarded"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Array is a named data region. Base addresses are assigned by the workload
// (arena allocation); Size is in bytes.
type Array struct {
	Name string
	Base uint64
	Size int
}

// Ref is one static memory reference inside the kernel loop body.
type Ref struct {
	Name    string
	Array   *Array
	Pattern Pattern
	IsWrite bool

	// Stride is the byte distance between consecutively touched elements
	// of a Strided reference (0 means the dense unit stride of 8 bytes).
	// Non-unit strides wrap column-major once they pass the array's end —
	// the traversal of a matrix transpose — and are never SPM candidates:
	// the runtime's DMA moves contiguous chunks only, so a strided-but-
	// sparse reference streams through the cache hierarchy instead
	// (Classify returns ClassGM).
	Stride int

	// MayAliasSPM is the alias-analysis verdict for Random references:
	// true means the compiler could not prove the reference independent
	// of the SPM-mapped sections, so it must be guarded.
	MayAliasSPM bool

	// HotFraction (Random only) is the probability an access falls in the
	// core's hot window (temporal locality); HotBytes is that window's
	// size. Zero values mean uniform access over the whole array.
	HotFraction float64
	HotBytes    int

	// Every emits the reference once per Every iterations (default 1).
	Every int
}

// every returns the emission period, defaulting to 1.
func (r *Ref) every() int {
	if r.Every <= 0 {
		return 1
	}
	return r.Every
}

// stride returns the byte stride, defaulting to the dense element size.
func (r *Ref) stride() int {
	if r.Stride <= 0 {
		return elemBytes
	}
	return r.Stride
}

// Kernel is one parallel loop (fork-join): Iters iterations distributed
// evenly across cores, each iteration touching every Ref and executing
// ComputeOps ALU operations.
type Kernel struct {
	Name       string
	Iters      int
	ComputeOps int
	Refs       []Ref
}

// Benchmark is a sequence of kernels executed Repeats times (the time-step
// loop of the NAS codes), separated by barriers.
type Benchmark struct {
	Name    string
	Kernels []Kernel
	Repeats int
	Arrays  []*Array
}

// Classify applies §2.4's categorization to a reference.
func Classify(r *Ref) Class {
	switch r.Pattern {
	case Strided:
		if r.stride() > elemBytes {
			// Non-unit strides leave most of each DMA chunk unused, so
			// the compiler keeps them out of the SPMs (see Ref.Stride).
			return ClassGM
		}
		return ClassSPM
	case Stack:
		return ClassGM // provably thread-private, never SPM-mapped
	case Random:
		if r.MayAliasSPM {
			return ClassGuarded
		}
		return ClassGM
	default:
		panic(fmt.Sprintf("compiler: unknown pattern %v", r.Pattern))
	}
}

// Characterization summarizes a benchmark the way Table 2 does.
type Characterization struct {
	Name        string
	Kernels     int
	SPMRefs     int
	SPMBytes    int64
	GuardedRefs int
	GuardBytes  int64
}

// Characterize computes the Table 2 row for a benchmark. Data sizes count
// each array once even when several references traverse it.
func Characterize(b *Benchmark) Characterization {
	c := Characterization{Name: b.Name, Kernels: len(b.Kernels)}
	spmArrays := map[*Array]bool{}
	guardArrays := map[*Array]bool{}
	for ki := range b.Kernels {
		k := &b.Kernels[ki]
		for ri := range k.Refs {
			r := &k.Refs[ri]
			switch Classify(r) {
			case ClassSPM:
				c.SPMRefs++
				if !spmArrays[r.Array] {
					spmArrays[r.Array] = true
					c.SPMBytes += int64(r.Array.Size)
				}
			case ClassGuarded:
				c.GuardedRefs++
				if !guardArrays[r.Array] {
					guardArrays[r.Array] = true
					c.GuardBytes += int64(r.Array.Size)
				}
			}
		}
	}
	return c
}
