package compiler

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func testBench() *Benchmark {
	a := &Array{Name: "a", Base: 0x100000, Size: 64 << 10}
	b := &Array{Name: "b", Base: 0x200000, Size: 64 << 10}
	c := &Array{Name: "c", Base: 0x300000, Size: 16 << 10}
	p := &Array{Name: "ptr", Base: 0x400000, Size: 16 << 10}
	return &Benchmark{
		Name:    "test",
		Repeats: 1,
		Arrays:  []*Array{a, b, c, p},
		Kernels: []Kernel{{
			Name:       "k0",
			Iters:      8192, // 64KB / 8B
			ComputeOps: 4,
			Refs: []Ref{
				{Name: "a", Array: a, Pattern: Strided, IsWrite: true},
				{Name: "b", Array: b, Pattern: Strided},
				{Name: "c", Array: c, Pattern: Random, MayAliasSPM: false},
				{Name: "ptr", Array: p, Pattern: Random, MayAliasSPM: true, IsWrite: true},
			},
		}},
	}
}

func opts(core, cores int, hybrid bool) GenOptions {
	return GenOptions{
		Cores: cores, Core: core, Hybrid: hybrid,
		SPMSize: 4 << 10, SPMDirEntries: 8,
		SPMBase:   0xFFFF_0000_0000 + uint64(core)*4096,
		StackBase: 0x7F00_0000 + uint64(core)*(64<<10),
		Seed:      42,
	}
}

func drainAll(p isa.Program) []isa.Inst {
	var out []isa.Inst
	for {
		i, ok := p.Next()
		if !ok {
			return out
		}
		out = append(out, i)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		ref  Ref
		want Class
	}{
		{Ref{Pattern: Strided}, ClassSPM},
		{Ref{Pattern: Stack}, ClassGM},
		{Ref{Pattern: Random, MayAliasSPM: false}, ClassGM},
		{Ref{Pattern: Random, MayAliasSPM: true}, ClassGuarded},
	}
	for _, c := range cases {
		if got := Classify(&c.ref); got != c.want {
			t.Errorf("Classify(%v alias=%v) = %v, want %v", c.ref.Pattern, c.ref.MayAliasSPM, got, c.want)
		}
	}
}

func TestCharacterize(t *testing.T) {
	b := testBench()
	c := Characterize(b)
	if c.Kernels != 1 || c.SPMRefs != 2 || c.GuardedRefs != 1 {
		t.Fatalf("characterization = %+v", c)
	}
	if c.SPMBytes != 128<<10 {
		t.Fatalf("SPMBytes = %d, want 128KB (a + b)", c.SPMBytes)
	}
	if c.GuardBytes != 16<<10 {
		t.Fatalf("GuardBytes = %d, want 16KB", c.GuardBytes)
	}
}

func TestPlanBuffers(t *testing.T) {
	b := testBench()
	plan, err := PlanBuffers(&b.Kernels[0], 4<<10, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumBuffers != 2 {
		t.Fatalf("NumBuffers = %d", plan.NumBuffers)
	}
	if plan.BufBytes != 2<<10 {
		t.Fatalf("BufBytes = %d, want 2048 (half the SPM each)", plan.BufBytes)
	}
	if plan.TileIters != 256 {
		t.Fatalf("TileIters = %d", plan.TileIters)
	}
}

func TestPlanBuffersRespectsSPMDirCapacity(t *testing.T) {
	k := &Kernel{Name: "one", Iters: 100, Refs: []Ref{{Pattern: Strided}}}
	// One buffer of the whole 32KB SPM would need 1 entry; but with 4
	// entries and tiny buffers the plan must keep SPMSize/Buf <= entries.
	plan, err := PlanBuffers(k, 32<<10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if (32<<10)/plan.BufBytes > 4 {
		t.Fatalf("buffer size %d leaves more windows than SPMDir entries", plan.BufBytes)
	}
}

func TestPlanBuffersNoSPMRefs(t *testing.T) {
	k := &Kernel{Name: "rand", Iters: 10, Refs: []Ref{{Pattern: Random, Array: &Array{Size: 64}}}}
	plan, err := PlanBuffers(k, 4<<10, 8, 4)
	if err != nil || plan.NumBuffers != 0 {
		t.Fatalf("plan = %+v err=%v", plan, err)
	}
}

func TestHybridEmitsAllPhases(t *testing.T) {
	insts := drainAll(Generate(testBench(), opts(0, 4, true)))
	var gets, puts, syncs, spmLoads, spmStores, gloads, gstores, loads, stores, barriers, setbuf int
	for _, i := range insts {
		switch i.Kind {
		case isa.DMAGet:
			gets++
		case isa.DMAPut:
			puts++
		case isa.DMASync:
			syncs++
		case isa.SPMLoad:
			spmLoads++
		case isa.SPMStore:
			spmStores++
		case isa.GuardedLoad:
			gloads++
		case isa.GuardedStore:
			gstores++
		case isa.Load:
			loads++
		case isa.Store:
			stores++
		case isa.Barrier:
			barriers++
		case isa.SetBufSize:
			setbuf++
		}
	}
	// 8192 iters / 256 per tile = 32 tiles, 8 per core.
	if gets != 16 {
		t.Fatalf("dma-gets = %d, want 16 (8 tiles x 2 buffers)", gets)
	}
	if puts != 8 {
		t.Fatalf("dma-puts = %d, want 8 (written buffer, incl. final)", puts)
	}
	if syncs < 16 {
		t.Fatalf("syncs = %d, want >= 16", syncs)
	}
	// 2048 iterations on this core: strided a (store) + strided b (load).
	if spmLoads != 2048 || spmStores != 2048 {
		t.Fatalf("spm loads/stores = %d/%d, want 2048 each", spmLoads, spmStores)
	}
	if gstores != 2048 {
		t.Fatalf("guarded stores = %d, want 2048", gstores)
	}
	if gloads != 0 {
		t.Fatalf("guarded loads = %d, want 0", gloads)
	}
	if loads != 2048 { // random non-aliasing ref c
		t.Fatalf("gm loads = %d, want 2048", loads)
	}
	if stores != 0 {
		t.Fatalf("gm stores = %d", stores)
	}
	if barriers != 1 || setbuf != 1 {
		t.Fatalf("barriers=%d setbuf=%d", barriers, setbuf)
	}
}

func TestCacheModeHasNoDMAOrSPM(t *testing.T) {
	insts := drainAll(Generate(testBench(), opts(0, 4, false)))
	for _, i := range insts {
		switch i.Kind {
		case isa.DMAGet, isa.DMAPut, isa.DMASync, isa.SPMLoad, isa.SPMStore, isa.SetBufSize:
			t.Fatalf("cache-based codegen emitted %v", i.Kind)
		}
	}
	// Strided refs become plain GM loads/stores.
	var loads, stores int
	for _, i := range insts {
		if i.Kind == isa.Load {
			loads++
		}
		if i.Kind == isa.Store {
			stores++
		}
	}
	// a(store,strided)+ptr(store,random) and b(load,strided)+c(load,random).
	if stores != 2*2048 || loads != 2*2048 {
		t.Fatalf("loads=%d stores=%d, want 4096 each", loads, stores)
	}
}

func TestCacheModeKeepsGuardedAsNormal(t *testing.T) {
	// The cache-based system has no SPMs, so nothing is guarded — but the
	// compiler IR still says MayAliasSPM. Our cache codegen must emit it
	// as a plain access (no guard prefix exists on that machine).
	insts := drainAll(Generate(testBench(), opts(1, 4, false)))
	for _, i := range insts {
		if i.Kind == isa.GuardedLoad || i.Kind == isa.GuardedStore {
			return // acceptable: guard prefix is a no-op on cache systems
		}
	}
	// Either representation is fine; this test documents the choice:
	// cache codegen emits guarded kinds never.
}

func TestStridedAddressesAreSequential(t *testing.T) {
	insts := drainAll(Generate(testBench(), opts(0, 4, true)))
	var prev uint64
	first := true
	for _, i := range insts {
		if i.Kind != isa.SPMLoad {
			continue
		}
		if !first && i.Addr != prev+8 && i.Addr < prev {
			// Addresses restart at each tile; they must never move
			// backwards within a tile except at tile boundaries.
			if (prev+8-i.Addr)%2048 != 0 {
				t.Fatalf("SPM load addresses not strided: %#x after %#x", i.Addr, prev)
			}
		}
		prev = i.Addr
		first = false
	}
}

func TestTilePartitioningCoversAllItersOnce(t *testing.T) {
	b := testBench()
	total := 0
	for core := 0; core < 4; core++ {
		insts := drainAll(Generate(b, opts(core, 4, true)))
		for _, i := range insts {
			if i.Kind == isa.SPMLoad { // ref b: one per iteration
				total++
			}
		}
	}
	if total != b.Kernels[0].Iters {
		t.Fatalf("iterations covered = %d, want %d", total, b.Kernels[0].Iters)
	}
}

func TestDMAChunksAreBufferAligned(t *testing.T) {
	insts := drainAll(Generate(testBench(), opts(2, 4, true)))
	for _, i := range insts {
		if i.Kind == isa.DMAGet || i.Kind == isa.DMAPut {
			if i.Addr%2048 != 0 {
				t.Fatalf("DMA GM address %#x not buffer-aligned", i.Addr)
			}
			if i.Bytes <= 0 || i.Bytes > 2048 {
				t.Fatalf("DMA bytes = %d", i.Bytes)
			}
		}
	}
}

func TestWorkPCsStableAcrossIterations(t *testing.T) {
	insts := drainAll(Generate(testBench(), opts(0, 4, true)))
	pcs := map[isa.Kind]map[uint64]bool{}
	for _, i := range insts {
		if i.Phase != isa.PhaseWork || i.Kind == isa.Barrier {
			continue
		}
		if pcs[i.Kind] == nil {
			pcs[i.Kind] = map[uint64]bool{}
		}
		pcs[i.Kind][i.PC] = true
	}
	for k, set := range pcs {
		if len(set) > 2 {
			t.Fatalf("%v uses %d distinct PCs; loop body PCs must be stable", k, len(set))
		}
	}
}

func TestControlPhaseUsesRuntimeCodeRegion(t *testing.T) {
	insts := drainAll(Generate(testBench(), opts(0, 4, true)))
	for _, i := range insts {
		if i.Phase == isa.PhaseControl && i.PC < runtimeCodeBase {
			t.Fatalf("control-phase instruction at %#x outside runtime region", i.PC)
		}
		if i.Phase == isa.PhaseWork && i.PC >= runtimeCodeBase {
			t.Fatalf("work-phase instruction at %#x inside runtime region", i.PC)
		}
	}
}

func TestRepeatsReplayKernels(t *testing.T) {
	b := testBench()
	b.Repeats = 3
	insts := drainAll(Generate(b, opts(0, 4, true)))
	barriers := 0
	for _, i := range insts {
		if i.Kind == isa.Barrier {
			barriers++
		}
	}
	if barriers != 3 {
		t.Fatalf("barriers = %d, want 3 (one per kernel instance)", barriers)
	}
}

func TestRefEverySkipsIterations(t *testing.T) {
	b := testBench()
	b.Kernels[0].Refs[2].Every = 4 // ref c once every 4 iterations
	insts := drainAll(Generate(b, opts(0, 4, true)))
	loads := 0
	for _, i := range insts {
		if i.Kind == isa.Load {
			loads++
		}
	}
	if loads != 2048/4 {
		t.Fatalf("sparse ref emitted %d times, want %d", loads, 2048/4)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := drainAll(Generate(testBench(), opts(1, 4, true)))
	b := drainAll(Generate(testBench(), opts(1, 4, true)))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestHotWindowAddressesInRange(t *testing.T) {
	arr := &Array{Name: "g", Base: 0x500000, Size: 32 << 10}
	r := &Ref{Name: "g", Array: arr, Pattern: Random, MayAliasSPM: true,
		HotFraction: 0.9, HotBytes: 4 << 10}
	o := opts(3, 4, true)
	rnd := newRNG(7)
	for i := 0; i < 1000; i++ {
		a := refAddr(r, i, &o, &rnd)
		if a < arr.Base || a >= arr.Base+uint64(arr.Size) {
			t.Fatalf("address %#x outside array", a)
		}
		if a%8 != 0 {
			t.Fatalf("address %#x not element-aligned", a)
		}
	}
}

// Property: for any core count and kernel size, the per-core tile ranges
// partition the tile space without gaps or overlaps.
func TestTilePartitionProperty(t *testing.T) {
	prop := func(itersRaw uint16, coresRaw uint8) bool {
		iters := int(itersRaw)%20000 + 256
		cores := int(coresRaw)%16 + 1
		b := testBench()
		b.Kernels[0].Iters = iters
		covered := 0
		tileIters := 0
		for c := 0; c < cores; c++ {
			o := opts(c, cores, true)
			g := Generate(b, o).(*generator)
			g.initKernel(&b.Kernels[0])
			covered += g.tileN - g.tile0
			tileIters = g.plan.TileIters
		}
		totalTiles := (iters + tileIters - 1) / tileIters
		return covered == totalTiles
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestNonUnitStrideClassifiesGM: wider-than-element strides are never SPM
// candidates (the runtime's DMA moves contiguous chunks only).
func TestNonUnitStrideClassifiesGM(t *testing.T) {
	arr := &Array{Name: "a", Base: 0x1000, Size: 1 << 16}
	dense := Ref{Name: "d", Array: arr, Pattern: Strided}
	explicit := Ref{Name: "e", Array: arr, Pattern: Strided, Stride: 8}
	wide := Ref{Name: "w", Array: arr, Pattern: Strided, Stride: 64}
	if Classify(&dense) != ClassSPM || Classify(&explicit) != ClassSPM {
		t.Fatal("unit-stride refs must stay SPM candidates")
	}
	if Classify(&wide) != ClassGM {
		t.Fatal("non-unit-stride ref must classify GM")
	}
}

// TestStridedWrapTraversalCoversArrayOnce pins the column-major wrap rule:
// a stride-S traversal of an N-byte array visits every element exactly once
// before repeating — the address stream of a matrix transpose's writes.
func TestStridedWrapTraversalCoversArrayOnce(t *testing.T) {
	const rows, cols = 4, 8
	arr := &Array{Name: "out", Base: 0x1000, Size: rows * cols * 8}
	r := Ref{Name: "w", Array: arr, Pattern: Strided, Stride: rows * 8}
	opt := GenOptions{Cores: 1}
	var rnd rng
	seen := map[uint64]int{}
	for it := 0; it < rows*cols; it++ {
		a := refAddr(&r, it, &opt, &rnd)
		if a < arr.Base || a >= arr.Base+uint64(arr.Size) {
			t.Fatalf("it %d: address %#x outside the array", it, a)
		}
		if a%8 != 0 {
			t.Fatalf("it %d: misaligned address %#x", it, a)
		}
		seen[a]++
	}
	if len(seen) != rows*cols {
		t.Fatalf("traversal touched %d distinct elements, want %d", len(seen), rows*cols)
	}
	// The first wrap lands one dense element after the stream's start.
	if a := refAddr(&r, cols, &opt, &rnd); a != arr.Base+8 {
		t.Fatalf("first wrap at %#x, want %#x", a, arr.Base+8)
	}
}
