package report

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/system"
	"repro/internal/workloads"
)

func fakeResults(name string, sys config.MemorySystem, cycles uint64) system.Results {
	r := system.Results{
		Benchmark: name,
		System:    sys,
		Cycles:    cycles,
		TotalPkts: cycles / 2,
		Retired:   cycles * 3,
		Energy:    energy.Breakdown{CPUs: 100, Caches: 200, NoC: 50, Others: 25},
	}
	r.PhaseCycles[0] = cycles
	r.NoCPackets[1] = cycles / 4
	r.FilterHitRatio = 0.97
	return r
}

func maps() (names []string, cache, hybrid, ideal map[string]system.Results) {
	names = []string{"CG", "IS"}
	cache = map[string]system.Results{}
	hybrid = map[string]system.Results{}
	ideal = map[string]system.Results{}
	for i, n := range names {
		base := uint64(1000 * (i + 1))
		cache[n] = fakeResults(n, config.CacheBased, base*12/10)
		hybrid[n] = fakeResults(n, config.HybridReal, base)
		ideal[n] = fakeResults(n, config.HybridIdeal, base*95/100)
	}
	return
}

func TestTable1ContainsKeyParams(t *testing.T) {
	var b strings.Builder
	Table1(&b, config.Default())
	out := b.String()
	for _, want := range []string{"64 cores", "SPMDir", "Filter", "FilterDir", "MOESI"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestTable2ListsAllBenchmarks(t *testing.T) {
	var b strings.Builder
	Table2(&b, workloads.All(workloads.Tiny))
	out := b.String()
	for _, n := range workloads.Names() {
		if !strings.Contains(out, n) {
			t.Errorf("Table2 missing %s", n)
		}
	}
	if !strings.Contains(out, "497") {
		t.Error("Table2 missing SP's 497 refs")
	}
}

func TestFig7ShowsOverheads(t *testing.T) {
	names, _, hybrid, ideal := maps()
	var b strings.Builder
	Fig7(&b, names, hybrid, ideal)
	out := b.String()
	if !strings.Contains(out, "avg") || !strings.Contains(out, "CG") {
		t.Fatalf("Fig7 output:\n%s", out)
	}
	// real/ideal cycles = 1000/950 ≈ 1.053
	if !strings.Contains(out, "1.05") {
		t.Fatalf("Fig7 overhead wrong:\n%s", out)
	}
}

func TestFig8ShowsRatios(t *testing.T) {
	names, _, hybrid, _ := maps()
	var b strings.Builder
	Fig8(&b, names, hybrid)
	if !strings.Contains(b.String(), "97.00") {
		t.Fatalf("Fig8 output:\n%s", b.String())
	}
}

func TestFig9NormalizesAndAverages(t *testing.T) {
	names, cache, hybrid, _ := maps()
	var b strings.Builder
	Fig9(&b, names, cache, hybrid)
	out := b.String()
	if !strings.Contains(out, "average speedup: 1.200x") {
		t.Fatalf("Fig9 average wrong:\n%s", out)
	}
	if !strings.Contains(out, "C") || !strings.Contains(out, "H") {
		t.Fatal("Fig9 missing C/H bars")
	}
}

func TestFig10HasAllCategories(t *testing.T) {
	names, cache, hybrid, _ := maps()
	var b strings.Builder
	Fig10(&b, names, cache, hybrid)
	out := b.String()
	for _, cat := range []string{"Ifetch", "Read", "Write", "WB-Repl", "DMA", "CohProt"} {
		if !strings.Contains(out, cat) {
			t.Errorf("Fig10 missing category %s", cat)
		}
	}
}

func TestFig11HasAllComponents(t *testing.T) {
	names, cache, hybrid, _ := maps()
	var b strings.Builder
	Fig11(&b, names, cache, hybrid)
	out := b.String()
	for _, comp := range []string{"CPUs", "Caches", "NoC", "Others", "SPMs", "CohProt"} {
		if !strings.Contains(out, comp) {
			t.Errorf("Fig11 missing component %s", comp)
		}
	}
}

func TestJSONSink(t *testing.T) {
	_, cache, hybrid, _ := maps()
	var b strings.Builder
	if err := JSON(&b, []system.Results{cache["CG"], hybrid["CG"]}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Memory systems must marshal by name, not enum value.
	for _, want := range []string{`"cache"`, `"hybrid"`, `"Benchmark": "CG"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
}

func TestWriteResultsDispatch(t *testing.T) {
	_, cache, _, _ := maps()
	rs := []system.Results{cache["CG"]}
	var csvOut, jsonOut strings.Builder
	if err := WriteResults(&csvOut, "csv", rs); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvOut.String(), "benchmark,system,") {
		t.Errorf("csv sink wrote %q", csvOut.String())
	}
	if err := WriteResults(&jsonOut, "json", rs); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(jsonOut.String()), "[") {
		t.Errorf("json sink wrote %q", jsonOut.String())
	}
	if err := WriteResults(&csvOut, "xml", rs); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestJSONLinesSink(t *testing.T) {
	_, cache, hybrid, _ := maps()
	var b strings.Builder
	if err := WriteResults(&b, "jsonl", []system.Results{cache["CG"], hybrid["CG"]}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl wrote %d lines for 2 results:\n%s", len(lines), b.String())
	}
	for _, l := range lines {
		var r system.Results
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("line %q is not standalone JSON: %v", l, err)
		}
		if r.Benchmark != "CG" {
			t.Fatalf("line round-tripped to %+v, want CG run", r)
		}
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWriteResultsPropagatesWriteErrors(t *testing.T) {
	_, cache, _, _ := maps()
	rs := []system.Results{cache["CG"]}
	for _, format := range Formats() {
		if err := WriteResults(failingWriter{}, format, rs); err == nil {
			t.Errorf("%s sink swallowed the write error", format)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	_, cache, hybrid, _ := maps()
	var b strings.Builder
	CSV(&b, []system.Results{cache["CG"], hybrid["CG"]})
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2", len(lines))
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Fatalf("CSV header %d fields, row %d", len(header), len(row))
	}
	if row[0] != "CG" || row[1] != "cache" {
		t.Fatalf("CSV row = %v", row[:2])
	}
}

// sweepFixtures builds a two-point filter sweep with one shared override —
// the shape SweepCSV/SweepJSON must render with per-knob columns.
func sweepFixtures() ([]system.Spec, []system.Results) {
	var specs []system.Spec
	var results []system.Results
	for i, f := range []int{16, 32} {
		s := system.Spec{System: config.HybridReal, Benchmark: "IS", Scale: workloads.Tiny, Cores: 4}
		s.Overrides.FilterEntries = f
		s.Overrides.MemLatency = 200
		specs = append(specs, s)
		results = append(results, fakeResults("IS", config.HybridReal, uint64(1000*(i+1))))
	}
	return specs, results
}

// TestSweepCSVPerKnobColumns: every swept knob becomes a named column (in
// registry order), every cell a concrete resolved value.
func TestSweepCSVPerKnobColumns(t *testing.T) {
	specs, results := sweepFixtures()
	var buf strings.Builder
	if err := SweepCSV(&buf, specs, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	header := strings.Split(lines[0], ",")
	// Registry order; the cores change drags its derived adjustments (mesh
	// re-dimensioning, controller cap) into the diff, so they get columns
	// too — the table names the machine that actually ran.
	wantPrefix := []string{"benchmark", "system", "scale", "cores", "mesh_width", "mesh_height",
		"mem_controllers", "mem_latency", "filter_entries", "cycles"}
	for i, w := range wantPrefix {
		if header[i] != w {
			t.Fatalf("header[%d] = %q, want %q (full header %v)", i, header[i], w, header)
		}
	}
	row := strings.Split(lines[1], ",")
	if got, want := strings.Join(row[:9], ","), "IS,hybrid,tiny,4,2,2,4,200,16"; got != want {
		t.Fatalf("row 1 = %v, want %v", got, want)
	}
	row2 := strings.Split(lines[2], ",")
	if row2[8] != "32" {
		t.Fatalf("row 2 filter_entries = %q, want 32", row2[8])
	}
	if len(row) != len(header) || len(row2) != len(header) {
		t.Fatal("ragged CSV")
	}
}

func TestSweepJSONCarriesKnobs(t *testing.T) {
	specs, results := sweepFixtures()
	var buf strings.Builder
	if err := SweepJSON(&buf, specs, results); err != nil {
		t.Fatal(err)
	}
	var rows []SweepRow
	if err := json.Unmarshal([]byte(buf.String()), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if rows[0].Knobs["filter_entries"] != 16 || rows[1].Knobs["filter_entries"] != 32 {
		t.Fatalf("knob maps wrong: %v / %v", rows[0].Knobs, rows[1].Knobs)
	}
	if rows[0].Knobs["mem_latency"] != 200 {
		t.Fatalf("shared override missing: %v", rows[0].Knobs)
	}
	if rows[0].Results.Cycles != 1000 {
		t.Fatalf("results lost: %+v", rows[0].Results)
	}
}

func TestSweepSinksRejectLengthMismatch(t *testing.T) {
	specs, results := sweepFixtures()
	var buf strings.Builder
	if err := SweepCSV(&buf, specs, results[:1]); err == nil {
		t.Fatal("SweepCSV accepted mismatched lengths")
	}
	if err := SweepJSON(&buf, specs[:1], results); err == nil {
		t.Fatal("SweepJSON accepted mismatched lengths")
	}
}

// TestSweepCSVPerParamColumns: every swept workload parameter becomes a
// named column between the scale and knob columns; a run that leaves the
// parameter at its default renders the resolved default value, and the
// workload's fixed parameters appear too.
func TestSweepCSVPerParamColumns(t *testing.T) {
	mk := func(params string) system.Spec {
		return system.Spec{System: config.HybridReal, Benchmark: "stream",
			Scale: workloads.Tiny, Cores: 4, Params: params}
	}
	specs := []system.Spec{mk("streams=2"), mk("stride=128,streams=2")}
	results := make([]system.Results, len(specs))
	var buf strings.Builder
	if err := SweepCSV(&buf, specs, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	header := strings.Split(lines[0], ",")
	wantPrefix := []string{"benchmark", "system", "scale", "streams", "stride", "cores"}
	for i, w := range wantPrefix {
		if header[i] != w {
			t.Fatalf("header[%d] = %q, want %q (full header %v)", i, header[i], w, header)
		}
	}
	row1 := strings.Split(lines[1], ",")
	row2 := strings.Split(lines[2], ",")
	// Row 1 left stride at its default: the cell shows the resolved 8.
	if got, want := strings.Join(row1[:6], ","), "stream,hybrid,tiny,2,8,4"; got != want {
		t.Fatalf("row 1 = %v, want %v", got, want)
	}
	if got, want := strings.Join(row2[:6], ","), "stream,hybrid,tiny,2,128,4"; got != want {
		t.Fatalf("row 2 = %v, want %v", got, want)
	}
}

// TestSweepJSONCarriesParams: the JSON sink reports each row's non-default
// workload parameters explicitly.
func TestSweepJSONCarriesParams(t *testing.T) {
	specs := []system.Spec{
		{System: config.HybridReal, Benchmark: "stream", Scale: workloads.Tiny, Cores: 4, Params: "stride=128"},
		{System: config.HybridReal, Benchmark: "stream", Scale: workloads.Tiny, Cores: 4},
	}
	results := make([]system.Results, len(specs))
	var buf strings.Builder
	if err := SweepJSON(&buf, specs, results); err != nil {
		t.Fatal(err)
	}
	var rows []SweepRow
	if err := json.Unmarshal([]byte(buf.String()), &rows); err != nil {
		t.Fatal(err)
	}
	if rows[0].Params["stride"] != 128 {
		t.Fatalf("rows[0].Params = %v, want stride=128", rows[0].Params)
	}
	if len(rows[1].Params) != 0 {
		t.Fatalf("rows[1].Params = %v, want empty (all defaults)", rows[1].Params)
	}
}

// TestWorkloadCatalogListsEveryEntry: the -workloads listing names every
// registry entry and every declared parameter.
func TestWorkloadCatalogListsEveryEntry(t *testing.T) {
	var buf strings.Builder
	WorkloadCatalog(&buf)
	out := buf.String()
	for _, e := range workloads.Entries() {
		if !strings.Contains(out, e.Name) {
			t.Errorf("catalog missing workload %s", e.Name)
		}
		for _, p := range e.Params {
			if !strings.Contains(out, p.Name) {
				t.Errorf("catalog missing %s param %s", e.Name, p.Name)
			}
		}
	}
}
