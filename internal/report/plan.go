package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/planner"
)

// planAxisNames collects the axis names seen across a plan, sorted, so the
// text table's columns are stable.
func planAxisNames(probes []planner.Probe, v planner.Verdict) []string {
	set := map[string]bool{}
	for _, p := range probes {
		for name := range p.Axes {
			set[name] = true
		}
	}
	if v.Answer != nil {
		for name := range v.Answer.Axes {
			set[name] = true
		}
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func planPointCells(axes []string, vals map[string]int, metrics map[string]float64) []string {
	cells := make([]string, 0, len(axes)+len(planner.Metrics()))
	for _, name := range axes {
		cells = append(cells, fmt.Sprintf("%d", vals[name]))
	}
	for _, m := range planner.Metrics() {
		cells = append(cells, fmt.Sprintf("%.4g", metrics[m.Name]))
	}
	return cells
}

// PlanText renders a plan transcript: one row per executed probe in probe
// order, then the verdict — answer or frontier, probe economy versus the
// full grid.
func PlanText(w io.Writer, probes []planner.Probe, v planner.Verdict) {
	axes := planAxisNames(probes, v)
	header := append([]string{"#", "cached"}, axes...)
	for _, m := range planner.Metrics() {
		header = append(header, m.Name)
	}
	fmt.Fprintf(w, "plan: %s strategy, %d probe(s) against a %d-point grid\n", v.Strategy, v.Probes, v.Grid)
	fmt.Fprintf(w, "  %s\n", strings.Join(header, "\t"))
	for _, p := range probes {
		cached := "-"
		if p.Cached {
			cached = "hit"
		}
		cells := append([]string{fmt.Sprintf("%d", p.Index), cached}, planPointCells(axes, p.Axes, p.Metrics)...)
		fmt.Fprintf(w, "  %s\n", strings.Join(cells, "\t"))
	}
	state := "converged"
	if !v.Converged {
		state = "NOT converged"
	}
	fmt.Fprintf(w, "verdict: %s — %s\n", state, v.Reason)
	if v.Answer != nil {
		fmt.Fprintf(w, "  answer: %s\n", planPointText(axes, *v.Answer))
	}
	for i, a := range v.Frontier {
		fmt.Fprintf(w, "  frontier[%d]: %s\n", i, planPointText(axes, a))
	}
	fmt.Fprintf(w, "  probes: %d (%d cache hit(s)) vs %d grid points\n", v.Probes, v.CacheHits, v.Grid)
}

func planPointText(axes []string, a planner.Answer) string {
	var parts []string
	for _, name := range axes {
		parts = append(parts, fmt.Sprintf("%s=%d", name, a.Axes[name]))
	}
	for _, m := range planner.Metrics() {
		parts = append(parts, fmt.Sprintf("%s=%.4g", m.Name, a.Metrics[m.Name]))
	}
	return strings.Join(parts, " ")
}

// PlanJSON renders the transcript and verdict as one indented JSON object —
// the plan analogue of FindingsJSON.
func PlanJSON(w io.Writer, probes []planner.Probe, v planner.Verdict) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Probes  []planner.Probe `json:"probes"`
		Verdict planner.Verdict `json:"verdict"`
	}{probes, v})
}
