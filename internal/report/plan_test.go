package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/planner"
)

func samplePlan() ([]planner.Probe, planner.Verdict) {
	probes := []planner.Probe{
		{Index: 1, Key: "IS-hybrid-64", Axes: map[string]int{"filter_entries": 64},
			Metrics: map[string]float64{"cycles": 1000, "hit_ratio": 0.99}},
		{Index: 2, Key: "IS-hybrid-4", Cached: true, Axes: map[string]int{"filter_entries": 4},
			Metrics: map[string]float64{"cycles": 1200, "hit_ratio": 0.91}},
	}
	v := planner.Verdict{
		Strategy: "knee", Converged: true,
		Reason: "smallest filter_entries=32 satisfying hit_ratio within 0.99 of best",
		Answer: &planner.Answer{Key: "IS-hybrid-32", Axes: map[string]int{"filter_entries": 32},
			Metrics: map[string]float64{"cycles": 1010, "hit_ratio": 0.985}},
		Probes: 2, CacheHits: 1, Grid: 16,
	}
	return probes, v
}

func TestPlanText(t *testing.T) {
	probes, v := samplePlan()
	var buf bytes.Buffer
	PlanText(&buf, probes, v)
	out := buf.String()
	for _, want := range []string{
		"knee strategy, 2 probe(s) against a 16-point grid",
		"filter_entries",
		"verdict: converged",
		"answer: filter_entries=32",
		"probes: 2 (1 cache hit(s)) vs 16 grid points",
		"hit", // the cached probe row
	} {
		if !strings.Contains(out, want) {
			t.Errorf("PlanText output missing %q:\n%s", want, out)
		}
	}
}

func TestPlanJSON(t *testing.T) {
	probes, v := samplePlan()
	var buf bytes.Buffer
	if err := PlanJSON(&buf, probes, v); err != nil {
		t.Fatal(err)
	}
	var round struct {
		Probes  []planner.Probe `json:"probes"`
		Verdict planner.Verdict `json:"verdict"`
	}
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(round.Probes) != 2 || round.Verdict.Answer == nil || round.Verdict.Grid != 16 {
		t.Errorf("round trip lost data: %+v", round)
	}
}
