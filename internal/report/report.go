// Package report renders the paper's tables and figures from simulation
// results as plain-text tables (and CSV rows), one function per exhibit.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/noc"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// Table1 prints the machine description (paper Table 1).
func Table1(w io.Writer, cfg config.Config) {
	fmt.Fprintf(w, "Table 1: main simulator parameters\n")
	rows := [][2]string{
		{"Cores", fmt.Sprintf("%d cores, out-of-order approx, %d-wide, mesh %dx%d",
			cfg.Cores, cfg.IssueWidth, cfg.MeshWidth, cfg.MeshHeight)},
		{"Pipeline", fmt.Sprintf("%d-cycle flush; ROB %d, IQ %d, LQ/SQ %d/%d, MLP window %d",
			cfg.PipelineDepth, cfg.ROBEntries, cfg.IQEntries, cfg.LQEntries, cfg.SQEntries, cfg.CoreMLP)},
		{"L1 I-cache", fmt.Sprintf("%d cycles, %d KB, %d-way, pseudoLRU", cfg.L1ILatency, cfg.L1ISize>>10, cfg.L1IAssoc)},
		{"L1 D-cache", fmt.Sprintf("%d cycles, %d KB, %d-way, pseudoLRU, stride prefetcher (deg %d, dist %d)",
			cfg.L1DLatency, cfg.L1DSize>>10, cfg.L1DAssoc, cfg.PrefetchDegree, cfg.PrefetchDistance)},
		{"L2 cache", fmt.Sprintf("shared NUCA, %d KB/core slice, %d cycles, %d-way",
			cfg.L2SliceSize>>10, cfg.L2Latency, cfg.L2Assoc)},
		{"Coherence", fmt.Sprintf("MOESI-style directory with blocking states, %d B lines", cfg.LineSize)},
		{"NoC", fmt.Sprintf("mesh, link %d cycle, router %d cycle, %d B flits x%d",
			cfg.LinkLatency, cfg.RouterLatency, cfg.FlitBytes, cfg.LinkBandwidth)},
		{"DRAM", fmt.Sprintf("%d controllers, %d-cycle latency, 1 line/%d cycles each",
			cfg.MemControllers, cfg.MemLatency, cfg.MemCyclesPerLn)},
		{"SPM", fmt.Sprintf("%d cycles, %d KB, per core", cfg.SPMLatency, cfg.SPMSize>>10)},
		{"DMAC", fmt.Sprintf("cmd queue %d, bus queue %d, in-order", cfg.DMACmdQueue, cfg.DMABusQueue)},
		{"SPMDir", fmt.Sprintf("%d entries", cfg.SPMDirEntries)},
		{"Filter", fmt.Sprintf("%d entries, fully associative, pseudoLRU", cfg.FilterEntries)},
		{"FilterDir", fmt.Sprintf("distributed, %d entries, fully associative", cfg.FilterDirEntries)},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %s\n", r[0], r[1])
	}
}

// WorkloadCatalog prints the workload registry — every generator with its
// description and typed parameter set — the payload of the binaries'
// -workloads flag.
func WorkloadCatalog(w io.Writer) {
	fmt.Fprintln(w, "workloads (spell as name or name:param=value,param=value,...):")
	for _, e := range workloads.Entries() {
		tag := " "
		if e.NAS {
			tag = "*"
		}
		fmt.Fprintf(w, "  %s %-10s %s\n", tag, e.Name, e.Desc)
		for _, p := range e.Params {
			bounds := fmt.Sprintf("%d..", p.Min)
			if p.Max > 0 {
				bounds = fmt.Sprintf("%d..%d", p.Min, p.Max)
			}
			fmt.Fprintf(w, "      %-12s default %-10d [%s] %s\n", p.Name, p.Default, bounds, p.Desc)
		}
	}
	fmt.Fprintln(w, "  (* = NAS kernel of the paper's Table 2, parameterless)")
}

// Table2 prints the benchmark characterization (paper Table 2).
func Table2(w io.Writer, benches []*compiler.Benchmark) {
	fmt.Fprintln(w, "Table 2: benchmarks and memory access characterization")
	fmt.Fprintf(w, "  %-6s %-8s %-10s %-12s %-13s %-12s\n",
		"Name", "Kernels", "SPM refs", "SPM data", "Guarded refs", "Guarded data")
	for _, b := range benches {
		c := compiler.Characterize(b)
		fmt.Fprintf(w, "  %-6s %-8d %-10d %-12s %-13d %-12s\n",
			c.Name, c.Kernels, c.SPMRefs, fmtBytes(c.SPMBytes), c.GuardedRefs, fmtBytes(c.GuardBytes))
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Fig7 prints the coherence-protocol overheads: hybrid-real normalized to
// hybrid-ideal in execution time, energy and NoC traffic.
func Fig7(w io.Writer, names []string, real, ideal map[string]system.Results) {
	fmt.Fprintln(w, "Figure 7: overhead of the coherence protocol vs ideal coherence (x)")
	fmt.Fprintf(w, "  %-6s %-15s %-10s %-12s\n", "Bench", "Execution time", "Energy", "NoC traffic")
	var st, se, sp float64
	for _, n := range names {
		r, id := real[n], ideal[n]
		t := ratio(float64(r.Cycles), float64(id.Cycles))
		e := ratio(r.Energy.Total(), id.Energy.Total())
		p := ratio(float64(r.TotalPkts), float64(id.TotalPkts))
		st += t
		se += e
		sp += p
		fmt.Fprintf(w, "  %-6s %-15.3f %-10.3f %-12.3f\n", n, t, e, p)
	}
	k := float64(len(names))
	fmt.Fprintf(w, "  %-6s %-15.3f %-10.3f %-12.3f\n", "avg", st/k, se/k, sp/k)
}

// Fig8 prints the filter hit ratios.
func Fig8(w io.Writer, names []string, real map[string]system.Results) {
	fmt.Fprintln(w, "Figure 8: filter hit ratio (%)")
	for _, n := range names {
		fmt.Fprintf(w, "  %-6s %6.2f\n", n, real[n].FilterHitRatio*100)
	}
}

// Fig9 prints cache-based vs hybrid execution time, normalized to the
// cache-based system and split into control / sync / work phases.
func Fig9(w io.Writer, names []string, cacheRes, hybrid map[string]system.Results) {
	fmt.Fprintln(w, "Figure 9: performance, normalized cycles (C = cache-based, H = hybrid)")
	fmt.Fprintf(w, "  %-6s %-4s %-8s %-9s %-9s %-9s %-9s\n",
		"Bench", "Sys", "Total", "Control", "Sync", "Work", "Speedup")
	var sum float64
	for _, n := range names {
		c, h := cacheRes[n], hybrid[n]
		base := float64(c.Cycles)
		printBar := func(tag string, r system.Results) {
			tot := float64(r.PhaseCycles[isa.PhaseControl] + r.PhaseCycles[isa.PhaseSync] + r.PhaseCycles[isa.PhaseWork])
			if tot == 0 {
				tot = 1
			}
			scale := float64(r.Cycles) / base
			fmt.Fprintf(w, "  %-6s %-4s %-8.3f %-9.3f %-9.3f %-9.3f",
				n, tag, scale,
				scale*float64(r.PhaseCycles[isa.PhaseControl])/tot,
				scale*float64(r.PhaseCycles[isa.PhaseSync])/tot,
				scale*float64(r.PhaseCycles[isa.PhaseWork])/tot)
		}
		printBar("C", c)
		fmt.Fprintln(w)
		printBar("H", h)
		sp := ratio(float64(c.Cycles), float64(h.Cycles))
		sum += sp
		fmt.Fprintf(w, " %.3fx\n", sp)
	}
	fmt.Fprintf(w, "  average speedup: %.3fx\n", sum/float64(len(names)))
}

// Fig10 prints the NoC traffic breakdown, normalized to the cache system.
func Fig10(w io.Writer, names []string, cacheRes, hybrid map[string]system.Results) {
	fmt.Fprintln(w, "Figure 10: NoC traffic, packets normalized to cache-based")
	fmt.Fprintf(w, "  %-6s %-4s %-7s", "Bench", "Sys", "Total")
	for c := noc.Category(0); c < noc.NumCategories; c++ {
		fmt.Fprintf(w, " %-9s", c)
	}
	fmt.Fprintln(w)
	var sum float64
	for _, n := range names {
		c, h := cacheRes[n], hybrid[n]
		base := float64(c.TotalPkts)
		row := func(tag string, r system.Results) {
			fmt.Fprintf(w, "  %-6s %-4s %-7.3f", n, tag, float64(r.TotalPkts)/base)
			for cat := noc.Category(0); cat < noc.NumCategories; cat++ {
				fmt.Fprintf(w, " %-9.3f", float64(r.NoCPackets[cat])/base)
			}
			fmt.Fprintln(w)
		}
		row("C", c)
		row("H", h)
		sum += float64(h.TotalPkts) / base
	}
	fmt.Fprintf(w, "  average hybrid/cache traffic: %.3f\n", sum/float64(len(names)))
}

// Fig11 prints the energy breakdown, normalized to the cache system.
func Fig11(w io.Writer, names []string, cacheRes, hybrid map[string]system.Results) {
	fmt.Fprintln(w, "Figure 11: energy consumption, normalized to cache-based")
	fmt.Fprintf(w, "  %-6s %-4s %-7s %-8s %-8s %-8s %-8s %-8s %-8s\n",
		"Bench", "Sys", "Total", "CPUs", "Caches", "NoC", "Others", "SPMs", "CohProt")
	var sum float64
	for _, n := range names {
		c, h := cacheRes[n], hybrid[n]
		base := c.Energy.Total()
		row := func(tag string, r system.Results) {
			e := r.Energy
			fmt.Fprintf(w, "  %-6s %-4s %-7.3f %-8.3f %-8.3f %-8.3f %-8.3f %-8.3f %-8.3f\n",
				n, tag, e.Total()/base, e.CPUs/base, e.Caches/base, e.NoC/base,
				e.Others/base, e.SPMs/base, e.CohProt/base)
		}
		row("C", c)
		row("H", h)
		sum += h.Energy.Total() / base
	}
	fmt.Fprintf(w, "  average hybrid/cache energy: %.3f\n", sum/float64(len(names)))
}

// CSV emits one machine-readable line per (benchmark, system) result.
func CSV(w io.Writer, results []system.Results) {
	fmt.Fprintln(w, "benchmark,system,"+resultHeader)
	for _, r := range results {
		fields := append([]string{r.Benchmark, r.System.String()}, resultFields(r)...)
		fmt.Fprintln(w, strings.Join(fields, ","))
	}
}

// sweepKnobColumns returns, in canonical registry order, the union of the
// knobs the given specs override — the per-axis columns of a sweep table.
func sweepKnobColumns(specs []system.Spec) []string {
	set := map[string]bool{}
	for _, s := range specs {
		for _, kv := range s.KnobDiff() {
			set[kv.Name] = true
		}
	}
	var cols []string
	for _, name := range config.KnobNames() {
		if set[name] {
			cols = append(cols, name)
		}
	}
	return cols
}

// sweepParamColumns returns the union of the workload parameters the given
// specs override, ordered by first appearance walking each spec's diff (its
// workload's declaration order) — the per-axis workload columns of a sweep
// table.
func sweepParamColumns(specs []system.Spec) []string {
	var cols []string
	seen := map[string]bool{}
	for _, s := range specs {
		diff, _ := s.ParamDiff()
		for _, pv := range diff {
			if !seen[pv.Name] {
				seen[pv.Name] = true
				cols = append(cols, pv.Name)
			}
		}
	}
	return cols
}

// resultFields renders the measurement columns shared by CSV and SweepCSV.
func resultFields(r system.Results) []string {
	return []string{
		fmt.Sprint(r.Cycles),
		fmt.Sprint(r.PhaseCycles[isa.PhaseControl]),
		fmt.Sprint(r.PhaseCycles[isa.PhaseSync]),
		fmt.Sprint(r.PhaseCycles[isa.PhaseWork]),
		fmt.Sprint(r.TotalPkts),
		fmt.Sprint(r.NoCPackets[noc.Ifetch]),
		fmt.Sprint(r.NoCPackets[noc.Read]),
		fmt.Sprint(r.NoCPackets[noc.Write]),
		fmt.Sprint(r.NoCPackets[noc.WBRepl]),
		fmt.Sprint(r.NoCPackets[noc.DMA]),
		fmt.Sprint(r.NoCPackets[noc.CohProt]),
		fmt.Sprintf("%.0f", r.Energy.Total()),
		fmt.Sprintf("%.0f", r.Energy.CPUs),
		fmt.Sprintf("%.0f", r.Energy.Caches),
		fmt.Sprintf("%.0f", r.Energy.NoC),
		fmt.Sprintf("%.0f", r.Energy.Others),
		fmt.Sprintf("%.0f", r.Energy.SPMs),
		fmt.Sprintf("%.0f", r.Energy.CohProt),
		fmt.Sprintf("%.4f", r.FilterHitRatio),
		fmt.Sprint(r.Retired),
		fmt.Sprint(r.Flushes),
	}
}

const resultHeader = "cycles,ctrl,sync,work,pkts,ifetch,read,write,wbrepl,dma,cohprot,energy_total,energy_cpus,energy_caches,energy_noc,energy_others,energy_spms,energy_cohprot,filter_hit,retired,flushes"

// SweepCSV emits one line per run of an axis sweep with one column per
// swept workload parameter (the union of every Spec's non-default params,
// from Spec.ParamDiff, in declaration order) and one per swept knob (the
// union of every Spec's non-default knobs, from Spec.KnobDiff, in registry
// order) — a self-describing table instead of opaque Key strings. A knob or
// parameter a given run leaves at its default renders as the resolved
// default value, so every cell is a concrete run parameter; a parameter a
// run's workload does not declare renders empty.
func SweepCSV(w io.Writer, specs []system.Spec, results []system.Results) error {
	if len(specs) != len(results) {
		return fmt.Errorf("report: %d specs for %d results", len(specs), len(results))
	}
	ew := &errWriter{w: w}
	paramCols := sweepParamColumns(specs)
	cols := sweepKnobColumns(specs)
	header := []string{"benchmark", "system", "scale"}
	header = append(header, paramCols...)
	header = append(header, cols...)
	fmt.Fprintln(ew, strings.Join(header, ",")+","+resultHeader)
	for i, s := range specs {
		cfg := s.Config()
		fields := []string{s.Benchmark, s.System.String(), s.Scale.String()}
		for _, name := range paramCols {
			if v, ok := s.ResolvedParam(name); ok {
				fields = append(fields, fmt.Sprint(v))
			} else {
				fields = append(fields, "")
			}
		}
		for _, name := range cols {
			k, _ := config.KnobByName(name)
			fields = append(fields, fmt.Sprint(*k.Field(&cfg)))
		}
		fields = append(fields, resultFields(results[i])...)
		fmt.Fprintln(ew, strings.Join(fields, ","))
	}
	return ew.err
}

// SweepRow is one run of SweepJSON: the Spec, its non-default workload
// params and machine knobs as name->value maps, and the measurements.
type SweepRow struct {
	Spec    system.Spec    `json:"spec"`
	Params  map[string]int `json:"params,omitempty"`
	Knobs   map[string]int `json:"knobs,omitempty"`
	Results system.Results `json:"results"`
}

// SweepJSON is the JSON sibling of SweepCSV: an indented array of rows,
// each carrying its swept workload params and knobs explicitly.
func SweepJSON(w io.Writer, specs []system.Spec, results []system.Results) error {
	if len(specs) != len(results) {
		return fmt.Errorf("report: %d specs for %d results", len(specs), len(results))
	}
	rows := make([]SweepRow, len(specs))
	for i, s := range specs {
		rows[i] = SweepRow{Spec: s, Results: results[i]}
		if diff, ok := s.ParamDiff(); ok && len(diff) > 0 {
			rows[i].Params = make(map[string]int, len(diff))
			for _, pv := range diff {
				rows[i].Params[pv.Name] = pv.Value
			}
		}
		if diff := s.KnobDiff(); len(diff) > 0 {
			rows[i].Knobs = make(map[string]int, len(diff))
			for _, kv := range diff {
				rows[i].Knobs[kv.Name] = kv.Value
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// JSON emits the results as an indented JSON array, one object per run.
// Memory systems marshal by name (see config.MemorySystem.MarshalJSON).
func JSON(w io.Writer, results []system.Results) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// JSONLines emits one compact JSON object per line per run — the streaming
// sibling of JSON, and the shape the service daemon's sweep endpoint
// speaks, so files written here and captured daemon streams diff cleanly.
func JSONLines(w io.Writer, results []system.Results) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// FindingsText renders an analysis report as the advisor transcript: one
// block per finding (severity, rule, message, evidence, suggested knob
// change), then the rules skipped for lack of input.
func FindingsText(w io.Writer, rep analysis.Report) {
	if len(rep.Findings) == 0 {
		fmt.Fprintln(w, "analysis: no findings")
	} else {
		fmt.Fprintf(w, "analysis: %d finding(s)\n", len(rep.Findings))
	}
	for _, f := range rep.Findings {
		fmt.Fprintf(w, "  [%s] %s: %s\n", strings.ToUpper(string(f.Severity)), f.Rule, f.Message)
		for _, e := range f.Evidence {
			fmt.Fprintf(w, "      evidence: %s = %.4g\n", e.Name, e.Value)
		}
		if s := f.Suggestion; s != nil {
			fmt.Fprintf(w, "      try: %s %d -> %d", s.Knob, s.Current, s.Proposed)
			if s.Note != "" {
				fmt.Fprintf(w, " (%s)", s.Note)
			}
			fmt.Fprintln(w)
		}
	}
	if len(rep.Skipped) > 0 {
		fmt.Fprintf(w, "  skipped (missing input): %s\n", strings.Join(rep.Skipped, ", "))
	}
}

// FindingsJSON renders the report as indented JSON — the same shape
// GET /v1/runs/{key}/analysis serves.
func FindingsJSON(w io.Writer, rep analysis.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// SweepFindingsText renders a cross-run sweep analysis: every discovered
// axis with its per-value aggregates, then the sweep-level findings.
func SweepFindingsText(w io.Writer, rep analysis.SweepReport) {
	fmt.Fprintf(w, "sweep analysis: %d runs, %d axes\n", rep.Runs, len(rep.Axes))
	for _, ax := range rep.Axes {
		fmt.Fprintf(w, "  %s %s (spread %.1f%%, best at %d):\n", ax.Kind, ax.Name, ax.SpreadPct, ax.BestValue)
		for _, p := range ax.Points {
			fmt.Fprintf(w, "    %-8d %d run(s)  cycles %.0f  energy %.4g pJ  filter hit %.4f\n",
				p.Value, p.Runs, p.MeanCycles, p.MeanEnergy, p.MeanHitRatio)
		}
	}
	if len(rep.Findings) == 0 {
		fmt.Fprintln(w, "  no findings")
	}
	for _, f := range rep.Findings {
		fmt.Fprintf(w, "  [%s] %s: %s\n", strings.ToUpper(string(f.Severity)), f.Rule, f.Message)
	}
}

// TimelineCSV renders a sampled run's counter time series as CSV: one row
// per epoch, a cycle column plus one column per series that moved at least
// once over the run (all-zero series are elided to keep wide machines
// readable; the full schema is in the JSON sink).
func TimelineCSV(w io.Writer, ts telemetry.TimeSeries) error {
	moved := make([]bool, len(ts.Names))
	for _, e := range ts.Epochs {
		for i, d := range e.Deltas {
			if d != 0 {
				moved[i] = true
			}
		}
	}
	var cols []int
	for i, m := range moved {
		if m {
			cols = append(cols, i)
		}
	}
	cw := csv.NewWriter(w)
	header := []string{"cycle"}
	for _, i := range cols {
		header = append(header, ts.Names[i])
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 1+len(cols))
	for _, e := range ts.Epochs {
		row[0] = strconv.FormatUint(e.Cycle, 10)
		for k, i := range cols {
			row[1+k] = strconv.FormatUint(e.Deltas[i], 10)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TimelineJSON renders the full time series (every registered series, moved
// or not) as indented JSON — the same shape GET /v1/runs/{key}/timeline
// serves.
func TimelineJSON(w io.Writer, ts telemetry.TimeSeries) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts)
}

// Formats lists the result-sink formats WriteResults accepts.
func Formats() []string { return []string{"csv", "json", "jsonl"} }

// WriteResults dispatches to a sink by format name, so drivers can stay
// agnostic of how results are persisted.
func WriteResults(w io.Writer, format string, results []system.Results) error {
	switch format {
	case "csv":
		ew := &errWriter{w: w}
		CSV(ew, results)
		return ew.err
	case "json":
		return JSON(w, results)
	case "jsonl":
		return JSONLines(w, results)
	default:
		return fmt.Errorf("report: unknown format %q (want one of %v)", format, Formats())
	}
}

// errWriter latches the first write error, so sinks built on fmt.Fprintf
// (which discards errors) still report a failed or truncated write.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
